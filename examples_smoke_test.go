package lambdastore_test

// Smoke tests: every example must run to completion. They exercise the
// public API end to end (node boot, type deploy, invocation, replication)
// exactly as a new user would.

import (
	"os/exec"
	"testing"
	"time"
)

func runExample(t *testing.T, path string) {
	t.Helper()
	if testing.Short() {
		t.Skip("example smoke tests are slow")
	}
	cmd := exec.Command("go", "run", path)
	done := make(chan error, 1)
	var out []byte
	go func() {
		var err error
		out, err = cmd.CombinedOutput()
		done <- err
	}()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("%s failed: %v\n%s", path, err, out)
		}
	case <-time.After(3 * time.Minute):
		if cmd.Process != nil {
			cmd.Process.Kill()
		}
		t.Fatalf("%s timed out", path)
	}
}

func TestExampleQuickstart(t *testing.T) { runExample(t, "./examples/quickstart") }
func TestExampleRetwis(t *testing.T)     { runExample(t, "./examples/retwis") }
func TestExampleBank(t *testing.T)       { runExample(t, "./examples/bank") }
func TestExampleAuthstore(t *testing.T)  { runExample(t, "./examples/authstore") }
