// Authstore demo: the paper's §3 motivating component — "LambdaObjects are
// intended to implement a small piece of functionality, e.g., a user
// authentication mechanism, that is part of a larger application".
//
// One AuthService object encapsulates the credential map and the session
// map; register/login/validate/logout are its methods. Because each
// invocation is atomic and isolated, a password change and a login can
// never interleave halfway.
//
//	go run ./examples/authstore
package main

import (
	"fmt"
	"log"
	"os"

	"lambdastore/internal/cluster"
	"lambdastore/internal/core"
	"lambdastore/internal/shard"
	"lambdastore/internal/vm"
)

const authSource = `
;; register(user, secret): fails (traps) if the user already exists.
func register params=0 locals=4 export
  ;; locals: 0=uptr 1=ulen 2=sptr 3=slen
  push 0
  hostcall arg
  dup
  unpack.ptr
  local.set 0
  unpack.len
  local.set 1
  ;; reject duplicates
  str "credentials"
  local.get 0
  local.get 1
  hostcall map_get
  push -1
  eq
  jz duplicate
  push 1
  hostcall arg
  dup
  unpack.ptr
  local.set 2
  unpack.len
  local.set 3
  str "credentials"
  local.get 0
  local.get 1
  local.get 2
  local.get 3
  hostcall map_set
  ret
duplicate:
  unreachable
end

;; login(user, secret) -> token; traps on bad credentials. The token is
;; derived from the runtime RNG and recorded in the sessions map.
func login params=0 locals=8 export
  ;; locals: 0=uptr 1=ulen 2=sptr 3=slen
  ;;         4=storedptr 5=storedlen 6=i 7=tokenptr
  push 0
  hostcall arg
  dup
  unpack.ptr
  local.set 0
  unpack.len
  local.set 1
  push 1
  hostcall arg
  dup
  unpack.ptr
  local.set 2
  unpack.len
  local.set 3
  str "credentials"
  local.get 0
  local.get 1
  hostcall map_get
  dup
  push -1
  eq
  jnz bad
  dup
  unpack.ptr
  local.set 4
  unpack.len
  local.set 5
  ;; constant-shape comparison: length first, then bytes
  local.get 5
  local.get 3
  ne
  jnz reject
  push 0
  local.set 6
cmp_loop:
  local.get 6
  local.get 3
  ge_s
  jnz issue
  local.get 4
  local.get 6
  add
  load8_u
  local.get 2
  local.get 6
  add
  load8_u
  ne
  jnz reject
  local.get 6
  push 1
  add
  local.set 6
  jmp cmp_loop
bad:
  pop
reject:
  unreachable
issue:
  ;; token = 16 random bytes
  push 16
  hostcall alloc
  local.set 7
  local.get 7
  hostcall rand
  store64
  local.get 7
  push 8
  add
  hostcall rand
  store64
  ;; sessions[token] = user
  str "sessions"
  local.get 7
  push 16
  local.get 0
  local.get 1
  hostcall map_set
  local.get 7
  push 16
  hostcall set_result
  ret
end

;; validate(token) -> user; empty result if the session is unknown.
func validate params=0 export
  str "sessions"
  push 0
  hostcall arg
  dup
  unpack.ptr
  swap
  unpack.len
  hostcall map_get
  dup
  push -1
  eq
  jnz unknown
  dup
  unpack.ptr
  swap
  unpack.len
  hostcall set_result
  ret
unknown:
  pop
  ret
end

;; logout(token)
func logout params=0 export
  str "sessions"
  push 0
  hostcall arg
  dup
  unpack.ptr
  swap
  unpack.len
  hostcall map_del
  ret
end

;; session_count() -> number of live sessions
func session_count params=0 locals=1 export
  push 8
  hostcall alloc
  local.set 0
  local.get 0
  str "sessions"
  hostcall map_count
  store64
  local.get 0
  push 8
  hostcall set_result
  ret
end
`

func main() {
	module, err := vm.Assemble(authSource)
	if err != nil {
		log.Fatalf("assemble: %v", err)
	}
	authType, err := core.NewObjectType("AuthService",
		[]core.FieldDef{
			{Name: "credentials", Kind: core.FieldMap},
			{Name: "sessions", Kind: core.FieldMap},
		},
		[]core.MethodInfo{
			{Name: "register"},
			{Name: "login"},
			{Name: "validate", ReadOnly: true, Deterministic: true},
			{Name: "logout"},
			{Name: "session_count", ReadOnly: true},
		}, module)
	if err != nil {
		log.Fatalf("type: %v", err)
	}

	dataDir, err := os.MkdirTemp("", "authstore-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dataDir)
	dir := shard.NewDirectory(nil)
	node, err := cluster.StartNode(cluster.NodeOptions{
		Addr: "127.0.0.1:0", DataDir: dataDir, Directory: dir,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer node.Close()
	dir.SetGroup(shard.Group{ID: 0, Primary: node.Addr()})
	node.SetDirectory(dir)

	client, err := cluster.NewClient(cluster.ClientConfig{Directory: dir})
	if err != nil {
		log.Fatal(err)
	}
	defer client.Close()
	if err := client.RegisterType(authType); err != nil {
		log.Fatal(err)
	}
	const svc = core.ObjectID(1)
	if err := client.CreateObject("AuthService", svc); err != nil {
		log.Fatal(err)
	}

	invoke := func(what, method string, args ...[]byte) []byte {
		res, err := client.Invoke(svc, method, args)
		if err != nil {
			log.Fatalf("%s: %v", what, err)
		}
		return res
	}

	// Register two users; duplicate registration is rejected atomically.
	invoke("register alice", "register", []byte("alice"), []byte("s3cret"))
	invoke("register bob", "register", []byte("bob"), []byte("hunter2"))
	if _, err := client.Invoke(svc, "register", [][]byte{[]byte("alice"), []byte("other")}); err == nil {
		log.Fatal("duplicate registration succeeded")
	}
	fmt.Println("registered alice and bob; duplicate rejected")

	// Wrong password fails; right password yields a session token.
	if _, err := client.Invoke(svc, "login", [][]byte{[]byte("alice"), []byte("wrong")}); err == nil {
		log.Fatal("login with wrong password succeeded")
	}
	token := invoke("login alice", "login", []byte("alice"), []byte("s3cret"))
	fmt.Printf("alice logged in, token %x\n", token)

	// Validate, count, logout.
	user := invoke("validate", "validate", token)
	fmt.Printf("token belongs to %q\n", user)
	n := invoke("session_count", "session_count")
	fmt.Printf("live sessions: %d\n", core.BytesI64(n))
	invoke("logout", "logout", token)
	if res := invoke("validate after logout", "validate", token); len(res) != 0 {
		log.Fatal("token survived logout")
	}
	fmt.Println("token invalidated after logout")
}
