// Retwis demo: the paper's running example (§3.2) on a replicated
// three-node LambdaStore group. Users follow each other, post, read
// timelines and block — with create_post fanning out to follower timelines
// in parallel, and blocks guaranteed to be respected by invocation
// linearizability.
//
//	go run ./examples/retwis
package main

import (
	"fmt"
	"log"
	"os"

	"lambdastore/internal/cluster"
	"lambdastore/internal/core"
	"lambdastore/internal/retwis"
	"lambdastore/internal/shard"
)

func main() {
	// Boot a 3-node replica group (1 primary + 2 backups).
	dir := shard.NewDirectory(nil)
	var nodes []*cluster.Node
	for i := 0; i < 3; i++ {
		dataDir, err := os.MkdirTemp("", fmt.Sprintf("retwis-node%d-*", i))
		if err != nil {
			log.Fatal(err)
		}
		defer os.RemoveAll(dataDir)
		node, err := cluster.StartNode(cluster.NodeOptions{
			Addr:      "127.0.0.1:0",
			DataDir:   dataDir,
			Directory: dir,
		})
		if err != nil {
			log.Fatalf("node %d: %v", i, err)
		}
		defer node.Close()
		nodes = append(nodes, node)
	}
	g := shard.Group{ID: 0, Primary: nodes[0].Addr(),
		Backups: []string{nodes[1].Addr(), nodes[2].Addr()}}
	dir.SetGroup(g)
	for _, n := range nodes {
		n.SetDirectory(dir)
	}
	fmt.Printf("replica group: primary %s, backups %v\n\n", g.Primary, g.Backups)

	client, err := cluster.NewClient(cluster.ClientConfig{Directory: dir})
	if err != nil {
		log.Fatal(err)
	}
	defer client.Close()
	if err := client.RegisterType(retwis.MustType()); err != nil {
		log.Fatal(err)
	}

	// Create three users.
	users := map[string]core.ObjectID{"alice": 1, "bob": 2, "carol": 3}
	for name, id := range users {
		if err := client.CreateObject(retwis.TypeName, id); err != nil {
			log.Fatal(err)
		}
		if _, err := client.Invoke(id, "create_account", [][]byte{[]byte(name)}); err != nil {
			log.Fatal(err)
		}
	}

	// bob and carol follow alice (cross-object invocations).
	for _, follower := range []core.ObjectID{users["bob"], users["carol"]} {
		if _, err := client.Invoke(follower, "follow", [][]byte{core.I64Bytes(int64(users["alice"]))}); err != nil {
			log.Fatal(err)
		}
	}

	// alice posts: the post lands in her timeline and fans out to both
	// followers' timelines in parallel.
	res, err := client.Invoke(users["alice"], "create_post", [][]byte{[]byte("hello, lambda objects!")})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("alice posted (delivered to %d followers)\n", core.BytesI64(res))

	// carol blocks alice; the block commits before the next post, so
	// invocation linearizability guarantees she never sees it (§2).
	if _, err := client.Invoke(users["carol"], "block", [][]byte{core.I64Bytes(int64(users["alice"]))}); err != nil {
		log.Fatal(err)
	}
	if _, err := client.Invoke(users["alice"], "create_post", [][]byte{[]byte("second post")}); err != nil {
		log.Fatal(err)
	}

	// Read timelines from replicas (read-only methods run at any replica).
	for _, name := range []string{"alice", "bob", "carol"} {
		raw, err := client.InvokeRead(users[name], "get_timeline", [][]byte{core.I64Bytes(10)})
		if err != nil {
			log.Fatal(err)
		}
		posts, err := retwis.DecodeTimeline(raw)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\n%s's timeline (%d posts):\n", name, len(posts))
		for _, p := range posts {
			fmt.Printf("  [%s] %s\n", p.Author, p.Msg)
		}
	}
	fmt.Println("\ncarol's timeline stops at the first post: the block was respected.")
}
