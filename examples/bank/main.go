// Bank demo: the paper's strong-consistency motivation (§2) — "an
// application processing digital payments requires strong consistency to
// ensure a transaction reads an up-to-date account balance and, as a
// result, does not spend more money than is available."
//
// Each account is one LambdaObject. transfer() withdraws under the
// account's exclusive invocation and aborts on overdraft; concurrent
// transfers hammer the same accounts and the demo verifies that money is
// conserved and no balance ever went negative.
//
//	go run ./examples/bank
package main

import (
	"fmt"
	"log"
	"math/rand"
	"os"
	"sync"

	"lambdastore/internal/cluster"
	"lambdastore/internal/core"
	"lambdastore/internal/shard"
	"lambdastore/internal/vm"
)

const accountSource = `
func read_balance params=0
  str "balance"
  hostcall val_get
  dup
  push -1
  eq
  jnz absent
  unpack.ptr
  load64
  ret
absent:
  pop
  push 0
  ret
end

func store_balance params=1 locals=1
  push 8
  hostcall alloc
  local.set 1
  local.get 1
  local.get 0
  store64
  str "balance"
  local.get 1
  push 8
  hostcall val_set
  ret
end

func result_i64 params=1 locals=1
  push 8
  hostcall alloc
  local.set 1
  local.get 1
  local.get 0
  store64
  local.get 1
  push 8
  hostcall set_result
  ret
end

;; deposit(amount) -> new balance
func deposit params=0 export
  call read_balance
  push 0
  hostcall arg
  unpack.ptr
  load64
  add
  dup
  call store_balance
  call result_i64
  ret
end

;; balance() -> current balance (read-only)
func balance params=0 export
  call read_balance
  call result_i64
  ret
end

;; transfer(to, amount): withdraw here (aborting the whole invocation on
;; overdraft — nothing commits), then deposit at the target account.
func transfer params=0 locals=3 export
  push 0
  hostcall arg
  unpack.ptr
  load64
  local.set 0
  push 1
  hostcall arg
  unpack.ptr
  load64
  local.set 1
  call read_balance
  local.get 1
  sub
  dup
  push 0
  lt_s
  jz ok
  unreachable          ;; insufficient funds: trap, atomically aborting
ok:
  call store_balance
  push 8
  hostcall alloc
  local.set 2
  local.get 2
  local.get 1
  store64
  local.get 2
  push 8
  hostcall call_arg
  local.get 0
  str "deposit"
  hostcall invoke
  pop
  ret
end
`

func main() {
	module, err := vm.Assemble(accountSource)
	if err != nil {
		log.Fatalf("assemble: %v", err)
	}
	accountType, err := core.NewObjectType("Account",
		[]core.FieldDef{{Name: "balance", Kind: core.FieldValue}},
		[]core.MethodInfo{
			{Name: "deposit"},
			{Name: "balance", ReadOnly: true, Deterministic: true},
			{Name: "transfer"},
		}, module)
	if err != nil {
		log.Fatalf("type: %v", err)
	}

	dataDir, err := os.MkdirTemp("", "bank-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dataDir)
	dir := shard.NewDirectory(nil)
	node, err := cluster.StartNode(cluster.NodeOptions{
		Addr: "127.0.0.1:0", DataDir: dataDir, Directory: dir,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer node.Close()
	dir.SetGroup(shard.Group{ID: 0, Primary: node.Addr()})
	node.SetDirectory(dir)

	client, err := cluster.NewClient(cluster.ClientConfig{Directory: dir})
	if err != nil {
		log.Fatal(err)
	}
	defer client.Close()
	if err := client.RegisterType(accountType); err != nil {
		log.Fatal(err)
	}

	// Open 8 accounts with $1000 each.
	const numAccounts, seed = 8, int64(1000)
	for id := core.ObjectID(1); id <= numAccounts; id++ {
		if err := client.CreateObject("Account", id); err != nil {
			log.Fatal(err)
		}
		if _, err := client.Invoke(id, "deposit", [][]byte{core.I64Bytes(seed)}); err != nil {
			log.Fatal(err)
		}
	}
	total := int64(numAccounts) * seed
	fmt.Printf("opened %d accounts, $%d each ($%d total)\n", numAccounts, seed, total)

	// 16 tellers fire 400 random transfers concurrently; overdrafts abort.
	var wg sync.WaitGroup
	var okOps, aborts int64
	var mu sync.Mutex
	for w := 0; w < 16; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < 25; i++ {
				from := core.ObjectID(rng.Intn(numAccounts) + 1)
				to := core.ObjectID(rng.Intn(numAccounts) + 1)
				if from == to {
					continue
				}
				amount := int64(rng.Intn(1500) + 1) // sometimes exceeds balance
				_, err := client.Invoke(from, "transfer",
					[][]byte{core.I64Bytes(int64(to)), core.I64Bytes(amount)})
				mu.Lock()
				if err != nil {
					aborts++ // overdraft: atomically rolled back
				} else {
					okOps++
				}
				mu.Unlock()
			}
		}(w)
	}
	wg.Wait()
	fmt.Printf("transfers: %d committed, %d aborted (overdrafts)\n", okOps, aborts)

	// Verify: no negative balances, money conserved.
	var sum int64
	for id := core.ObjectID(1); id <= numAccounts; id++ {
		res, err := client.Invoke(id, "balance", nil)
		if err != nil {
			log.Fatal(err)
		}
		b := core.BytesI64(res)
		fmt.Printf("  account %d: $%d\n", id, b)
		if b < 0 {
			log.Fatalf("NEGATIVE BALANCE on account %d — consistency violated!", id)
		}
		sum += b
	}
	if sum != total {
		log.Fatalf("money not conserved: $%d != $%d", sum, total)
	}
	fmt.Printf("total: $%d — conserved, no overdrafts. Strong consistency held.\n", sum)

	// Epilogue: the transactional API (the paper's §7 future work,
	// implemented here). Unlike method-level transfer — where the withdraw
	// commits before the deposit — a transaction commits both sides
	// atomically under locks on both accounts.
	results, err := client.InvokeTransaction([]core.TxCall{
		{Object: 1, Method: "deposit", Args: [][]byte{core.I64Bytes(-100)}},
		{Object: 2, Method: "deposit", Args: [][]byte{core.I64Bytes(100)}},
	})
	if err != nil {
		log.Fatalf("transaction: %v", err)
	}
	fmt.Printf("\ntransactional transfer: account 1 -> $%d, account 2 -> $%d (one atomic commit)\n",
		core.BytesI64(results[0]), core.BytesI64(results[1]))
}
