// Quickstart: define a LambdaObject type, boot a single LambdaStore node,
// and invoke methods on an object through the cluster client.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"os"

	"lambdastore/internal/cluster"
	"lambdastore/internal/core"
	"lambdastore/internal/shard"
	"lambdastore/internal/vm"
)

// counterSource is the guest implementation of a Counter object: methods
// run inside the storage node, touching only this object's fields through
// the host API.
const counterSource = `
;; read(): current count or 0.
func read params=0
  str "count"
  hostcall val_get
  dup
  push -1
  eq
  jnz absent
  unpack.ptr
  load64
  ret
absent:
  pop
  push 0
  ret
end

;; emit(v): persist v and return it as the result.
func emit params=1 locals=1
  push 8
  hostcall alloc
  local.set 1
  local.get 1
  local.get 0
  store64
  str "count"
  local.get 1
  push 8
  hostcall val_set
  local.get 1
  push 8
  hostcall set_result
  ret
end

;; add(delta) -> new total (mutating; committed atomically).
func add params=0 export
  call read
  push 0
  hostcall arg
  unpack.ptr
  load64
  add
  call emit
  ret
end

;; get() -> total (read-only; served from any replica, cacheable).
func get params=0 locals=1 export
  push 8
  hostcall alloc
  local.set 0
  local.get 0
  call read
  store64
  local.get 0
  push 8
  hostcall set_result
  ret
end
`

func main() {
	// 1. Compile the guest module and declare the object type.
	module, err := vm.Assemble(counterSource)
	if err != nil {
		log.Fatalf("assemble: %v", err)
	}
	counterType, err := core.NewObjectType("Counter",
		[]core.FieldDef{{Name: "count", Kind: core.FieldValue}},
		[]core.MethodInfo{
			{Name: "add"},
			{Name: "get", ReadOnly: true, Deterministic: true},
		}, module)
	if err != nil {
		log.Fatalf("type: %v", err)
	}

	// 2. Boot one storage node (in production these are lambdastore
	// daemons on separate machines).
	dataDir, err := os.MkdirTemp("", "quickstart-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dataDir)
	dir := shard.NewDirectory(nil)
	node, err := cluster.StartNode(cluster.NodeOptions{
		Addr:      "127.0.0.1:0",
		DataDir:   dataDir,
		Directory: dir,
	})
	if err != nil {
		log.Fatalf("node: %v", err)
	}
	defer node.Close()
	dir.SetGroup(shard.Group{ID: 0, Primary: node.Addr()})
	node.SetDirectory(dir)

	// 3. Connect a client, deploy the type, create an object.
	client, err := cluster.NewClient(cluster.ClientConfig{Directory: dir})
	if err != nil {
		log.Fatalf("client: %v", err)
	}
	defer client.Close()
	if err := client.RegisterType(counterType); err != nil {
		log.Fatalf("register: %v", err)
	}
	if err := client.CreateObject("Counter", 1); err != nil {
		log.Fatalf("create: %v", err)
	}

	// 4. Invoke methods. Each invocation is atomic, isolated and
	// immediately visible to the next one (invocation linearizability).
	for _, delta := range []int64{5, 10, -3} {
		res, err := client.Invoke(1, "add", [][]byte{core.I64Bytes(delta)})
		if err != nil {
			log.Fatalf("add: %v", err)
		}
		fmt.Printf("add(%d) -> %d\n", delta, core.BytesI64(res))
	}
	res, err := client.InvokeRead(1, "get", nil)
	if err != nil {
		log.Fatalf("get: %v", err)
	}
	fmt.Printf("get() -> %d\n", core.BytesI64(res))
}
