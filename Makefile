# LambdaStore build and test entry points.
#
#   make build   compile everything (library + commands)
#   make test    full test suite
#   make race    race-detector pass over the concurrency-heavy packages
#   make bench   telemetry hot-path benchmarks (must report 0 allocs/op)
#   make vet     gofmt + go vet hygiene
#   make check   everything the CI gate runs

GO ?= go

.PHONY: all build test race bench vet check clean

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The packages where a data race would actually hide: the runtime, the
# cluster node, and the telemetry instruments themselves.
race:
	$(GO) test -race ./internal/core/ ./internal/cluster/ ./internal/telemetry/

bench:
	$(GO) test -run Telemetry -bench . -benchmem ./internal/telemetry/

vet:
	@fmt_out=$$(gofmt -l .); \
	if [ -n "$$fmt_out" ]; then \
		echo "gofmt needed on:"; echo "$$fmt_out"; exit 1; \
	fi
	$(GO) vet ./...

check: vet build test

clean:
	$(GO) clean ./...
