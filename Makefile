# LambdaStore build and test entry points.
#
#   make build   compile everything (library + commands)
#   make test    full test suite
#   make race    race-detector pass over the concurrency-heavy packages
#   make chaos   seeded failover chaos suite under the race detector
#   make bench   telemetry hot-path benchmarks (must report 0 allocs/op)
#   make bench-write  write-path batched-vs-unbatched comparison (JSON artifact)
#   make bench-read   read-path per-layer ablation sweep (JSON artifact)
#   make bench-obs    telemetry overhead: off / metrics / metrics+tracing (JSON artifact)
#   make bench-recovery  rejoin cost, digest diff vs full resync (JSON artifact)
#   make bench-rebalance many-group placement + Zipf hot-spot convergence (JSON artifact)
#   make bench-read-scaleout  leased replica reads vs primary-only routing (JSON artifact)
#   make bench-vm     VM tier: token-threaded dispatch vs interpreter (JSON artifact)
#   make bench-overload  open-loop latency vs offered load, shed on/off (JSON artifact)
#   make vet     gofmt + go vet hygiene
#   make check   everything the CI gate runs

GO ?= go

.PHONY: all build test race chaos bench bench-write bench-read bench-obs bench-recovery bench-rebalance bench-read-scaleout bench-vm bench-overload vet check clean

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The packages where a data race would actually hide: the runtime, the
# cluster node, the caches on the read path, the store, the telemetry
# instruments themselves, and the VM (lazy module compilation is shared
# across instances; the differential test runs both tiers under -race).
race:
	$(GO) test -race ./internal/core/ ./internal/cluster/ ./internal/cache/ ./internal/store/ ./internal/telemetry/ ./internal/rebalance/ ./internal/replication/ ./internal/vm/ ./internal/admission/

# Deterministic failover chaos: every seed replays the same kill/partition/
# fsync-failure schedule (see EXPERIMENTS.md "Chaos runs"). The smoke
# variant already rides in `make test`; this is the full multi-seed pass.
chaos:
	$(GO) test -run TestChaos -race -count=1 ./internal/chaos/

bench:
	$(GO) test -run Telemetry -bench . -benchmem ./internal/telemetry/

# Write-path throughput: WAL group commit + ship coalescing + RPC write
# coalescing on vs off, Retwis Post with fsync per commit. Emits the perf
# trajectory artifact later PRs compare against.
bench-write:
	$(GO) run ./cmd/lambda-bench -write-path -accounts 512 -concurrency 32 -ops 3000 -out results/BENCH_write_path.json

# Read-path throughput: each fast-read layer (cache sharding, hot-state
# cache, cheap VM reset, read-only fast path) ablated independently,
# Retwis GetTimeline over a hot account set at 1/8/64 clients.
bench-read:
	$(GO) run ./cmd/lambda-bench -read-path -ops 4000 -out results/BENCH_read_path.json

# Observability overhead: the bench-read all-layers GetTimeline config run
# with telemetry fully off (registry withheld from every hot-path
# component), metrics only, and metrics + per-request tracing. The
# acceptance bar is metrics+tracing within 5% of telemetry-off throughput.
bench-obs:
	$(GO) run ./cmd/lambda-bench -obs -ops 4000 -out results/BENCH_observability.json

# Rejoin cost: a crashed backup catches up via range-digest diff vs the
# full-resync ablation, across store sizes and downtime divergence. The
# artifact shows streamed bytes track divergence, not store size.
bench-recovery:
	$(GO) run ./cmd/lambda-bench -recovery -out results/BENCH_recovery.json

# Rebalance: uniform Post throughput at 1/4/16/48 single-node groups
# (per-node admission modeled with an injected per-frame receive delay),
# then the Zipf(1.1) correlated hot spot at 16 groups with the rebalancer
# off vs on. The acceptance bar is >=1.5x from rebalancing and a move
# count that plateaus instead of oscillating.
bench-rebalance:
	$(GO) run ./cmd/lambda-bench -rebalance -accounts 512 -concurrency 64 -ops 3000 -out results/BENCH_rebalance.json

# Read scale-out: GetTimeline at 1/8/64 clients on a 3-replica group,
# reads pinned to the primary vs spread over lease-holding backups
# (per-node admission modeled with an injected per-request receive
# delay), plus a mixed 90/10 run comparing write-ack latency. The
# acceptance bar is >=2.5x read throughput at 64 clients and a write-ack
# p99 within 10% of the lease-free baseline.
bench-read-scaleout:
	$(GO) run ./cmd/lambda-bench -read-scaleout -ops 4000 -out results/BENCH_read_scaleout.json

# VM execution tier: the AOT token-threaded compiler vs the switch
# interpreter — compute-heavy and memory-touching kernels measured
# directly (Call/ResetFast against one warm instance), then end-to-end
# GetTimeline with the result cache disabled so every read executes the
# VM. The acceptance bar is >=2x on the compute-heavy microbench.
bench-vm:
	$(GO) run ./cmd/lambda-bench -vm -ops 4000 -out results/BENCH_vm_compile.json

# Overload: seeded open-loop Poisson arrivals swept from half the measured
# closed-loop capacity to 1.8x past it (latency measured CO-safe from each
# intended arrival slot), against the same deployment with the admission
# plane off (unbounded queueing) vs on (bounded queue + deadline shed).
# The acceptance bar is a shed-config admitted-request p99 that stays a
# small multiple of its pre-knee value while the no-shed p99 collapses.
bench-overload:
	$(GO) run ./cmd/lambda-bench -overload -out results/BENCH_overload.json

vet:
	@fmt_out=$$(gofmt -l .); \
	if [ -n "$$fmt_out" ]; then \
		echo "gofmt needed on:"; echo "$$fmt_out"; exit 1; \
	fi
	$(GO) vet ./...

check: vet build test race

clean:
	$(GO) clean ./...
