module lambdastore

go 1.22
