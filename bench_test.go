package lambdastore_test

// Benchmarks regenerating the paper's evaluation. Each benchmark boots the
// deployment under test on loopback, populates the Retwis dataset, and
// drives b.N closed-loop jobs, reporting throughput (implicit ns/op plus a
// jobs/s metric) and latency percentiles (p50-ms, p99-ms metrics):
//
//	Figure 1 & 2: BenchmarkFigure12_<Workload>_<Architecture>
//	Table 1:      BenchmarkTable1_<System>
//	Ablations:    BenchmarkAblation<Name>_<Config>
//
// Scale knobs (defaults keep `go test -bench` runs minutes-long; the
// retwis-bench and lambda-bench commands run the paper-scale versions):
//
//	LAMBDA_BENCH_ACCOUNTS     population size   (default 2000)
//	LAMBDA_BENCH_CONCURRENCY  closed-loop load  (default 50)

import (
	"os"
	"strconv"
	"testing"
	"time"

	"lambdastore/internal/bench"
	"lambdastore/internal/core"
	"lambdastore/internal/retwis"
	"lambdastore/internal/store"
	"lambdastore/internal/vm"
	"lambdastore/internal/workload"
)

func envInt(name string, def int) int {
	if s := os.Getenv(name); s != "" {
		if n, err := strconv.Atoi(s); err == nil && n > 0 {
			return n
		}
	}
	return def
}

func benchOptions(b *testing.B) bench.Options {
	b.Helper()
	opts := bench.DefaultOptions()
	opts.Accounts = envInt("LAMBDA_BENCH_ACCOUNTS", 2000)
	opts.Concurrency = envInt("LAMBDA_BENCH_CONCURRENCY", 50)
	opts.DataRoot = b.TempDir()
	return opts
}

// runWorkload measures b.N jobs of one workload against a deployment.
func runWorkload(b *testing.B, d *bench.Deployment, opts bench.Options, wl string) {
	b.Helper()
	cfg := workload.DefaultConfig(opts.Accounts)
	if err := workload.Populate(cfg, d.Create, d.Invoker); err != nil {
		b.Fatalf("populate: %v", err)
	}
	b.ResetTimer()
	res, err := workload.RunClosedLoop(cfg, wl, d.Invoker, opts.Concurrency, b.N)
	b.StopTimer()
	if err != nil {
		b.Fatalf("run: %v", err)
	}
	if res.Errors > 0 {
		b.Fatalf("%d errors during %s", res.Errors, wl)
	}
	b.ReportMetric(res.Throughput, "jobs/s")
	b.ReportMetric(float64(res.Latency.Median)/float64(time.Millisecond), "p50-ms")
	b.ReportMetric(float64(res.Latency.P99)/float64(time.Millisecond), "p99-ms")
}

func benchAggregated(b *testing.B, wl string) {
	opts := benchOptions(b)
	d, err := bench.StartAggregated(opts)
	if err != nil {
		b.Fatal(err)
	}
	defer d.Close()
	runWorkload(b, d, opts, wl)
}

func benchDisaggregated(b *testing.B, wl string) {
	opts := benchOptions(b)
	d, err := bench.StartDisaggregated(opts)
	if err != nil {
		b.Fatal(err)
	}
	defer d.Close()
	runWorkload(b, d, opts, wl)
}

// --- Figures 1 and 2: Retwis throughput and latency, both architectures ---

func BenchmarkFigure12_Post_Aggregated(b *testing.B)    { benchAggregated(b, workload.Post) }
func BenchmarkFigure12_Post_Disaggregated(b *testing.B) { benchDisaggregated(b, workload.Post) }

func BenchmarkFigure12_GetTimeline_Aggregated(b *testing.B) {
	benchAggregated(b, workload.GetTimeline)
}
func BenchmarkFigure12_GetTimeline_Disaggregated(b *testing.B) {
	benchDisaggregated(b, workload.GetTimeline)
}

func BenchmarkFigure12_Follow_Aggregated(b *testing.B)    { benchAggregated(b, workload.Follow) }
func BenchmarkFigure12_Follow_Disaggregated(b *testing.B) { benchDisaggregated(b, workload.Follow) }

// --- Table 1: latency bands of the four system classes ---

// BenchmarkTable1_CustomService is the hand-built microservice bound:
// native Go Retwis against a local embedded store (no VM, no network).
func BenchmarkTable1_CustomService(b *testing.B) {
	dir := b.TempDir()
	db, err := store.Open(dir, nil)
	if err != nil {
		b.Fatal(err)
	}
	defer db.Close()
	id := core.ObjectID(1)
	if err := db.Put(core.ValueFieldKey(id, "name"), []byte("bench")); err != nil {
		b.Fatal(err)
	}
	entry := make([]byte, 116)
	// Seed a timeline.
	for i := uint64(0); i < 20; i++ {
		if err := db.Put(core.ListEntryKey(id, "timeline", i), entry); err != nil {
			b.Fatal(err)
		}
	}
	if err := db.Put(core.ListLenKey(id, "timeline"), core.EncodeU64(20)); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n, err := db.Get(core.ListLenKey(id, "timeline"))
		if err != nil {
			b.Fatal(err)
		}
		total := core.DecodeU64(n)
		start := uint64(0)
		if total > 10 {
			start = total - 10
		}
		for j := start; j < total; j++ {
			if _, err := db.Get(core.ListEntryKey(id, "timeline", j)); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkTable1_LambdaObjects measures the aggregated design.
func BenchmarkTable1_LambdaObjects(b *testing.B) {
	benchAggregated(b, workload.GetTimeline)
}

// BenchmarkTable1_ServerlessWarm measures the disaggregated warm path.
func BenchmarkTable1_ServerlessWarm(b *testing.B) {
	benchDisaggregated(b, workload.GetTimeline)
}

// BenchmarkTable1_ServerlessCold measures the disaggregated cold path
// (fresh instance per invocation + request-log hop + emulated provisioning
// penalty).
func BenchmarkTable1_ServerlessCold(b *testing.B) {
	opts := benchOptions(b)
	opts.Accounts = 200 // cold runs are 100ms+ per op; keep setup small
	d, err := bench.StartDisaggregatedCold(opts)
	if err != nil {
		b.Fatal(err)
	}
	defer d.Close()
	runWorkload(b, d, opts, workload.GetTimeline)
}

// --- Ablations ---

// BenchmarkAblationCache_Off / _On: A1, consistent result caching on a hot
// read set (§4.2.2).
func benchCache(b *testing.B, entries int) {
	opts := benchOptions(b)
	opts.Accounts = 64 // hot set: repeated invocations, the regime caching targets
	opts.CacheEntries = entries
	d, err := bench.StartAggregated(opts)
	if err != nil {
		b.Fatal(err)
	}
	defer d.Close()
	runWorkload(b, d, opts, workload.GetTimeline)
}

func BenchmarkAblationCache_Off(b *testing.B) { benchCache(b, 0) }
func BenchmarkAblationCache_On(b *testing.B)  { benchCache(b, 64<<10) }

// BenchmarkAblationReplication_R1/_R2/_R3: A2, replication factor on the
// mutating Follow workload (§4.2.1).
func benchReplication(b *testing.B, replicas int) {
	opts := benchOptions(b)
	opts.Replicas = replicas
	d, err := bench.StartAggregated(opts)
	if err != nil {
		b.Fatal(err)
	}
	defer d.Close()
	runWorkload(b, d, opts, workload.Follow)
}

func BenchmarkAblationReplication_R1(b *testing.B) { benchReplication(b, 1) }
func BenchmarkAblationReplication_R2(b *testing.B) { benchReplication(b, 2) }
func BenchmarkAblationReplication_R3(b *testing.B) { benchReplication(b, 3) }

// BenchmarkAblationSched_On/_Off: A4, per-object scheduling (§4.2).
func benchSched(b *testing.B, disabled bool) {
	opts := benchOptions(b)
	opts.DisableSched = disabled
	d, err := bench.StartAggregated(opts)
	if err != nil {
		b.Fatal(err)
	}
	defer d.Close()
	runWorkload(b, d, opts, workload.Follow)
}

func BenchmarkAblationSched_On(b *testing.B)  { benchSched(b, false) }
func BenchmarkAblationSched_Off(b *testing.B) { benchSched(b, true) }

// BenchmarkAblationFuel_Metered/_Unmetered: A3, the interpreter's metering
// overhead on a compute-bound guest loop.
func benchFuel(b *testing.B, metered bool) {
	src := `
func spinsum params=1 locals=2
  push 0
  local.set 1
  push 0
  local.set 2
loop:
  local.get 2
  local.get 0
  ge_s
  jnz done
  local.get 1
  local.get 2
  add
  local.set 1
  local.get 2
  push 1
  add
  local.set 2
  jmp loop
done:
  local.get 1
  ret
end`
	mod, err := vm.Assemble(src)
	if err != nil {
		b.Fatal(err)
	}
	const iters = 10_000
	fuel := int64(0)
	if metered {
		fuel = iters*16 + 1024
	}
	inst, err := vm.NewInstance(mod, nil, fuel)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if metered {
			inst.Reset(fuel)
		}
		if _, err := inst.Call("spinsum", iters); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationFuel_Metered(b *testing.B)   { benchFuel(b, true) }
func BenchmarkAblationFuel_Unmetered(b *testing.B) { benchFuel(b, false) }

// BenchmarkAblationNetDelay_<delay>: A5, injected network delay on Post.
func benchNetDelay(b *testing.B, delay time.Duration, aggregated bool) {
	opts := benchOptions(b)
	opts.Accounts = 500
	opts.NetDelay = delay
	var d *bench.Deployment
	var err error
	if aggregated {
		d, err = bench.StartAggregated(opts)
	} else {
		d, err = bench.StartDisaggregated(opts)
	}
	if err != nil {
		b.Fatal(err)
	}
	defer d.Close()
	runWorkload(b, d, opts, workload.Post)
}

func BenchmarkAblationNetDelay_200us_Aggregated(b *testing.B) {
	benchNetDelay(b, 200*time.Microsecond, true)
}
func BenchmarkAblationNetDelay_200us_Disaggregated(b *testing.B) {
	benchNetDelay(b, 200*time.Microsecond, false)
}

// --- Microbenchmarks of the substrates (engineering baselines) ---

// BenchmarkStorePut measures the LSM engine's raw write path.
func BenchmarkStorePut(b *testing.B) {
	db, err := store.Open(b.TempDir(), nil)
	if err != nil {
		b.Fatal(err)
	}
	defer db.Close()
	key := make([]byte, 16)
	value := make([]byte, 100)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := 0; j < 8; j++ {
			key[j] = byte(i >> (8 * j))
		}
		if err := db.Put(key, value); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkStoreGet measures the LSM engine's read path over a flushed
// dataset.
func BenchmarkStoreGet(b *testing.B) {
	db, err := store.Open(b.TempDir(), nil)
	if err != nil {
		b.Fatal(err)
	}
	defer db.Close()
	const n = 10000
	for i := 0; i < n; i++ {
		key := []byte(strconv.Itoa(i))
		if err := db.Put(key, make([]byte, 100)); err != nil {
			b.Fatal(err)
		}
	}
	if err := db.Flush(); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := db.Get([]byte(strconv.Itoa(i % n))); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkVMInvocation measures one full object-method invocation on a
// local runtime (no network): the aggregated fast path.
func BenchmarkVMInvocation(b *testing.B) {
	db, err := store.Open(b.TempDir(), nil)
	if err != nil {
		b.Fatal(err)
	}
	defer db.Close()
	rt, err := core.NewRuntime(db, core.Options{})
	if err != nil {
		b.Fatal(err)
	}
	typ, err := retwis.NewType()
	if err != nil {
		b.Fatal(err)
	}
	if err := rt.RegisterType(typ); err != nil {
		b.Fatal(err)
	}
	if err := rt.CreateObject(retwis.TypeName, 1); err != nil {
		b.Fatal(err)
	}
	if _, err := rt.Invoke(1, "create_account", [][]byte{[]byte("bench")}); err != nil {
		b.Fatal(err)
	}
	args := [][]byte{core.I64Bytes(10)}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := rt.Invoke(1, "get_timeline", args); err != nil {
			b.Fatal(err)
		}
	}
}
