package cache

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
)

// TestConcurrentReadersWithInvalidatingWriter exercises the sharded cache
// under the read-path's real access pattern — many readers doing
// Lookup/Store while a writer mutates dependencies and invalidates
// objects — and asserts no stale result is ever served. Run under -race
// (make race), this is also the lock-striping correctness check.
func TestConcurrentReadersWithInvalidatingWriter(t *testing.T) {
	c := NewSharded(4096, 8)
	st := newFakeStore()

	const objects = 64
	key := func(obj uint64) []byte { return []byte(fmt.Sprintf("k%d", obj)) }
	// version tracks the committed generation of each object; the cached
	// result encodes the generation it was computed at.
	var version [objects]atomic.Uint64
	result := func(obj uint64, v uint64) []byte {
		return []byte(fmt.Sprintf("obj%d@%d", obj, v))
	}
	for i := uint64(0); i < objects; i++ {
		st.put(string(key(i)), result(i, 0))
	}

	stop := make(chan struct{})
	var stale atomic.Uint64
	var wg sync.WaitGroup
	const readsPerReader = 3000
	for r := 0; r < 8; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for i := r; i < r+readsPerReader; i++ {
				obj := uint64(i % objects)
				// The generation read before the lookup is a lower bound on
				// what a valid cached result may reflect.
				floor := version[obj].Load()
				if res, ok := c.Lookup(obj, "m", 1, st.hash); ok {
					var got uint64
					fmt.Sscanf(string(res), fmt.Sprintf("obj%d@%%d", obj), &got)
					if got < floor {
						stale.Add(1)
					}
					continue
				}
				// Miss: recompute from the store (the invocation path) and
				// populate.
				k := key(obj)
				st.mu.Lock()
				val := append([]byte(nil), st.vals[string(k)]...)
				st.mu.Unlock()
				c.Store(obj, "m", 1, val, []ReadDep{{Key: k, ValueHash: HashValue(val, true)}})
			}
		}(r)
	}

	// Writer, repeating the commit path's ordering until every reader
	// finishes its quota: update the store, invalidate, and only then
	// publish the new version — a reader that observes version v is
	// therefore guaranteed the store held v (and the invalidation ran)
	// before its lookup.
	var wwg sync.WaitGroup
	wwg.Add(1)
	go func() {
		defer wwg.Done()
		var vers [objects]uint64
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			obj := uint64(i % objects)
			v := vers[obj] + 1
			vers[obj] = v
			st.put(string(key(obj)), result(obj, v))
			c.InvalidateObject(obj)
			version[obj].Store(v)
		}
	}()
	wg.Wait()
	close(stop)
	wwg.Wait()

	if n := stale.Load(); n != 0 {
		t.Fatalf("%d stale results served during concurrent invalidation", n)
	}
	s := c.Stats()
	if s.Misses == 0 || s.Stores == 0 {
		t.Fatalf("degenerate run: stats %+v", s)
	}

	// Deterministic invalidation check (the race above may remove every
	// entry via failed validation before the writer reaches it): a live
	// entry dropped by InvalidateObject must count and must stop hitting.
	c.InvalidateObject(7) // flush entries left over from the race phase
	before := c.Stats().Invalidations
	c.Store(7, "m", 9, []byte("r"), []ReadDep{{Key: key(7), ValueHash: st.hash(key(7))}})
	c.InvalidateObject(7)
	if got := c.Stats().Invalidations; got != before+1 {
		t.Fatalf("Invalidations = %d, want %d", got, before+1)
	}
	if _, ok := c.Lookup(7, "m", 9, st.hash); ok {
		t.Fatal("hit after InvalidateObject")
	}
}

// TestStatsMergeDuringChurn verifies Stats() (which locks one shard at a
// time) is safe to call while every shard is being written.
func TestStatsMergeDuringChurn(t *testing.T) {
	c := NewSharded(1024, 8)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				obj := uint64(i*4 + r)
				c.Store(obj, "m", uint64(i), []byte("x"), nil)
				c.NoteBypass()
				c.InvalidateObject(obj)
			}
		}(r)
	}
	for i := 0; i < 200; i++ {
		s := c.Stats()
		if s.Stores < s.Invalidations {
			t.Fatalf("incoherent stats: %+v", s)
		}
	}
	close(stop)
	wg.Wait()
}
