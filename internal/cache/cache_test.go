package cache

import (
	"fmt"
	"sync"
	"testing"
	"testing/quick"
)

// stableHash is a validation function over a mutable fake store.
type fakeStore struct {
	mu   sync.Mutex
	vals map[string][]byte
}

func newFakeStore() *fakeStore { return &fakeStore{vals: map[string][]byte{}} }

func (f *fakeStore) put(k string, v []byte) {
	f.mu.Lock()
	f.vals[k] = v
	f.mu.Unlock()
}

func (f *fakeStore) hash(key []byte) uint64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	v, ok := f.vals[string(key)]
	return HashValue(v, ok)
}

func TestLookupMissStoreHit(t *testing.T) {
	c := New(16)
	st := newFakeStore()
	st.put("k1", []byte("v1"))

	if _, ok := c.Lookup(1, "m", 42, st.hash); ok {
		t.Fatal("hit on empty cache")
	}
	c.Store(1, "m", 42, []byte("result"), []ReadDep{{Key: []byte("k1"), ValueHash: st.hash([]byte("k1"))}})
	res, ok := c.Lookup(1, "m", 42, st.hash)
	if !ok || string(res) != "result" {
		t.Fatalf("lookup = %q, %v", res, ok)
	}
	s := c.Stats()
	if s.Hits != 1 || s.Misses != 1 || s.Stores != 1 {
		t.Fatalf("stats %+v", s)
	}
}

func TestValidationRejectsStaleReadSet(t *testing.T) {
	c := New(16)
	st := newFakeStore()
	st.put("k1", []byte("old"))
	c.Store(1, "m", 7, []byte("res"), []ReadDep{{Key: []byte("k1"), ValueHash: st.hash([]byte("k1"))}})

	// Change the dependency out from under the cache.
	st.put("k1", []byte("new"))
	if _, ok := c.Lookup(1, "m", 7, st.hash); ok {
		t.Fatal("stale entry validated")
	}
	// The stale entry must have been dropped.
	if c.Len() != 0 {
		t.Fatalf("stale entry retained (len %d)", c.Len())
	}
	if c.Stats().Validations != 1 {
		t.Fatalf("stats %+v", c.Stats())
	}
}

func TestAbsentVsEmptyDistinct(t *testing.T) {
	if HashValue(nil, false) == HashValue(nil, true) {
		t.Fatal("absent and empty hash identically")
	}
}

func TestArgsHash(t *testing.T) {
	a := HashArgs("m", [][]byte{[]byte("x"), []byte("y")})
	b := HashArgs("m", [][]byte{[]byte("xy")})
	if a == b {
		t.Fatal("argument framing not length-delimited")
	}
	if HashArgs("m1", nil) == HashArgs("m2", nil) {
		t.Fatal("method name not mixed in")
	}
	if HashArgs("m", [][]byte{[]byte("a")}) != HashArgs("m", [][]byte{[]byte("a")}) {
		t.Fatal("hash not deterministic")
	}
}

func TestInvalidateObject(t *testing.T) {
	c := New(16)
	st := newFakeStore()
	dep := []ReadDep{{Key: []byte("k"), ValueHash: st.hash([]byte("k"))}}
	c.Store(1, "a", 1, []byte("r1"), dep)
	c.Store(1, "b", 2, []byte("r2"), dep)
	c.Store(2, "a", 1, []byte("r3"), dep)
	c.InvalidateObject(1)
	if _, ok := c.Lookup(1, "a", 1, st.hash); ok {
		t.Fatal("invalidated entry hit")
	}
	if _, ok := c.Lookup(2, "a", 1, st.hash); !ok {
		t.Fatal("unrelated object invalidated")
	}
	if c.Len() != 1 {
		t.Fatalf("len = %d", c.Len())
	}
}

func TestLRUEviction(t *testing.T) {
	c := New(4)
	st := newFakeStore()
	for i := 0; i < 10; i++ {
		c.Store(uint64(i), "m", 0, []byte("r"), nil)
	}
	if c.Len() != 4 {
		t.Fatalf("len = %d, want capacity 4", c.Len())
	}
	// The most recent 4 survive.
	for i := 6; i < 10; i++ {
		if _, ok := c.Lookup(uint64(i), "m", 0, st.hash); !ok {
			t.Fatalf("recent entry %d evicted", i)
		}
	}
	if c.Stats().Evictions != 6 {
		t.Fatalf("evictions = %d", c.Stats().Evictions)
	}
}

func TestLRUTouchOnHit(t *testing.T) {
	c := New(2)
	st := newFakeStore()
	c.Store(1, "m", 0, []byte("r1"), nil)
	c.Store(2, "m", 0, []byte("r2"), nil)
	// Touch 1 so 2 becomes the eviction victim.
	c.Lookup(1, "m", 0, st.hash)
	c.Store(3, "m", 0, []byte("r3"), nil)
	if _, ok := c.Lookup(1, "m", 0, st.hash); !ok {
		t.Fatal("recently used entry evicted")
	}
	if _, ok := c.Lookup(2, "m", 0, st.hash); ok {
		t.Fatal("LRU victim survived")
	}
}

func TestReplaceExistingEntry(t *testing.T) {
	c := New(4)
	st := newFakeStore()
	c.Store(1, "m", 0, []byte("old"), nil)
	c.Store(1, "m", 0, []byte("new"), nil)
	if c.Len() != 1 {
		t.Fatalf("len = %d", c.Len())
	}
	res, ok := c.Lookup(1, "m", 0, st.hash)
	if !ok || string(res) != "new" {
		t.Fatalf("lookup = %q", res)
	}
}

func TestConcurrentAccess(t *testing.T) {
	c := New(128)
	st := newFakeStore()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				obj := uint64(i % 32)
				switch i % 3 {
				case 0:
					c.Store(obj, "m", uint64(w), []byte(fmt.Sprintf("r%d", i)), nil)
				case 1:
					c.Lookup(obj, "m", uint64(w), st.hash)
				default:
					c.InvalidateObject(obj)
				}
			}
		}(w)
	}
	wg.Wait()
}

func TestHashValueQuick(t *testing.T) {
	f := func(a, b []byte) bool {
		// Equal inputs hash equal; hash is deterministic.
		if HashValue(a, true) != HashValue(a, true) {
			return false
		}
		// Different presence differs even for equal bytes.
		return HashValue(a, true) != HashValue(a, false) || false ||
			HashValue(b, true) == HashValue(b, true)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}
