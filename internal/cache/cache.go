// Package cache implements LambdaStore's consistent function-result cache
// (paper §4.2.2). For a deterministic read-only method, the storage node
// records the method's output together with a hash of its input and its
// read set (the keys it read and hashes of their values). A later identical
// invocation is answered from the cache only after re-validating every read
// dependency against the current committed state — which the node can do
// cheaply and consistently precisely because data and compute are
// co-located. Commits to an object additionally invalidate its entries
// proactively.
//
// The cache is sharded by object ID: every entry for an object lives in
// exactly one shard, so InvalidateObject touches a single shard lock and
// concurrent readers of different objects never contend.
package cache

import (
	"container/list"
	"hash/fnv"
	"sync"
	"sync/atomic"
)

// HashValue produces the value fingerprint stored in read sets. A presence
// bit is mixed in so "absent" and "present but empty" differ.
func HashValue(value []byte, present bool) uint64 {
	h := fnv.New64a()
	if present {
		h.Write([]byte{1})
		h.Write(value)
	} else {
		h.Write([]byte{0})
	}
	return h.Sum64()
}

// HashArgs fingerprints an invocation's arguments (the "hash of its input").
func HashArgs(method string, args [][]byte) uint64 {
	h := fnv.New64a()
	h.Write([]byte(method))
	for _, a := range args {
		var lenBuf [8]byte
		n := len(a)
		for i := 0; i < 8; i++ {
			lenBuf[i] = byte(n >> (8 * i))
		}
		h.Write(lenBuf[:])
		h.Write(a)
	}
	return h.Sum64()
}

// ReadDep is one entry of a cached invocation's read set.
type ReadDep struct {
	Key       []byte
	ValueHash uint64
}

// Entry is one cached result.
type Entry struct {
	Result  []byte
	ReadSet []ReadDep

	key     entryKey
	element *list.Element
}

// entryKey identifies a cached invocation.
type entryKey struct {
	object   uint64
	method   string
	argsHash uint64
}

// Stats counts cache outcomes for the benchmark harness and /metrics.
type Stats struct {
	Hits        uint64
	Misses      uint64
	Validations uint64 // entries found but re-validated away
	Stores      uint64
	Evictions   uint64
	// Bypass counts invocations that were not cache-eligible (mutating,
	// non-deterministic, or poisoned by time/rand/scans mid-run).
	Bypass uint64
	// Invalidations counts entries dropped by proactive InvalidateObject.
	Invalidations uint64
}

// DefaultShards is the shard count used by New. 32 comfortably exceeds the
// core counts this runs on while keeping per-shard LRU lists long enough to
// stay useful.
const DefaultShards = 32

// shard is one lock-striped partition of the cache. All entries for a given
// object hash to the same shard, which is what keeps InvalidateObject a
// single-lock operation.
type shard struct {
	mu       sync.Mutex
	entries  map[entryKey]*Entry
	byObject map[uint64]map[entryKey]struct{}
	lru      *list.List // front = most recent
	capacity int
	stats    Stats
}

// Cache is a bounded, LRU-evicting consistent result cache. Safe for
// concurrent use.
type Cache struct {
	shards []*shard
	mask   uint64 // len(shards)-1; len is always a power of two
	bypass atomic.Uint64
}

// New returns a cache bounded to capacity entries (<=0 means 64k), split
// across DefaultShards shards.
func New(capacity int) *Cache {
	return NewSharded(capacity, DefaultShards)
}

// NewSharded returns a cache with an explicit shard count (rounded up to a
// power of two; <=0 means DefaultShards). shards=1 degenerates to the old
// single-mutex cache and exists for the read-path ablation.
func NewSharded(capacity, shards int) *Cache {
	if capacity <= 0 {
		capacity = 64 << 10
	}
	if shards <= 0 {
		shards = DefaultShards
	}
	n := 1
	for n < shards {
		n <<= 1
	}
	// Tiny caches keep exact global LRU order: splitting a handful of slots
	// across shards would evict by shard occupancy, not recency. Cap the
	// shard count so each shard holds at least 16 entries.
	for n > 1 && capacity/n < 16 {
		n >>= 1
	}
	c := &Cache{shards: make([]*shard, n), mask: uint64(n - 1)}
	per := capacity / n
	if per < 1 {
		per = 1
	}
	for i := range c.shards {
		c.shards[i] = &shard{
			entries:  make(map[entryKey]*Entry),
			byObject: make(map[uint64]map[entryKey]struct{}),
			lru:      list.New(),
			capacity: per,
		}
	}
	return c
}

// shardFor hashes the object ID to its shard. Fibonacci hashing spreads the
// sequential IDs the runtime allocates evenly across shards.
func (c *Cache) shardFor(object uint64) *shard {
	return c.shards[(object*0x9e3779b97f4a7c15)>>33&c.mask]
}

// Shards reports the shard count (for tests and debug output).
func (c *Cache) Shards() int { return len(c.shards) }

// Lookup finds a cached result for (object, method, argsHash) and validates
// its read set with readHash, which must return the fingerprint of the
// named key's current committed value. It returns (result, true) only if
// every dependency still matches; stale entries are dropped.
func (c *Cache) Lookup(object uint64, method string, argsHash uint64, readHash func(key []byte) uint64) ([]byte, bool) {
	k := entryKey{object: object, method: method, argsHash: argsHash}
	s := c.shardFor(object)
	s.mu.Lock()
	e, ok := s.entries[k]
	if !ok {
		s.stats.Misses++
		s.mu.Unlock()
		return nil, false
	}
	// Copy the read set out so validation runs without the lock (readHash
	// hits the storage engine).
	deps := e.ReadSet
	result := e.Result
	s.mu.Unlock()

	for _, dep := range deps {
		if readHash(dep.Key) != dep.ValueHash {
			s.mu.Lock()
			s.stats.Validations++
			s.removeLocked(k)
			s.mu.Unlock()
			return nil, false
		}
	}
	s.mu.Lock()
	if cur, ok := s.entries[k]; ok {
		s.lru.MoveToFront(cur.element)
	}
	s.stats.Hits++
	s.mu.Unlock()
	return result, true
}

// Store records a validated result with its read set.
func (c *Cache) Store(object uint64, method string, argsHash uint64, result []byte, readSet []ReadDep) {
	k := entryKey{object: object, method: method, argsHash: argsHash}
	e := &Entry{
		Result:  append([]byte(nil), result...),
		ReadSet: readSet,
		key:     k,
	}
	s := c.shardFor(object)
	s.mu.Lock()
	defer s.mu.Unlock()
	if old, ok := s.entries[k]; ok {
		s.lru.Remove(old.element)
	}
	e.element = s.lru.PushFront(e)
	s.entries[k] = e
	objSet, ok := s.byObject[object]
	if !ok {
		objSet = make(map[entryKey]struct{})
		s.byObject[object] = objSet
	}
	objSet[k] = struct{}{}
	s.stats.Stores++

	for len(s.entries) > s.capacity {
		back := s.lru.Back()
		if back == nil {
			break
		}
		s.removeLocked(back.Value.(*Entry).key)
		s.stats.Evictions++
	}
}

// InvalidateObject drops every entry whose invocation ran against object.
// Called on each commit to the object; read-set validation would also catch
// staleness, so this is a proactive fast path. All of an object's entries
// share a shard, so one lock covers the whole invalidation.
func (c *Cache) InvalidateObject(object uint64) {
	s := c.shardFor(object)
	s.mu.Lock()
	defer s.mu.Unlock()
	for k := range s.byObject[object] {
		s.removeLocked(k)
		s.stats.Invalidations++
	}
}

// NoteBypass records an invocation that skipped the cache entirely
// (mutating method, non-deterministic method, or nocache-poisoned run).
func (c *Cache) NoteBypass() {
	c.bypass.Add(1)
}

// removeLocked unlinks an entry from all indexes. Caller holds s.mu.
func (s *shard) removeLocked(k entryKey) {
	e, ok := s.entries[k]
	if !ok {
		return
	}
	delete(s.entries, k)
	s.lru.Remove(e.element)
	if objSet, ok := s.byObject[k.object]; ok {
		delete(objSet, k)
		if len(objSet) == 0 {
			delete(s.byObject, k.object)
		}
	}
}

// Len returns the number of live entries.
func (c *Cache) Len() int {
	n := 0
	for _, s := range c.shards {
		s.mu.Lock()
		n += len(s.entries)
		s.mu.Unlock()
	}
	return n
}

// Stats returns a merged snapshot of the per-shard counters. Shards are
// sampled one at a time — the merge never holds more than one shard lock,
// so a stats scrape cannot stall the whole cache. The snapshot is therefore
// not a single atomic cut, which is fine for monitoring counters.
func (c *Cache) Stats() Stats {
	var out Stats
	for _, s := range c.shards {
		s.mu.Lock()
		st := s.stats
		s.mu.Unlock()
		out.Hits += st.Hits
		out.Misses += st.Misses
		out.Validations += st.Validations
		out.Stores += st.Stores
		out.Evictions += st.Evictions
		out.Invalidations += st.Invalidations
	}
	out.Bypass = c.bypass.Load()
	return out
}
