// Package cache implements LambdaStore's consistent function-result cache
// (paper §4.2.2). For a deterministic read-only method, the storage node
// records the method's output together with a hash of its input and its
// read set (the keys it read and hashes of their values). A later identical
// invocation is answered from the cache only after re-validating every read
// dependency against the current committed state — which the node can do
// cheaply and consistently precisely because data and compute are
// co-located. Commits to an object additionally invalidate its entries
// proactively.
package cache

import (
	"container/list"
	"hash/fnv"
	"sync"
)

// HashValue produces the value fingerprint stored in read sets. A presence
// bit is mixed in so "absent" and "present but empty" differ.
func HashValue(value []byte, present bool) uint64 {
	h := fnv.New64a()
	if present {
		h.Write([]byte{1})
		h.Write(value)
	} else {
		h.Write([]byte{0})
	}
	return h.Sum64()
}

// HashArgs fingerprints an invocation's arguments (the "hash of its input").
func HashArgs(method string, args [][]byte) uint64 {
	h := fnv.New64a()
	h.Write([]byte(method))
	for _, a := range args {
		var lenBuf [8]byte
		n := len(a)
		for i := 0; i < 8; i++ {
			lenBuf[i] = byte(n >> (8 * i))
		}
		h.Write(lenBuf[:])
		h.Write(a)
	}
	return h.Sum64()
}

// ReadDep is one entry of a cached invocation's read set.
type ReadDep struct {
	Key       []byte
	ValueHash uint64
}

// Entry is one cached result.
type Entry struct {
	Result  []byte
	ReadSet []ReadDep

	key     entryKey
	element *list.Element
}

// entryKey identifies a cached invocation.
type entryKey struct {
	object   uint64
	method   string
	argsHash uint64
}

// Stats counts cache outcomes for the benchmark harness.
type Stats struct {
	Hits        uint64
	Misses      uint64
	Validations uint64 // entries found but re-validated away
	Stores      uint64
	Evictions   uint64
}

// Cache is a bounded, LRU-evicting consistent result cache. Safe for
// concurrent use.
type Cache struct {
	mu       sync.Mutex
	entries  map[entryKey]*Entry
	byObject map[uint64]map[entryKey]struct{}
	lru      *list.List // front = most recent
	capacity int
	stats    Stats
}

// New returns a cache bounded to capacity entries (<=0 means 64k).
func New(capacity int) *Cache {
	if capacity <= 0 {
		capacity = 64 << 10
	}
	return &Cache{
		entries:  make(map[entryKey]*Entry),
		byObject: make(map[uint64]map[entryKey]struct{}),
		lru:      list.New(),
		capacity: capacity,
	}
}

// Lookup finds a cached result for (object, method, argsHash) and validates
// its read set with readHash, which must return the fingerprint of the
// named key's current committed value. It returns (result, true) only if
// every dependency still matches; stale entries are dropped.
func (c *Cache) Lookup(object uint64, method string, argsHash uint64, readHash func(key []byte) uint64) ([]byte, bool) {
	k := entryKey{object: object, method: method, argsHash: argsHash}
	c.mu.Lock()
	e, ok := c.entries[k]
	if !ok {
		c.stats.Misses++
		c.mu.Unlock()
		return nil, false
	}
	// Copy the read set out so validation runs without the lock (readHash
	// hits the storage engine).
	deps := e.ReadSet
	result := e.Result
	c.mu.Unlock()

	for _, dep := range deps {
		if readHash(dep.Key) != dep.ValueHash {
			c.mu.Lock()
			c.stats.Validations++
			c.removeLocked(k)
			c.mu.Unlock()
			return nil, false
		}
	}
	c.mu.Lock()
	if cur, ok := c.entries[k]; ok {
		c.lru.MoveToFront(cur.element)
	}
	c.stats.Hits++
	c.mu.Unlock()
	return result, true
}

// Store records a validated result with its read set.
func (c *Cache) Store(object uint64, method string, argsHash uint64, result []byte, readSet []ReadDep) {
	k := entryKey{object: object, method: method, argsHash: argsHash}
	e := &Entry{
		Result:  append([]byte(nil), result...),
		ReadSet: readSet,
		key:     k,
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if old, ok := c.entries[k]; ok {
		c.lru.Remove(old.element)
	}
	e.element = c.lru.PushFront(e)
	c.entries[k] = e
	objSet, ok := c.byObject[object]
	if !ok {
		objSet = make(map[entryKey]struct{})
		c.byObject[object] = objSet
	}
	objSet[k] = struct{}{}
	c.stats.Stores++

	for len(c.entries) > c.capacity {
		back := c.lru.Back()
		if back == nil {
			break
		}
		c.removeLocked(back.Value.(*Entry).key)
		c.stats.Evictions++
	}
}

// InvalidateObject drops every entry whose invocation ran against object.
// Called on each commit to the object; read-set validation would also catch
// staleness, so this is a proactive fast path.
func (c *Cache) InvalidateObject(object uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for k := range c.byObject[object] {
		c.removeLocked(k)
	}
}

// removeLocked unlinks an entry from all indexes. Caller holds c.mu.
func (c *Cache) removeLocked(k entryKey) {
	e, ok := c.entries[k]
	if !ok {
		return
	}
	delete(c.entries, k)
	c.lru.Remove(e.element)
	if objSet, ok := c.byObject[k.object]; ok {
		delete(objSet, k)
		if len(objSet) == 0 {
			delete(c.byObject, k.object)
		}
	}
}

// Len returns the number of live entries.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// Stats returns a snapshot of cache counters.
func (c *Cache) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}
