//go:build !race

package vm

const raceEnabled = false
