package vm

// Static analysis for the token-threaded tier (compile.go). The stack
// bytecode is lowered to a register form: because validated control flow
// gives every pc a single consistent stack depth on all paths reaching it,
// the stack slot at depth d can live in a fixed frame register (locals
// first, then one register per stack slot). The same analysis doubles as
// the compilability check — a module where any function has inconsistent
// depths, or whose call graph never settles on a fixed per-function return
// count, is left to the interpreter (the automatic fallback the ablation
// counters report).

// hostSig is the shape of a resolved host function that stack analysis
// depends on. It is recorded at compile time so a later instantiation
// against a host table with different arities falls back to the
// interpreter instead of running miscompiled code.
type hostSig struct {
	nargs  int
	hasRet bool
}

// funcIR is the register-form lowering of one function.
type funcIR struct {
	// depth[pc] is the operand-stack depth (relative to the frame base) on
	// entry to pc, identical on every path; -1 marks statically unreachable
	// code.
	depth []int32
	// under[pc] marks a reachable pc whose depth is too shallow for its
	// opcode: the interpreter would trap with ErrStackUnderflow there at
	// run time, so the compiled form traps identically and the pc's
	// successors are not propagated.
	under []bool
	// maxDepth sizes the frame: the function needs numLocals+maxDepth
	// registers.
	maxDepth int
	// nret is the number of values every return leaves above the frame
	// base (what the caller's depth advances by).
	nret int
}

// analyzeStatus is the outcome of one per-function analysis pass.
type analyzeStatus int

const (
	analyzeOK analyzeStatus = iota
	// analyzeDeferred means the function calls a function whose return
	// count is not known yet; retry after more of the module resolves.
	analyzeDeferred
	// analyzeFail means the function cannot be lowered (inconsistent
	// depths, inconsistent return depths): the whole module stays on the
	// interpreter.
	analyzeFail
)

// analyzeFunc runs the depth dataflow over one function. nret/known carry
// the per-function return counts resolved so far. In optimistic mode a
// call to an unresolved function ends the path instead of deferring —
// used to extract a candidate return count for functions on call cycles,
// later verified by a strict pass.
func analyzeFunc(m *Module, fi int, nret []int, known []bool, sigs []hostSig, optimistic bool) (*funcIR, analyzeStatus) {
	f := &m.Funcs[fi]
	code := f.code
	ir := &funcIR{
		depth: make([]int32, len(code)),
		under: make([]bool, len(code)),
	}
	for i := range ir.depth {
		ir.depth[i] = -1
	}
	ir.depth[0] = 0
	work := make([]int, 0, 16)
	work = append(work, 0)
	retDepth := -1
	fail := false

	// succ merges depth nd into pc; a conflicting merge fails the function.
	succ := func(pc, nd int) {
		if nd > ir.maxDepth {
			ir.maxDepth = nd
		}
		if cur := ir.depth[pc]; cur < 0 {
			ir.depth[pc] = int32(nd)
			work = append(work, pc)
		} else if int(cur) != nd {
			fail = true
		}
	}

	for len(work) > 0 && !fail {
		pc := work[len(work)-1]
		work = work[:len(work)-1]
		d := int(ir.depth[pc])
		in := code[pc]
		switch in.op {
		case opRet:
			if retDepth < 0 {
				retDepth = d
			} else if retDepth != d {
				return nil, analyzeFail
			}
		case opHalt, opUnreachable:
			// No successors.
		case opJmp:
			succ(int(in.arg), d)
		case opJz, opJnz:
			if d < 1 {
				ir.under[pc] = true
				continue
			}
			succ(int(in.arg), d-1)
			succ(pc+1, d-1)
		case opCall:
			callee := int(in.arg)
			np := m.Funcs[callee].NumParams
			if d < np {
				ir.under[pc] = true
				continue
			}
			if !known[callee] {
				if optimistic {
					continue // path ends here; resolved by the strict pass
				}
				return nil, analyzeDeferred
			}
			succ(pc+1, d-np+nret[callee])
		case opHostCall:
			sig := sigs[in.arg]
			if d < sig.nargs {
				ir.under[pc] = true
				continue
			}
			nd := d - sig.nargs
			if sig.hasRet {
				nd++
			}
			succ(pc+1, nd)
		default:
			eff := stackEffect[in.op]
			if !eff.fixed {
				// Unknown/unsupported opcode: leave the module to the
				// interpreter.
				return nil, analyzeFail
			}
			if d < int(eff.pop) {
				ir.under[pc] = true
				continue
			}
			succ(pc+1, d-int(eff.pop)+int(eff.push))
		}
	}
	if fail {
		return nil, analyzeFail
	}
	if retDepth > 0 {
		ir.nret = retDepth
	}
	return ir, analyzeOK
}

// analyzeModule lowers every function, resolving per-function return
// counts by fixpoint over the call graph; functions on call cycles get a
// candidate count from their call-free return paths, verified by a final
// strict pass. Returns ok=false when the module must stay interpreted.
func analyzeModule(m *Module, sigs []hostSig) ([]*funcIR, bool) {
	n := len(m.Funcs)
	irs := make([]*funcIR, n)
	known := make([]bool, n)
	nret := make([]int, n)
	for {
		progress := false
		remaining := 0
		for i := 0; i < n; i++ {
			if known[i] {
				continue
			}
			ir, st := analyzeFunc(m, i, nret, known, sigs, false)
			switch st {
			case analyzeFail:
				return nil, false
			case analyzeOK:
				irs[i] = ir
				nret[i] = ir.nret
				known[i] = true
				progress = true
			default:
				remaining++
			}
		}
		if remaining == 0 {
			return irs, true
		}
		if !progress {
			break
		}
	}
	// The remaining functions sit on call cycles (recursion). Guess each
	// one's return count from the return paths reachable without entering
	// the cycle, then verify every guess with a strict pass.
	var cyclic []int
	for i := 0; i < n; i++ {
		if known[i] {
			continue
		}
		ir, st := analyzeFunc(m, i, nret, known, sigs, true)
		if st != analyzeOK {
			return nil, false
		}
		nret[i] = ir.nret
		cyclic = append(cyclic, i)
	}
	for _, i := range cyclic {
		known[i] = true
	}
	for _, i := range cyclic {
		ir, st := analyzeFunc(m, i, nret, known, sigs, false)
		if st != analyzeOK || ir.nret != nret[i] {
			return nil, false
		}
		irs[i] = ir
	}
	return irs, true
}
