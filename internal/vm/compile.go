package vm

// The ahead-of-time compilation tier: validated bytecode is translated
// once per module into token-threaded code — per-function arrays of Go
// closures over the register form computed in ir.go — and every instance
// of the module executes the closures instead of the switch interpreter.
//
// The tier is behaviorally identical to the interpreter by construction:
//   - Fuel is charged from the same blockFuel array at the same block
//     leaders, with the same exhaustion semantics (the remainder is
//     consumed so FuelUsed reports the full budget) and the same
//     non-consuming host-call precheck, so FuelUsed matches to the unit.
//   - Every trap (bounds, division, stack limits, unreachable, halt, host
//     errors) fires at the same pc with the same wrapped error. Stack
//     underflow is decided statically (a pc whose depth is too shallow
//     compiles to a trap closure); overflow remains a runtime check
//     against the frame's precomputed headroom.
//   - Stores and memory growth go through the same dirty-region tracking
//     (noteWrite / grow), so ResetFast isolation is preserved for pooled
//     instances running compiled code.
//
// Within a basic block the symbolic translator (translate.go) collapses
// stack traffic entirely: constant pushes and local reads become operand
// descriptors consumed in place, ALU results flow straight into locals,
// and compare-and-branch pairs fuse into single closures. A closure that
// stands in for several source instructions reports the pc of the
// component that would have trapped. Functions the translator declines
// fall back to the one-closure-per-instruction emitter in this file.

import (
	"encoding/binary"
	"fmt"
	"math"
	"sync/atomic"
)

// Tier selects the execution engine for an instance.
type Tier uint8

const (
	// TierThreaded runs compiled token-threaded code, falling back to the
	// interpreter for modules the compiler rejects. The default.
	TierThreaded Tier = iota
	// TierInterp forces the switch interpreter (the ablation baseline).
	TierInterp
)

// ParseTier parses a tier name; the empty string means the default.
func ParseTier(s string) (Tier, error) {
	switch s {
	case "", "threaded":
		return TierThreaded, nil
	case "interp", "interpreter":
		return TierInterp, nil
	}
	return TierThreaded, fmt.Errorf("vm: unknown tier %q (want threaded or interp)", s)
}

func (t Tier) String() string {
	if t == TierInterp {
		return "interp"
	}
	return "threaded"
}

// Compilation telemetry, process-global like the fault counters: surfaced
// as vm.compiled_modules / vm.interp_fallbacks / vm.compile_ns so a
// production fallback to the interpreter is visible, not silent.
var (
	statCompiledModules atomic.Uint64
	statInterpFallbacks atomic.Uint64
	statCompileNs       atomic.Int64
)

// CompileStats is a snapshot of the compilation counters.
type CompileStats struct {
	// CompiledModules counts modules successfully translated to threaded
	// code.
	CompiledModules uint64
	// InterpFallbacks counts modules the compiler rejected plus
	// instantiations that fell back because the host-function arities
	// differed from the ones the module was compiled against.
	InterpFallbacks uint64
	// CompileNs is the total time spent compiling, in nanoseconds.
	CompileNs int64
}

// CompilerStats returns the process-wide compilation counters.
func CompilerStats() CompileStats {
	return CompileStats{
		CompiledModules: statCompiledModules.Load(),
		InterpFallbacks: statInterpFallbacks.Load(),
		CompileNs:       statCompileNs.Load(),
	}
}

// thDone is the sentinel "ip" a closure returns to leave the function:
// a return when thState.trap is nil, a trap otherwise.
const thDone = -1

// thOp executes one (possibly fused) instruction and returns the next ip.
type thOp func(m *thState) int

// thFunc is one compiled function.
type thFunc struct {
	name      string
	numParams int
	numLocals int // params + declared locals
	nret      int // values every return leaves for the caller
	need      int // frame registers: numLocals + static max stack depth
	ops       []thOp
	// bfuel mirrors Func.blockFuel: the fuel charge owed when execution
	// lands on a block leader, zero elsewhere. The trampoline charges it so
	// individual closures never carry metering code.
	bfuel []int64
}

// thModule is the compiled form of a Module, shared (immutably) by all
// its instances.
type thModule struct {
	funcs []*thFunc
}

// thState is the per-instance machine state threaded through the closures.
// Registers live in Instance.regFile — closures index it through m.inst so
// growth during nested calls is never observed through a stale slice.
type thState struct {
	inst *Instance
	// fp is the current frame's base register. Frame layout: params,
	// declared locals, then one register per operand-stack slot.
	fp int
	// height is the interpreter-equivalent total value-stack height at
	// frame entry (operand slots only — locals never counted, exactly as
	// the interpreter keeps locals off the value stack). Push sites
	// compare it against precomputed headroom to reproduce the
	// maxValueStack trap.
	height int
	// depth is the live frame count, bounded by maxCallDepth.
	depth   int
	metered bool
	active  bool // a threaded call is running (reentry falls back to interp)
	trap    error
	hargs   []int64 // reusable host-call argument scratch
}

// failAt records the trap exactly as the interpreter's trapf would.
func (m *thState) failAt(name string, pc int, err error) int {
	m.trap = fmt.Errorf("%w (in %s at pc %d)", err, name, pc)
	return thDone
}

// run drives the threaded loop for one frame. The metered loop charges
// block fuel from bfuel before dispatching a leader, with the same
// exhaustion semantics as the interpreter (the remainder is consumed so
// FuelUsed reports the full budget). Control only ever lands on block
// leaders or pcs inside a block whose bfuel is zero, so the per-dispatch
// check reproduces per-block accounting exactly.
func (tf *thFunc) run(m *thState) {
	ops := tf.ops
	if !m.metered {
		for ip := 0; ip >= 0; {
			ip = ops[ip](m)
		}
		return
	}
	bfuel := tf.bfuel[:len(ops)] // one bounds check covers both arrays
	inst := m.inst
	for ip := 0; ip >= 0; {
		if bf := bfuel[ip]; bf != 0 {
			if inst.fuel < bf {
				inst.used += inst.fuel
				inst.fuel = 0
				m.failAt(tf.name, ip, ErrOutOfFuel)
				return
			}
			inst.fuel -= bf
			inst.used += bf
		}
		ip = ops[ip](m)
	}
}

// growRegs extends the register file, preserving live frames.
func (inst *Instance) growRegs(need int) {
	if c := 2 * len(inst.regFile); need < c {
		need = c
	}
	grown := make([]int64, need)
	copy(grown, inst.regFile)
	inst.regFile = grown
}

// callThreaded runs function idx on the compiled tier. Arguments are
// already length-checked by CallIndex.
func (inst *Instance) callThreaded(idx int, args []int64) (int64, error) {
	tf := inst.thmod.funcs[idx]
	m := &inst.tstate
	m.inst = inst
	m.active = true
	m.fp = 0
	m.height = 0
	m.depth = 1
	m.metered = inst.fuel > 0
	m.trap = nil
	if m.hargs == nil {
		m.hargs = make([]int64, 0, 8)
	}
	if tf.need > len(inst.regFile) {
		inst.growRegs(tf.need)
	}
	rf := inst.regFile
	copy(rf, args)
	for i := tf.numParams; i < tf.numLocals; i++ {
		rf[i] = 0
	}
	tf.run(m)
	m.active = false
	if m.trap != nil {
		return 0, m.trap
	}
	if tf.nret > 0 {
		return inst.regFile[tf.numLocals+tf.nret-1], nil
	}
	return 0, nil
}

// compileModule translates a validated module. ok=false means the module
// stays on the interpreter.
func compileModule(m *Module, sigs []hostSig) (*thModule, bool) {
	irs, ok := analyzeModule(m, sigs)
	if !ok {
		return nil, false
	}
	tm := &thModule{funcs: make([]*thFunc, len(m.Funcs))}
	for i := range m.Funcs {
		f := &m.Funcs[i]
		nl := f.NumParams + f.NumLocals
		bf := make([]int64, len(f.code))
		for pc, v := range f.blockFuel {
			bf[pc] = int64(v)
		}
		tm.funcs[i] = &thFunc{
			name:      f.Name,
			numParams: f.NumParams,
			numLocals: nl,
			nret:      irs[i].nret,
			need:      nl + irs[i].maxDepth,
			ops:       make([]thOp, len(f.code)),
			bfuel:     bf,
		}
	}
	for i := range m.Funcs {
		emitFunc(m, i, irs[i], tm, sigs)
	}
	return tm, true
}

// emitFunc fills in one function's closure array: block-level symbolic
// translation (translate.go) when it applies, the one-closure-per-pc
// emitter below otherwise. Fuel is charged by the trampoline from
// thFunc.bfuel, never by the closures.
func emitFunc(m *Module, fi int, ir *funcIR, tm *thModule, sigs []hostSig) {
	f := &m.Funcs[fi]
	tf := tm.funcs[fi]
	if !emitFuncSym(m, fi, ir, tm, sigs) {
		for pc := range f.code {
			tf.ops[pc] = emitOp(m, f, tf, ir, tm, sigs, pc)
		}
	}
}

// emitOp lowers code[pc] to a closure over the register form. d is the
// static stack depth on entry; slot i of the operand stack lives in frame
// register numLocals+i.
func emitOp(m *Module, f *Func, tf *thFunc, ir *funcIR, tm *thModule, sigs []hostSig, pc int) thOp {
	name := f.Name
	nl := tf.numLocals
	in := f.code[pc]
	at := pc // captured trap location
	if ir.depth[pc] < 0 {
		// Statically unreachable; can never execute, guard anyway.
		return func(m *thState) int { return m.failAt(name, at, ErrUnreachable) }
	}
	d := int(ir.depth[pc])
	if ir.under[pc] {
		// The interpreter would trap here with ErrStackUnderflow — except
		// at a call site, where the frame-depth limit is checked first.
		if in.op == opCall {
			return func(m *thState) int {
				if m.depth >= maxCallDepth {
					return m.failAt(name, at, ErrStackOverflow)
				}
				return m.failAt(name, at, ErrStackUnderflow)
			}
		}
		return func(m *thState) int { return m.failAt(name, at, ErrStackUnderflow) }
	}
	next := pc + 1
	top := nl + d - 1        // register of the current stack top
	lim := maxValueStack - d // push headroom: trap when height >= lim

	switch in.op {
	case opNop, opPop:
		// Pop at a consistent depth is pure bookkeeping in register form.
		return func(m *thState) int { return next }
	case opUnreachable:
		return func(m *thState) int { return m.failAt(name, at, ErrUnreachable) }
	case opHalt:
		return func(m *thState) int { return m.failAt(name, at, ErrHalted) }

	case opPush:
		val := in.arg
		dst := nl + d
		return func(m *thState) int {
			if m.height >= lim {
				return m.failAt(name, at, ErrStackOverflow)
			}
			m.inst.regFile[m.fp+dst] = val
			return next
		}
	case opDup:
		dst := nl + d
		return func(m *thState) int {
			if m.height >= lim {
				return m.failAt(name, at, ErrStackOverflow)
			}
			rf := m.inst.regFile
			rf[m.fp+dst] = rf[m.fp+top]
			return next
		}
	case opSwap:
		a := top - 1
		return func(m *thState) int {
			rf := m.inst.regFile
			rf[m.fp+a], rf[m.fp+a+1] = rf[m.fp+a+1], rf[m.fp+a]
			return next
		}

	case opLocalGet:
		src := int(in.arg)
		dst := nl + d
		return func(m *thState) int {
			if m.height >= lim {
				return m.failAt(name, at, ErrStackOverflow)
			}
			rf := m.inst.regFile
			rf[m.fp+dst] = rf[m.fp+src]
			return next
		}
	case opLocalSet, opLocalTee:
		// Identical in register form: tee keeps the slot, set abandons it,
		// and the depth bookkeeping is static.
		dst := int(in.arg)
		return func(m *thState) int {
			rf := m.inst.regFile
			rf[m.fp+dst] = rf[m.fp+top]
			return next
		}

	case opJmp:
		target := int(in.arg)
		return func(m *thState) int { return target }
	case opJz:
		target := int(in.arg)
		return func(m *thState) int {
			if m.inst.regFile[m.fp+top] == 0 {
				return target
			}
			return next
		}
	case opJnz:
		target := int(in.arg)
		return func(m *thState) int {
			if m.inst.regFile[m.fp+top] != 0 {
				return target
			}
			return next
		}

	case opRet:
		return func(m *thState) int { return thDone }

	case opCall:
		callee := tm.funcs[in.arg]
		np := callee.numParams
		cnl := callee.numLocals
		cneed := callee.need
		cret := callee.nret
		// The callee's frame starts at the caller's argument slots, so
		// params pass by aliasing: caller stack slots [d-np, d) are the
		// callee's registers [0, np).
		frameOff := nl + d - np
		hDelta := d - np
		return func(m *thState) int {
			if m.depth >= maxCallDepth {
				return m.failAt(name, at, ErrStackOverflow)
			}
			inst := m.inst
			cfp := m.fp + frameOff
			if want := cfp + cneed; want > len(inst.regFile) {
				inst.growRegs(want)
			}
			rf := inst.regFile
			for i := cfp + np; i < cfp+cnl; i++ {
				rf[i] = 0
			}
			sfp, sh := m.fp, m.height
			m.fp = cfp
			m.height += hDelta
			m.depth++
			callee.run(m)
			m.fp, m.height = sfp, sh
			m.depth--
			if m.trap != nil {
				return thDone
			}
			if cret > 0 {
				// Move the callee's results down over its frame, where the
				// caller's stack continues.
				rf = inst.regFile
				copy(rf[cfp:cfp+cret], rf[cfp+cnl:cfp+cnl+cret])
			}
			return next
		}

	case opAdd, opSub, opMul, opDivS, opRemS, opAnd, opOr, opXor, opShl, opShrS, opShrU,
		opEq, opNe, opLtS, opGtS, opLeS, opGeS:
		return emitBin(in.op, name, at, top-1, next)

	case opEqz:
		return func(m *thState) int {
			rf := m.inst.regFile
			rf[m.fp+top] = b2i(rf[m.fp+top] == 0)
			return next
		}

	case opLoad8U:
		return func(m *thState) int {
			inst := m.inst
			rf := inst.regFile
			addr := rf[m.fp+top]
			if addr < 0 || addr >= int64(len(inst.mem)) {
				return m.failAt(name, at, ErrMemOutOfBounds)
			}
			rf[m.fp+top] = int64(inst.mem[addr])
			return next
		}
	case opLoad64:
		return func(m *thState) int {
			inst := m.inst
			rf := inst.regFile
			addr := rf[m.fp+top]
			if addr < 0 || addr+8 > int64(len(inst.mem)) {
				return m.failAt(name, at, ErrMemOutOfBounds)
			}
			rf[m.fp+top] = int64(binary.LittleEndian.Uint64(inst.mem[addr:]))
			return next
		}
	case opStore8:
		a := top - 1
		return func(m *thState) int {
			inst := m.inst
			rf := inst.regFile
			addr := rf[m.fp+a]
			if addr < 0 || addr >= int64(len(inst.mem)) {
				return m.failAt(name, at, ErrMemOutOfBounds)
			}
			inst.mem[addr] = byte(rf[m.fp+a+1])
			inst.noteWrite(addr + 1)
			return next
		}
	case opStore64:
		a := top - 1
		return func(m *thState) int {
			inst := m.inst
			rf := inst.regFile
			addr := rf[m.fp+a]
			if addr < 0 || addr+8 > int64(len(inst.mem)) {
				return m.failAt(name, at, ErrMemOutOfBounds)
			}
			binary.LittleEndian.PutUint64(inst.mem[addr:], uint64(rf[m.fp+a+1]))
			inst.noteWrite(addr + 8)
			return next
		}

	case opMemSize:
		dst := nl + d
		return func(m *thState) int {
			if m.height >= lim {
				return m.failAt(name, at, ErrStackOverflow)
			}
			inst := m.inst
			inst.regFile[m.fp+dst] = int64(len(inst.mem))
			return next
		}
	case opMemGrow:
		return func(m *thState) int {
			inst := m.inst
			rf := inst.regFile
			old := int64(len(inst.mem))
			if err := inst.grow(rf[m.fp+top]); err != nil {
				return m.failAt(name, at, err)
			}
			rf[m.fp+top] = old
			return next
		}

	case opHostCall:
		hidx := int(in.arg)
		sig := sigs[hidx]
		na := sig.nargs
		hasRet := sig.hasRet
		abase := nl + d - na
		retLim := maxValueStack - (d - na)
		return func(m *thState) int {
			inst := m.inst
			hf := inst.hosts[hidx]
			if m.metered {
				// The precheck does not consume the remainder, matching
				// the interpreter.
				if inst.fuel < hf.Cost {
					return m.failAt(name, at, ErrOutOfFuel)
				}
				inst.fuel -= hf.Cost
				inst.used += hf.Cost
			}
			m.hargs = append(m.hargs[:0], inst.regFile[m.fp+abase:m.fp+abase+na]...)
			ret, err := hf.Fn(inst, m.hargs)
			if err != nil {
				return m.failAt(name, at, &HostError{Err: err})
			}
			if hasRet {
				if m.height >= retLim {
					return m.failAt(name, at, ErrStackOverflow)
				}
				inst.regFile[m.fp+abase] = ret
			}
			return next
		}

	case opPushPair:
		hi := in.arg >> 32
		lo := in.arg & 0xffffffff
		dst := nl + d
		pairLim := maxValueStack - d - 1
		return func(m *thState) int {
			if m.height >= pairLim {
				return m.failAt(name, at, ErrStackOverflow)
			}
			rf := m.inst.regFile
			rf[m.fp+dst] = hi
			rf[m.fp+dst+1] = lo
			return next
		}
	case opUnpackPtr:
		return func(m *thState) int {
			rf := m.inst.regFile
			rf[m.fp+top] = int64(uint64(rf[m.fp+top]) >> 32)
			return next
		}
	case opUnpackLen:
		return func(m *thState) int {
			rf := m.inst.regFile
			rf[m.fp+top] &= 0xffffffff
			return next
		}
	case opAddI:
		k := in.arg
		return func(m *thState) int {
			m.inst.regFile[m.fp+top] += k
			return next
		}
	case opLocalAddI:
		dst := int(in.arg >> 32)
		k := int64(int32(in.arg & 0xffffffff))
		return func(m *thState) int {
			m.inst.regFile[m.fp+dst] += k
			return next
		}
	}
	// Validate rejects unknown opcodes and analyzeFunc re-checks, so this
	// is unreachable; trap defensively rather than crash.
	return func(m *thState) int {
		return m.failAt(name, at, fmt.Errorf("vm: unknown opcode %d", in.op))
	}
}

// emitBin lowers a two-operand arithmetic/compare op: operands in
// registers a, a+1, result in a.
func emitBin(op opcode, name string, at, a, next int) thOp {
	switch op {
	case opAdd:
		return func(m *thState) int {
			rf := m.inst.regFile
			rf[m.fp+a] += rf[m.fp+a+1]
			return next
		}
	case opSub:
		return func(m *thState) int {
			rf := m.inst.regFile
			rf[m.fp+a] -= rf[m.fp+a+1]
			return next
		}
	case opMul:
		return func(m *thState) int {
			rf := m.inst.regFile
			rf[m.fp+a] *= rf[m.fp+a+1]
			return next
		}
	case opDivS:
		return func(m *thState) int {
			rf := m.inst.regFile
			x, y := rf[m.fp+a], rf[m.fp+a+1]
			if y == 0 || (x == math.MinInt64 && y == -1) {
				return m.failAt(name, at, ErrDivByZero)
			}
			rf[m.fp+a] = x / y
			return next
		}
	case opRemS:
		return func(m *thState) int {
			rf := m.inst.regFile
			y := rf[m.fp+a+1]
			if y == 0 {
				return m.failAt(name, at, ErrDivByZero)
			}
			rf[m.fp+a] %= y
			return next
		}
	case opAnd:
		return func(m *thState) int {
			rf := m.inst.regFile
			rf[m.fp+a] &= rf[m.fp+a+1]
			return next
		}
	case opOr:
		return func(m *thState) int {
			rf := m.inst.regFile
			rf[m.fp+a] |= rf[m.fp+a+1]
			return next
		}
	case opXor:
		return func(m *thState) int {
			rf := m.inst.regFile
			rf[m.fp+a] ^= rf[m.fp+a+1]
			return next
		}
	case opShl:
		return func(m *thState) int {
			rf := m.inst.regFile
			rf[m.fp+a] <<= uint64(rf[m.fp+a+1]) & 63
			return next
		}
	case opShrS:
		return func(m *thState) int {
			rf := m.inst.regFile
			rf[m.fp+a] >>= uint64(rf[m.fp+a+1]) & 63
			return next
		}
	case opShrU:
		return func(m *thState) int {
			rf := m.inst.regFile
			rf[m.fp+a] = int64(uint64(rf[m.fp+a]) >> (uint64(rf[m.fp+a+1]) & 63))
			return next
		}
	case opEq:
		return func(m *thState) int {
			rf := m.inst.regFile
			rf[m.fp+a] = b2i(rf[m.fp+a] == rf[m.fp+a+1])
			return next
		}
	case opNe:
		return func(m *thState) int {
			rf := m.inst.regFile
			rf[m.fp+a] = b2i(rf[m.fp+a] != rf[m.fp+a+1])
			return next
		}
	case opLtS:
		return func(m *thState) int {
			rf := m.inst.regFile
			rf[m.fp+a] = b2i(rf[m.fp+a] < rf[m.fp+a+1])
			return next
		}
	case opGtS:
		return func(m *thState) int {
			rf := m.inst.regFile
			rf[m.fp+a] = b2i(rf[m.fp+a] > rf[m.fp+a+1])
			return next
		}
	case opLeS:
		return func(m *thState) int {
			rf := m.inst.regFile
			rf[m.fp+a] = b2i(rf[m.fp+a] <= rf[m.fp+a+1])
			return next
		}
	default: // opGeS
		return func(m *thState) int {
			rf := m.inst.regFile
			rf[m.fp+a] = b2i(rf[m.fp+a] >= rf[m.fp+a+1])
			return next
		}
	}
}
