package vm

import (
	"testing"
)

// spinSrc is a compute-heavy kernel: a counted arithmetic loop whose body
// is pure register traffic, the warm-path shape the threaded tier targets.
const spinSrc = `
func spin params=1 locals=3 export
loop:
  local.get 1
  local.get 0
  ge_s
  jnz done
  local.get 2
  local.get 1
  mul
  push 7
  add
  local.set 2
  local.get 1
  push 1
  add
  local.set 1
  jmp loop
done:
  local.get 2
  ret
end
`

func TestParseTier(t *testing.T) {
	cases := []struct {
		in   string
		want Tier
		err  bool
	}{
		{"", TierThreaded, false},
		{"threaded", TierThreaded, false},
		{"interp", TierInterp, false},
		{"interpreter", TierInterp, false},
		{"jit", 0, true},
	}
	for _, c := range cases {
		got, err := ParseTier(c.in)
		if c.err {
			if err == nil {
				t.Fatalf("ParseTier(%q): expected error", c.in)
			}
			continue
		}
		if err != nil || got != c.want {
			t.Fatalf("ParseTier(%q) = %v, %v; want %v", c.in, got, err, c.want)
		}
	}
}

func TestTierSelection(t *testing.T) {
	mod := MustAssemble(spinSrc)
	inst, err := NewInstance(mod, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if inst.EffectiveTier() != TierThreaded {
		t.Fatalf("default tier: got %v, want threaded", inst.EffectiveTier())
	}
	inst.SetTier(TierInterp)
	if inst.EffectiveTier() != TierInterp {
		t.Fatalf("after SetTier(interp): got %v", inst.EffectiveTier())
	}
	inst.SetTier(TierThreaded)
	want, err := inst.Call("spin", 100)
	if err != nil {
		t.Fatal(err)
	}
	inst2, _ := NewInstance(mod, nil, 0)
	inst2.SetTier(TierInterp)
	got, err := inst2.Call("spin", 100)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("tier divergence: interp %d, threaded %d", got, want)
	}
}

// TestDepthInconsistentFallback hand-builds a module whose merge point is
// reached at two different stack depths; the compiler must reject it and
// the instance must fall back to the interpreter.
func TestDepthInconsistentFallback(t *testing.T) {
	f := Func{
		Name:      "weird",
		NumParams: 1,
		NumLocals: 1,
		Exported:  true,
		code: []instr{
			{op: opLocalGet, arg: 0}, // 0
			{op: opJz, arg: 4},       // 1
			{op: opPush, arg: 7},     // 2: depth 1
			{op: opJmp, arg: 6},      // 3
			{op: opPush, arg: 9},     // 4: depth 1
			{op: opPush, arg: 9},     // 5: depth 2
			{op: opNop, arg: 0},      // 6: merge at depth 1 vs 2
			{op: opRet, arg: 0},      // 7
		},
	}
	mod := &Module{Funcs: []Func{f}}
	before := CompilerStats().InterpFallbacks
	if err := mod.Validate(); err != nil {
		t.Fatal(err)
	}
	inst, err := NewInstance(mod, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if inst.EffectiveTier() != TierInterp {
		t.Fatal("depth-inconsistent module should fall back to the interpreter")
	}
	if CompilerStats().InterpFallbacks <= before {
		t.Fatal("fallback counter did not advance")
	}
	// Both arms still execute correctly through the interpreter.
	for _, arg := range []int64{0, 1} {
		if _, err := inst.Call("weird", arg); err != nil {
			t.Fatalf("arg %d: %v", arg, err)
		}
		inst.Reset(0)
	}
}

// TestHostSigMismatchFallback instantiates the same module against two
// host tables whose signatures differ; the second instantiation must run
// interpreted rather than reuse threaded code compiled for the first.
func TestHostSigMismatchFallback(t *testing.T) {
	src := `
func main params=1 locals=0 export
  local.get 0
  hostcall f
  ret
end
`
	mod := MustAssemble(src)

	h1 := NewHostTable()
	h1.Register(HostFunc{Name: "f", NArgs: 1, HasRet: true, Cost: 1,
		Fn: func(inst *Instance, args []int64) (int64, error) { return args[0] * 2, nil }})
	inst1, err := NewInstance(mod, h1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if inst1.EffectiveTier() != TierThreaded {
		t.Fatal("first instantiation should compile threaded")
	}
	got, err := inst1.Call("main", 21)
	if err != nil || got != 42 {
		t.Fatalf("threaded hostcall: %d, %v", got, err)
	}

	h2 := NewHostTable()
	h2.Register(HostFunc{Name: "f", NArgs: 1, HasRet: false, Cost: 1,
		Fn: func(inst *Instance, args []int64) (int64, error) { return 0, nil }})
	inst2, err := NewInstance(mod, h2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if inst2.EffectiveTier() != TierInterp {
		t.Fatal("sig-mismatched instantiation should fall back to the interpreter")
	}
	if _, err := inst2.Call("main", 21); err != nil {
		t.Fatal(err)
	}
}

// TestThreadedResetFastIsolation taints memory through threaded-tier
// stores (including the fused store peephole) at addresses far apart,
// then checks ResetFast scrubs every dirty byte.
func TestThreadedResetFastIsolation(t *testing.T) {
	src := `
func taint params=2 locals=0 export
  local.get 0
  local.get 1
  store64
  local.get 0
  push 40000
  add
  local.get 1
  store8
  push 0
  ret
end
`
	mod := MustAssemble(src)
	inst, err := NewInstance(mod, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if inst.EffectiveTier() != TierThreaded {
		t.Fatal("expected threaded tier")
	}
	if _, err := inst.Call("taint", 1000, -1); err != nil {
		t.Fatal(err)
	}
	inst.ResetFast(0)
	buf, err := inst.MemRead(0, inst.MemSize())
	if err != nil {
		t.Fatal(err)
	}
	for i, b := range buf {
		if b != 0 {
			t.Fatalf("byte %d = %#x after ResetFast; compiled-code write leaked", i, b)
		}
	}
}

// TestThreadedZeroAllocWarm asserts the warm invoke path of the threaded
// tier performs zero heap allocations once the register file has grown.
func TestThreadedZeroAllocWarm(t *testing.T) {
	mod := MustAssemble(spinSrc)
	inst, err := NewInstance(mod, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	idx := mod.FuncIndex("spin")
	args := []int64{200}
	// Warm up: grows regFile and hargs scratch to steady state.
	if _, err := inst.CallIndex(idx, args...); err != nil {
		t.Fatal(err)
	}
	inst.ResetFast(0)
	avg := testing.AllocsPerRun(100, func() {
		if _, err := inst.CallIndex(idx, args...); err != nil {
			t.Fatal(err)
		}
		inst.ResetFast(0)
	})
	if avg != 0 {
		t.Fatalf("warm threaded invoke allocates %.1f allocs/op, want 0", avg)
	}
}
