package vm

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
)

// Execution limits.
const (
	maxValueStack = 64 << 10
	maxCallDepth  = 128
)

// Traps terminate a guest invocation without affecting the host.
var (
	ErrOutOfFuel      = errors.New("vm: fuel exhausted")
	ErrMemOutOfBounds = errors.New("vm: memory access out of bounds")
	ErrMemLimit       = errors.New("vm: memory growth past limit")
	ErrStackOverflow  = errors.New("vm: stack overflow")
	ErrStackUnderflow = errors.New("vm: stack underflow")
	ErrDivByZero      = errors.New("vm: integer divide by zero")
	ErrUnreachable    = errors.New("vm: unreachable executed")
	ErrNoSuchFunction = errors.New("vm: no such function")
	ErrHalted         = errors.New("vm: halted")
)

// Instance is one isolated execution context of a Module: its own linear
// memory, value stack and fuel budget. Instances are not safe for concurrent
// use; LambdaStore creates (or pools) one per invocation, which is what
// gives the paper's "isolated from other invocations of the same method"
// property.
type Instance struct {
	module *Module
	hosts  []*HostFunc
	mem    []byte
	stack  []int64
	fuel   int64
	used   int64 // fuel consumed so far
	brk    int   // bump-allocator watermark (starts after the data segment)
	// hiWater is one past the highest memory byte written since the last
	// reset (stores, host MemWrites). ResetFast zeroes only [data, hiWater)
	// instead of re-imaging the whole linear memory.
	hiWater int

	// Threaded-tier state (compile.go): the compiled module (nil when the
	// module fell back to the interpreter), the frame register file, and
	// the per-instance machine state. regFile persists across resets —
	// the register discipline writes every live slot before reading it,
	// so stale values can never leak into a later invocation.
	thmod   *thModule
	regFile []int64
	tstate  thState
	tier    Tier

	// Ctx lets host functions carry per-invocation state (e.g. the storage
	// transaction) without a global registry.
	Ctx any
}

// NewInstance instantiates module with imports resolved against hosts and
// the given fuel budget. fuel <= 0 means unlimited (used by trusted code
// paths and some benchmarks).
func NewInstance(module *Module, hosts *HostTable, fuel int64) (*Instance, error) {
	var resolved []*HostFunc
	if len(module.Imports) > 0 {
		if hosts == nil {
			return nil, fmt.Errorf("vm: module has imports but no host table")
		}
		var err error
		resolved, err = hosts.resolve(module.Imports)
		if err != nil {
			return nil, err
		}
	}
	mem := make([]byte, module.MinPages*PageBytes)
	copy(mem, module.Data)
	brk := (len(module.Data) + 15) &^ 15
	return &Instance{
		module: module,
		hosts:  resolved,
		mem:    mem,
		fuel:   fuel,
		brk:    brk,
		thmod:  module.threadedFor(resolved),
	}, nil
}

// SetTier selects the execution engine for subsequent calls. The default
// is TierThreaded; instances of modules the compiler rejected run on the
// interpreter regardless.
func (inst *Instance) SetTier(t Tier) { inst.tier = t }

// EffectiveTier reports the engine calls actually run on: TierInterp when
// the interpreter was selected or the module was not compiled.
func (inst *Instance) EffectiveTier() Tier {
	if inst.tier == TierThreaded && inst.thmod != nil {
		return TierThreaded
	}
	return TierInterp
}

// Reset prepares the instance for reuse by a new invocation: memory is
// re-imaged from the data segment, the stack cleared and fuel refilled.
// Reusing instances is the warm-start path (paper §2.1); creating a fresh
// one is the cold start.
func (inst *Instance) Reset(fuel int64) {
	if len(inst.mem) > inst.module.MinPages*PageBytes {
		inst.mem = inst.mem[:inst.module.MinPages*PageBytes]
	}
	for i := range inst.mem {
		inst.mem[i] = 0
	}
	inst.resetCommon(fuel)
}

// ResetFast is Reset without the full memory re-image: only the region the
// previous invocation actually dirtied — [len(Data), hiWater), as tracked
// by the store opcodes and host MemWrite — is zeroed, and the data segment
// is re-copied over any in-place corruption. A method that touches a few
// KB of a 64 KB memory pays for a few KB. Isolation is preserved: every
// write path through the instance raises hiWater, so no byte written by
// the previous invocation survives.
func (inst *Instance) ResetFast(fuel int64) {
	if len(inst.mem) > inst.module.MinPages*PageBytes {
		inst.mem = inst.mem[:inst.module.MinPages*PageBytes]
	}
	nd := len(inst.module.Data)
	hi := inst.hiWater
	if hi > len(inst.mem) {
		hi = len(inst.mem)
	}
	for i := nd; i < hi; i++ {
		inst.mem[i] = 0
	}
	inst.resetCommon(fuel)
}

func (inst *Instance) resetCommon(fuel int64) {
	copy(inst.mem, inst.module.Data)
	inst.stack = inst.stack[:0]
	inst.fuel = fuel
	inst.used = 0
	inst.brk = (len(inst.module.Data) + 15) &^ 15
	inst.hiWater = 0
	inst.Ctx = nil
}

// noteWrite raises the dirty high-water mark consulted by ResetFast.
func (inst *Instance) noteWrite(end int64) {
	if int(end) > inst.hiWater {
		inst.hiWater = int(end)
	}
}

// FuelUsed returns the fuel consumed since instantiation or the last Reset.
func (inst *Instance) FuelUsed() int64 { return inst.used }

// MemSize returns the current linear-memory size in bytes.
func (inst *Instance) MemSize() int64 { return int64(len(inst.mem)) }

// Module returns the instance's module.
func (inst *Instance) Module() *Module { return inst.module }

// MemRead returns a copy of guest memory [ptr, ptr+n).
func (inst *Instance) MemRead(ptr, n int64) ([]byte, error) {
	if ptr < 0 || n < 0 || ptr+n > int64(len(inst.mem)) {
		return nil, ErrMemOutOfBounds
	}
	return append([]byte(nil), inst.mem[ptr:ptr+n]...), nil
}

// MemWrite copies data into guest memory at ptr.
func (inst *Instance) MemWrite(ptr int64, data []byte) error {
	if ptr < 0 || ptr+int64(len(data)) > int64(len(inst.mem)) {
		return ErrMemOutOfBounds
	}
	copy(inst.mem[ptr:], data)
	inst.noteWrite(ptr + int64(len(data)))
	return nil
}

// Alloc reserves n bytes of guest memory via the bump allocator, growing
// memory if needed, and returns the guest address. Host functions use it to
// hand variable-length results back to guests.
func (inst *Instance) Alloc(n int64) (int64, error) {
	if n < 0 {
		return 0, ErrMemOutOfBounds
	}
	need := int64(inst.brk) + n
	if need > int64(len(inst.mem)) {
		pages := (need - int64(len(inst.mem)) + PageBytes - 1) / PageBytes
		if err := inst.grow(pages * PageBytes); err != nil {
			return 0, err
		}
	}
	ptr := int64(inst.brk)
	inst.brk += int((n + 15) &^ 15)
	return ptr, nil
}

// grow extends linear memory by delta bytes, respecting MaxPages.
func (inst *Instance) grow(delta int64) error {
	if delta < 0 {
		return ErrMemLimit
	}
	newSize := int64(len(inst.mem)) + delta
	if newSize > int64(inst.module.MaxPages)*PageBytes {
		return ErrMemLimit
	}
	grown := make([]byte, newSize)
	copy(grown, inst.mem)
	inst.mem = grown
	return nil
}

// frame is one activation record.
type frame struct {
	fn     *Func
	pc     int
	locals []int64
	base   int // value-stack height at entry
}

// Call runs the named function with args and returns the value left on top
// of the stack (0 if the function leaves none).
func (inst *Instance) Call(name string, args ...int64) (int64, error) {
	idx := inst.module.FuncIndex(name)
	if idx < 0 {
		return 0, fmt.Errorf("%w: %q", ErrNoSuchFunction, name)
	}
	return inst.CallIndex(idx, args...)
}

// CallIndex runs function idx. See Call.
func (inst *Instance) CallIndex(idx int, args ...int64) (int64, error) {
	fn := &inst.module.Funcs[idx]
	if len(args) != fn.NumParams {
		return 0, fmt.Errorf("vm: %q takes %d args, got %d", fn.Name, fn.NumParams, len(args))
	}
	// The threaded tier handles a whole call tree; a reentrant call from a
	// host function mid-run takes the interpreter, whose frames are
	// independent of the register file.
	if inst.tier == TierThreaded && inst.thmod != nil && !inst.tstate.active {
		return inst.callThreaded(idx, args)
	}
	locals := make([]int64, fn.NumParams+fn.NumLocals)
	copy(locals, args)
	base := len(inst.stack)
	err := inst.run(frame{fn: fn, locals: locals, base: base})
	if err != nil {
		inst.stack = inst.stack[:base]
		return 0, err
	}
	var ret int64
	if len(inst.stack) > base {
		ret = inst.stack[len(inst.stack)-1]
	}
	inst.stack = inst.stack[:base]
	return ret, nil
}

// trapf annotates a trap with its location.
func trapf(f *frame, pc int, err error) error {
	return fmt.Errorf("%w (in %s at pc %d)", err, f.fn.Name, pc)
}

// run is the interpreter loop. It manages an explicit frame stack so guest
// recursion depth is bounded by maxCallDepth, not the Go stack.
func (inst *Instance) run(entry frame) error {
	frames := make([]frame, 1, 8)
	frames[0] = entry
	metered := inst.fuel > 0

	for {
		f := &frames[len(frames)-1]
		code := f.fn.code
		bfuel := f.fn.blockFuel
		pc := f.pc

	dispatch:
		for {
			if pc >= len(code) {
				// Validation guarantees terminating opcodes, so this is
				// unreachable; guard anyway.
				return trapf(f, pc, ErrUnreachable)
			}
			// Fuel is charged per basic block: block leaders carry the whole
			// straight-line cost, every other pc charges nothing. A resume
			// after call/ret lands mid-block on code already paid for at the
			// leader. Exhaustion consumes the remainder so FuelUsed reports
			// the full budget, as the per-instruction scheme did.
			if metered {
				if bf := int64(bfuel[pc]); bf != 0 {
					if inst.fuel < bf {
						inst.used += inst.fuel
						inst.fuel = 0
						return trapf(f, pc, ErrOutOfFuel)
					}
					inst.fuel -= bf
					inst.used += bf
				}
			}
			in := code[pc]
			switch in.op {
			case opNop:
				pc++
			case opUnreachable:
				return trapf(f, pc, ErrUnreachable)

			case opPush:
				if len(inst.stack) >= maxValueStack {
					return trapf(f, pc, ErrStackOverflow)
				}
				inst.stack = append(inst.stack, in.arg)
				pc++
			case opPop:
				if len(inst.stack) <= f.base {
					return trapf(f, pc, ErrStackUnderflow)
				}
				inst.stack = inst.stack[:len(inst.stack)-1]
				pc++
			case opDup:
				n := len(inst.stack)
				if n <= f.base {
					return trapf(f, pc, ErrStackUnderflow)
				}
				if n >= maxValueStack {
					return trapf(f, pc, ErrStackOverflow)
				}
				inst.stack = append(inst.stack, inst.stack[n-1])
				pc++
			case opSwap:
				n := len(inst.stack)
				if n-1 <= f.base {
					return trapf(f, pc, ErrStackUnderflow)
				}
				inst.stack[n-1], inst.stack[n-2] = inst.stack[n-2], inst.stack[n-1]
				pc++

			case opLocalGet:
				if len(inst.stack) >= maxValueStack {
					return trapf(f, pc, ErrStackOverflow)
				}
				inst.stack = append(inst.stack, f.locals[in.arg])
				pc++
			case opLocalSet:
				n := len(inst.stack)
				if n <= f.base {
					return trapf(f, pc, ErrStackUnderflow)
				}
				f.locals[in.arg] = inst.stack[n-1]
				inst.stack = inst.stack[:n-1]
				pc++
			case opLocalTee:
				n := len(inst.stack)
				if n <= f.base {
					return trapf(f, pc, ErrStackUnderflow)
				}
				f.locals[in.arg] = inst.stack[n-1]
				pc++

			case opJmp:
				pc = int(in.arg)
			case opJz, opJnz:
				n := len(inst.stack)
				if n <= f.base {
					return trapf(f, pc, ErrStackUnderflow)
				}
				v := inst.stack[n-1]
				inst.stack = inst.stack[:n-1]
				if (v == 0) == (in.op == opJz) {
					pc = int(in.arg)
				} else {
					pc++
				}

			case opCall:
				if len(frames) >= maxCallDepth {
					return trapf(f, pc, ErrStackOverflow)
				}
				callee := &inst.module.Funcs[in.arg]
				n := len(inst.stack)
				if n-callee.NumParams < f.base {
					return trapf(f, pc, ErrStackUnderflow)
				}
				locals := make([]int64, callee.NumParams+callee.NumLocals)
				copy(locals, inst.stack[n-callee.NumParams:])
				inst.stack = inst.stack[:n-callee.NumParams]
				f.pc = pc + 1
				frames = append(frames, frame{fn: callee, locals: locals, base: len(inst.stack)})
				break dispatch

			case opRet:
				// The callee's results (anything above its base) stay on the
				// stack for the caller.
				frames = frames[:len(frames)-1]
				if len(frames) == 0 {
					return nil
				}
				break dispatch

			case opHalt:
				return trapf(f, pc, ErrHalted)

			case opAdd, opSub, opMul, opDivS, opRemS, opAnd, opOr, opXor, opShl, opShrS, opShrU,
				opEq, opNe, opLtS, opGtS, opLeS, opGeS:
				n := len(inst.stack)
				if n-1 <= f.base {
					return trapf(f, pc, ErrStackUnderflow)
				}
				b := inst.stack[n-1]
				a := inst.stack[n-2]
				inst.stack = inst.stack[:n-1]
				var r int64
				switch in.op {
				case opAdd:
					r = a + b
				case opSub:
					r = a - b
				case opMul:
					r = a * b
				case opDivS:
					if b == 0 || (a == math.MinInt64 && b == -1) {
						return trapf(f, pc, ErrDivByZero)
					}
					r = a / b
				case opRemS:
					if b == 0 {
						return trapf(f, pc, ErrDivByZero)
					}
					r = a % b
				case opAnd:
					r = a & b
				case opOr:
					r = a | b
				case opXor:
					r = a ^ b
				case opShl:
					r = a << (uint64(b) & 63)
				case opShrS:
					r = a >> (uint64(b) & 63)
				case opShrU:
					r = int64(uint64(a) >> (uint64(b) & 63))
				case opEq:
					r = b2i(a == b)
				case opNe:
					r = b2i(a != b)
				case opLtS:
					r = b2i(a < b)
				case opGtS:
					r = b2i(a > b)
				case opLeS:
					r = b2i(a <= b)
				case opGeS:
					r = b2i(a >= b)
				}
				inst.stack[len(inst.stack)-1] = r
				pc++

			case opEqz:
				n := len(inst.stack)
				if n <= f.base {
					return trapf(f, pc, ErrStackUnderflow)
				}
				inst.stack[n-1] = b2i(inst.stack[n-1] == 0)
				pc++

			case opLoad8U:
				n := len(inst.stack)
				if n <= f.base {
					return trapf(f, pc, ErrStackUnderflow)
				}
				addr := inst.stack[n-1]
				if addr < 0 || addr >= int64(len(inst.mem)) {
					return trapf(f, pc, ErrMemOutOfBounds)
				}
				inst.stack[n-1] = int64(inst.mem[addr])
				pc++
			case opLoad64:
				n := len(inst.stack)
				if n <= f.base {
					return trapf(f, pc, ErrStackUnderflow)
				}
				addr := inst.stack[n-1]
				if addr < 0 || addr+8 > int64(len(inst.mem)) {
					return trapf(f, pc, ErrMemOutOfBounds)
				}
				inst.stack[n-1] = int64(binary.LittleEndian.Uint64(inst.mem[addr:]))
				pc++
			case opStore8:
				n := len(inst.stack)
				if n-1 <= f.base {
					return trapf(f, pc, ErrStackUnderflow)
				}
				v := inst.stack[n-1]
				addr := inst.stack[n-2]
				inst.stack = inst.stack[:n-2]
				if addr < 0 || addr >= int64(len(inst.mem)) {
					return trapf(f, pc, ErrMemOutOfBounds)
				}
				inst.mem[addr] = byte(v)
				inst.noteWrite(addr + 1)
				pc++
			case opStore64:
				n := len(inst.stack)
				if n-1 <= f.base {
					return trapf(f, pc, ErrStackUnderflow)
				}
				v := inst.stack[n-1]
				addr := inst.stack[n-2]
				inst.stack = inst.stack[:n-2]
				if addr < 0 || addr+8 > int64(len(inst.mem)) {
					return trapf(f, pc, ErrMemOutOfBounds)
				}
				binary.LittleEndian.PutUint64(inst.mem[addr:], uint64(v))
				inst.noteWrite(addr + 8)
				pc++

			case opMemSize:
				if len(inst.stack) >= maxValueStack {
					return trapf(f, pc, ErrStackOverflow)
				}
				inst.stack = append(inst.stack, int64(len(inst.mem)))
				pc++
			case opMemGrow:
				n := len(inst.stack)
				if n <= f.base {
					return trapf(f, pc, ErrStackUnderflow)
				}
				delta := inst.stack[n-1]
				old := int64(len(inst.mem))
				if err := inst.grow(delta); err != nil {
					return trapf(f, pc, err)
				}
				inst.stack[n-1] = old
				pc++

			case opHostCall:
				hf := inst.hosts[in.arg]
				n := len(inst.stack)
				if n-hf.NArgs < f.base {
					return trapf(f, pc, ErrStackUnderflow)
				}
				if metered {
					if inst.fuel < hf.Cost {
						return trapf(f, pc, ErrOutOfFuel)
					}
					inst.fuel -= hf.Cost
					inst.used += hf.Cost
				}
				args := make([]int64, hf.NArgs)
				copy(args, inst.stack[n-hf.NArgs:])
				inst.stack = inst.stack[:n-hf.NArgs]
				ret, err := hf.Fn(inst, args)
				if err != nil {
					return trapf(f, pc, &HostError{Err: err})
				}
				if hf.HasRet {
					if len(inst.stack) >= maxValueStack {
						return trapf(f, pc, ErrStackOverflow)
					}
					inst.stack = append(inst.stack, ret)
				}
				pc++

			case opPushPair:
				if len(inst.stack)+1 >= maxValueStack {
					return trapf(f, pc, ErrStackOverflow)
				}
				inst.stack = append(inst.stack, in.arg>>32, in.arg&0xffffffff)
				pc++
			case opUnpackPtr:
				n := len(inst.stack)
				if n <= f.base {
					return trapf(f, pc, ErrStackUnderflow)
				}
				inst.stack[n-1] = int64(uint64(inst.stack[n-1]) >> 32)
				pc++
			case opUnpackLen:
				n := len(inst.stack)
				if n <= f.base {
					return trapf(f, pc, ErrStackUnderflow)
				}
				inst.stack[n-1] &= 0xffffffff
				pc++
			case opAddI:
				n := len(inst.stack)
				if n <= f.base {
					return trapf(f, pc, ErrStackUnderflow)
				}
				inst.stack[n-1] += in.arg
				pc++
			case opLocalAddI:
				f.locals[in.arg>>32] += int64(int32(in.arg & 0xffffffff))
				pc++

			default:
				return trapf(f, pc, fmt.Errorf("vm: unknown opcode %d", in.op))
			}
		}
	}
}

func b2i(b bool) int64 {
	if b {
		return 1
	}
	return 0
}
