//go:build race

package vm

// raceEnabled scales the differential-test seed count down: under the
// race detector each run is ~10x slower and the goal is instrumented
// coverage of the threaded tier, not exhaustive enumeration.
const raceEnabled = true
