package vm

import (
	"errors"
	"fmt"
	"sort"
)

// HostFunc is one function the host exposes to guest code. Arguments are
// popped from the guest value stack (last argument on top); a single result
// may be pushed back. Byte-string arguments follow the (ptr, len) convention
// against guest linear memory, with the host using Instance.MemRead and
// Instance.MemWrite, so guests never see host pointers.
type HostFunc struct {
	Name   string
	NArgs  int
	HasRet bool
	Cost   int64 // additional fuel charged per call
	Fn     func(inst *Instance, args []int64) (int64, error)
}

// HostTable resolves import names at instantiation time.
type HostTable struct {
	funcs map[string]*HostFunc
}

// NewHostTable returns an empty table.
func NewHostTable() *HostTable {
	return &HostTable{funcs: make(map[string]*HostFunc)}
}

// Register adds fn to the table, replacing any previous function with the
// same name.
func (t *HostTable) Register(fn HostFunc) {
	if fn.Cost <= 0 {
		fn.Cost = 16
	}
	f := fn
	t.funcs[fn.Name] = &f
}

// Lookup returns the named host function.
func (t *HostTable) Lookup(name string) (*HostFunc, bool) {
	f, ok := t.funcs[name]
	return f, ok
}

// Names returns all registered host function names, sorted.
func (t *HostTable) Names() []string {
	names := make([]string, 0, len(t.funcs))
	for n := range t.funcs {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// resolve maps a module's import list to concrete host functions.
func (t *HostTable) resolve(imports []string) ([]*HostFunc, error) {
	out := make([]*HostFunc, len(imports))
	for i, name := range imports {
		f, ok := t.funcs[name]
		if !ok {
			return nil, fmt.Errorf("vm: unresolved import %q", name)
		}
		out[i] = f
	}
	return out, nil
}

// HostError wraps an error returned by a host function so callers can
// distinguish host-side failures (e.g. storage errors) from guest traps.
type HostError struct{ Err error }

func (e *HostError) Error() string { return "vm: host: " + e.Err.Error() }
func (e *HostError) Unwrap() error { return e.Err }

// AsHostError extracts a HostError from a trap chain.
func AsHostError(err error) (*HostError, bool) {
	var he *HostError
	if errors.As(err, &he) {
		return he, true
	}
	return nil, false
}
