package vm

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"lambdastore/internal/wire"
)

// PageBytes is the granularity of linear memory growth (the WASM page size).
const PageBytes = 64 << 10

// Limits guarding against hostile modules.
const (
	maxFunctions  = 4096
	maxCodeLen    = 1 << 20
	maxLocals     = 256
	maxImports    = 256
	maxDataBytes  = 8 << 20
	maxMemoryMax  = 1 << 30
	moduleMagic   = 0x4c4f564d // "LOVM"
	moduleVersion = 1
)

// Validation and decode errors.
var (
	ErrBadModule = errors.New("vm: malformed module")
)

// Func is one guest function: params arrive as the first NumParams locals;
// the function's return values are whatever remains on the value stack when
// it returns to the caller (0 or more, but the public entry points expect
// at most one).
type Func struct {
	Name      string
	NumParams int
	NumLocals int // locals beyond the parameters, zero-initialized
	Exported  bool
	code      []instr
	// blockFuel, aligned with code, carries the fuel cost of the basic
	// block starting at each instruction (0 for non-leaders). The
	// interpreter charges fuel once per block entry instead of once per
	// instruction. Computed by Validate.
	blockFuel []int32
}

// Module is a validated unit of guest code: a set of functions, the host
// imports they reference, and an initial data segment copied into linear
// memory at instantiation. Modules are immutable and safely shared by
// concurrent instances.
type Module struct {
	Funcs    []Func
	Imports  []string // host function names referenced by opHostCall
	Data     []byte   // initial memory image, placed at address 0
	MinPages int
	MaxPages int

	funcIdx map[string]int
	// thc holds the module's compiled (threaded-tier) form, built once on
	// first instantiation when the host-call arities are known. A pointer
	// so Module values stay copyable and copies share the compilation.
	thc *thCompiled
}

// thCompiled caches one module's AOT compilation (compile.go).
type thCompiled struct {
	once sync.Once
	th   *thModule // nil after a compile failure (interpreter fallback)
	sigs []hostSig // host arities the module was compiled against
}

// threadedFor returns the module's compiled form for instantiation
// against the given resolved hosts, compiling on first use. It returns
// nil — leaving the instance on the interpreter — when the module is not
// compilable or when the host arities differ from the ones recorded at
// compile time (compiled argument offsets would be wrong).
func (m *Module) threadedFor(hosts []*HostFunc) *thModule {
	if m.thc == nil {
		// Never validated; the interpreter path will surface the error.
		return nil
	}
	m.thc.once.Do(func() {
		sigs := make([]hostSig, len(hosts))
		for i, h := range hosts {
			sigs[i] = hostSig{nargs: h.NArgs, hasRet: h.HasRet}
		}
		start := time.Now()
		th, ok := compileModule(m, sigs)
		statCompileNs.Add(time.Since(start).Nanoseconds())
		if ok {
			m.thc.th = th
			m.thc.sigs = sigs
			statCompiledModules.Add(1)
		} else {
			statInterpFallbacks.Add(1)
		}
	})
	if m.thc.th == nil {
		return nil
	}
	if len(hosts) != len(m.thc.sigs) {
		statInterpFallbacks.Add(1)
		return nil
	}
	for i, h := range hosts {
		if m.thc.sigs[i].nargs != h.NArgs || m.thc.sigs[i].hasRet != h.HasRet {
			statInterpFallbacks.Add(1)
			return nil
		}
	}
	return m.thc.th
}

// FuncIndex returns the index of the named function, or -1.
func (m *Module) FuncIndex(name string) int {
	if i, ok := m.funcIdx[name]; ok {
		return i
	}
	return -1
}

// HasExport reports whether name is an exported function of the module.
func (m *Module) HasExport(name string) bool {
	i := m.FuncIndex(name)
	return i >= 0 && m.Funcs[i].Exported
}

// ReachableImports returns the set of host import names any execution of
// the named function could reach, following guest call edges (opCall)
// transitively. The walk is conservative — every statically present call
// site counts, reachable or not at run time — which is exactly what the
// read-only method classifier wants: a method whose reachable imports
// include no mutating host function provably never touches the write
// buffer. ok is false when no such function exists.
func (m *Module) ReachableImports(entry string) (map[string]bool, bool) {
	start := m.FuncIndex(entry)
	if start < 0 {
		return nil, false
	}
	seen := make([]bool, len(m.Funcs))
	stack := []int{start}
	imports := make(map[string]bool)
	for len(stack) > 0 {
		fi := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if fi < 0 || fi >= len(m.Funcs) || seen[fi] {
			continue
		}
		seen[fi] = true
		for _, in := range m.Funcs[fi].code {
			switch in.op {
			case opCall:
				stack = append(stack, int(in.arg))
			case opHostCall:
				if in.arg >= 0 && in.arg < int64(len(m.Imports)) {
					imports[m.Imports[in.arg]] = true
				}
			}
		}
	}
	return imports, true
}

// ExportNames returns the names of all exported functions.
func (m *Module) ExportNames() []string {
	var names []string
	for _, f := range m.Funcs {
		if f.Exported {
			names = append(names, f.Name)
		}
	}
	return names
}

// buildIndex populates the name index and checks for duplicates.
func (m *Module) buildIndex() error {
	m.funcIdx = make(map[string]int, len(m.Funcs))
	for i, f := range m.Funcs {
		if f.Name == "" {
			return fmt.Errorf("%w: function %d unnamed", ErrBadModule, i)
		}
		if _, dup := m.funcIdx[f.Name]; dup {
			return fmt.Errorf("%w: duplicate function %q", ErrBadModule, f.Name)
		}
		m.funcIdx[f.Name] = i
	}
	return nil
}

// Validate checks structural invariants so the interpreter can execute
// without re-checking: known opcodes, in-range branch targets, local
// indices, function and import indices. (Memory accesses and stack depth
// are necessarily checked at runtime.)
func (m *Module) Validate() error {
	if len(m.Funcs) == 0 || len(m.Funcs) > maxFunctions {
		return fmt.Errorf("%w: %d functions", ErrBadModule, len(m.Funcs))
	}
	if len(m.Imports) > maxImports {
		return fmt.Errorf("%w: %d imports", ErrBadModule, len(m.Imports))
	}
	if len(m.Data) > maxDataBytes {
		return fmt.Errorf("%w: data segment %d bytes", ErrBadModule, len(m.Data))
	}
	if m.MinPages <= 0 {
		m.MinPages = 1
	}
	if m.MaxPages <= 0 {
		m.MaxPages = 256 // 16 MiB default ceiling
	}
	if m.MaxPages*PageBytes > maxMemoryMax {
		return fmt.Errorf("%w: max memory too large", ErrBadModule)
	}
	if m.MinPages > m.MaxPages {
		return fmt.Errorf("%w: min pages %d > max pages %d", ErrBadModule, m.MinPages, m.MaxPages)
	}
	if len(m.Data) > m.MinPages*PageBytes {
		return fmt.Errorf("%w: data segment exceeds initial memory", ErrBadModule)
	}
	if err := m.buildIndex(); err != nil {
		return err
	}
	for fi := range m.Funcs {
		f := &m.Funcs[fi]
		if f.NumParams < 0 || f.NumLocals < 0 || f.NumParams+f.NumLocals > maxLocals {
			return fmt.Errorf("%w: func %q locals", ErrBadModule, f.Name)
		}
		if len(f.code) == 0 || len(f.code) > maxCodeLen {
			return fmt.Errorf("%w: func %q code length %d", ErrBadModule, f.Name, len(f.code))
		}
		nLocals := int64(f.NumParams + f.NumLocals)
		for pc, in := range f.code {
			if in.op >= opMax || opNames[in.op] == "" {
				return fmt.Errorf("%w: func %q pc %d: unknown opcode %d", ErrBadModule, f.Name, pc, in.op)
			}
			switch {
			case isBranch[in.op]:
				if in.arg < 0 || in.arg >= int64(len(f.code)) {
					return fmt.Errorf("%w: func %q pc %d: branch target %d out of range", ErrBadModule, f.Name, pc, in.arg)
				}
			case in.op == opLocalGet || in.op == opLocalSet || in.op == opLocalTee:
				if in.arg < 0 || in.arg >= nLocals {
					return fmt.Errorf("%w: func %q pc %d: local %d out of range", ErrBadModule, f.Name, pc, in.arg)
				}
			case in.op == opLocalAddI:
				if idx := in.arg >> 32; idx < 0 || idx >= nLocals {
					return fmt.Errorf("%w: func %q pc %d: local %d out of range", ErrBadModule, f.Name, pc, idx)
				}
			case in.op == opCall:
				if in.arg < 0 || in.arg >= int64(len(m.Funcs)) {
					return fmt.Errorf("%w: func %q pc %d: call target %d out of range", ErrBadModule, f.Name, pc, in.arg)
				}
			case in.op == opHostCall:
				if in.arg < 0 || in.arg >= int64(len(m.Imports)) {
					return fmt.Errorf("%w: func %q pc %d: import %d out of range", ErrBadModule, f.Name, pc, in.arg)
				}
			}
		}
		// Every function must end in an instruction that cannot fall off the
		// end: ret, halt, jmp or unreachable.
		last := f.code[len(f.code)-1].op
		if last != opRet && last != opHalt && last != opJmp && last != opUnreachable {
			return fmt.Errorf("%w: func %q may fall off the end", ErrBadModule, f.Name)
		}
		f.blockFuel = computeBlockFuel(f.code)
	}
	if m.thc == nil {
		m.thc = &thCompiled{}
	}
	if len(m.Imports) == 0 {
		// No host arities to wait for: compile at validation time, so the
		// first instantiation is already warm.
		m.threadedFor(nil)
	}
	return nil
}

// computeBlockFuel splits code into basic blocks and returns a slice,
// aligned with code, holding each block leader's instruction count (zero
// for non-leaders). Leaders are instruction 0, every branch target, and
// the instruction after every branch; a block's cost is the straight-line
// instruction count up to (exclusive) the next leader, so the interpreter
// charges a block's whole cost once on entry. Calls and host calls do not
// end blocks: execution resumes mid-block at pc+1, which was already paid
// for at the leader.
func computeBlockFuel(code []instr) []int32 {
	leader := make([]bool, len(code)+1)
	leader[0] = true
	for pc, in := range code {
		if isBranch[in.op] {
			leader[in.arg] = true
			leader[pc+1] = true
		}
	}
	out := make([]int32, len(code))
	start := 0
	for pc := 1; pc <= len(code); pc++ {
		if leader[pc] {
			out[start] = int32(pc - start)
			start = pc
		}
	}
	return out
}

// Encode serializes the module. The binary form is what LambdaStore stores
// inside object types and ships between nodes.
func (m *Module) Encode() []byte {
	var b []byte
	b = wire.AppendUint32(b, moduleMagic)
	b = wire.AppendUint32(b, moduleVersion)
	b = wire.AppendUvarint(b, uint64(m.MinPages))
	b = wire.AppendUvarint(b, uint64(m.MaxPages))
	b = wire.AppendBytes(b, m.Data)
	b = wire.AppendUvarint(b, uint64(len(m.Imports)))
	for _, imp := range m.Imports {
		b = wire.AppendString(b, imp)
	}
	b = wire.AppendUvarint(b, uint64(len(m.Funcs)))
	for _, f := range m.Funcs {
		b = wire.AppendString(b, f.Name)
		b = wire.AppendUvarint(b, uint64(f.NumParams))
		b = wire.AppendUvarint(b, uint64(f.NumLocals))
		exported := uint64(0)
		if f.Exported {
			exported = 1
		}
		b = wire.AppendUvarint(b, exported)
		b = wire.AppendUvarint(b, uint64(len(f.code)))
		for _, in := range f.code {
			b = append(b, byte(in.op))
			if hasOperand[in.op] {
				b = wire.AppendVarint(b, in.arg)
			}
		}
	}
	return b
}

// Decode parses and validates a serialized module.
func Decode(data []byte) (*Module, error) {
	magic, rest, err := wire.Uint32(data)
	if err != nil || magic != moduleMagic {
		return nil, fmt.Errorf("%w: bad magic", ErrBadModule)
	}
	version, rest, err := wire.Uint32(rest)
	if err != nil || version != moduleVersion {
		return nil, fmt.Errorf("%w: unsupported version", ErrBadModule)
	}
	m := &Module{}
	var u uint64
	if u, rest, err = wire.Uvarint(rest); err != nil {
		return nil, fmt.Errorf("%w: min pages", ErrBadModule)
	}
	m.MinPages = int(u)
	if u, rest, err = wire.Uvarint(rest); err != nil {
		return nil, fmt.Errorf("%w: max pages", ErrBadModule)
	}
	m.MaxPages = int(u)
	var raw []byte
	if raw, rest, err = wire.Bytes(rest); err != nil {
		return nil, fmt.Errorf("%w: data segment", ErrBadModule)
	}
	m.Data = append([]byte(nil), raw...)
	if u, rest, err = wire.Uvarint(rest); err != nil || u > maxImports {
		return nil, fmt.Errorf("%w: import count", ErrBadModule)
	}
	for i := uint64(0); i < u; i++ {
		var s string
		if s, rest, err = wire.String(rest); err != nil {
			return nil, fmt.Errorf("%w: import name", ErrBadModule)
		}
		m.Imports = append(m.Imports, s)
	}
	var nf uint64
	if nf, rest, err = wire.Uvarint(rest); err != nil || nf > maxFunctions {
		return nil, fmt.Errorf("%w: function count", ErrBadModule)
	}
	for i := uint64(0); i < nf; i++ {
		var f Func
		if f.Name, rest, err = wire.String(rest); err != nil {
			return nil, fmt.Errorf("%w: func name", ErrBadModule)
		}
		if u, rest, err = wire.Uvarint(rest); err != nil {
			return nil, fmt.Errorf("%w: func params", ErrBadModule)
		}
		f.NumParams = int(u)
		if u, rest, err = wire.Uvarint(rest); err != nil {
			return nil, fmt.Errorf("%w: func locals", ErrBadModule)
		}
		f.NumLocals = int(u)
		if u, rest, err = wire.Uvarint(rest); err != nil {
			return nil, fmt.Errorf("%w: func export flag", ErrBadModule)
		}
		f.Exported = u != 0
		var codeLen uint64
		if codeLen, rest, err = wire.Uvarint(rest); err != nil || codeLen > maxCodeLen {
			return nil, fmt.Errorf("%w: func code length", ErrBadModule)
		}
		f.code = make([]instr, 0, codeLen)
		for c := uint64(0); c < codeLen; c++ {
			if len(rest) == 0 {
				return nil, fmt.Errorf("%w: truncated code", ErrBadModule)
			}
			op := opcode(rest[0])
			rest = rest[1:]
			var arg int64
			if op < opMax && hasOperand[op] {
				if arg, rest, err = wire.Varint(rest); err != nil {
					return nil, fmt.Errorf("%w: instruction operand", ErrBadModule)
				}
			}
			f.code = append(f.code, instr{op: op, arg: arg})
		}
		m.Funcs = append(m.Funcs, f)
	}
	if err := m.Validate(); err != nil {
		return nil, err
	}
	return m, nil
}
