package vm

import (
	"bytes"
	"errors"
	"fmt"
	"strings"
	"testing"
	"testing/quick"
)

func mustRun(t *testing.T, src, fn string, args ...int64) int64 {
	t.Helper()
	m, err := Assemble(src)
	if err != nil {
		t.Fatalf("Assemble: %v", err)
	}
	inst, err := NewInstance(m, nil, 1_000_000)
	if err != nil {
		t.Fatalf("NewInstance: %v", err)
	}
	got, err := inst.Call(fn, args...)
	if err != nil {
		t.Fatalf("Call(%s): %v", fn, err)
	}
	return got
}

func TestArithmetic(t *testing.T) {
	src := `
func main params=2
  local.get 0
  local.get 1
  add
  push 10
  mul
  ret
end`
	if got := mustRun(t, src, "main", 3, 4); got != 70 {
		t.Fatalf("got %d, want 70", got)
	}
}

func TestAllBinaryOps(t *testing.T) {
	cases := []struct {
		op   string
		a, b int64
		want int64
	}{
		{"add", 7, 5, 12},
		{"sub", 7, 5, 2},
		{"mul", 7, 5, 35},
		{"div_s", -7, 2, -3},
		{"rem_s", 7, 5, 2},
		{"and", 0b1100, 0b1010, 0b1000},
		{"or", 0b1100, 0b1010, 0b1110},
		{"xor", 0b1100, 0b1010, 0b0110},
		{"shl", 1, 4, 16},
		{"shr_s", -16, 2, -4},
		{"shr_u", -1, 60, 15},
		{"eq", 4, 4, 1},
		{"eq", 4, 5, 0},
		{"ne", 4, 5, 1},
		{"lt_s", -1, 0, 1},
		{"gt_s", 1, 0, 1},
		{"le_s", 3, 3, 1},
		{"ge_s", 2, 3, 0},
	}
	for _, c := range cases {
		src := fmt.Sprintf(`
func main params=2
  local.get 0
  local.get 1
  %s
  ret
end`, c.op)
		if got := mustRun(t, src, "main", c.a, c.b); got != c.want {
			t.Errorf("%s(%d,%d) = %d, want %d", c.op, c.a, c.b, got, c.want)
		}
	}
}

func TestLoopAndBranches(t *testing.T) {
	// Sum 1..n iteratively.
	src := `
func sum params=1 locals=2
  push 0
  local.set 1          ; acc = 0
  push 1
  local.set 2          ; i = 1
loop:
  local.get 2
  local.get 0
  gt_s
  jnz done             ; if i > n goto done
  local.get 1
  local.get 2
  add
  local.set 1          ; acc += i
  local.get 2
  push 1
  add
  local.set 2          ; i++
  jmp loop
done:
  local.get 1
  ret
end`
	if got := mustRun(t, src, "sum", 100); got != 5050 {
		t.Fatalf("sum(100) = %d", got)
	}
}

func TestFunctionCalls(t *testing.T) {
	// Recursive fibonacci via guest-level calls.
	src := `
func fib params=1
  local.get 0
  push 2
  lt_s
  jz rec
  local.get 0
  ret
rec:
  local.get 0
  push 1
  sub
  call fib
  local.get 0
  push 2
  sub
  call fib
  add
  ret
end`
	if got := mustRun(t, src, "fib", 15); got != 610 {
		t.Fatalf("fib(15) = %d", got)
	}
}

func TestMemoryOps(t *testing.T) {
	src := `
func main params=0
  push 1024
  push 123456789
  store64
  push 1024
  load64
  ret
end`
	if got := mustRun(t, src, "main"); got != 123456789 {
		t.Fatalf("load64 = %d", got)
	}
}

func TestStringLiteralData(t *testing.T) {
	src := `
func main params=0
  str "hello"
  swap
  load8_u     ; first byte of "hello"
  add         ; + len(5)... careful: stack was [ptr,len] -> swap -> [len,ptr]
  ret
end`
	// After swap: [len, ptr]; load8_u pops ptr pushes 'h'(104); add -> 104+5.
	if got := mustRun(t, src, "main"); got != 109 {
		t.Fatalf("got %d, want 109", got)
	}
}

func TestOutOfFuel(t *testing.T) {
	src := `
func spin params=0
loop:
  jmp loop
end`
	m := MustAssemble(src)
	inst, err := NewInstance(m, nil, 10_000)
	if err != nil {
		t.Fatal(err)
	}
	_, err = inst.Call("spin")
	if !errors.Is(err, ErrOutOfFuel) {
		t.Fatalf("err = %v, want ErrOutOfFuel", err)
	}
	if inst.FuelUsed() != 10_000 {
		t.Fatalf("FuelUsed = %d", inst.FuelUsed())
	}
}

func TestMemoryIsolationBounds(t *testing.T) {
	cases := []string{
		// Negative address.
		"push -8\n load64",
		// Past the end of the single initial page.
		fmt.Sprintf("push %d\n load64", PageBytes),
		fmt.Sprintf("push %d\n push 1\n store8", PageBytes),
		// Straddling the end.
		fmt.Sprintf("push %d\n load64", PageBytes-4),
	}
	for i, body := range cases {
		src := "func main params=0\n" + body + "\n  ret\nend"
		m := MustAssemble("module minpages=1 maxpages=1\n" + src)
		inst, err := NewInstance(m, nil, 1000)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := inst.Call("main"); !errors.Is(err, ErrMemOutOfBounds) {
			t.Errorf("case %d: err = %v, want ErrMemOutOfBounds", i, err)
		}
	}
}

func TestMemGrowAndLimit(t *testing.T) {
	src := fmt.Sprintf(`
module minpages=1 maxpages=2
func main params=0
  push %d
  memgrow
  pop
  push %d
  load64        ; now in-bounds after growth
  ret
end`, PageBytes, PageBytes+16)
	if got := mustRun(t, src, "main"); got != 0 {
		t.Fatalf("grown memory not zeroed: %d", got)
	}

	over := fmt.Sprintf(`
module minpages=1 maxpages=2
func main params=0
  push %d
  memgrow
  ret
end`, 10*PageBytes)
	m := MustAssemble(over)
	inst, _ := NewInstance(m, nil, 1000)
	if _, err := inst.Call("main"); !errors.Is(err, ErrMemLimit) {
		t.Fatalf("err = %v, want ErrMemLimit", err)
	}
}

func TestDivByZeroTrap(t *testing.T) {
	src := `
func main params=1
  push 10
  local.get 0
  div_s
  ret
end`
	m := MustAssemble(src)
	inst, _ := NewInstance(m, nil, 1000)
	if _, err := inst.Call("main", 0); !errors.Is(err, ErrDivByZero) {
		t.Fatalf("err = %v", err)
	}
	// Instance remains usable after a trap.
	got, err := inst.Call("main", 2)
	if err != nil || got != 5 {
		t.Fatalf("after trap: %d %v", got, err)
	}
}

func TestGuestRecursionBounded(t *testing.T) {
	src := `
func rec params=0
  call rec
  ret
end`
	m := MustAssemble(src)
	inst, _ := NewInstance(m, nil, 10_000_000)
	if _, err := inst.Call("rec"); !errors.Is(err, ErrStackOverflow) {
		t.Fatalf("err = %v, want ErrStackOverflow", err)
	}
}

func TestStackUnderflowTrap(t *testing.T) {
	src := `
func main params=0
  add
  ret
end`
	m := MustAssemble(src)
	inst, _ := NewInstance(m, nil, 1000)
	if _, err := inst.Call("main"); !errors.Is(err, ErrStackUnderflow) {
		t.Fatalf("err = %v", err)
	}
}

func TestCalleeCannotUnderflowCallerStack(t *testing.T) {
	// The callee tries to pop more values than it owns; the caller's stack
	// must be protected by the frame base.
	src := `
func evil params=0
  pop
  ret
end
func main params=0
  push 42
  call evil
  ret
end`
	m := MustAssemble(src)
	inst, _ := NewInstance(m, nil, 1000)
	if _, err := inst.Call("main"); !errors.Is(err, ErrStackUnderflow) {
		t.Fatalf("err = %v, want ErrStackUnderflow", err)
	}
}

func TestHostCall(t *testing.T) {
	hosts := NewHostTable()
	var captured []int64
	hosts.Register(HostFunc{
		Name:   "record",
		NArgs:  2,
		HasRet: true,
		Fn: func(inst *Instance, args []int64) (int64, error) {
			captured = append(captured, args...)
			return args[0] * args[1], nil
		},
	})
	src := `
func main params=0
  push 6
  push 7
  hostcall record
  ret
end`
	m := MustAssemble(src)
	inst, err := NewInstance(m, hosts, 1000)
	if err != nil {
		t.Fatal(err)
	}
	got, err := inst.Call("main")
	if err != nil || got != 42 {
		t.Fatalf("hostcall = %d, %v", got, err)
	}
	if len(captured) != 2 || captured[0] != 6 || captured[1] != 7 {
		t.Fatalf("captured = %v", captured)
	}
}

func TestHostCallErrorBecomesTrap(t *testing.T) {
	hosts := NewHostTable()
	sentinel := errors.New("storage exploded")
	hosts.Register(HostFunc{
		Name:  "boom",
		NArgs: 0,
		Fn: func(inst *Instance, args []int64) (int64, error) {
			return 0, sentinel
		},
	})
	m := MustAssemble("func main params=0\n  hostcall boom\n  ret\nend")
	inst, _ := NewInstance(m, hosts, 1000)
	_, err := inst.Call("main")
	if he, ok := AsHostError(err); !ok || !errors.Is(he.Err, sentinel) {
		t.Fatalf("err = %v", err)
	}
}

func TestUnresolvedImportFailsInstantiation(t *testing.T) {
	m := MustAssemble("func main params=0\n  hostcall nosuch\n  ret\nend")
	if _, err := NewInstance(m, NewHostTable(), 1000); err == nil {
		t.Fatal("instantiation with unresolved import succeeded")
	}
}

func TestHostMemoryExchange(t *testing.T) {
	hosts := NewHostTable()
	hosts.Register(HostFunc{
		Name:   "upper",
		NArgs:  2,
		HasRet: true,
		Fn: func(inst *Instance, args []int64) (int64, error) {
			data, err := inst.MemRead(args[0], args[1])
			if err != nil {
				return 0, err
			}
			up := bytes.ToUpper(data)
			ptr, err := inst.Alloc(int64(len(up)))
			if err != nil {
				return 0, err
			}
			if err := inst.MemWrite(ptr, up); err != nil {
				return 0, err
			}
			return ptr, nil
		},
	})
	src := `
func main params=0
  str "abc"
  hostcall upper
  load8_u      ; first byte of the uppercased copy
  ret
end`
	m := MustAssemble(src)
	inst, _ := NewInstance(m, hosts, 10_000)
	got, err := inst.Call("main")
	if err != nil || got != 'A' {
		t.Fatalf("got %d, %v", got, err)
	}
}

func TestModuleEncodeDecodeRoundTrip(t *testing.T) {
	src := `
module minpages=2 maxpages=8
func helper params=1
  local.get 0
  push 1
  add
  ret
end
func main params=0 export
  str "data!"
  pop
  pop
  push 41
  call helper
  hostcall ext
  ret
end`
	m := MustAssemble(src)
	enc := m.Encode()
	dec, err := Decode(enc)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if len(dec.Funcs) != 2 || dec.MinPages != 2 || dec.MaxPages != 8 {
		t.Fatalf("decoded module %+v", dec)
	}
	if !dec.HasExport("main") || dec.HasExport("helper") {
		t.Fatal("export flags lost")
	}
	if len(dec.Imports) != 1 || dec.Imports[0] != "ext" {
		t.Fatalf("imports = %v", dec.Imports)
	}
	if string(dec.Data) != "data!" {
		t.Fatalf("data = %q", dec.Data)
	}

	hosts := NewHostTable()
	hosts.Register(HostFunc{Name: "ext", NArgs: 1, HasRet: true,
		Fn: func(inst *Instance, args []int64) (int64, error) { return args[0], nil }})
	inst, err := NewInstance(dec, hosts, 1000)
	if err != nil {
		t.Fatal(err)
	}
	got, err := inst.Call("main")
	if err != nil || got != 42 {
		t.Fatalf("decoded module ran: %d, %v", got, err)
	}
}

func TestDecodeGarbageRejected(t *testing.T) {
	if _, err := Decode([]byte("not a module at all")); err == nil {
		t.Fatal("garbage decoded")
	}
	m := MustAssemble("func f params=0\n  ret\nend")
	enc := m.Encode()
	for cut := 1; cut < len(enc); cut += 3 {
		if _, err := Decode(enc[:cut]); err == nil {
			t.Fatalf("truncation at %d decoded", cut)
		}
	}
}

func TestDecodeFuzzQuick(t *testing.T) {
	// Random mutations of a valid module must never panic.
	m := MustAssemble(`
func main params=1 export
  local.get 0
  push 3
  add
  ret
end`)
	enc := m.Encode()
	f := func(pos uint16, val byte) bool {
		mut := append([]byte(nil), enc...)
		mut[int(pos)%len(mut)] = val
		_, _ = Decode(mut) // must not panic; error is fine
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 3000}); err != nil {
		t.Fatal(err)
	}
}

func TestValidateRejectsBadModules(t *testing.T) {
	bad := []string{
		// Branch out of range is impossible via asm (labels), so test
		// directly below; here: undefined label.
		"func f params=0\n  jmp nowhere\n  ret\nend",
		// Undefined call target.
		"func f params=0\n  call missing\n  ret\nend",
		// Local index out of range.
		"func f params=1\n  local.get 5\n  ret\nend",
		// Duplicate function.
		"func f params=0\n  ret\nend\nfunc f params=0\n  ret\nend",
	}
	for i, src := range bad {
		if _, err := Assemble(src); err == nil {
			t.Errorf("case %d assembled", i)
		}
	}
}

func TestValidateFallOffEnd(t *testing.T) {
	m := &Module{
		MinPages: 1, MaxPages: 1,
		Funcs: []Func{{Name: "f", code: []instr{{op: opNop}}}},
	}
	if err := m.Validate(); err == nil {
		t.Fatal("fall-off-end function validated")
	}
}

func TestReset(t *testing.T) {
	src := `
func main params=0
  push 0
  push 99
  store8
  push 0
  load8_u
  ret
end`
	m := MustAssemble(src)
	inst, _ := NewInstance(m, nil, 1000)
	if got, _ := inst.Call("main"); got != 99 {
		t.Fatalf("got %d", got)
	}
	inst.Reset(1000)
	// Memory must be re-imaged (zeroed here).
	src2 := "func peek params=0\n  push 0\n  load8_u\n  ret\nend"
	_ = src2
	got, err := inst.Call("main")
	if err != nil || got != 99 {
		t.Fatalf("after reset: %d %v", got, err)
	}
	if inst.FuelUsed() >= 1000 {
		t.Fatal("fuel not refilled")
	}
}

func TestDisassembleRoundTrip(t *testing.T) {
	src := `
func main params=1 export
  local.get 0
  push 5
  add
  hostcall print
  ret
end`
	m := MustAssemble(src)
	dis := Disassemble(m)
	// "push 5; add" is peephole-fused into "addi 5" by the assembler.
	for _, want := range []string{"func main params=1", "local.get 0", "hostcall print", "addi 5"} {
		if !strings.Contains(dis, want) {
			t.Fatalf("disassembly missing %q:\n%s", want, dis)
		}
	}
}

func TestUnmeteredExecution(t *testing.T) {
	src := `
func sum params=1 locals=2
  push 0
  local.set 1
  push 1
  local.set 2
loop:
  local.get 2
  local.get 0
  gt_s
  jnz done
  local.get 1
  local.get 2
  add
  local.set 1
  local.get 2
  push 1
  add
  local.set 2
  jmp loop
done:
  local.get 1
  ret
end`
	m := MustAssemble(src)
	inst, _ := NewInstance(m, nil, 0) // unlimited
	got, err := inst.Call("sum", 1_000_000)
	if err != nil || got != 500000500000 {
		t.Fatalf("sum = %d, %v", got, err)
	}
}

func TestQuickArithAgainstGo(t *testing.T) {
	src := `
func expr params=3
  local.get 0
  local.get 1
  add
  local.get 2
  xor
  local.get 0
  sub
  ret
end`
	m := MustAssemble(src)
	inst, _ := NewInstance(m, nil, 0)
	f := func(a, b, c int64) bool {
		got, err := inst.Call("expr", a, b, c)
		return err == nil && got == ((a+b)^c)-a
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}

func TestEncodeDecodeEncodeStable(t *testing.T) {
	// The binary form is the canonical representation stored in object
	// types; a decode/encode round trip must be byte-identical.
	m := MustAssemble(`
module minpages=2 maxpages=4
func helper params=2 locals=1
  local.get 0
  local.get 1
  add
  ret
end
func main params=0 export
  str "stable"
  pop
  pop
  push 1
  push 2
  call helper
  hostcall out
  ret
end`)
	enc1 := m.Encode()
	dec, err := Decode(enc1)
	if err != nil {
		t.Fatal(err)
	}
	enc2 := dec.Encode()
	if !bytes.Equal(enc1, enc2) {
		t.Fatalf("encode/decode/encode unstable: %d vs %d bytes", len(enc1), len(enc2))
	}
}
