// Package vm implements the isolation runtime LambdaStore executes object
// methods in. The paper's prototype embeds WebAssembly; under the stdlib-only
// constraint this package provides the same properties from scratch: guest
// functions are untrusted bytecode for a stack machine with a linear memory,
// every memory access is bounds-checked (software fault isolation), and
// execution is metered with a fuel budget so a runaway function cannot
// monopolize a storage node. Guests interact with the outside world only
// through an explicit host-call table.
//
// A small assembler (see asm.go) compiles a textual form of the bytecode so
// applications — including the Retwis methods used by the paper's
// evaluation — can be written readably.
package vm

import "fmt"

// opcode identifies one VM instruction.
type opcode uint8

// Instruction set. Values are i64; comparison results are 0 or 1.
const (
	opNop opcode = iota
	opUnreachable

	// Stack manipulation.
	opPush // operand: immediate value
	opPop
	opDup
	opSwap

	// Locals (function parameters first, then declared locals).
	opLocalGet // operand: local index
	opLocalSet // operand: local index
	opLocalTee // operand: local index

	// Control flow. Branch operands are absolute instruction indices.
	opJmp  // operand: target
	opJz   // operand: target; pops condition, jumps if zero
	opJnz  // operand: target; pops condition, jumps if nonzero
	opCall // operand: function index within the module
	opRet
	opHalt

	// Arithmetic and bitwise (pop b, pop a, push a OP b).
	opAdd
	opSub
	opMul
	opDivS // traps on divide by zero or MinInt64/-1 overflow
	opRemS // traps on divide by zero
	opAnd
	opOr
	opXor
	opShl
	opShrS
	opShrU

	// Comparisons (pop b, pop a, push bool).
	opEq
	opNe
	opLtS
	opGtS
	opLeS
	opGeS
	opEqz // pops one value, pushes value == 0

	// Linear memory. Addresses are popped from the stack; every access is
	// bounds-checked against the current memory size.
	opLoad8U  // pop addr, push zero-extended byte
	opLoad64  // pop addr, push little-endian u64
	opStore8  // pop value, pop addr
	opStore64 // pop value, pop addr
	opMemSize // push current memory size in bytes
	opMemGrow // pop additional bytes, push old size (traps past max)

	// Host interface.
	opHostCall // operand: import index; arity defined by the host function

	// Superinstructions: fused forms of the idioms hot bytecode (notably
	// the Retwis get_timeline loop) executes constantly. They are emitted
	// by the assembler — `str` compiles to one push2, the unpack pseudo-ops
	// to one instruction each, and a peephole pass fuses immediate
	// arithmetic — so interpreter dispatch and fuel accounting are paid
	// once per idiom instead of once per component instruction. Appended
	// after opHostCall so existing encoded modules keep their opcode
	// values.
	opPushPair  // operand: hi<<32|lo (both non-negative); pushes hi, then lo
	opUnpackPtr // packed (ptr<<32|len) handle on TOS -> ptr
	opUnpackLen // packed (ptr<<32|len) handle on TOS -> len
	opAddI      // operand: immediate; TOS += imm
	opLocalAddI // operand: local<<32|uint32(imm); locals[local] += imm

	opMax // sentinel
)

// hasOperand reports which opcodes carry an immediate operand.
var hasOperand = [opMax]bool{
	opPush:      true,
	opLocalGet:  true,
	opLocalSet:  true,
	opLocalTee:  true,
	opJmp:       true,
	opJz:        true,
	opJnz:       true,
	opCall:      true,
	opHostCall:  true,
	opPushPair:  true,
	opAddI:      true,
	opLocalAddI: true,
}

// isBranch reports which opcodes have an instruction-index operand that
// validation must range-check.
var isBranch = [opMax]bool{opJmp: true, opJz: true, opJnz: true}

// stackEffect gives the fixed pop/push arity of the straight-line opcodes,
// used by the threaded-tier depth analysis (ir.go). Control flow, calls
// and host calls have context-dependent effects and are handled explicitly
// there; fixed=false marks them (and any future opcode the analysis does
// not know), which routes the module to the interpreter.
var stackEffect = [opMax]struct {
	pop, push int8
	fixed     bool
}{
	opNop:       {0, 0, true},
	opPush:      {0, 1, true},
	opPop:       {1, 0, true},
	opDup:       {1, 2, true},
	opSwap:      {2, 2, true},
	opLocalGet:  {0, 1, true},
	opLocalSet:  {1, 0, true},
	opLocalTee:  {1, 1, true},
	opAdd:       {2, 1, true},
	opSub:       {2, 1, true},
	opMul:       {2, 1, true},
	opDivS:      {2, 1, true},
	opRemS:      {2, 1, true},
	opAnd:       {2, 1, true},
	opOr:        {2, 1, true},
	opXor:       {2, 1, true},
	opShl:       {2, 1, true},
	opShrS:      {2, 1, true},
	opShrU:      {2, 1, true},
	opEq:        {2, 1, true},
	opNe:        {2, 1, true},
	opLtS:       {2, 1, true},
	opGtS:       {2, 1, true},
	opLeS:       {2, 1, true},
	opGeS:       {2, 1, true},
	opEqz:       {1, 1, true},
	opLoad8U:    {1, 1, true},
	opLoad64:    {1, 1, true},
	opStore8:    {2, 0, true},
	opStore64:   {2, 0, true},
	opMemSize:   {0, 1, true},
	opMemGrow:   {1, 1, true},
	opPushPair:  {0, 2, true},
	opUnpackPtr: {1, 1, true},
	opUnpackLen: {1, 1, true},
	opAddI:      {1, 1, true},
	opLocalAddI: {0, 0, true},
}

// opNames maps opcodes to their assembly mnemonics.
var opNames = [opMax]string{
	opNop:         "nop",
	opUnreachable: "unreachable",
	opPush:        "push",
	opPop:         "pop",
	opDup:         "dup",
	opSwap:        "swap",
	opLocalGet:    "local.get",
	opLocalSet:    "local.set",
	opLocalTee:    "local.tee",
	opJmp:         "jmp",
	opJz:          "jz",
	opJnz:         "jnz",
	opCall:        "call",
	opRet:         "ret",
	opHalt:        "halt",
	opAdd:         "add",
	opSub:         "sub",
	opMul:         "mul",
	opDivS:        "div_s",
	opRemS:        "rem_s",
	opAnd:         "and",
	opOr:          "or",
	opXor:         "xor",
	opShl:         "shl",
	opShrS:        "shr_s",
	opShrU:        "shr_u",
	opEq:          "eq",
	opNe:          "ne",
	opLtS:         "lt_s",
	opGtS:         "gt_s",
	opLeS:         "le_s",
	opGeS:         "ge_s",
	opEqz:         "eqz",
	opLoad8U:      "load8_u",
	opLoad64:      "load64",
	opStore8:      "store8",
	opStore64:     "store64",
	opMemSize:     "memsize",
	opMemGrow:     "memgrow",
	opHostCall:    "hostcall",
	opPushPair:    "push2",
	opUnpackPtr:   "unpack_ptr",
	opUnpackLen:   "unpack_len",
	opAddI:        "addi",
	opLocalAddI:   "local.addi",
}

// opByName is the reverse mapping used by the assembler.
var opByName = func() map[string]opcode {
	m := make(map[string]opcode, opMax)
	for op := opcode(0); op < opMax; op++ {
		if opNames[op] != "" {
			m[opNames[op]] = op
		}
	}
	return m
}()

// instr is one decoded instruction.
type instr struct {
	op  opcode
	arg int64
}

func (in instr) String() string {
	if in.op < opMax && hasOperand[in.op] {
		return fmt.Sprintf("%s %d", opNames[in.op], in.arg)
	}
	if in.op < opMax {
		return opNames[in.op]
	}
	return fmt.Sprintf("op(%d)", in.op)
}
