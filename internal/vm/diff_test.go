package vm

// Differential execution tests: seeded generators produce modules that
// run through both tiers — the switch interpreter and the AOT threaded
// code — asserting identical results, error strings (trap identity and
// location), FuelUsed, final linear memory, and host-call sequences.
// Each module is then ResetFast and re-run, so a compiled store that
// failed to raise the dirty high-water mark would leak state into the
// second round and diverge.
//
// The structured generator emits depth-disciplined assembly (every
// function returns one value, loops use dedicated counters so unmetered
// runs terminate) that must always compile; the raw generator emits
// random valid-but-undisciplined bytecode that exercises static
// underflow traps and the interpreter fallback, and runs metered only.

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"math/rand"
	"strings"
	"testing"
)

// diffHosts builds a host table whose calls append (tag, args...) to log,
// so the two tiers' host interaction order is comparable. poke writes
// guest memory through the host path (MemWrite tracks the dirty region)
// and returns a host error on out-of-bounds addresses.
func diffHosts(log *[]int64) *HostTable {
	t := NewHostTable()
	t.Register(HostFunc{
		Name: "mix", NArgs: 2, HasRet: true, Cost: 16,
		Fn: func(inst *Instance, args []int64) (int64, error) {
			*log = append(*log, 1, args[0], args[1])
			return (args[0]*31 + args[1]) ^ 0x5a5a, nil
		},
	})
	t.Register(HostFunc{
		Name: "poke", NArgs: 2, HasRet: false, Cost: 16,
		Fn: func(inst *Instance, args []int64) (int64, error) {
			*log = append(*log, 2, args[0], args[1])
			var b [8]byte
			binary.LittleEndian.PutUint64(b[:], uint64(args[1]))
			return 0, inst.MemWrite(args[0], b[:])
		},
	})
	return t
}

// sgen emits structured random assembly.
type sgen struct {
	r     *rand.Rand
	b     strings.Builder
	label int
	funcs []string // earlier functions, callable (params=1, one result)
}

func (g *sgen) lbl() string {
	g.label++
	return fmt.Sprintf("L%d", g.label)
}

func (g *sgen) emit(format string, args ...any) {
	fmt.Fprintf(&g.b, format+"\n", args...)
}

// loc picks a general-purpose local (0..3); locals 4 and 5 are reserved
// loop counters so random stores cannot break loop termination.
func (g *sgen) loc() int { return g.r.Intn(4) }

// pushVal emits instructions leaving exactly one value on the stack.
func (g *sgen) pushVal() {
	switch g.r.Intn(6) {
	case 0:
		g.emit("  push %d", g.r.Intn(10000)-100)
	case 1, 2:
		g.emit("  local.get %d", g.loc())
	case 3:
		g.emit("  local.get %d", g.loc())
		g.emit("  local.get %d", g.loc())
		g.emit("  %s", []string{"add", "sub", "mul", "and", "or", "xor"}[g.r.Intn(6)])
	case 4:
		g.emit("  local.get %d", g.loc())
		g.emit("  eqz")
	default:
		g.emit("  local.get %d", g.loc())
		g.emit("  push %d", 1+g.r.Intn(50))
		g.emit("  %s", []string{"add", "shl", "shr_s", "shr_u", "div_s", "rem_s", "lt_s", "ge_s"}[g.r.Intn(8)])
	}
}

// addr emits one address push: usually in bounds, occasionally past the
// one-page memory or negative so bounds traps are exercised.
func (g *sgen) addr() {
	switch g.r.Intn(20) {
	case 0:
		g.emit("  push %d", PageBytes+g.r.Intn(5000))
	case 1:
		g.emit("  push -%d", 1+g.r.Intn(16))
	default:
		g.emit("  push %d", g.r.Intn(6000))
	}
}

// stmt emits one stack-neutral statement. loops counts enclosing loops
// (for counter assignment); nest limits recursion.
func (g *sgen) stmt(nest, loops int) {
	switch g.r.Intn(14) {
	case 0, 1:
		g.pushVal()
		g.pushVal()
		g.emit("  %s", []string{"add", "sub", "mul", "div_s", "rem_s", "xor", "eq", "lt_s", "gt_s"}[g.r.Intn(9)])
		g.emit("  local.set %d", g.loc())
	case 2:
		g.addr()
		g.pushVal()
		if g.r.Intn(2) == 0 {
			g.emit("  store64")
		} else {
			g.emit("  store8")
		}
	case 3:
		g.addr()
		if g.r.Intn(2) == 0 {
			g.emit("  load64")
		} else {
			g.emit("  load8_u")
		}
		g.emit("  local.set %d", g.loc())
	case 4:
		if nest > 0 {
			alt, end := g.lbl(), g.lbl()
			g.pushVal()
			g.emit("  jz %s", alt)
			g.stmts(nest-1, loops)
			g.emit("  jmp %s", end)
			g.emit("%s:", alt)
			g.stmts(nest-1, loops)
			g.emit("%s:", end)
			return
		}
		g.pushVal()
		g.emit("  local.set %d", g.loc())
	case 5:
		if nest > 0 && loops < 2 {
			ctr := 4 + loops // dedicated counter local
			top, done := g.lbl(), g.lbl()
			g.emit("  push %d", 1+g.r.Intn(4))
			g.emit("  local.set %d", ctr)
			g.emit("%s:", top)
			g.emit("  local.get %d", ctr)
			g.emit("  jz %s", done)
			g.stmts(nest-1, loops+1)
			g.emit("  local.get %d", ctr)
			g.emit("  push 1")
			g.emit("  sub")
			g.emit("  local.set %d", ctr)
			g.emit("  jmp %s", top)
			g.emit("%s:", done)
			return
		}
		g.pushVal()
		g.emit("  pop")
	case 6:
		if len(g.funcs) > 0 {
			g.pushVal()
			g.emit("  call %s", g.funcs[g.r.Intn(len(g.funcs))])
			g.emit("  local.set %d", g.loc())
			return
		}
		g.pushVal()
		g.emit("  local.set %d", g.loc())
	case 7:
		g.pushVal()
		g.pushVal()
		g.emit("  hostcall mix")
		g.emit("  local.set %d", g.loc())
	case 8:
		g.addr()
		g.pushVal()
		g.emit("  hostcall poke")
	case 9:
		g.pushVal()
		g.emit("  dup")
		g.emit("  mul")
		g.emit("  local.set %d", g.loc())
	case 10:
		g.pushVal()
		g.pushVal()
		g.emit("  swap")
		g.emit("  sub")
		g.emit("  local.set %d", g.loc())
	case 11:
		g.emit("  memsize")
		g.emit("  local.set %d", g.loc())
	case 12:
		g.emit("  local.get %d", g.loc())
		g.emit("  unpack_%s", []string{"ptr", "len"}[g.r.Intn(2)])
		g.emit("  local.set %d", g.loc())
	default:
		// Fused-pattern bait: the exact windows the peepholes match.
		i, j, k := g.loc(), g.loc(), g.loc()
		g.emit("  local.get %d", i)
		g.emit("  local.get %d", j)
		g.emit("  %s", []string{"add", "sub", "mul"}[g.r.Intn(3)])
		g.emit("  local.set %d", k)
	}
}

func (g *sgen) stmts(nest, loops int) {
	for i, n := 0, 1+g.r.Intn(3); i < n; i++ {
		g.stmt(nest, loops)
	}
}

func (g *sgen) genFunc(name string, exported bool) {
	decl := fmt.Sprintf("func %s params=1 locals=5", name)
	if exported {
		decl += " export"
	}
	g.emit("%s", decl)
	g.stmts(2, 0)
	g.emit("  local.get %d", g.loc())
	g.emit("  ret")
	g.emit("end")
	g.emit("")
}

// genStructured produces one random module: a few helpers plus an
// exported main, every function depth-disciplined.
func genStructured(r *rand.Rand) string {
	g := &sgen{r: r}
	for i, n := 0, r.Intn(3); i < n; i++ {
		name := fmt.Sprintf("helper%d", i)
		g.genFunc(name, false)
		g.funcs = append(g.funcs, name)
	}
	g.genFunc("main", true)
	return g.b.String()
}

// rawOps is the opcode palette of the undisciplined generator: no calls
// or host calls, so modules are import-free (compiled — or rejected — at
// Validate) and every loop is bounded by the metered fuel budget.
var rawOps = []opcode{
	opNop, opPush, opPop, opDup, opSwap,
	opLocalGet, opLocalSet, opLocalTee,
	opJmp, opJz, opJnz,
	opAdd, opSub, opMul, opDivS, opRemS, opAnd, opOr, opXor,
	opShl, opShrS, opShrU,
	opEq, opNe, opLtS, opGtS, opLeS, opGeS, opEqz,
	opLoad8U, opLoad64, opStore8, opStore64,
	opMemSize, opAddI, opUnpackPtr, opUnpackLen,
}

// genRaw builds a random valid-by-Validate module directly from opcodes,
// with no stack discipline: depth-inconsistent programs fall back to the
// interpreter, depth-consistent ones often compile with static-underflow
// trap sites — both still must match the interpreter exactly.
func genRaw(r *rand.Rand) *Module {
	n := 5 + r.Intn(24)
	code := make([]instr, 0, n+1)
	for i := 0; i < n; i++ {
		op := rawOps[r.Intn(len(rawOps))]
		var arg int64
		switch {
		case isBranch[op]:
			arg = int64(r.Intn(n + 1))
		case op == opLocalGet || op == opLocalSet || op == opLocalTee:
			arg = int64(r.Intn(3))
		case op == opPush:
			arg = int64(r.Intn(4000) - 10)
		case op == opAddI:
			arg = int64(r.Intn(64) - 8)
		}
		code = append(code, instr{op: op, arg: arg})
	}
	code = append(code, instr{op: opRet})
	m := &Module{Funcs: []Func{{
		Name: "main", NumParams: 1, NumLocals: 2, Exported: true, code: code,
	}}}
	if err := m.Validate(); err != nil {
		return nil
	}
	return m
}

// runDiff executes entry(arg) on both tiers of mod and fails on any
// observable divergence, then ResetFasts both instances and runs a second
// round to catch dirty-region leaks across pooled reuse.
func runDiff(t *testing.T, mod *Module, withHosts bool, arg, fuel int64, tag string) {
	t.Helper()
	var logA, logB []int64
	var htA, htB *HostTable
	if withHosts {
		htA, htB = diffHosts(&logA), diffHosts(&logB)
	}
	ia, err := NewInstance(mod, htA, fuel)
	if err != nil {
		t.Fatalf("%s: interp instance: %v", tag, err)
	}
	ib, err := NewInstance(mod, htB, fuel)
	if err != nil {
		t.Fatalf("%s: threaded instance: %v", tag, err)
	}
	ia.SetTier(TierInterp)

	round := func(n int) {
		t.Helper()
		ra, ea := ia.Call("main", arg)
		rb, eb := ib.Call("main", arg)
		if (ea == nil) != (eb == nil) || (ea != nil && ea.Error() != eb.Error()) {
			t.Fatalf("%s round %d: trap divergence\ninterp:   %v\nthreaded: %v", tag, n, ea, eb)
		}
		if ea == nil && ra != rb {
			t.Fatalf("%s round %d: result divergence: interp=%d threaded=%d", tag, n, ra, rb)
		}
		if ia.FuelUsed() != ib.FuelUsed() {
			t.Fatalf("%s round %d: FuelUsed divergence: interp=%d threaded=%d (err=%v)",
				tag, n, ia.FuelUsed(), ib.FuelUsed(), ea)
		}
		if ia.MemSize() != ib.MemSize() || !bytes.Equal(ia.mem, ib.mem) {
			t.Fatalf("%s round %d: memory divergence (sizes %d vs %d)", tag, n, ia.MemSize(), ib.MemSize())
		}
		if len(logA) != len(logB) {
			t.Fatalf("%s round %d: host-call count divergence: %d vs %d", tag, n, len(logA), len(logB))
		}
		for i := range logA {
			if logA[i] != logB[i] {
				t.Fatalf("%s round %d: host-call log divergence at %d: %d vs %d", tag, n, i, logA[i], logB[i])
			}
		}
	}
	round(1)
	ia.ResetFast(fuel)
	ib.ResetFast(fuel)
	logA, logB = nil, nil
	round(2)
}

func TestDifferentialStructured(t *testing.T) {
	seeds := 300
	if raceEnabled {
		seeds = 60
	}
	for seed := 0; seed < seeds; seed++ {
		r := rand.New(rand.NewSource(int64(seed)*9176 + 7))
		src := genStructured(r)
		mod, err := Assemble(src)
		if err != nil {
			t.Fatalf("seed %d: assemble: %v\n%s", seed, err, src)
		}
		// Structured programs are depth-disciplined by construction: the
		// compiler must accept every one of them.
		probe, err := NewInstance(mod, diffHosts(new([]int64)), 1)
		if err != nil {
			t.Fatalf("seed %d: instance: %v", seed, err)
		}
		if probe.EffectiveTier() != TierThreaded {
			t.Fatalf("seed %d: structured module fell back to the interpreter\n%s", seed, src)
		}
		arg := r.Int63n(1000)
		for _, fuel := range []int64{0, int64(40 + r.Intn(400)), 1 << 20} {
			runDiff(t, mod, true, arg, fuel, fmt.Sprintf("seed %d fuel %d", seed, fuel))
		}
	}
}

func TestDifferentialRaw(t *testing.T) {
	seeds := 600
	if raceEnabled {
		seeds = 150
	}
	compiled, fallbacks := 0, 0
	for seed := 0; seed < seeds; seed++ {
		r := rand.New(rand.NewSource(int64(seed)*31337 + 11))
		mod := genRaw(r)
		if mod == nil {
			continue
		}
		probe, err := NewInstance(mod, nil, 1)
		if err != nil {
			t.Fatalf("seed %d: instance: %v", seed, err)
		}
		if probe.EffectiveTier() == TierThreaded {
			compiled++
		} else {
			fallbacks++
		}
		// Raw programs may loop forever: metered budgets only.
		for _, fuel := range []int64{int64(30 + r.Intn(200)), 5000} {
			runDiff(t, mod, false, r.Int63n(100), fuel, fmt.Sprintf("raw seed %d fuel %d", seed, fuel))
		}
	}
	t.Logf("raw modules: %d compiled, %d interpreter fallbacks", compiled, fallbacks)
	// The symbolic translator accepts almost everything the validator
	// does, so module-level fallbacks are rare (roughly one per few
	// hundred seeds); only the full corpus is guaranteed to hit one.
	if compiled == 0 || (!raceEnabled && fallbacks == 0) {
		t.Fatalf("raw generator lost coverage: compiled=%d fallbacks=%d (want both >0)", compiled, fallbacks)
	}
}
