package vm

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// Assemble compiles the textual form of the bytecode into a validated
// Module. The language is line-oriented:
//
//	;; comment (also "#")
//	module minpages=1 maxpages=64        ; optional memory limits
//	func NAME params=N locals=M export   ; "export" marks a public method
//	  push 42
//	  local.get 0
//	  str "hello"        ; places the literal in the data segment and
//	                     ; pushes its (ptr, len) pair
//	  jz done
//	loop:
//	  jmp loop
//	  call other_func    ; by name, resolved module-wide
//	  hostcall kv_get    ; by name, resolved against the host table
//	done:
//	  ret
//	end
//
// Labels are local to their function. String literals are deduplicated in
// the module data segment.
func Assemble(src string) (*Module, error) {
	m := &Module{MinPages: 1, MaxPages: 256}
	importIdx := make(map[string]int)
	strIdx := make(map[string]int) // literal -> data offset

	var refs []pendingRef

	var cur *Func
	var curLabels map[string]int
	curIndex := -1
	// fuseBarrier is the lowest pc the peephole pass may fold into: label
	// definitions seal everything before them so a fused instruction can
	// never swallow a branch target.
	fuseBarrier := 0

	fail := func(lineNum int, format string, args ...any) error {
		return fmt.Errorf("vm: asm line %d: %s", lineNum, fmt.Sprintf(format, args...))
	}

	// tryFuse runs the superinstruction peephole over the tail of the
	// current function after each plain instruction is emitted:
	//
	//	push k; add            -> addi k
	//	push k; sub            -> addi -k
	//	local.get i; addi k; local.set i -> local.addi (i<<32|k)
	//
	// Together with the fused forms str/unpack.* emit directly, this
	// collapses the hot load/append idioms into single dispatches.
	tryFuse := func() {
		code := cur.code
		n := len(code)
		if n < 2 || n-2 < fuseBarrier {
			return
		}
		a, b := code[n-2], code[n-1]
		switch {
		case a.op == opPush && b.op == opAdd:
			cur.code = append(code[:n-2], instr{op: opAddI, arg: a.arg})
		case a.op == opPush && b.op == opSub && a.arg != math.MinInt64:
			cur.code = append(code[:n-2], instr{op: opAddI, arg: -a.arg})
		case a.op == opAddI && b.op == opLocalSet:
			if n-3 >= fuseBarrier && code[n-3].op == opLocalGet && code[n-3].arg == b.arg &&
				a.arg >= math.MinInt32 && a.arg <= math.MaxInt32 {
				packed := b.arg<<32 | int64(uint32(int32(a.arg)))
				cur.code = append(code[:n-3], instr{op: opLocalAddI, arg: packed})
			}
		}
	}

	lines := strings.Split(src, "\n")
	for lineNum0, raw := range lines {
		lineNum := lineNum0 + 1
		line := raw
		// Strip comments, but not inside string literals.
		if i := commentIndex(line); i >= 0 {
			line = line[:i]
		}
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}

		fields := splitFields(line)
		head := fields[0]

		// Label definition.
		if strings.HasSuffix(head, ":") && len(fields) == 1 {
			if cur == nil {
				return nil, fail(lineNum, "label outside function")
			}
			name := strings.TrimSuffix(head, ":")
			if _, dup := curLabels[name]; dup {
				return nil, fail(lineNum, "duplicate label %q", name)
			}
			curLabels[name] = len(cur.code)
			fuseBarrier = len(cur.code)
			continue
		}

		switch head {
		case "module":
			for _, f := range fields[1:] {
				k, v, ok := strings.Cut(f, "=")
				if !ok {
					return nil, fail(lineNum, "bad module field %q", f)
				}
				n, err := strconv.Atoi(v)
				if err != nil {
					return nil, fail(lineNum, "bad module value %q", f)
				}
				switch k {
				case "minpages":
					m.MinPages = n
				case "maxpages":
					m.MaxPages = n
				default:
					return nil, fail(lineNum, "unknown module field %q", k)
				}
			}

		case "func":
			if cur != nil {
				return nil, fail(lineNum, "nested func")
			}
			if len(fields) < 2 {
				return nil, fail(lineNum, "func needs a name")
			}
			f := Func{Name: fields[1]}
			for _, opt := range fields[2:] {
				if opt == "export" {
					f.Exported = true
					continue
				}
				k, v, ok := strings.Cut(opt, "=")
				if !ok {
					return nil, fail(lineNum, "bad func option %q", opt)
				}
				n, err := strconv.Atoi(v)
				if err != nil {
					return nil, fail(lineNum, "bad func option value %q", opt)
				}
				switch k {
				case "params":
					f.NumParams = n
				case "locals":
					f.NumLocals = n
				default:
					return nil, fail(lineNum, "unknown func option %q", k)
				}
			}
			m.Funcs = append(m.Funcs, f)
			curIndex = len(m.Funcs) - 1
			cur = &m.Funcs[curIndex]
			curLabels = make(map[string]int)
			fuseBarrier = 0

		case "end":
			if cur == nil {
				return nil, fail(lineNum, "end outside function")
			}
			// Implicit trailing ret for convenience.
			if len(cur.code) == 0 || !terminates(cur.code[len(cur.code)-1].op) {
				cur.code = append(cur.code, instr{op: opRet})
			}
			// Resolve this function's labels.
			for i := range refs {
				r := &refs[i]
				if r.fn != curIndex || r.isCall {
					continue
				}
				target, ok := curLabels[r.target]
				if !ok {
					return nil, fail(r.line, "undefined label %q", r.target)
				}
				cur.code[r.pc].arg = int64(target)
				r.target = "" // mark resolved
			}
			refs = compactRefs(refs)
			cur = nil
			curLabels = nil
			curIndex = -1

		case "str":
			if cur == nil {
				return nil, fail(lineNum, "instruction outside function")
			}
			if len(fields) < 2 {
				return nil, fail(lineNum, "str needs a literal")
			}
			lit, err := strconv.Unquote(strings.TrimSpace(line[len("str"):]))
			if err != nil {
				return nil, fail(lineNum, "bad string literal: %v", err)
			}
			off, ok := strIdx[lit]
			if !ok {
				off = len(m.Data)
				m.Data = append(m.Data, lit...)
				strIdx[lit] = off
			}
			// One fused push of the (ptr, len) pair; offsets and lengths
			// are bounded by maxDataBytes, far inside 32 bits.
			cur.code = append(cur.code,
				instr{op: opPushPair, arg: int64(off)<<32 | int64(len(lit))})

		case "unpack.ptr":
			// Pseudo-op: packed (ptr<<32|len) handle -> ptr.
			if cur == nil {
				return nil, fail(lineNum, "instruction outside function")
			}
			cur.code = append(cur.code, instr{op: opUnpackPtr})

		case "unpack.len":
			// Pseudo-op: packed (ptr<<32|len) handle -> len.
			if cur == nil {
				return nil, fail(lineNum, "instruction outside function")
			}
			cur.code = append(cur.code, instr{op: opUnpackLen})

		default:
			if cur == nil {
				return nil, fail(lineNum, "instruction outside function")
			}
			op, ok := opByName[head]
			if !ok {
				return nil, fail(lineNum, "unknown instruction %q", head)
			}
			in := instr{op: op}
			if hasOperand[op] {
				if len(fields) < 2 {
					return nil, fail(lineNum, "%s needs an operand", head)
				}
				operand := fields[1]
				switch {
				case isBranch[op]:
					refs = append(refs, pendingRef{fn: curIndex, pc: len(cur.code), target: operand, line: lineNum})
				case op == opCall:
					refs = append(refs, pendingRef{fn: curIndex, pc: len(cur.code), target: operand, line: lineNum, isCall: true})
				case op == opHostCall:
					idx, ok := importIdx[operand]
					if !ok {
						idx = len(m.Imports)
						m.Imports = append(m.Imports, operand)
						importIdx[operand] = idx
					}
					in.arg = int64(idx)
				default:
					n, err := strconv.ParseInt(operand, 0, 64)
					if err != nil {
						return nil, fail(lineNum, "bad operand %q", operand)
					}
					in.arg = n
				}
			}
			cur.code = append(cur.code, in)
			tryFuse()
		}
	}
	if cur != nil {
		return nil, fmt.Errorf("vm: asm: unterminated func %q", cur.Name)
	}

	// Resolve cross-function calls.
	if err := m.buildIndex(); err != nil {
		return nil, err
	}
	for _, r := range refs {
		if !r.isCall {
			continue
		}
		idx := m.FuncIndex(r.target)
		if idx < 0 {
			return nil, fmt.Errorf("vm: asm line %d: undefined function %q", r.line, r.target)
		}
		m.Funcs[r.fn].code[r.pc].arg = int64(idx)
	}

	// Grow MinPages if the data segment outgrew the default single page.
	if need := (len(m.Data) + PageBytes - 1) / PageBytes; need > m.MinPages {
		m.MinPages = need
	}
	if m.MaxPages < m.MinPages {
		m.MaxPages = m.MinPages
	}

	if err := m.Validate(); err != nil {
		return nil, err
	}
	return m, nil
}

// MustAssemble panics on assembly errors; for statically known-good sources
// (package-level application definitions, tests).
func MustAssemble(src string) *Module {
	m, err := Assemble(src)
	if err != nil {
		panic(err)
	}
	return m
}

// terminates reports whether op ends a basic block such that an implicit
// trailing ret would be unreachable.
func terminates(op opcode) bool {
	return op == opRet || op == opHalt || op == opJmp || op == opUnreachable
}

// commentIndex finds the start of a ;; or # comment outside string quotes.
func commentIndex(line string) int {
	inStr := false
	for i := 0; i < len(line); i++ {
		c := line[i]
		if inStr {
			if c == '\\' {
				i++
			} else if c == '"' {
				inStr = false
			}
			continue
		}
		switch c {
		case '"':
			inStr = true
		case '#':
			return i
		case ';':
			return i
		}
	}
	return -1
}

// splitFields splits on whitespace, respecting double-quoted literals.
func splitFields(line string) []string {
	var out []string
	i := 0
	for i < len(line) {
		for i < len(line) && (line[i] == ' ' || line[i] == '\t') {
			i++
		}
		if i >= len(line) {
			break
		}
		start := i
		if line[i] == '"' {
			i++
			for i < len(line) {
				if line[i] == '\\' {
					i += 2
					continue
				}
				if line[i] == '"' {
					i++
					break
				}
				i++
			}
		} else {
			for i < len(line) && line[i] != ' ' && line[i] != '\t' {
				i++
			}
		}
		out = append(out, line[start:i])
	}
	return out
}

// pendingRef is an unresolved label or call reference recorded during
// assembly.
type pendingRef struct {
	fn     int
	pc     int
	target string
	line   int
	isCall bool
}

// compactRefs drops resolved (empty-target) entries.
func compactRefs(refs []pendingRef) []pendingRef {
	out := refs[:0]
	for _, r := range refs {
		if r.target != "" {
			out = append(out, r)
		}
	}
	return out
}

// Disassemble renders a module back to (approximate) assembly, for
// debugging and the lambdactl CLI.
func Disassemble(m *Module) string {
	var b strings.Builder
	fmt.Fprintf(&b, "module minpages=%d maxpages=%d\n", m.MinPages, m.MaxPages)
	if len(m.Data) > 0 {
		fmt.Fprintf(&b, ";; data segment: %d bytes\n", len(m.Data))
	}
	for _, f := range m.Funcs {
		export := ""
		if f.Exported {
			export = " export"
		}
		fmt.Fprintf(&b, "func %s params=%d locals=%d%s\n", f.Name, f.NumParams, f.NumLocals, export)
		for pc, in := range f.code {
			switch {
			case in.op == opCall:
				fmt.Fprintf(&b, "  %4d: call %s\n", pc, m.Funcs[in.arg].Name)
			case in.op == opHostCall:
				fmt.Fprintf(&b, "  %4d: hostcall %s\n", pc, m.Imports[in.arg])
			default:
				fmt.Fprintf(&b, "  %4d: %s\n", pc, in)
			}
		}
		b.WriteString("end\n")
	}
	return b.String()
}
