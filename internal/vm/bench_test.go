package vm

import "testing"

// benchSpin measures warm compute-bound invocations — CallIndex plus the
// pooled-instance ResetFast — on one tier, mirroring how the runtime
// drives co-located reads.
func benchSpin(b *testing.B, tier Tier) {
	mod := MustAssemble(spinSrc)
	inst, err := NewInstance(mod, nil, 64<<20)
	if err != nil {
		b.Fatal(err)
	}
	inst.SetTier(tier)
	idx := mod.FuncIndex("spin")
	if _, err := inst.CallIndex(idx, 4000); err != nil {
		b.Fatal(err)
	}
	inst.ResetFast(64 << 20)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := inst.CallIndex(idx, 4000); err != nil {
			b.Fatal(err)
		}
		inst.ResetFast(64 << 20)
	}
}

func BenchmarkSpinThreaded(b *testing.B) { benchSpin(b, TierThreaded) }

func BenchmarkSpinInterp(b *testing.B) { benchSpin(b, TierInterp) }
