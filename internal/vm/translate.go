package vm

// Symbolic block translation: the high-performance emission path of the
// threaded tier. Within a basic block the operand stack is tracked
// symbolically — pushes of constants and local reads cost zero dispatches;
// an ALU instruction compiles to one closure that reads its operands
// directly from locals/constants and writes the result to its statically
// known frame register (or straight into a local when a local.set
// immediately consumes it). Compare-and-branch pairs fuse into a single
// closure, as do bounds-checked loads and stores whose operands are
// register-resident.
//
// Parity with the interpreter is preserved instruction by instruction:
//   - Value-stack overflow checks for elided pushes accumulate as
//     "pending sites" and are re-checked, in program order, by a guard
//     folded into the next emitted closure — which always runs before any
//     trap or side effect that follows those pushes, so the trapping pc
//     (and therefore the error string) is identical. The hot closure
//     kinds carry the guard inline as a single comparison against the
//     earliest headroom limit (a maxInt sentinel when nothing is owed);
//     the rest absorb it as a wrapper.
//   - Every trapping operation (loads, stores, division, calls, host
//     calls, memory growth) keeps its own closure and its own pc.
//   - Fuel stays per-block: translation never crosses a block leader, and
//     the trampoline in compile.go charges from the same blockFuel values
//     at the same leaders.
//
// Translation is conservative: any structural surprise makes the function
// fall back to the straightforward one-closure-per-instruction emitter in
// compile.go, which is always available.

import (
	"encoding/binary"
	"math"
)

// symKind classifies one symbolic operand-stack entry.
type symKind uint8

const (
	// symCanon: the value already lives in its canonical frame register
	// (numLocals + stack position).
	symCanon symKind = iota
	// symConst: a compile-time constant that has not been materialized.
	symConst
	// symLocal: an un-copied reference to a local's register.
	symLocal
)

type symVal struct {
	kind  symKind
	c     int64 // symConst value
	local int   // symLocal register index
}

// ref is a resolved operand: a constant or a frame-relative register.
type ref struct {
	isConst bool
	c       int64
	reg     int
}

// ovSite is one elided push whose overflow check is still owed: the
// interpreter would trap at pc when height >= lim.
type ovSite struct {
	pc  int
	lim int
}

// ovNone makes the inline guard comparison always false.
const ovNone = int(^uint(0) >> 1)

// ovInfo carries owed overflow checks into a closure: the fast path
// compares the frame height against minLim once; the slow path finds the
// first violating site in program order, exactly as the interpreter
// would have trapped.
type ovInfo struct {
	minLim int
	name   string
	sites  []ovSite
}

func ovFail(m *thState, ov *ovInfo) int {
	for _, s := range ov.sites {
		if m.height >= s.lim {
			return m.failAt(ov.name, s.pc, ErrStackOverflow)
		}
	}
	return m.failAt(ov.name, ov.sites[0].pc, ErrStackOverflow)
}

// blockGen translates one basic block.
type blockGen struct {
	f    *Func
	tf   *thFunc
	ir   *funcIR
	tm   *thModule
	sigs []hostSig
	name string
	nl   int

	sym       []symVal
	factories []func(next int) thOp
	pending   []ovSite
}

func (g *blockGen) refOf(pos int) ref {
	switch e := g.sym[pos]; e.kind {
	case symConst:
		return ref{isConst: true, c: e.c}
	case symLocal:
		return ref{reg: e.local}
	default:
		return ref{reg: g.nl + pos}
	}
}

// takeOv drains the pending overflow sites into an inline-guard
// descriptor for the specialized closure constructors.
func (g *blockGen) takeOv() ovInfo {
	if len(g.pending) == 0 {
		return ovInfo{minLim: ovNone}
	}
	sites := append([]ovSite(nil), g.pending...)
	g.pending = g.pending[:0]
	min := sites[0].lim
	for _, s := range sites[1:] {
		if s.lim < min {
			min = s.lim
		}
	}
	return ovInfo{minLim: min, name: g.name, sites: sites}
}

// emit appends a closure factory, folding any pending overflow sites into
// a wrapper guard that runs first — the generic path for closure kinds
// that do not take an ovInfo inline.
func (g *blockGen) emit(fac func(next int) thOp) {
	if len(g.pending) > 0 {
		ov := g.takeOv()
		inner := fac
		fac = func(next int) thOp {
			op := inner(next)
			lim := ov.minLim
			return func(m *thState) int {
				if m.height >= lim {
					return ovFail(m, &ov)
				}
				return op(m)
			}
		}
	}
	g.factories = append(g.factories, fac)
}

// flushPending emits a pass-through closure when overflow checks are
// still owed at a point where no further closure would absorb them
// (block exits via elided jumps, returns, and fallthroughs).
func (g *blockGen) flushPending() {
	if len(g.pending) == 0 {
		return
	}
	g.emit(func(next int) thOp {
		return func(m *thState) int { return next }
	})
}

// materialize copies one symbolic entry into its canonical register.
func (g *blockGen) materialize(pos int) {
	e := g.sym[pos]
	if e.kind == symCanon {
		return
	}
	dst := g.nl + pos
	if e.kind == symConst {
		c := e.c
		g.emit(func(next int) thOp {
			return func(m *thState) int {
				m.inst.regFile[m.fp+dst] = c
				return next
			}
		})
	} else {
		src := e.local
		g.emit(func(next int) thOp {
			return func(m *thState) int {
				rf := m.inst.regFile
				rf[m.fp+dst] = rf[m.fp+src]
				return next
			}
		})
	}
	g.sym[pos] = symVal{kind: symCanon}
}

func (g *blockGen) materializeFrom(pos int) {
	for i := pos; i < len(g.sym); i++ {
		g.materialize(i)
	}
}

// materializeLocalRefs copies every pending reference to local reg below
// limit into its canonical slot — required before the local is
// overwritten by a sink whose operands may still alias it (operand reads
// happen before the write inside a single closure, so only entries that
// outlive the instruction need copying).
func (g *blockGen) materializeLocalRefs(reg, limit int) {
	for i := 0; i < limit; i++ {
		if g.sym[i].kind == symLocal && g.sym[i].local == reg {
			g.materialize(i)
		}
	}
}

// regRef forces a ref into register form, materializing a constant into
// the operand's canonical slot when needed (rare: const addresses etc.).
func (g *blockGen) regRef(pos int) ref {
	if g.sym[pos].kind == symConst {
		g.materialize(pos)
	}
	return g.refOf(pos)
}

// negCmp returns the opposite comparison (for jz-sense branch fusion).
func negCmp(op opcode) opcode {
	switch op {
	case opEq:
		return opNe
	case opNe:
		return opEq
	case opLtS:
		return opGeS
	case opGeS:
		return opLtS
	case opGtS:
		return opLeS
	default: // opLeS
		return opGtS
	}
}

// foldBin constant-folds a side-effect-free binary op. ok=false for ops
// that can trap (div/rem) or are unknown.
func foldBin(op opcode, a, b int64) (int64, bool) {
	switch op {
	case opAdd:
		return a + b, true
	case opSub:
		return a - b, true
	case opMul:
		return a * b, true
	case opAnd:
		return a & b, true
	case opOr:
		return a | b, true
	case opXor:
		return a ^ b, true
	case opShl:
		return a << (uint64(b) & 63), true
	case opShrS:
		return a >> (uint64(b) & 63), true
	case opShrU:
		return int64(uint64(a) >> (uint64(b) & 63)), true
	case opEq:
		return b2i(a == b), true
	case opNe:
		return b2i(a != b), true
	case opLtS:
		return b2i(a < b), true
	case opGtS:
		return b2i(a > b), true
	case opLeS:
		return b2i(a <= b), true
	case opGeS:
		return b2i(a >= b), true
	}
	return 0, false
}

// commutes reports whether the op tolerates swapped operands.
func commutes(op opcode) bool {
	switch op {
	case opAdd, opMul, opAnd, opOr, opXor, opEq, opNe:
		return true
	}
	return false
}

// swapCmp rewrites `const OP reg` as `reg OP' const`.
func swapCmp(op opcode) (opcode, bool) {
	switch op {
	case opLtS:
		return opGtS, true
	case opGtS:
		return opLtS, true
	case opLeS:
		return opGeS, true
	case opGeS:
		return opLeS, true
	}
	return op, false
}

// aluRR emits OP with both operands in registers. The leading comparison
// is the inline overflow guard for elided pushes this closure absorbed.
func aluRR(op opcode, a, b, dst int, name string, at int, ov ovInfo) func(int) thOp {
	lim := ov.minLim
	switch op {
	case opAdd:
		return func(next int) thOp {
			return func(m *thState) int {
				if m.height >= lim {
					return ovFail(m, &ov)
				}
				rf := m.inst.regFile
				rf[m.fp+dst] = rf[m.fp+a] + rf[m.fp+b]
				return next
			}
		}
	case opSub:
		return func(next int) thOp {
			return func(m *thState) int {
				if m.height >= lim {
					return ovFail(m, &ov)
				}
				rf := m.inst.regFile
				rf[m.fp+dst] = rf[m.fp+a] - rf[m.fp+b]
				return next
			}
		}
	case opMul:
		return func(next int) thOp {
			return func(m *thState) int {
				if m.height >= lim {
					return ovFail(m, &ov)
				}
				rf := m.inst.regFile
				rf[m.fp+dst] = rf[m.fp+a] * rf[m.fp+b]
				return next
			}
		}
	case opDivS:
		return func(next int) thOp {
			return func(m *thState) int {
				if m.height >= lim {
					return ovFail(m, &ov)
				}
				rf := m.inst.regFile
				x, y := rf[m.fp+a], rf[m.fp+b]
				if y == 0 || (x == math.MinInt64 && y == -1) {
					return m.failAt(name, at, ErrDivByZero)
				}
				rf[m.fp+dst] = x / y
				return next
			}
		}
	case opRemS:
		return func(next int) thOp {
			return func(m *thState) int {
				if m.height >= lim {
					return ovFail(m, &ov)
				}
				rf := m.inst.regFile
				y := rf[m.fp+b]
				if y == 0 {
					return m.failAt(name, at, ErrDivByZero)
				}
				rf[m.fp+dst] = rf[m.fp+a] % y
				return next
			}
		}
	case opAnd:
		return func(next int) thOp {
			return func(m *thState) int {
				if m.height >= lim {
					return ovFail(m, &ov)
				}
				rf := m.inst.regFile
				rf[m.fp+dst] = rf[m.fp+a] & rf[m.fp+b]
				return next
			}
		}
	case opOr:
		return func(next int) thOp {
			return func(m *thState) int {
				if m.height >= lim {
					return ovFail(m, &ov)
				}
				rf := m.inst.regFile
				rf[m.fp+dst] = rf[m.fp+a] | rf[m.fp+b]
				return next
			}
		}
	case opXor:
		return func(next int) thOp {
			return func(m *thState) int {
				if m.height >= lim {
					return ovFail(m, &ov)
				}
				rf := m.inst.regFile
				rf[m.fp+dst] = rf[m.fp+a] ^ rf[m.fp+b]
				return next
			}
		}
	case opShl:
		return func(next int) thOp {
			return func(m *thState) int {
				if m.height >= lim {
					return ovFail(m, &ov)
				}
				rf := m.inst.regFile
				rf[m.fp+dst] = rf[m.fp+a] << (uint64(rf[m.fp+b]) & 63)
				return next
			}
		}
	case opShrS:
		return func(next int) thOp {
			return func(m *thState) int {
				if m.height >= lim {
					return ovFail(m, &ov)
				}
				rf := m.inst.regFile
				rf[m.fp+dst] = rf[m.fp+a] >> (uint64(rf[m.fp+b]) & 63)
				return next
			}
		}
	case opShrU:
		return func(next int) thOp {
			return func(m *thState) int {
				if m.height >= lim {
					return ovFail(m, &ov)
				}
				rf := m.inst.regFile
				rf[m.fp+dst] = int64(uint64(rf[m.fp+a]) >> (uint64(rf[m.fp+b]) & 63))
				return next
			}
		}
	case opEq:
		return func(next int) thOp {
			return func(m *thState) int {
				if m.height >= lim {
					return ovFail(m, &ov)
				}
				rf := m.inst.regFile
				rf[m.fp+dst] = b2i(rf[m.fp+a] == rf[m.fp+b])
				return next
			}
		}
	case opNe:
		return func(next int) thOp {
			return func(m *thState) int {
				if m.height >= lim {
					return ovFail(m, &ov)
				}
				rf := m.inst.regFile
				rf[m.fp+dst] = b2i(rf[m.fp+a] != rf[m.fp+b])
				return next
			}
		}
	case opLtS:
		return func(next int) thOp {
			return func(m *thState) int {
				if m.height >= lim {
					return ovFail(m, &ov)
				}
				rf := m.inst.regFile
				rf[m.fp+dst] = b2i(rf[m.fp+a] < rf[m.fp+b])
				return next
			}
		}
	case opGtS:
		return func(next int) thOp {
			return func(m *thState) int {
				if m.height >= lim {
					return ovFail(m, &ov)
				}
				rf := m.inst.regFile
				rf[m.fp+dst] = b2i(rf[m.fp+a] > rf[m.fp+b])
				return next
			}
		}
	case opLeS:
		return func(next int) thOp {
			return func(m *thState) int {
				if m.height >= lim {
					return ovFail(m, &ov)
				}
				rf := m.inst.regFile
				rf[m.fp+dst] = b2i(rf[m.fp+a] <= rf[m.fp+b])
				return next
			}
		}
	default: // opGeS
		return func(next int) thOp {
			return func(m *thState) int {
				if m.height >= lim {
					return ovFail(m, &ov)
				}
				rf := m.inst.regFile
				rf[m.fp+dst] = b2i(rf[m.fp+a] >= rf[m.fp+b])
				return next
			}
		}
	}
}

// aluRC emits OP with the right operand a compile-time constant.
func aluRC(op opcode, a int, c int64, dst int, name string, at int, ov ovInfo) func(int) thOp {
	lim := ov.minLim
	switch op {
	case opAdd:
		return func(next int) thOp {
			return func(m *thState) int {
				if m.height >= lim {
					return ovFail(m, &ov)
				}
				rf := m.inst.regFile
				rf[m.fp+dst] = rf[m.fp+a] + c
				return next
			}
		}
	case opSub:
		return func(next int) thOp {
			return func(m *thState) int {
				if m.height >= lim {
					return ovFail(m, &ov)
				}
				rf := m.inst.regFile
				rf[m.fp+dst] = rf[m.fp+a] - c
				return next
			}
		}
	case opMul:
		return func(next int) thOp {
			return func(m *thState) int {
				if m.height >= lim {
					return ovFail(m, &ov)
				}
				rf := m.inst.regFile
				rf[m.fp+dst] = rf[m.fp+a] * c
				return next
			}
		}
	case opDivS:
		if c == 0 {
			return func(next int) thOp {
				return func(m *thState) int {
					if m.height >= lim {
						return ovFail(m, &ov)
					}
					return m.failAt(name, at, ErrDivByZero)
				}
			}
		}
		return func(next int) thOp {
			return func(m *thState) int {
				if m.height >= lim {
					return ovFail(m, &ov)
				}
				rf := m.inst.regFile
				x := rf[m.fp+a]
				if x == math.MinInt64 && c == -1 {
					return m.failAt(name, at, ErrDivByZero)
				}
				rf[m.fp+dst] = x / c
				return next
			}
		}
	case opRemS:
		if c == 0 {
			return func(next int) thOp {
				return func(m *thState) int {
					if m.height >= lim {
						return ovFail(m, &ov)
					}
					return m.failAt(name, at, ErrDivByZero)
				}
			}
		}
		return func(next int) thOp {
			return func(m *thState) int {
				if m.height >= lim {
					return ovFail(m, &ov)
				}
				rf := m.inst.regFile
				rf[m.fp+dst] = rf[m.fp+a] % c
				return next
			}
		}
	case opAnd:
		return func(next int) thOp {
			return func(m *thState) int {
				if m.height >= lim {
					return ovFail(m, &ov)
				}
				rf := m.inst.regFile
				rf[m.fp+dst] = rf[m.fp+a] & c
				return next
			}
		}
	case opOr:
		return func(next int) thOp {
			return func(m *thState) int {
				if m.height >= lim {
					return ovFail(m, &ov)
				}
				rf := m.inst.regFile
				rf[m.fp+dst] = rf[m.fp+a] | c
				return next
			}
		}
	case opXor:
		return func(next int) thOp {
			return func(m *thState) int {
				if m.height >= lim {
					return ovFail(m, &ov)
				}
				rf := m.inst.regFile
				rf[m.fp+dst] = rf[m.fp+a] ^ c
				return next
			}
		}
	case opShl:
		sh := uint64(c) & 63
		return func(next int) thOp {
			return func(m *thState) int {
				if m.height >= lim {
					return ovFail(m, &ov)
				}
				rf := m.inst.regFile
				rf[m.fp+dst] = rf[m.fp+a] << sh
				return next
			}
		}
	case opShrS:
		sh := uint64(c) & 63
		return func(next int) thOp {
			return func(m *thState) int {
				if m.height >= lim {
					return ovFail(m, &ov)
				}
				rf := m.inst.regFile
				rf[m.fp+dst] = rf[m.fp+a] >> sh
				return next
			}
		}
	case opShrU:
		sh := uint64(c) & 63
		return func(next int) thOp {
			return func(m *thState) int {
				if m.height >= lim {
					return ovFail(m, &ov)
				}
				rf := m.inst.regFile
				rf[m.fp+dst] = int64(uint64(rf[m.fp+a]) >> sh)
				return next
			}
		}
	case opEq:
		return func(next int) thOp {
			return func(m *thState) int {
				if m.height >= lim {
					return ovFail(m, &ov)
				}
				rf := m.inst.regFile
				rf[m.fp+dst] = b2i(rf[m.fp+a] == c)
				return next
			}
		}
	case opNe:
		return func(next int) thOp {
			return func(m *thState) int {
				if m.height >= lim {
					return ovFail(m, &ov)
				}
				rf := m.inst.regFile
				rf[m.fp+dst] = b2i(rf[m.fp+a] != c)
				return next
			}
		}
	case opLtS:
		return func(next int) thOp {
			return func(m *thState) int {
				if m.height >= lim {
					return ovFail(m, &ov)
				}
				rf := m.inst.regFile
				rf[m.fp+dst] = b2i(rf[m.fp+a] < c)
				return next
			}
		}
	case opGtS:
		return func(next int) thOp {
			return func(m *thState) int {
				if m.height >= lim {
					return ovFail(m, &ov)
				}
				rf := m.inst.regFile
				rf[m.fp+dst] = b2i(rf[m.fp+a] > c)
				return next
			}
		}
	case opLeS:
		return func(next int) thOp {
			return func(m *thState) int {
				if m.height >= lim {
					return ovFail(m, &ov)
				}
				rf := m.inst.regFile
				rf[m.fp+dst] = b2i(rf[m.fp+a] <= c)
				return next
			}
		}
	default: // opGeS
		return func(next int) thOp {
			return func(m *thState) int {
				if m.height >= lim {
					return ovFail(m, &ov)
				}
				rf := m.inst.regFile
				rf[m.fp+dst] = b2i(rf[m.fp+a] >= c)
				return next
			}
		}
	}
}

// cmpBranchRR emits a fused compare-and-branch in jnz sense: jump to
// taken when `a OP b` holds, fall through to next otherwise.
func cmpBranchRR(op opcode, a, b, taken int, ov ovInfo) func(int) thOp {
	lim := ov.minLim
	switch op {
	case opEq:
		return func(next int) thOp {
			return func(m *thState) int {
				if m.height >= lim {
					return ovFail(m, &ov)
				}
				rf := m.inst.regFile
				if rf[m.fp+a] == rf[m.fp+b] {
					return taken
				}
				return next
			}
		}
	case opNe:
		return func(next int) thOp {
			return func(m *thState) int {
				if m.height >= lim {
					return ovFail(m, &ov)
				}
				rf := m.inst.regFile
				if rf[m.fp+a] != rf[m.fp+b] {
					return taken
				}
				return next
			}
		}
	case opLtS:
		return func(next int) thOp {
			return func(m *thState) int {
				if m.height >= lim {
					return ovFail(m, &ov)
				}
				rf := m.inst.regFile
				if rf[m.fp+a] < rf[m.fp+b] {
					return taken
				}
				return next
			}
		}
	case opGtS:
		return func(next int) thOp {
			return func(m *thState) int {
				if m.height >= lim {
					return ovFail(m, &ov)
				}
				rf := m.inst.regFile
				if rf[m.fp+a] > rf[m.fp+b] {
					return taken
				}
				return next
			}
		}
	case opLeS:
		return func(next int) thOp {
			return func(m *thState) int {
				if m.height >= lim {
					return ovFail(m, &ov)
				}
				rf := m.inst.regFile
				if rf[m.fp+a] <= rf[m.fp+b] {
					return taken
				}
				return next
			}
		}
	default: // opGeS
		return func(next int) thOp {
			return func(m *thState) int {
				if m.height >= lim {
					return ovFail(m, &ov)
				}
				rf := m.inst.regFile
				if rf[m.fp+a] >= rf[m.fp+b] {
					return taken
				}
				return next
			}
		}
	}
}

// cmpBranchRC is cmpBranchRR with a constant right operand.
func cmpBranchRC(op opcode, a int, c int64, taken int, ov ovInfo) func(int) thOp {
	lim := ov.minLim
	switch op {
	case opEq:
		return func(next int) thOp {
			return func(m *thState) int {
				if m.height >= lim {
					return ovFail(m, &ov)
				}
				if m.inst.regFile[m.fp+a] == c {
					return taken
				}
				return next
			}
		}
	case opNe:
		return func(next int) thOp {
			return func(m *thState) int {
				if m.height >= lim {
					return ovFail(m, &ov)
				}
				if m.inst.regFile[m.fp+a] != c {
					return taken
				}
				return next
			}
		}
	case opLtS:
		return func(next int) thOp {
			return func(m *thState) int {
				if m.height >= lim {
					return ovFail(m, &ov)
				}
				if m.inst.regFile[m.fp+a] < c {
					return taken
				}
				return next
			}
		}
	case opGtS:
		return func(next int) thOp {
			return func(m *thState) int {
				if m.height >= lim {
					return ovFail(m, &ov)
				}
				if m.inst.regFile[m.fp+a] > c {
					return taken
				}
				return next
			}
		}
	case opLeS:
		return func(next int) thOp {
			return func(m *thState) int {
				if m.height >= lim {
					return ovFail(m, &ov)
				}
				if m.inst.regFile[m.fp+a] <= c {
					return taken
				}
				return next
			}
		}
	default: // opGeS
		return func(next int) thOp {
			return func(m *thState) int {
				if m.height >= lim {
					return ovFail(m, &ov)
				}
				if m.inst.regFile[m.fp+a] >= c {
					return taken
				}
				return next
			}
		}
	}
}

// emitBinOp lowers a binary ALU instruction at pc with operand refs a, b
// and destination register dst (a canonical stack slot or, when a
// local.set was folded in, the local itself).
func (g *blockGen) emitBinOp(op opcode, a, b ref, dst int, at int) {
	name := g.name
	ov := g.takeOv()
	switch {
	case !a.isConst && !b.isConst:
		g.emit(aluRR(op, a.reg, b.reg, dst, name, at, ov))
	case !a.isConst && b.isConst:
		g.emit(aluRC(op, a.reg, b.c, dst, name, at, ov))
	case a.isConst && !b.isConst && commutes(op):
		g.emit(aluRC(op, b.reg, a.c, dst, name, at, ov))
	default:
		// const OP reg for a non-commutative op: compares flip; the rest
		// were materialized by the caller, so this arm only sees reg on
		// the left.
		if sw, ok := swapCmp(op); ok && a.isConst && !b.isConst {
			g.emit(aluRC(sw, b.reg, a.c, dst, name, at, ov))
			return
		}
		g.emit(aluRR(op, a.reg, b.reg, dst, name, at, ov))
	}
}

// translateBlock translates code[start:end) (one basic block) into
// tf.ops. Returns false when the block defeats symbolic translation and
// the caller should fall back to per-instruction emission.
func (g *blockGen) translateBlock(start, end int) bool {
	f, tf, ir := g.f, g.tf, g.ir
	nl := g.nl
	name := g.name
	g.factories = g.factories[:0]
	g.pending = g.pending[:0]

	if ir.depth[start] < 0 {
		// The whole block is statically unreachable; guard defensively.
		for pc := start; pc < end; pc++ {
			at := pc
			tf.ops[pc] = func(m *thState) int { return m.failAt(name, at, ErrUnreachable) }
		}
		return true
	}
	d0 := int(ir.depth[start])
	g.sym = g.sym[:0]
	for i := 0; i < d0; i++ {
		g.sym = append(g.sym, symVal{kind: symCanon})
	}

	exit := thDone
	terminated := false
	for pc := start; pc < end && !terminated; pc++ {
		in := f.code[pc]
		at := pc
		if ir.depth[pc] < 0 {
			// Statically unreachable tail (after a terminator in the block).
			break
		}
		d := int(ir.depth[pc])
		if len(g.sym) != d {
			return false // depth bookkeeping disagrees; use the safe path
		}
		if ir.under[pc] {
			if in.op == opCall {
				g.emit(func(int) thOp {
					return func(m *thState) int {
						if m.depth >= maxCallDepth {
							return m.failAt(name, at, ErrStackOverflow)
						}
						return m.failAt(name, at, ErrStackUnderflow)
					}
				})
			} else {
				g.emit(func(int) thOp {
					return func(m *thState) int { return m.failAt(name, at, ErrStackUnderflow) }
				})
			}
			terminated = true
			break
		}

		switch in.op {
		case opNop:
			// No effect in register form.
		case opPop:
			g.sym = g.sym[:d-1]
		case opPush:
			g.pending = append(g.pending, ovSite{pc: at, lim: maxValueStack - d})
			g.sym = append(g.sym, symVal{kind: symConst, c: in.arg})
		case opPushPair:
			g.pending = append(g.pending, ovSite{pc: at, lim: maxValueStack - d - 1})
			g.sym = append(g.sym, symVal{kind: symConst, c: in.arg >> 32},
				symVal{kind: symConst, c: in.arg & 0xffffffff})
		case opLocalGet:
			g.pending = append(g.pending, ovSite{pc: at, lim: maxValueStack - d})
			g.sym = append(g.sym, symVal{kind: symLocal, local: int(in.arg)})
		case opDup:
			top := g.sym[d-1]
			if top.kind != symCanon {
				g.pending = append(g.pending, ovSite{pc: at, lim: maxValueStack - d})
				g.sym = append(g.sym, top)
				break
			}
			src, dst := nl+d-1, nl+d
			lim := maxValueStack - d
			g.emit(func(next int) thOp {
				return func(m *thState) int {
					if m.height >= lim {
						return m.failAt(name, at, ErrStackOverflow)
					}
					rf := m.inst.regFile
					rf[m.fp+dst] = rf[m.fp+src]
					return next
				}
			})
			g.sym = append(g.sym, symVal{kind: symCanon})
		case opSwap:
			a, b := g.sym[d-2], g.sym[d-1]
			if a.kind != symCanon && b.kind != symCanon {
				g.sym[d-2], g.sym[d-1] = b, a
				break
			}
			g.materializeFrom(0)
			x := nl + d - 2
			g.emit(func(next int) thOp {
				return func(m *thState) int {
					rf := m.inst.regFile
					rf[m.fp+x], rf[m.fp+x+1] = rf[m.fp+x+1], rf[m.fp+x]
					return next
				}
			})

		case opLocalSet:
			y := int(in.arg)
			e := g.sym[d-1]
			g.sym = g.sym[:d-1]
			g.materializeLocalRefs(y, len(g.sym))
			switch e.kind {
			case symConst:
				c := e.c
				g.emit(func(next int) thOp {
					return func(m *thState) int {
						m.inst.regFile[m.fp+y] = c
						return next
					}
				})
			case symLocal:
				if e.local == y {
					break // x -> x, no-op
				}
				src := e.local
				g.emit(func(next int) thOp {
					return func(m *thState) int {
						rf := m.inst.regFile
						rf[m.fp+y] = rf[m.fp+src]
						return next
					}
				})
			default:
				src := nl + d - 1
				g.emit(func(next int) thOp {
					return func(m *thState) int {
						rf := m.inst.regFile
						rf[m.fp+y] = rf[m.fp+src]
						return next
					}
				})
			}
		case opLocalTee:
			y := int(in.arg)
			e := g.sym[d-1]
			if e.kind == symLocal && e.local == y {
				break // the local already holds this value
			}
			// Materialize other references to y; the top entry keeps its
			// descriptor (its value is unchanged by the tee).
			g.materializeLocalRefs(y, d-1)
			switch e.kind {
			case symConst:
				c := e.c
				g.emit(func(next int) thOp {
					return func(m *thState) int {
						m.inst.regFile[m.fp+y] = c
						return next
					}
				})
			case symLocal:
				src := e.local
				g.emit(func(next int) thOp {
					return func(m *thState) int {
						rf := m.inst.regFile
						rf[m.fp+y] = rf[m.fp+src]
						return next
					}
				})
			default:
				src := nl + d - 1
				g.emit(func(next int) thOp {
					return func(m *thState) int {
						rf := m.inst.regFile
						rf[m.fp+y] = rf[m.fp+src]
						return next
					}
				})
			}
		case opLocalAddI:
			y := int(in.arg >> 32)
			k := int64(int32(in.arg & 0xffffffff))
			g.materializeLocalRefs(y, len(g.sym))
			g.emit(aluRC(opAdd, y, k, y, name, at, g.takeOv()))

		case opAdd, opSub, opMul, opDivS, opRemS, opAnd, opOr, opXor,
			opShl, opShrS, opShrU, opEq, opNe, opLtS, opGtS, opLeS, opGeS:
			a, b := g.refOf(d-2), g.refOf(d-1)
			// Constant folding (never for trapping div/rem).
			if a.isConst && b.isConst {
				if v, ok := foldBin(in.op, a.c, b.c); ok {
					g.sym = g.sym[:d-2]
					g.sym = append(g.sym, symVal{kind: symConst, c: v})
					break
				}
				a = g.regRef(d - 2)
			}
			if a.isConst && !commutes(in.op) {
				if _, ok := swapCmp(in.op); !ok {
					a = g.regRef(d - 2)
				}
			}
			// Compare-and-branch fusion: the branch ends this block. Only
			// the entries below the operands need canonical homes.
			if pc+2 == end && isCmpOp(in.op) {
				if br := f.code[pc+1]; br.op == opJz || br.op == opJnz {
					for i := 0; i < d-2; i++ {
						g.materialize(i)
					}
					cop := in.op
					if br.op == opJz {
						cop = negCmp(cop)
					}
					target := int(br.arg)
					g.sym = g.sym[:d-2]
					ov := g.takeOv()
					switch {
					case !a.isConst && !b.isConst:
						g.emit(cmpBranchRR(cop, a.reg, b.reg, target, ov))
					case !a.isConst && b.isConst:
						g.emit(cmpBranchRC(cop, a.reg, b.c, target, ov))
					default: // const OP reg: swap operands and the sense
						sw, _ := swapCmp(cop)
						g.emit(cmpBranchRC(sw, b.reg, a.c, target, ov))
					}
					exit = end
					terminated = true
					break
				}
			}
			dst := nl + d - 2
			skip := 0
			// Fold a local.set that immediately consumes the result: the
			// ALU closure writes the local directly. Entries below the
			// operands that alias the local must be copied out first; the
			// operands themselves may alias it (reads precede the write
			// inside the closure).
			if pc+1 < end && f.code[pc+1].op == opLocalSet {
				y := int(f.code[pc+1].arg)
				g.materializeLocalRefs(y, d-2)
				dst = y
				skip = 1
			}
			g.sym = g.sym[:d-2]
			g.emitBinOp(in.op, a, b, dst, at)
			if skip == 0 {
				g.sym = append(g.sym, symVal{kind: symCanon})
			}
			pc += skip

		case opEqz:
			a := g.refOf(d - 1)
			if a.isConst {
				g.sym = g.sym[:d-1]
				g.sym = append(g.sym, symVal{kind: symConst, c: b2i(a.c == 0)})
				break
			}
			// eqz-and-branch fusion: eqz;jnz == jump-if-zero, eqz;jz ==
			// jump-if-nonzero.
			if pc+2 == end {
				if br := f.code[pc+1]; br.op == opJz || br.op == opJnz {
					for i := 0; i < d-1; i++ {
						g.materialize(i)
					}
					target := int(br.arg)
					g.sym = g.sym[:d-1]
					cop := opEq // jnz sense: taken when value == 0
					if br.op == opJz {
						cop = opNe
					}
					g.emit(cmpBranchRC(cop, a.reg, 0, target, g.takeOv()))
					exit = end
					terminated = true
					break
				}
			}
			dst := nl + d - 1
			skip := 0
			if pc+1 < end && f.code[pc+1].op == opLocalSet {
				y := int(f.code[pc+1].arg)
				g.materializeLocalRefs(y, d-1)
				dst = y
				skip = 1
			}
			g.sym = g.sym[:d-1]
			g.emit(aluRC(opEq, a.reg, 0, dst, name, at, g.takeOv()))
			if skip == 0 {
				g.sym = append(g.sym, symVal{kind: symCanon})
			}
			pc += skip
		case opAddI:
			a := g.refOf(d - 1)
			k := in.arg
			if a.isConst {
				g.sym = g.sym[:d-1]
				g.sym = append(g.sym, symVal{kind: symConst, c: a.c + k})
				break
			}
			dst := nl + d - 1
			skip := 0
			if pc+1 < end && f.code[pc+1].op == opLocalSet {
				y := int(f.code[pc+1].arg)
				g.materializeLocalRefs(y, d-1)
				dst = y
				skip = 1
			}
			g.sym = g.sym[:d-1]
			g.emit(aluRC(opAdd, a.reg, k, dst, name, at, g.takeOv()))
			if skip == 0 {
				g.sym = append(g.sym, symVal{kind: symCanon})
			}
			pc += skip
		case opUnpackPtr:
			a := g.refOf(d - 1)
			if a.isConst {
				g.sym[d-1] = symVal{kind: symConst, c: int64(uint64(a.c) >> 32)}
				break
			}
			src, dst := a.reg, nl+d-1
			g.emit(func(next int) thOp {
				return func(m *thState) int {
					rf := m.inst.regFile
					rf[m.fp+dst] = int64(uint64(rf[m.fp+src]) >> 32)
					return next
				}
			})
			g.sym[d-1] = symVal{kind: symCanon}
		case opUnpackLen:
			a := g.refOf(d - 1)
			if a.isConst {
				g.sym[d-1] = symVal{kind: symConst, c: a.c & 0xffffffff}
				break
			}
			src, dst := a.reg, nl+d-1
			g.emit(func(next int) thOp {
				return func(m *thState) int {
					rf := m.inst.regFile
					rf[m.fp+dst] = rf[m.fp+src] & 0xffffffff
					return next
				}
			})
			g.sym[d-1] = symVal{kind: symCanon}

		case opLoad8U, opLoad64:
			a := g.regRef(d - 1)
			wide := in.op == opLoad64
			dst := nl + d - 1
			skip := 0
			if pc+1 < end && f.code[pc+1].op == opLocalSet {
				y := int(f.code[pc+1].arg)
				g.materializeLocalRefs(y, d-1)
				dst = y
				skip = 1
			}
			src := a.reg
			ov := g.takeOv()
			lim := ov.minLim
			if wide {
				g.emit(func(next int) thOp {
					return func(m *thState) int {
						if m.height >= lim {
							return ovFail(m, &ov)
						}
						inst := m.inst
						rf := inst.regFile
						addr := rf[m.fp+src]
						if addr < 0 || addr+8 > int64(len(inst.mem)) {
							return m.failAt(name, at, ErrMemOutOfBounds)
						}
						rf[m.fp+dst] = int64(binary.LittleEndian.Uint64(inst.mem[addr:]))
						return next
					}
				})
			} else {
				g.emit(func(next int) thOp {
					return func(m *thState) int {
						if m.height >= lim {
							return ovFail(m, &ov)
						}
						inst := m.inst
						rf := inst.regFile
						addr := rf[m.fp+src]
						if addr < 0 || addr >= int64(len(inst.mem)) {
							return m.failAt(name, at, ErrMemOutOfBounds)
						}
						rf[m.fp+dst] = int64(inst.mem[addr])
						return next
					}
				})
			}
			g.sym = g.sym[:d-1]
			if skip == 0 {
				g.sym = append(g.sym, symVal{kind: symCanon})
			}
			pc += skip
		case opStore8, opStore64:
			addr := g.regRef(d - 2)
			val := g.refOf(d - 1)
			wide := in.op == opStore64
			g.sym = g.sym[:d-2]
			aReg := addr.reg
			ov := g.takeOv()
			lim := ov.minLim
			switch {
			case !val.isConst && wide:
				vReg := val.reg
				g.emit(func(next int) thOp {
					return func(m *thState) int {
						if m.height >= lim {
							return ovFail(m, &ov)
						}
						inst := m.inst
						rf := inst.regFile
						a := rf[m.fp+aReg]
						if a < 0 || a+8 > int64(len(inst.mem)) {
							return m.failAt(name, at, ErrMemOutOfBounds)
						}
						binary.LittleEndian.PutUint64(inst.mem[a:], uint64(rf[m.fp+vReg]))
						inst.noteWrite(a + 8)
						return next
					}
				})
			case val.isConst && wide:
				c := uint64(val.c)
				g.emit(func(next int) thOp {
					return func(m *thState) int {
						if m.height >= lim {
							return ovFail(m, &ov)
						}
						inst := m.inst
						a := inst.regFile[m.fp+aReg]
						if a < 0 || a+8 > int64(len(inst.mem)) {
							return m.failAt(name, at, ErrMemOutOfBounds)
						}
						binary.LittleEndian.PutUint64(inst.mem[a:], c)
						inst.noteWrite(a + 8)
						return next
					}
				})
			case !val.isConst:
				vReg := val.reg
				g.emit(func(next int) thOp {
					return func(m *thState) int {
						if m.height >= lim {
							return ovFail(m, &ov)
						}
						inst := m.inst
						rf := inst.regFile
						a := rf[m.fp+aReg]
						if a < 0 || a >= int64(len(inst.mem)) {
							return m.failAt(name, at, ErrMemOutOfBounds)
						}
						inst.mem[a] = byte(rf[m.fp+vReg])
						inst.noteWrite(a + 1)
						return next
					}
				})
			default:
				c := byte(val.c)
				g.emit(func(next int) thOp {
					return func(m *thState) int {
						if m.height >= lim {
							return ovFail(m, &ov)
						}
						inst := m.inst
						a := inst.regFile[m.fp+aReg]
						if a < 0 || a >= int64(len(inst.mem)) {
							return m.failAt(name, at, ErrMemOutOfBounds)
						}
						inst.mem[a] = c
						inst.noteWrite(a + 1)
						return next
					}
				})
			}

		case opMemSize:
			dst := nl + d
			lim := maxValueStack - d
			g.emit(func(next int) thOp {
				return func(m *thState) int {
					if m.height >= lim {
						return m.failAt(name, at, ErrStackOverflow)
					}
					inst := m.inst
					inst.regFile[m.fp+dst] = int64(len(inst.mem))
					return next
				}
			})
			g.sym = append(g.sym, symVal{kind: symCanon})
		case opMemGrow:
			a := g.regRef(d - 1)
			src, dst := a.reg, nl+d-1
			g.emit(func(next int) thOp {
				return func(m *thState) int {
					inst := m.inst
					rf := inst.regFile
					old := int64(len(inst.mem))
					if err := inst.grow(rf[m.fp+src]); err != nil {
						return m.failAt(name, at, err)
					}
					rf[m.fp+dst] = old
					return next
				}
			})
			g.sym = g.sym[:d-1]
			g.sym = append(g.sym, symVal{kind: symCanon})

		case opJmp:
			// The jump itself is free: it becomes the previous closure's
			// exit ip (or the block's single landing closure when empty).
			g.materializeFrom(0)
			g.flushPending()
			exit = int(in.arg)
			terminated = true
		case opJz, opJnz:
			for i := 0; i < d-1; i++ {
				g.materialize(i)
			}
			c := g.refOf(d - 1)
			g.sym = g.sym[:d-1]
			target := int(in.arg)
			if c.isConst {
				// Statically decided branch: fold into the exit ip.
				g.flushPending()
				if (c.c == 0) == (in.op == opJz) {
					exit = target
				} else {
					exit = end
				}
				terminated = true
				break
			}
			cop := opNe // jnz sense: taken when != 0
			if in.op == opJz {
				cop = opEq
			}
			g.emit(cmpBranchRC(cop, c.reg, 0, target, g.takeOv()))
			exit = end
			terminated = true
		case opRet:
			// All nret values must sit in their canonical slots for the
			// caller; the return itself is the previous closure's thDone.
			g.materializeFrom(0)
			g.flushPending()
			exit = thDone
			terminated = true
		case opHalt:
			g.emit(func(int) thOp {
				return func(m *thState) int { return m.failAt(name, at, ErrHalted) }
			})
			terminated = true
		case opUnreachable:
			g.emit(func(int) thOp {
				return func(m *thState) int { return m.failAt(name, at, ErrUnreachable) }
			})
			terminated = true

		case opCall:
			callee := g.tm.funcs[in.arg]
			np := callee.numParams
			g.materializeFrom(d - np)
			cnl := callee.numLocals
			cneed := callee.need
			cret := callee.nret
			frameOff := nl + d - np
			hDelta := d - np
			g.emit(func(next int) thOp {
				return func(m *thState) int {
					if m.depth >= maxCallDepth {
						return m.failAt(name, at, ErrStackOverflow)
					}
					inst := m.inst
					cfp := m.fp + frameOff
					if want := cfp + cneed; want > len(inst.regFile) {
						inst.growRegs(want)
					}
					rf := inst.regFile
					for i := cfp + np; i < cfp+cnl; i++ {
						rf[i] = 0
					}
					sfp, sh := m.fp, m.height
					m.fp = cfp
					m.height += hDelta
					m.depth++
					callee.run(m)
					m.fp, m.height = sfp, sh
					m.depth--
					if m.trap != nil {
						return thDone
					}
					if cret > 0 {
						rf = inst.regFile
						copy(rf[cfp:cfp+cret], rf[cfp+cnl:cfp+cnl+cret])
					}
					return next
				}
			})
			g.sym = g.sym[:d-np]
			for i := 0; i < cret; i++ {
				g.sym = append(g.sym, symVal{kind: symCanon})
			}
		case opHostCall:
			hidx := int(in.arg)
			sig := g.sigs[hidx]
			na := sig.nargs
			hasRet := sig.hasRet
			g.materializeFrom(d - na)
			abase := nl + d - na
			retLim := maxValueStack - (d - na)
			g.emit(func(next int) thOp {
				return func(m *thState) int {
					inst := m.inst
					hf := inst.hosts[hidx]
					if m.metered {
						if inst.fuel < hf.Cost {
							return m.failAt(name, at, ErrOutOfFuel)
						}
						inst.fuel -= hf.Cost
						inst.used += hf.Cost
					}
					m.hargs = append(m.hargs[:0], inst.regFile[m.fp+abase:m.fp+abase+na]...)
					ret, err := hf.Fn(inst, m.hargs)
					if err != nil {
						return m.failAt(name, at, &HostError{Err: err})
					}
					if hasRet {
						if m.height >= retLim {
							return m.failAt(name, at, ErrStackOverflow)
						}
						inst.regFile[m.fp+abase] = ret
					}
					return next
				}
			})
			g.sym = g.sym[:d-na]
			if hasRet {
				g.sym = append(g.sym, symVal{kind: symCanon})
			}

		default:
			return false // unknown op: let the per-instruction path handle it
		}
	}

	if !terminated {
		// Fall through into the next block: successors assume canonical
		// registers.
		g.materializeFrom(0)
		g.flushPending()
		exit = end
	}

	cnt := len(g.factories)
	if cnt == 0 {
		// Every block needs at least one closure to land on (it is a
		// possible branch target and fuel-charge site).
		e := exit
		g.factories = append(g.factories, func(int) thOp {
			return func(m *thState) int { return e }
		})
		cnt = 1
	}
	// Only the leader is ever a dispatch target (every branch target is a
	// leader), so the whole block collapses into one trampoline step: the
	// straight-line closures run in sequence — each returns its successor
	// pc or thDone on trap — and the terminator picks the exit ip.
	ops := make([]thOp, cnt)
	for i, fac := range g.factories {
		next := start + i + 1
		if i == cnt-1 {
			next = exit
		}
		ops[i] = fac(next)
	}
	if cnt == 1 {
		tf.ops[start] = ops[0]
	} else {
		seq := ops[:cnt-1]
		last := ops[cnt-1]
		tf.ops[start] = func(m *thState) int {
			for _, op := range seq {
				if op(m) < 0 {
					return thDone
				}
			}
			return last(m)
		}
	}
	for pc := start + 1; pc < end; pc++ {
		at := pc
		tf.ops[pc] = func(m *thState) int { return m.failAt(name, at, ErrUnreachable) }
	}
	return true
}

func isCmpOp(op opcode) bool {
	switch op {
	case opEq, opNe, opLtS, opGtS, opLeS, opGeS:
		return true
	}
	return false
}

// emitFuncSym translates one function block by block. Returns false when
// any block falls back, in which case the caller re-emits the whole
// function with the per-instruction path.
func emitFuncSym(m *Module, fi int, ir *funcIR, tm *thModule, sigs []hostSig) bool {
	f := &m.Funcs[fi]
	tf := tm.funcs[fi]
	g := &blockGen{
		f:    f,
		tf:   tf,
		ir:   ir,
		tm:   tm,
		sigs: sigs,
		name: f.Name,
		nl:   tf.numLocals,
	}
	// Block boundaries match computeBlockFuel's leader set exactly —
	// blockFuel itself cannot serve, because the final block of a
	// function that does not end in a branch carries zero fuel.
	n := len(f.code)
	leader := make([]bool, n+1)
	leader[0] = true
	for pc, in := range f.code {
		if isBranch[in.op] {
			leader[in.arg] = true
			leader[pc+1] = true
		}
	}
	for start := 0; start < n; {
		end := start + 1
		for end < n && !leader[end] {
			end++
		}
		if !g.translateBlock(start, end) {
			return false
		}
		start = end
	}
	return true
}
