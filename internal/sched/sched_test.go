package sched

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestWriteExclusion(t *testing.T) {
	tbl := NewTable()
	var inCritical atomic.Int32
	var maxSeen atomic.Int32
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			release, err := tbl.Acquire(1, Write)
			if err != nil {
				t.Errorf("acquire: %v", err)
				return
			}
			n := inCritical.Add(1)
			for {
				cur := maxSeen.Load()
				if n <= cur || maxSeen.CompareAndSwap(cur, n) {
					break
				}
			}
			time.Sleep(time.Millisecond)
			inCritical.Add(-1)
			release()
		}()
	}
	wg.Wait()
	if maxSeen.Load() != 1 {
		t.Fatalf("%d writers in the critical section at once", maxSeen.Load())
	}
	if tbl.Len() != 0 {
		t.Fatalf("lock table leaked %d entries", tbl.Len())
	}
}

func TestReadersShare(t *testing.T) {
	tbl := NewTable()
	var concurrent atomic.Int32
	var peak atomic.Int32
	var wg sync.WaitGroup
	start := make(chan struct{})
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			release, err := tbl.Acquire(1, Read)
			if err != nil {
				t.Errorf("acquire: %v", err)
				return
			}
			n := concurrent.Add(1)
			for {
				cur := peak.Load()
				if n <= cur || peak.CompareAndSwap(cur, n) {
					break
				}
			}
			time.Sleep(5 * time.Millisecond)
			concurrent.Add(-1)
			release()
		}()
	}
	close(start)
	wg.Wait()
	if peak.Load() < 2 {
		t.Fatalf("readers never overlapped (peak %d)", peak.Load())
	}
}

func TestWriterBlocksReaders(t *testing.T) {
	tbl := NewTable()
	release, err := tbl.Acquire(1, Write)
	if err != nil {
		t.Fatal(err)
	}
	acquired := make(chan struct{})
	go func() {
		r, err := tbl.Acquire(1, Read)
		if err != nil {
			t.Errorf("read acquire: %v", err)
			close(acquired)
			return
		}
		close(acquired)
		r()
	}()
	select {
	case <-acquired:
		t.Fatal("reader admitted while writer held the object")
	case <-time.After(30 * time.Millisecond):
	}
	release()
	select {
	case <-acquired:
	case <-time.After(time.Second):
		t.Fatal("reader never admitted after writer release")
	}
}

func TestFIFOWriterNotStarved(t *testing.T) {
	tbl := NewTable()
	r1, err := tbl.Acquire(1, Read)
	if err != nil {
		t.Fatal(err)
	}
	// A writer queues behind the reader...
	writerAdmitted := make(chan struct{})
	go func() {
		w, err := tbl.Acquire(1, Write)
		if err != nil {
			t.Errorf("write acquire: %v", err)
			close(writerAdmitted)
			return
		}
		close(writerAdmitted)
		w()
	}()
	time.Sleep(10 * time.Millisecond)
	// ...and a second reader arrives: FIFO means it must NOT jump the
	// queued writer.
	reader2Admitted := make(chan struct{})
	go func() {
		r, err := tbl.Acquire(1, Read)
		if err != nil {
			t.Errorf("read acquire: %v", err)
			close(reader2Admitted)
			return
		}
		close(reader2Admitted)
		r()
	}()
	select {
	case <-reader2Admitted:
		t.Fatal("late reader jumped the queued writer")
	case <-time.After(30 * time.Millisecond):
	}
	r1()
	<-writerAdmitted
	<-reader2Admitted
}

func TestTimeout(t *testing.T) {
	tbl := NewTable()
	tbl.Timeout = 50 * time.Millisecond
	release, err := tbl.Acquire(1, Write)
	if err != nil {
		t.Fatal(err)
	}
	defer release()
	start := time.Now()
	if _, err := tbl.Acquire(1, Write); err != ErrTimeout {
		t.Fatalf("err = %v, want ErrTimeout", err)
	}
	if d := time.Since(start); d < 40*time.Millisecond || d > 2*time.Second {
		t.Fatalf("timeout after %v", d)
	}
}

func TestDifferentObjectsIndependent(t *testing.T) {
	tbl := NewTable()
	r1, err := tbl.Acquire(1, Write)
	if err != nil {
		t.Fatal(err)
	}
	defer r1()
	done := make(chan struct{})
	go func() {
		r2, err := tbl.Acquire(2, Write)
		if err != nil {
			t.Errorf("acquire 2: %v", err)
		} else {
			r2()
		}
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(time.Second):
		t.Fatal("independent object blocked")
	}
}

func TestStressManyObjects(t *testing.T) {
	tbl := NewTable()
	var wg sync.WaitGroup
	counters := make([]int64, 16)
	for w := 0; w < 32; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				obj := uint64((w + i) % len(counters))
				mode := Write
				if i%3 == 0 {
					mode = Read
				}
				release, err := tbl.Acquire(obj, mode)
				if err != nil {
					t.Errorf("acquire: %v", err)
					return
				}
				if mode == Write {
					counters[obj]++ // data race iff exclusion broken
				} else {
					_ = counters[obj]
				}
				release()
			}
		}(w)
	}
	wg.Wait()
	if tbl.Len() != 0 {
		t.Fatalf("lock table leaked %d entries", tbl.Len())
	}
}
