package sched

import (
	"sync/atomic"
	"testing"
)

// BenchmarkAcquireDistinctObjects measures uncontended-path throughput when
// every goroutine works on its own object: the case sharding exists for.
// With one global mutex every acquisition serializes; with 64 shards they
// mostly proceed in parallel.
func BenchmarkAcquireDistinctObjects(b *testing.B) {
	t := NewTable()
	var next atomic.Uint64
	b.RunParallel(func(pb *testing.PB) {
		// One object per goroutine, spread across shards.
		id := next.Add(1) * 7919
		for pb.Next() {
			release, err := t.Acquire(id, Write)
			if err != nil {
				b.Error(err)
				return
			}
			release()
		}
	})
}

// BenchmarkAcquireSharedObject measures the worst case — all goroutines
// fight over one object — to confirm sharding does not regress the
// single-object path (all traffic lands on one shard, as before).
func BenchmarkAcquireSharedObject(b *testing.B) {
	t := NewTable()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			release, err := t.Acquire(42, Write)
			if err != nil {
				b.Error(err)
				return
			}
			release()
		}
	})
}

// BenchmarkAcquireReadShared measures shared-mode admissions on one hot
// object (replica reads of a popular object).
func BenchmarkAcquireReadShared(b *testing.B) {
	t := NewTable()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			release, err := t.Acquire(42, Read)
			if err != nil {
				b.Error(err)
				return
			}
			release()
		}
	})
}
