// Package sched implements LambdaStore's combined function scheduler and
// concurrency control (paper §4.2): because a method may only touch its own
// object's data, the node never schedules two mutating invocations of the
// same object at once — objects are "the lowest form of concurrency" and
// the application developer chooses lock granularity by choosing object
// boundaries.
//
// The lock table provides per-object reader/writer admission with FIFO
// fairness and timeouts (the timeout converts cross-object invocation
// deadlocks, which the model permits applications to write, into errors
// instead of hangs).
package sched

import (
	"errors"
	"sync"
	"time"
)

// ErrTimeout is returned when an invocation could not be admitted before
// the deadline, e.g. due to a lock cycle between mutually invoking objects.
var ErrTimeout = errors.New("sched: lock acquisition timed out")

// Mode distinguishes read-only from mutating invocations.
type Mode int

const (
	// Read admissions share the object with other reads.
	Read Mode = iota
	// Write admissions are exclusive.
	Write
)

// waiter is one queued acquisition.
type waiter struct {
	mode  Mode
	ready chan struct{}
}

// objLock is a FIFO reader/writer lock for a single object.
type objLock struct {
	readers int
	writer  bool
	queue   []*waiter
	// refs counts holders plus waiters so the table can garbage-collect
	// idle entries.
	refs int
}

// numShards is the lock-table fan-out. Admissions for different objects
// rarely contend: they only share a shard's mutex with the other objects
// that hash to it, never a global one.
const numShards = 64

// tableShard is one independently locked slice of the table.
type tableShard struct {
	mu    sync.Mutex
	locks map[uint64]*objLock
}

// Table is a sharded lock table keyed by object ID: object state lives in
// one of numShards independently mutexed maps, so concurrent admissions for
// different objects proceed in parallel.
type Table struct {
	shards [numShards]tableShard

	// Timeout bounds each acquisition; zero means 10s.
	Timeout time.Duration
}

// NewTable returns an empty lock table.
func NewTable() *Table {
	t := &Table{}
	for i := range t.shards {
		t.shards[i].locks = make(map[uint64]*objLock)
	}
	return t
}

// shard maps an object ID to its shard. Object IDs are often sequential, so
// mix the bits (Fibonacci hashing) before taking the top bits.
func (t *Table) shard(id uint64) *tableShard {
	return &t.shards[(id*0x9E3779B97F4A7C15)>>(64-6)]
}

// timeout returns the effective acquisition deadline.
func (t *Table) timeout() time.Duration {
	if t.Timeout > 0 {
		return t.Timeout
	}
	return 10 * time.Second
}

// Acquire admits an invocation on object id in the given mode, blocking
// until admitted or timed out. On success the returned release function
// must be called exactly once.
func (t *Table) Acquire(id uint64, mode Mode) (release func(), err error) {
	s := t.shard(id)
	s.mu.Lock()
	l, ok := s.locks[id]
	if !ok {
		l = &objLock{}
		s.locks[id] = l
	}
	l.refs++

	// Fast path: grant immediately if compatible and nobody is queued
	// (queue check preserves FIFO fairness — a waiting writer blocks new
	// readers).
	if len(l.queue) == 0 && grantable(l, mode) {
		grant(l, mode)
		s.mu.Unlock()
		return func() { s.release(id, mode) }, nil
	}

	w := &waiter{mode: mode, ready: make(chan struct{})}
	l.queue = append(l.queue, w)
	s.mu.Unlock()

	timer := time.NewTimer(t.timeout())
	defer timer.Stop()
	select {
	case <-w.ready:
		return func() { s.release(id, mode) }, nil
	case <-timer.C:
		s.mu.Lock()
		// Re-check: the grant may have raced the timeout.
		select {
		case <-w.ready:
			s.mu.Unlock()
			return func() { s.release(id, mode) }, nil
		default:
		}
		for i, q := range l.queue {
			if q == w {
				l.queue = append(l.queue[:i:i], l.queue[i+1:]...)
				break
			}
		}
		l.refs--
		s.maybeDrop(id, l)
		s.mu.Unlock()
		return nil, ErrTimeout
	}
}

// grantable reports whether mode can be admitted now. Caller holds the
// shard mutex.
func grantable(l *objLock, mode Mode) bool {
	if l.writer {
		return false
	}
	if mode == Write {
		return l.readers == 0
	}
	return true
}

// grant records an admission. Caller holds the shard mutex.
func grant(l *objLock, mode Mode) {
	if mode == Write {
		l.writer = true
	} else {
		l.readers++
	}
}

// release ends an admission and wakes compatible queued waiters in order.
func (s *tableShard) release(id uint64, mode Mode) {
	s.mu.Lock()
	defer s.mu.Unlock()
	l := s.locks[id]
	if l == nil {
		return
	}
	if mode == Write {
		l.writer = false
	} else {
		l.readers--
	}
	l.refs--

	// Admit the longest-waiting compatible prefix: either one writer, or a
	// run of readers.
	for len(l.queue) > 0 {
		head := l.queue[0]
		if !grantable(l, head.mode) {
			break
		}
		grant(l, head.mode)
		l.queue = l.queue[1:]
		close(head.ready)
		if head.mode == Write {
			break
		}
	}
	s.maybeDrop(id, l)
}

// maybeDrop garbage-collects an idle lock entry. Caller holds the shard
// mutex.
func (s *tableShard) maybeDrop(id uint64, l *objLock) {
	if l.refs == 0 && !l.writer && l.readers == 0 && len(l.queue) == 0 {
		delete(s.locks, id)
	}
}

// Len returns the number of objects with active or queued admissions
// (for tests and stats).
func (t *Table) Len() int {
	n := 0
	for i := range t.shards {
		s := &t.shards[i]
		s.mu.Lock()
		n += len(s.locks)
		s.mu.Unlock()
	}
	return n
}
