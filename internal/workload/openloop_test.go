package workload

import (
	"errors"
	"sync/atomic"
	"testing"
	"time"
)

func TestPoissonDeterministic(t *testing.T) {
	a := NewPoisson(7, 1000)
	b := NewPoisson(7, 1000)
	for i := 0; i < 1000; i++ {
		if ga, gb := a.Next(), b.Next(); ga != gb {
			t.Fatalf("gap %d diverged under the same seed: %v vs %v", i, ga, gb)
		}
	}
	c := NewPoisson(8, 1000)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Next() == c.Next() {
			same++
		}
	}
	if same == 100 {
		t.Fatalf("different seeds produced an identical schedule")
	}
}

func TestPoissonMeanGap(t *testing.T) {
	const rate = 500.0
	gen := NewPoisson(42, rate)
	var sum time.Duration
	const n = 200000
	for i := 0; i < n; i++ {
		sum += gen.Next()
	}
	mean := sum.Seconds() / n
	want := 1 / rate
	if mean < 0.95*want || mean > 1.05*want {
		t.Fatalf("mean gap %.6fs, want ~%.6fs (rate %v)", mean, want, rate)
	}
}

func TestRunOpenLoopDeterministicSchedule(t *testing.T) {
	cfg := DefaultConfig(16)
	run := func() OpenLoopResult {
		var ops atomic.Uint64
		inv := InvokerFunc(func(object uint64, method string, args [][]byte) ([]byte, error) {
			ops.Add(1)
			return nil, nil
		})
		res, err := RunOpenLoop(cfg, Post, inv, OpenLoopOptions{
			Rate: 2000, Duration: 250 * time.Millisecond})
		if err != nil {
			t.Fatalf("RunOpenLoop: %v", err)
		}
		if res.Issued != ops.Load() {
			t.Fatalf("issued %d but invoker saw %d", res.Issued, ops.Load())
		}
		return res
	}
	r1, r2 := run(), run()
	// Same seed, same rate, same duration: the arrival schedule is
	// identical, so the issue count must be too.
	if r1.Issued != r2.Issued {
		t.Fatalf("issue counts diverged across identical runs: %d vs %d", r1.Issued, r2.Issued)
	}
	if r1.Issued == 0 || r1.Completed != r1.Issued {
		t.Fatalf("issued=%d completed=%d, want all completed", r1.Issued, r1.Completed)
	}
	if r1.Latency.Count == 0 {
		t.Fatalf("no latency samples recorded")
	}
}

func TestRunOpenLoopShedClassification(t *testing.T) {
	cfg := DefaultConfig(16)
	shedErr := errors.New("overloaded: queue full")
	var n atomic.Uint64
	inv := InvokerFunc(func(object uint64, method string, args [][]byte) ([]byte, error) {
		switch n.Add(1) % 3 {
		case 0:
			return nil, shedErr
		case 1:
			return nil, errors.New("boom")
		default:
			return nil, nil
		}
	})
	res, err := RunOpenLoop(cfg, GetTimeline, inv, OpenLoopOptions{
		Rate: 2000, Duration: 200 * time.Millisecond,
		IsShed: func(err error) bool { return errors.Is(err, shedErr) },
	})
	if err != nil {
		t.Fatalf("RunOpenLoop: %v", err)
	}
	if res.Shed == 0 || res.Errors == 0 || res.Completed == 0 {
		t.Fatalf("expected a mix of outcomes, got shed=%d errs=%d done=%d",
			res.Shed, res.Errors, res.Completed)
	}
	if res.Shed+res.Errors+res.Completed != res.Issued {
		t.Fatalf("outcomes %d+%d+%d do not account for %d issued",
			res.Shed, res.Errors, res.Completed, res.Issued)
	}
	// Shed requests stay out of the latency distribution. (The count can
	// exceed Completed: coordinated-omission correction backfills
	// synthetic samples for late arrivals.)
	if res.Latency.Count < res.Completed {
		t.Fatalf("latency count %d < completed %d", res.Latency.Count, res.Completed)
	}
	if res.ShedRate() <= 0 || res.ShedRate() >= 1 {
		t.Fatalf("shed rate %.3f out of range", res.ShedRate())
	}
}
