package workload

import (
	"fmt"
	"sync"
	"testing"

	"lambdastore/internal/core"
)

// fakeBackend records invocations, standing in for a deployment.
type fakeBackend struct {
	mu      sync.Mutex
	created map[uint64]bool
	calls   map[string]int
	byObj   map[uint64]int
	fail    func(method string) error
}

func newFakeBackend() *fakeBackend {
	return &fakeBackend{
		created: make(map[uint64]bool),
		calls:   make(map[string]int),
		byObj:   make(map[uint64]int),
	}
}

func (f *fakeBackend) create(id uint64) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.created[id] {
		return fmt.Errorf("duplicate create %d", id)
	}
	f.created[id] = true
	return nil
}

func (f *fakeBackend) Invoke(object uint64, method string, args [][]byte) ([]byte, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.fail != nil {
		if err := f.fail(method); err != nil {
			return nil, err
		}
	}
	f.calls[method]++
	f.byObj[object]++
	return nil, nil
}

func TestPopulateCreatesEveryAccountOnce(t *testing.T) {
	cfg := DefaultConfig(250)
	b := newFakeBackend()
	if err := Populate(cfg, b.create, b); err != nil {
		t.Fatal(err)
	}
	if len(b.created) != 250 {
		t.Fatalf("created %d accounts", len(b.created))
	}
	if b.calls["create_account"] != 250 {
		t.Fatalf("create_account calls = %d", b.calls["create_account"])
	}
	if b.calls["add_follower"] == 0 {
		t.Fatal("no follower edges created")
	}
	// IDs occupy [FirstID, FirstID+Accounts).
	for i := 0; i < cfg.Accounts; i++ {
		if !b.created[cfg.AccountID(i)] {
			t.Fatalf("account %d missing", i)
		}
	}
}

func TestPopulateDeterministic(t *testing.T) {
	cfg := DefaultConfig(100)
	b1, b2 := newFakeBackend(), newFakeBackend()
	if err := Populate(cfg, b1.create, b1); err != nil {
		t.Fatal(err)
	}
	if err := Populate(cfg, b2.create, b2); err != nil {
		t.Fatal(err)
	}
	if b1.calls["add_follower"] != b2.calls["add_follower"] {
		t.Fatalf("edge counts differ: %d vs %d", b1.calls["add_follower"], b2.calls["add_follower"])
	}
}

func TestPopulatePropagatesErrors(t *testing.T) {
	cfg := DefaultConfig(50)
	b := newFakeBackend()
	b.fail = func(method string) error {
		if method == "create_account" {
			return fmt.Errorf("boom")
		}
		return nil
	}
	if err := Populate(cfg, b.create, b); err == nil {
		t.Fatal("populate swallowed the error")
	}
}

func TestOpStreams(t *testing.T) {
	cfg := DefaultConfig(100)
	b := newFakeBackend()
	for _, wl := range Workloads {
		op, err := OpStream(cfg, wl, b, 0)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 20; i++ {
			if err := op(); err != nil {
				t.Fatalf("%s op: %v", wl, err)
			}
		}
	}
	if b.calls["create_post"] != 20 || b.calls["get_timeline"] != 20 || b.calls["add_follower"] != 20 {
		t.Fatalf("calls = %v", b.calls)
	}
	if _, err := OpStream(cfg, "Nope", b, 0); err == nil {
		t.Fatal("unknown workload accepted")
	}
}

func TestRunClosedLoopCompletesExactly(t *testing.T) {
	cfg := DefaultConfig(100)
	b := newFakeBackend()
	res, err := RunClosedLoop(cfg, Follow, b, 8, 500)
	if err != nil {
		t.Fatal(err)
	}
	if res.Ops != 500 || res.Errors != 0 {
		t.Fatalf("result %+v", res)
	}
	if res.Throughput <= 0 || res.Latency.Median <= 0 {
		t.Fatalf("metrics %+v", res)
	}
	if b.calls["add_follower"] != 500 {
		t.Fatalf("backend saw %d ops", b.calls["add_follower"])
	}
}

func TestRunClosedLoopAllFailing(t *testing.T) {
	cfg := DefaultConfig(10)
	b := newFakeBackend()
	b.fail = func(string) error { return fmt.Errorf("down") }
	res, err := RunClosedLoop(cfg, Follow, b, 4, 50)
	if err == nil {
		t.Fatalf("all-failing run reported success: %+v", res)
	}
}

func TestInvokerFunc(t *testing.T) {
	called := false
	inv := InvokerFunc(func(object uint64, method string, args [][]byte) ([]byte, error) {
		called = true
		return core.I64Bytes(1), nil
	})
	if _, err := inv.Invoke(1, "m", nil); err != nil || !called {
		t.Fatal("InvokerFunc broken")
	}
}

func TestResultString(t *testing.T) {
	r := Result{Workload: "Post", Ops: 10, Throughput: 123.4}
	if r.String() == "" {
		t.Fatal("empty render")
	}
}
