package workload

import (
	"fmt"
	"sync"
	"testing"

	"lambdastore/internal/core"
)

// fakeBackend records invocations, standing in for a deployment.
type fakeBackend struct {
	mu      sync.Mutex
	created map[uint64]bool
	calls   map[string]int
	byObj   map[uint64]int
	fail    func(method string) error
}

func newFakeBackend() *fakeBackend {
	return &fakeBackend{
		created: make(map[uint64]bool),
		calls:   make(map[string]int),
		byObj:   make(map[uint64]int),
	}
}

func (f *fakeBackend) create(id uint64) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.created[id] {
		return fmt.Errorf("duplicate create %d", id)
	}
	f.created[id] = true
	return nil
}

func (f *fakeBackend) Invoke(object uint64, method string, args [][]byte) ([]byte, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.fail != nil {
		if err := f.fail(method); err != nil {
			return nil, err
		}
	}
	f.calls[method]++
	f.byObj[object]++
	return nil, nil
}

func TestPopulateCreatesEveryAccountOnce(t *testing.T) {
	cfg := DefaultConfig(250)
	b := newFakeBackend()
	if err := Populate(cfg, b.create, b); err != nil {
		t.Fatal(err)
	}
	if len(b.created) != 250 {
		t.Fatalf("created %d accounts", len(b.created))
	}
	if b.calls["create_account"] != 250 {
		t.Fatalf("create_account calls = %d", b.calls["create_account"])
	}
	if b.calls["add_follower"] == 0 {
		t.Fatal("no follower edges created")
	}
	// IDs occupy [FirstID, FirstID+Accounts).
	for i := 0; i < cfg.Accounts; i++ {
		if !b.created[cfg.AccountID(i)] {
			t.Fatalf("account %d missing", i)
		}
	}
}

func TestPopulateDeterministic(t *testing.T) {
	cfg := DefaultConfig(100)
	b1, b2 := newFakeBackend(), newFakeBackend()
	if err := Populate(cfg, b1.create, b1); err != nil {
		t.Fatal(err)
	}
	if err := Populate(cfg, b2.create, b2); err != nil {
		t.Fatal(err)
	}
	if b1.calls["add_follower"] != b2.calls["add_follower"] {
		t.Fatalf("edge counts differ: %d vs %d", b1.calls["add_follower"], b2.calls["add_follower"])
	}
}

func TestPopulatePropagatesErrors(t *testing.T) {
	cfg := DefaultConfig(50)
	b := newFakeBackend()
	b.fail = func(method string) error {
		if method == "create_account" {
			return fmt.Errorf("boom")
		}
		return nil
	}
	if err := Populate(cfg, b.create, b); err == nil {
		t.Fatal("populate swallowed the error")
	}
}

func TestOpStreams(t *testing.T) {
	cfg := DefaultConfig(100)
	b := newFakeBackend()
	for _, wl := range Workloads {
		op, err := OpStream(cfg, wl, b, 0)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 20; i++ {
			if err := op(); err != nil {
				t.Fatalf("%s op: %v", wl, err)
			}
		}
	}
	if b.calls["create_post"] != 20 || b.calls["get_timeline"] != 20 || b.calls["add_follower"] != 20 {
		t.Fatalf("calls = %v", b.calls)
	}
	if _, err := OpStream(cfg, "Nope", b, 0); err == nil {
		t.Fatal("unknown workload accepted")
	}
}

func TestRunClosedLoopCompletesExactly(t *testing.T) {
	cfg := DefaultConfig(100)
	b := newFakeBackend()
	res, err := RunClosedLoop(cfg, Follow, b, 8, 500)
	if err != nil {
		t.Fatal(err)
	}
	if res.Ops != 500 || res.Errors != 0 {
		t.Fatalf("result %+v", res)
	}
	if res.Throughput <= 0 || res.Latency.Median <= 0 {
		t.Fatalf("metrics %+v", res)
	}
	if b.calls["add_follower"] != 500 {
		t.Fatalf("backend saw %d ops", b.calls["add_follower"])
	}
}

func TestRunClosedLoopAllFailing(t *testing.T) {
	cfg := DefaultConfig(10)
	b := newFakeBackend()
	b.fail = func(string) error { return fmt.Errorf("down") }
	res, err := RunClosedLoop(cfg, Follow, b, 4, 50)
	if err == nil {
		t.Fatalf("all-failing run reported success: %+v", res)
	}
}

func TestInvokerFunc(t *testing.T) {
	called := false
	inv := InvokerFunc(func(object uint64, method string, args [][]byte) ([]byte, error) {
		called = true
		return core.I64Bytes(1), nil
	})
	if _, err := inv.Invoke(1, "m", nil); err != nil || !called {
		t.Fatal("InvokerFunc broken")
	}
}

func TestResultString(t *testing.T) {
	r := Result{Workload: "Post", Ops: 10, Throughput: 123.4}
	if r.String() == "" {
		t.Fatal("empty render")
	}
}

func TestHotspotZipfSkew(t *testing.T) {
	be := newFakeBackend()
	cfg := DefaultConfig(64)
	cfg.HotspotS = 1.2
	op, err := OpStream(cfg, Post, be, 0)
	if err != nil {
		t.Fatal(err)
	}
	const ops = 5000
	for i := 0; i < ops; i++ {
		if err := op(); err != nil {
			t.Fatal(err)
		}
	}
	be.mu.Lock()
	defer be.mu.Unlock()
	// Rank 0 (account index 0) must dominate: with s=1.2 over 64
	// accounts it should carry well over a tenth of all traffic, which
	// a uniform pick (1/64) never approaches.
	hottest := be.byObj[cfg.AccountID(0)]
	if hottest < ops/10 {
		t.Fatalf("hotspot account got %d/%d ops; zipf skew not applied", hottest, ops)
	}
}

func TestHotspotStrideConcentratesGroups(t *testing.T) {
	be := newFakeBackend()
	const groups = 4
	cfg := DefaultConfig(64)
	cfg.FirstID = 0 // align account index with object id for the mod check
	cfg.HotspotS = 1.2
	cfg.HotspotStride = groups
	op, err := OpStream(cfg, Post, be, 0)
	if err != nil {
		t.Fatal(err)
	}
	const ops = 5000
	for i := 0; i < ops; i++ {
		if err := op(); err != nil {
			t.Fatal(err)
		}
	}
	be.mu.Lock()
	defer be.mu.Unlock()
	perGroup := make([]int, groups)
	for id, n := range be.byObj {
		perGroup[id%groups] += n
	}
	// Every rank maps to a multiple of the stride, so under id-mod-4
	// placement all traffic must land on group 0.
	for g := 1; g < groups; g++ {
		if perGroup[g] != 0 {
			t.Fatalf("stride leak: group %d got %d ops (%v)", g, perGroup[g], perGroup)
		}
	}
	if perGroup[0] != ops {
		t.Fatalf("group 0 got %d/%d ops", perGroup[0], ops)
	}
}
