// Open-loop load generation: Poisson arrivals issued on an absolute
// schedule, independent of completions. The closed-loop drivers in this
// package model a fixed worker pool — when the system slows down, the
// workers slow down with it, and the measured latency silently forgives
// the stall (coordinated omission). An open-loop generator models the
// outside world: arrivals keep coming at the offered rate whether or not
// earlier requests finished, which is the only load model under which
// saturation, queueing collapse, and admission-control shedding are
// visible at all.
package workload

import (
	"fmt"
	"math"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"lambdastore/internal/telemetry"
)

// Poisson is a deterministic exponential inter-arrival generator: gaps are
// -ln(U)/rate, the arrival process they induce is Poisson at `rate` per
// second. Seeded, so two runs at the same rate replay the same schedule.
type Poisson struct {
	rng  *rand.Rand
	rate float64
}

// NewPoisson builds a generator for ratePerSec arrivals per second.
func NewPoisson(seed int64, ratePerSec float64) *Poisson {
	return &Poisson{rng: rand.New(rand.NewSource(seed)), rate: ratePerSec}
}

// Next draws the gap to the next arrival.
func (p *Poisson) Next() time.Duration {
	u := p.rng.Float64()
	for u == 0 { // ln(0) is -Inf; re-draw the measure-zero edge
		u = p.rng.Float64()
	}
	return time.Duration(-math.Log(u) / p.rate * float64(time.Second))
}

// OpenLoopOptions shapes one open-loop run.
type OpenLoopOptions struct {
	// Rate is the offered load in requests per second.
	Rate float64
	// Duration bounds the arrival schedule (arrivals stop; in-flight
	// requests are still drained and recorded).
	Duration time.Duration
	// IsShed classifies an error as an admission-control shed rather than
	// a fault (nil = nothing is a shed).
	IsShed func(error) bool
}

// OpenLoopResult summarizes one open-loop run. Latency is measured from
// each request's *intended* arrival time on the Poisson schedule to its
// completion, so scheduler or issue-loop stalls count against the system
// rather than being silently absorbed (no coordinated omission). Shed
// requests are excluded from the latency distribution — the ablation's
// point is what happens to the requests the system chose to serve.
type OpenLoopResult struct {
	Workload    string
	OfferedRate float64 // requests/sec the schedule offered
	Elapsed     time.Duration
	Issued      uint64
	Completed   uint64
	Shed        uint64
	Errors      uint64
	Throughput  float64 // completed/sec over the full drain
	Latency     telemetry.Snapshot
	Hist        telemetry.HistData
}

// ShedRate is the fraction of issued requests shed by admission control.
func (r OpenLoopResult) ShedRate() float64 {
	if r.Issued == 0 {
		return 0
	}
	return float64(r.Shed) / float64(r.Issued)
}

// String renders a harness row.
func (r OpenLoopResult) String() string {
	return fmt.Sprintf("%-12s offered=%8.1f/s done=%-7d shed=%5.1f%% thr=%9.1f/s  p50=%-10v p99=%-10v errs=%d",
		r.Workload, r.OfferedRate, r.Completed, 100*r.ShedRate(), r.Throughput,
		r.Latency.Median, r.Latency.P99, r.Errors)
}

// RunOpenLoop offers cfg's workload at o.Rate requests per second for
// o.Duration, Poisson arrivals, unbounded virtual clients: every arrival
// gets its own goroutine immediately, no matter how many predecessors are
// still waiting. The schedule is absolute — arrival k's time is the sum of
// the first k gaps from a seeded generator — so a slow issue loop launches
// late-but-attributed rather than silently rescheduling.
func RunOpenLoop(cfg Config, workloadName string, inv Invoker, o OpenLoopOptions) (OpenLoopResult, error) {
	if o.Rate <= 0 {
		return OpenLoopResult{}, fmt.Errorf("workload: open loop needs a positive rate")
	}
	if o.Duration <= 0 {
		return OpenLoopResult{}, fmt.Errorf("workload: open loop needs a positive duration")
	}
	// Fail fast on an unknown workload before spawning anything.
	if _, err := OpStream(cfg, workloadName, inv, 0); err != nil {
		return OpenLoopResult{}, err
	}

	// Each virtual client needs its own op stream (the closures carry
	// per-worker RNG state and are not goroutine-safe). A pool recycles
	// streams across completed arrivals so a long run does not mint one
	// RNG per request.
	var workerSeq atomic.Int64
	streams := sync.Pool{New: func() any {
		op, err := OpStream(cfg, workloadName, inv, int(workerSeq.Add(1)))
		if err != nil {
			return nil
		}
		return op
	}}

	hist := &telemetry.Histogram{}
	var issued, completed, shed, errCount atomic.Uint64
	errCh := make(chan error, 1)

	gen := NewPoisson(cfg.Seed, o.Rate)
	start := time.Now()
	end := start.Add(o.Duration)
	var wg sync.WaitGroup
	next := start
	for {
		next = next.Add(gen.Next())
		if next.After(end) {
			break
		}
		if d := time.Until(next); d > 0 {
			time.Sleep(d)
		}
		intended := next
		issued.Add(1)
		wg.Add(1)
		go func() {
			defer wg.Done()
			opAny := streams.Get()
			if opAny == nil {
				return // validated above; only an Invoker race could land here
			}
			op := opAny.(func() error)
			t0 := time.Now()
			err := op()
			streams.Put(opAny)
			if err != nil {
				if o.IsShed != nil && o.IsShed(err) {
					shed.Add(1)
				} else {
					errCount.Add(1)
					select {
					case errCh <- err:
					default:
					}
				}
				return
			}
			completed.Add(1)
			hist.RecordWithIntended(t0, intended)
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)

	res := OpenLoopResult{
		Workload:    workloadName,
		OfferedRate: o.Rate,
		Elapsed:     elapsed,
		Issued:      issued.Load(),
		Completed:   completed.Load(),
		Shed:        shed.Load(),
		Errors:      errCount.Load(),
		Throughput:  float64(completed.Load()) / elapsed.Seconds(),
		Latency:     hist.Snapshot(),
		Hist:        hist.Data(),
	}
	if res.Completed == 0 && res.Errors > 0 {
		select {
		case err := <-errCh:
			return res, fmt.Errorf("workload %s: all open-loop operations failed: %w", workloadName, err)
		default:
		}
	}
	return res, nil
}
