// Package workload generates the Retwis benchmark workload of the paper's
// evaluation (§5): a population of user accounts with a skewed follower
// graph, and closed-loop client drivers issuing Post / GetTimeline / Follow
// jobs at a fixed concurrency (the paper runs "up to 100 concurrent client
// requests" against 10,000 accounts).
package workload

import (
	"fmt"
	"math/rand"
	"sync"
	"time"

	"lambdastore/internal/core"
	"lambdastore/internal/telemetry"
)

// Invoker abstracts the two architectures: the aggregated cluster client
// and the disaggregated compute client both implement it.
type Invoker interface {
	// Invoke submits one job and blocks for its result.
	Invoke(object uint64, method string, args [][]byte) ([]byte, error)
}

// InvokerFunc adapts a function to Invoker.
type InvokerFunc func(object uint64, method string, args [][]byte) ([]byte, error)

// Invoke implements Invoker.
func (f InvokerFunc) Invoke(object uint64, method string, args [][]byte) ([]byte, error) {
	return f(object, method, args)
}

// Config describes the benchmark population.
type Config struct {
	// Accounts is the number of User objects (paper: 10,000).
	Accounts int
	// MeanFollowers is the average follower-list size; actual sizes are
	// Zipf-skewed so a few accounts have many followers, as in real social
	// graphs.
	MeanFollowers int
	// ZipfS is the skew parameter (>1; higher = more skew).
	ZipfS float64
	// MsgLen is the post message size in bytes.
	MsgLen int
	// Seed makes population and op streams reproducible.
	Seed int64
	// FirstID is the object ID of the first account (accounts occupy
	// [FirstID, FirstID+Accounts)).
	FirstID uint64
	// HotspotS, when > 1, Zipf-skews which account each operation
	// targets (rank 0 hottest): the hot-spot workloads the rebalancer
	// is judged against. Zero keeps the original uniform pick. This is
	// separate from ZipfS, which skews the follower-graph shape.
	HotspotS float64
	// HotspotStride spreads Zipf ranks across account indexes as
	// (rank*stride) mod Accounts. With stride 1 the hottest accounts
	// are consecutive indexes — under id-mod-groups placement they land
	// on different groups. A stride that is a multiple of the group
	// count instead piles the hottest accounts onto one group, modeling
	// the correlated-collision worst case rebalancing exists to fix.
	// Zero means 1.
	HotspotStride uint64
}

// DefaultConfig mirrors the paper's setup scaled by accounts.
func DefaultConfig(accounts int) Config {
	return Config{
		Accounts:      accounts,
		MeanFollowers: 8,
		ZipfS:         1.3,
		MsgLen:        100,
		Seed:          42,
		FirstID:       1,
	}
}

// AccountID returns the object ID of account index i.
func (c Config) AccountID(i int) uint64 {
	return c.FirstID + uint64(i%c.Accounts)
}

// Populate creates the accounts and follower graph through inv. create is
// called to instantiate each object before its create_account invocation
// (the two architectures create objects differently).
func Populate(cfg Config, create func(id uint64) error, inv Invoker) error {
	rng := rand.New(rand.NewSource(cfg.Seed))
	zipf := rand.NewZipf(rng, cfg.ZipfS, 1, uint64(4*cfg.MeanFollowers))

	// Parallelize account creation: accounts are independent objects.
	const parallel = 32
	type job struct{ idx int }
	jobs := make(chan job, parallel)
	errs := make(chan error, parallel)
	var wg sync.WaitGroup
	for w := 0; w < parallel; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range jobs {
				id := cfg.AccountID(j.idx)
				if err := create(id); err != nil {
					errs <- fmt.Errorf("create %d: %w", id, err)
					return
				}
				name := fmt.Sprintf("user%06d", j.idx)
				if _, err := inv.Invoke(id, "create_account", [][]byte{[]byte(name)}); err != nil {
					errs <- fmt.Errorf("create_account %d: %w", id, err)
					return
				}
			}
		}()
	}
	for i := 0; i < cfg.Accounts; i++ {
		select {
		case err := <-errs:
			close(jobs)
			wg.Wait()
			return err
		case jobs <- job{idx: i}:
		}
	}
	close(jobs)
	wg.Wait()
	select {
	case err := <-errs:
		return err
	default:
	}

	// Follower edges: account i gains zipf-distributed random followers.
	edges := make(chan [2]uint64, parallel)
	var ewg sync.WaitGroup
	eerrs := make(chan error, parallel)
	for w := 0; w < parallel; w++ {
		ewg.Add(1)
		go func() {
			defer ewg.Done()
			for e := range edges {
				if _, err := inv.Invoke(e[0], "add_follower", [][]byte{core.I64Bytes(int64(e[1]))}); err != nil {
					eerrs <- fmt.Errorf("add_follower %d<-%d: %w", e[0], e[1], err)
					return
				}
			}
		}()
	}
	var sendErr error
edgeLoop:
	for i := 0; i < cfg.Accounts; i++ {
		account := cfg.AccountID(i)
		n := int(zipf.Uint64()) + 1
		for f := 0; f < n; f++ {
			follower := cfg.AccountID(rng.Intn(cfg.Accounts))
			if follower == account {
				continue
			}
			select {
			case err := <-eerrs:
				sendErr = err
				break edgeLoop
			case edges <- [2]uint64{account, follower}:
			}
		}
	}
	close(edges)
	ewg.Wait()
	if sendErr != nil {
		return sendErr
	}
	select {
	case err := <-eerrs:
		return err
	default:
	}
	return nil
}

// Workload names match the paper's Figure 1/2 x-axis.
const (
	Post        = "Post"
	GetTimeline = "GetTimeline"
	Follow      = "Follow"
)

// Workloads lists the evaluation workloads in paper order.
var Workloads = []string{Post, GetTimeline, Follow}

// keyPicker returns the per-op account selector: uniform by default,
// Zipf-skewed ranks mapped through the hotspot stride when HotspotS is
// set.
func keyPicker(cfg Config, rng *rand.Rand) func() uint64 {
	if cfg.HotspotS <= 1 || cfg.Accounts <= 1 {
		return func() uint64 { return cfg.AccountID(rng.Intn(cfg.Accounts)) }
	}
	zipf := rand.NewZipf(rng, cfg.HotspotS, 1, uint64(cfg.Accounts-1))
	stride := cfg.HotspotStride
	if stride == 0 {
		stride = 1
	}
	n := uint64(cfg.Accounts)
	return func() uint64 {
		rank := zipf.Uint64()
		return cfg.AccountID(int((rank * stride) % n))
	}
}

// OpStream produces the per-worker operation closure for one workload.
// Each worker gets an independent deterministic RNG.
func OpStream(cfg Config, workload string, inv Invoker, worker int) (func() error, error) {
	rng := rand.New(rand.NewSource(cfg.Seed + int64(worker)*7919))
	pick := keyPicker(cfg, rng)
	msg := make([]byte, cfg.MsgLen)
	for i := range msg {
		msg[i] = byte('a' + i%26)
	}
	switch workload {
	case Post:
		return func() error {
			_, err := inv.Invoke(pick(), "create_post", [][]byte{msg})
			return err
		}, nil
	case GetTimeline:
		return func() error {
			_, err := inv.Invoke(pick(), "get_timeline", [][]byte{core.I64Bytes(10)})
			return err
		}, nil
	case Follow:
		return func() error {
			id := pick()
			follower := cfg.AccountID(rng.Intn(cfg.Accounts))
			_, err := inv.Invoke(id, "add_follower", [][]byte{core.I64Bytes(int64(follower))})
			return err
		}, nil
	default:
		return nil, fmt.Errorf("workload: unknown workload %q", workload)
	}
}

// Result summarizes one closed-loop run.
type Result struct {
	Workload   string
	Ops        uint64
	Elapsed    time.Duration
	Throughput float64 // jobs/sec
	Latency    telemetry.Snapshot
	Errors     uint64
}

// String renders a harness row.
func (r Result) String() string {
	return fmt.Sprintf("%-12s ops=%-7d thr=%9.1f jobs/s  p50=%-10v p99=%-10v errs=%d",
		r.Workload, r.Ops, r.Throughput, r.Latency.Median, r.Latency.P99, r.Errors)
}

// RunClosedLoop drives `concurrency` workers, each issuing operations
// back-to-back, until totalOps complete (the paper's closed-loop client
// model: "up to 100 concurrent client requests").
func RunClosedLoop(cfg Config, workload string, inv Invoker, concurrency, totalOps int) (Result, error) {
	return RunClosedLoopOps(workload, func(worker int) (func() error, error) {
		return OpStream(cfg, workload, inv, worker)
	}, concurrency, totalOps)
}

// RunClosedLoopOps is RunClosedLoop with a caller-supplied op stream —
// for benchmarks that need a variation of a named workload (e.g. the
// read-path sweep's deeper timeline reads).
func RunClosedLoopOps(workload string, opFor func(worker int) (func() error, error), concurrency, totalOps int) (Result, error) {
	if concurrency <= 0 {
		concurrency = 1
	}
	hist := &telemetry.Histogram{}
	var errCount telemetry.Counter

	remaining := make(chan struct{}, totalOps)
	for i := 0; i < totalOps; i++ {
		remaining <- struct{}{}
	}
	close(remaining)

	start := time.Now()
	var wg sync.WaitGroup
	errCh := make(chan error, concurrency)
	for w := 0; w < concurrency; w++ {
		op, err := opFor(w)
		if err != nil {
			return Result{}, err
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			for range remaining {
				t0 := time.Now()
				if err := op(); err != nil {
					errCount.Inc()
					select {
					case errCh <- err:
					default:
					}
					continue
				}
				hist.Record(time.Since(t0))
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)

	res := Result{
		Workload:   workload,
		Ops:        hist.Count(),
		Elapsed:    elapsed,
		Throughput: float64(hist.Count()) / elapsed.Seconds(),
		Latency:    hist.Snapshot(),
		Errors:     errCount.Value(),
	}
	// Surface the first error if everything failed.
	if res.Ops == 0 && res.Errors > 0 {
		select {
		case err := <-errCh:
			return res, fmt.Errorf("workload %s: all operations failed: %w", workload, err)
		default:
		}
	}
	return res, nil
}
