// Package paxos implements the consensus protocol behind LambdaStore's
// cluster coordination service. The paper (§4.2.1) replicates the
// coordinator with Paxos "to ensure availability at all times"; this
// package provides exactly that: a multi-decree Paxos log where each slot
// is decided by the classic two-phase protocol (Lamport's "The Part-Time
// Parliament", simplified as in "Paxos Made Simple").
//
// Roles:
//   - Acceptor: durable-vote state machine (promise / accept).
//   - Proposer: drives phase 1 (prepare) and phase 2 (accept) against a
//     quorum of acceptors, slot by slot.
//   - Learner: observes chosen values and applies them in slot order.
//
// The Transport interface abstracts the wire; production uses the rpc
// package, tests use an in-memory transport with injectable partitions.
package paxos

import (
	"errors"
	"fmt"
	"sync"

	"lambdastore/internal/wire"
)

// Errors.
var (
	ErrNoQuorum = errors.New("paxos: no quorum reachable")
	ErrClosed   = errors.New("paxos: node closed")
)

// Ballot orders proposal attempts; ties broken by proposer ID.
type Ballot struct {
	Round uint64
	Node  uint64
}

// Less reports whether b orders before o.
func (b Ballot) Less(o Ballot) bool {
	if b.Round != o.Round {
		return b.Round < o.Round
	}
	return b.Node < o.Node
}

// LessEq reports b <= o.
func (b Ballot) LessEq(o Ballot) bool { return !o.Less(b) }

func (b Ballot) String() string { return fmt.Sprintf("%d.%d", b.Round, b.Node) }

// IsZero reports whether the ballot is the zero value.
func (b Ballot) IsZero() bool { return b.Round == 0 && b.Node == 0 }

// PrepareReq is phase-1a: a proposer asks acceptors to promise ballot for
// slot.
type PrepareReq struct {
	Slot   uint64
	Ballot Ballot
}

// PrepareResp is phase-1b.
type PrepareResp struct {
	OK       bool
	Promised Ballot // highest promise (hint for the proposer on reject)
	// If the acceptor already accepted a value in this slot, it reports it
	// so the proposer must adopt the highest-ballot one.
	AcceptedBallot Ballot
	AcceptedValue  []byte
	HasAccepted    bool
}

// AcceptReq is phase-2a.
type AcceptReq struct {
	Slot   uint64
	Ballot Ballot
	Value  []byte
}

// AcceptResp is phase-2b.
type AcceptResp struct {
	OK       bool
	Promised Ballot
}

// LearnReq informs learners that a value was chosen for slot.
type LearnReq struct {
	Slot  uint64
	Value []byte
}

// Transport delivers protocol messages to a peer. Implementations must be
// safe for concurrent use. An error models an unreachable peer.
type Transport interface {
	Prepare(peer uint64, req *PrepareReq) (*PrepareResp, error)
	Accept(peer uint64, req *AcceptReq) (*AcceptResp, error)
	Learn(peer uint64, req *LearnReq) error
}

// acceptedEntry is an acceptor's vote for one slot.
type acceptedEntry struct {
	ballot Ballot
	value  []byte
}

// Node is one Paxos participant combining all three roles.
type Node struct {
	id     uint64
	peers  []uint64 // all node IDs, including self
	trans  Transport
	applyF func(slot uint64, value []byte)
	stable Stable // optional durable acceptor storage

	mu sync.Mutex
	// Acceptor state.
	promised map[uint64]Ballot // slot -> highest promise
	accepted map[uint64]acceptedEntry
	// Learner state.
	chosen    map[uint64][]byte
	nextApply uint64 // lowest slot not yet applied
	// Proposer state.
	lastRound uint64
	nextSlot  uint64 // lowest slot this node believes may be free
	closed    bool
}

// NewNode creates a participant. peers must list every node ID including
// id; apply is called exactly once per slot, in slot order, as values are
// chosen (it must not call back into the node).
func NewNode(id uint64, peers []uint64, trans Transport, apply func(slot uint64, value []byte)) *Node {
	return &Node{
		id:       id,
		peers:    append([]uint64(nil), peers...),
		trans:    trans,
		applyF:   apply,
		promised: make(map[uint64]Ballot),
		accepted: make(map[uint64]acceptedEntry),
		chosen:   make(map[uint64][]byte),
	}
}

// ID returns the node's identifier.
func (n *Node) ID() uint64 { return n.id }

// SetTransport installs the transport. Must be called before the first
// proposal when the transport could not be built at construction time
// (e.g. RPC transports that need every peer's address first).
func (n *Node) SetTransport(t Transport) {
	n.mu.Lock()
	n.trans = t
	n.mu.Unlock()
}

// quorum returns the majority size.
func (n *Node) quorum() int { return len(n.peers)/2 + 1 }

// Close marks the node closed; subsequent proposals fail.
func (n *Node) Close() {
	n.mu.Lock()
	n.closed = true
	n.mu.Unlock()
}

// --- Acceptor role (invoked by the transport layer) ---

// HandlePrepare processes a phase-1a message.
func (n *Node) HandlePrepare(req *PrepareReq) *PrepareResp {
	n.mu.Lock()
	defer n.mu.Unlock()
	cur := n.promised[req.Slot]
	if req.Ballot.Less(cur) {
		return &PrepareResp{OK: false, Promised: cur}
	}
	if n.stable != nil && cur.Less(req.Ballot) {
		// The promise must survive a restart before the proposer may rely
		// on it; refusing on persistence failure keeps safety.
		if err := n.stable.SavePromise(req.Slot, req.Ballot); err != nil {
			return &PrepareResp{OK: false, Promised: cur}
		}
	}
	n.promised[req.Slot] = req.Ballot
	resp := &PrepareResp{OK: true, Promised: req.Ballot}
	if acc, ok := n.accepted[req.Slot]; ok {
		resp.HasAccepted = true
		resp.AcceptedBallot = acc.ballot
		resp.AcceptedValue = acc.value
	}
	return resp
}

// HandleAccept processes a phase-2a message.
func (n *Node) HandleAccept(req *AcceptReq) *AcceptResp {
	n.mu.Lock()
	defer n.mu.Unlock()
	cur := n.promised[req.Slot]
	if req.Ballot.Less(cur) {
		return &AcceptResp{OK: false, Promised: cur}
	}
	if n.stable != nil {
		if err := n.stable.SaveAccepted(req.Slot, req.Ballot, req.Value); err != nil {
			return &AcceptResp{OK: false, Promised: cur}
		}
	}
	n.promised[req.Slot] = req.Ballot
	n.accepted[req.Slot] = acceptedEntry{ballot: req.Ballot, value: append([]byte(nil), req.Value...)}
	return &AcceptResp{OK: true, Promised: req.Ballot}
}

// HandleLearn records a chosen value and applies ready slots in order.
func (n *Node) HandleLearn(req *LearnReq) {
	n.mu.Lock()
	if _, ok := n.chosen[req.Slot]; !ok {
		n.chosen[req.Slot] = append([]byte(nil), req.Value...)
	}
	if req.Slot >= n.nextSlot {
		n.nextSlot = req.Slot + 1
	}
	var ready []struct {
		slot  uint64
		value []byte
	}
	for {
		v, ok := n.chosen[n.nextApply]
		if !ok {
			break
		}
		ready = append(ready, struct {
			slot  uint64
			value []byte
		}{n.nextApply, v})
		n.nextApply++
	}
	apply := n.applyF
	n.mu.Unlock()
	if apply != nil {
		for _, r := range ready {
			apply(r.slot, r.value)
		}
	}
}

// Chosen returns the chosen value for slot, if known.
func (n *Node) Chosen(slot uint64) ([]byte, bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	v, ok := n.chosen[slot]
	return v, ok
}

// NumChosen returns how many consecutive slots from 0 have been applied.
func (n *Node) NumChosen() uint64 {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.nextApply
}

// --- Proposer role ---

// Propose drives value through consensus. It returns the slot at which a
// value was chosen with this node as proposer and the chosen value — which
// may be a DIFFERENT value if the slot turned out to be taken; callers loop
// until their own value is chosen (see ProposeMine).
func (n *Node) Propose(value []byte) (slot uint64, chosenValue []byte, err error) {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return 0, nil, ErrClosed
	}
	slot = n.nextSlot
	n.mu.Unlock()

	chosen, err := n.proposeSlot(slot, value)
	if err != nil {
		return 0, nil, err
	}
	return slot, chosen, nil
}

// ProposeMine keeps proposing until value itself is chosen in some slot,
// skipping slots taken by competing proposers. Returns the slot it landed
// in.
func (n *Node) ProposeMine(value []byte) (uint64, error) {
	for {
		slot, chosen, err := n.Propose(value)
		if err != nil {
			return 0, err
		}
		if string(chosen) == string(value) {
			return slot, nil
		}
		// Slot was occupied by another proposal; try the next one.
	}
}

// proposeSlot runs full Paxos for one slot and returns the value chosen
// there (ours, or an earlier proposer's that we were obliged to adopt).
func (n *Node) proposeSlot(slot uint64, value []byte) ([]byte, error) {
	// Fast path: already known chosen.
	n.mu.Lock()
	if v, ok := n.chosen[slot]; ok {
		if slot >= n.nextSlot {
			n.nextSlot = slot + 1
		}
		n.mu.Unlock()
		return v, nil
	}
	n.mu.Unlock()

	for {
		n.mu.Lock()
		if n.closed {
			n.mu.Unlock()
			return nil, ErrClosed
		}
		n.lastRound++
		ballot := Ballot{Round: n.lastRound, Node: n.id}
		n.mu.Unlock()

		// Phase 1: prepare.
		promises := 0
		var adoptBallot Ballot
		adoptValue := value
		var highestPromise Ballot
		for _, peer := range n.peers {
			resp, err := n.trans.Prepare(peer, &PrepareReq{Slot: slot, Ballot: ballot})
			if err != nil {
				continue
			}
			if !resp.OK {
				if highestPromise.Less(resp.Promised) {
					highestPromise = resp.Promised
				}
				continue
			}
			promises++
			if resp.HasAccepted && adoptBallot.Less(resp.AcceptedBallot) {
				adoptBallot = resp.AcceptedBallot
				adoptValue = resp.AcceptedValue
			}
		}
		if promises < n.quorum() {
			if highestPromise.IsZero() {
				return nil, ErrNoQuorum
			}
			// Lost to a higher ballot: bump our round past it and retry.
			n.mu.Lock()
			if n.lastRound <= highestPromise.Round {
				n.lastRound = highestPromise.Round
			}
			n.mu.Unlock()
			continue
		}

		// Phase 2: accept.
		accepts := 0
		highestPromise = Ballot{}
		for _, peer := range n.peers {
			resp, err := n.trans.Accept(peer, &AcceptReq{Slot: slot, Ballot: ballot, Value: adoptValue})
			if err != nil {
				continue
			}
			if resp.OK {
				accepts++
			} else if highestPromise.Less(resp.Promised) {
				highestPromise = resp.Promised
			}
		}
		if accepts < n.quorum() {
			if highestPromise.IsZero() {
				return nil, ErrNoQuorum
			}
			n.mu.Lock()
			if n.lastRound <= highestPromise.Round {
				n.lastRound = highestPromise.Round
			}
			n.mu.Unlock()
			continue
		}

		// Chosen: teach all learners (including ourselves).
		learn := &LearnReq{Slot: slot, Value: adoptValue}
		n.HandleLearn(learn)
		for _, peer := range n.peers {
			if peer == n.id {
				continue
			}
			// Best effort: lagging learners catch up via CatchUp.
			_ = n.trans.Learn(peer, learn)
		}
		return adoptValue, nil
	}
}

// CatchUp fills gaps in this node's learned log by re-running consensus
// with no-op values for unknown slots up to (but excluding) limit. Paxos
// guarantees re-proposing cannot change already-chosen values.
func (n *Node) CatchUp(limit uint64) error {
	for slot := uint64(0); slot < limit; slot++ {
		n.mu.Lock()
		_, known := n.chosen[slot]
		n.mu.Unlock()
		if known {
			continue
		}
		chosen, err := n.proposeSlot(slot, nil)
		if err != nil {
			return err
		}
		n.HandleLearn(&LearnReq{Slot: slot, Value: chosen})
	}
	return nil
}

// --- Message serialization (for the RPC transport) ---

// EncodePrepareReq serializes req.
func EncodePrepareReq(req *PrepareReq) []byte {
	var b []byte
	b = wire.AppendUvarint(b, req.Slot)
	b = wire.AppendUvarint(b, req.Ballot.Round)
	b = wire.AppendUvarint(b, req.Ballot.Node)
	return b
}

// DecodePrepareReq parses a serialized PrepareReq.
func DecodePrepareReq(b []byte) (*PrepareReq, error) {
	req := &PrepareReq{}
	var err error
	if req.Slot, b, err = wire.Uvarint(b); err != nil {
		return nil, err
	}
	if req.Ballot.Round, b, err = wire.Uvarint(b); err != nil {
		return nil, err
	}
	if req.Ballot.Node, _, err = wire.Uvarint(b); err != nil {
		return nil, err
	}
	return req, nil
}

// EncodePrepareResp serializes resp.
func EncodePrepareResp(r *PrepareResp) []byte {
	var b []byte
	b = wire.AppendUvarint(b, boolU(r.OK))
	b = wire.AppendUvarint(b, r.Promised.Round)
	b = wire.AppendUvarint(b, r.Promised.Node)
	b = wire.AppendUvarint(b, boolU(r.HasAccepted))
	b = wire.AppendUvarint(b, r.AcceptedBallot.Round)
	b = wire.AppendUvarint(b, r.AcceptedBallot.Node)
	b = wire.AppendBytes(b, r.AcceptedValue)
	return b
}

// DecodePrepareResp parses a serialized PrepareResp.
func DecodePrepareResp(b []byte) (*PrepareResp, error) {
	r := &PrepareResp{}
	var u uint64
	var err error
	if u, b, err = wire.Uvarint(b); err != nil {
		return nil, err
	}
	r.OK = u != 0
	if r.Promised.Round, b, err = wire.Uvarint(b); err != nil {
		return nil, err
	}
	if r.Promised.Node, b, err = wire.Uvarint(b); err != nil {
		return nil, err
	}
	if u, b, err = wire.Uvarint(b); err != nil {
		return nil, err
	}
	r.HasAccepted = u != 0
	if r.AcceptedBallot.Round, b, err = wire.Uvarint(b); err != nil {
		return nil, err
	}
	if r.AcceptedBallot.Node, b, err = wire.Uvarint(b); err != nil {
		return nil, err
	}
	var raw []byte
	if raw, _, err = wire.Bytes(b); err != nil {
		return nil, err
	}
	r.AcceptedValue = append([]byte(nil), raw...)
	return r, nil
}

// EncodeAcceptReq serializes req.
func EncodeAcceptReq(req *AcceptReq) []byte {
	var b []byte
	b = wire.AppendUvarint(b, req.Slot)
	b = wire.AppendUvarint(b, req.Ballot.Round)
	b = wire.AppendUvarint(b, req.Ballot.Node)
	b = wire.AppendBytes(b, req.Value)
	return b
}

// DecodeAcceptReq parses a serialized AcceptReq.
func DecodeAcceptReq(b []byte) (*AcceptReq, error) {
	req := &AcceptReq{}
	var err error
	if req.Slot, b, err = wire.Uvarint(b); err != nil {
		return nil, err
	}
	if req.Ballot.Round, b, err = wire.Uvarint(b); err != nil {
		return nil, err
	}
	if req.Ballot.Node, b, err = wire.Uvarint(b); err != nil {
		return nil, err
	}
	var raw []byte
	if raw, _, err = wire.Bytes(b); err != nil {
		return nil, err
	}
	req.Value = append([]byte(nil), raw...)
	return req, nil
}

// EncodeAcceptResp serializes resp.
func EncodeAcceptResp(r *AcceptResp) []byte {
	var b []byte
	b = wire.AppendUvarint(b, boolU(r.OK))
	b = wire.AppendUvarint(b, r.Promised.Round)
	b = wire.AppendUvarint(b, r.Promised.Node)
	return b
}

// DecodeAcceptResp parses a serialized AcceptResp.
func DecodeAcceptResp(b []byte) (*AcceptResp, error) {
	r := &AcceptResp{}
	var u uint64
	var err error
	if u, b, err = wire.Uvarint(b); err != nil {
		return nil, err
	}
	r.OK = u != 0
	if r.Promised.Round, b, err = wire.Uvarint(b); err != nil {
		return nil, err
	}
	if r.Promised.Node, _, err = wire.Uvarint(b); err != nil {
		return nil, err
	}
	return r, nil
}

// EncodeLearnReq serializes req.
func EncodeLearnReq(req *LearnReq) []byte {
	var b []byte
	b = wire.AppendUvarint(b, req.Slot)
	b = wire.AppendBytes(b, req.Value)
	return b
}

// DecodeLearnReq parses a serialized LearnReq.
func DecodeLearnReq(b []byte) (*LearnReq, error) {
	req := &LearnReq{}
	var err error
	if req.Slot, b, err = wire.Uvarint(b); err != nil {
		return nil, err
	}
	var raw []byte
	if raw, _, err = wire.Bytes(b); err != nil {
		return nil, err
	}
	req.Value = append([]byte(nil), raw...)
	return req, nil
}

func boolU(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}
