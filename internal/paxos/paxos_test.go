package paxos

import (
	"fmt"
	"sync"
	"testing"

	"lambdastore/internal/rpc"
)

// newCluster builds n nodes on a shared local transport, collecting applied
// values per node.
func newCluster(n int) ([]*Node, *LocalTransport, []*appliedLog) {
	trans := NewLocalTransport()
	ids := make([]uint64, n)
	for i := range ids {
		ids[i] = uint64(i + 1)
	}
	nodes := make([]*Node, n)
	logs := make([]*appliedLog, n)
	for i := range ids {
		log := &appliedLog{}
		logs[i] = log
		nodes[i] = NewNode(ids[i], ids, trans, log.apply)
		trans.Register(nodes[i])
	}
	return nodes, trans, logs
}

// appliedLog records apply callbacks in order.
type appliedLog struct {
	mu      sync.Mutex
	entries []string
}

func (l *appliedLog) apply(slot uint64, value []byte) {
	l.mu.Lock()
	defer l.mu.Unlock()
	for uint64(len(l.entries)) < slot {
		l.entries = append(l.entries, "") // shouldn't happen: gaps
	}
	l.entries = append(l.entries, string(value))
}

func (l *appliedLog) snapshot() []string {
	l.mu.Lock()
	defer l.mu.Unlock()
	return append([]string(nil), l.entries...)
}

func TestSingleProposerChoosesValues(t *testing.T) {
	nodes, _, logs := newCluster(3)
	for i := 0; i < 10; i++ {
		v := fmt.Sprintf("cmd-%d", i)
		slot, err := nodes[0].ProposeMine([]byte(v))
		if err != nil {
			t.Fatalf("propose %d: %v", i, err)
		}
		if slot != uint64(i) {
			t.Fatalf("cmd %d landed in slot %d", i, slot)
		}
	}
	for ni, log := range logs {
		got := log.snapshot()
		if len(got) != 10 {
			t.Fatalf("node %d applied %d entries", ni, len(got))
		}
		for i, v := range got {
			if v != fmt.Sprintf("cmd-%d", i) {
				t.Fatalf("node %d slot %d = %q", ni, i, v)
			}
		}
	}
}

func TestCompetingProposersAgree(t *testing.T) {
	nodes, _, logs := newCluster(3)
	const perNode = 20
	var wg sync.WaitGroup
	for ni, n := range nodes {
		wg.Add(1)
		go func(ni int, n *Node) {
			defer wg.Done()
			for i := 0; i < perNode; i++ {
				if _, err := n.ProposeMine([]byte(fmt.Sprintf("n%d-c%d", ni, i))); err != nil {
					t.Errorf("node %d propose: %v", ni, err)
					return
				}
			}
		}(ni, n)
	}
	wg.Wait()

	// All nodes might lag on slots they didn't propose; catch up explicitly.
	total := uint64(len(nodes) * perNode)
	for _, n := range nodes {
		if err := n.CatchUp(total); err != nil {
			t.Fatalf("catchup: %v", err)
		}
	}

	// Every replica's log must agree slot by slot, contain every proposed
	// command exactly once.
	ref := logs[0].snapshot()
	if uint64(len(ref)) != total {
		t.Fatalf("log length %d, want %d", len(ref), total)
	}
	seen := make(map[string]int)
	for _, v := range ref {
		seen[v]++
	}
	for ni := 0; ni < len(nodes); ni++ {
		for i := 0; i < perNode; i++ {
			cmd := fmt.Sprintf("n%d-c%d", ni, i)
			if seen[cmd] != 1 {
				t.Fatalf("command %q chosen %d times", cmd, seen[cmd])
			}
		}
	}
	for ni := 1; ni < len(logs); ni++ {
		got := logs[ni].snapshot()
		if len(got) != len(ref) {
			t.Fatalf("node %d log length %d vs %d", ni, len(got), len(ref))
		}
		for s := range ref {
			if got[s] != ref[s] {
				t.Fatalf("divergence at slot %d: %q vs %q", s, got[s], ref[s])
			}
		}
	}
}

func TestProgressWithMinorityDown(t *testing.T) {
	nodes, trans, _ := newCluster(3)
	trans.Disconnect(3)
	for i := 0; i < 5; i++ {
		if _, err := nodes[0].ProposeMine([]byte(fmt.Sprintf("v%d", i))); err != nil {
			t.Fatalf("propose with minority down: %v", err)
		}
	}
}

func TestNoProgressWithMajorityDown(t *testing.T) {
	nodes, trans, _ := newCluster(3)
	trans.Disconnect(2)
	trans.Disconnect(3)
	if _, _, err := nodes[0].Propose([]byte("doomed")); err == nil {
		t.Fatal("proposal succeeded without quorum")
	}
}

func TestRecoveredNodeCatchesUp(t *testing.T) {
	nodes, trans, logs := newCluster(3)
	trans.Disconnect(3)
	for i := 0; i < 8; i++ {
		if _, err := nodes[0].ProposeMine([]byte(fmt.Sprintf("v%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	trans.Reconnect(3)
	if err := nodes[2].CatchUp(nodes[0].NumChosen()); err != nil {
		t.Fatalf("catchup: %v", err)
	}
	got := logs[2].snapshot()
	if len(got) != 8 {
		t.Fatalf("recovered node applied %d entries", len(got))
	}
	for i, v := range got {
		if v != fmt.Sprintf("v%d", i) {
			t.Fatalf("slot %d = %q", i, v)
		}
	}
}

func TestChosenValueIsStable(t *testing.T) {
	// Once a value is chosen, later proposers with new ballots must adopt
	// it rather than overwrite.
	nodes, _, _ := newCluster(3)
	slot, err := nodes[0].ProposeMine([]byte("first"))
	if err != nil {
		t.Fatal(err)
	}
	chosen, err := nodes[1].proposeSlot(slot, []byte("usurper"))
	if err != nil {
		t.Fatal(err)
	}
	if string(chosen) != "first" {
		t.Fatalf("slot %d re-decided to %q", slot, chosen)
	}
}

func TestAcceptorPromiseRules(t *testing.T) {
	n := NewNode(1, []uint64{1}, NewLocalTransport(), nil)
	low := Ballot{Round: 1, Node: 1}
	high := Ballot{Round: 2, Node: 1}
	if resp := n.HandlePrepare(&PrepareReq{Slot: 0, Ballot: high}); !resp.OK {
		t.Fatal("first prepare rejected")
	}
	if resp := n.HandlePrepare(&PrepareReq{Slot: 0, Ballot: low}); resp.OK {
		t.Fatal("lower ballot prepare accepted after higher promise")
	}
	if resp := n.HandleAccept(&AcceptReq{Slot: 0, Ballot: low, Value: []byte("x")}); resp.OK {
		t.Fatal("lower ballot accept accepted")
	}
	if resp := n.HandleAccept(&AcceptReq{Slot: 0, Ballot: high, Value: []byte("y")}); !resp.OK {
		t.Fatal("promised ballot accept rejected")
	}
	// Prepare at an even higher ballot must report the accepted value.
	resp := n.HandlePrepare(&PrepareReq{Slot: 0, Ballot: Ballot{Round: 3, Node: 1}})
	if !resp.OK || !resp.HasAccepted || string(resp.AcceptedValue) != "y" {
		t.Fatalf("prepare resp %+v", resp)
	}
}

func TestBallotOrdering(t *testing.T) {
	cases := []struct {
		a, b Ballot
		less bool
	}{
		{Ballot{1, 1}, Ballot{2, 1}, true},
		{Ballot{2, 1}, Ballot{1, 9}, false},
		{Ballot{1, 1}, Ballot{1, 2}, true},
		{Ballot{1, 2}, Ballot{1, 2}, false},
	}
	for _, c := range cases {
		if got := c.a.Less(c.b); got != c.less {
			t.Fatalf("%v < %v = %v", c.a, c.b, got)
		}
	}
}

func TestMessageCodecs(t *testing.T) {
	pr := &PrepareReq{Slot: 9, Ballot: Ballot{Round: 3, Node: 2}}
	pr2, err := DecodePrepareReq(EncodePrepareReq(pr))
	if err != nil || *pr2 != *pr {
		t.Fatalf("prepare req round trip: %+v %v", pr2, err)
	}
	presp := &PrepareResp{OK: true, Promised: Ballot{4, 1}, HasAccepted: true,
		AcceptedBallot: Ballot{2, 3}, AcceptedValue: []byte("val")}
	presp2, err := DecodePrepareResp(EncodePrepareResp(presp))
	if err != nil || presp2.Promised != presp.Promised || string(presp2.AcceptedValue) != "val" || !presp2.HasAccepted {
		t.Fatalf("prepare resp round trip: %+v %v", presp2, err)
	}
	ar := &AcceptReq{Slot: 5, Ballot: Ballot{7, 7}, Value: []byte("cmd")}
	ar2, err := DecodeAcceptReq(EncodeAcceptReq(ar))
	if err != nil || ar2.Slot != 5 || string(ar2.Value) != "cmd" {
		t.Fatalf("accept req round trip: %+v %v", ar2, err)
	}
	lr := &LearnReq{Slot: 11, Value: []byte("chosen")}
	lr2, err := DecodeLearnReq(EncodeLearnReq(lr))
	if err != nil || lr2.Slot != 11 || string(lr2.Value) != "chosen" {
		t.Fatalf("learn req round trip: %+v %v", lr2, err)
	}
}

func TestRPCTransportEndToEnd(t *testing.T) {
	// Three nodes, each behind a real RPC server on loopback.
	ids := []uint64{1, 2, 3}
	var logs [3]*appliedLog
	nodes := make([]*Node, 3)
	servers := make([]*rpc.Server, 3)
	addrs := make(map[uint64]string)

	// Create nodes first with a placeholder transport, then swap in the RPC
	// transport once all addresses are known.
	for i, id := range ids {
		logs[i] = &appliedLog{}
		nodes[i] = NewNode(id, ids, nil, logs[i].apply)
	}
	for i := range ids {
		servers[i] = rpc.NewServer()
		RegisterServer(servers[i], nodes[i])
		addr, err := servers[i].Serve("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		defer servers[i].Close()
		addrs[ids[i]] = addr
	}
	pool := rpc.NewPool(nil)
	defer pool.Close()
	for i := range ids {
		nodes[i].trans = NewRPCTransport(nodes[i], pool, addrs)
	}

	for i := 0; i < 5; i++ {
		if _, err := nodes[i%3].ProposeMine([]byte(fmt.Sprintf("net-%d", i))); err != nil {
			t.Fatalf("propose over rpc: %v", err)
		}
	}
	for i := range nodes {
		if err := nodes[i].CatchUp(5); err != nil {
			t.Fatal(err)
		}
		got := logs[i].snapshot()
		if len(got) != 5 {
			t.Fatalf("node %d applied %d", i, len(got))
		}
	}
	ref := logs[0].snapshot()
	for i := 1; i < 3; i++ {
		got := logs[i].snapshot()
		for s := range ref {
			if got[s] != ref[s] {
				t.Fatalf("divergence at slot %d", s)
			}
		}
	}
}

func TestStableSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	path := dir + "/acceptor.log"

	// Acceptor 1 runs with durable storage and promises/accepts.
	stable, err := OpenFileStable(path)
	if err != nil {
		t.Fatal(err)
	}
	n1 := NewNode(1, []uint64{1}, NewLocalTransport(), nil)
	if err := n1.SetStable(stable); err != nil {
		t.Fatal(err)
	}
	high := Ballot{Round: 5, Node: 2}
	if resp := n1.HandlePrepare(&PrepareReq{Slot: 0, Ballot: high}); !resp.OK {
		t.Fatal("prepare rejected")
	}
	if resp := n1.HandleAccept(&AcceptReq{Slot: 0, Ballot: high, Value: []byte("chosen-v")}); !resp.OK {
		t.Fatal("accept rejected")
	}
	if resp := n1.HandlePrepare(&PrepareReq{Slot: 3, Ballot: Ballot{Round: 9, Node: 4}}); !resp.OK {
		t.Fatal("prepare slot 3 rejected")
	}
	stable.Close()

	// Restart: a fresh node loads the log and must honor old obligations.
	stable2, err := OpenFileStable(path)
	if err != nil {
		t.Fatal(err)
	}
	defer stable2.Close()
	n2 := NewNode(1, []uint64{1}, NewLocalTransport(), nil)
	if err := n2.SetStable(stable2); err != nil {
		t.Fatal(err)
	}
	// Lower ballots must be rejected (the promise survived).
	if resp := n2.HandlePrepare(&PrepareReq{Slot: 0, Ballot: Ballot{Round: 4, Node: 9}}); resp.OK {
		t.Fatal("restarted acceptor forgot its promise on slot 0")
	}
	if resp := n2.HandlePrepare(&PrepareReq{Slot: 3, Ballot: Ballot{Round: 8, Node: 9}}); resp.OK {
		t.Fatal("restarted acceptor forgot its promise on slot 3")
	}
	// A higher prepare must report the accepted value (it survived too).
	resp := n2.HandlePrepare(&PrepareReq{Slot: 0, Ballot: Ballot{Round: 10, Node: 9}})
	if !resp.OK || !resp.HasAccepted || string(resp.AcceptedValue) != "chosen-v" {
		t.Fatalf("restarted acceptor lost accepted value: %+v", resp)
	}
	if resp.AcceptedBallot != high {
		t.Fatalf("accepted ballot = %v", resp.AcceptedBallot)
	}
}

func TestStableSafetyAcrossAcceptorRestart(t *testing.T) {
	// Choose a value with durable acceptors, restart every acceptor from
	// its log, and verify a later competing proposal cannot change the
	// chosen value.
	dir := t.TempDir()
	trans := NewLocalTransport()
	ids := []uint64{1, 2, 3}
	open := func(round int) []*Node {
		nodes := make([]*Node, len(ids))
		for i, id := range ids {
			st, err := OpenFileStable(fmt.Sprintf("%s/acc%d.log", dir, id))
			if err != nil {
				t.Fatal(err)
			}
			n := NewNode(id, ids, trans, nil)
			if err := n.SetStable(st); err != nil {
				t.Fatal(err)
			}
			trans.Register(n) // replaces the previous registration
			nodes[i] = n
		}
		return nodes
	}

	nodes := open(0)
	slot, err := nodes[0].ProposeMine([]byte("first-decision"))
	if err != nil {
		t.Fatal(err)
	}

	// "Crash" everything and restart from the logs.
	nodes = open(1)
	chosen, err := nodes[1].proposeSlot(slot, []byte("usurper"))
	if err != nil {
		t.Fatal(err)
	}
	if string(chosen) != "first-decision" {
		t.Fatalf("restart lost the chosen value: %q", chosen)
	}
}
