package paxos

import (
	"fmt"
	"os"
	"sync"

	"lambdastore/internal/wire"
)

// Stable is durable acceptor state. Paxos safety depends on an acceptor
// never forgetting a promise or an accepted value across restarts; every
// record must be durable before the acceptor responds to the proposer.
type Stable interface {
	// SavePromise records the highest promise for slot.
	SavePromise(slot uint64, b Ballot) error
	// SaveAccepted records the accepted (ballot, value) for slot.
	SaveAccepted(slot uint64, b Ballot, value []byte) error
	// Load replays the saved state in write order.
	Load(fn func(slot uint64, promised Ballot, accepted bool, acceptedBallot Ballot, value []byte) error) error
	// Close releases resources.
	Close() error
}

// Record kinds in the stable log.
const (
	stablePromise = 1
	stableAccept  = 2
)

// FileStable is an append-only, fsync-per-record implementation of Stable.
type FileStable struct {
	mu   sync.Mutex
	f    *os.File
	path string
}

// OpenFileStable opens (creating if needed) the acceptor log at path.
func OpenFileStable(path string) (*FileStable, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("paxos: open stable log: %w", err)
	}
	return &FileStable{f: f, path: path}, nil
}

// append frames and fsyncs one record.
func (s *FileStable) append(payload []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, err := s.f.Write(wire.AppendFrame(nil, payload)); err != nil {
		return fmt.Errorf("paxos: stable write: %w", err)
	}
	return s.f.Sync()
}

// SavePromise implements Stable.
func (s *FileStable) SavePromise(slot uint64, b Ballot) error {
	var p []byte
	p = append(p, stablePromise)
	p = wire.AppendUvarint(p, slot)
	p = wire.AppendUvarint(p, b.Round)
	p = wire.AppendUvarint(p, b.Node)
	return s.append(p)
}

// SaveAccepted implements Stable.
func (s *FileStable) SaveAccepted(slot uint64, b Ballot, value []byte) error {
	var p []byte
	p = append(p, stableAccept)
	p = wire.AppendUvarint(p, slot)
	p = wire.AppendUvarint(p, b.Round)
	p = wire.AppendUvarint(p, b.Node)
	p = wire.AppendBytes(p, value)
	return s.append(p)
}

// Load implements Stable. A torn final record (crash during append) ends
// replay silently.
func (s *FileStable) Load(fn func(slot uint64, promised Ballot, accepted bool, acceptedBallot Ballot, value []byte) error) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	data, err := os.ReadFile(s.path)
	if err != nil {
		return err
	}
	rest := data
	for len(rest) > 0 {
		payload, next, err := wire.Frame(rest)
		if err != nil {
			return nil // torn tail
		}
		rest = next
		if len(payload) < 1 {
			continue
		}
		kind := payload[0]
		body := payload[1:]
		var slot uint64
		var b Ballot
		if slot, body, err = wire.Uvarint(body); err != nil {
			return fmt.Errorf("paxos: stable record: %w", err)
		}
		if b.Round, body, err = wire.Uvarint(body); err != nil {
			return fmt.Errorf("paxos: stable record: %w", err)
		}
		if b.Node, body, err = wire.Uvarint(body); err != nil {
			return fmt.Errorf("paxos: stable record: %w", err)
		}
		switch kind {
		case stablePromise:
			if err := fn(slot, b, false, Ballot{}, nil); err != nil {
				return err
			}
		case stableAccept:
			var value []byte
			if value, _, err = wire.Bytes(body); err != nil {
				return fmt.Errorf("paxos: stable record: %w", err)
			}
			if err := fn(slot, Ballot{}, true, b, append([]byte(nil), value...)); err != nil {
				return err
			}
		}
	}
	return nil
}

// Close implements Stable.
func (s *FileStable) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.f.Close()
}

// SetStable installs durable acceptor storage on the node and replays its
// contents. Must be called before the node handles any message.
func (n *Node) SetStable(s Stable) error {
	n.mu.Lock()
	defer n.mu.Unlock()
	err := s.Load(func(slot uint64, promised Ballot, accepted bool, acceptedBallot Ballot, value []byte) error {
		if accepted {
			if cur, ok := n.accepted[slot]; !ok || cur.ballot.Less(acceptedBallot) {
				n.accepted[slot] = acceptedEntry{ballot: acceptedBallot, value: value}
			}
			if n.promised[slot].Less(acceptedBallot) {
				n.promised[slot] = acceptedBallot
			}
		} else if n.promised[slot].Less(promised) {
			n.promised[slot] = promised
		}
		return nil
	})
	if err != nil {
		return err
	}
	n.stable = s
	return nil
}
