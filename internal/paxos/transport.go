package paxos

import (
	"errors"
	"sync"

	"lambdastore/internal/rpc"
)

// ErrUnreachable models a partitioned or crashed peer in the local
// transport.
var ErrUnreachable = errors.New("paxos: peer unreachable")

// LocalTransport wires nodes together in-process. Tests use Disconnect to
// inject partitions and crashes.
type LocalTransport struct {
	mu    sync.RWMutex
	nodes map[uint64]*Node
	down  map[uint64]bool
}

// NewLocalTransport returns an empty in-process transport.
func NewLocalTransport() *LocalTransport {
	return &LocalTransport{nodes: make(map[uint64]*Node), down: make(map[uint64]bool)}
}

// Register attaches a node so peers can reach it.
func (t *LocalTransport) Register(n *Node) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.nodes[n.ID()] = n
}

// Disconnect makes peer unreachable (both directions) until Reconnect.
func (t *LocalTransport) Disconnect(id uint64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.down[id] = true
}

// Reconnect restores a previously disconnected peer.
func (t *LocalTransport) Reconnect(id uint64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	delete(t.down, id)
}

func (t *LocalTransport) get(peer uint64) (*Node, error) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	if t.down[peer] {
		return nil, ErrUnreachable
	}
	n, ok := t.nodes[peer]
	if !ok {
		return nil, ErrUnreachable
	}
	return n, nil
}

// Prepare implements Transport.
func (t *LocalTransport) Prepare(peer uint64, req *PrepareReq) (*PrepareResp, error) {
	n, err := t.get(peer)
	if err != nil {
		return nil, err
	}
	return n.HandlePrepare(req), nil
}

// Accept implements Transport.
func (t *LocalTransport) Accept(peer uint64, req *AcceptReq) (*AcceptResp, error) {
	n, err := t.get(peer)
	if err != nil {
		return nil, err
	}
	return n.HandleAccept(req), nil
}

// Learn implements Transport.
func (t *LocalTransport) Learn(peer uint64, req *LearnReq) error {
	n, err := t.get(peer)
	if err != nil {
		return err
	}
	n.HandleLearn(req)
	return nil
}

// RPC method names used by the network transport.
const (
	methodPrepare = "paxos.prepare"
	methodAccept  = "paxos.accept"
	methodLearn   = "paxos.learn"
)

// RegisterServer exposes a node's acceptor/learner roles on an RPC server.
func RegisterServer(srv *rpc.Server, n *Node) {
	srv.Handle(methodPrepare, func(body []byte) ([]byte, error) {
		req, err := DecodePrepareReq(body)
		if err != nil {
			return nil, err
		}
		return EncodePrepareResp(n.HandlePrepare(req)), nil
	})
	srv.Handle(methodAccept, func(body []byte) ([]byte, error) {
		req, err := DecodeAcceptReq(body)
		if err != nil {
			return nil, err
		}
		return EncodeAcceptResp(n.HandleAccept(req)), nil
	})
	srv.Handle(methodLearn, func(body []byte) ([]byte, error) {
		req, err := DecodeLearnReq(body)
		if err != nil {
			return nil, err
		}
		n.HandleLearn(req)
		return nil, nil
	})
}

// RPCTransport reaches peers over the rpc package. The local node's
// messages short-circuit in process.
type RPCTransport struct {
	self  *Node
	pool  *rpc.Pool
	addrs map[uint64]string
}

// NewRPCTransport builds a transport for self, given each peer's RPC
// address. self may be nil if the local node is registered in addrs too.
func NewRPCTransport(self *Node, pool *rpc.Pool, addrs map[uint64]string) *RPCTransport {
	cp := make(map[uint64]string, len(addrs))
	for k, v := range addrs {
		cp[k] = v
	}
	return &RPCTransport{self: self, pool: pool, addrs: cp}
}

// Prepare implements Transport.
func (t *RPCTransport) Prepare(peer uint64, req *PrepareReq) (*PrepareResp, error) {
	if t.self != nil && peer == t.self.ID() {
		return t.self.HandlePrepare(req), nil
	}
	addr, ok := t.addrs[peer]
	if !ok {
		return nil, ErrUnreachable
	}
	body, err := t.pool.Call(addr, methodPrepare, EncodePrepareReq(req))
	if err != nil {
		return nil, err
	}
	return DecodePrepareResp(body)
}

// Accept implements Transport.
func (t *RPCTransport) Accept(peer uint64, req *AcceptReq) (*AcceptResp, error) {
	if t.self != nil && peer == t.self.ID() {
		return t.self.HandleAccept(req), nil
	}
	addr, ok := t.addrs[peer]
	if !ok {
		return nil, ErrUnreachable
	}
	body, err := t.pool.Call(addr, methodAccept, EncodeAcceptReq(req))
	if err != nil {
		return nil, err
	}
	return DecodeAcceptResp(body)
}

// Learn implements Transport.
func (t *RPCTransport) Learn(peer uint64, req *LearnReq) error {
	if t.self != nil && peer == t.self.ID() {
		t.self.HandleLearn(req)
		return nil
	}
	addr, ok := t.addrs[peer]
	if !ok {
		return ErrUnreachable
	}
	_, err := t.pool.Call(addr, methodLearn, EncodeLearnReq(req))
	return err
}
