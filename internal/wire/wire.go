// Package wire implements the low-level binary encoding primitives shared
// by the write-ahead log, SSTable format, replication stream, and RPC
// framing: unsigned/signed varints, length-prefixed byte strings, and
// CRC-checksummed frames.
//
// All encoders append to a caller-supplied buffer and return the extended
// slice; all decoders consume from the front of a slice and return the
// remainder, so callers can chain them without extra allocation.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
)

// Encoding errors returned by the decode helpers.
var (
	ErrShortBuffer = errors.New("wire: buffer too short")
	ErrOverflow    = errors.New("wire: varint overflows 64 bits")
	ErrChecksum    = errors.New("wire: checksum mismatch")
	ErrTooLarge    = errors.New("wire: length prefix exceeds limit")
)

// castagnoli is the CRC-32C polynomial table used for all frame checksums,
// matching the polynomial LevelDB and most storage systems use.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Checksum returns the CRC-32C checksum of data.
func Checksum(data []byte) uint32 {
	return crc32.Checksum(data, castagnoli)
}

// AppendUvarint appends v in unsigned LEB128 form.
func AppendUvarint(dst []byte, v uint64) []byte {
	return binary.AppendUvarint(dst, v)
}

// AppendVarint appends v in zig-zag signed LEB128 form.
func AppendVarint(dst []byte, v int64) []byte {
	return binary.AppendVarint(dst, v)
}

// Uvarint decodes an unsigned varint from the front of b and returns the
// value and the remaining bytes.
func Uvarint(b []byte) (uint64, []byte, error) {
	v, n := binary.Uvarint(b)
	if n > 0 {
		return v, b[n:], nil
	}
	if n == 0 {
		return 0, b, ErrShortBuffer
	}
	return 0, b, ErrOverflow
}

// Varint decodes a signed varint from the front of b and returns the value
// and the remaining bytes.
func Varint(b []byte) (int64, []byte, error) {
	v, n := binary.Varint(b)
	if n > 0 {
		return v, b[n:], nil
	}
	if n == 0 {
		return 0, b, ErrShortBuffer
	}
	return 0, b, ErrOverflow
}

// AppendUint32 appends v in little-endian fixed width.
func AppendUint32(dst []byte, v uint32) []byte {
	return binary.LittleEndian.AppendUint32(dst, v)
}

// AppendUint64 appends v in little-endian fixed width.
func AppendUint64(dst []byte, v uint64) []byte {
	return binary.LittleEndian.AppendUint64(dst, v)
}

// Uint32 decodes a fixed-width little-endian uint32 from the front of b.
func Uint32(b []byte) (uint32, []byte, error) {
	if len(b) < 4 {
		return 0, b, ErrShortBuffer
	}
	return binary.LittleEndian.Uint32(b), b[4:], nil
}

// Uint64 decodes a fixed-width little-endian uint64 from the front of b.
func Uint64(b []byte) (uint64, []byte, error) {
	if len(b) < 8 {
		return 0, b, ErrShortBuffer
	}
	return binary.LittleEndian.Uint64(b), b[8:], nil
}

// MaxBytesLen bounds the length prefix accepted by Bytes to guard against
// corrupted or malicious inputs requesting absurd allocations.
const MaxBytesLen = 64 << 20 // 64 MiB

// AppendBytes appends a length-prefixed byte string.
func AppendBytes(dst, b []byte) []byte {
	dst = AppendUvarint(dst, uint64(len(b)))
	return append(dst, b...)
}

// AppendString appends a length-prefixed string.
func AppendString(dst []byte, s string) []byte {
	dst = AppendUvarint(dst, uint64(len(s)))
	return append(dst, s...)
}

// Bytes decodes a length-prefixed byte string. The returned slice aliases b;
// callers that retain it across buffer reuse must copy.
func Bytes(b []byte) ([]byte, []byte, error) {
	n, rest, err := Uvarint(b)
	if err != nil {
		return nil, b, err
	}
	if n > MaxBytesLen {
		return nil, b, fmt.Errorf("%w: %d bytes", ErrTooLarge, n)
	}
	if uint64(len(rest)) < n {
		return nil, b, ErrShortBuffer
	}
	return rest[:n], rest[n:], nil
}

// String decodes a length-prefixed string (copying out of b).
func String(b []byte) (string, []byte, error) {
	raw, rest, err := Bytes(b)
	if err != nil {
		return "", b, err
	}
	return string(raw), rest, nil
}

// AppendFrame appends payload wrapped in a checksummed frame:
//
//	uvarint length | payload | crc32c(payload) fixed32
//
// Frames are the unit of corruption detection in the WAL and the
// replication stream.
func AppendFrame(dst, payload []byte) []byte {
	dst = AppendUvarint(dst, uint64(len(payload)))
	dst = append(dst, payload...)
	return AppendUint32(dst, Checksum(payload))
}

// Frame decodes a checksummed frame, verifying the CRC. The returned payload
// aliases b.
func Frame(b []byte) ([]byte, []byte, error) {
	payload, rest, err := Bytes(b)
	if err != nil {
		return nil, b, err
	}
	sum, rest, err := Uint32(rest)
	if err != nil {
		return nil, b, err
	}
	if sum != Checksum(payload) {
		return nil, b, ErrChecksum
	}
	return payload, rest, nil
}

// AppendBytesSlice appends a count-prefixed sequence of byte strings.
func AppendBytesSlice(dst []byte, items [][]byte) []byte {
	dst = AppendUvarint(dst, uint64(len(items)))
	for _, it := range items {
		dst = AppendBytes(dst, it)
	}
	return dst
}

// BytesSlice decodes a count-prefixed sequence of byte strings. Each element
// aliases b.
func BytesSlice(b []byte) ([][]byte, []byte, error) {
	n, rest, err := Uvarint(b)
	if err != nil {
		return nil, b, err
	}
	// Each element needs at least one length byte, so the count can never
	// exceed the remaining buffer — reject early instead of trusting it.
	if n > uint64(len(rest)) {
		return nil, b, fmt.Errorf("%w: %d items in %d bytes", ErrTooLarge, n, len(rest))
	}
	items := make([][]byte, 0, n)
	for i := uint64(0); i < n; i++ {
		var it []byte
		it, rest, err = Bytes(rest)
		if err != nil {
			return nil, b, err
		}
		items = append(items, it)
	}
	return items, rest, nil
}
