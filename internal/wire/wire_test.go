package wire

import (
	"bytes"
	"math"
	"testing"
	"testing/quick"
)

func TestUvarintRoundTrip(t *testing.T) {
	for _, v := range []uint64{0, 1, 127, 128, 1 << 20, math.MaxUint64} {
		b := AppendUvarint(nil, v)
		got, rest, err := Uvarint(b)
		if err != nil || got != v || len(rest) != 0 {
			t.Fatalf("uvarint %d: got %d, rest %d, err %v", v, got, len(rest), err)
		}
	}
	if _, _, err := Uvarint(nil); err != ErrShortBuffer {
		t.Fatal("empty buffer must fail")
	}
}

func TestVarintRoundTrip(t *testing.T) {
	for _, v := range []int64{0, -1, 1, math.MinInt64, math.MaxInt64, -123456} {
		b := AppendVarint(nil, v)
		got, rest, err := Varint(b)
		if err != nil || got != v || len(rest) != 0 {
			t.Fatalf("varint %d: got %d, err %v", v, got, err)
		}
	}
}

func TestFixedWidthRoundTrip(t *testing.T) {
	b := AppendUint32(nil, 0xdeadbeef)
	b = AppendUint64(b, 0x0123456789abcdef)
	v32, rest, err := Uint32(b)
	if err != nil || v32 != 0xdeadbeef {
		t.Fatalf("u32 = %x, %v", v32, err)
	}
	v64, rest, err := Uint64(rest)
	if err != nil || v64 != 0x0123456789abcdef || len(rest) != 0 {
		t.Fatalf("u64 = %x, %v", v64, err)
	}
	if _, _, err := Uint32([]byte{1, 2}); err != ErrShortBuffer {
		t.Fatal("short u32 must fail")
	}
	if _, _, err := Uint64([]byte{1}); err != ErrShortBuffer {
		t.Fatal("short u64 must fail")
	}
}

func TestBytesAndString(t *testing.T) {
	b := AppendBytes(nil, []byte("hello"))
	b = AppendString(b, "")
	b = AppendBytes(b, nil)
	v, rest, err := Bytes(b)
	if err != nil || string(v) != "hello" {
		t.Fatalf("bytes = %q, %v", v, err)
	}
	s, rest, err := String(rest)
	if err != nil || s != "" {
		t.Fatalf("string = %q, %v", s, err)
	}
	v, rest, err = Bytes(rest)
	if err != nil || len(v) != 0 || len(rest) != 0 {
		t.Fatalf("nil bytes = %q, %v", v, err)
	}
	// Truncated payload.
	trunc := AppendUvarint(nil, 100)
	if _, _, err := Bytes(append(trunc, "short"...)); err != ErrShortBuffer {
		t.Fatalf("truncated bytes err = %v", err)
	}
	// Absurd length rejected before allocation.
	huge := AppendUvarint(nil, MaxBytesLen+1)
	if _, _, err := Bytes(huge); err == nil {
		t.Fatal("oversized length accepted")
	}
}

func TestFrame(t *testing.T) {
	payload := []byte("framed payload")
	b := AppendFrame(nil, payload)
	got, rest, err := Frame(b)
	if err != nil || !bytes.Equal(got, payload) || len(rest) != 0 {
		t.Fatalf("frame: %q %v", got, err)
	}
	// Corrupt one payload byte: checksum must catch it.
	bad := append([]byte(nil), b...)
	bad[2] ^= 0x40
	if _, _, err := Frame(bad); err != ErrChecksum {
		t.Fatalf("corrupt frame err = %v", err)
	}
	// Truncated frame.
	if _, _, err := Frame(b[:len(b)-2]); err == nil {
		t.Fatal("truncated frame accepted")
	}
}

func TestBytesSlice(t *testing.T) {
	items := [][]byte{[]byte("a"), nil, []byte("ccc"), {0, 1, 2}}
	b := AppendBytesSlice(nil, items)
	got, rest, err := BytesSlice(b)
	if err != nil || len(rest) != 0 {
		t.Fatal(err)
	}
	if len(got) != len(items) {
		t.Fatalf("len = %d", len(got))
	}
	for i := range items {
		if !bytes.Equal(got[i], items[i]) {
			t.Fatalf("item %d = %q", i, got[i])
		}
	}
	if _, _, err := BytesSlice([]byte{5}); err == nil {
		t.Fatal("truncated slice accepted")
	}
}

func TestQuickRoundTrips(t *testing.T) {
	f := func(u uint64, i int64, raw []byte, items [][]byte) bool {
		var b []byte
		b = AppendUvarint(b, u)
		b = AppendVarint(b, i)
		b = AppendBytes(b, raw)
		b = AppendBytesSlice(b, items)
		b = AppendFrame(b, raw)

		gu, rest, err := Uvarint(b)
		if err != nil || gu != u {
			return false
		}
		gi, rest, err := Varint(rest)
		if err != nil || gi != i {
			return false
		}
		graw, rest, err := Bytes(rest)
		if err != nil || !bytes.Equal(graw, raw) {
			return false
		}
		gitems, rest, err := BytesSlice(rest)
		if err != nil || len(gitems) != len(items) {
			return false
		}
		for j := range items {
			if !bytes.Equal(gitems[j], items[j]) {
				return false
			}
		}
		gframe, rest, err := Frame(rest)
		return err == nil && bytes.Equal(gframe, raw) && len(rest) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}

func TestDecodersNeverPanicOnGarbage(t *testing.T) {
	f := func(garbage []byte) bool {
		Uvarint(garbage)
		Varint(garbage)
		Uint32(garbage)
		Uint64(garbage)
		Bytes(garbage)
		String(garbage)
		BytesSlice(garbage)
		Frame(garbage)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}
