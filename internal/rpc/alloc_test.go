package rpc

import (
	"bytes"
	"testing"
)

// frameBytes encodes one request message as a length-prefixed wire frame.
func frameBytes(bodyLen int) []byte {
	m := &message{kind: msgRequest, id: 7, method: "repl.applyBatch", body: make([]byte, bodyLen)}
	payload := m.encode(nil)
	frame := make([]byte, 4+len(payload))
	frame[0] = byte(len(payload) >> 24)
	frame[1] = byte(len(payload) >> 16)
	frame[2] = byte(len(payload) >> 8)
	frame[3] = byte(len(payload))
	copy(frame[4:], payload)
	return frame
}

// BenchmarkReadFrame measures the receive path's per-frame allocations:
// with pooled frame buffers and a body that aliases the pooled buffer
// (no unconditional copy), steady state should allocate only the message
// header object per frame.
func BenchmarkReadFrame(b *testing.B) {
	frame := frameBytes(4 << 10)
	r := bytes.NewReader(frame)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Reset(frame)
		m, err := readFrame(r)
		if err != nil {
			b.Fatal(err)
		}
		m.release()
	}
}

// TestReadFrameAllocBound guards the decodeMessage zero-copy change: the
// pooled receive path must stay at a couple of allocations per frame (the
// message struct; never a body copy, which would scale with frame size).
func TestReadFrameAllocBound(t *testing.T) {
	frame := frameBytes(64 << 10)
	r := bytes.NewReader(frame)
	// Warm the frame-buffer pool.
	for i := 0; i < 8; i++ {
		r.Reset(frame)
		m, err := readFrame(r)
		if err != nil {
			t.Fatal(err)
		}
		m.release()
	}
	allocs := testing.AllocsPerRun(100, func() {
		r.Reset(frame)
		m, err := readFrame(r)
		if err != nil {
			t.Fatal(err)
		}
		m.release()
	})
	// A 64 KiB body copy would show up as a large per-run allocation; the
	// zero-copy path allocates only small fixed-size objects.
	if allocs > 3 {
		t.Fatalf("readFrame allocs/op = %.1f, want <= 3 (body must alias the pooled buffer)", allocs)
	}
}
