package rpc

import (
	"bytes"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"lambdastore/internal/telemetry"
)

func startEcho(t *testing.T) (*Server, string) {
	t.Helper()
	s := NewServer()
	s.Handle("echo", func(body []byte) ([]byte, error) {
		return body, nil
	})
	s.Handle("fail", func(body []byte) ([]byte, error) {
		return nil, fmt.Errorf("deliberate failure: %s", body)
	})
	s.Handle("slow", func(body []byte) ([]byte, error) {
		time.Sleep(200 * time.Millisecond)
		return body, nil
	})
	addr, err := s.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatalf("Serve: %v", err)
	}
	t.Cleanup(func() { s.Close() })
	return s, addr
}

func TestCallRoundTrip(t *testing.T) {
	_, addr := startEcho(t)
	c, err := Dial(addr, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	for i := 0; i < 10; i++ {
		msg := []byte(fmt.Sprintf("payload-%d", i))
		got, err := c.Call("echo", msg)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, msg) {
			t.Fatalf("echo = %q", got)
		}
	}
}

func TestRemoteError(t *testing.T) {
	_, addr := startEcho(t)
	c, err := Dial(addr, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	_, err = c.Call("fail", []byte("boom"))
	var re *RemoteError
	if !errors.As(err, &re) {
		t.Fatalf("err = %v, want RemoteError", err)
	}
	if !strings.Contains(re.Msg, "deliberate failure: boom") {
		t.Fatalf("remote msg = %q", re.Msg)
	}
}

func TestNoSuchMethod(t *testing.T) {
	_, addr := startEcho(t)
	c, err := Dial(addr, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	_, err = c.Call("missing", nil)
	var re *RemoteError
	if !errors.As(err, &re) || !strings.Contains(re.Msg, "no such method") {
		t.Fatalf("err = %v", err)
	}
}

func TestConcurrentCallsMultiplex(t *testing.T) {
	_, addr := startEcho(t)
	c, err := Dial(addr, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	const n = 64
	var wg sync.WaitGroup
	errs := make(chan error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			msg := []byte(fmt.Sprintf("concurrent-%d", i))
			got, err := c.Call("echo", msg)
			if err != nil {
				errs <- err
				return
			}
			if !bytes.Equal(got, msg) {
				errs <- fmt.Errorf("response mismatch: %q vs %q", got, msg)
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

func TestSlowHandlerDoesNotBlockFastOnes(t *testing.T) {
	_, addr := startEcho(t)
	c, err := Dial(addr, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	slowDone := make(chan struct{})
	go func() {
		defer close(slowDone)
		if _, err := c.Call("slow", []byte("s")); err != nil {
			t.Errorf("slow: %v", err)
		}
	}()
	// Give the slow request a head start on the same connection.
	time.Sleep(20 * time.Millisecond)
	start := time.Now()
	if _, err := c.Call("echo", []byte("fast")); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d > 150*time.Millisecond {
		t.Fatalf("fast call took %v behind a slow one", d)
	}
	<-slowDone
}

func TestCallTimeout(t *testing.T) {
	_, addr := startEcho(t)
	c, err := Dial(addr, &ClientOptions{Timeout: 30 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	_, err = c.Call("slow", nil)
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("err = %v, want ErrTimeout", err)
	}
}

func TestServerCloseFailsInFlight(t *testing.T) {
	s, addr := startEcho(t)
	c, err := Dial(addr, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	done := make(chan error, 1)
	go func() {
		_, err := c.Call("slow", nil)
		done <- err
	}()
	time.Sleep(20 * time.Millisecond)
	s.Close()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("in-flight call succeeded past server close")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("in-flight call hung after server close")
	}
}

func TestClientCloseFailsCalls(t *testing.T) {
	_, addr := startEcho(t)
	c, err := Dial(addr, nil)
	if err != nil {
		t.Fatal(err)
	}
	c.Close()
	if _, err := c.Call("echo", nil); !errors.Is(err, ErrClosed) {
		t.Fatalf("err = %v, want ErrClosed", err)
	}
}

func TestInjectedDelay(t *testing.T) {
	_, addr := startEcho(t)
	c, err := Dial(addr, &ClientOptions{Delay: 25 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	start := time.Now()
	if _, err := c.Call("echo", []byte("x")); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d < 50*time.Millisecond {
		t.Fatalf("call with 2x25ms injected delay took only %v", d)
	}
}

func TestPoolRedialsAfterFailure(t *testing.T) {
	s, addr := startEcho(t)
	p := NewPool(nil)
	defer p.Close()
	if _, err := p.Call(addr, "echo", []byte("a")); err != nil {
		t.Fatal(err)
	}
	// Kill the server's connections; the pooled client fails.
	s.Close()
	if _, err := p.Call(addr, "echo", []byte("b")); err == nil {
		t.Fatal("call to closed server succeeded")
	}

	// Restart a server on the same address.
	s2 := NewServer()
	s2.Handle("echo", func(b []byte) ([]byte, error) { return b, nil })
	if _, err := s2.Serve(addr); err != nil {
		t.Skipf("could not rebind %s: %v", addr, err)
	}
	defer s2.Close()
	// Pool must detect the dead client and redial.
	deadline := time.Now().Add(2 * time.Second)
	for {
		if _, err := p.Call(addr, "echo", []byte("c")); err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("pool never recovered")
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestMessageEncodeDecode(t *testing.T) {
	m := &message{kind: msgRequest, id: 77, method: "do.thing", body: []byte{1, 2, 3}}
	dec, err := decodeMessage(m.encode(nil))
	if err != nil {
		t.Fatal(err)
	}
	if dec.kind != msgRequest || dec.id != 77 || dec.method != "do.thing" || !bytes.Equal(dec.body, []byte{1, 2, 3}) {
		t.Fatalf("decoded %+v", dec)
	}
	if _, err := decodeMessage(nil); err == nil {
		t.Fatal("empty message decoded")
	}
	if _, err := decodeMessage([]byte{1}); err == nil {
		t.Fatal("truncated message decoded")
	}
}

func TestLargePayload(t *testing.T) {
	_, addr := startEcho(t)
	c, err := Dial(addr, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	big := bytes.Repeat([]byte("0123456789abcdef"), 1<<16) // 1 MiB
	got, err := c.Call("echo", big)
	if err != nil || !bytes.Equal(got, big) {
		t.Fatalf("large echo failed: len=%d err=%v", len(got), err)
	}
}

func TestTraceContextPropagation(t *testing.T) {
	s := NewServer()
	var mu sync.Mutex
	var seen []telemetry.SpanContext
	s.HandleCtx("traced", func(info CallInfo, body []byte) ([]byte, error) {
		mu.Lock()
		seen = append(seen, info.Trace)
		mu.Unlock()
		return body, nil
	})
	addr, err := s.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	c, err := Dial(addr, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	ctx := telemetry.SpanContext{Trace: 0xdeadbeef, Span: 0x1234}
	if _, err := c.CallCtx(ctx, "traced", []byte("x")); err != nil {
		t.Fatal(err)
	}
	// A plain Call must arrive untraced.
	if _, err := c.Call("traced", []byte("y")); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(seen) != 2 {
		t.Fatalf("handler saw %d calls", len(seen))
	}
	if seen[0] != ctx {
		t.Fatalf("handler saw context %+v, want %+v", seen[0], ctx)
	}
	if seen[1].Valid() {
		t.Fatalf("untraced call carried context %+v", seen[1])
	}
}

func TestPoolCallCtxAndTelemetry(t *testing.T) {
	s := NewServer()
	reg := telemetry.NewRegistry()
	s.SetTelemetry(reg)
	var got telemetry.SpanContext
	s.HandleCtx("probe", func(info CallInfo, body []byte) ([]byte, error) {
		got = info.Trace
		return body, nil
	})
	addr, err := s.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	p := NewPool(nil)
	p.SetTelemetry(reg)
	defer p.Close()
	ctx := telemetry.NewRootContext()
	if _, err := p.CallCtx(addr, ctx, "probe", []byte("z")); err != nil {
		t.Fatal(err)
	}
	if got != ctx {
		t.Fatalf("pool call carried %+v, want %+v", got, ctx)
	}
	if n := reg.Counter("rpc.server.requests").Value(); n != 1 {
		t.Fatalf("rpc.server.requests = %d", n)
	}
	if n := reg.Counter("rpc.client.calls").Value(); n != 1 {
		t.Fatalf("rpc.client.calls = %d", n)
	}
	if n := reg.Counter("rpc.server.rx_bytes").Value(); n == 0 {
		t.Fatal("rpc.server.rx_bytes not counted")
	}
}
