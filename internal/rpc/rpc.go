// Package rpc is the network substrate of LambdaStore: a compact
// length-framed request/response protocol over TCP with per-connection
// multiplexing (many in-flight requests share one connection), per-call
// timeouts, and an injectable artificial delay used by the benchmark
// harness to emulate LAN/WAN round-trip times on loopback.
//
// In the paper's architecture this carries client→node invocations,
// compute→storage accesses in the disaggregated baseline, primary→backup
// replication, and the Paxos coordination traffic.
package rpc

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"lambdastore/internal/fault"
	"lambdastore/internal/telemetry"
	"lambdastore/internal/wire"
)

// Errors returned by clients and servers.
var (
	ErrClosed   = errors.New("rpc: connection closed")
	ErrTimeout  = errors.New("rpc: call timed out")
	ErrNoMethod = errors.New("rpc: no such method")
)

// maxFrame bounds a single message to protect against corrupt peers.
const maxFrame = 64 << 20

// message types.
const (
	msgRequest  = 1
	msgResponse = 2
)

// RemoteError is an application error propagated from the server; the
// method handler's error string survives the wire.
type RemoteError struct{ Msg string }

func (e *RemoteError) Error() string { return "rpc: remote: " + e.Msg }

// message is the wire unit. Requests additionally carry the caller's trace
// context (zero when untraced) so spans recorded on different nodes link
// into one distributed trace.
type message struct {
	kind   byte
	id     uint64
	trace  uint64 // requests only: trace the call belongs to
	parent uint64 // requests only: caller's span, parent of callee spans
	method string // requests only
	errStr string // responses only
	body   []byte
	// raw, when set, is the pooled frame buffer that body aliases; release
	// returns it for reuse. Servers release after the handler and response
	// write; clients never release (body ownership passes to the caller).
	raw *[]byte
}

// release recycles the message's pooled frame buffer. The body must not be
// used after release.
func (m *message) release() {
	if m.raw != nil {
		putFrameBuf(m.raw)
		m.raw = nil
		m.body = nil
	}
}

// framePool recycles inbound frame buffers. Entries are *[]byte so Put does
// not allocate an interface header per recycle.
var framePool = sync.Pool{New: func() any { return new([]byte) }}

// maxPooledFrame bounds what readFrame returns to the pool, so one huge
// state-transfer frame does not pin megabytes in every pool shard.
const maxPooledFrame = 1 << 20

func getFrameBuf(n int) *[]byte {
	p := framePool.Get().(*[]byte)
	if cap(*p) < n {
		*p = make([]byte, n)
	}
	*p = (*p)[:n]
	return p
}

func putFrameBuf(p *[]byte) {
	if cap(*p) > maxPooledFrame {
		return
	}
	framePool.Put(p)
}

func (m *message) encode(dst []byte) []byte {
	dst = append(dst, m.kind)
	dst = wire.AppendUvarint(dst, m.id)
	dst = wire.AppendUvarint(dst, m.trace)
	dst = wire.AppendUvarint(dst, m.parent)
	dst = wire.AppendString(dst, m.method)
	dst = wire.AppendString(dst, m.errStr)
	dst = wire.AppendBytes(dst, m.body)
	return dst
}

func decodeMessage(b []byte) (*message, error) {
	if len(b) < 1 {
		return nil, fmt.Errorf("rpc: empty message")
	}
	m := &message{kind: b[0]}
	rest := b[1:]
	var err error
	if m.id, rest, err = wire.Uvarint(rest); err != nil {
		return nil, fmt.Errorf("rpc: message id: %w", err)
	}
	if m.trace, rest, err = wire.Uvarint(rest); err != nil {
		return nil, fmt.Errorf("rpc: message trace: %w", err)
	}
	if m.parent, rest, err = wire.Uvarint(rest); err != nil {
		return nil, fmt.Errorf("rpc: message parent span: %w", err)
	}
	if m.method, rest, err = wire.String(rest); err != nil {
		return nil, fmt.Errorf("rpc: message method: %w", err)
	}
	if m.errStr, rest, err = wire.String(rest); err != nil {
		return nil, fmt.Errorf("rpc: message error: %w", err)
	}
	var body []byte
	if body, _, err = wire.Bytes(rest); err != nil {
		return nil, fmt.Errorf("rpc: message body: %w", err)
	}
	// The body aliases b; when b is a pooled frame buffer the caller sets
	// m.raw and controls the buffer's lifetime (no copy on the hot path).
	m.body = body
	return m, nil
}

// readFrame receives one message. The message body aliases a pooled buffer:
// the caller owns it until message.release (or forever, if never released).
func readFrame(r io.Reader) (*message, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > maxFrame {
		return nil, fmt.Errorf("rpc: frame of %d bytes exceeds limit", n)
	}
	p := getFrameBuf(int(n))
	if _, err := io.ReadFull(r, *p); err != nil {
		putFrameBuf(p)
		return nil, err
	}
	m, err := decodeMessage(*p)
	if err != nil {
		putFrameBuf(p)
		return nil, err
	}
	m.raw = p
	return m, nil
}

// connWriter serializes outbound frames on one connection. With coalescing
// enabled (the default), concurrent writers append their encoded frames to
// a shared buffer and the first writer becomes the flusher: it repeatedly
// swaps the pending buffer out and issues one conn.Write for everything
// queued, so N concurrent frames cost one syscall instead of N. Riders
// return immediately; a failed flush poisons the writer and closes the
// connection, which surfaces the failure to riders through the reader side
// (failAll on clients, conn teardown on servers).
type connWriter struct {
	conn     net.Conn
	coalesce bool

	mu       sync.Mutex
	buf      []byte // pending encoded frames
	spare    []byte // ping-pong buffer reused by the flusher
	flushing bool
	err      error

	// coalesced counts frames that rode an existing flush instead of
	// paying their own Write ("rpc.frames_coalesced").
	coalesced atomic.Pointer[telemetry.Counter]
}

func newConnWriter(conn net.Conn, coalesce bool) *connWriter {
	return &connWriter{conn: conn, coalesce: coalesce}
}

// writeMsg encodes and sends m. With coalescing, a nil return means the
// frame is queued behind an active flusher and will reach the wire (or the
// connection will die trying).
func (w *connWriter) writeMsg(m *message) error {
	w.mu.Lock()
	if w.err != nil {
		err := w.err
		w.mu.Unlock()
		return err
	}
	// Append one length-prefixed frame: 4-byte placeholder, encode, patch.
	off := len(w.buf)
	w.buf = append(w.buf, 0, 0, 0, 0)
	w.buf = m.encode(w.buf)
	binary.BigEndian.PutUint32(w.buf[off:], uint32(len(w.buf)-off-4))

	if !w.coalesce {
		// Serialized write under the lock (the pre-coalescing behavior);
		// the lock must cover conn.Write because net.Conn loops on partial
		// writes and an interleaved writer would tear frames.
		buf := w.buf
		_, err := w.conn.Write(buf)
		w.buf = buf[:0]
		if err != nil {
			w.err = err
		}
		w.mu.Unlock()
		if err != nil {
			w.conn.Close()
		}
		return err
	}
	if w.flushing {
		// An active flusher will pick this frame up on its next round.
		if c := w.coalesced.Load(); c != nil {
			c.Inc()
		}
		w.mu.Unlock()
		return nil
	}
	w.flushing = true
	for len(w.buf) > 0 && w.err == nil {
		buf := w.buf
		w.buf = w.spare[:0]
		w.spare = nil
		w.mu.Unlock()
		_, err := w.conn.Write(buf)
		w.mu.Lock()
		w.spare = buf[:0]
		if err != nil {
			w.err = err
		}
	}
	w.flushing = false
	err := w.err
	w.mu.Unlock()
	if err != nil {
		// Riders already returned nil for frames in the failed flush; kill
		// the connection so the reader side fails their calls.
		w.conn.Close()
	}
	return err
}

// fail poisons the writer so queued and future writes return err.
func (w *connWriter) fail(err error) {
	w.mu.Lock()
	if w.err == nil {
		w.err = err
	}
	w.mu.Unlock()
}

// Handler serves one method. The returned bytes become the response body;
// a non-nil error is sent to the caller as a RemoteError.
type Handler func(body []byte) ([]byte, error)

// CallInfo carries per-request metadata into a handler: the caller's trace
// context, restored from the request frame, and the connection's remote
// address — the frame identity admission quotas key off when the client
// did not declare a tenant.
type CallInfo struct {
	Trace telemetry.SpanContext
	Peer  string
}

// HandlerCtx is a Handler that also receives the request's CallInfo.
type HandlerCtx func(info CallInfo, body []byte) ([]byte, error)

// serverMetrics holds the pre-resolved instruments of an instrumented
// server; nil means uninstrumented (zero overhead beyond one branch).
type serverMetrics struct {
	requests  *telemetry.Counter
	inFlight  *telemetry.Gauge
	rxBytes   *telemetry.Counter
	txBytes   *telemetry.Counter
	handleUs  *telemetry.Histogram
	coalesced *telemetry.Counter
}

// Server accepts connections and dispatches requests to registered
// handlers. Each request runs in its own goroutine, so slow handlers do not
// head-of-line block the connection.
type Server struct {
	mu       sync.RWMutex
	handlers map[string]HandlerCtx
	ln       net.Listener
	conns    map[net.Conn]struct{}
	closed   bool
	wg       sync.WaitGroup
	// noCoalesce disables per-connection response-write coalescing
	// (ablation; see SetWriteCoalescing).
	noCoalesce bool

	metrics *serverMetrics

	// faultLabel identifies this server to the fault plane (rpc.recv key);
	// Serve sets it to the bound address.
	faultLabel atomic.Pointer[string]
}

// NewServer returns a server with no handlers.
func NewServer() *Server {
	return &Server{
		handlers: make(map[string]HandlerCtx),
		conns:    make(map[net.Conn]struct{}),
	}
}

// SetTelemetry wires the server's hot-path counters into reg: requests,
// in-flight requests, and bytes on the wire. Call before Serve.
func (s *Server) SetTelemetry(reg *telemetry.Registry) {
	if reg == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.metrics = &serverMetrics{
		requests:  reg.Counter("rpc.server.requests"),
		inFlight:  reg.Gauge("rpc.server.in_flight"),
		rxBytes:   reg.Counter("rpc.server.rx_bytes"),
		txBytes:   reg.Counter("rpc.server.tx_bytes"),
		handleUs:  reg.Histogram("rpc.server.handle"),
		coalesced: reg.Counter("rpc.frames_coalesced"),
	}
}

// SetWriteCoalescing toggles per-connection coalescing of response writes
// (default on). Call before Serve; used by the write-path ablation.
func (s *Server) SetWriteCoalescing(enabled bool) {
	s.mu.Lock()
	s.noCoalesce = !enabled
	s.mu.Unlock()
}

// Handle registers fn for method, replacing any existing registration.
func (s *Server) Handle(method string, fn Handler) {
	s.HandleCtx(method, func(_ CallInfo, body []byte) ([]byte, error) { return fn(body) })
}

// HandleCtx registers a context-aware handler for method.
func (s *Server) HandleCtx(method string, fn HandlerCtx) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.handlers[method] = fn
}

// Serve starts accepting on addr ("host:port", empty port for ephemeral)
// and returns the bound address. Serving continues until Close.
func (s *Server) Serve(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("rpc: listen: %w", err)
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		ln.Close()
		return "", ErrClosed
	}
	s.ln = ln
	s.mu.Unlock()

	label := ln.Addr().String()
	s.faultLabel.Store(&label)

	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			s.mu.Lock()
			if s.closed {
				s.mu.Unlock()
				conn.Close()
				return
			}
			s.conns[conn] = struct{}{}
			s.mu.Unlock()
			s.wg.Add(1)
			go s.serveConn(conn)
		}
	}()
	return ln.Addr().String(), nil
}

// Addr returns the listen address, or "" before Serve.
func (s *Server) Addr() string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.ln == nil {
		return ""
	}
	return s.ln.Addr().String()
}

func (s *Server) serveConn(conn net.Conn) {
	defer s.wg.Done()
	defer func() {
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		conn.Close()
	}()
	s.mu.RLock()
	coalesce := !s.noCoalesce
	srvMetrics := s.metrics
	s.mu.RUnlock()
	cw := newConnWriter(conn, coalesce)
	if srvMetrics != nil {
		cw.coalesced.Store(srvMetrics.coalesced)
	}
	peer := conn.RemoteAddr().String()
	var reqWG sync.WaitGroup
	defer reqWG.Wait()
	for {
		msg, err := readFrame(conn)
		if err != nil {
			return
		}
		if msg.kind != msgRequest {
			msg.release()
			continue
		}
		if fault.Enabled() {
			label := ""
			if l := s.faultLabel.Load(); l != nil {
				label = *l
			}
			d := fault.Eval(fault.SiteRPCRecv, label)
			if d.CrashConn {
				msg.release()
				return // deferred cleanup closes the connection
			}
			if d.Drop {
				msg.release()
				continue // the request vanishes; the caller times out
			}
			if d.Delay > 0 {
				time.Sleep(d.Delay)
			}
			if d.Err != nil {
				cw.writeMsg(&message{kind: msgResponse, id: msg.id, errStr: d.Err.Error()}) //nolint:errcheck // writeMsg closes the conn on failure
				msg.release()
				continue
			}
		}
		s.mu.RLock()
		h := s.handlers[msg.method]
		m := s.metrics
		s.mu.RUnlock()
		if m != nil {
			m.requests.Inc()
			m.rxBytes.Add(uint64(len(msg.body)))
			m.inFlight.Inc()
		}
		reqWG.Add(1)
		go func(msg *message) {
			defer reqWG.Done()
			start := time.Time{}
			if m != nil {
				start = time.Now()
			}
			info := CallInfo{Trace: telemetry.SpanContext{Trace: msg.trace, Span: msg.parent}, Peer: peer}
			resp := &message{kind: msgResponse, id: msg.id}
			if h == nil {
				resp.errStr = ErrNoMethod.Error() + ": " + msg.method
			} else if body, err := h(info, msg.body); err != nil {
				resp.errStr = err.Error()
			} else {
				resp.body = body
			}
			if m != nil {
				m.handleUs.RecordTraced(time.Since(start), msg.trace)
				m.txBytes.Add(uint64(len(resp.body)))
				m.inFlight.Dec()
			}
			// The handler has run and writeMsg has copied the response
			// into the connection buffer, so the request's pooled frame —
			// which resp.body may alias via the handler — can be recycled.
			cw.writeMsg(resp) //nolint:errcheck // writeMsg closes the conn on failure
			msg.release()
		}(msg)
	}
}

// Close stops accepting, closes all connections and waits for handlers.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	ln := s.ln
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	if ln != nil {
		ln.Close()
	}
	s.wg.Wait()
	return nil
}

// ClientOptions tunes a client connection.
type ClientOptions struct {
	// Timeout bounds each Call; zero means 30s.
	Timeout time.Duration
	// Delay is an artificial one-way network delay added to every call
	// (applied twice: request and response legs). The benchmark harness
	// uses it to emulate non-loopback networks.
	Delay time.Duration
	// DialTimeout bounds connection establishment; zero means 5s.
	DialTimeout time.Duration
	// DisableWriteCoalescing turns off per-connection batching of request
	// writes (every call then pays its own conn.Write). Used by the
	// write-path ablation.
	DisableWriteCoalescing bool
}

func (o *ClientOptions) sanitize() ClientOptions {
	var out ClientOptions
	if o != nil {
		out = *o
	}
	if out.Timeout <= 0 {
		out.Timeout = 30 * time.Second
	}
	if out.DialTimeout <= 0 {
		out.DialTimeout = 5 * time.Second
	}
	return out
}

// clientMetrics holds the pre-resolved instruments of an instrumented
// client; nil means uninstrumented.
type clientMetrics struct {
	calls     *telemetry.Counter
	inFlight  *telemetry.Gauge
	rxBytes   *telemetry.Counter
	txBytes   *telemetry.Counter
	callUs    *telemetry.Histogram
	coalesced *telemetry.Counter
}

// newClientMetrics resolves the shared outbound-call instruments.
func newClientMetrics(reg *telemetry.Registry) *clientMetrics {
	if reg == nil {
		return nil
	}
	return &clientMetrics{
		calls:     reg.Counter("rpc.client.calls"),
		inFlight:  reg.Gauge("rpc.client.in_flight"),
		rxBytes:   reg.Counter("rpc.client.rx_bytes"),
		txBytes:   reg.Counter("rpc.client.tx_bytes"),
		callUs:    reg.Histogram("rpc.client.call"),
		coalesced: reg.Counter("rpc.frames_coalesced"),
	}
}

// Client is a multiplexing connection to one server. Safe for concurrent
// use; a failed connection fails all in-flight calls.
type Client struct {
	opts ClientOptions
	peer string // remote address (fault-plane key for rpc.send)
	from string // owner's fault label (partition-matrix endpoint)

	mu      sync.Mutex
	conn    net.Conn
	nextID  uint64
	pending map[uint64]chan *message
	closed  bool
	cw      *connWriter

	metrics atomic.Pointer[clientMetrics]
}

// setMetrics installs the shared instruments, including the connWriter's
// coalesced-frames counter.
func (c *Client) setMetrics(m *clientMetrics) {
	c.metrics.Store(m)
	if m != nil {
		c.cw.coalesced.Store(m.coalesced)
	}
}

// Dial connects to addr.
func Dial(addr string, opts *ClientOptions) (*Client, error) {
	return dialFrom(addr, opts, "")
}

// dialFrom is Dial labelled with the caller's fault-plane identity (pools
// propagate their owner's label so link partitions can name both ends).
func dialFrom(addr string, opts *ClientOptions, from string) (*Client, error) {
	o := opts.sanitize()
	if fault.Enabled() {
		if fault.Partitioned(from, addr) {
			return nil, fmt.Errorf("rpc: dial %s: %w", addr, fault.ErrPartitioned)
		}
		d := fault.Eval(fault.SiteRPCDial, addr)
		if d.Delay > 0 {
			time.Sleep(d.Delay)
		}
		if d.Err != nil {
			return nil, fmt.Errorf("rpc: dial %s: %w", addr, d.Err)
		}
	}
	conn, err := net.DialTimeout("tcp", addr, o.DialTimeout)
	if err != nil {
		return nil, fmt.Errorf("rpc: dial %s: %w", addr, err)
	}
	if tc, ok := conn.(*net.TCPConn); ok {
		tc.SetNoDelay(true)
	}
	c := &Client{
		opts:    o,
		peer:    addr,
		from:    from,
		pending: make(map[uint64]chan *message),
		conn:    conn,
		cw:      newConnWriter(conn, !o.DisableWriteCoalescing),
	}
	go c.readLoop()
	return c, nil
}

func (c *Client) readLoop() {
	for {
		msg, err := readFrame(c.conn)
		if err != nil {
			c.failAll(err)
			return
		}
		if msg.kind != msgResponse {
			continue
		}
		c.mu.Lock()
		ch := c.pending[msg.id]
		delete(c.pending, msg.id)
		c.mu.Unlock()
		if ch != nil {
			ch <- msg
		}
	}
}

// failAll closes the client and fails every in-flight call.
func (c *Client) failAll(err error) {
	c.mu.Lock()
	pending := c.pending
	c.pending = make(map[uint64]chan *message)
	c.closed = true
	c.mu.Unlock()
	c.conn.Close()
	for _, ch := range pending {
		ch <- &message{kind: msgResponse, errStr: ErrClosed.Error()}
	}
}

// Call invokes method with body and waits for the response.
func (c *Client) Call(method string, body []byte) ([]byte, error) {
	return c.CallCtx(telemetry.SpanContext{}, method, body)
}

// CallCtx invokes method with body, attaching the caller's trace context to
// the request frame so the server's spans join the caller's trace.
func (c *Client) CallCtx(ctx telemetry.SpanContext, method string, body []byte) ([]byte, error) {
	m := c.metrics.Load()
	var start time.Time
	if m != nil {
		m.calls.Inc()
		m.txBytes.Add(uint64(len(body)))
		m.inFlight.Inc()
		defer m.inFlight.Dec()
		start = time.Now()
	}
	resp, err := c.call(ctx, method, body)
	if m != nil {
		m.callUs.RecordTraced(time.Since(start), ctx.Trace)
		m.rxBytes.Add(uint64(len(resp)))
	}
	return resp, err
}

func (c *Client) call(ctx telemetry.SpanContext, method string, body []byte) ([]byte, error) {
	if c.opts.Delay > 0 {
		time.Sleep(c.opts.Delay)
	}
	var drop, dup bool
	if fault.Enabled() {
		if fault.Partitioned(c.from, c.peer) {
			return nil, fmt.Errorf("rpc: send %s: %w", c.peer, fault.ErrPartitioned)
		}
		d := fault.Eval(fault.SiteRPCSend, c.peer)
		if d.Delay > 0 {
			time.Sleep(d.Delay)
		}
		if d.Err != nil {
			return nil, fmt.Errorf("rpc: send %s: %w", c.peer, d.Err)
		}
		if d.CrashConn {
			c.failAll(ErrClosed)
			return nil, ErrClosed
		}
		drop, dup = d.Drop, d.Duplicate
	}
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil, ErrClosed
	}
	c.nextID++
	id := c.nextID
	ch := make(chan *message, 1)
	c.pending[id] = ch
	c.mu.Unlock()

	req := &message{kind: msgRequest, id: id, trace: ctx.Trace, parent: ctx.Span, method: method, body: body}
	if !drop {
		err := c.cw.writeMsg(req)
		if err == nil && dup {
			// Injected duplicate: the server dispatches the request twice;
			// the response matcher drops the second reply.
			err = c.cw.writeMsg(req)
		}
		if err != nil {
			c.mu.Lock()
			delete(c.pending, id)
			c.mu.Unlock()
			return nil, fmt.Errorf("rpc: send: %w", err)
		}
	}

	timer := time.NewTimer(c.opts.Timeout)
	defer timer.Stop()
	select {
	case resp := <-ch:
		if c.opts.Delay > 0 {
			time.Sleep(c.opts.Delay)
		}
		if resp.errStr != "" {
			if resp.errStr == ErrClosed.Error() {
				return nil, ErrClosed
			}
			return nil, &RemoteError{Msg: resp.errStr}
		}
		return resp.body, nil
	case <-timer.C:
		c.mu.Lock()
		delete(c.pending, id)
		c.mu.Unlock()
		return nil, fmt.Errorf("%w: %s", ErrTimeout, method)
	}
}

// Close tears the connection down, failing in-flight calls.
func (c *Client) Close() error {
	c.failAll(ErrClosed)
	return nil
}

// Closed reports whether the client connection has failed or been closed.
func (c *Client) Closed() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.closed
}

// Pool hands out clients per address, redialing transparently after
// failures. It is how nodes reach each other without per-call dials.
type Pool struct {
	opts ClientOptions

	mu      sync.Mutex
	clients map[string]*Client
	metrics *clientMetrics
	label   string // fault-plane identity of the pool's owner
}

// NewPool returns an empty pool using opts for every connection.
func NewPool(opts *ClientOptions) *Pool {
	return &Pool{opts: opts.sanitize(), clients: make(map[string]*Client)}
}

// SetTelemetry wires outbound-call counters (calls, in-flight, bytes on the
// wire) into reg for every connection the pool hands out.
func (p *Pool) SetTelemetry(reg *telemetry.Registry) {
	m := newClientMetrics(reg)
	p.mu.Lock()
	p.metrics = m
	for _, c := range p.clients {
		c.setMetrics(m)
	}
	p.mu.Unlock()
}

// SetFaultLabel names the pool's owner (usually its node's RPC address) to
// the fault plane, so link partitions can match this end of the pool's
// connections. Call before traffic; existing connections keep their label.
func (p *Pool) SetFaultLabel(label string) {
	p.mu.Lock()
	p.label = label
	p.mu.Unlock()
}

// Get returns a live client for addr, dialing if needed.
func (p *Pool) Get(addr string) (*Client, error) {
	p.mu.Lock()
	c, ok := p.clients[addr]
	label := p.label
	if ok && !c.Closed() {
		p.mu.Unlock()
		return c, nil
	}
	delete(p.clients, addr)
	p.mu.Unlock()

	nc, err := dialFrom(addr, &p.opts, label)
	if err != nil {
		return nil, err
	}
	p.mu.Lock()
	if p.metrics != nil {
		nc.setMetrics(p.metrics)
	}
	if existing, ok := p.clients[addr]; ok && !existing.Closed() {
		p.mu.Unlock()
		nc.Close()
		return existing, nil
	}
	p.clients[addr] = nc
	p.mu.Unlock()
	return nc, nil
}

// Call is shorthand for Get(addr).Call(method, body).
func (p *Pool) Call(addr, method string, body []byte) ([]byte, error) {
	return p.CallCtx(addr, telemetry.SpanContext{}, method, body)
}

// CallCtx is shorthand for Get(addr).CallCtx(ctx, method, body).
func (p *Pool) CallCtx(addr string, ctx telemetry.SpanContext, method string, body []byte) ([]byte, error) {
	c, err := p.Get(addr)
	if err != nil {
		return nil, err
	}
	return c.CallCtx(ctx, method, body)
}

// Close closes every pooled client.
func (p *Pool) Close() {
	p.mu.Lock()
	clients := p.clients
	p.clients = make(map[string]*Client)
	p.mu.Unlock()
	for _, c := range clients {
		c.Close()
	}
}
