package cluster

import (
	"encoding/json"
	"fmt"
	"os"

	"lambdastore/internal/shard"
)

// FileConfig is the JSON form of a static cluster configuration used by the
// command-line tools:
//
//	{
//	  "groups": [
//	    {"id": 0, "primary": "10.0.0.1:7000",
//	     "backups": ["10.0.0.2:7000", "10.0.0.3:7000"]}
//	  ],
//	  "coordinators": ["10.0.0.9:7100"]
//	}
type FileConfig struct {
	Groups []struct {
		ID      uint64   `json:"id"`
		Primary string   `json:"primary"`
		Backups []string `json:"backups"`
	} `json:"groups"`
	Coordinators []string `json:"coordinators"`
}

// LoadConfigFile parses a cluster configuration file.
func LoadConfigFile(path string) (*FileConfig, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("cluster: read config: %w", err)
	}
	var cfg FileConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		return nil, fmt.Errorf("cluster: parse config %s: %w", path, err)
	}
	return &cfg, nil
}

// Directory converts the file form into a shard directory.
func (c *FileConfig) Directory() *shard.Directory {
	d := shard.NewDirectory(nil)
	for _, g := range c.Groups {
		d.SetGroup(shard.Group{ID: g.ID, Primary: g.Primary, Backups: g.Backups})
	}
	return d
}
