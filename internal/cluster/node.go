package cluster

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"lambdastore/internal/admission"
	"lambdastore/internal/coordinator"
	"lambdastore/internal/core"
	"lambdastore/internal/debug"
	"lambdastore/internal/fault"
	"lambdastore/internal/recovery"
	"lambdastore/internal/replication"
	"lambdastore/internal/rpc"
	"lambdastore/internal/shard"
	"lambdastore/internal/store"
	"lambdastore/internal/telemetry"
	"lambdastore/internal/vm"
	"lambdastore/internal/wire"
)

// NodeOptions configures a storage node.
type NodeOptions struct {
	// Addr is the TCP listen address ("127.0.0.1:0" for an ephemeral port).
	Addr string
	// DataDir is the storage engine directory.
	DataDir string
	// Store tunes the LSM engine (nil = defaults).
	Store *store.Options
	// Runtime tunes the object runtime. Invoker and OnCommit are installed
	// by the node; the remaining knobs (fuel, cache, clock) pass through.
	Runtime core.Options
	// GroupID is the replica group this node belongs to.
	GroupID uint64
	// Directory is the initial configuration (static mode). With a
	// Coordinator configured the node refreshes it periodically.
	Directory *shard.Directory
	// Coordinators lists coordinator replica addresses (optional).
	Coordinators []string
	// HeartbeatInterval is how often the node reports liveness (default
	// 500ms; only with Coordinators).
	HeartbeatInterval time.Duration
	// ClientOptions tunes this node's outbound connections (delay
	// injection for experiments, timeouts).
	ClientOptions *rpc.ClientOptions
	// DebugAddr, if non-empty, starts the debug HTTP server (/metrics,
	// /traces, /healthz, pprof) on that address ("127.0.0.1:0" for an
	// ephemeral port).
	DebugAddr string
	// Tracing enables span recording. Off, the tracer costs one predicted
	// branch per stage; metrics are always collected (atomic increments).
	Tracing bool
	// DisableMetrics withholds the telemetry registry from every hot-path
	// component (rpc, runtime, store, replication, recovery), so invokes
	// pay no atomic instrument updates at all. The node keeps a registry
	// for its own bookkeeping counters; it just stays idle. Used by the
	// observability-overhead benchmark's baseline.
	DisableMetrics bool
	// TraceBufferSize bounds the span ring (0 = telemetry.DefaultTraceBuffer).
	TraceBufferSize int
	// SlowTraceThreshold logs any root span slower than this (0 = no log).
	SlowTraceThreshold time.Duration
	// DisableShipCoalescing turns off the shipper's per-backup batching of
	// write-sets (each commit then pays its own replication round trip).
	// Used by the write-path ablation.
	DisableShipCoalescing bool
	// DisableRPCCoalescing turns off per-connection coalescing of this
	// node's outbound response writes. Used by the write-path ablation.
	DisableRPCCoalescing bool
	// Rejoin enables the anti-entropy recovery manager: whenever this
	// node is not a member of its group (a restarted replica), it syncs
	// from the group's primary via range digests and re-admits itself
	// through the coordinator. Requires Coordinators.
	Rejoin bool
	// RecoveryBuckets overrides the digest bucket fan-out (0 = default).
	RecoveryBuckets int
	// RecoveryMaxBytesPerSec rate-limits recovery chunk streaming
	// (0 = unlimited).
	RecoveryMaxBytesPerSec int
	// RecoveryFullResync ablates the digest diff: catch-up streams every
	// object the donor holds regardless of divergence (bench baseline).
	RecoveryFullResync bool
	// MaxConcurrentInvokes, when positive, bounds how many inbound
	// invocations execute at once — an admission gate modeling per-node
	// compute capacity. In-process multi-node benches share one CPU
	// pool, so without this gate placement has no throughput effect;
	// with it, a node saturates at its own limit the way a real machine
	// saturates its cores. With AdmissionQueue unset this is a bare
	// blocking semaphore (requests queue without bound or deadline);
	// with it, it sizes the admission plane's execution slots.
	MaxConcurrentInvokes int
	// AdmissionQueue, when positive, enables the admission plane: a
	// bounded wait queue of this many requests in front of the execution
	// slots (MaxConcurrentInvokes, or NumCPU when unset), with
	// deadline-based shedding and optional per-tenant quotas. Requests
	// the plane refuses are rejected with a typed overload error the
	// client retries with capped backoff. Zero keeps the legacy
	// unbounded semaphore gate.
	AdmissionQueue int
	// AdmissionDeadline bounds queue wait before a request is shed
	// (0 = admission.DefaultDeadline).
	AdmissionDeadline time.Duration
	// AdmissionLIFO drains the admission queue newest-first: under a
	// burst the freshest requests still meet their deadline while the
	// oldest — whose clients have likely given up — are shed.
	AdmissionLIFO bool
	// TenantQPS, when positive, token-bucket rate-limits each tenant at
	// the admission plane. The tenant is the client-declared tenant tag
	// on the invoke frame, falling back to the peer's host.
	TenantQPS float64
	// MoveSessionTimeout bounds inbound live-migration session
	// inactivity before the target reclaims the partial copy (0 =
	// default 10s; chaos tests shrink it).
	MoveSessionTimeout time.Duration
	// LeaseTTL is the read-lease duration this node grants its backups
	// while primary (0 = DefaultLeaseTTL). Backups holding a valid
	// lease serve read-only invocations locally; the primary stalls
	// write acks for one TTL after any lease-breaking reconfiguration.
	// Keep it at or below the coordinator's heartbeat timeout so a
	// partitioned backup's lease expires before the failure detector
	// can reconfigure around it.
	LeaseTTL time.Duration
	// LeaseApplyLagMax bounds how many shipped-but-unapplied write-set
	// entries a leased backup tolerates before bouncing reads to the
	// primary (0 = replication.DefaultLeaseApplyLagMax).
	LeaseApplyLagMax int
	// DisableLeases turns read leasing off entirely: backups bounce
	// every read to the primary (the read scale-out bench baseline).
	DisableLeases bool
}

// DefaultLeaseTTL is the read-lease duration when NodeOptions.LeaseTTL
// is zero.
const DefaultLeaseTTL = 500 * time.Millisecond

// Node is one LambdaStore storage node: it persists objects, executes
// their methods in the embedded isolation runtime, replicates committed
// write-sets to its group's backups when acting as primary, and serves
// read-only invocations when acting as backup.
type Node struct {
	opts    NodeOptions
	addr    string
	db      *store.DB
	rt      *core.Runtime
	srv     *rpc.Server
	pool    *rpc.Pool
	shipper *replication.Shipper
	coord   *coordinator.Client

	donor         *recovery.Donor
	recmgr        *recovery.Manager
	recmgrStarted bool
	moveSrc       *recovery.MoveSource
	moveTgt       *recovery.MoveTarget

	// Object fences: while an outbound move quiesces an object, routing
	// rejects it with not-responsible ahead of the admission queue. The
	// atomic count keeps the routeCheck fast path to one load when no
	// fence is up (the overwhelmingly common case). A fence outlives a
	// successful cutover on purpose — it self-clears only once this
	// node's directory view maps the object elsewhere, so a stale view
	// can never let the old home serve post-move requests.
	fenceCount atomic.Int32
	fenceMu    sync.Mutex
	fences     map[uint64]string

	// invSem, when non-nil, is the MaxConcurrentInvokes admission gate.
	// adm, when non-nil, supersedes it (AdmissionQueue > 0): a bounded
	// queue with deadline shedding and per-tenant quotas.
	invSem chan struct{}
	adm    *admission.Plane

	// Read-lease plane. leases is this node's backup-side holder (nil
	// only when leasing is disabled); leaseTTL is the primary-side grant
	// duration (0 = disabled). leaseBarrier holds a unixnano deadline
	// before which no write ack may be released (a lease-breaking
	// membership change happened; orphaned leases must expire first);
	// objBarrier holds the same per object for migrations into this
	// group.
	leases       *replication.LeaseHolder
	leaseTTL     time.Duration
	leaseBarrier atomic.Int64
	objBarrierMu sync.Mutex
	objBarrier   map[uint64]int64

	dir    atomic.Pointer[shard.Directory]
	stopMu sync.Mutex
	stop   chan struct{}
	done   chan struct{}

	forwarded atomic.Uint64 // cross-object invocations routed off-node

	metrics       *telemetry.Registry
	tracer        *telemetry.Tracer
	debugSrv      *debug.Server
	forwards      *telemetry.Counter
	migrations    *telemetry.Counter
	backupServed  *telemetry.Counter
	primaryBounce *telemetry.Counter
}

// StartNode opens the store and starts serving.
func StartNode(opts NodeOptions) (*Node, error) {
	// Every node gets a registry and a tracer; tracing is enabled only on
	// request, and the registry's instruments are atomic counters whose
	// cost is negligible.
	reg := telemetry.NewRegistry()
	tracer := telemetry.NewTracer(opts.Addr, opts.TraceBufferSize)
	tracer.SetEnabled(opts.Tracing)
	tracer.SetSlowThreshold(opts.SlowTraceThreshold)

	// hotReg is what hot-path components see: nil under DisableMetrics
	// (every recorder nil-checks and compiles to nothing), reg otherwise.
	hotReg := reg
	if opts.DisableMetrics {
		hotReg = nil
	}

	stOpts := &store.Options{}
	if opts.Store != nil {
		cp := *opts.Store
		stOpts = &cp
	}
	stOpts.Metrics = hotReg

	db, err := store.Open(opts.DataDir, stOpts)
	if err != nil {
		return nil, err
	}
	n := &Node{
		opts:    opts,
		db:      db,
		srv:     rpc.NewServer(),
		pool:    rpc.NewPool(opts.ClientOptions),
		stop:    make(chan struct{}),
		done:    make(chan struct{}),
		metrics: reg,
		tracer:  tracer,
		fences:  make(map[uint64]string),
	}
	if opts.AdmissionQueue > 0 {
		// Admission plane supersedes the bare semaphore: same slot count,
		// but waits are bounded and overload is shed instead of queued
		// without limit.
		n.adm = admission.New(admission.Options{
			Workers:    opts.MaxConcurrentInvokes,
			QueueLimit: opts.AdmissionQueue,
			Deadline:   opts.AdmissionDeadline,
			LIFO:       opts.AdmissionLIFO,
			TenantQPS:  opts.TenantQPS,
			Metrics:    reg,
		})
	} else if opts.MaxConcurrentInvokes > 0 {
		n.invSem = make(chan struct{}, opts.MaxConcurrentInvokes)
	}
	n.forwards = reg.Counter("cluster.forwards")
	n.migrations = reg.Counter("cluster.migrations")
	n.backupServed = reg.Counter("reads.backup_served")
	n.primaryBounce = reg.Counter("reads.primary_bounced")
	if !opts.DisableLeases {
		n.leaseTTL = opts.LeaseTTL
		if n.leaseTTL <= 0 {
			n.leaseTTL = DefaultLeaseTTL
		}
		n.leases = replication.NewLeaseHolder(
			func() uint64 { return n.dir.Load().Epoch() },
			opts.LeaseApplyLagMax, nil)
		n.leases.SetTelemetry(reg)
		n.objBarrier = make(map[uint64]int64)
	}
	n.srv.SetTelemetry(hotReg)
	n.srv.SetWriteCoalescing(!opts.DisableRPCCoalescing)
	n.pool.SetTelemetry(hotReg)
	if opts.Directory == nil {
		opts.Directory = shard.NewDirectory(nil)
	}
	n.dir.Store(opts.Directory)

	n.shipper = replication.NewShipper(n.pool, n.onBackupFailure)
	n.shipper.SetTelemetry(hotReg)
	n.shipper.SetCoalescing(!opts.DisableShipCoalescing)
	if n.leaseTTL > 0 {
		n.shipper.SetLeaseTTL(n.leaseTTL)
	}

	rtOpts := opts.Runtime
	rtOpts.Invoker = &routerInvoker{node: n}
	rtOpts.Metrics = hotReg
	rtOpts.Tracer = tracer
	rtOpts.OnCommit = func(ctx telemetry.SpanContext, obj core.ObjectID, seq uint64, ws *store.Batch) error {
		// Synchronous primary-backup shipping: the invocation reply is not
		// released until every backup acknowledged. A failed ship withholds
		// the ack (paper §4.2.1 — no acknowledged write may be lost to a
		// failover); the coordinator evicts the dead backup and the client
		// retries into the reconfigured group.
		//
		// The commit guard brackets ship+forward against rejoin admission:
		// while a joiner's cutover reconfigures the group, no commit can
		// slip between "session retired" and "shipper covers the joiner".
		release := n.donor.GuardCommit()
		defer release()
		sp := n.tracer.StartSpan(ctx, "replicate")
		shipCtx := sp.Context()
		if !shipCtx.Valid() {
			shipCtx = ctx
		}
		err := n.shipper.ShipCtx(shipCtx, uint64(obj), ws)
		sp.FinishErr(err)
		if err != nil {
			return err
		}
		// Relay the commit to any joiner mid-catch-up (strict sessions
		// withhold the ack on failure, exactly like a real backup).
		if err := n.donor.ForwardCommitCtx(ctx, uint64(obj), ws); err != nil {
			return err
		}
		// Relay to an in-flight outbound move's target, if any (best
		// effort: a lost relay is a forward gap the move's seal heals).
		n.moveSrc.ForwardCommit(ctx, uint64(obj), ws)
		// Lease-breaking reconfigurations stall the ack until any lease
		// this primary can no longer invalidate has surely expired: the
		// write is durable and shipped by now, only its client
		// visibility waits (bounded by one lease TTL).
		n.waitLeaseBarrier(uint64(obj))
		return nil
	}
	n.rt, err = core.NewRuntime(db, rtOpts)
	if err != nil {
		db.Close()
		return nil, err
	}

	// Recovery plane: every node can donate state (it may be primary at
	// any point in its life) and serve the joiner side of commit
	// forwarding; the manager's watch loop only runs with Rejoin set.
	n.donor = recovery.NewDonor(recovery.DonorOptions{
		DB:        db,
		Pool:      n.pool,
		Epoch:     func() uint64 { return n.dir.Load().Epoch() },
		IsPrimary: n.isPrimary,
		Admit:     n.admitJoiner,
		Metrics:   hotReg,
		Tracer:    tracer,
	})
	n.recmgr = recovery.NewManager(recovery.ManagerOptions{
		GroupID: opts.GroupID,
		Pool:    n.pool,
		DB:      db,
		Apply: func(object uint64, b *store.Batch) error {
			return n.rt.ApplyReplicated(core.ObjectID(object), b)
		},
		Directory:      func() *shard.Directory { return n.dir.Load() },
		ReloadTypes:    n.rt.ReloadTypes,
		Buckets:        opts.RecoveryBuckets,
		MaxBytesPerSec: opts.RecoveryMaxBytesPerSec,
		FullResync:     opts.RecoveryFullResync,
		Metrics:        hotReg,
		Tracer:         tracer,
	})

	// Live-migration plane: any primary can push one of its objects to
	// another group (source) or receive one (target). Both reuse the
	// recovery machinery's snapshot streaming and commit forwarding,
	// scoped to a single microshard.
	replApply := func(object uint64, b *store.Batch) error {
		if err := n.rt.ApplyReplicated(core.ObjectID(object), b); err != nil {
			return err
		}
		return n.shipper.Ship(object, b)
	}
	n.moveTgt = recovery.NewMoveTarget(recovery.MoveTargetOptions{
		DB:    db,
		Apply: replApply,
		Owns: func(object uint64) bool {
			g, err := n.dir.Load().Lookup(object)
			return err == nil && g.ID == n.opts.GroupID
		},
		InstallDirectory: func(snap []byte) {
			if d, err := shard.Load(snap); err == nil && d.Epoch() > n.dir.Load().Epoch() {
				n.SetDirectory(d)
			}
		},
		SessionTimeout: opts.MoveSessionTimeout,
		Metrics:        hotReg,
	})
	n.moveSrc = recovery.NewMoveSource(recovery.MoveSourceOptions{
		DB:        db,
		Pool:      n.pool,
		Epoch:     func() uint64 { return n.dir.Load().Epoch() },
		IsPrimary: n.isPrimary,
		LockObject: func(object uint64) (func(), error) {
			return n.rt.LockObject(core.ObjectID(object))
		},
		Fence:       n.fenceObject,
		Unfence:     n.unfenceObject,
		CutOver:     n.cutOverObject,
		Apply:       replApply,
		DirSnapshot: func() []byte { return n.dir.Load().Snapshot() },
		Metrics:     hotReg,
		Tracer:      tracer,
	})

	n.registerHandlers()
	addr, err := n.srv.Serve(opts.Addr)
	if err != nil {
		db.Close()
		return nil, err
	}
	n.addr = addr
	tracer.SetNode(addr)
	n.recmgr.SetSelf(addr)
	n.moveSrc.SetSelf(addr)
	// Identify this node's outbound connections to the fault plane so link
	// partitions can name both endpoints.
	n.pool.SetFaultLabel(addr)
	n.refreshBackups()

	if opts.DebugAddr != "" {
		// Mirror fault-plane firings into this node's registry so injected
		// drops/delays/errors show up as first-class /metrics counters
		// (fault.injected.<action>) alongside the per-site gauges.
		fault.SetRegistry(reg)
		n.debugSrv, err = debug.Start(opts.DebugAddr, debug.Options{
			Registry: reg,
			Tracer:   tracer,
			Gauges:   n.debugGauges,
			Health:   n.health,
			Faults:   true,
			Recovery: func() any {
				return map[string]any{
					"rejoin":         n.recmgr.Status(),
					"donor_sessions": n.donor.Sessions(),
				}
			},
			Admission: func() any {
				if n.adm == nil {
					return map[string]any{"enabled": false}
				}
				return n.adm.Status()
			},
		})
		if err != nil {
			n.srv.Close()
			db.Close()
			return nil, err
		}
	}

	if len(opts.Coordinators) > 0 {
		n.coord = coordinator.NewClient(n.pool, opts.Coordinators)
		// Fetch the current configuration synchronously before serving
		// traffic: a restarting node must learn it was deposed (or that it
		// still is primary, and of whom) before its first routing decision.
		if d, err := n.coord.GetConfig(); err == nil {
			n.SetDirectory(d)
		}
		go n.coordLoop()
	} else {
		close(n.done)
	}
	if opts.Rejoin && len(opts.Coordinators) > 0 {
		n.recmgrStarted = true
		go n.recmgr.Run()
	}
	return n, nil
}

// admitJoiner is the donor's cutover callback: propose the epoch-fenced
// configuration change re-adding the joiner, then confirm it took and
// refresh this node's view so the shipper covers the joiner before the
// commit fence is released.
func (n *Node) admitJoiner(joiner string, expectEpoch uint64) error {
	if n.coord == nil {
		return fmt.Errorf("cluster: no coordinator to admit %s through", joiner)
	}
	if err := n.coord.AddBackup(n.opts.GroupID, joiner, expectEpoch); err != nil {
		return err
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		d, err := n.coord.GetConfig()
		if err == nil {
			for _, g := range d.Groups() {
				if g.ID != n.opts.GroupID {
					continue
				}
				for _, b := range g.Backups {
					if b == joiner {
						n.SetDirectory(d)
						return nil
					}
				}
			}
			if d.Epoch() > expectEpoch {
				// The replica we read has applied past the fence point and
				// the joiner is not in the group: the epoch fence rejected
				// the proposal (the configuration changed under the
				// session). The joiner re-syncs against the new one.
				return fmt.Errorf("cluster: admission of %s fenced out at epoch %d (expected %d)",
					joiner, d.Epoch(), expectEpoch)
			}
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("cluster: admission of %s did not take effect (epoch %d)", joiner, expectEpoch)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// Addr returns the node's RPC address.
func (n *Node) Addr() string { return n.addr }

// Runtime exposes the node's object runtime (tests, tools).
func (n *Node) Runtime() *core.Runtime { return n.rt }

// DB exposes the node's storage engine (tests, tools).
func (n *Node) DB() *store.DB { return n.db }

// Directory returns the node's current view of the configuration.
func (n *Node) Directory() *shard.Directory { return n.dir.Load() }

// SetDirectory installs a new configuration view.
func (n *Node) SetDirectory(d *shard.Directory) {
	old := n.dir.Load()
	n.dir.Store(d)
	n.onDirectoryChange(old, d)
	n.refreshBackups()
}

// onDirectoryChange applies the read-lease consequences of a new
// configuration view. Backup side: any held lease was granted under the
// old epoch, so it dies here (Valid would also catch it; revoking
// eagerly keeps the counters honest). Primary side: if the change could
// orphan a lease this primary can no longer invalidate — a replica left
// my group (eviction, failover, this node's own promotion), or an
// object migrated into my group while the source group's backups may
// still hold leases covering it — write acks stall until one full TTL
// has passed, by which time every such lease has expired (backups honor
// only 3/4 of the TTL, leaving margin for skew and delivery latency).
func (n *Node) onDirectoryChange(old, nw *shard.Directory) {
	if n.leaseTTL <= 0 || old == nil || nw == nil || old == nw || old.Epoch() == nw.Epoch() {
		return
	}
	n.leases.Revoke()
	g, ok := groupIn(nw, n.opts.GroupID)
	if !ok || g.Primary != n.addr {
		return
	}
	until := time.Now().Add(n.leaseTTL).UnixNano()
	og, hadGroup := groupIn(old, n.opts.GroupID)
	shrink := !hadGroup || og.Primary != n.addr
	if !shrink {
		now := g.Replicas()
		for _, m := range og.Replicas() {
			found := false
			for _, r := range now {
				if r == m {
					found = true
					break
				}
			}
			if !found {
				shrink = true
				break
			}
		}
	}
	if shrink {
		for {
			cur := n.leaseBarrier.Load()
			if until <= cur || n.leaseBarrier.CompareAndSwap(cur, until) {
				break
			}
		}
	}
	// Objects newly mapped into my group (override installed, or an
	// override back to a default placement here cleared): the previous
	// home's backups may serve leased reads of them until their view
	// catches up or their lease expires — stall acks per object.
	oldOv, newOv := old.Overrides(), nw.Overrides()
	seen := make(map[uint64]bool, len(oldOv)+len(newOv))
	for obj := range newOv {
		seen[obj] = true
	}
	for obj := range oldOv {
		seen[obj] = true
	}
	for obj := range seen {
		ng, nerr := nw.Lookup(obj)
		if nerr != nil || ng.ID != n.opts.GroupID {
			continue
		}
		ogr, oerr := old.Lookup(obj)
		if oerr == nil && ogr.ID == n.opts.GroupID {
			continue // was already ours
		}
		n.objBarrierMu.Lock()
		if n.objBarrier[obj] < until {
			n.objBarrier[obj] = until
		}
		n.objBarrierMu.Unlock()
	}
}

// waitLeaseBarrier blocks until every write-ack barrier covering the
// object has passed (no-op in the overwhelmingly common case).
func (n *Node) waitLeaseBarrier(object uint64) {
	if n.leaseTTL <= 0 {
		return
	}
	now := time.Now().UnixNano()
	until := n.leaseBarrier.Load()
	n.objBarrierMu.Lock()
	if len(n.objBarrier) > 0 {
		if t, ok := n.objBarrier[object]; ok {
			if t > until {
				until = t
			}
			if t <= now {
				delete(n.objBarrier, object)
			}
		}
	}
	n.objBarrierMu.Unlock()
	if until > now {
		time.Sleep(time.Duration(until - now))
	}
}

// Forwarded returns how many cross-object invocations left this node.
func (n *Node) Forwarded() uint64 { return n.forwarded.Load() }

// MoveSessions reports the inbound live-migration sessions currently
// open on this node (a non-zero count after a failed move means the
// janitor has not yet reclaimed the partial copy).
func (n *Node) MoveSessions() int { return n.moveTgt.Sessions() }

// Metrics returns the node's telemetry registry.
func (n *Node) Metrics() *telemetry.Registry { return n.metrics }

// Tracer returns the node's span recorder.
func (n *Node) Tracer() *telemetry.Tracer { return n.tracer }

// DebugAddr returns the debug HTTP server's bound address, or "" when the
// server is not running.
func (n *Node) DebugAddr() string {
	if n.debugSrv == nil {
		return ""
	}
	return n.debugSrv.Addr()
}

// RecoveryStatus snapshots the node's rejoin state machine (tests,
// tools, bench).
func (n *Node) RecoveryStatus() recovery.Status { return n.recmgr.Status() }

// RecoveryState returns the rejoin state machine's current position.
func (n *Node) RecoveryState() recovery.State { return n.recmgr.State() }

// DonorSessions lists this node's active donor-side catch-up sessions.
func (n *Node) DonorSessions() []recovery.SessionStatus { return n.donor.Sessions() }

// debugGauges contributes point-in-time values the registry does not track
// as counters: cache hit rates read from their owners on demand.
func (n *Node) debugGauges() map[string]uint64 {
	out := make(map[string]uint64, 8)
	bh, bm := n.db.BlockCacheStats()
	out["store.block_cache_hits"] = bh
	out["store.block_cache_misses"] = bm
	if c := n.rt.Cache(); c != nil {
		st := c.Stats()
		out["cache.hits"] = st.Hits
		out["cache.misses"] = st.Misses
		out["cache.validations"] = st.Validations
		out["cache.evictions"] = st.Evictions
		out["cache.bypass"] = st.Bypass
		out["cache.invalidations"] = st.Invalidations
	}
	sch, scm := n.db.StateCacheStats()
	out["store.state_cache_hits"] = sch
	out["store.state_cache_misses"] = scm
	warm, cold := n.rt.PoolStats()
	out["core.pool_warm"] = warm
	out["core.pool_cold"] = cold
	out["cluster.forwarded"] = n.forwarded.Load()
	out["repl.shipped_total"] = n.shipper.Shipped()
	d := n.dir.Load()
	out["shard.overrides"] = uint64(d.OverrideCount())
	out["shard.overrides_redundant"] = uint64(d.RedundantOverrides())
	out["cluster.fenced_objects"] = uint64(n.fenceCount.Load())
	out["move.in_flight"] = uint64(n.moveSrc.InFlight())
	out["move.inbound_sessions"] = uint64(n.moveTgt.Sessions())
	cs := vm.CompilerStats()
	out["vm.compiled_modules"] = cs.CompiledModules
	out["vm.interp_fallbacks"] = cs.InterpFallbacks
	out["vm.compile_ns"] = uint64(cs.CompileNs)
	if n.leases.Held() {
		out["lease.held_now"] = 1
	} else {
		out["lease.held_now"] = 0
	}
	if fault.Enabled() {
		// The plane is process-global; every node's /metrics shows the same
		// injected-fault truth, keyed fault.<site>.<action>.
		for k, v := range fault.Counters() {
			out["fault."+k] = v
		}
	}
	return out
}

// health backs /healthz: serving stops reporting healthy once Close began.
func (n *Node) health() error {
	select {
	case <-n.stop:
		return fmt.Errorf("cluster: node %s shutting down", n.addr)
	default:
		return nil
	}
}

// myGroup returns this node's group from the directory view.
func (n *Node) myGroup() (shard.Group, bool) {
	for _, g := range n.dir.Load().Groups() {
		if g.ID == n.opts.GroupID {
			return g, true
		}
	}
	return shard.Group{}, false
}

// isPrimary reports whether this node is its group's primary.
func (n *Node) isPrimary() bool {
	g, ok := n.myGroup()
	return ok && g.Primary == n.addr
}

// refreshBackups re-derives the replication fan-out from the directory and
// stamps the shipper with the directory's epoch, so every shipped frame
// carries the configuration it was committed under (backups fence older
// epochs).
func (n *Node) refreshBackups() {
	n.shipper.SetEpoch(n.dir.Load().Epoch())
	g, ok := n.myGroup()
	if !ok || g.Primary != n.addr {
		n.shipper.SetBackups(nil)
		return
	}
	n.shipper.SetBackups(g.Backups)
}

// onBackupFailure reports a failed backup to the coordinator (which will
// reconfigure the group) and keeps serving.
func (n *Node) onBackupFailure(addr string, err error) {
	// The coordinator's failure detector learns about it via missing
	// heartbeats from the backup itself; nothing else to do here, but the
	// hook is kept for observability.
	_ = addr
	_ = err
}

// coordLoop heartbeats and refreshes configuration.
func (n *Node) coordLoop() {
	defer close(n.done)
	interval := n.opts.HeartbeatInterval
	if interval <= 0 {
		interval = 500 * time.Millisecond
	}
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	for {
		// Heartbeat immediately on entry (the failure detector should see
		// a booting node as soon as it serves), then on every tick.
		n.coord.Heartbeat(n.addr, n.DebugAddr())
		if d, err := n.coord.GetConfig(); err == nil {
			if d.Epoch() > n.dir.Load().Epoch() {
				n.SetDirectory(d)
			}
		}
		select {
		case <-n.stop:
			return
		case <-ticker.C:
		}
	}
}

// Close shuts the node down.
func (n *Node) Close() error {
	n.stopMu.Lock()
	select {
	case <-n.stop:
	default:
		close(n.stop)
	}
	n.stopMu.Unlock()
	<-n.done
	if n.recmgrStarted {
		n.recmgr.Close()
	}
	if n.debugSrv != nil {
		n.debugSrv.Close()
	}
	if n.adm != nil {
		n.adm.Close()
	}
	n.moveTgt.Close()
	n.srv.Close()
	n.shipper.Close()
	n.pool.Close()
	return n.db.Close()
}

// peerHost reduces a remote address to its host for tenant attribution:
// every connection from a machine dials from a fresh ephemeral port, and
// per-port buckets would give each connection its own quota.
func peerHost(addr string) string {
	if host, _, err := net.SplitHostPort(addr); err == nil {
		return host
	}
	return addr
}

// fenceObject makes routing reject the object with not-responsible
// plus a hint at its (future) home, ahead of the admission queue.
func (n *Node) fenceObject(object uint64, hint string) {
	n.fenceMu.Lock()
	n.fences[object] = hint
	n.fenceCount.Store(int32(len(n.fences)))
	n.fenceMu.Unlock()
}

// unfenceObject lifts a fence (move abort, or self-clear once the
// directory view caught up with a committed cutover).
func (n *Node) unfenceObject(object uint64) {
	n.fenceMu.Lock()
	delete(n.fences, object)
	n.fenceCount.Store(int32(len(n.fences)))
	n.fenceMu.Unlock()
}

// fencedHint reports whether the object is fenced; one atomic load when
// no fence is up.
func (n *Node) fencedHint(object uint64) (string, bool) {
	if n.fenceCount.Load() == 0 {
		return "", false
	}
	n.fenceMu.Lock()
	hint, ok := n.fences[object]
	n.fenceMu.Unlock()
	return hint, ok
}

// cutOverObject is the move's commit point: record the object's new
// home in the directory. Static mode mutates the (possibly shared)
// directory in place; coordinator mode proposes through the replicated
// log with the epoch fence, retrying with a refreshed view when a
// concurrent configuration change fences the proposal out — the
// quiesced state at both ends stays valid across retries. Moves back
// to the object's default hash placement clear the override instead of
// recording one, which is what keeps the override table from growing
// with every migration (compaction folds the rest).
func (n *Node) cutOverObject(object, targetGroup uint64) error {
	if n.coord == nil {
		d := n.dir.Load()
		home, err := d.DefaultGroupID(object)
		if err != nil {
			return err
		}
		if home == targetGroup {
			d.ClearOverride(object)
		} else {
			d.SetOverride(object, targetGroup)
		}
		n.refreshBackups()
		return nil
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		d, err := n.coord.GetConfig()
		if err == nil {
			// Re-validate against the fresh view: the move is only safe
			// while this node is still the object's primary and the
			// target group still exists.
			g, ok := groupIn(d, n.opts.GroupID)
			if !ok || g.Primary != n.addr {
				return fmt.Errorf("cluster: cutover of %d abandoned: no longer primary of group %d", object, n.opts.GroupID)
			}
			if _, ok := groupIn(d, targetGroup); !ok {
				return fmt.Errorf("cluster: cutover of %d abandoned: target group %d is gone", object, targetGroup)
			}
			home, herr := d.DefaultGroupID(object)
			if herr != nil {
				return herr
			}
			if home == targetGroup {
				err = n.coord.ClearOverride(object, d.Epoch())
			} else {
				err = n.coord.SetOverrideFenced(object, targetGroup, d.Epoch())
			}
			if err == nil {
				// Confirm by readback: an epoch-fenced proposal that lost
				// the race is a silent no-op, so only the directory's own
				// answer proves the cutover landed.
				if nd, gerr := n.coord.GetConfig(); gerr == nil {
					if g, lerr := nd.Lookup(object); lerr == nil && g.ID == targetGroup {
						n.SetDirectory(nd)
						return nil
					}
				}
			}
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("cluster: cutover of %d to group %d did not take effect", object, targetGroup)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func groupIn(d *shard.Directory, id uint64) (shard.Group, bool) {
	for _, g := range d.Groups() {
		if g.ID == id {
			return g, true
		}
	}
	return shard.Group{}, false
}

// routeCheck decides whether this node may execute the invocation:
// primaries execute everything; backups execute explicitly read-only
// requests (paper §4.2.1: "read-only functions can execute at any replica").
func (n *Node) routeCheck(obj core.ObjectID, readOnly bool) error {
	d := n.dir.Load()
	if hint, fenced := n.fencedHint(uint64(obj)); fenced {
		// Quiesced for (or moved by) a live migration. Once this node's
		// view maps the object to another group the cutover has
		// committed and propagated — the fence has done its job.
		if g, err := d.Lookup(uint64(obj)); err == nil && g.ID != n.opts.GroupID {
			n.unfenceObject(uint64(obj))
			return notResponsibleError(g.Primary)
		}
		return notResponsibleError(hint)
	}
	g, err := d.Lookup(uint64(obj))
	if err != nil {
		if len(n.opts.Coordinators) > 0 {
			// A coordinator-managed node without a configuration cannot
			// assume it is anyone's primary: a deposed primary restarting
			// with an empty view would otherwise acknowledge writes without
			// replicating them (zombie primary). Reject until the first
			// config refresh; the client refreshes and re-routes.
			return notResponsibleError("")
		}
		// No configuration, static mode: single-node deployments execute
		// everything.
		return nil
	}
	if g.Primary == n.addr {
		return nil
	}
	if readOnly {
		for _, b := range g.Backups {
			if b != n.addr {
				continue
			}
			// A backup serves a read only under a valid lease: right
			// epoch, unexpired, apply lag in bounds. Anything else —
			// leasing disabled, lease died with a reconfiguration, the
			// primary stopped renewing — bounces to the primary, which
			// is always safe.
			if n.leases.Valid() {
				n.backupServed.Inc()
				return nil
			}
			n.primaryBounce.Inc()
			break
		}
	}
	return notResponsibleError(g.Primary)
}

// registerHandlers wires the RPC surface.
func (n *Node) registerHandlers() {
	replication.RegisterBackupLeased(n.srv, n.db, replication.BulkApplierFunc(
		func(object uint64, b *store.Batch) error {
			return n.rt.ApplyReplicated(core.ObjectID(object), b)
		},
		n.rt.ApplyReplicatedBulk), n.tracer, n.metrics,
		func() uint64 { return n.dir.Load().Epoch() }, n.leases)

	recovery.RegisterDonor(n.srv, n.donor)
	n.recmgr.RegisterForward(n.srv)
	recovery.RegisterMover(n.srv, n.moveTgt)

	n.srv.Handle(MethodPing, func(body []byte) ([]byte, error) {
		return []byte(n.addr), nil
	})

	n.srv.HandleCtx(MethodInvoke, func(info rpc.CallInfo, body []byte) ([]byte, error) {
		req, err := decodeInvokeReq(body)
		if err != nil {
			return nil, err
		}
		if err := n.routeCheck(req.object, req.readOnly); err != nil {
			// The client may not have flagged the request read-only, but
			// the VM's module analysis can prove the method never touches
			// the write buffer — such invocations are safe at any leased
			// replica, so re-route them as reads instead of bouncing.
			if !req.readOnly && n.rt.MethodRoutableReadOnly(req.object, req.method) {
				err = n.routeCheck(req.object, true)
			}
			if err != nil {
				return nil, err
			}
		}
		if n.adm != nil {
			// Shed-before-execute: an overload rejection happens strictly
			// before the runtime sees the request, so no invocation that
			// reached commit (and thus no acked write) is ever shed.
			tenant := req.tenant
			if tenant == "" {
				tenant = peerHost(info.Peer)
			}
			release, aerr := n.adm.Admit(tenant)
			if aerr != nil {
				return nil, aerr
			}
			t0 := time.Now()
			defer func() {
				n.adm.Observe(time.Since(t0))
				release()
			}()
		} else if n.invSem != nil {
			n.invSem <- struct{}{}
			defer func() { <-n.invSem }()
		}
		resp, err := n.rt.InvokeCtx(req.object, req.method, req.args, core.CallCtx{Trace: info.Trace})
		if err != nil && errors.Is(err, core.ErrNoSuchObject) {
			// The object may have been migrated away while this request
			// sat in the admission queue (a move deletes the local copy
			// under the same lock). If the directory now maps it
			// elsewhere, convert to a routing redirect so the client
			// retries at the new home instead of surfacing a spurious
			// no-such-object.
			if g, lerr := n.dir.Load().Lookup(uint64(req.object)); lerr == nil && g.ID != n.opts.GroupID {
				return nil, notResponsibleError(g.Primary)
			}
		}
		return resp, err
	})

	n.srv.HandleCtx(MethodInvokeTx, func(info rpc.CallInfo, body []byte) ([]byte, error) {
		req, err := decodeTxReq(body)
		if err != nil {
			return nil, err
		}
		// Transactions are single-node: every object must be homed here.
		for _, c := range req.calls {
			if err := n.routeCheck(c.Object, false); err != nil {
				return nil, err
			}
		}
		results, err := n.rt.InvokeTransactionCtx(req.calls, core.CallCtx{Trace: info.Trace})
		if err != nil {
			return nil, err
		}
		return encodeTxResp(results), nil
	})

	n.srv.Handle(MethodCreate, func(body []byte) ([]byte, error) {
		req, err := decodeCreateReq(body)
		if err != nil {
			return nil, err
		}
		if err := n.routeCheck(req.object, false); err != nil {
			return nil, err
		}
		return nil, n.rt.CreateObject(req.typeName, req.object)
	})

	n.srv.Handle(MethodDelete, func(body []byte) ([]byte, error) {
		obj, _, err := wire.Uvarint(body)
		if err != nil {
			return nil, err
		}
		if err := n.routeCheck(core.ObjectID(obj), false); err != nil {
			return nil, err
		}
		return nil, n.rt.DeleteObject(core.ObjectID(obj))
	})

	n.srv.Handle(MethodRegisterType, func(body []byte) ([]byte, error) {
		t, err := core.DecodeObjectType(body)
		if err != nil {
			return nil, err
		}
		return nil, n.rt.RegisterType(t)
	})

	n.srv.Handle(MethodSetDirectory, func(body []byte) ([]byte, error) {
		d, err := shard.Load(body)
		if err != nil {
			return nil, err
		}
		n.SetDirectory(d)
		return nil, nil
	})

	n.srv.Handle(MethodMigrate, func(body []byte) ([]byte, error) {
		req, err := decodeMigrateReq(body)
		if err != nil {
			return nil, err
		}
		if err := n.moveSrc.Move(uint64(req.object), req.destPrimary, req.destGroup); err != nil {
			return nil, err
		}
		n.migrations.Inc()
		return nil, nil
	})

	n.srv.Handle(MethodIngest, func(body []byte) ([]byte, error) {
		req, err := decodeIngestReq(body)
		if err != nil {
			return nil, err
		}
		b := store.NewBatch()
		for i := range req.keys {
			b.Put(req.keys[i], req.values[i])
		}
		if err := n.rt.ApplyReplicated(req.object, b); err != nil {
			return nil, err
		}
		// Fan the ingested state out to this group's backups so replica
		// reads work immediately after the migration.
		n.shipper.Ship(uint64(req.object), b) //nolint:errcheck // best effort
		return nil, nil
	})

	n.srv.Handle(MethodHotObjects, func(body []byte) ([]byte, error) {
		limit, _, err := wire.Uvarint(body)
		if err != nil {
			return nil, err
		}
		return encodeHotResp(n.rt.HotObjects(int(limit))), nil
	})

	n.srv.Handle(MethodHotWindow, func(body []byte) ([]byte, error) {
		limit, _, err := wire.Uvarint(body)
		if err != nil {
			return nil, err
		}
		return encodeHotResp(n.rt.HotWindow(int(limit))), nil
	})

	n.srv.Handle(MethodStats, func(body []byte) ([]byte, error) {
		inv, com := n.rt.Stats()
		warm, cold := n.rt.PoolStats()
		line := fmt.Sprintf("addr=%s primary=%v invocations=%d commits=%d warm=%d cold=%d shipped=%d",
			n.addr, n.isPrimary(), inv, com, warm, cold, n.shipper.Shipped())
		line += fmt.Sprintf(" lease_held=%v reads_backup_served=%d reads_primary_bounced=%d",
			n.leases.Held(), n.backupServed.Value(), n.primaryBounce.Value())
		if c := n.rt.Cache(); c != nil {
			st := c.Stats()
			line += fmt.Sprintf(" cache_hits=%d cache_misses=%d cache_bypass=%d cache_invalidations=%d",
				st.Hits, st.Misses, st.Bypass, st.Invalidations)
		}
		cs := vm.CompilerStats()
		line += fmt.Sprintf(" vm_compiled=%d vm_fallbacks=%d vm_compile_ns=%d",
			cs.CompiledModules, cs.InterpFallbacks, cs.CompileNs)
		return []byte(line), nil
	})
}

// routerInvoker routes a nested cross-object invocation: objects homed on
// this node run locally; everything else goes to the responsible primary
// over RPC (the aggregated design's only extra hop).
type routerInvoker struct{ node *Node }

func (r *routerInvoker) Invoke(id core.ObjectID, method string, args [][]byte) ([]byte, error) {
	return r.InvokeCtx(id, method, args, core.CallCtx{})
}

// InvokeDepth preserves nested-call depth on local hops; remote hops reset
// it (bounded by RPC timeouts instead).
func (r *routerInvoker) InvokeDepth(id core.ObjectID, method string, args [][]byte, depth int) ([]byte, error) {
	return r.InvokeCtx(id, method, args, core.CallCtx{Depth: depth})
}

// InvokeCtx routes with full call context: local hops keep depth and trace;
// remote hops record an "rpc" span whose context crosses the wire, so the
// callee's invoke span nests under it.
func (r *routerInvoker) InvokeCtx(id core.ObjectID, method string, args [][]byte, cc core.CallCtx) ([]byte, error) {
	n := r.node
	d := n.dir.Load()
	g, err := d.Lookup(uint64(id))
	if err != nil || g.Primary == n.addr || g.Primary == "" {
		return n.rt.InvokeCtx(id, method, args, cc)
	}
	n.forwarded.Add(1)
	n.forwards.Inc()
	sp := n.tracer.StartSpan(cc.Trace, "rpc")
	wireCtx := sp.Context()
	if !wireCtx.Valid() {
		wireCtx = cc.Trace
	}
	body := encodeInvokeReq(&invokeReq{object: id, method: method, args: args})
	resp, err := n.pool.CallCtx(g.Primary, wireCtx, MethodInvoke, body)
	sp.FinishErr(err)
	return resp, err
}
