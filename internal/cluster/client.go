package cluster

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"lambdastore/internal/admission"
	"lambdastore/internal/coordinator"
	"lambdastore/internal/core"
	"lambdastore/internal/rpc"
	"lambdastore/internal/shard"
	"lambdastore/internal/telemetry"
	"lambdastore/internal/wire"
)

// Client is the application-facing library: it resolves objects to their
// replica group, sends invocations to the responsible node, and retries
// through configuration changes. Mutating invocations go to the primary;
// explicitly read-only invocations are spread across replicas.
type Client struct {
	pool  *rpc.Pool
	coord *coordinator.Client

	dirMu sync.RWMutex
	dir   *shard.Directory

	rr atomic.Uint64 // round-robin cursor for replica reads

	readPolicy ReadPolicy

	// inflight counts this client's outstanding invocations per address;
	// hints carries externally supplied load scores (e.g. coordinator
	// rollups). Both feed ReadLeastLoaded replica selection.
	inflMu   sync.Mutex
	inflight map[string]int64
	hints    map[string]float64

	// maxRetries bounds routing retries after stale-config rejections.
	maxRetries int

	// retryBase/retryMax shape the capped exponential backoff between
	// retries; retryBudget bounds one call's total retry time (sleeps
	// included) so a dead cluster fails the call rather than hanging it.
	retryBase   time.Duration
	retryMax    time.Duration
	retryBudget time.Duration

	// tracing mints a fresh trace ID per invocation; the receiving nodes
	// decide whether spans are actually recorded.
	tracing bool

	// tenant tags invocations for per-tenant admission quotas.
	tenant string

	// overloadRetries counts invocations that were shed by a node's
	// admission plane and retried with backoff — kept separate from
	// routing/fault retries so overload is visible as overload.
	overloadRetries atomic.Uint64
}

// ReadPolicy selects which replica serves a read-only invocation. With
// leases enabled, every choice returns committed-then-acked state: backups
// only answer while holding a valid lease and bounce otherwise, so policies
// trade load spreading against bounce-retry latency, never consistency.
type ReadPolicy int

const (
	// ReadRoundRobin spreads reads across all replicas in turn (default).
	ReadRoundRobin ReadPolicy = iota
	// ReadPrimaryOnly sends every read to the primary — the pre-lease
	// behavior, and the baseline for read scale-out benchmarks.
	ReadPrimaryOnly
	// ReadLeastLoaded picks the replica with the lowest load score:
	// this client's own in-flight invocations plus any external hint
	// installed via SetLoadHints (ties broken round-robin).
	ReadLeastLoaded
)

// ClientConfig configures a Client.
type ClientConfig struct {
	// Directory is a static configuration (benchmarks, tests).
	Directory *shard.Directory
	// Coordinators enables dynamic configuration refresh.
	Coordinators []string
	// RPC tunes outbound connections (latency injection, timeouts).
	RPC *rpc.ClientOptions
	// MaxRetries bounds routing retries (default 4).
	MaxRetries int
	// RetryBaseDelay is the backoff before the first retry (default 5ms);
	// each subsequent retry doubles it, with ±50% jitter so a fleet of
	// clients does not stampede a freshly promoted primary in lockstep.
	RetryBaseDelay time.Duration
	// RetryMaxDelay caps the exponential growth (default 250ms).
	RetryMaxDelay time.Duration
	// RetryBudget bounds the total time one call may spend retrying,
	// backoff sleeps included (default 10s). It acts as the call's
	// deadline: when it expires the call returns the last error even if
	// retry attempts remain.
	RetryBudget time.Duration
	// Tracing stamps every invocation with a fresh trace ID so nodes with
	// tracing enabled record its spans.
	Tracing bool
	// ReadPolicy selects the replica for read-only invocations
	// (default ReadRoundRobin).
	ReadPolicy ReadPolicy
	// Tenant tags every invocation with an admission-quota identity.
	// Empty, nodes attribute requests to the client's host.
	Tenant string
}

// NewClient builds a client.
func NewClient(cfg ClientConfig) (*Client, error) {
	c := &Client{
		pool:        rpc.NewPool(cfg.RPC),
		dir:         cfg.Directory,
		maxRetries:  cfg.MaxRetries,
		retryBase:   cfg.RetryBaseDelay,
		retryMax:    cfg.RetryMaxDelay,
		retryBudget: cfg.RetryBudget,
		tracing:     cfg.Tracing,
		tenant:      cfg.Tenant,
		readPolicy:  cfg.ReadPolicy,
		inflight:    make(map[string]int64),
	}
	if c.maxRetries <= 0 {
		c.maxRetries = 4
	}
	if c.retryBase <= 0 {
		c.retryBase = 5 * time.Millisecond
	}
	if c.retryMax <= 0 {
		c.retryMax = 250 * time.Millisecond
	}
	if c.retryBudget <= 0 {
		c.retryBudget = 10 * time.Second
	}
	if len(cfg.Coordinators) > 0 {
		c.coord = coordinator.NewClient(c.pool, cfg.Coordinators)
	}
	if c.dir == nil {
		if c.coord == nil {
			return nil, fmt.Errorf("cluster: client needs a directory or coordinators")
		}
		d, err := c.coord.GetConfig()
		if err != nil {
			return nil, err
		}
		c.dir = d
	}
	return c, nil
}

// Close releases the client's connections.
func (c *Client) Close() { c.pool.Close() }

// OverloadRetries reports how many times this client's invocations were
// shed by a node's admission plane and retried.
func (c *Client) OverloadRetries() uint64 { return c.overloadRetries.Load() }

// Directory returns the client's current configuration view.
func (c *Client) Directory() *shard.Directory {
	c.dirMu.RLock()
	defer c.dirMu.RUnlock()
	return c.dir
}

// SetDirectory installs a configuration view (static reconfiguration).
func (c *Client) SetDirectory(d *shard.Directory) {
	c.dirMu.Lock()
	c.dir = d
	c.dirMu.Unlock()
}

// refresh pulls a fresh configuration from the coordinator, if any.
func (c *Client) refresh() bool {
	if c.coord == nil {
		return false
	}
	d, err := c.coord.GetConfig()
	if err != nil {
		return false
	}
	c.SetDirectory(d)
	return true
}

// backoff sleeps before retry attempt (1-based): exponential from
// RetryBaseDelay, capped at RetryMaxDelay, with ±50% jitter so
// concurrent clients decorrelate instead of stampeding a recovering
// primary in lockstep. The sleep never runs past deadline; it returns
// false once the deadline has passed, telling the caller to give up.
func (c *Client) backoff(attempt int, deadline time.Time) bool {
	rem := time.Until(deadline)
	if rem <= 0 {
		return false
	}
	d := c.retryBase << uint(attempt-1)
	if d <= 0 || d > c.retryMax {
		d = c.retryMax
	}
	d = d/2 + time.Duration(rand.Int63n(int64(d))) // jitter in [d/2, 3d/2)
	if d > rem {
		d = rem
	}
	time.Sleep(d)
	return true
}

// lookup resolves the group for an object.
func (c *Client) lookup(id core.ObjectID) (shard.Group, error) {
	c.dirMu.RLock()
	defer c.dirMu.RUnlock()
	return c.dir.Lookup(uint64(id))
}

// rootCtx mints the invocation's trace context (zero when tracing is off).
func (c *Client) rootCtx() telemetry.SpanContext {
	if !c.tracing {
		return telemetry.SpanContext{}
	}
	return telemetry.NewRootContext()
}

// Invoke runs a (potentially mutating) method at the object's primary.
func (c *Client) Invoke(id core.ObjectID, method string, args [][]byte) ([]byte, error) {
	return c.invoke(c.rootCtx(), id, method, args, false)
}

// InvokeTraced is Invoke under a freshly minted trace; it returns the trace
// ID so the caller can fetch the request's spans from the nodes' /traces
// endpoints (regardless of the client's Tracing setting).
func (c *Client) InvokeTraced(id core.ObjectID, method string, args [][]byte) ([]byte, uint64, error) {
	ctx := telemetry.NewRootContext()
	resp, err := c.invoke(ctx, id, method, args, false)
	return resp, ctx.Trace, err
}

// InvokeRead runs a read-only method at one of the object's replicas,
// spreading load round-robin. The server rejects the request if the method
// is not actually read-only for routing purposes (backups refuse writes).
func (c *Client) InvokeRead(id core.ObjectID, method string, args [][]byte) ([]byte, error) {
	return c.invoke(c.rootCtx(), id, method, args, true)
}

// SetLoadHints installs per-address load scores (typically fed from the
// coordinator's cluster rollups) that bias ReadLeastLoaded selection on
// top of the client's own in-flight counts. Passing nil clears the hints.
func (c *Client) SetLoadHints(hints map[string]float64) {
	c.inflMu.Lock()
	c.hints = hints
	c.inflMu.Unlock()
}

// readTarget picks the replica for a read-only invocation per the
// configured policy.
func (c *Client) readTarget(g shard.Group) string {
	replicas := g.Replicas()
	switch c.readPolicy {
	case ReadPrimaryOnly:
		return g.Primary
	case ReadLeastLoaded:
		// Rotate the scan start so equally loaded replicas alternate.
		start := int(c.rr.Add(1) % uint64(len(replicas)))
		c.inflMu.Lock()
		defer c.inflMu.Unlock()
		best, bestScore := "", 0.0
		for i := 0; i < len(replicas); i++ {
			a := replicas[(start+i)%len(replicas)]
			score := float64(c.inflight[a]) + c.hints[a]
			if best == "" || score < bestScore {
				best, bestScore = a, score
			}
		}
		return best
	default:
		return replicas[c.rr.Add(1)%uint64(len(replicas))]
	}
}

// track records an in-flight invocation against addr for ReadLeastLoaded
// scoring; the returned func must be called when the call completes.
func (c *Client) track(addr string) func() {
	if c.readPolicy != ReadLeastLoaded {
		return func() {}
	}
	c.inflMu.Lock()
	c.inflight[addr]++
	c.inflMu.Unlock()
	return func() {
		c.inflMu.Lock()
		c.inflight[addr]--
		c.inflMu.Unlock()
	}
}

func (c *Client) invoke(ctx telemetry.SpanContext, id core.ObjectID, method string, args [][]byte, readOnly bool) ([]byte, error) {
	body := encodeInvokeReq(&invokeReq{object: id, method: method, args: args, readOnly: readOnly, tenant: c.tenant})
	deadline := time.Now().Add(c.retryBudget)
	var lastErr error
	for attempt := 0; attempt < c.maxRetries; attempt++ {
		if attempt > 0 && !c.backoff(attempt, deadline) {
			break
		}
		g, err := c.lookup(id)
		if err != nil {
			return nil, err
		}
		addr := g.Primary
		if readOnly {
			addr = c.readTarget(g)
		}
		done := c.track(addr)
		resp, err := c.pool.CallCtx(addr, ctx, MethodInvoke, body)
		done()
		if err == nil {
			return resp, nil
		}
		lastErr = err
		if hint, ok := ParseNotResponsible(err); ok {
			// Stale configuration: try the hinted primary directly next.
			if !c.refresh() && hint != "" {
				resp, err := c.pool.CallCtx(hint, ctx, MethodInvoke, body)
				if err == nil {
					return resp, nil
				}
				lastErr = err
			}
			continue
		}
		// Overload shed: the node's admission plane refused the request
		// before execution. The configuration is fine — just back off and
		// retry; the capped exponential backoff is exactly the client-side
		// half of the congestion-control loop.
		if admission.IsOverload(err) {
			c.overloadRetries.Add(1)
			continue
		}
		// Connection-level failure: the node may have died; refresh config
		// (failover may have promoted a backup) and retry after backoff.
		// Read-only requests also fail over to the next replica via rr.
		if !c.refresh() && !readOnly {
			return nil, lastErr
		}
	}
	return nil, fmt.Errorf("cluster: invoke %s.%s failed after retries: %w", id, method, lastErr)
}

// InvokeTransaction executes a serializable multi-call transaction
// (strict 2PL over the declared objects). All objects must be homed in the
// same replica group; the request is routed to that group's primary.
func (c *Client) InvokeTransaction(calls []core.TxCall) ([][]byte, error) {
	if len(calls) == 0 {
		return nil, nil
	}
	ctx := c.rootCtx()
	body := encodeTxReq(&txReq{calls: calls})
	deadline := time.Now().Add(c.retryBudget)
	var lastErr error
	for attempt := 0; attempt < c.maxRetries; attempt++ {
		if attempt > 0 && !c.backoff(attempt, deadline) {
			break
		}
		g, err := c.lookup(calls[0].Object)
		if err != nil {
			return nil, err
		}
		for _, call := range calls[1:] {
			cg, err := c.lookup(call.Object)
			if err != nil {
				return nil, err
			}
			if cg.ID != g.ID {
				return nil, fmt.Errorf("cluster: transaction spans groups %d and %d (objects must share a replica group)", g.ID, cg.ID)
			}
		}
		resp, err := c.pool.CallCtx(g.Primary, ctx, MethodInvokeTx, body)
		if err == nil {
			return decodeTxResp(resp)
		}
		lastErr = err
		if _, ok := ParseNotResponsible(err); ok {
			c.refresh()
			continue
		}
		// Connection-level failure: same treatment as Invoke — refresh the
		// configuration (a backup may have been promoted) and retry after
		// backoff; without a coordinator the view cannot change, so fail.
		if !c.refresh() {
			return nil, err
		}
	}
	return nil, fmt.Errorf("cluster: transaction failed after retries: %w", lastErr)
}

// CreateObject instantiates an object at its primary.
func (c *Client) CreateObject(typeName string, id core.ObjectID) error {
	body := encodeCreateReq(&createReq{object: id, typeName: typeName})
	deadline := time.Now().Add(c.retryBudget)
	var lastErr error
	for attempt := 0; attempt < c.maxRetries; attempt++ {
		if attempt > 0 && !c.backoff(attempt, deadline) {
			break
		}
		g, err := c.lookup(id)
		if err != nil {
			return err
		}
		if _, err := c.pool.Call(g.Primary, MethodCreate, body); err == nil {
			return nil
		} else {
			lastErr = err
			if _, ok := ParseNotResponsible(err); ok {
				c.refresh()
				continue
			}
			if !c.refresh() {
				return err
			}
		}
	}
	return lastErr
}

// DeleteObject removes an object and all its state at its primary.
func (c *Client) DeleteObject(id core.ObjectID) error {
	body := wire.AppendUvarint(nil, uint64(id))
	deadline := time.Now().Add(c.retryBudget)
	var lastErr error
	for attempt := 0; attempt < c.maxRetries; attempt++ {
		if attempt > 0 && !c.backoff(attempt, deadline) {
			break
		}
		g, err := c.lookup(id)
		if err != nil {
			return err
		}
		if _, err := c.pool.Call(g.Primary, MethodDelete, body); err == nil {
			return nil
		} else {
			lastErr = err
			if _, ok := ParseNotResponsible(err); ok {
				c.refresh()
				continue
			}
			if !c.refresh() {
				return err
			}
		}
	}
	return lastErr
}

// RegisterType installs a type on every node of every group (code deploy).
func (c *Client) RegisterType(t *core.ObjectType) error {
	body := t.Encode()
	seen := map[string]bool{}
	c.dirMu.RLock()
	groups := c.dir.Groups()
	c.dirMu.RUnlock()
	for _, g := range groups {
		for _, addr := range g.Replicas() {
			if seen[addr] {
				continue
			}
			seen[addr] = true
			if _, err := c.pool.Call(addr, MethodRegisterType, body); err != nil {
				return fmt.Errorf("cluster: register type at %s: %w", addr, err)
			}
		}
	}
	return nil
}

// Migrate moves an object to the given group via its current primary.
func (c *Client) Migrate(id core.ObjectID, destGroup uint64) error {
	// A bootstrap directory (static config file) knows nothing about
	// overrides installed by earlier migrations, so the "already there"
	// check below would silently no-op a real move. Resolve the object's
	// current primary against the coordinator's view when there is one.
	c.refresh()
	g, err := c.lookup(id)
	if err != nil {
		return err
	}
	var dest shard.Group
	found := false
	c.dirMu.RLock()
	for _, cand := range c.dir.Groups() {
		if cand.ID == destGroup {
			dest = cand
			found = true
		}
	}
	c.dirMu.RUnlock()
	if !found {
		return fmt.Errorf("cluster: no group %d", destGroup)
	}
	if g.ID == destGroup {
		return nil
	}
	body := encodeMigrateReq(&migrateReq{object: id, destPrimary: dest.Primary, destGroup: destGroup})
	if _, err := c.pool.Call(g.Primary, MethodMigrate, body); err != nil {
		return err
	}
	// Keep the local view coherent for subsequent calls. A move back to
	// the object's hash home clears the override, mirroring the cutover.
	c.dirMu.Lock()
	if home, herr := c.dir.DefaultGroupID(uint64(id)); herr == nil && home == destGroup {
		c.dir.ClearOverride(uint64(id))
	} else {
		c.dir.SetOverride(uint64(id), destGroup)
	}
	c.dirMu.Unlock()
	return nil
}

// HotObjects returns the load ranking observed at the given node.
func (c *Client) HotObjects(addr string, limit int) ([]core.HotObject, error) {
	body := wire.AppendUvarint(nil, uint64(limit))
	resp, err := c.pool.Call(addr, MethodHotObjects, body)
	if err != nil {
		return nil, err
	}
	return decodeHotResp(resp)
}

// RebalanceHot is the elasticity loop the paper leaves as future work
// (§7), made possible by objects being microshards: it finds the busiest
// and idlest replica groups by observed invocation counts and migrates up
// to k of the busiest group's hottest objects to the idlest group —
// without disrupting computation on any other object.
func (c *Client) RebalanceHot(k int) (moved int, err error) {
	groups := c.Directory().Groups()
	if len(groups) < 2 {
		return 0, nil
	}
	type groupLoad struct {
		group shard.Group
		total uint64
		hot   []core.HotObject
	}
	loads := make([]groupLoad, 0, len(groups))
	for _, g := range groups {
		hot, err := c.HotObjects(g.Primary, 4*k)
		if err != nil {
			return 0, err
		}
		gl := groupLoad{group: g, hot: hot}
		for _, h := range hot {
			gl.total += h.Count
		}
		loads = append(loads, gl)
	}
	busiest, idlest := 0, 0
	for i := range loads {
		if loads[i].total > loads[busiest].total {
			busiest = i
		}
		if loads[i].total < loads[idlest].total {
			idlest = i
		}
	}
	if busiest == idlest || loads[busiest].total == loads[idlest].total {
		return 0, nil
	}
	dest := loads[idlest].group.ID
	for _, h := range loads[busiest].hot {
		if moved >= k {
			break
		}
		// Skip objects already homed elsewhere by a previous move.
		g, err := c.lookup(h.ID)
		if err != nil || g.ID != loads[busiest].group.ID {
			continue
		}
		if err := c.Migrate(h.ID, dest); err != nil {
			return moved, err
		}
		moved++
	}
	return moved, nil
}

// Stats fetches a node's stats line (debugging).
func (c *Client) Stats(addr string) (string, error) {
	resp, err := c.pool.Call(addr, MethodStats, nil)
	return string(resp), err
}
