package cluster

import (
	"io"
	"net/http"
	"strings"
	"testing"

	"lambdastore/internal/core"
	"lambdastore/internal/fault"
	"lambdastore/internal/shard"
)

// postFaults POSTs a fault-grammar script to a node's /faults endpoint and
// returns the response body and status code.
func postFaults(t *testing.T, debugAddr, script string) (string, int) {
	t.Helper()
	resp, err := http.Post("http://"+debugAddr+"/faults", "text/plain", strings.NewReader(script))
	if err != nil {
		t.Fatalf("POST /faults: %v", err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read /faults response: %v", err)
	}
	return string(body), resp.StatusCode
}

// TestFaultsEndpoint drives the fault plane end to end over HTTP, the way
// `lambdactl fault` does: arm a one-shot rpc.send error against the node,
// watch a client invocation fail, confirm the firing shows up both in the
// GET /faults description and as /metrics counters, then reset the plane
// and watch the same invocation succeed.
func TestFaultsEndpoint(t *testing.T) {
	defer fault.Reset()
	node, err := StartNode(NodeOptions{
		Addr:      "127.0.0.1:0",
		DataDir:   t.TempDir(),
		GroupID:   0,
		DebugAddr: "127.0.0.1:0",
	})
	if err != nil {
		t.Fatalf("StartNode: %v", err)
	}
	defer node.Close()
	dir := shard.NewDirectory(nil)
	dir.SetGroup(shard.Group{ID: 0, Primary: node.Addr()})
	node.SetDirectory(dir)

	c, err := NewClient(ClientConfig{Directory: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.RegisterType(counterType(t)); err != nil {
		t.Fatal(err)
	}
	if err := c.CreateObject("Counter", 1); err != nil {
		t.Fatal(err)
	}

	// A malformed script must be rejected with the offending line echoed.
	if body, code := postFaults(t, node.DebugAddr(), "rule rpc.send explode"); code == http.StatusOK {
		t.Fatalf("malformed rule accepted: %q", body)
	}

	// Arm one injected send error against this node, exactly once.
	if body, code := postFaults(t, node.DebugAddr(), "rule rpc.send@"+node.Addr()+" error count=1"); code != http.StatusOK {
		t.Fatalf("POST /faults: %d %q", code, body)
	}
	if _, err := c.Invoke(1, "add", [][]byte{core.I64Bytes(1)}); err == nil {
		t.Fatal("invoke succeeded through an armed rpc.send error rule")
	}

	// The firing is visible on the control surface and on /metrics.
	desc, err := httpGetBody(node.DebugAddr() + "/faults")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(desc, "rule rpc.send@"+node.Addr()+" error count=1") {
		t.Errorf("GET /faults does not describe the armed rule:\n%s", desc)
	}
	if !strings.Contains(desc, "# fired rpc.send.error 1") {
		t.Errorf("GET /faults does not report the firing:\n%s", desc)
	}
	m := fetchMetrics(t, node.DebugAddr())
	if m["fault.injected.error"] != 1 || m["fault.injected.total"] != 1 {
		t.Errorf("registry counters = error:%d total:%d, want 1/1", m["fault.injected.error"], m["fault.injected.total"])
	}
	if m["fault.rpc.send.error"] != 1 {
		t.Errorf("per-site gauge fault.rpc.send.error = %d, want 1", m["fault.rpc.send.error"])
	}

	// Reset disarms everything; the cluster heals.
	if body, code := postFaults(t, node.DebugAddr(), "reset"); code != http.StatusOK {
		t.Fatalf("POST reset: %d %q", code, body)
	}
	if _, err := c.Invoke(1, "add", [][]byte{core.I64Bytes(1)}); err != nil {
		t.Fatalf("invoke after reset: %v", err)
	}
}

// httpGetBody fetches a debug URL and returns its body.
func httpGetBody(hostPath string) (string, error) {
	resp, err := http.Get("http://" + hostPath)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	return string(body), err
}
