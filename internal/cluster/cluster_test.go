package cluster

import (
	"errors"
	"os"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"lambdastore/internal/coordinator"
	"lambdastore/internal/core"
	"lambdastore/internal/paxos"
	"lambdastore/internal/rpc"
	"lambdastore/internal/shard"
	"lambdastore/internal/vm"
)

// counterType builds a minimal Counter type for cluster tests.
func counterType(t *testing.T) *core.ObjectType {
	t.Helper()
	clean := `
func read params=0
  str "count"
  hostcall val_get
  dup
  push -1
  eq
  jnz absent
  unpack.ptr
  load64
  ret
absent:
  pop
  push 0
  ret
end

;; emit(v): store v into "count" and set it as the result.
func emit params=1 locals=1
  push 8
  hostcall alloc
  local.set 1
  local.get 1
  local.get 0
  store64
  str "count"
  local.get 1
  push 8
  hostcall val_set
  local.get 1
  push 8
  hostcall set_result
  ret
end

func add params=0 export
  call read
  push 0
  hostcall arg
  unpack.ptr
  load64
  add
  call emit
  ret
end

func get params=0 locals=1 export
  push 8
  hostcall alloc
  local.set 0
  local.get 0
  call read
  store64
  local.get 0
  push 8
  hostcall set_result
  ret
end

;; ping_add(target, delta): cross-object invoke of add on target.
func ping_add params=0 locals=2 export
  push 1
  hostcall arg
  unpack.ptr
  load64
  local.set 1
  push 8
  hostcall alloc
  local.set 0
  local.get 0
  local.get 1
  store64
  local.get 0
  push 8
  hostcall call_arg
  push 0
  hostcall arg
  unpack.ptr
  load64
  str "add"
  hostcall invoke
  dup
  unpack.ptr
  swap
  unpack.len
  hostcall set_result
  ret
end
`
	mod, err := vm.Assemble(clean)
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	typ, err := core.NewObjectType("Counter",
		[]core.FieldDef{{Name: "count", Kind: core.FieldValue}},
		[]core.MethodInfo{
			{Name: "add"},
			{Name: "get", ReadOnly: true, Deterministic: true},
			{Name: "ping_add"},
		}, mod)
	if err != nil {
		t.Fatalf("type: %v", err)
	}
	return typ
}

// startGroup boots n nodes forming one replica group with a static
// directory, first node primary.
func startGroup(t *testing.T, n int, groupID uint64) ([]*Node, *shard.Directory) {
	t.Helper()
	dir := shard.NewDirectory(nil)
	var nodes []*Node
	for i := 0; i < n; i++ {
		node, err := StartNode(NodeOptions{
			Addr:      "127.0.0.1:0",
			DataDir:   t.TempDir(),
			GroupID:   groupID,
			Directory: dir,
		})
		if err != nil {
			t.Fatalf("StartNode: %v", err)
		}
		t.Cleanup(func() { node.Close() })
		nodes = append(nodes, node)
	}
	g := shard.Group{ID: groupID, Primary: nodes[0].Addr()}
	for _, b := range nodes[1:] {
		g.Backups = append(g.Backups, b.Addr())
	}
	dir.SetGroup(g)
	for _, node := range nodes {
		node.SetDirectory(dir)
	}
	return nodes, dir
}

func newGroupClient(t *testing.T, dir *shard.Directory) *Client {
	t.Helper()
	c, err := NewClient(ClientConfig{Directory: dir})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	return c
}

func TestSingleGroupInvokeAndReplicate(t *testing.T) {
	nodes, dir := startGroup(t, 3, 0)
	c := newGroupClient(t, dir)
	if err := c.RegisterType(counterType(t)); err != nil {
		t.Fatal(err)
	}
	if err := c.CreateObject("Counter", 1); err != nil {
		t.Fatal(err)
	}
	res, err := c.Invoke(1, "add", [][]byte{core.I64Bytes(5)})
	if err != nil {
		t.Fatal(err)
	}
	if core.BytesI64(res) != 5 {
		t.Fatalf("add = %d", core.BytesI64(res))
	}

	// The write-set must be on every backup (synchronous shipping).
	for i, node := range nodes {
		v, err := node.Runtime().GetValueField(1, "count")
		if err != nil {
			t.Fatalf("node %d: %v", i, err)
		}
		if core.BytesI64(v) != 5 {
			t.Fatalf("node %d count = %d", i, core.BytesI64(v))
		}
	}
}

func TestReplicaReads(t *testing.T) {
	nodes, dir := startGroup(t, 3, 0)
	c := newGroupClient(t, dir)
	if err := c.RegisterType(counterType(t)); err != nil {
		t.Fatal(err)
	}
	if err := c.CreateObject("Counter", 1); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Invoke(1, "add", [][]byte{core.I64Bytes(7)}); err != nil {
		t.Fatal(err)
	}
	// Spread reads over replicas; all must observe the committed value.
	for i := 0; i < 9; i++ {
		res, err := c.InvokeRead(1, "get", nil)
		if err != nil {
			t.Fatalf("read %d: %v", i, err)
		}
		if core.BytesI64(res) != 7 {
			t.Fatalf("read %d = %d", i, core.BytesI64(res))
		}
	}
	// Backups served some of those reads.
	var backupInvocations uint64
	for _, node := range nodes[1:] {
		inv, _ := node.Runtime().Stats()
		backupInvocations += inv
	}
	if backupInvocations == 0 {
		t.Fatal("no read executed at a backup")
	}
}

func TestBackupRejectsMutation(t *testing.T) {
	nodes, dir := startGroup(t, 2, 0)
	c := newGroupClient(t, dir)
	if err := c.RegisterType(counterType(t)); err != nil {
		t.Fatal(err)
	}
	if err := c.CreateObject("Counter", 1); err != nil {
		t.Fatal(err)
	}
	// Talk to the backup directly with a mutating request.
	pool := rpc.NewPool(nil)
	defer pool.Close()
	body := encodeInvokeReq(&invokeReq{object: 1, method: "add", args: [][]byte{core.I64Bytes(1)}})
	_, err := pool.Call(nodes[1].Addr(), MethodInvoke, body)
	if err == nil {
		t.Fatal("backup executed a mutating invocation")
	}
	if hint, ok := ParseNotResponsible(err); !ok || hint != nodes[0].Addr() {
		t.Fatalf("err = %v (hint %q)", err, hint)
	}
}

func TestCrossObjectRoutingAcrossGroups(t *testing.T) {
	// Two groups; objects land by id%2. A method on an object in group 0
	// invokes an object in group 1 — the node must forward it.
	dir := shard.NewDirectory(nil)
	var nodes []*Node
	for gid := uint64(0); gid < 2; gid++ {
		node, err := StartNode(NodeOptions{
			Addr:      "127.0.0.1:0",
			DataDir:   t.TempDir(),
			GroupID:   gid,
			Directory: dir,
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { node.Close() })
		nodes = append(nodes, node)
		dir.SetGroup(shard.Group{ID: gid, Primary: node.Addr()})
	}
	for _, n := range nodes {
		n.SetDirectory(dir)
	}
	c := newGroupClient(t, dir)
	if err := c.RegisterType(counterType(t)); err != nil {
		t.Fatal(err)
	}
	// Object 2 -> group 0, object 3 -> group 1.
	if err := c.CreateObject("Counter", 2); err != nil {
		t.Fatal(err)
	}
	if err := c.CreateObject("Counter", 3); err != nil {
		t.Fatal(err)
	}
	// ping_add on object 2 invokes add on object 3.
	res, err := c.Invoke(2, "ping_add", [][]byte{core.I64Bytes(3), core.I64Bytes(11)})
	if err != nil {
		t.Fatal(err)
	}
	if core.BytesI64(res) != 11 {
		t.Fatalf("ping_add = %d", core.BytesI64(res))
	}
	got, err := c.InvokeRead(3, "get", nil)
	if err != nil || core.BytesI64(got) != 11 {
		t.Fatalf("target count = %d, %v", core.BytesI64(got), err)
	}
	if nodes[0].Forwarded() == 0 {
		t.Fatal("cross-group invocation was not forwarded")
	}
}

func TestMigrationMovesObject(t *testing.T) {
	dir := shard.NewDirectory(nil)
	var nodes []*Node
	for gid := uint64(0); gid < 2; gid++ {
		node, err := StartNode(NodeOptions{
			Addr:      "127.0.0.1:0",
			DataDir:   t.TempDir(),
			GroupID:   gid,
			Directory: dir,
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { node.Close() })
		nodes = append(nodes, node)
		dir.SetGroup(shard.Group{ID: gid, Primary: node.Addr()})
	}
	for _, n := range nodes {
		n.SetDirectory(dir)
	}
	c := newGroupClient(t, dir)
	if err := c.RegisterType(counterType(t)); err != nil {
		t.Fatal(err)
	}
	// Object 4 -> group 0 by default.
	if err := c.CreateObject("Counter", 4); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Invoke(4, "add", [][]byte{core.I64Bytes(42)}); err != nil {
		t.Fatal(err)
	}

	if err := c.Migrate(4, 1); err != nil {
		t.Fatalf("migrate: %v", err)
	}

	// The object must now live in group 1 with its state intact.
	g, err := dir.Lookup(4)
	if err != nil || g.ID != 1 {
		t.Fatalf("post-migration lookup: group %d, %v", g.ID, err)
	}
	res, err := c.Invoke(4, "add", [][]byte{core.I64Bytes(1)})
	if err != nil {
		t.Fatal(err)
	}
	if core.BytesI64(res) != 43 {
		t.Fatalf("count after migration = %d", core.BytesI64(res))
	}
	// State present at the new primary, gone from the old one.
	if _, err := nodes[1].Runtime().GetValueField(4, "count"); err != nil {
		t.Fatalf("state missing at destination: %v", err)
	}
	if _, err := nodes[0].Runtime().GetValueField(4, "count"); !errors.Is(err, core.ErrNotFound) {
		t.Fatalf("state still at source: %v", err)
	}
	// Other objects on group 0 were never disturbed (microshard property):
	// create one and use it during/after migration.
	if err := c.CreateObject("Counter", 6); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Invoke(6, "add", [][]byte{core.I64Bytes(2)}); err != nil {
		t.Fatal(err)
	}
}

func TestFailoverWithCoordinator(t *testing.T) {
	// Three coordinator replicas + one 3-node group; kill the primary and
	// expect a backup promotion, then keep invoking through the client.
	coordIDs := []uint64{1, 2, 3}
	var services []*coordinator.Service
	var coordSrvs []*rpc.Server
	coordAddrs := make(map[uint64]string)
	pool := rpc.NewPool(nil)
	defer pool.Close()

	for _, id := range coordIDs {
		svc := coordinator.New(id, coordIDs, nil, coordinator.Options{
			HeartbeatTimeout: 400 * time.Millisecond,
			CheckInterval:    100 * time.Millisecond,
		})
		services = append(services, svc)
		srv := rpc.NewServer()
		coordinator.RegisterServer(srv, svc)
		addr, err := srv.Serve("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		coordSrvs = append(coordSrvs, srv)
		coordAddrs[id] = addr
	}
	t.Cleanup(func() {
		for _, s := range coordSrvs {
			s.Close()
		}
	})
	var coordList []string
	for i, svc := range services {
		trans := paxos.NewRPCTransport(svc.Node(), pool, coordAddrs)
		svc.SetTransport(trans)
		svc.Start()
		coordList = append(coordList, coordAddrs[coordIDs[i]])
	}
	t.Cleanup(func() {
		for _, svc := range services {
			svc.Close()
		}
	})

	// Boot 3 storage nodes using the coordinator.
	var nodes []*Node
	for i := 0; i < 3; i++ {
		node, err := StartNode(NodeOptions{
			Addr:              "127.0.0.1:0",
			DataDir:           t.TempDir(),
			GroupID:           0,
			Coordinators:      coordList,
			HeartbeatInterval: 100 * time.Millisecond,
		})
		if err != nil {
			t.Fatal(err)
		}
		nodes = append(nodes, node)
	}
	closed := make(map[int]bool)
	t.Cleanup(func() {
		for i, n := range nodes {
			if !closed[i] {
				n.Close()
			}
		}
	})

	cc := coordinator.NewClient(pool, coordList)
	g := shard.Group{ID: 0, Primary: nodes[0].Addr(), Backups: []string{nodes[1].Addr(), nodes[2].Addr()}}
	if err := cc.SetGroup(g); err != nil {
		t.Fatal(err)
	}

	// Wait for nodes to pick the config up.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if nodes[0].isPrimary() {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("primary never learned configuration")
		}
		time.Sleep(20 * time.Millisecond)
	}

	client, err := NewClient(ClientConfig{Coordinators: coordList})
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	if err := client.RegisterType(counterType(t)); err != nil {
		t.Fatal(err)
	}
	if err := client.CreateObject("Counter", 1); err != nil {
		t.Fatal(err)
	}
	if _, err := client.Invoke(1, "add", [][]byte{core.I64Bytes(9)}); err != nil {
		t.Fatal(err)
	}

	// Kill the primary.
	closed[0] = true
	nodes[0].Close()

	// The coordinator must promote a backup; the client must recover.
	deadline = time.Now().Add(10 * time.Second)
	for {
		res, err := client.Invoke(1, "get", nil)
		if err == nil {
			if core.BytesI64(res) != 9 {
				t.Fatalf("post-failover count = %d (lost acknowledged write)", core.BytesI64(res))
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("failover never completed: %v", err)
		}
		time.Sleep(50 * time.Millisecond)
	}

	// Writes keep working at the new primary.
	res, err := client.Invoke(1, "add", [][]byte{core.I64Bytes(1)})
	if err != nil {
		t.Fatalf("post-failover write: %v", err)
	}
	if core.BytesI64(res) != 10 {
		t.Fatalf("post-failover add = %d", core.BytesI64(res))
	}
}

func TestRegisterTypeReachesAllReplicas(t *testing.T) {
	nodes, dir := startGroup(t, 3, 0)
	c := newGroupClient(t, dir)
	if err := c.RegisterType(counterType(t)); err != nil {
		t.Fatal(err)
	}
	for i, node := range nodes {
		if _, ok := node.Runtime().Type("Counter"); !ok {
			t.Fatalf("node %d missing the type", i)
		}
	}
}

func TestWireRoundTrips(t *testing.T) {
	ir := &invokeReq{object: 7, method: "m", args: [][]byte{[]byte("a"), nil, []byte("ccc")}, readOnly: true}
	dec, err := decodeInvokeReq(encodeInvokeReq(ir))
	if err != nil {
		t.Fatal(err)
	}
	if dec.object != 7 || dec.method != "m" || !dec.readOnly || len(dec.args) != 3 || string(dec.args[2]) != "ccc" {
		t.Fatalf("decoded %+v", dec)
	}
	cr := &createReq{object: 9, typeName: "T"}
	dcr, err := decodeCreateReq(encodeCreateReq(cr))
	if err != nil || dcr.object != 9 || dcr.typeName != "T" {
		t.Fatalf("create round trip: %+v %v", dcr, err)
	}
	mr := &migrateReq{object: 4, destPrimary: "1.2.3.4:5", destGroup: 2}
	dmr, err := decodeMigrateReq(encodeMigrateReq(mr))
	if err != nil || dmr.destPrimary != "1.2.3.4:5" || dmr.destGroup != 2 {
		t.Fatalf("migrate round trip: %+v %v", dmr, err)
	}
	ig := &ingestReq{object: 3, keys: [][]byte{[]byte("k")}, values: [][]byte{[]byte("v")}}
	dig, err := decodeIngestReq(encodeIngestReq(ig))
	if err != nil || len(dig.keys) != 1 || string(dig.values[0]) != "v" {
		t.Fatalf("ingest round trip: %+v %v", dig, err)
	}
}

func TestClusterTransaction(t *testing.T) {
	_, dir := startGroup(t, 3, 0)
	c := newGroupClient(t, dir)
	if err := c.RegisterType(counterType(t)); err != nil {
		t.Fatal(err)
	}
	for id := core.ObjectID(1); id <= 2; id++ {
		if err := c.CreateObject("Counter", id); err != nil {
			t.Fatal(err)
		}
	}
	results, err := c.InvokeTransaction([]core.TxCall{
		{Object: 1, Method: "add", Args: [][]byte{core.I64Bytes(5)}},
		{Object: 2, Method: "add", Args: [][]byte{core.I64Bytes(7)}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if core.BytesI64(results[0]) != 5 || core.BytesI64(results[1]) != 7 {
		t.Fatalf("results = %d, %d", core.BytesI64(results[0]), core.BytesI64(results[1]))
	}
	// Both commits visible and replicated.
	got, err := c.InvokeRead(1, "get", nil)
	if err != nil || core.BytesI64(got) != 5 {
		t.Fatalf("get(1) = %d, %v", core.BytesI64(got), err)
	}
	got, err = c.InvokeRead(2, "get", nil)
	if err != nil || core.BytesI64(got) != 7 {
		t.Fatalf("get(2) = %d, %v", core.BytesI64(got), err)
	}
}

func TestClusterTransactionSpanningGroupsRejected(t *testing.T) {
	dir := shard.NewDirectory(nil)
	var nodes []*Node
	for gid := uint64(0); gid < 2; gid++ {
		node, err := StartNode(NodeOptions{
			Addr: "127.0.0.1:0", DataDir: t.TempDir(), GroupID: gid, Directory: dir,
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { node.Close() })
		nodes = append(nodes, node)
		dir.SetGroup(shard.Group{ID: gid, Primary: node.Addr()})
	}
	for _, n := range nodes {
		n.SetDirectory(dir)
	}
	c := newGroupClient(t, dir)
	if err := c.RegisterType(counterType(t)); err != nil {
		t.Fatal(err)
	}
	// Objects 2 and 3 land in different groups.
	_, err := c.InvokeTransaction([]core.TxCall{
		{Object: 2, Method: "add", Args: [][]byte{core.I64Bytes(1)}},
		{Object: 3, Method: "add", Args: [][]byte{core.I64Bytes(1)}},
	})
	if err == nil {
		t.Fatal("cross-group transaction accepted")
	}
}

func TestNodeRestartRecoversState(t *testing.T) {
	dir := shard.NewDirectory(nil)
	dataDir := t.TempDir()
	node, err := StartNode(NodeOptions{Addr: "127.0.0.1:0", DataDir: dataDir, Directory: dir})
	if err != nil {
		t.Fatal(err)
	}
	dir.SetGroup(shard.Group{ID: 0, Primary: node.Addr()})
	node.SetDirectory(dir)
	c := newGroupClient(t, dir)
	if err := c.RegisterType(counterType(t)); err != nil {
		t.Fatal(err)
	}
	if err := c.CreateObject("Counter", 1); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Invoke(1, "add", [][]byte{core.I64Bytes(21)}); err != nil {
		t.Fatal(err)
	}
	addr := node.Addr()
	if err := node.Close(); err != nil {
		t.Fatal(err)
	}

	// Restart on the same data directory and address.
	node2, err := StartNode(NodeOptions{Addr: addr, DataDir: dataDir, Directory: dir})
	if err != nil {
		t.Fatalf("restart: %v", err)
	}
	t.Cleanup(func() { node2.Close() })
	// Types and object state recovered from WAL/SSTs.
	if _, ok := node2.Runtime().Type("Counter"); !ok {
		t.Fatal("type lost across restart")
	}
	deadline := time.Now().Add(3 * time.Second)
	for {
		res, err := c.Invoke(1, "add", [][]byte{core.I64Bytes(1)})
		if err == nil {
			if core.BytesI64(res) != 22 {
				t.Fatalf("count after restart = %d", core.BytesI64(res))
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("node never recovered: %v", err)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

func TestRebalanceHotMovesLoad(t *testing.T) {
	dir := shard.NewDirectory(nil)
	var nodes []*Node
	for gid := uint64(0); gid < 2; gid++ {
		node, err := StartNode(NodeOptions{
			Addr: "127.0.0.1:0", DataDir: t.TempDir(), GroupID: gid, Directory: dir,
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { node.Close() })
		nodes = append(nodes, node)
		dir.SetGroup(shard.Group{ID: gid, Primary: node.Addr()})
	}
	for _, n := range nodes {
		n.SetDirectory(dir)
	}
	c := newGroupClient(t, dir)
	if err := c.RegisterType(counterType(t)); err != nil {
		t.Fatal(err)
	}
	// Objects 2,4,6,8 land in group 0; hammer 2 and 4 hard.
	for _, id := range []core.ObjectID{2, 4, 6, 8, 3} {
		if err := c.CreateObject("Counter", id); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 50; i++ {
		for _, id := range []core.ObjectID{2, 4} {
			if _, err := c.Invoke(id, "add", [][]byte{core.I64Bytes(1)}); err != nil {
				t.Fatal(err)
			}
		}
	}

	moved, err := c.RebalanceHot(2)
	if err != nil {
		t.Fatalf("rebalance: %v", err)
	}
	if moved != 2 {
		t.Fatalf("moved %d objects, want 2", moved)
	}
	// The hot objects now live in group 1 with state intact.
	for _, id := range []core.ObjectID{2, 4} {
		g, err := dir.Lookup(uint64(id))
		if err != nil || g.ID != 1 {
			t.Fatalf("object %d in group %d, %v", id, g.ID, err)
		}
		res, err := c.Invoke(id, "add", [][]byte{core.I64Bytes(0)})
		if err != nil || core.BytesI64(res) != 50 {
			t.Fatalf("object %d count after move = %d, %v", id, core.BytesI64(res), err)
		}
	}
	// Cold objects stayed put.
	if g, _ := dir.Lookup(6); g.ID != 0 {
		t.Fatalf("cold object moved to group %d", g.ID)
	}
}

func TestLoadConfigFile(t *testing.T) {
	path := t.TempDir() + "/cluster.json"
	cfg := `{
  "groups": [
    {"id": 0, "primary": "10.0.0.1:7000", "backups": ["10.0.0.2:7000"]},
    {"id": 1, "primary": "10.0.1.1:7000"}
  ],
  "coordinators": ["10.0.9.1:7101"]
}`
	if err := os.WriteFile(path, []byte(cfg), 0o644); err != nil {
		t.Fatal(err)
	}
	fc, err := LoadConfigFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(fc.Groups) != 2 || fc.Coordinators[0] != "10.0.9.1:7101" {
		t.Fatalf("parsed %+v", fc)
	}
	d := fc.Directory()
	g, err := d.Lookup(0)
	if err != nil || g.Primary != "10.0.0.1:7000" || len(g.Backups) != 1 {
		t.Fatalf("directory group %+v, %v", g, err)
	}
	if _, err := LoadConfigFile(path + ".missing"); err == nil {
		t.Fatal("missing file loaded")
	}
	bad := t.TempDir() + "/bad.json"
	os.WriteFile(bad, []byte("{nope"), 0o644)
	if _, err := LoadConfigFile(bad); err == nil {
		t.Fatal("bad JSON loaded")
	}
}

func TestMigrationUnderConcurrentLoad(t *testing.T) {
	// The microshard claim (§4.2): migrating one object must not disrupt
	// computation on other objects, and the migrated object itself must
	// lose no committed writes.
	dir := shard.NewDirectory(nil)
	var nodes []*Node
	for gid := uint64(0); gid < 2; gid++ {
		node, err := StartNode(NodeOptions{
			Addr: "127.0.0.1:0", DataDir: t.TempDir(), GroupID: gid, Directory: dir,
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { node.Close() })
		nodes = append(nodes, node)
		dir.SetGroup(shard.Group{ID: gid, Primary: node.Addr()})
	}
	for _, n := range nodes {
		n.SetDirectory(dir)
	}
	c := newGroupClient(t, dir)
	if err := c.RegisterType(counterType(t)); err != nil {
		t.Fatal(err)
	}
	// Object 4 (group 0) migrates; objects 6 and 8 (group 0) stay busy.
	for _, id := range []core.ObjectID{4, 6, 8} {
		if err := c.CreateObject("Counter", id); err != nil {
			t.Fatal(err)
		}
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	var otherOps atomic.Int64
	var migratedOps atomic.Int64
	for _, id := range []core.ObjectID{6, 8} {
		wg.Add(1)
		go func(id core.ObjectID) {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if _, err := c.Invoke(id, "add", [][]byte{core.I64Bytes(1)}); err != nil {
					t.Errorf("other-object invoke during migration: %v", err)
					return
				}
				otherOps.Add(1)
			}
		}(id)
	}
	// Writer on the migrating object: some invocations may fail during the
	// cutover window (clients retry in production); count the successes.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if _, err := c.Invoke(4, "add", [][]byte{core.I64Bytes(1)}); err == nil {
				migratedOps.Add(1)
			}
		}
	}()

	time.Sleep(50 * time.Millisecond)
	if err := c.Migrate(4, 1); err != nil {
		t.Fatalf("migrate under load: %v", err)
	}
	time.Sleep(50 * time.Millisecond)
	close(stop)
	wg.Wait()

	if otherOps.Load() == 0 {
		t.Fatal("other objects made no progress during migration")
	}
	// Every acknowledged write to the migrated object must be present.
	res, err := c.Invoke(4, "get", nil)
	if err != nil {
		t.Fatal(err)
	}
	if core.BytesI64(res) != migratedOps.Load() {
		t.Fatalf("migrated object count = %d, acknowledged writes = %d (lost writes)",
			core.BytesI64(res), migratedOps.Load())
	}
	if g, _ := dir.Lookup(4); g.ID != 1 {
		t.Fatalf("object 4 in group %d", g.ID)
	}
}
