// Package cluster assembles the full LambdaStore node — storage engine,
// object runtime, primary-backup replication, consistent cache, and RPC
// surface — plus the client library applications use to invoke
// LambdaObjects. This is the "aggregated" architecture of the paper:
// functions execute directly at the primary storage node of the object
// they belong to.
package cluster

import (
	"fmt"
	"strings"

	"lambdastore/internal/core"
	"lambdastore/internal/rpc"
	"lambdastore/internal/wire"
)

// RPC method names exposed by a storage node.
const (
	MethodInvoke       = "obj.invoke"
	MethodInvokeTx     = "obj.invoketx"
	MethodCreate       = "obj.create"
	MethodDelete       = "obj.delete"
	MethodRegisterType = "type.register"
	MethodPing         = "node.ping"
	MethodStats        = "node.stats"
	MethodSetDirectory = "node.setdir"
	MethodMigrate      = "node.migrate"
	MethodIngest       = "node.ingest"
	MethodHotObjects   = "node.hot"
	MethodHotWindow    = "node.hotwindow"
)

// notResponsiblePrefix marks routing errors; the payload after the prefix
// is the responsible primary's address (a hint for the client to retry).
const notResponsiblePrefix = "not-responsible:"

// notResponsibleError formats a routing rejection.
func notResponsibleError(primary string) error {
	return fmt.Errorf("%s%s", notResponsiblePrefix, primary)
}

// ParseNotResponsible extracts the primary hint from a routing rejection.
func ParseNotResponsible(err error) (string, bool) {
	if err == nil {
		return "", false
	}
	msg := err.Error()
	idx := strings.Index(msg, notResponsiblePrefix)
	if idx < 0 {
		return "", false
	}
	return strings.TrimSpace(msg[idx+len(notResponsiblePrefix):]), true
}

// invokeReq is the wire form of a method invocation.
type invokeReq struct {
	object   core.ObjectID
	method   string
	args     [][]byte
	readOnly bool   // client-requested replica-read
	tenant   string // admission-quota identity ("" = derive from the peer)
}

func encodeInvokeReq(r *invokeReq) []byte {
	var b []byte
	b = wire.AppendUvarint(b, uint64(r.object))
	b = wire.AppendString(b, r.method)
	var ro uint64
	if r.readOnly {
		ro = 1
	}
	b = wire.AppendUvarint(b, ro)
	b = wire.AppendBytesSlice(b, r.args)
	// The tenant tag rides after the args, appended only when set: frames
	// from tenant-less clients are byte-identical to the pre-tenant format,
	// and decoders treat a missing tail as no tenant.
	if r.tenant != "" {
		b = wire.AppendString(b, r.tenant)
	}
	return b
}

func decodeInvokeReq(body []byte) (*invokeReq, error) {
	r := &invokeReq{}
	var obj uint64
	var err error
	if obj, body, err = wire.Uvarint(body); err != nil {
		return nil, err
	}
	r.object = core.ObjectID(obj)
	if r.method, body, err = wire.String(body); err != nil {
		return nil, err
	}
	var ro uint64
	if ro, body, err = wire.Uvarint(body); err != nil {
		return nil, err
	}
	r.readOnly = ro != 0
	items, rest, err := wire.BytesSlice(body)
	if err != nil {
		return nil, err
	}
	for _, it := range items {
		r.args = append(r.args, append([]byte(nil), it...))
	}
	if len(rest) > 0 {
		if r.tenant, _, err = wire.String(rest); err != nil {
			return nil, err
		}
	}
	return r, nil
}

// createReq is the wire form of object creation.
type createReq struct {
	object   core.ObjectID
	typeName string
}

func encodeCreateReq(r *createReq) []byte {
	var b []byte
	b = wire.AppendUvarint(b, uint64(r.object))
	return wire.AppendString(b, r.typeName)
}

func decodeCreateReq(body []byte) (*createReq, error) {
	r := &createReq{}
	var obj uint64
	var err error
	if obj, body, err = wire.Uvarint(body); err != nil {
		return nil, err
	}
	r.object = core.ObjectID(obj)
	if r.typeName, _, err = wire.String(body); err != nil {
		return nil, err
	}
	return r, nil
}

// migrateReq asks a primary to move an object to another group.
type migrateReq struct {
	object      core.ObjectID
	destPrimary string
	destGroup   uint64
}

func encodeMigrateReq(r *migrateReq) []byte {
	var b []byte
	b = wire.AppendUvarint(b, uint64(r.object))
	b = wire.AppendString(b, r.destPrimary)
	return wire.AppendUvarint(b, r.destGroup)
}

func decodeMigrateReq(body []byte) (*migrateReq, error) {
	r := &migrateReq{}
	var obj uint64
	var err error
	if obj, body, err = wire.Uvarint(body); err != nil {
		return nil, err
	}
	r.object = core.ObjectID(obj)
	if r.destPrimary, body, err = wire.String(body); err != nil {
		return nil, err
	}
	if r.destGroup, _, err = wire.Uvarint(body); err != nil {
		return nil, err
	}
	return r, nil
}

// ingestReq carries a migrated object's state to its new primary.
type ingestReq struct {
	object core.ObjectID
	keys   [][]byte
	values [][]byte
}

func encodeIngestReq(r *ingestReq) []byte {
	var b []byte
	b = wire.AppendUvarint(b, uint64(r.object))
	b = wire.AppendBytesSlice(b, r.keys)
	b = wire.AppendBytesSlice(b, r.values)
	return b
}

func decodeIngestReq(body []byte) (*ingestReq, error) {
	r := &ingestReq{}
	var obj uint64
	var err error
	if obj, body, err = wire.Uvarint(body); err != nil {
		return nil, err
	}
	r.object = core.ObjectID(obj)
	if r.keys, body, err = wire.BytesSlice(body); err != nil {
		return nil, err
	}
	if r.values, _, err = wire.BytesSlice(body); err != nil {
		return nil, err
	}
	if len(r.keys) != len(r.values) {
		return nil, fmt.Errorf("cluster: ingest key/value mismatch")
	}
	// Copy out of the RPC buffer.
	for i := range r.keys {
		r.keys[i] = append([]byte(nil), r.keys[i]...)
		r.values[i] = append([]byte(nil), r.values[i]...)
	}
	return r, nil
}

// txReq is the wire form of a multi-call transaction.
type txReq struct {
	calls []core.TxCall
}

func encodeTxReq(r *txReq) []byte {
	var b []byte
	b = wire.AppendUvarint(b, uint64(len(r.calls)))
	for _, c := range r.calls {
		b = wire.AppendUvarint(b, uint64(c.Object))
		b = wire.AppendString(b, c.Method)
		b = wire.AppendBytesSlice(b, c.Args)
	}
	return b
}

func decodeTxReq(body []byte) (*txReq, error) {
	r := &txReq{}
	n, rest, err := wire.Uvarint(body)
	if err != nil {
		return nil, err
	}
	for i := uint64(0); i < n; i++ {
		var c core.TxCall
		var obj uint64
		if obj, rest, err = wire.Uvarint(rest); err != nil {
			return nil, err
		}
		c.Object = core.ObjectID(obj)
		if c.Method, rest, err = wire.String(rest); err != nil {
			return nil, err
		}
		var items [][]byte
		if items, rest, err = wire.BytesSlice(rest); err != nil {
			return nil, err
		}
		for _, it := range items {
			c.Args = append(c.Args, append([]byte(nil), it...))
		}
		r.calls = append(r.calls, c)
	}
	return r, nil
}

// encodeTxResp / decodeTxResp carry the per-call results.
func encodeTxResp(results [][]byte) []byte {
	return wire.AppendBytesSlice(nil, results)
}

func decodeTxResp(body []byte) ([][]byte, error) {
	items, _, err := wire.BytesSlice(body)
	if err != nil {
		return nil, err
	}
	out := make([][]byte, len(items))
	for i, it := range items {
		out[i] = append([]byte(nil), it...)
	}
	return out, nil
}

// encodeHotResp / decodeHotResp serialize a load ranking.
func encodeHotResp(hot []core.HotObject) []byte {
	var b []byte
	b = wire.AppendUvarint(b, uint64(len(hot)))
	for _, h := range hot {
		b = wire.AppendUvarint(b, uint64(h.ID))
		b = wire.AppendUvarint(b, h.Count)
	}
	return b
}

func decodeHotResp(body []byte) ([]core.HotObject, error) {
	n, rest, err := wire.Uvarint(body)
	if err != nil {
		return nil, err
	}
	out := make([]core.HotObject, 0, n)
	for i := uint64(0); i < n; i++ {
		var id, count uint64
		if id, rest, err = wire.Uvarint(rest); err != nil {
			return nil, err
		}
		if count, rest, err = wire.Uvarint(rest); err != nil {
			return nil, err
		}
		out = append(out, core.HotObject{ID: core.ObjectID(id), Count: count})
	}
	return out, nil
}

// MoveObject asks the source primary to live-migrate one object to the
// destination group (the rebalancer's actuator — wire codecs are
// unexported, so external drivers go through this helper).
func MoveObject(pool *rpc.Pool, sourcePrimary string, object uint64, destPrimary string, destGroup uint64) error {
	_, err := pool.Call(sourcePrimary, MethodMigrate, encodeMigrateReq(&migrateReq{
		object:      core.ObjectID(object),
		destPrimary: destPrimary,
		destGroup:   destGroup,
	}))
	return err
}

// HotWindow samples and resets one node's hot-object counters — the
// rebalancer's per-window load signal. The sample-and-reset contract
// assumes a single sampler per node.
func HotWindow(pool *rpc.Pool, addr string, limit int) ([]core.HotObject, error) {
	body, err := pool.Call(addr, MethodHotWindow, wire.AppendUvarint(nil, uint64(limit)))
	if err != nil {
		return nil, err
	}
	return decodeHotResp(body)
}
