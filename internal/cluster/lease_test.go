package cluster

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"lambdastore/internal/core"
	"lambdastore/internal/fault"
	"lambdastore/internal/rpc"
	"lambdastore/internal/shard"
)

// startLeasedGroup boots a static replica group with an explicit lease
// TTL (shorter than DefaultLeaseTTL so expiry tests stay fast).
func startLeasedGroup(t *testing.T, n int, ttl time.Duration) ([]*Node, *shard.Directory) {
	t.Helper()
	dir := shard.NewDirectory(nil)
	var nodes []*Node
	for i := 0; i < n; i++ {
		node, err := StartNode(NodeOptions{
			Addr:      "127.0.0.1:0",
			DataDir:   t.TempDir(),
			GroupID:   0,
			Directory: dir,
			LeaseTTL:  ttl,
		})
		if err != nil {
			t.Fatalf("StartNode: %v", err)
		}
		t.Cleanup(func() { node.Close() })
		nodes = append(nodes, node)
	}
	g := shard.Group{ID: 0, Primary: nodes[0].Addr()}
	for _, b := range nodes[1:] {
		g.Backups = append(g.Backups, b.Addr())
	}
	dir.SetGroup(g)
	for _, node := range nodes {
		node.SetDirectory(dir)
	}
	return nodes, dir
}

// TestLeaseRenewalLossBouncesReads drives the full lease lifecycle
// through the fault plane: a backup serves reads while renewals flow,
// bounces them to the primary once renewals are dropped and the lease
// expires, and serves again after renewals resume.
func TestLeaseRenewalLossBouncesReads(t *testing.T) {
	const ttl = 120 * time.Millisecond
	nodes, dir := startLeasedGroup(t, 3, ttl)
	c := newGroupClient(t, dir)
	if err := c.RegisterType(counterType(t)); err != nil {
		t.Fatal(err)
	}
	if err := c.CreateObject("Counter", 1); err != nil {
		t.Fatal(err)
	}
	mustAdd(t, c, 1, 5)

	pool := rpc.NewPool(nil)
	t.Cleanup(pool.Close)
	backup := nodes[1]

	// Leased steady state: the backup answers a direct replica read.
	if v := readAt(t, pool, backup.Addr(), 1); v != 5 {
		t.Fatalf("leased backup read = %d, want 5", v)
	}
	if backup.Metrics().Counter("reads.backup_served").Value() == 0 {
		t.Fatal("reads.backup_served did not move for a served replica read")
	}

	// Cut every renewal path: no standalone renewals, and no writes flow
	// so no frame piggybacks either. The lease must expire on its own
	// and the backup must start bouncing.
	fault.Add(fault.Rule{Site: fault.SiteLeaseRenew, Action: fault.Drop})
	t.Cleanup(fault.Reset)
	deadline := time.Now().Add(10 * ttl)
	for {
		_, err := directInvoke(pool, backup.Addr(), 1, "get", nil, true)
		if _, bounced := ParseNotResponsible(err); bounced {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("backup kept serving reads after renewals stopped")
		}
		time.Sleep(ttl / 8)
	}
	if backup.Metrics().Counter("lease.expired").Value() == 0 {
		t.Fatal("lease.expired did not count the expiry")
	}
	if backup.Metrics().Counter("reads.primary_bounced").Value() == 0 {
		t.Fatal("reads.primary_bounced did not count the bounce")
	}
	// The client still reads consistently throughout — via the primary.
	if v, err := c.InvokeRead(1, "get", nil); err != nil || core.BytesI64(v) != 5 {
		t.Fatalf("client read while unleased = %v, %v", v, err)
	}

	// Renewals resume; the backup regains a lease and serves again.
	fault.Reset()
	if v := readAt(t, pool, backup.Addr(), 1); v != 5 {
		t.Fatalf("re-leased backup read = %d, want 5", v)
	}
}

// quietCounterType is counterType with nothing declared about "get":
// module analysis alone must classify it routable-read-only.
func quietCounterType(t *testing.T) *core.ObjectType {
	t.Helper()
	base := counterType(t)
	typ, err := core.NewObjectType("QuietCounter",
		[]core.FieldDef{{Name: "count", Kind: core.FieldValue}},
		[]core.MethodInfo{{Name: "add"}, {Name: "get"}},
		base.Module)
	if err != nil {
		t.Fatalf("type: %v", err)
	}
	return typ
}

// TestInferredReadOnlyServedAtBackup covers the routing fix for provably
// read-only methods: a method never declared ReadOnly whose reachable
// call graph cannot mutate is (a) classified at validation time and (b)
// served by a leased backup even when the request arrives un-flagged
// through the write route, while genuinely mutating methods still bounce.
func TestInferredReadOnlyServedAtBackup(t *testing.T) {
	typ := quietCounterType(t)
	if m, ok := typ.Method("get"); !ok || !m.RoutableReadOnly() {
		t.Fatal("undeclared read-only method not inferred routable")
	}
	if m, ok := typ.Method("add"); !ok || m.RoutableReadOnly() {
		t.Fatal("mutating method classified routable-read-only")
	}

	nodes, dir := startLeasedGroup(t, 3, 150*time.Millisecond)
	c := newGroupClient(t, dir)
	if err := c.RegisterType(typ); err != nil {
		t.Fatal(err)
	}
	if err := c.CreateObject("QuietCounter", 1); err != nil {
		t.Fatal(err)
	}
	mustAdd(t, c, 1, 7)

	pool := rpc.NewPool(nil)
	t.Cleanup(pool.Close)
	backup := nodes[2]

	// Un-flagged invocation of the inferred-read-only method at a backup:
	// a stale-directory client would send exactly this. The backup must
	// serve it under its lease rather than bounce (retry through the
	// pre-first-grant window).
	deadline := time.Now().Add(3 * time.Second)
	for {
		res, err := directInvoke(pool, backup.Addr(), 1, "get", nil, false)
		if err == nil {
			if core.BytesI64(res) != 7 {
				t.Fatalf("backup served get = %d, want 7", core.BytesI64(res))
			}
			break
		}
		if _, bounced := ParseNotResponsible(err); !bounced || time.Now().After(deadline) {
			t.Fatalf("inferred read-only invoke at backup: %v", err)
		}
		time.Sleep(20 * time.Millisecond)
	}
	if backup.Metrics().Counter("reads.backup_served").Value() == 0 {
		t.Fatal("downgraded invoke not counted as backup-served")
	}

	// The mutating method must still bounce to the primary, lease or not.
	if _, err := directInvoke(pool, backup.Addr(), 1, "add", [][]byte{core.I64Bytes(1)}, false); err == nil {
		t.Fatal("backup executed a mutating invoke")
	} else if hint, bounced := ParseNotResponsible(err); !bounced || hint != nodes[0].Addr() {
		t.Fatalf("mutating invoke at backup: %v (hint %q)", err, hint)
	}
}

// TestLeasedReadsDuringWrites hammers leased replica reads concurrently
// with a writer and checks the lease's consistency contract under the
// race detector: a read that starts after a write is acknowledged
// observes that write, wherever it is served.
func TestLeasedReadsDuringWrites(t *testing.T) {
	_, dir := startLeasedGroup(t, 3, 150*time.Millisecond)
	c := newGroupClient(t, dir)
	if err := c.RegisterType(counterType(t)); err != nil {
		t.Fatal(err)
	}
	if err := c.CreateObject("Counter", 1); err != nil {
		t.Fatal(err)
	}

	const writes = 150
	var acked atomic.Int64
	var wg sync.WaitGroup
	errc := make(chan error, 8)
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := int64(1); i <= writes; i++ {
			if _, err := c.Invoke(1, "add", [][]byte{core.I64Bytes(1)}); err != nil {
				errc <- err
				return
			}
			acked.Store(i)
		}
	}()
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for acked.Load() < writes {
				floor := acked.Load()
				res, err := c.InvokeRead(1, "get", nil)
				if err != nil {
					errc <- err
					return
				}
				if got := core.BytesI64(res); got < floor {
					errc <- &staleReadError{got: got, floor: floor}
					return
				}
			}
		}()
	}
	wg.Wait()
	select {
	case err := <-errc:
		t.Fatal(err)
	default:
	}
	if res, err := c.InvokeRead(1, "get", nil); err != nil || core.BytesI64(res) != writes {
		t.Fatalf("final read = %v, %v; want %d", res, err, writes)
	}
}

type staleReadError struct{ got, floor int64 }

func (e *staleReadError) Error() string {
	return fmt.Sprintf("stale leased read: got %d after ack floor %d", e.got, e.floor)
}
