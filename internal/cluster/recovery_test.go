package cluster

import (
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"lambdastore/internal/coordinator"
	"lambdastore/internal/core"
	"lambdastore/internal/fault"
	"lambdastore/internal/paxos"
	"lambdastore/internal/recovery"
	"lambdastore/internal/replication"
	"lambdastore/internal/rpc"
	"lambdastore/internal/shard"
	"lambdastore/internal/store"
)

// rejoinCluster is the coordinator-backed fixture for anti-entropy tests:
// three coordinator replicas with the failure detector armed plus a
// three-node group booted with Rejoin enabled, first node primary. Nodes
// can be killed and restarted on their original data directories; the
// fault plane is reset around every test (it is process-global).
type rejoinCluster struct {
	t         *testing.T
	pool      *rpc.Pool
	coordList []string
	cc        *coordinator.Client
	client    *Client
	nodes     []*Node
	dirs      []string
	closed    []bool
}

func startRejoinCluster(t *testing.T, mod func(i int, o *NodeOptions)) *rejoinCluster {
	t.Helper()
	fault.Reset()
	t.Cleanup(fault.Reset)
	rc := &rejoinCluster{t: t, pool: rpc.NewPool(nil)}
	t.Cleanup(func() { rc.pool.Close() })

	coordIDs := []uint64{1, 2, 3}
	var services []*coordinator.Service
	coordAddrs := make(map[uint64]string)
	for _, id := range coordIDs {
		svc := coordinator.New(id, coordIDs, nil, coordinator.Options{
			HeartbeatTimeout: 400 * time.Millisecond,
			CheckInterval:    50 * time.Millisecond,
		})
		services = append(services, svc)
		srv := rpc.NewServer()
		coordinator.RegisterServer(srv, svc)
		addr, err := srv.Serve("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { srv.Close() })
		coordAddrs[id] = addr
	}
	for i, svc := range services {
		svc.SetTransport(paxos.NewRPCTransport(svc.Node(), rc.pool, coordAddrs))
		svc.Start()
		rc.coordList = append(rc.coordList, coordAddrs[coordIDs[i]])
	}
	t.Cleanup(func() {
		for _, svc := range services {
			svc.Close()
		}
	})

	for i := 0; i < 3; i++ {
		rc.dirs = append(rc.dirs, t.TempDir())
		rc.closed = append(rc.closed, true)
		rc.nodes = append(rc.nodes, nil)
		rc.startNode(i, mod)
	}
	t.Cleanup(func() {
		for i := range rc.nodes {
			if !rc.closed[i] {
				rc.nodes[i].Close()
			}
		}
	})

	rc.cc = coordinator.NewClient(rc.pool, rc.coordList)
	g := shard.Group{ID: 0, Primary: rc.nodes[0].Addr(),
		Backups: []string{rc.nodes[1].Addr(), rc.nodes[2].Addr()}}
	if err := rc.cc.SetGroup(g); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 5*time.Second, "initial primary", rc.nodes[0].isPrimary)

	client, err := NewClient(ClientConfig{Coordinators: rc.coordList})
	if err != nil {
		t.Fatal(err)
	}
	rc.client = client
	t.Cleanup(func() { client.Close() })
	if err := client.RegisterType(counterType(t)); err != nil {
		t.Fatal(err)
	}
	return rc
}

// startNode boots (or restarts) node i on its data directory.
func (rc *rejoinCluster) startNode(i int, mod func(i int, o *NodeOptions)) {
	rc.t.Helper()
	opts := NodeOptions{
		Addr:              "127.0.0.1:0",
		DataDir:           rc.dirs[i],
		GroupID:           0,
		Coordinators:      rc.coordList,
		HeartbeatInterval: 100 * time.Millisecond,
		Rejoin:            true,
	}
	if mod != nil {
		mod(i, &opts)
	}
	node, err := StartNode(opts)
	if err != nil {
		rc.t.Fatalf("StartNode %d: %v", i, err)
	}
	rc.nodes[i] = node
	rc.closed[i] = false
}

func (rc *rejoinCluster) kill(i int) {
	rc.t.Helper()
	rc.closed[i] = true
	if err := rc.nodes[i].Close(); err != nil {
		rc.t.Fatalf("close node %d: %v", i, err)
	}
}

// group fetches the group-0 view from the coordinator majority.
func (rc *rejoinCluster) group() shard.Group {
	rc.t.Helper()
	d, err := rc.cc.GetConfig()
	if err != nil {
		rc.t.Fatalf("GetConfig: %v", err)
	}
	for _, g := range d.Groups() {
		if g.ID == 0 {
			return g
		}
	}
	rc.t.Fatal("group 0 missing from configuration")
	return shard.Group{}
}

func (rc *rejoinCluster) epoch() uint64 {
	rc.t.Helper()
	d, err := rc.cc.GetConfig()
	if err != nil {
		rc.t.Fatalf("GetConfig: %v", err)
	}
	return d.Epoch()
}

// waitEvicted blocks until the coordinator has removed addr from group 0
// AND every live node's own view reflects it — otherwise the next write
// still ships to the dead address and fails its ack.
func (rc *rejoinCluster) waitEvicted(addr string) {
	rc.t.Helper()
	gone := func(g shard.Group) bool {
		if g.Primary == addr {
			return false
		}
		for _, b := range g.Backups {
			if b == addr {
				return false
			}
		}
		return true
	}
	waitFor(rc.t, 10*time.Second, "eviction of "+addr, func() bool {
		if !gone(rc.group()) {
			return false
		}
		for i, n := range rc.nodes {
			if rc.closed[i] {
				continue
			}
			for _, g := range n.Directory().Groups() {
				if g.ID == 0 && !gone(g) {
					return false
				}
			}
		}
		return true
	})
}

// waitMember blocks until node i has fully rejoined: it is a backup in
// the coordinator's view and its own state machine has settled on member.
func (rc *rejoinCluster) waitMember(i int) {
	rc.t.Helper()
	waitFor(rc.t, 30*time.Second, "rejoin of node "+rc.nodes[i].Addr(), func() bool {
		if rc.nodes[i].RecoveryState() != recovery.StateMember {
			return false
		}
		for _, b := range rc.group().Backups {
			if b == rc.nodes[i].Addr() {
				return true
			}
		}
		return false
	})
}

func waitFor(t *testing.T, timeout time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// directInvoke bypasses the client's routing and hits one node's invoke
// handler, the way a stale client or replica-read would.
func directInvoke(pool *rpc.Pool, addr string, obj core.ObjectID, method string, args [][]byte, readOnly bool) ([]byte, error) {
	body := encodeInvokeReq(&invokeReq{object: obj, method: method, args: args, readOnly: readOnly})
	return pool.Call(addr, MethodInvoke, body)
}

func mustAdd(t *testing.T, c *Client, obj core.ObjectID, delta int64) {
	t.Helper()
	if _, err := c.Invoke(obj, "add", [][]byte{core.I64Bytes(delta)}); err != nil {
		t.Fatalf("add(%d, %d): %v", obj, delta, err)
	}
}

func readAt(t *testing.T, pool *rpc.Pool, addr string, obj core.ObjectID) int64 {
	t.Helper()
	// A backup bounces replica reads with not-responsible until the
	// primary's first lease grant reaches it (at most TTL/4 after it
	// became a member); retry briefly before declaring failure.
	deadline := time.Now().Add(3 * time.Second)
	for {
		res, err := directInvoke(pool, addr, obj, "get", nil, true)
		if err == nil {
			return core.BytesI64(res)
		}
		if _, ok := ParseNotResponsible(err); !ok || time.Now().After(deadline) {
			t.Fatalf("replica read of %d at %s: %v", obj, addr, err)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestRejoinAfterDowntimeWrites is the end-to-end anti-entropy path: a
// backup dies, the coordinator evicts it, writes (including a whole new
// object) land during its downtime, and the restarted node must catch up
// via range digests, be re-admitted, and serve replica reads of state it
// only holds through streaming. A frame stamped with the pre-rejoin epoch
// must still be fenced off by the rejoined node.
func TestRejoinAfterDowntimeWrites(t *testing.T) {
	rc := startRejoinCluster(t, nil)
	if err := rc.client.CreateObject("Counter", 1); err != nil {
		t.Fatal(err)
	}
	mustAdd(t, rc.client, 1, 5)

	preEpoch := rc.epoch()
	oldAddr := rc.nodes[2].Addr()
	rc.kill(2)
	rc.waitEvicted(oldAddr)

	// Downtime writes: mutate an existing object and create a new one.
	mustAdd(t, rc.client, 1, 7)
	if err := rc.client.CreateObject("Counter", 2); err != nil {
		t.Fatal(err)
	}
	mustAdd(t, rc.client, 2, 3)

	rc.startNode(2, nil)
	rc.waitMember(2)
	joiner := rc.nodes[2]

	for obj, want := range map[core.ObjectID]int64{1: 12, 2: 3} {
		if got := readAt(t, rc.pool, joiner.Addr(), obj); got != want {
			t.Fatalf("object %d at rejoined node = %d, want %d", obj, got, want)
		}
	}

	st := joiner.RecoveryStatus()
	if st.Rejoins != 1 {
		t.Errorf("rejoins = %d, want 1", st.Rejoins)
	}
	if st.RangesDiverged == 0 || st.BytesStreamed == 0 || st.ChunksApplied == 0 {
		t.Errorf("catch-up telemetry empty: diverged=%d bytes=%d chunks=%d",
			st.RangesDiverged, st.BytesStreamed, st.ChunksApplied)
	}
	if st.LastRejoinSeconds <= 0 {
		t.Errorf("last_rejoin_seconds = %v, want > 0", st.LastRejoinSeconds)
	}
	// The donor retires the catch-up session at admission.
	waitFor(t, 5*time.Second, "donor session retirement", func() bool {
		return len(rc.nodes[0].DonorSessions()) == 0
	})

	// A deposed primary from before the rejoin ships frames at preEpoch;
	// the rejoined backup's fence must reject them without applying.
	sh := replication.NewShipper(rc.pool, nil)
	defer sh.Close()
	sh.SetEpoch(preEpoch)
	sh.SetBackups([]string{joiner.Addr()})
	zombie := store.NewBatch()
	zombie.Put([]byte("zombie-key"), []byte("v"))
	err := sh.Ship(99, zombie)
	if err == nil || !strings.Contains(err.Error(), "stale configuration epoch") {
		t.Fatalf("pre-rejoin epoch frame not fenced: %v", err)
	}
	if got := joiner.Metrics().Counter("repl.stale_epoch").Value(); got == 0 {
		t.Error("repl.stale_epoch = 0 after fenced frame")
	}
	if _, err := joiner.DB().Get([]byte("zombie-key")); err != store.ErrNotFound {
		t.Fatalf("stale frame landed on rejoined node: %v", err)
	}
}

// TestJoinerFencedDuringCatchUp pins the acceptance invariant: a node
// mid-catch-up is not a group member and must neither serve replica
// reads (it could return downtime-stale state) nor accept writes (its
// acks are covered by nobody).
func TestJoinerFencedDuringCatchUp(t *testing.T) {
	rc := startRejoinCluster(t, nil)
	if err := rc.client.CreateObject("Counter", 1); err != nil {
		t.Fatal(err)
	}
	mustAdd(t, rc.client, 1, 4)

	oldAddr := rc.nodes[2].Addr()
	rc.kill(2)
	rc.waitEvicted(oldAddr)
	mustAdd(t, rc.client, 1, 6)

	// Stall the catch-up: every digest/chunk fetch fails until healed,
	// holding the restarted node in syncing indefinitely.
	fault.Add(fault.Rule{Site: fault.SiteRecoveryFetch, Action: fault.Error})
	rc.startNode(2, nil)
	joiner := rc.nodes[2]
	waitFor(t, 10*time.Second, "first (failing) sync attempt", func() bool {
		return joiner.RecoveryStatus().Attempts >= 1
	})

	if _, err := directInvoke(rc.pool, joiner.Addr(), 1, "get", nil, true); err == nil ||
		!strings.Contains(err.Error(), notResponsiblePrefix) {
		t.Fatalf("joiner served a replica read mid-catch-up: err=%v", err)
	}
	if _, err := directInvoke(rc.pool, joiner.Addr(), 1, "add",
		[][]byte{core.I64Bytes(100)}, false); err == nil ||
		!strings.Contains(err.Error(), notResponsiblePrefix) {
		t.Fatalf("joiner acknowledged a write mid-catch-up: err=%v", err)
	}
	for _, b := range rc.group().Backups {
		if b == joiner.Addr() {
			t.Fatal("joiner admitted to the group before catch-up completed")
		}
	}

	fault.Remove(fault.SiteRecoveryFetch, "")
	rc.waitMember(2)
	// Converged: the downtime write is visible, the fenced +100 is not.
	if got := readAt(t, rc.pool, joiner.Addr(), 1); got != 10 {
		t.Fatalf("rejoined value = %d, want 10", got)
	}
}

// TestRejoinRetriesThroughChunkFaults drops and errors the first fetch
// RPCs of the transfer; the manager must retry the sync until the stream
// completes, without help.
func TestRejoinRetriesThroughChunkFaults(t *testing.T) {
	rc := startRejoinCluster(t, nil)
	if err := rc.client.CreateObject("Counter", 1); err != nil {
		t.Fatal(err)
	}
	mustAdd(t, rc.client, 1, 2)

	oldAddr := rc.nodes[2].Addr()
	rc.kill(2)
	rc.waitEvicted(oldAddr)
	mustAdd(t, rc.client, 1, 9)

	fault.Add(fault.Rule{Site: fault.SiteRecoveryFetch, Action: fault.Error, Count: 2})
	fault.Add(fault.Rule{Site: fault.SiteRecoveryFetch, Action: fault.Drop, Count: 1})
	rc.startNode(2, nil)
	rc.waitMember(2)

	if got := readAt(t, rc.pool, rc.nodes[2].Addr(), 1); got != 11 {
		t.Fatalf("rejoined value = %d, want 11", got)
	}
	if st := rc.nodes[2].RecoveryStatus(); st.Attempts < 2 {
		t.Errorf("attempts = %d, want >= 2 (injected faults must have failed at least one)", st.Attempts)
	}
}

// TestRejoinSurvivesDonorFailover crashes the donor mid-transfer: the
// joiner is stalled against the primary, the primary dies, the
// coordinator promotes the remaining backup, and the joiner must re-sync
// from — and be admitted by — the new primary.
func TestRejoinSurvivesDonorFailover(t *testing.T) {
	rc := startRejoinCluster(t, nil)
	if err := rc.client.CreateObject("Counter", 1); err != nil {
		t.Fatal(err)
	}
	mustAdd(t, rc.client, 1, 5)

	oldAddr := rc.nodes[2].Addr()
	rc.kill(2)
	rc.waitEvicted(oldAddr)
	mustAdd(t, rc.client, 1, 6)

	fault.Add(fault.Rule{Site: fault.SiteRecoveryFetch, Action: fault.Error})
	rc.startNode(2, nil)
	waitFor(t, 10*time.Second, "first (failing) sync attempt", func() bool {
		return rc.nodes[2].RecoveryStatus().Attempts >= 1
	})

	// The donor dies mid-catch-up; nodes[1] is the only live backup.
	oldPrimary := rc.group().Primary
	rc.kill(0)
	waitFor(t, 10*time.Second, "promotion of the surviving backup", func() bool {
		g := rc.group()
		return g.Primary != "" && g.Primary != oldPrimary
	})

	fault.Remove(fault.SiteRecoveryFetch, "")
	rc.waitMember(2)
	if got := readAt(t, rc.pool, rc.nodes[2].Addr(), 1); got != 11 {
		t.Fatalf("value after donor failover = %d, want 11", got)
	}

	// Writes flow through the new primary and replicate synchronously to
	// the rejoined backup.
	mustAdd(t, rc.client, 1, 1)
	if got := readAt(t, rc.pool, rc.nodes[2].Addr(), 1); got != 12 {
		t.Fatalf("post-rejoin replicated value = %d, want 12", got)
	}
}

// TestRejoinRetriesThroughWALSyncFaults fails the joiner's first fsyncs
// (SyncWrites on): chunk applies hit the injected wal.sync error, the
// sync attempt fails, and the manager retries to convergence.
func TestRejoinRetriesThroughWALSyncFaults(t *testing.T) {
	durable := func(i int, o *NodeOptions) {
		o.Store = &store.Options{SyncWrites: true}
	}
	rc := startRejoinCluster(t, durable)
	if err := rc.client.CreateObject("Counter", 1); err != nil {
		t.Fatal(err)
	}
	mustAdd(t, rc.client, 1, 5)

	oldAddr := rc.nodes[2].Addr()
	rc.kill(2)
	rc.waitEvicted(oldAddr)
	mustAdd(t, rc.client, 1, 6)

	// Boot performs its own sync'd WAL write, so hold the catch-up at the
	// fetch site first, then arm the fsync fault: the next two commits on
	// the joiner are catch-up applies, and both fail at fsync.
	fault.Add(fault.Rule{Site: fault.SiteRecoveryFetch, Action: fault.Error})
	rc.startNode(2, durable)
	waitFor(t, 10*time.Second, "first (failing) sync attempt", func() bool {
		return rc.nodes[2].RecoveryStatus().Attempts >= 1
	})
	fault.Add(fault.Rule{Site: fault.SiteWALSync, Key: rc.dirs[2], Action: fault.Error, Count: 2})
	fault.Remove(fault.SiteRecoveryFetch, "")
	rc.waitMember(2)

	if got := readAt(t, rc.pool, rc.nodes[2].Addr(), 1); got != 11 {
		t.Fatalf("rejoined value = %d, want 11", got)
	}
	if st := rc.nodes[2].RecoveryStatus(); st.Attempts < 2 {
		t.Errorf("attempts = %d, want >= 2 (fsync faults must have failed at least one)", st.Attempts)
	}
}

// TestRejoinConcurrentWithWrites overlaps catch-up with live foreground
// traffic (run under -race by `make race`): writers keep incrementing
// counters while the node streams state, is admitted under the commit
// fence, and becomes a backup. Every acknowledged increment — before the
// crash, during downtime, and concurrent with the transfer — must be
// present at the rejoined replica.
func TestRejoinConcurrentWithWrites(t *testing.T) {
	rc := startRejoinCluster(t, nil)
	const objects = 4
	for id := core.ObjectID(1); id <= objects; id++ {
		if err := rc.client.CreateObject("Counter", id); err != nil {
			t.Fatal(err)
		}
		mustAdd(t, rc.client, id, 1)
	}

	oldAddr := rc.nodes[2].Addr()
	rc.kill(2)
	rc.waitEvicted(oldAddr)
	for id := core.ObjectID(1); id <= objects; id++ {
		mustAdd(t, rc.client, id, 2)
	}

	var totals [objects + 1]atomic.Int64
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				obj := core.ObjectID(1 + (i+w)%objects)
				if _, err := rc.client.Invoke(obj, "add", [][]byte{core.I64Bytes(1)}); err != nil {
					t.Errorf("concurrent add(%d): %v", obj, err)
					return
				}
				totals[obj].Add(1)
			}
		}(w)
	}

	rc.startNode(2, func(i int, o *NodeOptions) {
		o.RecoveryMaxBytesPerSec = 64 << 10
	})
	rc.waitMember(2)
	close(stop)
	wg.Wait()

	// Replication is synchronous, so by the time the last add returned
	// the member joiner holds it; earlier ones arrived via catch-up
	// streaming or commit forwarding.
	for id := core.ObjectID(1); id <= objects; id++ {
		want := 3 + totals[id].Load()
		if got := readAt(t, rc.pool, rc.nodes[2].Addr(), id); got != want {
			t.Fatalf("object %d at rejoined node = %d, want %d (lost a concurrent write)", id, got, want)
		}
	}
}
