package cluster

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"testing"

	"lambdastore/internal/core"
	"lambdastore/internal/shard"
	"lambdastore/internal/telemetry"
	"lambdastore/internal/vm"
)

// fetchMetrics GETs a node's /metrics endpoint and parses the plain-text
// "name value" lines.
func fetchMetrics(t *testing.T, addr string) map[string]int64 {
	t.Helper()
	resp, err := http.Get("http://" + addr + "/metrics")
	if err != nil {
		t.Fatalf("GET /metrics: %v", err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read /metrics: %v", err)
	}
	out := make(map[string]int64)
	for _, line := range strings.Split(strings.TrimSpace(string(body)), "\n") {
		fields := strings.Fields(line)
		if len(fields) != 2 {
			continue
		}
		v, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue
		}
		out[fields[0]] = v
	}
	return out
}

// fetchTraceSpans GETs /traces?trace=<id> and returns the decoded spans.
func fetchTraceSpans(t *testing.T, addr string, trace uint64) []telemetry.Span {
	t.Helper()
	url := fmt.Sprintf("http://%s/traces?trace=%016x", addr, trace)
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET /traces: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: %s", url, resp.Status)
	}
	var env struct {
		Node  string           `json:"node"`
		Total uint64           `json:"total_recorded"`
		Spans []telemetry.Span `json:"spans"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&env); err != nil {
		t.Fatalf("decode /traces: %v", err)
	}
	return env.Spans
}

// relayType extends the Counter shape with relay_add(target, delta): it
// mutates its own count, then cross-invokes add(delta) on target. One
// traced call therefore both replicates (local write, via the segmented
// intermediate commit the cross-invoke forces) and forwards (rpc to the
// target's primary) — the full three-node span tree.
func relayType(t *testing.T) *core.ObjectType {
	t.Helper()
	clean := `
func read params=0
  str "count"
  hostcall val_get
  dup
  push -1
  eq
  jnz absent
  unpack.ptr
  load64
  ret
absent:
  pop
  push 0
  ret
end

func emit params=1 locals=1
  push 8
  hostcall alloc
  local.set 1
  local.get 1
  local.get 0
  store64
  str "count"
  local.get 1
  push 8
  hostcall val_set
  local.get 1
  push 8
  hostcall set_result
  ret
end

func add params=0 export
  call read
  push 0
  hostcall arg
  unpack.ptr
  load64
  add
  call emit
  ret
end

func get params=0 locals=1 export
  push 8
  hostcall alloc
  local.set 0
  local.get 0
  call read
  store64
  local.get 0
  push 8
  hostcall set_result
  ret
end

;; relay_add(target, delta): count += delta locally, then invoke
;; add(delta) on target.
func relay_add params=0 locals=2 export
  call read
  push 1
  hostcall arg
  unpack.ptr
  load64
  add
  call emit
  push 1
  hostcall arg
  unpack.ptr
  load64
  local.set 1
  push 8
  hostcall alloc
  local.set 0
  local.get 0
  local.get 1
  store64
  local.get 0
  push 8
  hostcall call_arg
  push 0
  hostcall arg
  unpack.ptr
  load64
  str "add"
  hostcall invoke
  dup
  unpack.ptr
  swap
  unpack.len
  hostcall set_result
  ret
end
`
	mod, err := vm.Assemble(clean)
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	typ, err := core.NewObjectType("Relay",
		[]core.FieldDef{{Name: "count", Kind: core.FieldValue}},
		[]core.MethodInfo{
			{Name: "add"},
			{Name: "get", ReadOnly: true, Deterministic: true},
			{Name: "relay_add"},
		}, mod)
	if err != nil {
		t.Fatalf("type: %v", err)
	}
	return typ
}

// TestEndToEndTraceAcrossNodes drives one traced invocation through three
// nodes — forwarded cross-object invoke (group 0 -> group 1) plus
// primary -> backup replication inside group 0 — and asserts that a single
// trace, retrieved over the debug HTTP endpoints, spans all three nodes
// with correct parent/child nesting.
func TestEndToEndTraceAcrossNodes(t *testing.T) {
	dir := shard.NewDirectory(nil)
	mkNode := func(gid uint64) *Node {
		node, err := StartNode(NodeOptions{
			Addr:      "127.0.0.1:0",
			DataDir:   t.TempDir(),
			GroupID:   gid,
			Directory: dir,
			DebugAddr: "127.0.0.1:0",
			Tracing:   true,
			Runtime:   core.Options{CacheEntries: 1024},
		})
		if err != nil {
			t.Fatalf("StartNode: %v", err)
		}
		t.Cleanup(func() { node.Close() })
		return node
	}
	n0 := mkNode(0) // group 0 primary
	n2 := mkNode(0) // group 0 backup
	n1 := mkNode(1) // group 1 primary
	dir.SetGroup(shard.Group{ID: 0, Primary: n0.Addr(), Backups: []string{n2.Addr()}})
	dir.SetGroup(shard.Group{ID: 1, Primary: n1.Addr()})
	for _, n := range []*Node{n0, n2, n1} {
		n.SetDirectory(dir)
	}

	c, err := NewClient(ClientConfig{Directory: dir, Tracing: true})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.RegisterType(relayType(t)); err != nil {
		t.Fatal(err)
	}
	// Object 2 -> group 0 (primary n0, backup n2); object 3 -> group 1 (n1).
	if err := c.CreateObject("Relay", 2); err != nil {
		t.Fatal(err)
	}
	if err := c.CreateObject("Relay", 3); err != nil {
		t.Fatal(err)
	}

	// One invocation: relay_add(2) executes at n0, writes its own count
	// (committed and replicated to n2 when the cross-invoke segments the
	// transaction), then cross-invokes add(3), forwarded to n1.
	res, traceID, err := c.InvokeTraced(2, "relay_add", [][]byte{core.I64Bytes(3), core.I64Bytes(11)})
	if err != nil {
		t.Fatal(err)
	}
	if core.BytesI64(res) != 11 {
		t.Fatalf("relay_add = %d", core.BytesI64(res))
	}
	if traceID == 0 {
		t.Fatal("InvokeTraced returned no trace ID")
	}

	// Collect the trace from every node's debug endpoint.
	byNode := make(map[string][]telemetry.Span) // rpc addr -> spans
	var all []telemetry.Span
	for _, n := range []*Node{n0, n2, n1} {
		if n.DebugAddr() == "" {
			t.Fatal("debug server not running")
		}
		spans := fetchTraceSpans(t, n.DebugAddr(), traceID)
		for _, s := range spans {
			if s.Trace != traceID {
				t.Fatalf("span %+v leaked from another trace (want %016x)", s, traceID)
			}
		}
		byNode[n.Addr()] = spans
		all = append(all, spans...)
	}
	for i, addr := range []string{n0.Addr(), n1.Addr(), n2.Addr()} {
		if len(byNode[addr]) == 0 {
			t.Fatalf("no spans recorded on node n%d (%s); trace does not span all three nodes\nn0=%v\nn1=%v\nn2=%v",
				i, addr, names(byNode[n0.Addr()]), names(byNode[n1.Addr()]), names(byNode[n2.Addr()]))
		}
	}

	find := func(addr, name string) telemetry.Span {
		t.Helper()
		for _, s := range byNode[addr] {
			if s.Name == name {
				return s
			}
		}
		t.Fatalf("node %s has no %q span (got %v)", addr, name, names(byNode[addr]))
		return telemetry.Span{}
	}

	// n0: the root invoke with its execution stages nested under it.
	rootInvoke := find(n0.Addr(), "invoke")
	if rootInvoke.Parent != 0 {
		t.Fatalf("root invoke has parent %016x; client is the trace root", rootInvoke.Parent)
	}
	for _, stage := range []string{"vm-exec", "commit", "replicate", "rpc"} {
		s := find(n0.Addr(), stage)
		if s.Parent != rootInvoke.ID {
			t.Errorf("%s parent = %016x, want root invoke %016x", stage, s.Parent, rootInvoke.ID)
		}
	}
	walSync := find(n0.Addr(), "wal-sync")
	commit := find(n0.Addr(), "commit")
	if walSync.Parent != commit.ID {
		t.Errorf("wal-sync parent = %016x, want commit %016x", walSync.Parent, commit.ID)
	}

	// n1: the forwarded cross-invoke nests under n0's rpc span.
	rpcSpan := find(n0.Addr(), "rpc")
	remoteInvoke := find(n1.Addr(), "invoke")
	if remoteInvoke.Parent != rpcSpan.ID {
		t.Errorf("n1 invoke parent = %016x, want n0 rpc span %016x", remoteInvoke.Parent, rpcSpan.ID)
	}

	// n2: the backup apply (one coalesced applyBatch frame for the single
	// write) nests under n0's replicate span.
	replicate := find(n0.Addr(), "replicate")
	apply := find(n2.Addr(), "repl.applyBatch")
	if apply.Parent != replicate.ID {
		t.Errorf("repl.applyBatch parent = %016x, want replicate span %016x", apply.Parent, replicate.ID)
	}

	// Span node labels must match the serving node's RPC address.
	for addr, spans := range byNode {
		for _, s := range spans {
			if s.Node != addr {
				t.Errorf("span %q on %s labelled %q", s.Name, addr, s.Node)
			}
		}
	}

	// Warm the result cache: repeated deterministic read-only reads.
	for i := 0; i < 8; i++ {
		if _, err := c.InvokeRead(3, "get", nil); err != nil {
			t.Fatal(err)
		}
	}

	// /metrics must show the load: invocations by method, replication
	// traffic on both sides, forwarding, and cache hits somewhere.
	m0 := fetchMetrics(t, n0.DebugAddr())
	m1 := fetchMetrics(t, n1.DebugAddr())
	m2 := fetchMetrics(t, n2.DebugAddr())
	if m0["core.invoke.relay_add"] == 0 {
		t.Errorf("n0 core.invoke.relay_add = 0; metrics = %v", m0)
	}
	if m0["repl.shipped"] == 0 {
		t.Error("n0 repl.shipped = 0")
	}
	if m2["repl.applied"] == 0 {
		t.Error("n2 repl.applied = 0")
	}
	if m0["cluster.forwards"] == 0 {
		t.Error("n0 cluster.forwards = 0")
	}
	if m1["core.invoke.add"] == 0 {
		t.Error("n1 core.invoke.add = 0")
	}
	if m1["core.cache_hits"] == 0 {
		t.Error("n1 core.cache_hits = 0 after repeated deterministic reads")
	}
	if m0["rpc.server.requests"] == 0 || m0["rpc.server.rx_bytes"] == 0 {
		t.Error("n0 rpc server counters empty")
	}
	if m0["core.invoke_count"] == 0 {
		t.Errorf("n0 invoke histogram empty; metrics = %v", m0)
	}
}

func names(spans []telemetry.Span) []string {
	out := make([]string, len(spans))
	for i, s := range spans {
		out[i] = s.Name
	}
	return out
}
