package cluster

import (
	"strings"
	"testing"
	"time"

	"lambdastore/internal/coordinator"
	"lambdastore/internal/core"
	"lambdastore/internal/paxos"
	"lambdastore/internal/retwis"
	"lambdastore/internal/rpc"
	"lambdastore/internal/shard"
	"lambdastore/internal/store"
	"lambdastore/internal/telemetry"
)

// TestCoordinatorAggregationAndTimelineTrace is the end-to-end observability
// test: a retwis workload runs on a 3-node cluster, one traced create_post
// fans out across all three nodes and assembles into a single critical-path
// tree (what `lambdactl trace` renders), a traced get_timeline assembles
// with stage attribution, and a coordinator that learned the nodes' debug
// addresses from heartbeats scrapes and merges per-group windowed quantiles
// into the /cluster/metrics rollup (what `lambdactl top` renders).
func TestCoordinatorAggregationAndTimelineTrace(t *testing.T) {
	dir := shard.NewDirectory(nil)
	mkNode := func(gid uint64) *Node {
		node, err := StartNode(NodeOptions{
			Addr:      "127.0.0.1:0",
			DataDir:   t.TempDir(),
			GroupID:   gid,
			Directory: dir,
			DebugAddr: "127.0.0.1:0",
			Tracing:   true,
			Store:     &store.Options{SyncWrites: true},
			Runtime:   core.Options{CacheEntries: 1024},
		})
		if err != nil {
			t.Fatalf("StartNode: %v", err)
		}
		t.Cleanup(func() { node.Close() })
		return node
	}
	n0 := mkNode(0) // group 0 primary
	n2 := mkNode(0) // group 0 backup
	n1 := mkNode(1) // group 1 primary
	dir.SetGroup(shard.Group{ID: 0, Primary: n0.Addr(), Backups: []string{n2.Addr()}})
	dir.SetGroup(shard.Group{ID: 1, Primary: n1.Addr()})
	for _, n := range []*Node{n0, n2, n1} {
		n.SetDirectory(dir)
	}

	// One coordinator replica behind a real RPC server, so heartbeats carry
	// the debug address over the wire exactly as a production node's
	// coordLoop sends it.
	svc := coordinator.New(1, []uint64{1}, nil, coordinator.Options{DisableFailureDetector: true})
	srv := rpc.NewServer()
	coordinator.RegisterServer(srv, svc)
	coordAddr, err := srv.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatalf("coordinator serve: %v", err)
	}
	t.Cleanup(func() { srv.Close() })
	pool := rpc.NewPool(nil)
	t.Cleanup(func() { pool.Close() })
	svc.SetTransport(paxos.NewRPCTransport(svc.Node(), pool, map[uint64]string{1: coordAddr}))
	svc.Start()
	t.Cleanup(svc.Close)

	cc := coordinator.NewClient(pool, []string{coordAddr})
	for _, g := range dir.Groups() {
		if err := cc.SetGroup(g); err != nil {
			t.Fatalf("SetGroup: %v", err)
		}
	}
	for _, n := range []*Node{n0, n2, n1} {
		cc.Heartbeat(n.Addr(), n.DebugAddr())
	}

	// Retwis workload: user 2 lives in group 0 (replicated to n2), user 3
	// in group 1. User 2 follows 3, so 3's create_post fans out to 2's
	// timeline — a cross-group forward plus intra-group replication.
	c, err := NewClient(ClientConfig{Directory: dir, Tracing: true})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	typ, err := retwis.NewType()
	if err != nil {
		t.Fatal(err)
	}
	if err := c.RegisterType(typ); err != nil {
		t.Fatal(err)
	}
	if err := c.CreateObject(retwis.TypeName, 2); err != nil {
		t.Fatal(err)
	}
	if err := c.CreateObject(retwis.TypeName, 3); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Invoke(2, "follow", [][]byte{core.I64Bytes(3)}); err != nil {
		t.Fatalf("follow: %v", err)
	}
	res, postTrace, err := c.InvokeTraced(3, "create_post", [][]byte{[]byte("tail latency is a debt collector")})
	if err != nil {
		t.Fatalf("create_post: %v", err)
	}
	if core.BytesI64(res) != 1 {
		t.Fatalf("create_post deliveries = %d, want 1", core.BytesI64(res))
	}
	tlRes, tlTrace, err := c.InvokeTraced(2, "get_timeline", [][]byte{core.I64Bytes(10)})
	if err != nil {
		t.Fatalf("get_timeline: %v", err)
	}
	if posts, err := retwis.DecodeTimeline(tlRes); err != nil || len(posts) != 1 {
		t.Fatalf("timeline = %v, %v; want the fanned-out post", posts, err)
	}

	collect := func(trace uint64) []telemetry.Span {
		var all []telemetry.Span
		for _, n := range []*Node{n0, n2, n1} {
			all = append(all, fetchTraceSpans(t, n.DebugAddr(), trace)...)
		}
		return all
	}

	// The create_post trace must assemble into one tree spanning all three
	// nodes, with the wall time fully attributed to stages.
	post := telemetry.AssembleTrace(postTrace, collect(postTrace))
	for _, addr := range []string{n0.Addr(), n1.Addr(), n2.Addr()} {
		found := false
		for _, n := range post.Nodes {
			if n == addr {
				found = true
			}
		}
		if !found {
			t.Fatalf("assembled trace missing node %s (nodes: %v)", addr, post.Nodes)
		}
	}
	if post.Orphans != 0 {
		t.Errorf("create_post trace has %d orphan span(s)", post.Orphans)
	}
	if post.Stages["vm-exec"] == 0 || post.Stages["rpc-wire"] == 0 {
		t.Errorf("stage attribution incomplete: %v", post.Stages)
	}
	var sum time.Duration
	for _, d := range post.Stages {
		sum += d
	}
	if sum != post.Total {
		t.Errorf("stage sum %v != total %v", sum, post.Total)
	}
	out := post.Render()
	for _, frag := range []string{"critical path:", "vm-exec", "rpc-wire", n2.Addr()} {
		if !strings.Contains(out, frag) {
			t.Errorf("trace render missing %q:\n%s", frag, out)
		}
	}

	// The traced get_timeline renders with its own attribution.
	tl := telemetry.AssembleTrace(tlTrace, collect(tlTrace))
	if tl.Stages["vm-exec"] == 0 {
		t.Errorf("get_timeline trace has no vm-exec attribution: %v", tl.Stages)
	}
	if !strings.Contains(tl.Render(), "critical path:") {
		t.Errorf("get_timeline render has no attribution table:\n%s", tl.Render())
	}

	// Warm the read cache so the rollup's hit rate is nonzero.
	for i := 0; i < 8; i++ {
		if _, err := c.InvokeRead(2, "get_timeline", [][]byte{core.I64Bytes(10)}); err != nil {
			t.Fatal(err)
		}
	}

	// The aggregator scrapes every member it learned from heartbeats and
	// rolls windowed quantiles up per group and cluster-wide.
	agg := coordinator.NewAggregator(svc, time.Hour)
	cm := agg.ScrapeOnce()
	if cm.Members != 3 || cm.Scraped != 3 {
		t.Fatalf("scraped %d/%d members, want 3/3 (debug addrs: %v)", cm.Scraped, cm.Members, svc.DebugAddrs())
	}
	if len(cm.Groups) != 2 {
		t.Fatalf("groups = %d, want 2", len(cm.Groups))
	}
	byID := map[uint64]coordinator.GroupMetrics{}
	for _, g := range cm.Groups {
		byID[g.ID] = g
	}
	g0, g1 := byID[0], byID[1]
	if g0.Primary != n0.Addr() || g0.Scraped != 2 {
		t.Errorf("group 0 rollup %+v, want primary %s scraped from both replicas", g0, n0.Addr())
	}
	if g0.P99Us == 0 || g0.OpsPerSec == 0 {
		t.Errorf("group 0 windowed invoke quantiles empty: %+v", g0)
	}
	if g0.WalFsyncP99Us == 0 {
		t.Errorf("group 0 WAL fsync p99 empty: %+v", g0)
	}
	if g1.P99Us == 0 {
		t.Errorf("group 1 windowed p99 empty: %+v", g1)
	}
	if cm.Cluster.P99Us == 0 || cm.Cluster.Scraped != 3 {
		t.Errorf("cluster rollup %+v", cm.Cluster)
	}
	if cm.Cluster.CacheHitRate <= 0 {
		t.Errorf("cluster cache hit rate = %v, want > 0 after warmed reads", cm.Cluster.CacheHitRate)
	}

	// Aggregator.Snapshot serves the same rollup (what /cluster/metrics
	// returns), and the `lambdactl top` table renders every group.
	if got := agg.Snapshot(); got.Scraped != 3 {
		t.Errorf("Snapshot() = %+v, want the scraped rollup", got.Scraped)
	}
	table := coordinator.FormatClusterMetrics(cm)
	for _, frag := range []string{"GROUP", "P99(us)", "FSYNC99(us)", n0.Addr(), n1.Addr(), "ALL"} {
		if !strings.Contains(table, frag) {
			t.Errorf("top table missing %q:\n%s", frag, table)
		}
	}
}

// TestRejoinAssemblesAsOneTrace checks that trace context propagates through
// the recovery RPCs: a restarted replica's whole catch-up session — begin,
// digest exchange, chunk fetches, admission — assembles into a single trace
// rooted at the joiner's "rejoin" span, with the donor's handler spans
// parented under the joiner's call spans.
func TestRejoinAssemblesAsOneTrace(t *testing.T) {
	tracing := func(i int, o *NodeOptions) { o.Tracing = true }
	rc := startRejoinCluster(t, tracing)
	if err := rc.client.CreateObject("Counter", 1); err != nil {
		t.Fatal(err)
	}
	mustAdd(t, rc.client, 1, 5)

	oldAddr := rc.nodes[2].Addr()
	rc.kill(2)
	rc.waitEvicted(oldAddr)
	mustAdd(t, rc.client, 1, 7)

	rc.startNode(2, tracing)
	rc.waitMember(2)
	joiner := rc.nodes[2]
	if got := readAt(t, rc.pool, joiner.Addr(), 1); got != 12 {
		t.Fatalf("rejoined value = %d, want 12", got)
	}

	// The last rejoin span in the joiner's ring is the successful session.
	var root telemetry.Span
	for _, s := range joiner.Tracer().Spans() {
		if s.Name == "rejoin" {
			root = s
		}
	}
	if root.ID == 0 {
		t.Fatal("no rejoin root span recorded on the joiner")
	}
	if root.Parent != 0 {
		t.Fatalf("rejoin span has parent %016x, want a trace root", root.Parent)
	}

	var all []telemetry.Span
	perNode := make(map[int]int)
	for i, n := range rc.nodes {
		spans := n.Tracer().TraceSpans(root.Trace)
		perNode[i] = len(spans)
		all = append(all, spans...)
	}
	if perNode[2] == 0 || perNode[0]+perNode[1] == 0 {
		t.Fatalf("rejoin trace does not span joiner and donor: per-node span counts %v", perNode)
	}

	a := telemetry.AssembleTrace(root.Trace, all)
	if len(a.Roots) != 1 || a.Roots[0].Span.Name != "rejoin" {
		t.Fatalf("roots = %d (%v), want the single rejoin root", len(a.Roots), a.Roots)
	}
	if a.Orphans != 0 {
		t.Errorf("rejoin trace has %d orphan span(s):\n%s", a.Orphans, a.Render())
	}
	if len(a.Nodes) < 2 {
		t.Fatalf("rejoin trace covers nodes %v, want joiner and donor", a.Nodes)
	}
	names := make(map[string]bool)
	for _, s := range all {
		names[s.Name] = true
	}
	for _, want := range []string{"recovery.begin", "recovery.digest", "recovery.fetch", "recovery.admit"} {
		if !names[want] {
			t.Errorf("rejoin trace missing %q spans (have %v)", want, names)
		}
	}
	// The session's phases are attributed on the critical path.
	if !strings.Contains(a.Render(), "critical path:") {
		t.Errorf("rejoin render has no attribution:\n%s", a.Render())
	}
}
