package cluster

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"lambdastore/internal/coordinator"
	"lambdastore/internal/core"
	"lambdastore/internal/paxos"
	"lambdastore/internal/rpc"
	"lambdastore/internal/shard"
)

// startCoordinatedCluster boots a coordinator quorum plus `groups` replica
// groups of `replicas` nodes each, registered through the coordinator log.
// Returns the storage nodes (group-major order) and the coordinator list.
func startCoordinatedCluster(t *testing.T, groups, replicas int) ([]*Node, []string) {
	t.Helper()
	coordIDs := []uint64{1, 2, 3}
	var services []*coordinator.Service
	coordAddrs := make(map[uint64]string)
	pool := rpc.NewPool(nil)
	t.Cleanup(pool.Close)

	var coordSrvs []*rpc.Server
	for _, id := range coordIDs {
		svc := coordinator.New(id, coordIDs, nil, coordinator.Options{
			HeartbeatTimeout: 400 * time.Millisecond,
			CheckInterval:    100 * time.Millisecond,
		})
		services = append(services, svc)
		srv := rpc.NewServer()
		coordinator.RegisterServer(srv, svc)
		addr, err := srv.Serve("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		coordSrvs = append(coordSrvs, srv)
		coordAddrs[id] = addr
	}
	t.Cleanup(func() {
		for _, s := range coordSrvs {
			s.Close()
		}
	})
	var coordList []string
	for i, svc := range services {
		trans := paxos.NewRPCTransport(svc.Node(), pool, coordAddrs)
		svc.SetTransport(trans)
		svc.Start()
		coordList = append(coordList, coordAddrs[coordIDs[i]])
	}
	t.Cleanup(func() {
		for _, svc := range services {
			svc.Close()
		}
	})

	var nodes []*Node
	for g := 0; g < groups; g++ {
		for r := 0; r < replicas; r++ {
			node, err := StartNode(NodeOptions{
				Addr:              "127.0.0.1:0",
				DataDir:           t.TempDir(),
				GroupID:           uint64(g),
				Coordinators:      coordList,
				HeartbeatInterval: 100 * time.Millisecond,
			})
			if err != nil {
				t.Fatal(err)
			}
			t.Cleanup(func() { node.Close() })
			nodes = append(nodes, node)
		}
	}
	cc := coordinator.NewClient(pool, coordList)
	for g := 0; g < groups; g++ {
		grp := shard.Group{ID: uint64(g), Primary: nodes[g*replicas].Addr()}
		for r := 1; r < replicas; r++ {
			grp.Backups = append(grp.Backups, nodes[g*replicas+r].Addr())
		}
		if err := cc.SetGroup(grp); err != nil {
			t.Fatal(err)
		}
	}
	// Wait for every primary to learn the configuration.
	deadline := time.Now().Add(5 * time.Second)
	for g := 0; g < groups; g++ {
		for !nodes[g*replicas].isPrimary() {
			if time.Now().After(deadline) {
				t.Fatalf("group %d primary never learned configuration", g)
			}
			time.Sleep(20 * time.Millisecond)
		}
	}
	return nodes, coordList
}

// TestLiveMigrationUnderWrites hammers one object with concurrent writers
// while it is live-migrated between groups through the coordinator's
// epoch-fenced cutover. Every acknowledged write must survive the move
// (no lost ack), and the final state must live at exactly one group.
// Run under -race this also exercises the fence/forward/seal paths for
// data races.
func TestLiveMigrationUnderWrites(t *testing.T) {
	nodes, coordList := startCoordinatedCluster(t, 2, 2)

	client, err := NewClient(ClientConfig{
		Coordinators: coordList,
		MaxRetries:   10,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	if err := client.RegisterType(counterType(t)); err != nil {
		t.Fatal(err)
	}

	// Object 100 hashes to group 0 (even id, two groups).
	const obj = core.ObjectID(100)
	if err := client.CreateObject("Counter", obj); err != nil {
		t.Fatal(err)
	}
	if g, err := client.lookup(obj); err != nil || g.ID != 0 {
		t.Fatalf("object should start in group 0: group %d, %v", g.ID, err)
	}

	// Concurrent writers: each acknowledged add contributes exactly 1 to
	// the count. Stale-routing errors are retried inside the client; an
	// error surfacing here means the op never executed, so it does not
	// count toward the expected total — but in a healthy cluster (no
	// crashes in this test) we expect zero.
	const writers = 4
	var (
		acked   atomic.Int64
		failed  atomic.Int64
		stop    = make(chan struct{})
		wg      sync.WaitGroup
		maxSeen atomic.Int64
	)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				res, err := client.Invoke(obj, "add", [][]byte{core.I64Bytes(1)})
				if err != nil {
					failed.Add(1)
					continue
				}
				acked.Add(1)
				v := core.BytesI64(res)
				for {
					cur := maxSeen.Load()
					if v <= cur || maxSeen.CompareAndSwap(cur, v) {
						break
					}
				}
			}
		}()
	}
	// One reader verifying values never regress — a stale read after
	// cutover (serving the source's frozen copy) would go backwards.
	var readerErr atomic.Value
	wg.Add(1)
	go func() {
		defer wg.Done()
		var last int64
		for {
			select {
			case <-stop:
				return
			default:
			}
			res, err := client.InvokeRead(obj, "get", nil)
			if err != nil {
				continue
			}
			v := core.BytesI64(res)
			if v < last {
				readerErr.Store(errors.New("read regressed: stale copy served after cutover"))
				return
			}
			last = v
			time.Sleep(time.Millisecond)
		}
	}()

	// Let traffic build, then migrate mid-stream.
	time.Sleep(300 * time.Millisecond)
	if err := client.Migrate(obj, 1); err != nil {
		t.Fatalf("live migration failed: %v", err)
	}
	ackedAtCutover := acked.Load()

	// Immediately after the move returns, a read must reflect at least
	// everything acknowledged before the cutover.
	res, err := client.InvokeRead(obj, "get", nil)
	if err != nil {
		t.Fatalf("read after cutover: %v", err)
	}
	if got := core.BytesI64(res); got < ackedAtCutover {
		t.Fatalf("stale read after cutover: got %d, %d writes were acked", got, ackedAtCutover)
	}

	// Keep writing at the new home for a while, then drain.
	time.Sleep(200 * time.Millisecond)
	close(stop)
	wg.Wait()
	if e := readerErr.Load(); e != nil {
		t.Fatal(e)
	}
	if failed.Load() != 0 {
		t.Fatalf("%d writes failed during migration (retries exhausted)", failed.Load())
	}

	// No lost ack: the final count equals the acknowledged adds exactly.
	final, err := client.InvokeRead(obj, "get", nil)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := core.BytesI64(final), acked.Load(); got != want {
		t.Fatalf("final count %d != %d acknowledged writes", got, want)
	}
	if ms := maxSeen.Load(); core.BytesI64(final) < ms {
		t.Fatalf("final count %d below a previously returned count %d", core.BytesI64(final), ms)
	}

	// The object now lives in group 1 — present on its primary AND backup
	// (the move replicates to the target's backups before cutover), gone
	// from the source replicas.
	if g, err := client.lookup(obj); err != nil || g.ID != 1 {
		t.Fatalf("directory after move: group %d, %v", g.ID, err)
	}
	for i, idx := range []int{2, 3} {
		if _, err := nodes[idx].Runtime().GetValueField(obj, "count"); err != nil {
			t.Fatalf("target replica %d missing state: %v", i, err)
		}
	}
	deadline := time.Now().Add(3 * time.Second)
	for {
		_, err0 := nodes[0].Runtime().GetValueField(obj, "count")
		_, err1 := nodes[1].Runtime().GetValueField(obj, "count")
		if errors.Is(err0, core.ErrNotFound) && errors.Is(err1, core.ErrNotFound) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("source still holds the object: primary=%v backup=%v", err0, err1)
		}
		time.Sleep(20 * time.Millisecond)
	}

	// And the object still accepts writes at its new home.
	res, err = client.Invoke(obj, "add", [][]byte{core.I64Bytes(1)})
	if err != nil {
		t.Fatal(err)
	}
	if core.BytesI64(res) != acked.Load()+1 {
		t.Fatalf("post-move add = %d, want %d", core.BytesI64(res), acked.Load()+1)
	}
}
