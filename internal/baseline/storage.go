// Package baseline implements the paper's comparison system (§4.1, §5): a
// conventional *disaggregated* serverless architecture built from the same
// parts as LambdaStore so the comparison is fair. Storage and compute are
// separate processes: compute nodes run the identical guest modules in the
// identical VM, but every data access crosses the network to the storage
// layer as an individual operation, and nested function invocations go back
// through a load balancer that durably logs each request (the role Kafka
// plays in OpenWhisk). The baseline offers per-operation atomicity only —
// no invocation atomicity, isolation, or result caching — matching the
// paper's "the disaggregated variant provides no consistency guarantees".
package baseline

import (
	"errors"
	"fmt"
	"sync"

	"lambdastore/internal/core"
	"lambdastore/internal/replication"
	"lambdastore/internal/rpc"
	"lambdastore/internal/store"
	"lambdastore/internal/wire"
)

// Storage RPC method names.
const (
	MethodValGet   = "bstore.valget"
	MethodValSet   = "bstore.valset"
	MethodValDel   = "bstore.valdel"
	MethodMapGet   = "bstore.mapget"
	MethodMapSet   = "bstore.mapset"
	MethodMapDel   = "bstore.mapdel"
	MethodMapCount = "bstore.mapcount"
	MethodListLen  = "bstore.listlen"
	MethodListGet  = "bstore.listget"
	MethodListPush = "bstore.listpush"
	MethodHeader   = "bstore.header"
	MethodCreate   = "bstore.create"
	MethodGetType  = "bstore.gettype"
	MethodRegType  = "bstore.regtype"
)

// ErrAbsent is the in-band "not found" marker for single-value reads.
var ErrAbsent = errors.New("baseline: absent")

// absentMarker distinguishes "no value" responses on the wire: first byte 0
// = absent, 1 = present followed by the value.
func encodePresent(value []byte) []byte {
	out := make([]byte, 0, len(value)+1)
	out = append(out, 1)
	return append(out, value...)
}

var absentResp = []byte{0}

// decodePresence splits a presence-marked response.
func decodePresence(body []byte) ([]byte, bool, error) {
	if len(body) < 1 {
		return nil, false, fmt.Errorf("baseline: empty presence response")
	}
	if body[0] == 0 {
		return nil, false, nil
	}
	return body[1:], true, nil
}

// fieldReq addresses (object, field) plus optional key/value operands.
type fieldReq struct {
	object core.ObjectID
	field  string
	key    []byte
	value  []byte
	idx    uint64
}

func encodeFieldReq(r *fieldReq) []byte {
	var b []byte
	b = wire.AppendUvarint(b, uint64(r.object))
	b = wire.AppendString(b, r.field)
	b = wire.AppendBytes(b, r.key)
	b = wire.AppendBytes(b, r.value)
	b = wire.AppendUvarint(b, r.idx)
	return b
}

func decodeFieldReq(body []byte) (*fieldReq, error) {
	r := &fieldReq{}
	var obj uint64
	var err error
	if obj, body, err = wire.Uvarint(body); err != nil {
		return nil, err
	}
	r.object = core.ObjectID(obj)
	if r.field, body, err = wire.String(body); err != nil {
		return nil, err
	}
	var raw []byte
	if raw, body, err = wire.Bytes(body); err != nil {
		return nil, err
	}
	r.key = append([]byte(nil), raw...)
	if raw, body, err = wire.Bytes(body); err != nil {
		return nil, err
	}
	r.value = append([]byte(nil), raw...)
	if r.idx, _, err = wire.Uvarint(body); err != nil {
		return nil, err
	}
	return r, nil
}

// EncodeCreateReq builds the body of a MethodCreate request (used by the
// benchmark harness and tools).
func EncodeCreateReq(object uint64, typeName string) []byte {
	return encodeFieldReq(&fieldReq{object: core.ObjectID(object), value: []byte(typeName)})
}

// StorageNode is the disaggregated storage layer: the same LSM engine and
// primary-backup replication as LambdaStore, but exposing raw per-operation
// access instead of executing functions.
type StorageNode struct {
	db      *store.DB
	srv     *rpc.Server
	pool    *rpc.Pool
	shipper *replication.Shipper
	addr    string

	// listMu serializes list-push read-modify-writes per object so a
	// single operation stays atomic (Redis-style). There is still no
	// cross-operation isolation — that is the baseline's defining gap.
	listMu sync.Mutex

	ops sync.Map // method -> *uint64 (counters)
}

// StorageOptions configures a baseline storage node.
type StorageOptions struct {
	Addr    string
	DataDir string
	Store   *store.Options
	// Backups receive every applied write batch.
	Backups []string
	// ClientOptions tunes replication connections.
	ClientOptions *rpc.ClientOptions
}

// StartStorage opens the store and serves.
func StartStorage(opts StorageOptions) (*StorageNode, error) {
	db, err := store.Open(opts.DataDir, opts.Store)
	if err != nil {
		return nil, err
	}
	n := &StorageNode{
		db:   db,
		srv:  rpc.NewServer(),
		pool: rpc.NewPool(opts.ClientOptions),
	}
	n.shipper = replication.NewShipper(n.pool, nil)
	n.shipper.SetBackups(opts.Backups)
	n.register()
	addr, err := n.srv.Serve(opts.Addr)
	if err != nil {
		db.Close()
		return nil, err
	}
	n.addr = addr
	return n, nil
}

// Addr returns the node's RPC address.
func (n *StorageNode) Addr() string { return n.addr }

// DB exposes the engine (tests).
func (n *StorageNode) DB() *store.DB { return n.db }

// SetBackups reconfigures replication.
func (n *StorageNode) SetBackups(addrs []string) { n.shipper.SetBackups(addrs) }

// Close shuts the node down.
func (n *StorageNode) Close() error {
	n.srv.Close()
	n.shipper.Close()
	n.pool.Close()
	return n.db.Close()
}

// applyAndShip commits a batch locally and replicates it.
func (n *StorageNode) applyAndShip(object core.ObjectID, b *store.Batch) error {
	if err := n.db.Write(b); err != nil {
		return err
	}
	n.shipper.Ship(uint64(object), b) //nolint:errcheck // reconfig handles failures
	return nil
}

// get reads one key with presence marking.
func (n *StorageNode) get(key []byte) ([]byte, error) {
	v, err := n.db.Get(key)
	if errors.Is(err, store.ErrNotFound) {
		return absentResp, nil
	}
	if err != nil {
		return nil, err
	}
	return encodePresent(v), nil
}

func (n *StorageNode) register() {
	// Backups of the baseline storage group register the same replication
	// sink as aggregated nodes.
	replication.RegisterBackup(n.srv, n.db, replication.ApplierFunc(
		func(object uint64, b *store.Batch) error {
			return n.db.Write(b)
		}))

	h := func(method string, fn rpc.Handler) {
		n.srv.Handle(method, func(body []byte) ([]byte, error) {
			return fn(body)
		})
	}

	h(MethodValGet, func(body []byte) ([]byte, error) {
		r, err := decodeFieldReq(body)
		if err != nil {
			return nil, err
		}
		return n.get(core.ValueFieldKey(r.object, r.field))
	})
	h(MethodValSet, func(body []byte) ([]byte, error) {
		r, err := decodeFieldReq(body)
		if err != nil {
			return nil, err
		}
		b := store.NewBatch()
		b.Put(core.ValueFieldKey(r.object, r.field), r.value)
		return nil, n.applyAndShip(r.object, b)
	})
	h(MethodValDel, func(body []byte) ([]byte, error) {
		r, err := decodeFieldReq(body)
		if err != nil {
			return nil, err
		}
		b := store.NewBatch()
		b.Delete(core.ValueFieldKey(r.object, r.field))
		return nil, n.applyAndShip(r.object, b)
	})
	h(MethodMapGet, func(body []byte) ([]byte, error) {
		r, err := decodeFieldReq(body)
		if err != nil {
			return nil, err
		}
		return n.get(core.MapEntryKey(r.object, r.field, r.key))
	})
	h(MethodMapSet, func(body []byte) ([]byte, error) {
		r, err := decodeFieldReq(body)
		if err != nil {
			return nil, err
		}
		b := store.NewBatch()
		b.Put(core.MapEntryKey(r.object, r.field, r.key), r.value)
		return nil, n.applyAndShip(r.object, b)
	})
	h(MethodMapDel, func(body []byte) ([]byte, error) {
		r, err := decodeFieldReq(body)
		if err != nil {
			return nil, err
		}
		b := store.NewBatch()
		b.Delete(core.MapEntryKey(r.object, r.field, r.key))
		return nil, n.applyAndShip(r.object, b)
	})
	h(MethodMapCount, func(body []byte) ([]byte, error) {
		r, err := decodeFieldReq(body)
		if err != nil {
			return nil, err
		}
		it, err := n.db.NewIterator()
		if err != nil {
			return nil, err
		}
		defer it.Close()
		prefix := core.MapFieldPrefix(r.object, r.field)
		var count uint64
		for it.Seek(prefix); it.Valid(); it.Next() {
			k := it.Key()
			if len(k) < len(prefix) || string(k[:len(prefix)]) != string(prefix) {
				break
			}
			count++
		}
		if err := it.Error(); err != nil {
			return nil, err
		}
		return core.EncodeU64(count), nil
	})
	h(MethodListLen, func(body []byte) ([]byte, error) {
		r, err := decodeFieldReq(body)
		if err != nil {
			return nil, err
		}
		v, err := n.db.Get(core.ListLenKey(r.object, r.field))
		if errors.Is(err, store.ErrNotFound) {
			return core.EncodeU64(0), nil
		}
		if err != nil {
			return nil, err
		}
		return v, nil
	})
	h(MethodListGet, func(body []byte) ([]byte, error) {
		r, err := decodeFieldReq(body)
		if err != nil {
			return nil, err
		}
		return n.get(core.ListEntryKey(r.object, r.field, r.idx))
	})
	h(MethodListPush, func(body []byte) ([]byte, error) {
		r, err := decodeFieldReq(body)
		if err != nil {
			return nil, err
		}
		// Read-modify-write of the length counter: atomic per operation,
		// serialized node-wide (the baseline's storage is one primary).
		n.listMu.Lock()
		defer n.listMu.Unlock()
		lenKey := core.ListLenKey(r.object, r.field)
		var cur uint64
		if v, err := n.db.Get(lenKey); err == nil {
			cur = core.DecodeU64(v)
		} else if !errors.Is(err, store.ErrNotFound) {
			return nil, err
		}
		b := store.NewBatch()
		b.Put(core.ListEntryKey(r.object, r.field, cur), r.value)
		b.Put(lenKey, core.EncodeU64(cur+1))
		return nil, n.applyAndShip(r.object, b)
	})
	h(MethodHeader, func(body []byte) ([]byte, error) {
		r, err := decodeFieldReq(body)
		if err != nil {
			return nil, err
		}
		return n.get(core.HeaderKey(r.object))
	})
	h(MethodCreate, func(body []byte) ([]byte, error) {
		r, err := decodeFieldReq(body)
		if err != nil {
			return nil, err
		}
		if _, err := n.db.Get(core.HeaderKey(r.object)); err == nil {
			return nil, fmt.Errorf("baseline: object %s exists", r.object)
		} else if !errors.Is(err, store.ErrNotFound) {
			return nil, err
		}
		b := store.NewBatch()
		b.Put(core.HeaderKey(r.object), r.value) // value = type name
		return nil, n.applyAndShip(r.object, b)
	})
	h(MethodGetType, func(body []byte) ([]byte, error) {
		name, _, err := wire.String(body)
		if err != nil {
			return nil, err
		}
		return n.get(core.TypeRecordKey(name))
	})
	h(MethodRegType, func(body []byte) ([]byte, error) {
		t, err := core.DecodeObjectType(body)
		if err != nil {
			return nil, err
		}
		b := store.NewBatch()
		b.Put(core.TypeRecordKey(t.Name), body)
		return nil, n.applyAndShip(0, b)
	})
}
