package baseline

import (
	"bytes"
	"fmt"
	"testing"
	"time"

	"lambdastore/internal/store"
)

func openSpillDB(t *testing.T) *store.DB {
	t.Helper()
	db, err := store.Open(t.TempDir(), &store.Options{})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	t.Cleanup(func() { db.Close() })
	return db
}

func TestSpillFlushByWrites(t *testing.T) {
	db := openSpillDB(t)
	s := newSpillBuffer(db, SpillOptions{FlushWrites: 4, FlushInterval: time.Hour})
	defer s.Close()
	for i := 0; i < 8; i++ {
		if err := s.Append([]byte(fmt.Sprintf("k%02d", i)), []byte("v")); err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
	}
	st := s.Stats()
	if st.ByWrites != 2 || st.Flushes != 2 || st.Records != 8 {
		t.Fatalf("stats %+v, want 2 by-writes flushes over 8 records", st)
	}
	// Flushed records are readable.
	if v, err := db.Get([]byte("k03")); err != nil || !bytes.Equal(v, []byte("v")) {
		t.Fatalf("get after flush: %q, %v", v, err)
	}
}

func TestSpillFlushByBytes(t *testing.T) {
	db := openSpillDB(t)
	s := newSpillBuffer(db, SpillOptions{FlushWrites: 1 << 20, FlushBytes: 64, FlushInterval: time.Hour})
	defer s.Close()
	big := make([]byte, 70)
	if err := s.Append([]byte("big"), big); err != nil {
		t.Fatalf("append: %v", err)
	}
	if st := s.Stats(); st.ByBytes != 1 {
		t.Fatalf("stats %+v, want one by-bytes flush", st)
	}
}

func TestSpillFlushByIntervalAndClose(t *testing.T) {
	db := openSpillDB(t)
	s := newSpillBuffer(db, SpillOptions{FlushWrites: 1 << 20, FlushInterval: 2 * time.Millisecond})
	if err := s.Append([]byte("a"), []byte("1")); err != nil {
		t.Fatalf("append: %v", err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for s.Stats().ByInterval == 0 {
		if time.Now().After(deadline) {
			t.Fatalf("interval flush never fired: %+v", s.Stats())
		}
		time.Sleep(time.Millisecond)
	}
	if v, err := db.Get([]byte("a")); err != nil || !bytes.Equal(v, []byte("1")) {
		t.Fatalf("get after interval flush: %q, %v", v, err)
	}
	// Close flushes the remainder.
	if err := s.Append([]byte("b"), []byte("2")); err != nil {
		t.Fatalf("append: %v", err)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	if v, err := db.Get([]byte("b")); err != nil || !bytes.Equal(v, []byte("2")) {
		t.Fatalf("get after close: %q, %v", v, err)
	}
	if st := s.Stats(); st.ByClose != 1 {
		t.Fatalf("stats %+v, want one by-close flush", st)
	}
}

func TestSpillCopiesCallerBuffers(t *testing.T) {
	db := openSpillDB(t)
	s := newSpillBuffer(db, SpillOptions{FlushWrites: 2, FlushInterval: time.Hour})
	defer s.Close()
	key := []byte("key")
	val := []byte("value")
	if err := s.Append(key, val); err != nil {
		t.Fatalf("append: %v", err)
	}
	// The caller recycles its buffers immediately (pooled RPC frames).
	copy(key, "XXX")
	copy(val, "XXXXX")
	if err := s.Append([]byte("k2"), []byte("v2")); err != nil { // trips the flush
		t.Fatalf("append: %v", err)
	}
	if v, err := db.Get([]byte("key")); err != nil || !bytes.Equal(v, []byte("value")) {
		t.Fatalf("spill aliased the caller's buffers: %q, %v", v, err)
	}
}
