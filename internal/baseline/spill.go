package baseline

import (
	"sync"
	"time"

	"lambdastore/internal/store"
)

// SpillOptions tunes the request-log spill buffer. Zero values select the
// defaults.
type SpillOptions struct {
	// FlushWrites flushes once this many records are buffered (default 64).
	FlushWrites int
	// FlushBytes flushes once the buffered payload reaches this size
	// (default 256KiB).
	FlushBytes int
	// FlushInterval bounds how long a record may sit unflushed (default
	// 5ms) — the durability window traded away for batching.
	FlushInterval time.Duration
}

// SpillStats counts spill-buffer activity, with flushes broken down by
// what triggered them.
type SpillStats struct {
	Records    uint64 `json:"records"`
	Flushes    uint64 `json:"flushes"`
	ByWrites   uint64 `json:"by_writes"`
	ByBytes    uint64 `json:"by_bytes"`
	ByInterval uint64 `json:"by_interval"`
	ByClose    uint64 `json:"by_close"`
}

// spillBuffer batches request-log appends into store write batches,
// flushed by record count, byte volume, or a ticker — the classic
// group-commit trade: per-request log latency drops from one storage
// write each to amortized, at the cost of a bounded durability window
// (records buffered when the process dies are lost, which is why the
// option documents it as a weakening and benches use it for the
// throughput ablation).
type spillBuffer struct {
	db   *store.DB
	opts SpillOptions

	mu     sync.Mutex
	batch  *store.Batch
	writes int
	bytes  int
	err    error // sticky first flush error, surfaced on later appends
	stats  SpillStats

	stop chan struct{}
	done chan struct{}
}

func newSpillBuffer(db *store.DB, opts SpillOptions) *spillBuffer {
	if opts.FlushWrites <= 0 {
		opts.FlushWrites = 64
	}
	if opts.FlushBytes <= 0 {
		opts.FlushBytes = 256 << 10
	}
	if opts.FlushInterval <= 0 {
		opts.FlushInterval = 5 * time.Millisecond
	}
	s := &spillBuffer{
		db:    db,
		opts:  opts,
		batch: store.NewBatch(),
		stop:  make(chan struct{}),
		done:  make(chan struct{}),
	}
	go s.loop()
	return s
}

// Append buffers one record, flushing inline when a threshold trips. The
// key and value are copied: callers hand in pooled RPC buffers that are
// recycled the moment the handler returns.
func (s *spillBuffer) Append(key, val []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.err != nil {
		return s.err
	}
	s.batch.Put(append([]byte(nil), key...), append([]byte(nil), val...))
	s.writes++
	s.bytes += len(key) + len(val)
	s.stats.Records++
	switch {
	case s.writes >= s.opts.FlushWrites:
		return s.flushLocked(&s.stats.ByWrites)
	case s.bytes >= s.opts.FlushBytes:
		return s.flushLocked(&s.stats.ByBytes)
	}
	return nil
}

// flushLocked writes the pending batch; reason points at the stats field
// recording what triggered it.
func (s *spillBuffer) flushLocked(reason *uint64) error {
	if s.writes == 0 {
		return s.err
	}
	b := s.batch
	s.batch = store.NewBatch()
	s.writes, s.bytes = 0, 0
	s.stats.Flushes++
	*reason++
	if err := s.db.Write(b); err != nil {
		if s.err == nil {
			s.err = err
		}
		return err
	}
	return nil
}

// Flush forces pending records out (tests, graceful drain).
func (s *spillBuffer) Flush() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.flushLocked(&s.stats.ByInterval)
}

// Stats snapshots the counters.
func (s *spillBuffer) Stats() SpillStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

func (s *spillBuffer) loop() {
	defer close(s.done)
	t := time.NewTicker(s.opts.FlushInterval)
	defer t.Stop()
	for {
		select {
		case <-s.stop:
			return
		case <-t.C:
			s.mu.Lock()
			s.flushLocked(&s.stats.ByInterval) //nolint:errcheck // sticky; next Append surfaces it
			s.mu.Unlock()
		}
	}
}

// Close stops the ticker and flushes whatever is left.
func (s *spillBuffer) Close() error {
	close(s.stop)
	<-s.done
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.flushLocked(&s.stats.ByClose)
}
