package baseline

import (
	"fmt"
	"math/rand"
	"sync"
	"time"

	"lambdastore/internal/core"
	"lambdastore/internal/rpc"
	"lambdastore/internal/telemetry"
	"lambdastore/internal/vm"
	"lambdastore/internal/wire"
)

// Compute RPC method names.
const (
	MethodRun = "compute.run"
)

// jobReq is one function invocation request (client -> LB -> compute).
type jobReq struct {
	object core.ObjectID
	method string
	args   [][]byte
}

func encodeJobReq(r *jobReq) []byte {
	var b []byte
	b = wire.AppendUvarint(b, uint64(r.object))
	b = wire.AppendString(b, r.method)
	b = wire.AppendBytesSlice(b, r.args)
	return b
}

func decodeJobReq(body []byte) (*jobReq, error) {
	r := &jobReq{}
	var obj uint64
	var err error
	if obj, body, err = wire.Uvarint(body); err != nil {
		return nil, err
	}
	r.object = core.ObjectID(obj)
	if r.method, body, err = wire.String(body); err != nil {
		return nil, err
	}
	items, _, err := wire.BytesSlice(body)
	if err != nil {
		return nil, err
	}
	for _, it := range items {
		r.args = append(r.args, append([]byte(nil), it...))
	}
	return r, nil
}

// ComputeOptions configures a compute node.
type ComputeOptions struct {
	Addr string
	// Storage is the storage primary's address; every data access of every
	// function goes there over the network.
	Storage string
	// Fuel is the per-invocation budget (same as the aggregated runtime,
	// for fairness).
	Fuel int64
	// DisableWarmPool forces a fresh VM instance per invocation (cold-start
	// emulation for Table 1).
	DisableWarmPool bool
	// ColdStartPenalty emulates container/VM provisioning time on every
	// cold instantiation. Real serverless cold starts are container or
	// microVM boots (hundreds of ms); our in-process instances are microsecond-
	// scale, so Table 1's cold row injects this documented penalty to
	// reproduce the band's shape.
	ColdStartPenalty time.Duration
	// ClientOptions tunes outbound connections (latency injection).
	ClientOptions *rpc.ClientOptions
	// Metrics, if set, receives the node's RPC counters (requests,
	// in-flight, bytes on the wire).
	Metrics *telemetry.Registry
}

// ComputeNode executes guest functions against remote storage. It runs the
// very same modules as LambdaStore under the same VM and fuel budget; only
// the host API implementation differs — every storage operation is an
// individual network round trip, writes apply immediately (no write
// buffering, no invocation atomicity or isolation), and nested invocations
// go back through the load balancer.
type ComputeNode struct {
	opts ComputeOptions
	srv  *rpc.Server
	pool *rpc.Pool
	addr string

	lbMu sync.RWMutex
	lb   string

	hosts *vm.HostTable

	typeMu sync.RWMutex
	types  map[string]*core.ObjectType

	instMu sync.Mutex
	idle   map[*vm.Module][]*vm.Instance

	statsMu     sync.Mutex
	invocations uint64
}

// StartCompute boots a compute node.
func StartCompute(opts ComputeOptions) (*ComputeNode, error) {
	if opts.Fuel == 0 {
		opts.Fuel = core.DefaultFuel
	}
	n := &ComputeNode{
		opts:  opts,
		srv:   rpc.NewServer(),
		pool:  rpc.NewPool(opts.ClientOptions),
		types: make(map[string]*core.ObjectType),
		idle:  make(map[*vm.Module][]*vm.Instance),
	}
	n.hosts = n.buildHostTable()
	if opts.Metrics != nil {
		n.srv.SetTelemetry(opts.Metrics)
		n.pool.SetTelemetry(opts.Metrics)
	}
	n.srv.Handle(MethodRun, func(body []byte) ([]byte, error) {
		req, err := decodeJobReq(body)
		if err != nil {
			return nil, err
		}
		return n.run(req)
	})
	addr, err := n.srv.Serve(opts.Addr)
	if err != nil {
		return nil, err
	}
	n.addr = addr
	return n, nil
}

// Addr returns the node's RPC address.
func (n *ComputeNode) Addr() string { return n.addr }

// SetLoadBalancer wires the LB address used for nested invocations.
func (n *ComputeNode) SetLoadBalancer(addr string) {
	n.lbMu.Lock()
	n.lb = addr
	n.lbMu.Unlock()
}

// Invocations returns how many functions this node executed.
func (n *ComputeNode) Invocations() uint64 {
	n.statsMu.Lock()
	defer n.statsMu.Unlock()
	return n.invocations
}

// Close shuts the node down.
func (n *ComputeNode) Close() error {
	n.srv.Close()
	n.pool.Close()
	return nil
}

// storageCall sends one operation to the storage primary.
func (n *ComputeNode) storageCall(method string, r *fieldReq) ([]byte, error) {
	return n.pool.Call(n.opts.Storage, method, encodeFieldReq(r))
}

// typeOf resolves (and caches) an object's type: one RPC for the header,
// one for the type record on first sight.
func (n *ComputeNode) typeOf(obj core.ObjectID) (*core.ObjectType, error) {
	resp, err := n.storageCall(MethodHeader, &fieldReq{object: obj})
	if err != nil {
		return nil, err
	}
	nameRaw, present, err := decodePresence(resp)
	if err != nil {
		return nil, err
	}
	if !present {
		return nil, fmt.Errorf("baseline: no such object %s", obj)
	}
	name := string(nameRaw)
	n.typeMu.RLock()
	t, ok := n.types[name]
	n.typeMu.RUnlock()
	if ok {
		return t, nil
	}
	body, err := n.pool.Call(n.opts.Storage, MethodGetType, wire.AppendString(nil, name))
	if err != nil {
		return nil, err
	}
	raw, present, err := decodePresence(body)
	if err != nil {
		return nil, err
	}
	if !present {
		return nil, fmt.Errorf("baseline: no such type %q", name)
	}
	t, err = core.DecodeObjectType(raw)
	if err != nil {
		return nil, err
	}
	n.typeMu.Lock()
	n.types[name] = t
	n.typeMu.Unlock()
	return t, nil
}

// getInstance pops a pooled instance or instantiates a new one.
func (n *ComputeNode) getInstance(mod *vm.Module) (*vm.Instance, error) {
	if !n.opts.DisableWarmPool {
		n.instMu.Lock()
		list := n.idle[mod]
		if len(list) > 0 {
			inst := list[len(list)-1]
			n.idle[mod] = list[:len(list)-1]
			n.instMu.Unlock()
			inst.Reset(n.opts.Fuel)
			return inst, nil
		}
		n.instMu.Unlock()
	}
	if n.opts.ColdStartPenalty > 0 {
		time.Sleep(n.opts.ColdStartPenalty)
	}
	return vm.NewInstance(mod, n.hosts, n.opts.Fuel)
}

func (n *ComputeNode) putInstance(mod *vm.Module, inst *vm.Instance) {
	if n.opts.DisableWarmPool {
		return
	}
	inst.Ctx = nil
	n.instMu.Lock()
	if len(n.idle[mod]) < 64 {
		n.idle[mod] = append(n.idle[mod], inst)
	}
	n.instMu.Unlock()
}

// run executes one function invocation.
func (n *ComputeNode) run(req *jobReq) ([]byte, error) {
	n.statsMu.Lock()
	n.invocations++
	n.statsMu.Unlock()

	typ, err := n.typeOf(req.object)
	if err != nil {
		return nil, err
	}
	if _, ok := typ.Method(req.method); !ok {
		return nil, fmt.Errorf("baseline: no method %s.%s", typ.Name, req.method)
	}
	inst, err := n.getInstance(typ.Module)
	if err != nil {
		return nil, err
	}
	ctx := &computeCtx{node: n, obj: req.object, typ: typ, args: req.args}
	inst.Ctx = ctx
	_, callErr := inst.Call(req.method)
	n.putInstance(typ.Module, inst)
	ctx.waitAsyncs()
	if callErr != nil {
		return nil, fmt.Errorf("baseline: %s.%s on %s: %w", typ.Name, req.method, req.object, callErr)
	}
	if err := ctx.asyncErr(); err != nil {
		return nil, err
	}
	return ctx.result, nil
}

// computeCtx is the per-invocation state for the remote host API.
type computeCtx struct {
	node   *ComputeNode
	obj    core.ObjectID
	typ    *core.ObjectType
	args   [][]byte
	result []byte

	pendingArgs [][]byte
	asyncs      []*asyncResult
}

type asyncResult struct {
	done   chan struct{}
	result []byte
	err    error
}

func (c *computeCtx) waitAsyncs() {
	for _, a := range c.asyncs {
		<-a.done
	}
}

func (c *computeCtx) asyncErr() error {
	for _, a := range c.asyncs {
		if a.err != nil {
			return a.err
		}
	}
	return nil
}

// invokeViaLB routes a nested invocation back through the load balancer
// (paper §4.1: "If a lambda function invokes other lambda functions during
// their execution, they will contact the load-balancer again, introducing
// another round of indirection").
func (c *computeCtx) invokeViaLB(target core.ObjectID, method string, args [][]byte) ([]byte, error) {
	c.node.lbMu.RLock()
	lb := c.node.lb
	c.node.lbMu.RUnlock()
	body := encodeJobReq(&jobReq{object: target, method: method, args: args})
	if lb == "" {
		return nil, fmt.Errorf("baseline: no load balancer configured")
	}
	return c.node.pool.Call(lb, MethodLBInvoke, body)
}

// fieldOf validates a field access against the type.
func (c *computeCtx) fieldOf(name []byte, kind core.FieldKind) (string, error) {
	f, ok := c.typ.Field(string(name))
	if !ok {
		return "", fmt.Errorf("baseline: no field %s.%s", c.typ.Name, name)
	}
	if f.Kind != kind {
		return "", fmt.Errorf("baseline: field %s is %v, not %v", f.Name, f.Kind, kind)
	}
	return f.Name, nil
}

var computeRandMu sync.Mutex
var computeRand = rand.New(rand.NewSource(0x0ddba11))

// buildHostTable constructs the remote-storage host API. Names and
// signatures are identical to the aggregated runtime's, so the same guest
// modules run unmodified on both architectures.
func (n *ComputeNode) buildHostTable() *vm.HostTable {
	t := vm.NewHostTable()

	ctxOf := func(inst *vm.Instance) (*computeCtx, error) {
		c, ok := inst.Ctx.(*computeCtx)
		if !ok || c == nil {
			return nil, fmt.Errorf("baseline: host call outside an invocation")
		}
		return c, nil
	}

	reg := func(name string, nargs int, hasRet bool, cost int64,
		fn func(c *computeCtx, inst *vm.Instance, a []int64) (int64, error)) {
		t.Register(vm.HostFunc{
			Name: name, NArgs: nargs, HasRet: hasRet, Cost: cost,
			Fn: func(inst *vm.Instance, a []int64) (int64, error) {
				c, err := ctxOf(inst)
				if err != nil {
					return 0, err
				}
				return fn(c, inst, a)
			},
		})
	}

	alloc := func(inst *vm.Instance, data []byte) (int64, error) {
		ptr, err := inst.Alloc(int64(len(data)))
		if err != nil {
			return 0, err
		}
		if err := inst.MemWrite(ptr, data); err != nil {
			return 0, err
		}
		return ptr<<32 | int64(len(data)), nil
	}

	reg("self_id", 0, true, 4, func(c *computeCtx, inst *vm.Instance, a []int64) (int64, error) {
		return int64(c.obj), nil
	})
	reg("arg_count", 0, true, 4, func(c *computeCtx, inst *vm.Instance, a []int64) (int64, error) {
		return int64(len(c.args)), nil
	})
	reg("arg", 1, true, 16, func(c *computeCtx, inst *vm.Instance, a []int64) (int64, error) {
		if a[0] < 0 || a[0] >= int64(len(c.args)) {
			return 0, fmt.Errorf("baseline: argument index %d out of range", a[0])
		}
		return alloc(inst, c.args[a[0]])
	})
	reg("set_result", 2, false, 16, func(c *computeCtx, inst *vm.Instance, a []int64) (int64, error) {
		data, err := inst.MemRead(a[0], a[1])
		if err != nil {
			return 0, err
		}
		c.result = data
		return 0, nil
	})
	reg("time", 0, true, 8, func(c *computeCtx, inst *vm.Instance, a []int64) (int64, error) {
		return time.Now().UnixNano(), nil
	})
	reg("rand", 0, true, 8, func(c *computeCtx, inst *vm.Instance, a []int64) (int64, error) {
		computeRandMu.Lock()
		defer computeRandMu.Unlock()
		return computeRand.Int63(), nil
	})
	reg("log", 2, false, 32, func(c *computeCtx, inst *vm.Instance, a []int64) (int64, error) {
		if _, err := inst.MemRead(a[0], a[1]); err != nil {
			return 0, err
		}
		return 0, nil
	})
	t.Register(vm.HostFunc{Name: "alloc", NArgs: 1, HasRet: true, Cost: 8,
		Fn: func(inst *vm.Instance, a []int64) (int64, error) { return inst.Alloc(a[0]) }})

	// readField/writeField helpers produce the remote-op host functions.
	readName := func(inst *vm.Instance, ptr, n int64) ([]byte, error) {
		return inst.MemRead(ptr, n)
	}

	reg("val_get", 2, true, 32, func(c *computeCtx, inst *vm.Instance, a []int64) (int64, error) {
		name, err := readName(inst, a[0], a[1])
		if err != nil {
			return 0, err
		}
		f, err := c.fieldOf(name, core.FieldValue)
		if err != nil {
			return 0, err
		}
		resp, err := c.node.storageCall(MethodValGet, &fieldReq{object: c.obj, field: f})
		if err != nil {
			return 0, err
		}
		v, present, err := decodePresence(resp)
		if err != nil {
			return 0, err
		}
		if !present {
			return -1, nil
		}
		return alloc(inst, v)
	})
	reg("val_set", 4, false, 48, func(c *computeCtx, inst *vm.Instance, a []int64) (int64, error) {
		name, err := readName(inst, a[0], a[1])
		if err != nil {
			return 0, err
		}
		f, err := c.fieldOf(name, core.FieldValue)
		if err != nil {
			return 0, err
		}
		v, err := inst.MemRead(a[2], a[3])
		if err != nil {
			return 0, err
		}
		_, err = c.node.storageCall(MethodValSet, &fieldReq{object: c.obj, field: f, value: v})
		return 0, err
	})
	reg("val_del", 2, false, 32, func(c *computeCtx, inst *vm.Instance, a []int64) (int64, error) {
		name, err := readName(inst, a[0], a[1])
		if err != nil {
			return 0, err
		}
		f, err := c.fieldOf(name, core.FieldValue)
		if err != nil {
			return 0, err
		}
		_, err = c.node.storageCall(MethodValDel, &fieldReq{object: c.obj, field: f})
		return 0, err
	})
	reg("map_get", 4, true, 32, func(c *computeCtx, inst *vm.Instance, a []int64) (int64, error) {
		name, err := readName(inst, a[0], a[1])
		if err != nil {
			return 0, err
		}
		f, err := c.fieldOf(name, core.FieldMap)
		if err != nil {
			return 0, err
		}
		key, err := inst.MemRead(a[2], a[3])
		if err != nil {
			return 0, err
		}
		resp, err := c.node.storageCall(MethodMapGet, &fieldReq{object: c.obj, field: f, key: key})
		if err != nil {
			return 0, err
		}
		v, present, err := decodePresence(resp)
		if err != nil {
			return 0, err
		}
		if !present {
			return -1, nil
		}
		return alloc(inst, v)
	})
	reg("map_set", 6, false, 48, func(c *computeCtx, inst *vm.Instance, a []int64) (int64, error) {
		name, err := readName(inst, a[0], a[1])
		if err != nil {
			return 0, err
		}
		f, err := c.fieldOf(name, core.FieldMap)
		if err != nil {
			return 0, err
		}
		key, err := inst.MemRead(a[2], a[3])
		if err != nil {
			return 0, err
		}
		v, err := inst.MemRead(a[4], a[5])
		if err != nil {
			return 0, err
		}
		_, err = c.node.storageCall(MethodMapSet, &fieldReq{object: c.obj, field: f, key: key, value: v})
		return 0, err
	})
	reg("map_del", 4, false, 32, func(c *computeCtx, inst *vm.Instance, a []int64) (int64, error) {
		name, err := readName(inst, a[0], a[1])
		if err != nil {
			return 0, err
		}
		f, err := c.fieldOf(name, core.FieldMap)
		if err != nil {
			return 0, err
		}
		key, err := inst.MemRead(a[2], a[3])
		if err != nil {
			return 0, err
		}
		_, err = c.node.storageCall(MethodMapDel, &fieldReq{object: c.obj, field: f, key: key})
		return 0, err
	})
	reg("map_count", 2, true, 128, func(c *computeCtx, inst *vm.Instance, a []int64) (int64, error) {
		name, err := readName(inst, a[0], a[1])
		if err != nil {
			return 0, err
		}
		f, err := c.fieldOf(name, core.FieldMap)
		if err != nil {
			return 0, err
		}
		resp, err := c.node.storageCall(MethodMapCount, &fieldReq{object: c.obj, field: f})
		if err != nil {
			return 0, err
		}
		return int64(core.DecodeU64(resp)), nil
	})
	reg("list_len", 2, true, 32, func(c *computeCtx, inst *vm.Instance, a []int64) (int64, error) {
		name, err := readName(inst, a[0], a[1])
		if err != nil {
			return 0, err
		}
		f, err := c.fieldOf(name, core.FieldList)
		if err != nil {
			return 0, err
		}
		resp, err := c.node.storageCall(MethodListLen, &fieldReq{object: c.obj, field: f})
		if err != nil {
			return 0, err
		}
		return int64(core.DecodeU64(resp)), nil
	})
	reg("list_get", 3, true, 32, func(c *computeCtx, inst *vm.Instance, a []int64) (int64, error) {
		name, err := readName(inst, a[0], a[1])
		if err != nil {
			return 0, err
		}
		f, err := c.fieldOf(name, core.FieldList)
		if err != nil {
			return 0, err
		}
		if a[2] < 0 {
			return -1, nil
		}
		resp, err := c.node.storageCall(MethodListGet, &fieldReq{object: c.obj, field: f, idx: uint64(a[2])})
		if err != nil {
			return 0, err
		}
		v, present, err := decodePresence(resp)
		if err != nil {
			return 0, err
		}
		if !present {
			return -1, nil
		}
		return alloc(inst, v)
	})
	reg("list_push", 4, false, 48, func(c *computeCtx, inst *vm.Instance, a []int64) (int64, error) {
		name, err := readName(inst, a[0], a[1])
		if err != nil {
			return 0, err
		}
		f, err := c.fieldOf(name, core.FieldList)
		if err != nil {
			return 0, err
		}
		v, err := inst.MemRead(a[2], a[3])
		if err != nil {
			return 0, err
		}
		_, err = c.node.storageCall(MethodListPush, &fieldReq{object: c.obj, field: f, value: v})
		return 0, err
	})

	reg("call_arg", 2, false, 16, func(c *computeCtx, inst *vm.Instance, a []int64) (int64, error) {
		data, err := inst.MemRead(a[0], a[1])
		if err != nil {
			return 0, err
		}
		c.pendingArgs = append(c.pendingArgs, data)
		return 0, nil
	})
	reg("invoke", 3, true, 256, func(c *computeCtx, inst *vm.Instance, a []int64) (int64, error) {
		method, err := inst.MemRead(a[1], a[2])
		if err != nil {
			return 0, err
		}
		args := c.pendingArgs
		c.pendingArgs = nil
		result, err := c.invokeViaLB(core.ObjectID(a[0]), string(method), args)
		if err != nil {
			return 0, err
		}
		return alloc(inst, result)
	})
	reg("invoke_start", 3, true, 256, func(c *computeCtx, inst *vm.Instance, a []int64) (int64, error) {
		method, err := inst.MemRead(a[1], a[2])
		if err != nil {
			return 0, err
		}
		args := c.pendingArgs
		c.pendingArgs = nil
		ar := &asyncResult{done: make(chan struct{})}
		c.asyncs = append(c.asyncs, ar)
		target := core.ObjectID(a[0])
		m := string(method)
		go func() {
			defer close(ar.done)
			ar.result, ar.err = c.invokeViaLB(target, m, args)
		}()
		return int64(len(c.asyncs) - 1), nil
	})
	reg("invoke_wait", 1, true, 64, func(c *computeCtx, inst *vm.Instance, a []int64) (int64, error) {
		if a[0] < 0 || a[0] >= int64(len(c.asyncs)) {
			return 0, fmt.Errorf("baseline: bad async handle %d", a[0])
		}
		ar := c.asyncs[a[0]]
		<-ar.done
		if ar.err != nil {
			return 0, ar.err
		}
		return alloc(inst, ar.result)
	})

	return t
}
