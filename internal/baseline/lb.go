package baseline

import (
	"fmt"
	"sync"
	"sync/atomic"

	"lambdastore/internal/core"
	"lambdastore/internal/rpc"
	"lambdastore/internal/store"
	"lambdastore/internal/wire"
)

// Load-balancer RPC method names.
const (
	MethodLBInvoke = "lb.invoke"
	MethodLBMirror = "lb.mirror"
)

// LBOptions configures a load balancer.
type LBOptions struct {
	Addr string
	// LogDir persists the request log; the LB durably records every client
	// request before dispatch so a compute-node failure can never lose a
	// response (paper §4.1 — the role Apache Kafka plays in OpenWhisk).
	LogDir string
	// Mirrors are peer load balancers that replicate the request log.
	Mirrors []string
	// Computes are the compute nodes to dispatch to, round-robin.
	Computes []string
	// SyncLog fsyncs every log append (off by default, like the
	// aggregated design's WAL setting, for fairness).
	SyncLog bool
	// Spill, when non-nil, batches request-log appends through a spill
	// buffer flushed by record count, byte volume, or interval, instead
	// of one storage write per request. This weakens the log's durability
	// to one flush window (buffered records die with the process) in
	// exchange for amortized log writes — the knob the overload bench
	// uses to keep the baseline's log off its own critical path.
	Spill *SpillOptions
	// ClientOptions tunes outbound connections (latency injection).
	ClientOptions *rpc.ClientOptions
}

// LoadBalancer fronts the disaggregated compute layer: it durably logs each
// request, mirrors the log to peers, and dispatches to compute nodes.
type LoadBalancer struct {
	opts LBOptions
	srv  *rpc.Server
	pool *rpc.Pool
	addr string

	logDB  *store.DB
	spill  *spillBuffer // nil = synchronous per-request log writes
	logSeq atomic.Uint64
	rr     atomic.Uint64

	mu       sync.RWMutex
	computes []string

	dispatched atomic.Uint64
}

// StartLB boots a load balancer.
func StartLB(opts LBOptions) (*LoadBalancer, error) {
	logDB, err := store.Open(opts.LogDir, &store.Options{SyncWrites: opts.SyncLog})
	if err != nil {
		return nil, err
	}
	lb := &LoadBalancer{
		opts:     opts,
		srv:      rpc.NewServer(),
		pool:     rpc.NewPool(opts.ClientOptions),
		logDB:    logDB,
		computes: append([]string(nil), opts.Computes...),
	}
	if opts.Spill != nil {
		lb.spill = newSpillBuffer(logDB, *opts.Spill)
	}
	lb.srv.Handle(MethodLBInvoke, lb.handleInvoke)
	lb.srv.Handle(MethodLBMirror, lb.handleMirror)
	addr, err := lb.srv.Serve(opts.Addr)
	if err != nil {
		logDB.Close()
		return nil, err
	}
	lb.addr = addr
	return lb, nil
}

// Addr returns the LB's RPC address.
func (lb *LoadBalancer) Addr() string { return lb.addr }

// Dispatched returns the number of requests dispatched to compute nodes.
func (lb *LoadBalancer) Dispatched() uint64 { return lb.dispatched.Load() }

// SetComputes replaces the dispatch set.
func (lb *LoadBalancer) SetComputes(addrs []string) {
	lb.mu.Lock()
	lb.computes = append([]string(nil), addrs...)
	lb.mu.Unlock()
}

// Close shuts the LB down.
func (lb *LoadBalancer) Close() error {
	lb.srv.Close()
	lb.pool.Close()
	if lb.spill != nil {
		lb.spill.Close() //nolint:errcheck // final flush; the DB close below still runs
	}
	return lb.logDB.Close()
}

// SpillStats reports spill-buffer activity (zero value when spilling is
// disabled).
func (lb *LoadBalancer) SpillStats() SpillStats {
	if lb.spill == nil {
		return SpillStats{}
	}
	return lb.spill.Stats()
}

// logKey renders a request-log key.
func logKey(seq uint64) []byte {
	var b [12]byte
	b[0], b[1], b[2], b[3] = 'r', 'l', 'o', 'g'
	for i := 0; i < 8; i++ {
		b[4+i] = byte(seq >> (56 - 8*i))
	}
	return b[:]
}

// handleInvoke durably logs the request, mirrors it, and dispatches it.
func (lb *LoadBalancer) handleInvoke(body []byte) ([]byte, error) {
	// 1. Durable local log (buffered when spilling is on).
	seq := lb.logSeq.Add(1)
	if lb.spill != nil {
		if err := lb.spill.Append(logKey(seq), body); err != nil {
			return nil, fmt.Errorf("baseline: lb log: %w", err)
		}
	} else if err := lb.logDB.Put(logKey(seq), body); err != nil {
		return nil, fmt.Errorf("baseline: lb log: %w", err)
	}
	// 2. Mirror to peer LBs (the log replication Kafka would provide).
	for _, m := range lb.opts.Mirrors {
		var mb []byte
		mb = wire.AppendUvarint(mb, seq)
		mb = wire.AppendBytes(mb, body)
		if _, err := lb.pool.Call(m, MethodLBMirror, mb); err != nil {
			return nil, fmt.Errorf("baseline: lb mirror %s: %w", m, err)
		}
	}
	// 3. Dispatch round-robin.
	lb.mu.RLock()
	computes := lb.computes
	lb.mu.RUnlock()
	if len(computes) == 0 {
		return nil, fmt.Errorf("baseline: no compute nodes")
	}
	target := computes[lb.rr.Add(1)%uint64(len(computes))]
	lb.dispatched.Add(1)
	return lb.pool.Call(target, MethodRun, body)
}

// handleMirror appends a peer's log record.
func (lb *LoadBalancer) handleMirror(body []byte) ([]byte, error) {
	seq, rest, err := wire.Uvarint(body)
	if err != nil {
		return nil, err
	}
	rec, _, err := wire.Bytes(rest)
	if err != nil {
		return nil, err
	}
	if lb.spill != nil {
		return nil, lb.spill.Append(logKey(seq), rec)
	}
	return nil, lb.logDB.Put(logKey(seq), rec)
}

// Client is the application-facing entry point of the disaggregated
// architecture: jobs are submitted to the load balancer. For the paper's
// measured configuration ("clients directly contact the executing node and
// there is no load balancer or frontend"), DirectClient skips the LB.
type Client struct {
	pool *rpc.Pool
	lb   string
}

// NewClient builds a client that submits via the load balancer.
func NewClient(lbAddr string, opts *rpc.ClientOptions) *Client {
	return &Client{pool: rpc.NewPool(opts), lb: lbAddr}
}

// Invoke submits one job.
func (c *Client) Invoke(object uint64, method string, args [][]byte) ([]byte, error) {
	body := encodeJobReq(&jobReq{object: jobObjectID(object), method: method, args: args})
	return c.pool.Call(c.lb, MethodLBInvoke, body)
}

// Close releases connections.
func (c *Client) Close() { c.pool.Close() }

// DirectClient submits jobs straight to one compute node, mirroring the
// paper's evaluation setup where clients contact the executing node
// directly.
type DirectClient struct {
	pool    *rpc.Pool
	compute string
}

// NewDirectClient builds a direct-to-compute client.
func NewDirectClient(computeAddr string, opts *rpc.ClientOptions) *DirectClient {
	return &DirectClient{pool: rpc.NewPool(opts), compute: computeAddr}
}

// Invoke submits one job directly to the compute node.
func (c *DirectClient) Invoke(object uint64, method string, args [][]byte) ([]byte, error) {
	body := encodeJobReq(&jobReq{object: jobObjectID(object), method: method, args: args})
	return c.pool.Call(c.compute, MethodRun, body)
}

// Close releases connections.
func (c *DirectClient) Close() { c.pool.Close() }

// jobObjectID adapts a raw uint64 to the core object ID type.
func jobObjectID(v uint64) core.ObjectID { return core.ObjectID(v) }
