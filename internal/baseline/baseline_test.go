package baseline

import (
	"fmt"
	"strings"
	"sync"
	"testing"

	"lambdastore/internal/core"
	"lambdastore/internal/retwis"
	"lambdastore/internal/rpc"
	"lambdastore/internal/vm"
)

// stack boots storage (1 primary + backups), one compute node and an LB.
type stack struct {
	primary *StorageNode
	backups []*StorageNode
	compute *ComputeNode
	lb      *LoadBalancer
	pool    *rpc.Pool
}

func startStack(t *testing.T, nBackups int) *stack {
	t.Helper()
	s := &stack{pool: rpc.NewPool(nil)}
	t.Cleanup(s.pool.Close)
	var backupAddrs []string
	for i := 0; i < nBackups; i++ {
		b, err := StartStorage(StorageOptions{Addr: "127.0.0.1:0", DataDir: t.TempDir()})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { b.Close() })
		s.backups = append(s.backups, b)
		backupAddrs = append(backupAddrs, b.Addr())
	}
	var err error
	s.primary, err = StartStorage(StorageOptions{
		Addr: "127.0.0.1:0", DataDir: t.TempDir(), Backups: backupAddrs,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.primary.Close() })

	s.compute, err = StartCompute(ComputeOptions{Addr: "127.0.0.1:0", Storage: s.primary.Addr()})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.compute.Close() })

	s.lb, err = StartLB(LBOptions{
		Addr: "127.0.0.1:0", LogDir: t.TempDir(), Computes: []string{s.compute.Addr()},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.lb.Close() })
	s.compute.SetLoadBalancer(s.lb.Addr())
	return s
}

func (s *stack) registerType(t *testing.T, typ *core.ObjectType) {
	t.Helper()
	if _, err := s.pool.Call(s.primary.Addr(), MethodRegType, typ.Encode()); err != nil {
		t.Fatal(err)
	}
}

func (s *stack) create(t *testing.T, id uint64, typeName string) {
	t.Helper()
	if _, err := s.pool.Call(s.primary.Addr(), MethodCreate, EncodeCreateReq(id, typeName)); err != nil {
		t.Fatal(err)
	}
}

func TestDisaggregatedRetwisEndToEnd(t *testing.T) {
	s := startStack(t, 2)
	s.registerType(t, retwis.MustType())
	for id := uint64(1); id <= 3; id++ {
		s.create(t, id, retwis.TypeName)
	}
	client := NewDirectClient(s.compute.Addr(), nil)
	defer client.Close()

	if _, err := client.Invoke(1, "create_account", [][]byte{[]byte("alice")}); err != nil {
		t.Fatal(err)
	}
	// bob and carol follow alice (nested add_follower goes via the LB).
	for id := uint64(2); id <= 3; id++ {
		if _, err := client.Invoke(id, "follow", [][]byte{core.I64Bytes(1)}); err != nil {
			t.Fatal(err)
		}
	}
	res, err := client.Invoke(1, "create_post", [][]byte{[]byte("hello")})
	if err != nil {
		t.Fatal(err)
	}
	if core.BytesI64(res) != 2 {
		t.Fatalf("deliveries = %d", core.BytesI64(res))
	}
	raw, err := client.Invoke(2, "get_timeline", [][]byte{core.I64Bytes(10)})
	if err != nil {
		t.Fatal(err)
	}
	posts, err := retwis.DecodeTimeline(raw)
	if err != nil || len(posts) != 1 || posts[0].Msg != "hello" {
		t.Fatalf("timeline %+v, %v", posts, err)
	}
	// Nested calls went through the LB.
	if s.lb.Dispatched() == 0 {
		t.Fatal("no request traversed the load balancer")
	}
	// Writes replicated to storage backups.
	for i, b := range s.backups {
		n, err := b.DB().Get(core.ListLenKey(2, "timeline"))
		if err != nil || core.DecodeU64(n) != 1 {
			t.Fatalf("backup %d timeline len: %v %v", i, n, err)
		}
	}
}

func TestLBClientPath(t *testing.T) {
	s := startStack(t, 0)
	s.registerType(t, retwis.MustType())
	s.create(t, 1, retwis.TypeName)
	client := NewClient(s.lb.Addr(), nil)
	defer client.Close()
	if _, err := client.Invoke(1, "create_account", [][]byte{[]byte("a")}); err != nil {
		t.Fatal(err)
	}
	got, err := client.Invoke(1, "get_name", nil)
	if err != nil || string(got) != "a" {
		t.Fatalf("get_name = %q, %v", got, err)
	}
	if s.lb.Dispatched() != 2 {
		t.Fatalf("dispatched = %d", s.lb.Dispatched())
	}
	// Both requests are durably logged.
	if _, err := s.lb.logDB.Get(logKey(1)); err != nil {
		t.Fatalf("request 1 not logged: %v", err)
	}
	if _, err := s.lb.logDB.Get(logKey(2)); err != nil {
		t.Fatalf("request 2 not logged: %v", err)
	}
}

func TestLBMirrors(t *testing.T) {
	// Two LBs: one mirrors its log to the other.
	s := startStack(t, 0)
	s.registerType(t, retwis.MustType())
	s.create(t, 1, retwis.TypeName)

	mirror, err := StartLB(LBOptions{Addr: "127.0.0.1:0", LogDir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	defer mirror.Close()
	front, err := StartLB(LBOptions{
		Addr: "127.0.0.1:0", LogDir: t.TempDir(),
		Computes: []string{s.compute.Addr()},
		Mirrors:  []string{mirror.Addr()},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer front.Close()

	client := NewClient(front.Addr(), nil)
	defer client.Close()
	if _, err := client.Invoke(1, "create_account", [][]byte{[]byte("x")}); err != nil {
		t.Fatal(err)
	}
	if _, err := mirror.logDB.Get(logKey(1)); err != nil {
		t.Fatalf("mirror missing log record: %v", err)
	}
}

func TestNoIsolationInBaseline(t *testing.T) {
	// The defining gap (paper §5: "the disaggregated variant provides no
	// consistency guarantees"): a method that writes then traps leaves the
	// partial write behind, unlike the aggregated design.
	src := `
func write_then_trap params=0 export
  str "v"
  str "dirty"
  hostcall val_set
  unreachable
end
func read_v params=0 export
  str "v"
  hostcall val_get
  dup
  push -1
  eq
  jnz absent
  dup
  unpack.ptr
  swap
  unpack.len
  hostcall set_result
  ret
absent:
  pop
  ret
end`
	mod := vm.MustAssemble(src)
	typ, err := core.NewObjectType("Trapper",
		[]core.FieldDef{{Name: "v", Kind: core.FieldValue}},
		[]core.MethodInfo{{Name: "write_then_trap"}, {Name: "read_v", ReadOnly: true}}, mod)
	if err != nil {
		t.Fatal(err)
	}
	s := startStack(t, 0)
	s.registerType(t, typ)
	s.create(t, 9, "Trapper")
	client := NewDirectClient(s.compute.Addr(), nil)
	defer client.Close()

	if _, err := client.Invoke(9, "write_then_trap", nil); err == nil {
		t.Fatal("trap reported success")
	}
	got, err := client.Invoke(9, "read_v", nil)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "dirty" {
		t.Fatalf("read_v = %q; expected the partial write to leak (no atomicity)", got)
	}
}

func TestFieldReqCodec(t *testing.T) {
	r := &fieldReq{object: 5, field: "f", key: []byte("k"), value: []byte("v"), idx: 9}
	dec, err := decodeFieldReq(encodeFieldReq(r))
	if err != nil || dec.object != 5 || dec.field != "f" || string(dec.key) != "k" ||
		string(dec.value) != "v" || dec.idx != 9 {
		t.Fatalf("decoded %+v, %v", dec, err)
	}
	if _, err := decodeFieldReq([]byte{0xff}); err == nil {
		t.Fatal("garbage decoded")
	}
}

func TestJobReqCodec(t *testing.T) {
	r := &jobReq{object: 3, method: "m", args: [][]byte{[]byte("a"), nil}}
	dec, err := decodeJobReq(encodeJobReq(r))
	if err != nil || dec.object != 3 || dec.method != "m" || len(dec.args) != 2 {
		t.Fatalf("decoded %+v, %v", dec, err)
	}
}

func TestStorageOpsDirect(t *testing.T) {
	s := startStack(t, 1)
	pool := s.pool
	addr := s.primary.Addr()

	// Value ops.
	if _, err := pool.Call(addr, MethodValSet, encodeFieldReq(&fieldReq{object: 1, field: "f", value: []byte("x")})); err != nil {
		t.Fatal(err)
	}
	resp, err := pool.Call(addr, MethodValGet, encodeFieldReq(&fieldReq{object: 1, field: "f"}))
	if err != nil {
		t.Fatal(err)
	}
	v, present, err := decodePresence(resp)
	if err != nil || !present || string(v) != "x" {
		t.Fatalf("valget = %q %v %v", v, present, err)
	}
	if _, err := pool.Call(addr, MethodValDel, encodeFieldReq(&fieldReq{object: 1, field: "f"})); err != nil {
		t.Fatal(err)
	}
	resp, _ = pool.Call(addr, MethodValGet, encodeFieldReq(&fieldReq{object: 1, field: "f"}))
	if _, present, _ := decodePresence(resp); present {
		t.Fatal("deleted value still present")
	}

	// List ops with concurrent pushes: single-op atomicity must hold.
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				body := encodeFieldReq(&fieldReq{object: 2, field: "l", value: []byte(fmt.Sprintf("%d-%d", w, i))})
				if _, err := pool.Call(addr, MethodListPush, body); err != nil {
					t.Errorf("push: %v", err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	resp, err = pool.Call(addr, MethodListLen, encodeFieldReq(&fieldReq{object: 2, field: "l"}))
	if err != nil {
		t.Fatal(err)
	}
	if n := core.DecodeU64(resp); n != 200 {
		t.Fatalf("list len = %d, want 200 (lost pushes)", n)
	}

	// Map ops.
	if _, err := pool.Call(addr, MethodMapSet, encodeFieldReq(&fieldReq{object: 3, field: "m", key: []byte("k"), value: []byte("v")})); err != nil {
		t.Fatal(err)
	}
	resp, err = pool.Call(addr, MethodMapCount, encodeFieldReq(&fieldReq{object: 3, field: "m"}))
	if err != nil || core.DecodeU64(resp) != 1 {
		t.Fatalf("map count: %v %v", resp, err)
	}
	// Duplicate create rejected.
	if _, err := pool.Call(addr, MethodCreate, EncodeCreateReq(7, "T")); err != nil {
		t.Fatal(err)
	}
	if _, err := pool.Call(addr, MethodCreate, EncodeCreateReq(7, "T")); err == nil ||
		!strings.Contains(err.Error(), "exists") {
		t.Fatalf("duplicate create err = %v", err)
	}
}
