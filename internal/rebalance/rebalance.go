// Package rebalance is the coordinator-side placement brain: it watches
// per-group load (windowed hot-object counters sampled from each
// primary, enriched with the metrics aggregator's tail-latency rollups)
// and moves individual microshards between replica groups through the
// cluster's zero-downtime live-migration machinery (DESIGN.md §13).
//
// The paper's division of labor puts exactly this decision on the
// platform: objects define what data belongs together; where a
// microshard lives is the platform's problem, and because objects
// migrate individually, fixing a hot spot never reshuffles key ranges
// wholesale. The policy is deliberately conservative — hysteresis
// (minimum gain, per-object cooldown, bounded moves per cycle) keeps a
// Zipf-skewed workload converging to a plateau instead of oscillating
// objects between groups.
package rebalance

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"lambdastore/internal/cluster"
	"lambdastore/internal/core"
	"lambdastore/internal/rpc"
	"lambdastore/internal/shard"
	"lambdastore/internal/telemetry"
)

// GroupLoad is one replica group's observed load for a window.
type GroupLoad struct {
	ID      uint64           `json:"id"`
	Primary string           `json:"primary"`
	Ops     uint64           `json:"ops"` // invocations completed this window
	Hot     []core.HotObject `json:"-"`
	// Aggregator enrichment (zero when the rollup plane is off).
	P99Us      uint64 `json:"p99_us,omitempty"`
	QueueDepth int64  `json:"queue_depth,omitempty"`
}

// Move is one planned migration.
type Move struct {
	Object uint64 `json:"object"`
	From   uint64 `json:"from"`
	To     uint64 `json:"to"`
	Count  uint64 `json:"count"` // the object's window ops
	Reason string `json:"reason"`
}

// PolicyConfig tunes the hysteresis placement policy.
type PolicyConfig struct {
	// ImbalanceRatio is the trigger: a group is overloaded when its
	// window ops exceed the cluster mean by this factor (default 1.25).
	ImbalanceRatio float64
	// MinGainFraction is the hysteresis margin, as a fraction of the
	// mean: a move must leave the source at least this far above the
	// target (default 0.1). Without it, an object whose load roughly
	// equals the imbalance ping-pongs between two groups forever.
	MinGainFraction float64
	// MaxMovesPerTick bounds migrations planned per observation window
	// (default 2) — the in-flight cap; moves execute before the next
	// window is sampled.
	MaxMovesPerTick int
	// Cooldown is how long a just-moved object is immune to further
	// moves (default 10s). It also brackets failed moves, so a flapping
	// target cannot be hammered.
	Cooldown time.Duration
	// MinWindowOps mutes the policy on idle clusters: no group below
	// this many window ops is ever a source (default 50).
	MinWindowOps uint64
	// HomeSlack prefers the object's default hash placement as the
	// target when its load is within this fraction of the mean of the
	// best target's (default 0.1) — going home clears a directory
	// override instead of recording one.
	HomeSlack float64
}

func (c *PolicyConfig) fill() {
	if c.ImbalanceRatio <= 1 {
		c.ImbalanceRatio = 1.25
	}
	if c.MinGainFraction <= 0 {
		c.MinGainFraction = 0.1
	}
	if c.MaxMovesPerTick <= 0 {
		c.MaxMovesPerTick = 2
	}
	if c.Cooldown <= 0 {
		c.Cooldown = 10 * time.Second
	}
	if c.MinWindowOps == 0 {
		c.MinWindowOps = 50
	}
	if c.HomeSlack <= 0 {
		c.HomeSlack = 0.1
	}
}

// Plan computes the migrations for one observation window. It is a pure
// function of the inputs: loads are the per-group windows, home maps an
// object to its default hash placement, cooling reports whether an
// object is inside its post-move cooldown. Planned moves are simulated
// onto the load vector as they are chosen, so one call never overshoots
// the balance it is chasing.
func Plan(cfg PolicyConfig, loads []GroupLoad, home func(object uint64) (uint64, bool), cooling func(object uint64) bool) []Move {
	cfg.fill()
	if len(loads) < 2 {
		return nil
	}
	sim := make(map[uint64]float64, len(loads))
	byID := make(map[uint64]*GroupLoad, len(loads))
	var total float64
	for i := range loads {
		g := &loads[i]
		sim[g.ID] = float64(g.Ops)
		byID[g.ID] = g
		total += float64(g.Ops)
	}
	mean := total / float64(len(loads))
	margin := cfg.MinGainFraction * mean

	// Hottest groups first: the worst outlier is fixed before budget is
	// spent on milder ones.
	order := make([]uint64, 0, len(loads))
	for i := range loads {
		order = append(order, loads[i].ID)
	}
	sort.Slice(order, func(i, j int) bool {
		if sim[order[i]] != sim[order[j]] {
			return sim[order[i]] > sim[order[j]]
		}
		return order[i] < order[j]
	})

	var plan []Move
	for _, srcID := range order {
		if len(plan) >= cfg.MaxMovesPerTick {
			break
		}
		src := byID[srcID]
		if src.Primary == "" || src.Ops < cfg.MinWindowOps {
			continue
		}
		if sim[srcID] <= mean*cfg.ImbalanceRatio {
			continue
		}
		for _, h := range src.Hot {
			if len(plan) >= cfg.MaxMovesPerTick {
				break
			}
			if sim[srcID] <= mean*cfg.ImbalanceRatio {
				break // this source is balanced now
			}
			c := float64(h.Count)
			if c == 0 || cooling(uint64(h.ID)) {
				continue
			}
			// Least-loaded candidate target with a primary to receive.
			var best *GroupLoad
			for i := range loads {
				t := &loads[i]
				if t.ID == srcID || t.Primary == "" {
					continue
				}
				if best == nil || sim[t.ID] < sim[best.ID] {
					best = t
				}
			}
			if best == nil {
				break
			}
			target := best
			reason := "imbalance"
			if hid, ok := home(uint64(h.ID)); ok && hid != srcID && hid != best.ID {
				if hg, exists := byID[hid]; exists && hg.Primary != "" &&
					sim[hid] <= sim[best.ID]+cfg.HomeSlack*mean {
					target = hg
					reason = "imbalance,prefer-home"
				}
			} else if ok && hid == best.ID {
				reason = "imbalance,home"
			}
			// Hysteresis: the move must leave the source above the target
			// by the margin, or it is not worth a migration (and might
			// oscillate right back).
			if sim[srcID]-c < sim[target.ID]+c+margin {
				continue // try a colder object — a smaller move may fit
			}
			plan = append(plan, Move{
				Object: uint64(h.ID),
				From:   srcID,
				To:     target.ID,
				Count:  h.Count,
				Reason: reason,
			})
			sim[srcID] -= c
			sim[target.ID] += c
		}
	}
	return plan
}

// Options wires a Rebalancer.
type Options struct {
	// Pool carries hot-window samples and move commands to primaries.
	Pool *rpc.Pool
	// Config returns the current placement view (a coordinator client's
	// GetConfig, or the shared directory in static deployments).
	Config func() (*shard.Directory, error)
	// Rollup, if set, returns the aggregator's per-group tail-latency
	// and queue-depth rollups, folded into the load view for status and
	// observability.
	Rollup func() map[uint64]GroupLoad
	// Interval is the observation window (default 2s). Each tick
	// samples-and-resets every primary's hot counters, so the interval
	// is also the averaging horizon.
	Interval time.Duration
	// TopK bounds the per-group hot sample (default 32).
	TopK int
	// Policy tunes the planner.
	Policy PolicyConfig
	// DryRun plans and records decisions without executing moves.
	DryRun bool
	// Metrics, if set, receives the rebalancer's counters.
	Metrics *telemetry.Registry
	// Log, if set, receives decision lines.
	Log func(format string, args ...any)
}

// Decision is one recorded planning outcome (the status surface keeps a
// short ring of these).
type Decision struct {
	UnixNano int64  `json:"unix_nano"`
	Move     Move   `json:"move"`
	Executed bool   `json:"executed"`
	Error    string `json:"error,omitempty"`
}

// Status is the rebalancer's state as served by /rebalance and
// lambdactl rebalance.
type Status struct {
	Enabled     bool        `json:"enabled"`
	Ticks       uint64      `json:"ticks"`
	Moves       uint64      `json:"moves"`
	MoveErrors  uint64      `json:"move_errors"`
	LastWindow  []GroupLoad `json:"last_window,omitempty"`
	Cooling     int         `json:"cooling"`
	Decisions   []Decision  `json:"recent_decisions,omitempty"`
	IntervalSec float64     `json:"interval_seconds"`
}

const decisionRing = 32

// Rebalancer periodically samples per-group load and executes the
// planner's moves through the live-migration machinery.
type Rebalancer struct {
	opts Options

	mu       sync.Mutex
	enabled  bool
	started  bool
	cool     map[uint64]time.Time
	window   []GroupLoad
	history  []Decision
	ticks    uint64
	moves    uint64
	moveErrs uint64

	stop     chan struct{}
	done     chan struct{}
	stopOnce sync.Once

	movesCtr *telemetry.Counter
	errsCtr  *telemetry.Counter
	ticksCtr *telemetry.Counter
}

// New builds a Rebalancer; Start launches its loop.
func New(opts Options) *Rebalancer {
	if opts.Interval <= 0 {
		opts.Interval = 2 * time.Second
	}
	if opts.TopK <= 0 {
		opts.TopK = 32
	}
	if opts.Log == nil {
		opts.Log = func(string, ...any) {}
	}
	opts.Policy.fill()
	r := &Rebalancer{
		opts:    opts,
		enabled: true,
		cool:    make(map[uint64]time.Time),
		stop:    make(chan struct{}),
		done:    make(chan struct{}),
	}
	if opts.Metrics != nil {
		r.movesCtr = opts.Metrics.Counter("rebalance.moves")
		r.errsCtr = opts.Metrics.Counter("rebalance.move_errors")
		r.ticksCtr = opts.Metrics.Counter("rebalance.ticks")
	}
	return r
}

// Start launches the observation loop. Callers that drive Tick
// themselves never call Start; Close works either way.
func (r *Rebalancer) Start() {
	r.mu.Lock()
	if r.started {
		r.mu.Unlock()
		return
	}
	r.started = true
	r.mu.Unlock()
	go func() {
		defer close(r.done)
		ticker := time.NewTicker(r.opts.Interval)
		defer ticker.Stop()
		for {
			select {
			case <-r.stop:
				return
			case <-ticker.C:
			}
			r.Tick()
		}
	}()
}

// Close stops the loop (a no-op wait when Start was never called).
func (r *Rebalancer) Close() {
	r.stopOnce.Do(func() { close(r.stop) })
	r.mu.Lock()
	started := r.started
	r.mu.Unlock()
	if started {
		<-r.done
	}
}

// SetEnabled toggles planning (the sampling keeps running so windows
// stay fresh — re-enabling acts on current data, not a stale window).
func (r *Rebalancer) SetEnabled(on bool) {
	r.mu.Lock()
	r.enabled = on
	r.mu.Unlock()
}

// Moves returns how many migrations the rebalancer has executed.
func (r *Rebalancer) Moves() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.moves
}

// Tick runs one observe→plan→execute cycle (exported for tests and
// benches that drive the cadence themselves).
func (r *Rebalancer) Tick() {
	if r.ticksCtr != nil {
		r.ticksCtr.Inc()
	}
	r.mu.Lock()
	r.ticks++
	enabled := r.enabled
	r.mu.Unlock()

	d, err := r.opts.Config()
	if err != nil || d == nil {
		return
	}
	loads := r.sample(d)
	r.mu.Lock()
	r.window = loads
	now := time.Now()
	for obj, until := range r.cool {
		if now.After(until) {
			delete(r.cool, obj)
		}
	}
	cooling := make(map[uint64]bool, len(r.cool))
	for obj := range r.cool {
		cooling[obj] = true
	}
	r.mu.Unlock()

	if !enabled {
		return
	}
	plan := Plan(r.opts.Policy, loads,
		func(object uint64) (uint64, bool) {
			gid, err := d.DefaultGroupID(object)
			return gid, err == nil
		},
		func(object uint64) bool { return cooling[object] })

	byID := make(map[uint64]*GroupLoad, len(loads))
	for i := range loads {
		byID[loads[i].ID] = &loads[i]
	}
	for _, mv := range plan {
		dec := Decision{UnixNano: time.Now().UnixNano(), Move: mv}
		if !r.opts.DryRun {
			err := r.execute(byID, mv)
			dec.Executed = err == nil
			if err != nil {
				dec.Error = err.Error()
			}
		}
		r.record(dec)
	}
}

// execute runs one move synchronously; the per-tick plan bound is the
// in-flight bound.
func (r *Rebalancer) execute(byID map[uint64]*GroupLoad, mv Move) error {
	src, dst := byID[mv.From], byID[mv.To]
	if src == nil || dst == nil || src.Primary == "" || dst.Primary == "" {
		return fmt.Errorf("rebalance: groups %d→%d not addressable", mv.From, mv.To)
	}
	// Cooldown starts at attempt time: failures back off too.
	r.mu.Lock()
	r.cool[mv.Object] = time.Now().Add(r.opts.Policy.Cooldown)
	r.mu.Unlock()
	err := cluster.MoveObject(r.opts.Pool, src.Primary, mv.Object, dst.Primary, mv.To)
	r.mu.Lock()
	if err != nil {
		r.moveErrs++
	} else {
		r.moves++
	}
	r.mu.Unlock()
	if err != nil {
		if r.errsCtr != nil {
			r.errsCtr.Inc()
		}
		r.opts.Log("rebalance: move object %d %d→%d (%s): %v", mv.Object, mv.From, mv.To, mv.Reason, err)
		return err
	}
	if r.movesCtr != nil {
		r.movesCtr.Inc()
	}
	r.opts.Log("rebalance: moved object %d %d→%d (%d window ops, %s)", mv.Object, mv.From, mv.To, mv.Count, mv.Reason)
	return nil
}

// sample collects one window: each group primary's hot counters are
// read-and-reset; group ops is the sum over the sample (the tracker's
// capacity far exceeds any plausible per-window working set, so the sum
// is exact for the window). The aggregator rollup, when wired, fills in
// tail latency and queue depth.
func (r *Rebalancer) sample(d *shard.Directory) []GroupLoad {
	var rollup map[uint64]GroupLoad
	if r.opts.Rollup != nil {
		rollup = r.opts.Rollup()
	}
	groups := d.Groups()
	out := make([]GroupLoad, 0, len(groups))
	for _, g := range groups {
		gl := GroupLoad{ID: g.ID, Primary: g.Primary}
		if g.Primary != "" {
			if hot, err := cluster.HotWindow(r.opts.Pool, g.Primary, r.opts.TopK); err == nil {
				gl.Hot = hot
				for _, h := range hot {
					gl.Ops += h.Count
				}
			}
		}
		if ru, ok := rollup[g.ID]; ok {
			gl.P99Us = ru.P99Us
			gl.QueueDepth = ru.QueueDepth
		}
		out = append(out, gl)
	}
	return out
}

// record appends one decision to the status ring.
func (r *Rebalancer) record(dec Decision) {
	r.mu.Lock()
	r.history = append(r.history, dec)
	if len(r.history) > decisionRing {
		r.history = r.history[len(r.history)-decisionRing:]
	}
	r.mu.Unlock()
}

// Status snapshots the rebalancer for /rebalance and lambdactl.
func (r *Rebalancer) Status() Status {
	r.mu.Lock()
	defer r.mu.Unlock()
	st := Status{
		Enabled:     r.enabled,
		Ticks:       r.ticks,
		Moves:       r.moves,
		MoveErrors:  r.moveErrs,
		Cooling:     len(r.cool),
		IntervalSec: r.opts.Interval.Seconds(),
	}
	st.LastWindow = append(st.LastWindow, r.window...)
	st.Decisions = append(st.Decisions, r.history...)
	return st
}
