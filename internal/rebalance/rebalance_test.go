package rebalance

import (
	"testing"
	"time"

	"lambdastore/internal/core"
)

func noHome(object uint64) (uint64, bool) { return 0, false }
func noCool(object uint64) bool           { return false }

func hot(pairs ...uint64) []core.HotObject {
	var out []core.HotObject
	for i := 0; i+1 < len(pairs); i += 2 {
		out = append(out, core.HotObject{ID: core.ObjectID(pairs[i]), Count: pairs[i+1]})
	}
	return out
}

func TestPlanMovesHottestToColdest(t *testing.T) {
	loads := []GroupLoad{
		{ID: 0, Primary: "a", Ops: 1000, Hot: hot(7, 300, 8, 200, 9, 100)},
		{ID: 1, Primary: "b", Ops: 100, Hot: hot(11, 100)},
		{ID: 2, Primary: "c", Ops: 200, Hot: hot(12, 200)},
	}
	plan := Plan(PolicyConfig{}, loads, noHome, noCool)
	if len(plan) == 0 {
		t.Fatal("expected at least one move")
	}
	if plan[0].Object != 7 || plan[0].From != 0 || plan[0].To != 1 {
		t.Fatalf("expected hottest object 7 to move 0→1, got %+v", plan[0])
	}
}

func TestPlanBalancedIsQuiet(t *testing.T) {
	loads := []GroupLoad{
		{ID: 0, Primary: "a", Ops: 500, Hot: hot(1, 500)},
		{ID: 1, Primary: "b", Ops: 480, Hot: hot(2, 480)},
		{ID: 2, Primary: "c", Ops: 510, Hot: hot(3, 510)},
	}
	if plan := Plan(PolicyConfig{}, loads, noHome, noCool); len(plan) != 0 {
		t.Fatalf("balanced cluster planned moves: %+v", plan)
	}
}

func TestPlanHysteresisBlocksOscillation(t *testing.T) {
	// One object carries all the source's load: moving it would just
	// relocate the hot spot, so the min-gain check must reject it.
	loads := []GroupLoad{
		{ID: 0, Primary: "a", Ops: 1000, Hot: hot(7, 1000)},
		{ID: 1, Primary: "b", Ops: 0},
	}
	if plan := Plan(PolicyConfig{}, loads, noHome, noCool); len(plan) != 0 {
		t.Fatalf("whole-load move should be rejected, got %+v", plan)
	}
}

func TestPlanSkipsCoolingObjects(t *testing.T) {
	loads := []GroupLoad{
		{ID: 0, Primary: "a", Ops: 1000, Hot: hot(7, 400, 8, 300)},
		{ID: 1, Primary: "b", Ops: 100},
	}
	cooling := func(object uint64) bool { return object == 7 }
	plan := Plan(PolicyConfig{}, loads, noHome, cooling)
	if len(plan) == 0 {
		t.Fatal("expected a move of the non-cooling object")
	}
	for _, mv := range plan {
		if mv.Object == 7 {
			t.Fatalf("cooling object 7 was planned: %+v", plan)
		}
	}
}

func TestPlanBoundsMovesPerTick(t *testing.T) {
	loads := []GroupLoad{
		{ID: 0, Primary: "a", Ops: 4000, Hot: hot(1, 900, 2, 900, 3, 900, 4, 900, 5, 400)},
		{ID: 1, Primary: "b", Ops: 100},
		{ID: 2, Primary: "c", Ops: 100},
		{ID: 3, Primary: "d", Ops: 100},
	}
	plan := Plan(PolicyConfig{MaxMovesPerTick: 2}, loads, noHome, noCool)
	if len(plan) != 2 {
		t.Fatalf("expected exactly 2 moves, got %d: %+v", len(plan), plan)
	}
}

func TestPlanPrefersHome(t *testing.T) {
	// Groups 1 and 2 are nearly equally idle; object 7's hash home is
	// group 2, so it should go home (clearing an override) rather than
	// to the marginally colder group 1.
	loads := []GroupLoad{
		{ID: 0, Primary: "a", Ops: 1000, Hot: hot(7, 400, 8, 200)},
		{ID: 1, Primary: "b", Ops: 90},
		{ID: 2, Primary: "c", Ops: 110},
	}
	home := func(object uint64) (uint64, bool) {
		if object == 7 {
			return 2, true
		}
		return 0, true
	}
	plan := Plan(PolicyConfig{}, loads, home, noCool)
	if len(plan) == 0 {
		t.Fatal("expected a move")
	}
	if plan[0].Object != 7 || plan[0].To != 2 {
		t.Fatalf("expected object 7 to prefer home group 2, got %+v", plan[0])
	}
}

func TestPlanMutesIdleClusters(t *testing.T) {
	loads := []GroupLoad{
		{ID: 0, Primary: "a", Ops: 20, Hot: hot(7, 20)},
		{ID: 1, Primary: "b", Ops: 1},
	}
	if plan := Plan(PolicyConfig{MinWindowOps: 50}, loads, noHome, noCool); len(plan) != 0 {
		t.Fatalf("idle cluster planned moves: %+v", plan)
	}
}

func TestPlanSimulatesChosenMoves(t *testing.T) {
	// After moving the hottest object to the coldest group, the next
	// move must account for the target's new load — both moves landing
	// on group 1 would overshoot.
	loads := []GroupLoad{
		{ID: 0, Primary: "a", Ops: 1200, Hot: hot(1, 500, 2, 200)},
		{ID: 1, Primary: "b", Ops: 100},
		{ID: 2, Primary: "c", Ops: 200},
	}
	plan := Plan(PolicyConfig{MaxMovesPerTick: 4}, loads, noHome, noCool)
	if len(plan) < 2 {
		t.Fatalf("expected two moves, got %+v", plan)
	}
	if plan[0].To == plan[1].To {
		t.Fatalf("both moves landed on group %d: %+v", plan[0].To, plan)
	}
}

func TestPolicyDefaults(t *testing.T) {
	var cfg PolicyConfig
	cfg.fill()
	if cfg.ImbalanceRatio <= 1 || cfg.MinGainFraction <= 0 || cfg.MaxMovesPerTick <= 0 ||
		cfg.Cooldown < time.Second || cfg.MinWindowOps == 0 {
		t.Fatalf("defaults not filled: %+v", cfg)
	}
}
