// The coordinator's metrics aggregation plane. Nodes advertise their debug
// HTTP address in heartbeats; the Aggregator periodically scrapes each
// member's /metrics.json snapshot and merges the histograms (exact bucket
// addition — every histogram in the system shares one layout) into per-group
// and cluster-wide rollups. The result is served on the coordinator's
// /cluster/metrics endpoint and rendered by `lambdactl top`.
//
// The paper's division of labor motivates putting this here: placement and
// load-balancing decisions belong to the platform, not the objects, so the
// platform must own an aggregated view of per-group load and tail latency.
// Like everything else on the coordinator, aggregation is off the invocation
// fast path — scraping is read-only HTTP against debug endpoints.
package coordinator

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"

	"lambdastore/internal/telemetry"
)

// GroupMetrics is one row of the cluster rollup: a replica group's merged
// windowed view. The same shape describes the whole cluster (ID ignored).
type GroupMetrics struct {
	ID      uint64   `json:"id"`
	Primary string   `json:"primary,omitempty"`
	Members []string `json:"members,omitempty"`
	Scraped int      `json:"scraped"`

	WindowSecs float64 `json:"window_seconds"`
	// OpsPerSec is the windowed invocation completion rate.
	OpsPerSec float64 `json:"ops_per_sec"`
	// Windowed invoke latency quantiles, microseconds.
	P50Us  uint64 `json:"p50_us"`
	P99Us  uint64 `json:"p99_us"`
	P999Us uint64 `json:"p999_us"`
	// WalFsyncP99Us is the windowed p99 of WAL fsync latency.
	WalFsyncP99Us uint64 `json:"wal_fsync_p99_us"`
	// CacheHitRate is hits/(hits+misses) over the window, counting both the
	// result cache and the client/cluster cache tier.
	CacheHitRate float64 `json:"cache_hit_rate"`
	// QueueDepth is the summed rpc.server.in_flight gauge.
	QueueDepth int64 `json:"queue_depth"`
	// Leases is the summed lease.held gauge — how many of the group's
	// backups currently hold a read lease.
	Leases int64 `json:"leases"`
	// BackupReadsPerSec is the windowed rate of reads served locally by
	// leased backups; BouncedReadsPerSec counts reads a backup refused
	// (no valid lease) and redirected to the primary.
	BackupReadsPerSec  float64 `json:"backup_reads_per_sec"`
	BouncedReadsPerSec float64 `json:"bounced_reads_per_sec"`
	// ShedPerSec is the windowed rate of invocations refused by the
	// admission plane, all causes (deadline, quota, queue full) summed.
	ShedPerSec float64 `json:"shed_per_sec"`
	// AdmissionQueueDepth is the summed admission.queue_depth gauge.
	AdmissionQueueDepth int64 `json:"admission_queue_depth"`
	// Invoke is the merged windowed invoke histogram (with exemplars), for
	// consumers that want more than the precomputed quantiles.
	Invoke telemetry.HistData `json:"invoke,omitempty"`
}

// ClusterMetrics is the aggregator's output: per-group rollups plus the
// cluster-wide merge.
type ClusterMetrics struct {
	UpdatedUnixNano int64          `json:"updated_unix_nano"`
	Members         int            `json:"members_known"`
	Scraped         int            `json:"members_scraped"`
	Groups          []GroupMetrics `json:"groups"`
	Cluster         GroupMetrics   `json:"cluster"`
}

// Aggregator periodically scrapes member metrics snapshots and merges them.
type Aggregator struct {
	svc      *Service
	interval time.Duration
	client   *http.Client

	mu   sync.Mutex
	cur  ClusterMetrics
	stop chan struct{}
	done chan struct{}
}

// DefaultScrapeInterval is the scrape period when none is given.
const DefaultScrapeInterval = 2 * time.Second

// NewAggregator builds an aggregator over svc's membership view.
func NewAggregator(svc *Service, interval time.Duration) *Aggregator {
	if interval <= 0 {
		interval = DefaultScrapeInterval
	}
	return &Aggregator{
		svc:      svc,
		interval: interval,
		client:   &http.Client{Timeout: 2 * time.Second},
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
	}
}

// Start launches the scrape loop.
func (a *Aggregator) Start() {
	go func() {
		defer close(a.done)
		ticker := time.NewTicker(a.interval)
		defer ticker.Stop()
		for {
			select {
			case <-a.stop:
				return
			case <-ticker.C:
			}
			a.ScrapeOnce()
		}
	}()
}

// Close stops the scrape loop.
func (a *Aggregator) Close() {
	close(a.stop)
	<-a.done
}

// Snapshot returns the latest rollup.
func (a *Aggregator) Snapshot() ClusterMetrics {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.cur
}

// ScrapeOnce scrapes every known member synchronously and rebuilds the
// rollup. Exposed so tests (and a fresh `lambdactl top`) don't have to wait
// for the ticker.
func (a *Aggregator) ScrapeOnce() ClusterMetrics {
	dir := a.svc.Directory()
	debugAddrs := a.svc.DebugAddrs()

	// Scrape each distinct member once, in parallel.
	members := make(map[string]bool)
	for _, g := range dir.Groups() {
		for _, m := range g.Replicas() {
			members[m] = true
		}
	}
	snaps := make(map[string]telemetry.RegistrySnapshot)
	var smu sync.Mutex
	var wg sync.WaitGroup
	for m := range members {
		dbg := debugAddrs[m]
		if dbg == "" {
			continue
		}
		wg.Add(1)
		go func(member, dbg string) {
			defer wg.Done()
			snap, err := a.fetch(dbg)
			if err != nil {
				return
			}
			smu.Lock()
			snaps[member] = snap
			smu.Unlock()
		}(m, dbg)
	}
	wg.Wait()

	out := ClusterMetrics{
		UpdatedUnixNano: time.Now().UnixNano(),
		Members:         len(members),
		Scraped:         len(snaps),
	}
	var all []telemetry.RegistrySnapshot
	for _, g := range dir.Groups() {
		var groupSnaps []telemetry.RegistrySnapshot
		for _, m := range g.Replicas() {
			if s, ok := snaps[m]; ok {
				groupSnaps = append(groupSnaps, s)
			}
		}
		gm := rollup(telemetry.MergeSnapshots(groupSnaps))
		gm.ID = g.ID
		gm.Primary = g.Primary
		gm.Members = g.Replicas()
		gm.Scraped = len(groupSnaps)
		out.Groups = append(out.Groups, gm)
		all = append(all, groupSnaps...)
	}
	sort.Slice(out.Groups, func(i, j int) bool { return out.Groups[i].ID < out.Groups[j].ID })
	out.Cluster = rollup(telemetry.MergeSnapshots(all))
	out.Cluster.Scraped = len(all)

	a.mu.Lock()
	a.cur = out
	a.mu.Unlock()
	return out
}

// fetch GETs one member's registry snapshot.
func (a *Aggregator) fetch(debugAddr string) (telemetry.RegistrySnapshot, error) {
	var snap telemetry.RegistrySnapshot
	resp, err := a.client.Get("http://" + debugAddr + "/metrics.json")
	if err != nil {
		return snap, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return snap, fmt.Errorf("coordinator: scrape %s: %s", debugAddr, resp.Status)
	}
	err = json.NewDecoder(resp.Body).Decode(&snap)
	return snap, err
}

// rollup derives the operator-facing scalars from a merged snapshot.
func rollup(m telemetry.RegistrySnapshot) GroupMetrics {
	gm := GroupMetrics{WindowSecs: m.WindowSecs}
	if inv, ok := m.Histograms["core.invoke"]; ok {
		gm.Invoke = inv.Window
		gm.P50Us = inv.Window.P50Us
		gm.P99Us = inv.Window.P99Us
		gm.P999Us = inv.Window.P999Us
		if m.WindowSecs > 0 {
			gm.OpsPerSec = float64(inv.Window.Count) / m.WindowSecs
		}
	}
	if fsync, ok := m.Histograms["wal.fsync"]; ok {
		gm.WalFsyncP99Us = fsync.Window.P99Us
	}
	hits := m.Counters["core.cache_hits"].RatePerSec + m.Counters["cache.hits"].RatePerSec
	misses := m.Counters["core.cache_misses"].RatePerSec + m.Counters["cache.misses"].RatePerSec
	if hits+misses > 0 {
		gm.CacheHitRate = hits / (hits + misses)
	}
	gm.QueueDepth = m.Gauges["rpc.server.in_flight"]
	gm.Leases = m.Gauges["lease.held"]
	gm.BackupReadsPerSec = m.Counters["reads.backup_served"].RatePerSec
	gm.BouncedReadsPerSec = m.Counters["reads.primary_bounced"].RatePerSec
	gm.ShedPerSec = m.Counters["admission.shed_deadline"].RatePerSec +
		m.Counters["admission.shed_quota"].RatePerSec +
		m.Counters["admission.shed_full"].RatePerSec
	gm.AdmissionQueueDepth = m.Gauges["admission.queue_depth"]
	return gm
}

// FormatClusterMetrics renders the rollup as the `lambdactl top` table.
func FormatClusterMetrics(cm ClusterMetrics) string {
	var b strings.Builder
	age := time.Since(time.Unix(0, cm.UpdatedUnixNano)).Round(time.Second)
	if cm.UpdatedUnixNano == 0 {
		fmt.Fprintf(&b, "cluster: no scrape yet (%d member(s) known)\n", cm.Members)
		return b.String()
	}
	fmt.Fprintf(&b, "cluster: %d/%d member(s) scraped, window %.1fs, updated %v ago\n",
		cm.Scraped, cm.Members, cm.Cluster.WindowSecs, age)
	fmt.Fprintf(&b, "%-6s %-22s %8s %9s %9s %9s %11s %6s %5s %6s %8s %8s %8s %6s\n",
		"GROUP", "PRIMARY", "OPS/S", "P50(us)", "P99(us)", "P999(us)", "FSYNC99(us)", "CACHE", "QD", "LEASES", "BKRD/S", "BNC/S", "SHED/S", "QDEPTH")
	row := func(name, primary string, g GroupMetrics) {
		fmt.Fprintf(&b, "%-6s %-22s %8.1f %9d %9d %9d %11d %5.1f%% %5d %6d %8.1f %8.1f %8.1f %6d\n",
			name, primary, g.OpsPerSec, g.P50Us, g.P99Us, g.P999Us,
			g.WalFsyncP99Us, 100*g.CacheHitRate, g.QueueDepth,
			g.Leases, g.BackupReadsPerSec, g.BouncedReadsPerSec,
			g.ShedPerSec, g.AdmissionQueueDepth)
	}
	for _, g := range cm.Groups {
		row(fmt.Sprintf("%d", g.ID), g.Primary, g)
	}
	row("ALL", "-", cm.Cluster)
	return b.String()
}
