package coordinator

import (
	"testing"
	"time"

	"lambdastore/internal/paxos"
	"lambdastore/internal/shard"
)

// newCluster builds n coordinator replicas over an in-process transport.
func newCluster(t *testing.T, n int, opts Options) ([]*Service, *paxos.LocalTransport) {
	t.Helper()
	trans := paxos.NewLocalTransport()
	ids := make([]uint64, n)
	for i := range ids {
		ids[i] = uint64(i + 1)
	}
	var services []*Service
	for _, id := range ids {
		svc := New(id, ids, trans, opts)
		trans.Register(svc.Node())
		svc.Start()
		t.Cleanup(svc.Close)
		services = append(services, svc)
	}
	return services, trans
}

func TestCommandRoundTrip(t *testing.T) {
	c := &Command{
		Kind:          cmdPromote,
		Group:         shard.Group{ID: 3, Primary: "p:1", Backups: []string{"b:1", "b:2"}},
		GroupID:       3,
		FailedPrimary: "p:1",
		NewPrimary:    "b:1",
		Object:        42,
		TargetGroup:   1,
		Epoch:         9,
	}
	dec, err := DecodeCommand(c.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if dec.Kind != cmdPromote || dec.GroupID != 3 || dec.FailedPrimary != "p:1" ||
		dec.NewPrimary != "b:1" || dec.Object != 42 || dec.TargetGroup != 1 || dec.Epoch != 9 {
		t.Fatalf("decoded %+v", dec)
	}
	if len(dec.Group.Backups) != 2 || dec.Group.Primary != "p:1" {
		t.Fatalf("group %+v", dec.Group)
	}
	if _, err := DecodeCommand(nil); err == nil {
		t.Fatal("empty command decoded")
	}
}

func TestSetGroupReplicatesToAll(t *testing.T) {
	services, _ := newCluster(t, 3, Options{DisableFailureDetector: true})
	g := shard.Group{ID: 0, Primary: "s1:7000", Backups: []string{"s2:7000"}}
	if err := services[0].ProposeCommand(&Command{Kind: cmdSetGroup, Group: g}); err != nil {
		t.Fatal(err)
	}
	// The proposer's directory reflects it immediately; peers learn it via
	// the proposal's learn fan-out.
	for i, svc := range services {
		d := svc.Directory()
		got, err := d.Lookup(0)
		if err != nil || got.Primary != "s1:7000" {
			t.Fatalf("replica %d directory: %+v %v", i, got, err)
		}
	}
}

func TestPromotionGuardIdempotent(t *testing.T) {
	services, _ := newCluster(t, 3, Options{DisableFailureDetector: true})
	g := shard.Group{ID: 0, Primary: "p", Backups: []string{"b1", "b2"}}
	if err := services[0].ProposeCommand(&Command{Kind: cmdSetGroup, Group: g}); err != nil {
		t.Fatal(err)
	}
	promote := &Command{Kind: cmdPromote, GroupID: 0, FailedPrimary: "p", NewPrimary: "b1"}
	if err := services[1].ProposeCommand(promote); err != nil {
		t.Fatal(err)
	}
	// A duplicate promotion against the already-replaced primary is a
	// no-op: b2 must not usurp b1.
	dup := &Command{Kind: cmdPromote, GroupID: 0, FailedPrimary: "p", NewPrimary: "b2"}
	if err := services[2].ProposeCommand(dup); err != nil {
		t.Fatal(err)
	}
	got, err := services[0].Directory().Lookup(0)
	if err != nil || got.Primary != "b1" {
		t.Fatalf("primary = %q, %v", got.Primary, err)
	}
}

func TestOverrideCommands(t *testing.T) {
	services, _ := newCluster(t, 3, Options{DisableFailureDetector: true})
	for gid := uint64(0); gid < 2; gid++ {
		g := shard.Group{ID: gid, Primary: "p"}
		if err := services[0].ProposeCommand(&Command{Kind: cmdSetGroup, Group: g}); err != nil {
			t.Fatal(err)
		}
	}
	if err := services[0].ProposeCommand(&Command{Kind: cmdSetOverride, Object: 4, TargetGroup: 1}); err != nil {
		t.Fatal(err)
	}
	g, err := services[1].Directory().Lookup(4)
	if err != nil || g.ID != 1 {
		t.Fatalf("override lookup: %d, %v", g.ID, err)
	}
	if err := services[0].ProposeCommand(&Command{Kind: cmdClearOverride, Object: 4}); err != nil {
		t.Fatal(err)
	}
	g, _ = services[2].Directory().Lookup(4)
	if g.ID != 0 {
		t.Fatalf("after clear: %d", g.ID)
	}
}

// TestAddBackupEpochFence covers the rejoin admission command: a fence
// matching the current epoch admits the joiner; a stale fence (the
// configuration changed since the catch-up was certified) is a no-op;
// re-admitting an existing member is idempotent; a zero fence is
// unguarded.
func TestAddBackupEpochFence(t *testing.T) {
	services, _ := newCluster(t, 3, Options{DisableFailureDetector: true})
	g := shard.Group{ID: 0, Primary: "p", Backups: []string{"b1"}}
	if err := services[0].ProposeCommand(&Command{Kind: cmdSetGroup, Group: g}); err != nil {
		t.Fatal(err)
	}
	epoch := services[0].Directory().Epoch()

	// Matching fence: the joiner becomes a backup on every replica.
	if err := services[0].ProposeCommand(&Command{Kind: cmdAddBackup, GroupID: 0, NewPrimary: "b2", Epoch: epoch}); err != nil {
		t.Fatal(err)
	}
	for i, svc := range services {
		got, err := svc.Directory().Lookup(0)
		if err != nil || len(got.Backups) != 2 || got.Backups[1] != "b2" {
			t.Fatalf("replica %d after admit: %+v %v", i, got, err)
		}
	}
	if got := services[0].RejoinCounts()[0]; got != 1 {
		t.Fatalf("rejoins = %d, want 1", got)
	}

	// Stale fence: the epoch moved when b2 was admitted, so an admission
	// certified against the old configuration must not take effect.
	if err := services[1].ProposeCommand(&Command{Kind: cmdAddBackup, GroupID: 0, NewPrimary: "b3", Epoch: epoch}); err != nil {
		t.Fatal(err)
	}
	got, _ := services[0].Directory().Lookup(0)
	for _, b := range got.Backups {
		if b == "b3" {
			t.Fatalf("stale-fenced admission took effect: %+v", got)
		}
	}
	if got := services[0].RejoinCounts()[0]; got != 1 {
		t.Fatalf("rejoins after fenced no-op = %d, want 1", got)
	}

	// Duplicate admission at the current epoch: idempotent no-op.
	cur := services[0].Directory().Epoch()
	if err := services[0].ProposeCommand(&Command{Kind: cmdAddBackup, GroupID: 0, NewPrimary: "b2", Epoch: cur}); err != nil {
		t.Fatal(err)
	}
	if got := services[0].RejoinCounts()[0]; got != 1 {
		t.Fatalf("rejoins after duplicate = %d, want 1", got)
	}

	// Zero fence: unguarded, applies regardless of epoch drift.
	if err := services[2].ProposeCommand(&Command{Kind: cmdAddBackup, GroupID: 0, NewPrimary: "b3"}); err != nil {
		t.Fatal(err)
	}
	got, _ = services[1].Directory().Lookup(0)
	if len(got.Backups) != 3 || got.Backups[2] != "b3" {
		t.Fatalf("unfenced admission: %+v", got)
	}
	if got := services[2].RejoinCounts()[0]; got != 2 {
		t.Fatalf("rejoins after unfenced = %d, want 2", got)
	}
}

func TestFailureDetectorPromotes(t *testing.T) {
	services, _ := newCluster(t, 3, Options{
		HeartbeatTimeout: 100 * time.Millisecond,
		CheckInterval:    25 * time.Millisecond,
	})
	g := shard.Group{ID: 0, Primary: "prim", Backups: []string{"back"}}
	if err := services[0].ProposeCommand(&Command{Kind: cmdSetGroup, Group: g}); err != nil {
		t.Fatal(err)
	}
	// Both nodes heartbeat, then the primary goes silent while the backup
	// keeps beating.
	stop := make(chan struct{})
	go func() {
		ticker := time.NewTicker(20 * time.Millisecond)
		defer ticker.Stop()
		for {
			select {
			case <-stop:
				return
			case <-ticker.C:
				for _, svc := range services {
					svc.Heartbeat("back")
				}
			}
		}
	}()
	defer close(stop)
	for _, svc := range services {
		svc.Heartbeat("prim")
	}

	deadline := time.Now().Add(5 * time.Second)
	for {
		got, err := services[0].Directory().Lookup(0)
		if err == nil && got.Primary == "back" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("failure detector never promoted (primary %q)", got.Primary)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

func TestNeverHeartbeatedNodeNotDeclaredDead(t *testing.T) {
	services, _ := newCluster(t, 1, Options{
		HeartbeatTimeout: 30 * time.Millisecond,
		CheckInterval:    10 * time.Millisecond,
	})
	g := shard.Group{ID: 0, Primary: "silent", Backups: []string{"alive"}}
	if err := services[0].ProposeCommand(&Command{Kind: cmdSetGroup, Group: g}); err != nil {
		t.Fatal(err)
	}
	services[0].Heartbeat("alive")
	time.Sleep(100 * time.Millisecond)
	// "silent" never heartbeated at all (e.g. configured before boot):
	// the detector must not kill it on zero evidence.
	got, err := services[0].Directory().Lookup(0)
	if err != nil || got.Primary != "silent" {
		t.Fatalf("primary = %q (demoted without evidence)", got.Primary)
	}
}
