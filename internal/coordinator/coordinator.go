// Package coordinator implements LambdaStore's cluster-wide coordination
// service (paper §4.2.1): a Paxos-replicated configuration state machine
// recording replica groups, object migrations, and node liveness. If a node
// fails, the coordinator reconfigures the affected shards (promoting a
// backup to primary) and participants pick up the new configuration and
// reissue requests. The coordinator is only involved during
// reconfigurations, so it is never on the invocation fast path.
package coordinator

import (
	"fmt"
	"sync"
	"time"

	"lambdastore/internal/fault"
	"lambdastore/internal/paxos"
	"lambdastore/internal/rpc"
	"lambdastore/internal/shard"
	"lambdastore/internal/wire"
)

// Command kinds in the replicated log.
const (
	cmdSetGroup = iota + 1
	cmdPromote
	cmdSetOverride
	cmdClearOverride
	cmdNoop
	// cmdEvictBackup removes a dead backup from a group (GroupID +
	// FailedPrimary name the victim) so strict primary-backup shipping can
	// acknowledge writes again without it.
	cmdEvictBackup
	// cmdAddBackup re-admits a caught-up node (NewPrimary is the joiner's
	// address) as a backup of GroupID — the spare→member transition of the
	// anti-entropy rejoin protocol. Guarded by Epoch: if the directory
	// moved since the donor certified the joiner, the admission no-ops and
	// the joiner must re-sync against the new configuration.
	cmdAddBackup
	// cmdCompactOverrides folds redundant placement overrides (those
	// matching the default hash placement, or pointing at removed groups)
	// into the base placement on every replica — the decay that keeps the
	// override table bounded by the number of currently displaced objects.
	cmdCompactOverrides
)

// Command is one replicated configuration change.
type Command struct {
	Kind uint8

	// cmdSetGroup
	Group shard.Group

	// cmdPromote: promote NewPrimary in group GroupID if its primary is
	// still FailedPrimary (idempotence under duplicate proposals).
	GroupID       uint64
	FailedPrimary string
	NewPrimary    string

	// cmdSetOverride / cmdClearOverride
	Object      uint64
	TargetGroup uint64

	// Epoch fences epoch-certified commands (0 = unguarded), encoded
	// last so older frames (which never carried it) would simply read
	// absent. cmdAddBackup: the epoch the joiner's catch-up was
	// certified against. cmdSetOverride/cmdClearOverride: the epoch a
	// live migration's transfer ran under — any reconfiguration since
	// (failover in either group) invalidates the transfer, the cutover
	// no-ops, and the migration aborts instead of installing a stale
	// placement.
	Epoch uint64
}

// Encode serializes the command.
func (c *Command) Encode() []byte {
	var b []byte
	b = append(b, c.Kind)
	b = wire.AppendUvarint(b, c.Group.ID)
	b = wire.AppendString(b, c.Group.Primary)
	b = wire.AppendUvarint(b, uint64(len(c.Group.Backups)))
	for _, bk := range c.Group.Backups {
		b = wire.AppendString(b, bk)
	}
	b = wire.AppendUvarint(b, c.GroupID)
	b = wire.AppendString(b, c.FailedPrimary)
	b = wire.AppendString(b, c.NewPrimary)
	b = wire.AppendUvarint(b, c.Object)
	b = wire.AppendUvarint(b, c.TargetGroup)
	b = wire.AppendUvarint(b, c.Epoch)
	return b
}

// DecodeCommand parses a command.
func DecodeCommand(data []byte) (*Command, error) {
	if len(data) < 1 {
		return nil, fmt.Errorf("coordinator: empty command")
	}
	c := &Command{Kind: data[0]}
	rest := data[1:]
	var err error
	if c.Group.ID, rest, err = wire.Uvarint(rest); err != nil {
		return nil, err
	}
	if c.Group.Primary, rest, err = wire.String(rest); err != nil {
		return nil, err
	}
	var nb uint64
	if nb, rest, err = wire.Uvarint(rest); err != nil {
		return nil, err
	}
	for i := uint64(0); i < nb; i++ {
		var bk string
		if bk, rest, err = wire.String(rest); err != nil {
			return nil, err
		}
		c.Group.Backups = append(c.Group.Backups, bk)
	}
	if c.GroupID, rest, err = wire.Uvarint(rest); err != nil {
		return nil, err
	}
	if c.FailedPrimary, rest, err = wire.String(rest); err != nil {
		return nil, err
	}
	if c.NewPrimary, rest, err = wire.String(rest); err != nil {
		return nil, err
	}
	if c.Object, rest, err = wire.Uvarint(rest); err != nil {
		return nil, err
	}
	if c.TargetGroup, rest, err = wire.Uvarint(rest); err != nil {
		return nil, err
	}
	if c.Epoch, _, err = wire.Uvarint(rest); err != nil {
		return nil, err
	}
	return c, nil
}

// Options tunes a coordinator replica.
type Options struct {
	// HeartbeatTimeout is how long a storage node may stay silent before
	// it is declared failed (default 2s).
	HeartbeatTimeout time.Duration
	// CheckInterval is the failure-detector sweep period (default 500ms).
	CheckInterval time.Duration
	// DisableFailureDetector turns off automatic promotion (tests drive
	// promotions manually).
	DisableFailureDetector bool
}

// Service is one coordinator replica.
type Service struct {
	opts Options
	node *paxos.Node

	mu         sync.Mutex
	dir        *shard.Directory
	lastSeen   map[string]time.Time
	debugAddrs map[string]string // rpc addr -> debug HTTP addr (from heartbeats)
	applied    uint64
	promotes   map[uint64]uint64 // group -> effective (guard-matched) promotions
	evicts     map[uint64]uint64 // group -> effective backup evictions
	rejoins    map[uint64]uint64 // group -> effective backup re-admissions
	migrations uint64            // effective override installs/clears (cutovers)
	compacted  uint64            // overrides folded into base placement

	stop chan struct{}
	done chan struct{}
}

// New creates a coordinator replica with Paxos identity id among peers,
// using trans for consensus traffic. Call Start after registering the
// transport.
func New(id uint64, peers []uint64, trans paxos.Transport, opts Options) *Service {
	if opts.HeartbeatTimeout <= 0 {
		opts.HeartbeatTimeout = 2 * time.Second
	}
	if opts.CheckInterval <= 0 {
		opts.CheckInterval = 500 * time.Millisecond
	}
	s := &Service{
		opts:       opts,
		dir:        shard.NewDirectory(nil),
		lastSeen:   make(map[string]time.Time),
		debugAddrs: make(map[string]string),
		promotes:   make(map[uint64]uint64),
		evicts:     make(map[uint64]uint64),
		rejoins:    make(map[uint64]uint64),
		stop:       make(chan struct{}),
		done:       make(chan struct{}),
	}
	s.node = paxos.NewNode(id, peers, trans, s.apply)
	return s
}

// Node exposes the Paxos participant (for transport registration).
func (s *Service) Node() *paxos.Node { return s.node }

// SetTransport installs the consensus transport (used when replica
// addresses are only known after all servers are listening).
func (s *Service) SetTransport(t paxos.Transport) { s.node.SetTransport(t) }

// Start launches the failure detector.
func (s *Service) Start() {
	go s.detectLoop()
}

// Close stops background work.
func (s *Service) Close() {
	close(s.stop)
	<-s.done
	s.node.Close()
}

// apply is the paxos learner callback: commands mutate the directory in
// log order on every replica identically.
func (s *Service) apply(slot uint64, value []byte) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.applied++
	if len(value) == 0 {
		return // no-op filler from catch-up
	}
	c, err := DecodeCommand(value)
	if err != nil {
		return // corrupt commands are ignored deterministically
	}
	switch c.Kind {
	case cmdSetGroup:
		s.dir.SetGroup(c.Group)
	case cmdPromote:
		groups := s.dir.Groups()
		for _, g := range groups {
			if g.ID == c.GroupID && g.Primary == c.FailedPrimary {
				if _, err := s.dir.Promote(c.GroupID, c.NewPrimary); err == nil {
					s.promotes[c.GroupID]++
				}
			}
		}
	case cmdEvictBackup:
		if s.dir.EvictBackup(c.GroupID, c.FailedPrimary) {
			s.evicts[c.GroupID]++
		}
	case cmdAddBackup:
		// Epoch fence: the admission was certified against a specific
		// configuration; any reconfiguration since (failover, eviction)
		// invalidates the certification, so the command no-ops and the
		// joiner re-syncs against the new configuration.
		if c.Epoch != 0 && s.dir.Epoch() != c.Epoch {
			return
		}
		if s.dir.AddBackup(c.GroupID, c.NewPrimary) {
			s.rejoins[c.GroupID]++
		}
	case cmdSetOverride:
		// Same fence as cmdAddBackup: a live migration certifies its
		// transfer against the epoch it ran under; a reconfiguration in
		// between voids the cutover.
		if c.Epoch != 0 && s.dir.Epoch() != c.Epoch {
			return
		}
		s.dir.SetOverride(c.Object, c.TargetGroup)
		s.migrations++
	case cmdClearOverride:
		if c.Epoch != 0 && s.dir.Epoch() != c.Epoch {
			return
		}
		s.dir.ClearOverride(c.Object)
		s.migrations++
	case cmdCompactOverrides:
		s.compacted += uint64(s.dir.CompactOverrides())
	}
}

// ProposeCommand replicates a configuration change through Paxos.
func (s *Service) ProposeCommand(c *Command) error {
	_, err := s.node.ProposeMine(c.Encode())
	return err
}

// Directory returns a snapshot copy of the current configuration.
func (s *Service) Directory() *shard.Directory {
	s.mu.Lock()
	snap := s.dir.Snapshot()
	s.mu.Unlock()
	d, err := shard.Load(snap)
	if err != nil {
		return shard.NewDirectory(nil)
	}
	return d
}

// Heartbeat records liveness of a storage node.
func (s *Service) Heartbeat(addr string) {
	s.mu.Lock()
	s.lastSeen[addr] = time.Now()
	s.mu.Unlock()
}

// HeartbeatWithDebug records liveness and the node's debug HTTP address,
// which the metrics aggregator scrapes.
func (s *Service) HeartbeatWithDebug(addr, debugAddr string) {
	s.mu.Lock()
	s.lastSeen[addr] = time.Now()
	if debugAddr != "" {
		s.debugAddrs[addr] = debugAddr
	}
	s.mu.Unlock()
}

// DebugAddrs returns a copy of the rpc-addr -> debug-HTTP-addr table
// learned from heartbeats.
func (s *Service) DebugAddrs() map[string]string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[string]string, len(s.debugAddrs))
	for a, d := range s.debugAddrs {
		out[a] = d
	}
	return out
}

// detectLoop sweeps for dead primaries and proposes promotions. Promotion
// commands are idempotent (guarded by FailedPrimary), so replicas racing to
// propose is harmless.
func (s *Service) detectLoop() {
	defer close(s.done)
	if s.opts.DisableFailureDetector {
		<-s.stop
		return
	}
	ticker := time.NewTicker(s.opts.CheckInterval)
	defer ticker.Stop()
	for {
		select {
		case <-s.stop:
			return
		case <-ticker.C:
		}
		s.sweep()
	}
}

// sweep finds groups whose primary has missed heartbeats and promotes the
// freshest live backup; it also evicts dead backups so the strict
// replication path (every write-set acknowledged by every backup before the
// client ack) regains availability without them.
func (s *Service) sweep() {
	s.mu.Lock()
	now := time.Now()
	groups := s.dir.Groups()
	// Group members this replica has never heard from go on probation:
	// the clock starts at the first sweep that sees them configured, so a
	// node that dies before its first heartbeat is still declared dead
	// one timeout later instead of hanging its group forever.
	for _, g := range groups {
		for _, member := range g.Replicas() {
			if _, ok := s.lastSeen[member]; !ok {
				s.lastSeen[member] = now
			}
		}
	}
	dead := func(addr string) bool {
		seen, ok := s.lastSeen[addr]
		return ok && now.Sub(seen) > s.opts.HeartbeatTimeout
	}
	var proposals []Command
	for _, g := range groups {
		if dead(g.Primary) {
			for _, b := range g.Backups {
				if !dead(b) {
					proposals = append(proposals, Command{
						Kind:          cmdPromote,
						GroupID:       g.ID,
						FailedPrimary: g.Primary,
						NewPrimary:    b,
					})
					break
				}
			}
			// Dead backups of a dead primary are cleaned up after the
			// promotion lands (next sweep), keeping each step idempotent.
			continue
		}
		for _, b := range g.Backups {
			if dead(b) {
				proposals = append(proposals, Command{
					Kind:          cmdEvictBackup,
					GroupID:       g.ID,
					FailedPrimary: b,
				})
			}
		}
	}
	s.mu.Unlock()
	for i := range proposals {
		// Best effort: a lost proposal is retried next sweep.
		_ = s.ProposeCommand(&proposals[i])
	}
}

// PromoteCounts returns how many effective (guard-matched) promotions this
// replica has applied per group — the chaos harness's single-primary probe:
// one failure must yield exactly one promotion on every replica.
func (s *Service) PromoteCounts() map[uint64]uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[uint64]uint64, len(s.promotes))
	for g, n := range s.promotes {
		out[g] = n
	}
	return out
}

// LastSeen returns a copy of this replica's liveness table (how long
// ago each storage node last heartbeated) — observability for the
// debug surface and the chaos harness.
func (s *Service) LastSeen() map[string]time.Duration {
	s.mu.Lock()
	defer s.mu.Unlock()
	now := time.Now()
	out := make(map[string]time.Duration, len(s.lastSeen))
	for addr, seen := range s.lastSeen {
		out[addr] = now.Sub(seen)
	}
	return out
}

// EvictCounts returns effective backup evictions applied per group.
func (s *Service) EvictCounts() map[uint64]uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[uint64]uint64, len(s.evicts))
	for g, n := range s.evicts {
		out[g] = n
	}
	return out
}

// MigrationCounts returns (effective cutovers applied, overrides folded
// by compaction) on this replica, plus the live override-table size —
// the observability triple behind the rebalancer's /metrics gauges: a
// healthy cluster shows cutovers rising while the override count decays
// back toward zero as objects migrate home or compaction folds them.
func (s *Service) MigrationCounts() (cutovers, compacted uint64, overrides int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.migrations, s.compacted, s.dir.OverrideCount()
}

// RejoinCounts returns effective backup re-admissions applied per group.
func (s *Service) RejoinCounts() map[uint64]uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[uint64]uint64, len(s.rejoins))
	for g, n := range s.rejoins {
		out[g] = n
	}
	return out
}

// --- RPC surface ---

// RPC method names.
const (
	MethodGetConfig = "coord.getconfig"
	MethodHeartbeat = "coord.heartbeat"
	MethodSetGroup  = "coord.setgroup"
	MethodPromote   = "coord.promote"
	MethodMigrate   = "coord.migrate"
	MethodAddBackup = "coord.addbackup"
)

// RegisterServer exposes the coordinator's client API and its Paxos roles
// on an RPC server.
func RegisterServer(srv *rpc.Server, s *Service) {
	paxos.RegisterServer(srv, s.node)
	srv.Handle(MethodGetConfig, func(body []byte) ([]byte, error) {
		s.mu.Lock()
		defer s.mu.Unlock()
		return s.dir.Snapshot(), nil
	})
	srv.Handle(MethodHeartbeat, func(body []byte) ([]byte, error) {
		addr, rest, err := wire.String(body)
		if err != nil {
			return nil, err
		}
		// Older nodes send only the rpc address; newer ones append their
		// debug HTTP address for the metrics aggregator.
		debugAddr := ""
		if len(rest) > 0 {
			if d, _, derr := wire.String(rest); derr == nil {
				debugAddr = d
			}
		}
		s.HeartbeatWithDebug(addr, debugAddr)
		return nil, nil
	})
	srv.Handle(MethodSetGroup, func(body []byte) ([]byte, error) {
		c, err := DecodeCommand(body)
		if err != nil {
			return nil, err
		}
		c.Kind = cmdSetGroup
		return nil, s.ProposeCommand(c)
	})
	srv.Handle(MethodPromote, func(body []byte) ([]byte, error) {
		c, err := DecodeCommand(body)
		if err != nil {
			return nil, err
		}
		c.Kind = cmdPromote
		return nil, s.ProposeCommand(c)
	})
	srv.Handle(MethodAddBackup, func(body []byte) ([]byte, error) {
		c, err := DecodeCommand(body)
		if err != nil {
			return nil, err
		}
		c.Kind = cmdAddBackup
		return nil, s.ProposeCommand(c)
	})
	srv.Handle(MethodMigrate, func(body []byte) ([]byte, error) {
		c, err := DecodeCommand(body)
		if err != nil {
			return nil, err
		}
		if c.Kind != cmdClearOverride && c.Kind != cmdCompactOverrides {
			c.Kind = cmdSetOverride
		}
		return nil, s.ProposeCommand(c)
	})
}

// Client is a thin RPC client for the coordinator service.
type Client struct {
	pool  *rpc.Pool
	addrs []string
}

// NewClient builds a client that tries coordinator replicas in order.
func NewClient(pool *rpc.Pool, addrs []string) *Client {
	return &Client{pool: pool, addrs: append([]string(nil), addrs...)}
}

// call tries each replica until one answers.
func (c *Client) call(method string, body []byte) ([]byte, error) {
	var lastErr error
	for _, addr := range c.addrs {
		resp, err := c.pool.Call(addr, method, body)
		if err == nil {
			return resp, nil
		}
		lastErr = err
	}
	return nil, fmt.Errorf("coordinator: all replicas failed: %w", lastErr)
}

// GetConfig fetches the current directory.
func (c *Client) GetConfig() (*shard.Directory, error) {
	body, err := c.call(MethodGetConfig, nil)
	if err != nil {
		return nil, err
	}
	return shard.Load(body)
}

// Heartbeat reports node addr as alive to every reachable replica (each
// replica runs its own failure detector). debugAddr, if non-empty, tells the
// coordinator where the node's debug HTTP endpoint lives so the metrics
// aggregator can scrape it.
func (c *Client) Heartbeat(addr, debugAddr string) {
	if fault.Enabled() {
		// Targeted heartbeat loss: the node keeps serving but looks dead to
		// the failure detector (the gray-failure half of a partition).
		d := fault.Eval(fault.SiteCoordHeartbeat, addr)
		if d.Delay > 0 {
			time.Sleep(d.Delay)
		}
		if d.Drop || d.Err != nil {
			return
		}
	}
	body := wire.AppendString(nil, addr)
	if debugAddr != "" {
		body = wire.AppendString(body, debugAddr)
	}
	for _, a := range c.addrs {
		c.pool.Call(a, MethodHeartbeat, body) //nolint:errcheck // best effort
	}
}

// SetGroup installs a replica group.
func (c *Client) SetGroup(g shard.Group) error {
	cmd := Command{Kind: cmdSetGroup, Group: g}
	_, err := c.call(MethodSetGroup, cmd.Encode())
	return err
}

// Promote requests a manual failover.
func (c *Client) Promote(gid uint64, failedPrimary, newPrimary string) error {
	cmd := Command{Kind: cmdPromote, GroupID: gid, FailedPrimary: failedPrimary, NewPrimary: newPrimary}
	_, err := c.call(MethodPromote, cmd.Encode())
	return err
}

// AddBackup proposes re-admitting a caught-up joiner as a backup of
// group gid, fenced on expectEpoch (the epoch the catch-up was
// certified against; 0 = unfenced). The proposal landing does not mean
// it took effect — callers confirm by reading the configuration back.
func (c *Client) AddBackup(gid uint64, joiner string, expectEpoch uint64) error {
	cmd := Command{Kind: cmdAddBackup, GroupID: gid, NewPrimary: joiner, Epoch: expectEpoch}
	_, err := c.call(MethodAddBackup, cmd.Encode())
	return err
}

// SetOverride records a migrated object's new group.
func (c *Client) SetOverride(object, group uint64) error {
	cmd := Command{Kind: cmdSetOverride, Object: object, TargetGroup: group}
	_, err := c.call(MethodMigrate, cmd.Encode())
	return err
}

// SetOverrideFenced proposes a migration cutover certified against
// expectEpoch: if the directory reconfigured since the transfer ran, the
// command no-ops and the caller (which confirms by reading the
// configuration back) aborts the migration.
func (c *Client) SetOverrideFenced(object, group, expectEpoch uint64) error {
	cmd := Command{Kind: cmdSetOverride, Object: object, TargetGroup: group, Epoch: expectEpoch}
	_, err := c.call(MethodMigrate, cmd.Encode())
	return err
}

// ClearOverride proposes removing an object's override — the cutover of
// a migration back to the object's default placement, fenced the same
// way (0 = unfenced).
func (c *Client) ClearOverride(object, expectEpoch uint64) error {
	cmd := Command{Kind: cmdClearOverride, Object: object, Epoch: expectEpoch}
	_, err := c.call(MethodMigrate, cmd.Encode())
	return err
}

// CompactOverrides proposes folding redundant overrides into the base
// placement on every replica.
func (c *Client) CompactOverrides() error {
	cmd := Command{Kind: cmdCompactOverrides}
	_, err := c.call(MethodMigrate, cmd.Encode())
	return err
}
