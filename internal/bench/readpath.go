package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"os"
	"path/filepath"
	"runtime"
	"sync"

	"lambdastore/internal/core"
	"lambdastore/internal/workload"
)

// readPathClients are the closed-loop client counts swept per ablation.
var readPathClients = []int{1, 8, 64}

// readPathPosts posts are seeded per hot account and readPathLimit are
// read back per GetTimeline, so each op traverses a real timeline: a
// cache hit re-validates ~readPathLimit read dependencies (the state
// cache's target) and a miss re-executes a real VM scan. The default
// GetTimeline op reads 10 posts of an unseeded (empty) timeline, which
// measures only RPC dispatch.
const (
	readPathPosts = 40
	readPathLimit = 40
	// readPathMsgLen is deliberately small: the response payload is floor
	// cost every configuration pays; the per-key validation work is what
	// the sweep isolates.
	readPathMsgLen = 24
)

// ReadPathPoint is one (ablation, clients) measurement of the read path.
type ReadPathPoint struct {
	Config     string  `json:"config"`
	Clients    int     `json:"clients"`
	Ops        uint64  `json:"ops"`
	Throughput float64 `json:"throughput_ops_per_sec"`
	P50Micros  int64   `json:"p50_us"`
	P99Micros  int64   `json:"p99_us"`
	Errors     uint64  `json:"errors"`
	// CacheHitRate is the consistent result cache's hits/(hits+misses)
	// over the measured run, summed across the group.
	CacheHitRate float64 `json:"cache_hit_rate"`
	// StateCacheHitRate is the store-level hot-object state cache's rate
	// (0 when the cache is ablated).
	StateCacheHitRate float64 `json:"state_cache_hit_rate"`
	// AllocsPerOp is the process-wide heap-allocation delta divided by
	// completed ops — a relative measure (clients and servers share the
	// process) that the fast path drives down.
	AllocsPerOp float64 `json:"allocs_per_op"`
}

// readPathAblation names one configuration of the sweep. Each named config
// enables exactly one layer on top of the fully ablated baseline, and
// "all" enables every layer — so the sweep shows both each layer's
// isolated contribution and their combined effect.
type readPathAblation struct {
	name  string
	apply func(*Options)
}

// ablateAll turns every read-path optimization off: unsharded result
// cache, no state cache, full VM re-image per warm start, no read-only
// fast path, interpreted bytecode execution.
func ablateAll(o *Options) {
	o.CacheShards = 1
	o.StateCacheEntries = -1
	o.FullVMReset = true
	o.DisableReadFastPath = true
	o.VMInterp = true
}

var readPathAblations = []readPathAblation{
	{"none", func(o *Options) { ablateAll(o) }},
	{"shard", func(o *Options) { ablateAll(o); o.CacheShards = 0 }},
	{"statecache", func(o *Options) { ablateAll(o); o.StateCacheEntries = 0 }},
	{"vmpool", func(o *Options) { ablateAll(o); o.FullVMReset = false }},
	{"fastpath", func(o *Options) { ablateAll(o); o.DisableReadFastPath = false }},
	{"vmcompile", func(o *Options) { ablateAll(o); o.VMInterp = false }},
	{"all", func(o *Options) {}},
}

// ReadPathReport is the results/BENCH_read_path.json document.
type ReadPathReport struct {
	GeneratedBy string          `json:"generated_by"`
	Workload    string          `json:"workload"`
	Accounts    int             `json:"accounts"`
	Ops         int             `json:"ops"`
	Replicas    int             `json:"replicas"`
	Clients     []int           `json:"clients"`
	Results     []ReadPathPoint `json:"results"`
	// Speedup64 is all-on over all-ablated GetTimeline throughput at the
	// highest client count (the issue's headline number).
	Speedup64 float64 `json:"speedup_at_64_clients"`
}

// runReadPathPoint boots one aggregated deployment under the given
// ablation and drives GetTimeline at one client count.
func runReadPathPoint(opts Options, name string, clients int) (ReadPathPoint, error) {
	out := ReadPathPoint{Config: name, Clients: clients}
	d, err := StartAggregated(opts)
	if err != nil {
		return out, err
	}
	defer d.Close()
	cfg := workload.DefaultConfig(opts.Accounts)
	if err := workload.Populate(cfg, d.Create, d.Invoker); err != nil {
		return out, err
	}
	if err := seedTimelines(cfg, d.Invoker); err != nil {
		return out, err
	}
	// Flush memtables so the measured reads face SSTables, as in a store
	// that has been up longer than one memtable's worth of writes.
	for _, n := range d.Nodes {
		if err := n.DB().Flush(); err != nil {
			return out, err
		}
	}

	timelineOps := func(worker int) (func() error, error) {
		rng := rand.New(rand.NewSource(cfg.Seed + int64(worker)*7919))
		return func() error {
			id := cfg.AccountID(rng.Intn(cfg.Accounts))
			_, err := d.Invoker.Invoke(id, "get_timeline", [][]byte{core.I64Bytes(readPathLimit)})
			return err
		}, nil
	}

	// Unmeasured warmup: fill every node's result cache so the measured
	// run is the steady state (first-touch misses re-execute the VM, two
	// orders of magnitude slower than a validated hit — a handful of them
	// would dominate the mean).
	warmupOps := 8 * opts.Accounts * len(d.Nodes)
	if _, err := workload.RunClosedLoopOps(workload.GetTimeline, timelineOps, 16, warmupOps); err != nil {
		return out, err
	}

	// Snapshot cache counters and heap allocations after warmup so only
	// the steady-state run counts.
	baseHits, baseMisses := readPathCacheCounters(d)
	baseSCHits, baseSCMisses := readPathStateCacheCounters(d)
	var msBefore runtime.MemStats
	runtime.ReadMemStats(&msBefore)

	res, err := workload.RunClosedLoopOps(workload.GetTimeline, timelineOps, clients, opts.OpsPerWorkload)
	if err != nil {
		return out, err
	}

	var msAfter runtime.MemStats
	runtime.ReadMemStats(&msAfter)
	hits, misses := readPathCacheCounters(d)
	scHits, scMisses := readPathStateCacheCounters(d)

	out.Ops = uint64(res.Ops)
	out.Throughput = res.Throughput
	out.P50Micros = res.Latency.Median.Microseconds()
	out.P99Micros = res.Latency.P99.Microseconds()
	out.Errors = res.Errors
	out.CacheHitRate = hitRate(hits-baseHits, misses-baseMisses)
	out.StateCacheHitRate = hitRate(scHits-baseSCHits, scMisses-baseSCMisses)
	if res.Ops > 0 {
		out.AllocsPerOp = float64(msAfter.Mallocs-msBefore.Mallocs) / float64(res.Ops)
	}
	return out, nil
}

// seedTimelines appends readPathPosts posts to every account's timeline
// (store_post directly, no follower fan-out) so GetTimeline reads real
// data.
func seedTimelines(cfg workload.Config, inv workload.Invoker) error {
	msg := make([]byte, readPathMsgLen)
	for i := range msg {
		msg[i] = byte('a' + i%26)
	}
	const parallel = 32
	jobs := make(chan uint64, parallel)
	errs := make(chan error, parallel)
	var wg sync.WaitGroup
	for w := 0; w < parallel; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for id := range jobs {
				for p := 0; p < readPathPosts; p++ {
					author := cfg.AccountID(p % cfg.Accounts)
					args := [][]byte{core.I64Bytes(int64(author)), core.I64Bytes(int64(p)), msg}
					if _, err := inv.Invoke(id, "store_post", args); err != nil {
						errs <- fmt.Errorf("store_post %d: %w", id, err)
						return
					}
				}
			}
		}()
	}
	var sendErr error
	for i := 0; i < cfg.Accounts; i++ {
		select {
		case sendErr = <-errs:
		case jobs <- cfg.AccountID(i):
			continue
		}
		break
	}
	close(jobs)
	wg.Wait()
	if sendErr != nil {
		return sendErr
	}
	select {
	case err := <-errs:
		return err
	default:
		return nil
	}
}

// readPathCacheCounters sums the consistent result cache's hit/miss
// counters across the group.
func readPathCacheCounters(d *Deployment) (hits, misses uint64) {
	for _, n := range d.Nodes {
		if c := n.Runtime().Cache(); c != nil {
			st := c.Stats()
			hits += st.Hits
			misses += st.Misses
		}
	}
	return hits, misses
}

// readPathStateCacheCounters sums the store-level state cache's counters.
func readPathStateCacheCounters(d *Deployment) (hits, misses uint64) {
	for _, n := range d.Nodes {
		h, m := n.DB().StateCacheStats()
		hits += h
		misses += m
	}
	return hits, misses
}

func hitRate(hits, misses uint64) float64 {
	if hits+misses == 0 {
		return 0
	}
	return float64(hits) / float64(hits+misses)
}

// RunReadPath sweeps the read-path ablations over the GetTimeline workload
// at 1/8/64 closed-loop clients. Like RunAblationCache, the population is
// capped to a small hot set so cached invocations recur — the regime the
// fast read path targets. An empty outPath skips the JSON artifact.
func RunReadPath(opts Options, outPath string, w io.Writer) (*ReadPathReport, error) {
	if opts.Accounts > 64 {
		opts.Accounts = 64
	}
	if opts.OpsPerWorkload < 3000 {
		opts.OpsPerWorkload = 3000
	}

	rep := &ReadPathReport{
		GeneratedBy: "make bench-read",
		Workload:    workload.GetTimeline,
		Accounts:    opts.Accounts,
		Ops:         opts.OpsPerWorkload,
		Replicas:    opts.Replicas,
		Clients:     readPathClients,
	}

	if w != nil {
		fmt.Fprintln(w, "Read path: Retwis GetTimeline, hot account set (per-layer ablations)")
	}
	var noneAtMax, allAtMax float64
	for _, ab := range readPathAblations {
		o := opts
		ab.apply(&o)
		for _, clients := range readPathClients {
			p, err := runReadPathPoint(o, ab.name, clients)
			if err != nil {
				return nil, fmt.Errorf("bench: read-path %s/%d: %w", ab.name, clients, err)
			}
			rep.Results = append(rep.Results, p)
			if clients == readPathClients[len(readPathClients)-1] {
				switch ab.name {
				case "none":
					noneAtMax = p.Throughput
				case "all":
					allAtMax = p.Throughput
				}
			}
			if w != nil {
				fmt.Fprintf(w, "  %-10s c=%-3d thr=%9.1f ops/s  p50=%6dus p99=%6dus  hit=%.2f schit=%.2f allocs/op=%.0f errs=%d\n",
					p.Config, p.Clients, p.Throughput, p.P50Micros, p.P99Micros,
					p.CacheHitRate, p.StateCacheHitRate, p.AllocsPerOp, p.Errors)
			}
		}
	}
	if noneAtMax > 0 {
		rep.Speedup64 = allAtMax / noneAtMax
	}
	if w != nil {
		fmt.Fprintf(w, "  speedup at %d clients (all vs none): %.2fx\n",
			readPathClients[len(readPathClients)-1], rep.Speedup64)
	}

	if outPath != "" {
		if err := writeReadPathReport(rep, outPath); err != nil {
			return nil, err
		}
	}
	return rep, nil
}

// writeReadPathReport stores the report as indented JSON.
func writeReadPathReport(rep *ReadPathReport, path string) error {
	if dir := filepath.Dir(path); dir != "." && dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return err
		}
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
