package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"os"
	"path/filepath"
	"time"

	"lambdastore/internal/cluster"
	"lambdastore/internal/core"
	"lambdastore/internal/fault"
	"lambdastore/internal/telemetry"
	"lambdastore/internal/workload"
)

// The read-scaleout experiment (EXPERIMENTS.md A11) measures what leases
// buy: with reads pinned to the primary, one node's request admission is
// the whole group's read capacity; with leased backups every replica
// serves consistent reads, so capacity grows with the replication factor.
//
// Loopback RPC admits far more requests than any real NIC, so each node
// gets an injected per-request admission delay (readScaleoutAdmission in
// the server's connection read loop — the same serialization point a real
// transport has). That caps one node at roughly 1/admission req/s and
// makes the capacity model visible at laptop scale: 3 leased replicas
// admit ~3x what the primary alone admits.
const (
	readScaleoutAdmission = 500 * time.Microsecond
	readScaleoutWritePct  = 10 // mixed-run write percentage

	// readScaleoutMixedClients pins the mixed 90/10 comparison at the
	// knee of the capacity curve rather than deep saturation. Past
	// saturation a closed loop's client-observed latency is queueing by
	// Little's law — and since the leased deployment sustains ~2x the op
	// rate at equal client count, writes arrive twice as fast at the same
	// fixed-capacity primary, which measures load redistribution, not
	// lease protocol cost. At the knee both configurations carry the same
	// offered write load and the delta isolates what leasing adds to the
	// write path (piggybacked grants, renewals, backup apply contention).
	readScaleoutMixedClients = 8
)

// readScaleoutClients are the closed-loop client counts swept per config.
var readScaleoutClients = []int{1, 8, 64}

// ReadScaleoutPoint is one (config, clients) read-throughput measurement.
type ReadScaleoutPoint struct {
	Config     string  `json:"config"`
	Clients    int     `json:"clients"`
	Ops        uint64  `json:"ops"`
	Throughput float64 `json:"throughput_ops_per_sec"`
	P50Micros  int64   `json:"p50_us"`
	P99Micros  int64   `json:"p99_us"`
	Errors     uint64  `json:"errors"`
	// BackupServed/PrimaryBounced are the lease telemetry counters summed
	// across the group over the measured run: how many reads backups
	// answered locally vs refused for want of a valid lease.
	BackupServed   uint64 `json:"reads_backup_served"`
	PrimaryBounced uint64 `json:"reads_primary_bounced"`
}

// ReadScaleoutMixed is one mixed 90/10 run's write-ack view: the latency
// of acknowledged writes while reads ride the same deployment. Leases add
// invalidation shipping to the write path (the lease grant piggybacks on
// the same synchronous applyBatch frame), so the leased run's write ack
// must stay within a few percent of the baseline's.
type ReadScaleoutMixed struct {
	Config         string  `json:"config"`
	Clients        int     `json:"clients"`
	WriteOps       uint64  `json:"write_ops"`
	WriteP50Us     int64   `json:"write_p50_us"`
	WriteP99Us     int64   `json:"write_p99_us"`
	ReadOps        uint64  `json:"read_ops"`
	TotalOpsPerSec float64 `json:"total_ops_per_sec"`
	Errors         uint64  `json:"errors"`
}

// ReadScaleoutReport is the results/BENCH_read_scaleout.json document.
type ReadScaleoutReport struct {
	GeneratedBy string              `json:"generated_by"`
	Workload    string              `json:"workload"`
	Accounts    int                 `json:"accounts"`
	Ops         int                 `json:"ops"`
	Replicas    int                 `json:"replicas"`
	AdmissionUs int64               `json:"admission_delay_us"`
	Clients     []int               `json:"clients"`
	Results     []ReadScaleoutPoint `json:"results"`
	Mixed       []ReadScaleoutMixed `json:"mixed_90_10"`
	// Speedup64 is leased over primary-only read throughput at the highest
	// client count (the issue's headline number; want >= 2.5x on 3 replicas).
	Speedup64 float64 `json:"speedup_at_64_clients"`
	// WriteP99Delta is (leased - baseline)/baseline of the mixed run's
	// write-ack p99 — the cost of invalidation shipping (want < 0.10).
	WriteP99Delta float64 `json:"write_p99_delta"`
}

// readScaleoutConfig names one deployment/routing configuration.
type readScaleoutConfig struct {
	name   string
	leases bool
	policy cluster.ReadPolicy
}

var readScaleoutConfigs = []readScaleoutConfig{
	{"primary-only", false, cluster.ReadPrimaryOnly},
	{"leased-rr", true, cluster.ReadRoundRobin},
}

// startReadScaleout boots a 3-replica aggregated deployment plus a client
// with the config's read policy, populates and warms the hot set, then
// arms the per-node admission throttle. The returned stop func disarms
// the throttle and tears everything down.
func startReadScaleout(opts Options, cfg readScaleoutConfig) (*Deployment, *cluster.Client, func(), error) {
	o := opts
	o.DisableLeases = !cfg.leases
	d, err := StartAggregated(o)
	if err != nil {
		return nil, nil, nil, err
	}
	client, err := cluster.NewClient(cluster.ClientConfig{
		Directory:  d.Dir,
		RPC:        o.clientOpts(),
		ReadPolicy: cfg.policy,
	})
	if err != nil {
		d.Close()
		return nil, nil, nil, err
	}
	stop := func() {
		fault.Reset()
		client.Close()
		d.Close()
	}

	wcfg := workload.DefaultConfig(o.Accounts)
	if err := workload.Populate(wcfg, d.Create, d.Invoker); err != nil {
		stop()
		return nil, nil, nil, err
	}
	if err := seedTimelines(wcfg, d.Invoker); err != nil {
		stop()
		return nil, nil, nil, err
	}
	// Warm every replica's result cache through the measurement client's
	// own routing (leased runs touch all replicas, the baseline only the
	// primary — exactly the caches each run will hit), with bounded
	// retries for the pre-first-grant window where backups still bounce.
	warm := func(worker int) (func() error, error) {
		rng := rand.New(rand.NewSource(wcfg.Seed + int64(worker)*7919))
		return func() error {
			id := wcfg.AccountID(rng.Intn(wcfg.Accounts))
			_, err := client.InvokeRead(core.ObjectID(id), "get_timeline", [][]byte{core.I64Bytes(readPathLimit)})
			return err
		}, nil
	}
	if _, err := workload.RunClosedLoopOps(workload.GetTimeline, warm, 16, 8*o.Accounts*len(d.Nodes)); err != nil {
		stop()
		return nil, nil, nil, err
	}

	// Arm the admission throttle only for the measured run — populate and
	// warmup would crawl under it.
	for _, n := range d.Nodes {
		fault.Add(fault.Rule{Site: fault.SiteRPCRecv, Key: n.Addr(), Action: fault.Delay, Delay: readScaleoutAdmission, P: 1})
	}
	return d, client, stop, nil
}

// leaseReadCounters sums the lease read-routing counters across the group.
func leaseReadCounters(d *Deployment) (served, bounced uint64) {
	for _, n := range d.Nodes {
		reg := n.Metrics()
		if reg == nil {
			continue
		}
		served += reg.Counter("reads.backup_served").Value()
		bounced += reg.Counter("reads.primary_bounced").Value()
	}
	return served, bounced
}

// runReadScaleoutPoint measures pure read throughput for one config at
// one client count.
func runReadScaleoutPoint(opts Options, cfg readScaleoutConfig, clients int) (ReadScaleoutPoint, error) {
	out := ReadScaleoutPoint{Config: cfg.name, Clients: clients}
	d, client, stop, err := startReadScaleout(opts, cfg)
	if err != nil {
		return out, err
	}
	defer stop()

	wcfg := workload.DefaultConfig(opts.Accounts)
	baseServed, baseBounced := leaseReadCounters(d)
	ops := func(worker int) (func() error, error) {
		rng := rand.New(rand.NewSource(wcfg.Seed + 31 + int64(worker)*7919))
		return func() error {
			id := wcfg.AccountID(rng.Intn(wcfg.Accounts))
			_, err := client.InvokeRead(core.ObjectID(id), "get_timeline", [][]byte{core.I64Bytes(readPathLimit)})
			return err
		}, nil
	}
	res, err := workload.RunClosedLoopOps(workload.GetTimeline, ops, clients, opts.OpsPerWorkload)
	if err != nil {
		return out, err
	}
	served, bounced := leaseReadCounters(d)

	out.Ops = uint64(res.Ops)
	out.Throughput = res.Throughput
	out.P50Micros = res.Latency.Median.Microseconds()
	out.P99Micros = res.Latency.P99.Microseconds()
	out.Errors = res.Errors
	out.BackupServed = served - baseServed
	out.PrimaryBounced = bounced - baseBounced
	return out, nil
}

// runReadScaleoutMixed drives a 90/10 read/write mix and reports the
// write-ack latency distribution separately.
func runReadScaleoutMixed(opts Options, cfg readScaleoutConfig, clients int) (ReadScaleoutMixed, error) {
	out := ReadScaleoutMixed{Config: cfg.name, Clients: clients}
	_, client, stop, err := startReadScaleout(opts, cfg)
	if err != nil {
		return out, err
	}
	defer stop()

	wcfg := workload.DefaultConfig(opts.Accounts)
	writeHist := &telemetry.Histogram{}
	msg := make([]byte, readPathMsgLen)
	for i := range msg {
		msg[i] = byte('z' - i%26)
	}
	ops := func(worker int) (func() error, error) {
		rng := rand.New(rand.NewSource(wcfg.Seed + 67 + int64(worker)*7919))
		return func() error {
			id := wcfg.AccountID(rng.Intn(wcfg.Accounts))
			if rng.Intn(100) < readScaleoutWritePct {
				p := int64(rng.Uint64() >> 1)
				args := [][]byte{core.I64Bytes(int64(id)), core.I64Bytes(p), msg}
				t0 := time.Now()
				_, err := client.Invoke(core.ObjectID(id), "store_post", args)
				if err == nil {
					writeHist.Record(time.Since(t0))
				}
				return err
			}
			_, err := client.InvokeRead(core.ObjectID(id), "get_timeline", [][]byte{core.I64Bytes(readPathLimit)})
			return err
		}, nil
	}
	res, err := workload.RunClosedLoopOps("mixed-90-10", ops, clients, opts.OpsPerWorkload)
	if err != nil {
		return out, err
	}
	wsnap := writeHist.Snapshot()
	out.WriteOps = writeHist.Count()
	out.WriteP50Us = wsnap.Median.Microseconds()
	out.WriteP99Us = wsnap.P99.Microseconds()
	out.ReadOps = uint64(res.Ops) - writeHist.Count()
	out.TotalOpsPerSec = res.Throughput
	out.Errors = res.Errors
	return out, nil
}

// RunReadScaleout sweeps read throughput vs client count for primary-only
// and leased routing on a 3-replica group, then runs the mixed 90/10
// write-ack comparison. An empty outPath skips the JSON artifact.
func RunReadScaleout(opts Options, outPath string, w io.Writer) (*ReadScaleoutReport, error) {
	if opts.Replicas < 3 {
		opts.Replicas = 3
	}
	if opts.Accounts > 64 {
		opts.Accounts = 64
	}
	if opts.OpsPerWorkload < 4000 {
		opts.OpsPerWorkload = 4000
	}

	rep := &ReadScaleoutReport{
		GeneratedBy: "make bench-read-scaleout",
		Workload:    workload.GetTimeline,
		Accounts:    opts.Accounts,
		Ops:         opts.OpsPerWorkload,
		Replicas:    opts.Replicas,
		AdmissionUs: readScaleoutAdmission.Microseconds(),
		Clients:     readScaleoutClients,
	}

	if w != nil {
		fmt.Fprintf(w, "Read scale-out: Retwis GetTimeline, %d replicas, %v/request admission\n",
			opts.Replicas, readScaleoutAdmission)
	}
	var baseAtMax, leasedAtMax float64
	for _, cfg := range readScaleoutConfigs {
		for _, clients := range readScaleoutClients {
			p, err := runReadScaleoutPoint(opts, cfg, clients)
			if err != nil {
				return nil, fmt.Errorf("bench: read-scaleout %s/%d: %w", cfg.name, clients, err)
			}
			rep.Results = append(rep.Results, p)
			if clients == readScaleoutClients[len(readScaleoutClients)-1] {
				switch cfg.name {
				case "primary-only":
					baseAtMax = p.Throughput
				case "leased-rr":
					leasedAtMax = p.Throughput
				}
			}
			if w != nil {
				fmt.Fprintf(w, "  %-13s c=%-3d thr=%9.1f ops/s  p50=%6dus p99=%6dus  backup=%d bounced=%d errs=%d\n",
					p.Config, p.Clients, p.Throughput, p.P50Micros, p.P99Micros,
					p.BackupServed, p.PrimaryBounced, p.Errors)
			}
		}
	}
	if baseAtMax > 0 {
		rep.Speedup64 = leasedAtMax / baseAtMax
	}
	if w != nil {
		fmt.Fprintf(w, "  read speedup at %d clients (leased vs primary-only): %.2fx\n",
			readScaleoutClients[len(readScaleoutClients)-1], rep.Speedup64)
	}

	mixedClients := readScaleoutMixedClients
	var baseP99, leasedP99 int64
	for _, cfg := range readScaleoutConfigs {
		m, err := runReadScaleoutMixed(opts, cfg, mixedClients)
		if err != nil {
			return nil, fmt.Errorf("bench: read-scaleout mixed %s: %w", cfg.name, err)
		}
		rep.Mixed = append(rep.Mixed, m)
		switch cfg.name {
		case "primary-only":
			baseP99 = m.WriteP99Us
		case "leased-rr":
			leasedP99 = m.WriteP99Us
		}
		if w != nil {
			fmt.Fprintf(w, "  mixed %-13s c=%-3d writes=%d wp50=%6dus wp99=%6dus total=%9.1f ops/s errs=%d\n",
				m.Config, m.Clients, m.WriteOps, m.WriteP50Us, m.WriteP99Us, m.TotalOpsPerSec, m.Errors)
		}
	}
	if baseP99 > 0 {
		rep.WriteP99Delta = float64(leasedP99-baseP99) / float64(baseP99)
	}
	if w != nil {
		fmt.Fprintf(w, "  mixed write-ack p99 delta (leased vs primary-only): %+.1f%%\n", 100*rep.WriteP99Delta)
	}

	if outPath != "" {
		if err := writeReadScaleoutReport(rep, outPath); err != nil {
			return nil, err
		}
	}
	return rep, nil
}

// writeReadScaleoutReport stores the report as indented JSON.
func writeReadScaleoutReport(rep *ReadScaleoutReport, path string) error {
	if dir := filepath.Dir(path); dir != "." && dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return err
		}
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
