package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"time"

	"lambdastore/internal/workload"
)

// WritePathConfig is one measured configuration of the write-path
// benchmark: the workload result plus the storage-layer commit/fsync
// counters that prove (or disprove) group commit amortization.
type WritePathConfig struct {
	Config     string  `json:"config"`
	Ops        uint64  `json:"ops"`
	Throughput float64 `json:"throughput_ops_per_sec"`
	P50Micros  int64   `json:"p50_us"`
	P99Micros  int64   `json:"p99_us"`
	Errors     uint64  `json:"errors"`
	// Commits and WALSyncs are summed across all nodes in the group; with
	// batching on and concurrent writers, WALSyncs < Commits.
	Commits  uint64 `json:"store_commits"`
	WALSyncs uint64 `json:"store_wal_syncs"`
	// GroupSizeMean is the mean WAL write-group member count across nodes;
	// ShipBatchMean is the mean member count of shipped replication frames.
	// Both are 1.0 (or 0 when unused) in the unbatched configuration.
	GroupSizeMean float64 `json:"wal_group_size_mean"`
	ShipBatchMean float64 `json:"repl_batch_size_mean"`
}

// WritePathReport is the results/BENCH_write_path.json document.
type WritePathReport struct {
	GeneratedBy string            `json:"generated_by"`
	Workload    string            `json:"workload"`
	Accounts    int               `json:"accounts"`
	Concurrency int               `json:"concurrency"`
	Ops         int               `json:"ops"`
	Replicas    int               `json:"replicas"`
	SyncWrites  bool              `json:"sync_writes"`
	Batched     WritePathConfig   `json:"batched"`
	Unbatched   WritePathConfig   `json:"unbatched"`
	Speedup     float64           `json:"speedup"`
	Results     []WritePathConfig `json:"results"`
}

// runWritePathConfig boots one aggregated deployment, drives the Retwis
// Post workload (ledger-style appends: every op commits and ships a
// write-set), and collects throughput plus the storage counters.
func runWritePathConfig(opts Options, name string) (WritePathConfig, error) {
	out := WritePathConfig{Config: name}
	d, err := StartAggregated(opts)
	if err != nil {
		return out, err
	}
	defer d.Close()
	cfg := workload.DefaultConfig(opts.Accounts)
	if err := workload.Populate(cfg, d.Create, d.Invoker); err != nil {
		return out, err
	}

	// Snapshot the counters after populate so only the measured run counts.
	baseCommits, baseSyncs := writePathCounters(d)
	res, err := workload.RunClosedLoop(cfg, workload.Post, d.Invoker, opts.Concurrency, opts.OpsPerWorkload)
	if err != nil {
		return out, err
	}
	commits, syncs := writePathCounters(d)

	out.Ops = res.Ops
	out.Throughput = res.Throughput
	out.P50Micros = res.Latency.Median.Microseconds()
	out.P99Micros = res.Latency.P99.Microseconds()
	out.Errors = res.Errors
	out.Commits = commits - baseCommits
	out.WALSyncs = syncs - baseSyncs
	out.GroupSizeMean = histMean(d, "wal.group_size")
	out.ShipBatchMean = histMean(d, "repl.batch_size")
	return out, nil
}

// writePathCounters sums batch commits and WAL fsyncs across the group.
func writePathCounters(d *Deployment) (commits, syncs uint64) {
	for _, n := range d.Nodes {
		reg := n.Metrics()
		commits += reg.Counter("store.writes").Value()
		syncs += reg.Counter("store.wal_syncs").Value()
	}
	return commits, syncs
}

// histMean aggregates a count-valued histogram (1µs == 1 member) across
// the group and returns its mean member count.
func histMean(d *Deployment, name string) float64 {
	var count uint64
	var total float64
	for _, n := range d.Nodes {
		s := n.Metrics().Histogram(name).Snapshot()
		count += uint64(s.Count)
		total += float64(s.Mean.Nanoseconds()) / 1e3 * float64(s.Count)
	}
	if count == 0 {
		return 0
	}
	return total / float64(count)
}

// RunWritePath measures the batched write pipeline against the unbatched
// ablation on the mutating Retwis Post workload with fsync-per-commit
// durability, and renders/stores the comparison. An empty outPath skips the
// JSON artifact.
func RunWritePath(opts Options, outPath string, w io.Writer) (*WritePathReport, error) {
	opts.SyncWrites = true

	rep := &WritePathReport{
		GeneratedBy: "make bench-write",
		Workload:    workload.Post,
		Accounts:    opts.Accounts,
		Concurrency: opts.Concurrency,
		Ops:         opts.OpsPerWorkload,
		Replicas:    opts.Replicas,
		SyncWrites:  true,
	}

	batchedOpts := opts
	batchedOpts.DisableBatching = false
	batched, err := runWritePathConfig(batchedOpts, "batched")
	if err != nil {
		return nil, fmt.Errorf("bench: write-path batched: %w", err)
	}
	rep.Batched = batched

	unbatchedOpts := opts
	unbatchedOpts.DisableBatching = true
	unbatched, err := runWritePathConfig(unbatchedOpts, "unbatched")
	if err != nil {
		return nil, fmt.Errorf("bench: write-path unbatched: %w", err)
	}
	rep.Unbatched = unbatched

	if unbatched.Throughput > 0 {
		rep.Speedup = batched.Throughput / unbatched.Throughput
	}
	rep.Results = []WritePathConfig{batched, unbatched}

	if w != nil {
		fmt.Fprintln(w, "Write path: Retwis Post, fsync per commit (batched vs unbatched)")
		for _, r := range rep.Results {
			fmt.Fprintf(w, "  %-10s thr=%9.1f ops/s  p50=%s p99=%s  commits=%d fsyncs=%d group=%.2f ship=%.2f errs=%d\n",
				r.Config, r.Throughput,
				time.Duration(r.P50Micros)*time.Microsecond,
				time.Duration(r.P99Micros)*time.Microsecond,
				r.Commits, r.WALSyncs, r.GroupSizeMean, r.ShipBatchMean, r.Errors)
		}
		fmt.Fprintf(w, "  speedup: %.2fx\n", rep.Speedup)
	}

	if outPath != "" {
		if err := writeWritePathReport(rep, outPath); err != nil {
			return nil, err
		}
	}
	return rep, nil
}

// writeWritePathReport stores the report as indented JSON.
func writeWritePathReport(rep *WritePathReport, path string) error {
	if dir := filepath.Dir(path); dir != "." && dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return err
		}
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
