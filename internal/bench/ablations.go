package bench

import (
	"fmt"
	"io"
	"sync/atomic"
	"time"

	"lambdastore/internal/baseline"
	"lambdastore/internal/retwis"
	"lambdastore/internal/rpc"
	"lambdastore/internal/vm"
	"lambdastore/internal/workload"
)

// StartDisaggregatedCold is the disaggregated deployment paying a cold
// start per invocation: no warm instance pool, a documented provisioning
// penalty per instantiation, and every job routed through the durable
// request log (Table 1's "conventional serverless" row).
func StartDisaggregatedCold(opts Options) (*Deployment, error) {
	d := &Deployment{Name: "Disaggregated (cold)"}

	dataDir, err := d.scratch(&opts, "cold-storage")
	if err != nil {
		d.Close()
		return nil, err
	}
	primary, err := baseline.StartStorage(baseline.StorageOptions{
		Addr:          "127.0.0.1:0",
		DataDir:       dataDir,
		ClientOptions: opts.clientOpts(),
	})
	if err != nil {
		d.Close()
		return nil, err
	}
	d.closers = append(d.closers, func() { primary.Close() })

	compute, err := baseline.StartCompute(baseline.ComputeOptions{
		Addr:             "127.0.0.1:0",
		Storage:          primary.Addr(),
		Fuel:             opts.Fuel,
		DisableWarmPool:  true,
		ColdStartPenalty: 100 * time.Millisecond, // emulated container boot
		ClientOptions:    opts.clientOpts(),
	})
	if err != nil {
		d.Close()
		return nil, err
	}
	d.closers = append(d.closers, func() { compute.Close() })

	logDir, err := d.scratch(&opts, "cold-lblog")
	if err != nil {
		d.Close()
		return nil, err
	}
	lb, err := baseline.StartLB(baseline.LBOptions{
		Addr:          "127.0.0.1:0",
		LogDir:        logDir,
		Computes:      []string{compute.Addr()},
		ClientOptions: opts.clientOpts(),
	})
	if err != nil {
		d.Close()
		return nil, err
	}
	d.closers = append(d.closers, func() { lb.Close() })
	compute.SetLoadBalancer(lb.Addr())

	typ, err := retwis.NewType()
	if err != nil {
		d.Close()
		return nil, err
	}
	pool := rpc.NewPool(opts.clientOpts())
	d.closers = append(d.closers, pool.Close)
	if _, err := pool.Call(primary.Addr(), baseline.MethodRegType, typ.Encode()); err != nil {
		d.Close()
		return nil, err
	}

	// Jobs go through the LB (log + dispatch), like a real FaaS front door.
	client := baseline.NewClient(lb.Addr(), opts.clientOpts())
	d.closers = append(d.closers, client.Close)
	d.Invoker = workload.InvokerFunc(client.Invoke)
	d.Create = func(id uint64) error {
		_, err := pool.Call(primary.Addr(), baseline.MethodCreate,
			baseline.EncodeCreateReq(id, retwis.TypeName))
		return err
	}
	return d, nil
}

// AblationResult is one (configuration, measurement) pair.
type AblationResult struct {
	Config string
	Result workload.Result
}

// RunAblationCache measures A1: the consistent result cache on/off for the
// read-only GetTimeline workload on the aggregated architecture (§4.2.2).
// Caching targets functions "invoked frequently": the ablation therefore
// reads a small hot set of accounts repeatedly, the regime where cached
// results recur. (Uniform reads over a large population never repeat an
// invocation, so there the cache only adds read-set bookkeeping.)
func RunAblationCache(opts Options) ([]AblationResult, error) {
	var out []AblationResult
	for _, entries := range []int{0, 64 << 10} {
		o := opts
		o.CacheEntries = entries
		if o.Accounts > 64 {
			o.Accounts = 64
		}
		if o.OpsPerWorkload < 3000 {
			o.OpsPerWorkload = 3000
		}
		d, err := StartAggregated(o)
		if err != nil {
			return nil, err
		}
		cfg := workload.DefaultConfig(o.Accounts)
		if err := workload.Populate(cfg, d.Create, d.Invoker); err != nil {
			d.Close()
			return nil, err
		}
		res, err := workload.RunClosedLoop(cfg, workload.GetTimeline, d.Invoker, o.Concurrency, o.OpsPerWorkload)
		d.Close()
		if err != nil {
			return nil, err
		}
		name := "cache=off"
		if entries > 0 {
			name = "cache=on"
		}
		out = append(out, AblationResult{Config: name, Result: res})
	}
	return out, nil
}

// RunAblationReplication measures A2: the cost of primary-backup
// replication at factors 1 (no backups), 2 and 3 on the mutating Follow
// workload (§4.2.1).
func RunAblationReplication(opts Options) ([]AblationResult, error) {
	var out []AblationResult
	for _, replicas := range []int{1, 2, 3} {
		o := opts
		o.Replicas = replicas
		d, err := StartAggregated(o)
		if err != nil {
			return nil, err
		}
		cfg := workload.DefaultConfig(o.Accounts)
		if err := workload.Populate(cfg, d.Create, d.Invoker); err != nil {
			d.Close()
			return nil, err
		}
		res, err := workload.RunClosedLoop(cfg, workload.Follow, d.Invoker, o.Concurrency, o.OpsPerWorkload)
		d.Close()
		if err != nil {
			return nil, err
		}
		out = append(out, AblationResult{Config: fmt.Sprintf("replicas=%d", replicas), Result: res})
	}
	return out, nil
}

// SchedProbe reports the A4 correctness probe for one configuration: how
// many concurrent single-object updates were issued, how many failed with
// an error (load-dependent: admission timeouts under a saturated machine),
// and how many survived into the committed follower count. With the
// scheduler on, every acknowledged update survives; with it off, lost
// updates make Survived fall short.
type SchedProbe struct {
	Config   string
	Issued   int
	Failed   int
	Survived int64
}

// Note renders the probe as a harness output line.
func (p SchedProbe) Note() string {
	return fmt.Sprintf("%s: %d/%d concurrent single-object updates survived (%d probe errors)",
		p.Config, p.Survived, p.Issued, p.Failed)
}

// ProbeNotes renders probes for PrintAblation.
func ProbeNotes(probes []SchedProbe) []string {
	notes := make([]string, len(probes))
	for i, p := range probes {
		notes[i] = p.Note()
	}
	return notes
}

// retryInvoke tolerates transient load-dependent failures (admission
// timeouts while the suite saturates the machine) on control-plane reads.
func retryInvoke(inv workload.Invoker, id uint64, method string, args [][]byte) ([]byte, error) {
	var lastErr error
	for attempt := 0; attempt < 5; attempt++ {
		res, err := inv.Invoke(id, method, args)
		if err == nil {
			return res, nil
		}
		lastErr = err
		time.Sleep(time.Duration(attempt+1) * 50 * time.Millisecond)
	}
	return nil, lastErr
}

// RunAblationSched measures A4: per-object scheduling (the combined
// scheduler/concurrency-control of §4.2) versus no admission control. With
// the scheduler disabled, invocation isolation is lost — the harness also
// reports the resulting lost updates to make the correctness cost visible.
func RunAblationSched(opts Options) ([]AblationResult, []SchedProbe, error) {
	var out []AblationResult
	var probesOut []SchedProbe
	for _, disabled := range []bool{false, true} {
		o := opts
		o.DisableSched = disabled
		d, err := StartAggregated(o)
		if err != nil {
			return nil, nil, err
		}
		cfg := workload.DefaultConfig(o.Accounts)
		if err := workload.Populate(cfg, d.Create, d.Invoker); err != nil {
			d.Close()
			return nil, nil, err
		}
		res, err := workload.RunClosedLoop(cfg, workload.Follow, d.Invoker, o.Concurrency, o.OpsPerWorkload)
		if err != nil {
			d.Close()
			return nil, nil, err
		}

		// Correctness probe: hammer one object with concurrent follower
		// additions and compare the final count with the issued count.
		// Individual probes may fail under load (admission timeouts); they
		// are counted rather than ignored so callers can assert the
		// invariant over the acknowledged updates only.
		probeID := cfg.AccountID(0)
		before, err := retryInvoke(d.Invoker, probeID, "follower_count", nil)
		if err != nil {
			d.Close()
			return nil, nil, err
		}
		const probes = 200
		var failed atomic.Int64
		sem := make(chan struct{}, o.Concurrency)
		for i := 0; i < probes; i++ {
			sem <- struct{}{}
			go func(i int) {
				defer func() { <-sem }()
				if _, err := d.Invoker.Invoke(probeID, "add_follower", [][]byte{i64(int64(900000 + i))}); err != nil {
					failed.Add(1)
				}
			}(i)
		}
		for i := 0; i < cap(sem); i++ {
			sem <- struct{}{}
		}
		after, err := retryInvoke(d.Invoker, probeID, "follower_count", nil)
		d.Close()
		if err != nil {
			return nil, nil, err
		}
		gained := i64dec(after) - i64dec(before)
		name := "scheduler=on"
		if disabled {
			name = "scheduler=off"
		}
		out = append(out, AblationResult{Config: name, Result: res})
		probesOut = append(probesOut, SchedProbe{
			Config:   name,
			Issued:   probes,
			Failed:   int(failed.Load()),
			Survived: gained,
		})
	}
	return out, probesOut, nil
}

// RunAblationNetDelay measures A5: the aggregated/disaggregated gap as the
// injected one-way network delay grows — disaggregation pays the delay per
// storage operation, aggregation once per job.
func RunAblationNetDelay(opts Options, delays []time.Duration) (map[time.Duration][2]workload.Result, error) {
	out := make(map[time.Duration][2]workload.Result)
	for _, delay := range delays {
		o := opts
		o.NetDelay = delay
		agg, dis, err := runOneWorkloadBoth(o, workload.Post)
		if err != nil {
			return nil, err
		}
		out[delay] = [2]workload.Result{agg, dis}
	}
	return out, nil
}

// runOneWorkloadBoth runs a single workload on both architectures.
func runOneWorkloadBoth(opts Options, wl string) (agg, dis workload.Result, err error) {
	aggD, err := StartAggregated(opts)
	if err != nil {
		return agg, dis, err
	}
	cfg := workload.DefaultConfig(opts.Accounts)
	if err = workload.Populate(cfg, aggD.Create, aggD.Invoker); err != nil {
		aggD.Close()
		return agg, dis, err
	}
	agg, err = workload.RunClosedLoop(cfg, wl, aggD.Invoker, opts.Concurrency, opts.OpsPerWorkload)
	aggD.Close()
	if err != nil {
		return agg, dis, err
	}

	disD, err := StartDisaggregated(opts)
	if err != nil {
		return agg, dis, err
	}
	if err = workload.Populate(cfg, disD.Create, disD.Invoker); err != nil {
		disD.Close()
		return agg, dis, err
	}
	dis, err = workload.RunClosedLoop(cfg, wl, disD.Invoker, opts.Concurrency, opts.OpsPerWorkload)
	disD.Close()
	return agg, dis, err
}

// FuelAblation measures A3: the interpreter's metering overhead by running
// a compute-bound guest loop with and without a fuel budget.
func FuelAblation(iterations int) (metered, unmetered time.Duration, err error) {
	src := `
func spinsum params=1 locals=2
  push 0
  local.set 1
  push 0
  local.set 2
loop:
  local.get 2
  local.get 0
  ge_s
  jnz done
  local.get 1
  local.get 2
  add
  local.set 1
  local.get 2
  push 1
  add
  local.set 2
  jmp loop
done:
  local.get 1
  ret
end`
	mod, err := vm.Assemble(src)
	if err != nil {
		return 0, 0, err
	}
	run := func(fuel int64) (time.Duration, error) {
		inst, err := vm.NewInstance(mod, nil, fuel)
		if err != nil {
			return 0, err
		}
		start := time.Now()
		if _, err := inst.Call("spinsum", int64(iterations)); err != nil {
			return 0, err
		}
		return time.Since(start), nil
	}
	if metered, err = run(int64(iterations)*16 + 1024); err != nil {
		return 0, 0, err
	}
	if unmetered, err = run(0); err != nil {
		return 0, 0, err
	}
	return metered, unmetered, nil
}

// PrintAblation renders ablation rows.
func PrintAblation(w io.Writer, title string, results []AblationResult, notes []string) {
	fmt.Fprintln(w, title)
	for _, r := range results {
		fmt.Fprintf(w, "  %-16s %s\n", r.Config, r.Result)
	}
	for _, n := range notes {
		fmt.Fprintf(w, "  note: %s\n", n)
	}
}

// i64 and i64dec are tiny local codecs for probe arguments.
func i64(v int64) []byte {
	b := make([]byte, 8)
	for i := 0; i < 8; i++ {
		b[i] = byte(v >> (8 * i))
	}
	return b
}

func i64dec(b []byte) int64 {
	var v int64
	for i := 0; i < 8 && i < len(b); i++ {
		v |= int64(b[i]) << (8 * i)
	}
	return v
}
