package bench

import (
	"fmt"
	"io"
	"time"

	"lambdastore/internal/core"
	"lambdastore/internal/retwis"
	"lambdastore/internal/store"
	"lambdastore/internal/workload"
)

// RetwisResults holds one architecture's measurements across workloads.
type RetwisResults struct {
	Deployment string
	Results    map[string]workload.Result
}

// RunRetwis populates a deployment and drives the paper's three workloads
// (§5): Post, GetTimeline, Follow.
func RunRetwis(d *Deployment, opts Options) (*RetwisResults, error) {
	cfg := workload.DefaultConfig(opts.Accounts)
	if err := workload.Populate(cfg, d.Create, d.Invoker); err != nil {
		return nil, fmt.Errorf("bench: populate %s: %w", d.Name, err)
	}
	out := &RetwisResults{Deployment: d.Name, Results: make(map[string]workload.Result)}
	for _, wl := range workload.Workloads {
		res, err := workload.RunClosedLoop(cfg, wl, d.Invoker, opts.Concurrency, opts.OpsPerWorkload)
		if err != nil {
			return nil, fmt.Errorf("bench: %s %s: %w", d.Name, wl, err)
		}
		out.Results[wl] = res
	}
	return out, nil
}

// RunComparison boots both architectures and runs the Retwis suite on each
// (the measurements behind Figures 1 and 2).
func RunComparison(opts Options) (agg, dis *RetwisResults, err error) {
	aggD, err := StartAggregated(opts)
	if err != nil {
		return nil, nil, err
	}
	agg, err = RunRetwis(aggD, opts)
	aggD.Close()
	if err != nil {
		return nil, nil, err
	}

	disD, err := StartDisaggregated(opts)
	if err != nil {
		return nil, nil, err
	}
	dis, err = RunRetwis(disD, opts)
	disD.Close()
	if err != nil {
		return nil, nil, err
	}
	return agg, dis, nil
}

// PrintFigure1 renders the paper's Figure 1: per-workload throughput of
// both architectures, normalized to the aggregated design, with absolute
// jobs/s annotated (the paper annotates 1309/492 etc. above the bars).
func PrintFigure1(w io.Writer, agg, dis *RetwisResults) {
	fmt.Fprintln(w, "Figure 1: Normalized throughput of the ReTwis benchmark")
	fmt.Fprintf(w, "%-12s  %-22s  %-22s  %s\n", "Workload", "Aggregated (jobs/s)", "Disaggregated (jobs/s)", "Agg/Dis")
	for _, wl := range workload.Workloads {
		a := agg.Results[wl]
		d := dis.Results[wl]
		ratio := 0.0
		if d.Throughput > 0 {
			ratio = a.Throughput / d.Throughput
		}
		fmt.Fprintf(w, "%-12s  %10.1f (1.00x)     %10.1f (%.2fx)       %.2fx\n",
			wl, a.Throughput, d.Throughput, safeDiv(d.Throughput, a.Throughput), ratio)
	}
}

// PrintFigure2 renders the paper's Figure 2: median and p99 latency per
// workload for both architectures.
func PrintFigure2(w io.Writer, agg, dis *RetwisResults) {
	fmt.Fprintln(w, "Figure 2: Latencies of the ReTwis benchmark (median / p99)")
	fmt.Fprintf(w, "%-12s  %-26s  %-26s\n", "Workload", "Aggregated", "Disaggregated")
	for _, wl := range workload.Workloads {
		a := agg.Results[wl]
		d := dis.Results[wl]
		fmt.Fprintf(w, "%-12s  %10v / %-12v  %10v / %-12v\n",
			wl, a.Latency.Median, a.Latency.P99, d.Latency.Median, d.Latency.P99)
	}
}

func safeDiv(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return a / b
}

// Table1Row is one measured latency band of Table 1.
type Table1Row struct {
	System     string
	PaperBand  string
	Median     time.Duration
	P99        time.Duration
	Throughput float64
}

// RunTable1 measures the latency bands behind the paper's Table 1
// comparison using the GetTimeline+Post mix on small deployments:
//
//   - "Custom service": the application logic compiled into the process,
//     no isolation runtime and no network — the hand-built microservice
//     bound (paper band: <1ms).
//   - "LambdaObjects": the aggregated architecture (paper band: 1-10ms
//     on a real network; loopback is faster but the ordering holds).
//   - "Conventional serverless (warm)": the disaggregated baseline.
//   - "Conventional serverless (cold)": the baseline paying a cold start
//     per invocation — fresh VM instantiation plus the request-log hop
//     (paper band: >100ms with container starts; our VM "containers" are
//     far cheaper, so the shape, not the constant, is reproduced).
func RunTable1(opts Options) ([]Table1Row, error) {
	var rows []Table1Row
	ops := opts.OpsPerWorkload
	if ops <= 0 {
		ops = 2000
	}

	// --- Custom service: native Go against a local store. ---
	customDir, err := opts.tempDir("table1-custom")
	if err != nil {
		return nil, err
	}
	db, err := store.Open(customDir, nil)
	if err != nil {
		return nil, err
	}
	custom, err := measureCustom(db, opts, ops)
	db.Close()
	if err != nil {
		return nil, err
	}
	rows = append(rows, Table1Row{
		System: "Custom (micro-)service", PaperBand: "<1ms",
		Median: custom.Latency.Median, P99: custom.Latency.P99, Throughput: custom.Throughput,
	})

	// --- LambdaObjects (aggregated). ---
	aggD, err := StartAggregated(opts)
	if err != nil {
		return nil, err
	}
	aggRes, err := measureMix(aggD, opts, ops)
	aggD.Close()
	if err != nil {
		return nil, err
	}
	rows = append(rows, Table1Row{
		System: "LambdaObjects", PaperBand: "1-10ms",
		Median: aggRes.Latency.Median, P99: aggRes.Latency.P99, Throughput: aggRes.Throughput,
	})

	// --- Conventional serverless, warm path. ---
	disD, err := StartDisaggregated(opts)
	if err != nil {
		return nil, err
	}
	disRes, err := measureMix(disD, opts, ops)
	disD.Close()
	if err != nil {
		return nil, err
	}
	rows = append(rows, Table1Row{
		System: "Conventional serverless (warm)", PaperBand: ">100ms (with cold starts)",
		Median: disRes.Latency.Median, P99: disRes.Latency.P99, Throughput: disRes.Throughput,
	})

	// --- Conventional serverless with per-invocation cold starts. ---
	coldOpts := opts
	coldOpts.ColdPerInvoke = true
	coldD, err := StartDisaggregatedCold(coldOpts)
	if err != nil {
		return nil, err
	}
	coldRes, err := measureMix(coldD, coldOpts, ops/4+1)
	coldD.Close()
	if err != nil {
		return nil, err
	}
	rows = append(rows, Table1Row{
		System: "Conventional serverless (cold)", PaperBand: ">100ms",
		Median: coldRes.Latency.Median, P99: coldRes.Latency.P99, Throughput: coldRes.Throughput,
	})
	return rows, nil
}

// PrintTable1 renders the measured Table 1 rows.
func PrintTable1(w io.Writer, rows []Table1Row) {
	fmt.Fprintln(w, "Table 1 (measured latency bands; GetTimeline/Post mix)")
	fmt.Fprintf(w, "%-32s  %-26s  %-12s %-12s %s\n", "System", "Paper band", "median", "p99", "jobs/s")
	for _, r := range rows {
		fmt.Fprintf(w, "%-32s  %-26s  %-12v %-12v %.1f\n", r.System, r.PaperBand, r.Median, r.P99, r.Throughput)
	}
}

// measureMix runs a 90/10 GetTimeline/Post mix (a web-application-like
// read-heavy profile) and returns the combined result.
func measureMix(d *Deployment, opts Options, ops int) (workload.Result, error) {
	cfg := workload.DefaultConfig(opts.Accounts)
	if err := workload.Populate(cfg, d.Create, d.Invoker); err != nil {
		return workload.Result{}, err
	}
	// 90% reads.
	res, err := workload.RunClosedLoop(cfg, workload.GetTimeline, d.Invoker, opts.Concurrency, ops*9/10)
	if err != nil {
		return workload.Result{}, err
	}
	post, err := workload.RunClosedLoop(cfg, workload.Post, d.Invoker, opts.Concurrency, ops/10+1)
	if err != nil {
		return workload.Result{}, err
	}
	// Merge: weight by op count.
	total := res.Ops + post.Ops
	merged := workload.Result{
		Workload:   "Mix90/10",
		Ops:        total,
		Elapsed:    res.Elapsed + post.Elapsed,
		Throughput: float64(total) / (res.Elapsed + post.Elapsed).Seconds(),
		Latency:    res.Latency,
		Errors:     res.Errors + post.Errors,
	}
	if post.Latency.P99 > merged.Latency.P99 {
		merged.Latency.P99 = post.Latency.P99
	}
	return merged, nil
}

// measureCustom implements the Retwis operations as native Go functions
// against a local embedded store — the custom-microservice bound.
func measureCustom(db *store.DB, opts Options, ops int) (workload.Result, error) {
	inv := workload.InvokerFunc(func(object uint64, method string, args [][]byte) ([]byte, error) {
		id := core.ObjectID(object)
		switch method {
		case "create_account":
			return nil, db.Put(core.ValueFieldKey(id, "name"), args[0])
		case "add_follower":
			return nil, nativeListPush(db, id, "followers", args[0])
		case "create_post":
			entry := make([]byte, 16+len(args[0]))
			copy(entry[16:], args[0])
			if err := nativeListPush(db, id, "posts", entry); err != nil {
				return nil, err
			}
			return core.I64Bytes(0), nativeListPush(db, id, "timeline", entry)
		case "get_timeline":
			limit := core.BytesI64(args[0])
			n, err := nativeListLen(db, id, "timeline")
			if err != nil {
				return nil, err
			}
			start := int64(n) - limit
			if start < 0 {
				start = 0
			}
			var out []byte
			for i := start; i < int64(n); i++ {
				v, err := db.Get(core.ListEntryKey(id, "timeline", uint64(i)))
				if err != nil {
					return nil, err
				}
				out = append(out, core.I64Bytes(int64(len(v)))...)
				out = append(out, v...)
			}
			return out, nil
		default:
			return nil, fmt.Errorf("custom: unknown method %q", method)
		}
	})
	create := func(id uint64) error {
		return db.Put(core.HeaderKey(core.ObjectID(id)), []byte(retwis.TypeName))
	}
	cfg := workload.DefaultConfig(opts.Accounts)
	if err := workload.Populate(cfg, create, inv); err != nil {
		return workload.Result{}, err
	}
	return workload.RunClosedLoop(cfg, workload.GetTimeline, inv, opts.Concurrency, ops)
}

// nativeListPush is the custom-service list append (single-writer model).
func nativeListPush(db *store.DB, id core.ObjectID, field string, value []byte) error {
	var n uint64
	if v, err := db.Get(core.ListLenKey(id, field)); err == nil {
		n = core.DecodeU64(v)
	}
	b := store.NewBatch()
	b.Put(core.ListEntryKey(id, field, n), value)
	b.Put(core.ListLenKey(id, field), core.EncodeU64(n+1))
	return db.Write(b)
}

func nativeListLen(db *store.DB, id core.ObjectID, field string) (uint64, error) {
	v, err := db.Get(core.ListLenKey(id, field))
	if err != nil {
		if err == store.ErrNotFound {
			return 0, nil
		}
		return 0, err
	}
	return core.DecodeU64(v), nil
}
