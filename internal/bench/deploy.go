// Package bench is the experiment harness: it boots complete aggregated
// (LambdaStore) and disaggregated (conventional serverless) deployments on
// loopback TCP and regenerates every table and figure of the paper's
// evaluation — Figure 1 (normalized Retwis throughput), Figure 2 (median +
// p99 latency), Table 1's measurable latency bands — plus the ablations
// called out in DESIGN.md.
package bench

import (
	"fmt"
	"os"
	"time"

	"lambdastore/internal/baseline"
	"lambdastore/internal/cluster"
	"lambdastore/internal/core"
	"lambdastore/internal/retwis"
	"lambdastore/internal/rpc"
	"lambdastore/internal/shard"
	"lambdastore/internal/store"
	"lambdastore/internal/workload"
)

// Options scales an experiment run. The paper's full configuration is
// Accounts=10000, Concurrency=100, Replicas=3; tests use smaller values.
type Options struct {
	Accounts       int
	Concurrency    int
	OpsPerWorkload int
	Replicas       int // storage nodes per group (1 primary + N-1 backups)
	NetDelay       time.Duration
	CacheEntries   int
	Fuel           int64
	DataRoot       string // parent directory for node data (temp if empty)
	DisableSched   bool   // ablation A4
	ColdPerInvoke  bool   // disaggregated cold-start emulation (Table 1)
	// SyncWrites fsyncs the WAL on every commit (the write-path benchmark's
	// durability-honest configuration).
	SyncWrites bool
	// DisableBatching turns off the whole batched write pipeline — WAL
	// group commit, replication ship coalescing, and RPC write coalescing —
	// for the batched-vs-unbatched ablation.
	DisableBatching bool

	// Read-path ablation knobs (benchmarked by RunReadPath): each disables
	// one layer of the fast read path independently.
	CacheShards         int  // result-cache shard count (0 default; 1 = unsharded)
	StateCacheEntries   int  // store hot-state cache (0 default; negative = off)
	DisableReadFastPath bool // read-only invocations take the full txn path
	FullVMReset         bool // warm VM reuse re-images all memory
	VMInterp            bool // force the switch interpreter (no threaded tier)

	// Observability-overhead knobs (benchmarked by RunObservability).
	DisableMetrics bool // withhold the registry from every hot-path component
	Tracing        bool // record spans for every invocation

	// DisableLeases withholds read leases from backups, so every
	// consistent read must be served by the primary — the read-scaleout
	// benchmark's baseline.
	DisableLeases bool

	// Admission plane knobs (benchmarked by RunOverload).
	MaxConcurrentInvokes int           // execution slots per node (0 = ungated)
	AdmissionQueue       int           // bounded wait queue (0 = plane off)
	AdmissionDeadline    time.Duration // max queue wait before shedding
	AdmissionLIFO        bool          // drain newest-first
	TenantQPS            float64       // per-tenant token-bucket limit

	Verbose bool
}

// DefaultOptions returns a laptop-scale configuration.
func DefaultOptions() Options {
	return Options{
		Accounts:       10000,
		Concurrency:    100,
		OpsPerWorkload: 5000,
		Replicas:       3,
		CacheEntries:   64 << 10,
	}
}

// tempDir creates a scratch directory under DataRoot.
func (o *Options) tempDir(name string) (string, error) {
	root := o.DataRoot
	if root == "" {
		root = os.TempDir()
	}
	return os.MkdirTemp(root, "lambdastore-"+name+"-*")
}

// groupCommitWait returns the store's leader linger for this run: 2ms when
// the batched pipeline is on (the fsync amortization window), zero for the
// unbatched ablation.
func (o *Options) groupCommitWait() time.Duration {
	if o.DisableBatching {
		return 0
	}
	return 2 * time.Millisecond
}

// vmTier maps the VMInterp ablation flag onto the runtime's tier name.
func (o *Options) vmTier() string {
	if o.VMInterp {
		return "interp"
	}
	return ""
}

// clientOpts builds the RPC options with injected network delay.
func (o *Options) clientOpts() *rpc.ClientOptions {
	return &rpc.ClientOptions{
		Delay:                  o.NetDelay,
		Timeout:                120 * time.Second,
		DisableWriteCoalescing: o.DisableBatching,
	}
}

// Deployment is one bootable architecture under test.
type Deployment struct {
	Name    string
	Invoker workload.Invoker
	// Create instantiates an object of the Retwis User type.
	Create func(id uint64) error
	// Nodes exposes the aggregated deployment's cluster nodes (nil for the
	// disaggregated baseline); the write-path benchmark reads commit/fsync
	// counters from their registries.
	Nodes []*cluster.Node
	// Dir is the aggregated deployment's shared directory (nil for the
	// disaggregated baseline) — extra clients with their own read policies
	// can be built against it.
	Dir *shard.Directory

	closers []func()
	cleanup []string
}

// Close tears the deployment down and removes its data directories.
func (d *Deployment) Close() {
	for i := len(d.closers) - 1; i >= 0; i-- {
		d.closers[i]()
	}
	for _, dir := range d.cleanup {
		os.RemoveAll(dir)
	}
}

// readOnlyMethods marks the Retwis methods eligible for replica reads.
var readOnlyMethods = func() map[string]bool {
	m := make(map[string]bool)
	for _, mi := range retwis.Methods {
		if mi.ReadOnly {
			m[mi.Name] = true
		}
	}
	return m
}()

// StartAggregated boots the paper's aggregated configuration: one replica
// group of opts.Replicas storage nodes executing methods in place, clients
// contacting the responsible node directly.
func StartAggregated(opts Options) (*Deployment, error) {
	d := &Deployment{Name: "Aggregated"}
	dir := shard.NewDirectory(nil)
	var nodes []*cluster.Node
	for i := 0; i < opts.Replicas; i++ {
		dataDir, err := d.scratch(&opts, fmt.Sprintf("agg-node%d", i))
		if err != nil {
			d.Close()
			return nil, err
		}
		node, err := cluster.StartNode(cluster.NodeOptions{
			Addr:    "127.0.0.1:0",
			DataDir: dataDir,
			GroupID: 0,
			Store: &store.Options{
				SyncWrites:         opts.SyncWrites,
				DisableGroupCommit: opts.DisableBatching,
				GroupCommitWait:    opts.groupCommitWait(),
				StateCacheEntries:  opts.StateCacheEntries,
			},
			Runtime: core.Options{
				Fuel:                opts.Fuel,
				CacheEntries:        opts.CacheEntries,
				CacheShards:         opts.CacheShards,
				DisableScheduler:    opts.DisableSched,
				DisableReadFastPath: opts.DisableReadFastPath,
				FullVMReset:         opts.FullVMReset,
				VMTier:              opts.vmTier(),
			},
			Directory:             dir,
			ClientOptions:         opts.clientOpts(),
			DisableShipCoalescing: opts.DisableBatching,
			DisableRPCCoalescing:  opts.DisableBatching,
			DisableMetrics:        opts.DisableMetrics,
			Tracing:               opts.Tracing,
			DisableLeases:         opts.DisableLeases,
			MaxConcurrentInvokes:  opts.MaxConcurrentInvokes,
			AdmissionQueue:        opts.AdmissionQueue,
			AdmissionDeadline:     opts.AdmissionDeadline,
			AdmissionLIFO:         opts.AdmissionLIFO,
			TenantQPS:             opts.TenantQPS,
		})
		if err != nil {
			d.Close()
			return nil, err
		}
		d.closers = append(d.closers, func() { node.Close() })
		nodes = append(nodes, node)
	}
	d.Nodes = nodes
	d.Dir = dir
	g := shard.Group{ID: 0, Primary: nodes[0].Addr()}
	for _, b := range nodes[1:] {
		g.Backups = append(g.Backups, b.Addr())
	}
	dir.SetGroup(g)
	for _, n := range nodes {
		n.SetDirectory(dir)
	}

	client, err := cluster.NewClient(cluster.ClientConfig{
		Directory: dir,
		RPC:       opts.clientOpts(),
	})
	if err != nil {
		d.Close()
		return nil, err
	}
	d.closers = append(d.closers, client.Close)

	typ, err := retwis.NewType()
	if err != nil {
		d.Close()
		return nil, err
	}
	if err := client.RegisterType(typ); err != nil {
		d.Close()
		return nil, err
	}

	d.Invoker = workload.InvokerFunc(func(object uint64, method string, args [][]byte) ([]byte, error) {
		if readOnlyMethods[method] {
			return client.InvokeRead(core.ObjectID(object), method, args)
		}
		return client.Invoke(core.ObjectID(object), method, args)
	})
	d.Create = func(id uint64) error {
		return client.CreateObject(retwis.TypeName, core.ObjectID(id))
	}
	return d, nil
}

// StartDisaggregated boots the paper's baseline: a storage replica group
// of opts.Replicas nodes, one dedicated compute node executing the same
// guest modules against storage over the network, and a load balancer with
// a durable request log used for nested invocations. Clients contact the
// compute node directly, matching the paper's measured configuration.
func StartDisaggregated(opts Options) (*Deployment, error) {
	d := &Deployment{Name: "Disaggregated"}

	// Storage group: primary + backups.
	var backups []string
	var backupNodes []*baseline.StorageNode
	for i := 1; i < opts.Replicas; i++ {
		dataDir, err := d.scratch(&opts, fmt.Sprintf("dis-backup%d", i))
		if err != nil {
			d.Close()
			return nil, err
		}
		b, err := baseline.StartStorage(baseline.StorageOptions{
			Addr:          "127.0.0.1:0",
			DataDir:       dataDir,
			ClientOptions: opts.clientOpts(),
		})
		if err != nil {
			d.Close()
			return nil, err
		}
		d.closers = append(d.closers, func() { b.Close() })
		backups = append(backups, b.Addr())
		backupNodes = append(backupNodes, b)
	}
	dataDir, err := d.scratch(&opts, "dis-primary")
	if err != nil {
		d.Close()
		return nil, err
	}
	primary, err := baseline.StartStorage(baseline.StorageOptions{
		Addr:          "127.0.0.1:0",
		DataDir:       dataDir,
		Backups:       backups,
		ClientOptions: opts.clientOpts(),
	})
	if err != nil {
		d.Close()
		return nil, err
	}
	d.closers = append(d.closers, func() { primary.Close() })

	// Compute node.
	compute, err := baseline.StartCompute(baseline.ComputeOptions{
		Addr:          "127.0.0.1:0",
		Storage:       primary.Addr(),
		Fuel:          opts.Fuel,
		ClientOptions: opts.clientOpts(),
	})
	if err != nil {
		d.Close()
		return nil, err
	}
	d.closers = append(d.closers, func() { compute.Close() })

	// Load balancer for nested invocations.
	logDir, err := d.scratch(&opts, "dis-lblog")
	if err != nil {
		d.Close()
		return nil, err
	}
	lb, err := baseline.StartLB(baseline.LBOptions{
		Addr:          "127.0.0.1:0",
		LogDir:        logDir,
		Computes:      []string{compute.Addr()},
		ClientOptions: opts.clientOpts(),
	})
	if err != nil {
		d.Close()
		return nil, err
	}
	d.closers = append(d.closers, func() { lb.Close() })
	compute.SetLoadBalancer(lb.Addr())

	// Install the Retwis type at the storage layer.
	typ, err := retwis.NewType()
	if err != nil {
		d.Close()
		return nil, err
	}
	pool := rpc.NewPool(opts.clientOpts())
	d.closers = append(d.closers, pool.Close)
	if _, err := pool.Call(primary.Addr(), baseline.MethodRegType, typ.Encode()); err != nil {
		d.Close()
		return nil, err
	}

	client := baseline.NewDirectClient(compute.Addr(), opts.clientOpts())
	d.closers = append(d.closers, client.Close)

	d.Invoker = workload.InvokerFunc(client.Invoke)
	d.Create = func(id uint64) error {
		_, err := pool.Call(primary.Addr(), baseline.MethodCreate,
			baseline.EncodeCreateReq(id, retwis.TypeName))
		return err
	}
	return d, nil
}

// scratch allocates and tracks a data directory.
func (d *Deployment) scratch(opts *Options, name string) (string, error) {
	dir, err := opts.tempDir(name)
	if err != nil {
		return "", err
	}
	d.cleanup = append(d.cleanup, dir)
	return dir, nil
}
