package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"time"

	"lambdastore/internal/admission"
	"lambdastore/internal/cluster"
	"lambdastore/internal/core"
	"lambdastore/internal/workload"
)

// The overload experiment (EXPERIMENTS.md A13) measures what admission
// control buys under open-loop load. A closed loop can never overload the
// system — its workers slow down with it — so the sweep offers seeded
// Poisson arrivals at fixed multiples of the measured closed-loop
// capacity, from half-load to well past saturation, against two
// deployments that differ only in the admission plane:
//
//   - no-shed: the legacy unbounded semaphore gate. Past the knee every
//     excess arrival joins an unbounded queue; by Little's law the
//     admitted-request latency grows with the backlog, i.e. collapses.
//   - shed: bounded queue + deadline. Excess arrivals are refused in
//     O(deadline); the requests the node does serve keep a bounded queue
//     ahead of them, so their p99 stays within a small multiple of the
//     pre-knee p99 no matter how far past saturation the offered load is.
//
// Latency is CO-safe: RunOpenLoop measures from each request's intended
// Poisson arrival slot, so issue-loop stalls count against the system.
const (
	// overloadWorkers bounds per-node execution slots; with SyncWrites on,
	// a few slots give a modest, stable capacity whose knee the sweep can
	// straddle at laptop scale.
	overloadWorkers = 4
	// overloadQueue/overloadDeadline shape the shed deployment's plane.
	// 50ms keeps the populate phase (32 parallel creators) comfortably
	// under the shed threshold while still being far below the multi-second
	// waits the no-shed deployment accumulates past the knee.
	overloadQueue    = 256
	overloadDeadline = 50 * time.Millisecond
	// overloadStepDuration is one open-loop measurement window.
	overloadStepDuration = 1200 * time.Millisecond
)

// overloadMultipliers are the offered-load points in units of measured
// capacity: two below the knee, three at and past it.
var overloadMultipliers = []float64{0.5, 0.8, 1.1, 1.4, 1.8}

// OverloadPoint is one (config, offered-rate) open-loop measurement.
type OverloadPoint struct {
	Config     string  `json:"config"`
	Multiplier float64 `json:"capacity_multiplier"`
	Offered    float64 `json:"offered_ops_per_sec"`
	Issued     uint64  `json:"issued"`
	Completed  uint64  `json:"completed"`
	Shed       uint64  `json:"shed"`
	ShedRate   float64 `json:"shed_rate"`
	Throughput float64 `json:"throughput_ops_per_sec"`
	P50Us      int64   `json:"p50_us"`
	P99Us      int64   `json:"p99_us"`
	P999Us     int64   `json:"p999_us"`
	Errors     uint64  `json:"errors"`
}

// OverloadReport is the results/BENCH_overload.json document.
type OverloadReport struct {
	GeneratedBy string  `json:"generated_by"`
	Workload    string  `json:"workload"`
	Accounts    int     `json:"accounts"`
	Workers     int     `json:"execution_slots"`
	Queue       int     `json:"admission_queue"`
	DeadlineMs  float64 `json:"admission_deadline_ms"`
	StepMs      float64 `json:"step_ms"`
	// CapacityOpsPerSec is the closed-loop saturation throughput the
	// multipliers are scaled by, measured on the no-shed deployment.
	CapacityOpsPerSec float64         `json:"capacity_ops_per_sec"`
	Multipliers       []float64       `json:"multipliers"`
	Results           []OverloadPoint `json:"results"`
	// PreKneeP99Us is each config's admitted-request p99 at the highest
	// sub-knee multiplier; MaxLoadP99Us the same at the highest multiplier.
	// BoundX is their ratio — the headline: shed stays a small multiple,
	// no-shed collapses.
	ShedPreKneeP99Us   int64   `json:"shed_pre_knee_p99_us"`
	ShedMaxLoadP99Us   int64   `json:"shed_max_load_p99_us"`
	ShedBoundX         float64 `json:"shed_p99_bound_x"`
	NoShedPreKneeP99Us int64   `json:"no_shed_pre_knee_p99_us"`
	NoShedMaxLoadP99Us int64   `json:"no_shed_max_load_p99_us"`
	NoShedBoundX       float64 `json:"no_shed_p99_bound_x"`
}

// overloadOptions scales opts down to the experiment's fixed shape.
func overloadOptions(opts Options, shed bool) Options {
	o := opts
	o.Replicas = 1
	if o.Accounts <= 0 || o.Accounts > 512 {
		o.Accounts = 512
	}
	// Durability-honest writes: the fsync is what gives the node a real,
	// modest per-slot service time (and thus a measurable knee).
	o.SyncWrites = true
	o.MaxConcurrentInvokes = overloadWorkers
	if shed {
		o.AdmissionQueue = overloadQueue
		o.AdmissionDeadline = overloadDeadline
	} else {
		o.AdmissionQueue = 0
	}
	return o
}

// startOverload boots one aggregated deployment plus the measurement
// client: no retries, so a shed arrival is observed as a shed instead of
// being masked by backoff-and-retry (the retry path is exercised by the
// chaos probe; here it would unbound the very latency being measured).
func startOverload(opts Options, shed bool) (*Deployment, *cluster.Client, error) {
	d, err := StartAggregated(overloadOptions(opts, shed))
	if err != nil {
		return nil, nil, err
	}
	meas, err := cluster.NewClient(cluster.ClientConfig{
		Directory:  d.Dir,
		RPC:        opts.clientOpts(),
		MaxRetries: 1,
	})
	if err != nil {
		d.Close()
		return nil, nil, err
	}
	d.closers = append(d.closers, meas.Close)
	return d, meas, nil
}

// runOverloadSweep populates one deployment and walks the offered-load
// points. capacity <= 0 means "measure it first, closed-loop" (done on
// the no-shed deployment so both configs share one scale).
func runOverloadSweep(opts Options, shed bool, capacity float64, w io.Writer) ([]OverloadPoint, float64, error) {
	name := "no-shed"
	if shed {
		name = "shed"
	}
	d, meas, err := startOverload(opts, shed)
	if err != nil {
		return nil, 0, err
	}
	defer d.Close()

	cfg := workload.DefaultConfig(overloadOptions(opts, shed).Accounts)
	if err := workload.Populate(cfg, d.Create, d.Invoker); err != nil {
		return nil, 0, fmt.Errorf("populate: %w", err)
	}

	if capacity <= 0 {
		res, err := workload.RunClosedLoop(cfg, workload.Post, d.Invoker, 2*overloadWorkers, 2000)
		if err != nil {
			return nil, 0, fmt.Errorf("capacity probe: %w", err)
		}
		capacity = res.Throughput
		if w != nil {
			fmt.Fprintf(w, "  closed-loop capacity (%d slots, sync writes): %.1f ops/s\n",
				overloadWorkers, capacity)
		}
	}

	inv := workload.InvokerFunc(func(object uint64, method string, args [][]byte) ([]byte, error) {
		return meas.Invoke(core.ObjectID(object), method, args)
	})
	var points []OverloadPoint
	for _, mult := range overloadMultipliers {
		res, err := workload.RunOpenLoop(cfg, workload.Post, inv, workload.OpenLoopOptions{
			Rate:     mult * capacity,
			Duration: overloadStepDuration,
			IsShed:   admission.IsOverload,
		})
		if err != nil {
			return nil, 0, fmt.Errorf("open loop at %.1fx: %w", mult, err)
		}
		p := OverloadPoint{
			Config:     name,
			Multiplier: mult,
			Offered:    res.OfferedRate,
			Issued:     res.Issued,
			Completed:  res.Completed,
			Shed:       res.Shed,
			ShedRate:   res.ShedRate(),
			Throughput: res.Throughput,
			P50Us:      res.Latency.Median.Microseconds(),
			P99Us:      res.Latency.P99.Microseconds(),
			P999Us:     int64(res.Hist.P999Us),
			Errors:     res.Errors,
		}
		points = append(points, p)
		if w != nil {
			fmt.Fprintf(w, "  %-8s %.1fx offered=%8.1f/s done=%-6d shed=%5.1f%% thr=%8.1f/s p50=%7dus p99=%8dus errs=%d\n",
				p.Config, p.Multiplier, p.Offered, p.Completed, 100*p.ShedRate,
				p.Throughput, p.P50Us, p.P99Us, p.Errors)
		}
	}
	return points, capacity, nil
}

// RunOverload runs the latency-vs-offered-load sweep to and past
// saturation, shed on vs off. An empty outPath skips the JSON artifact.
func RunOverload(opts Options, outPath string, w io.Writer) (*OverloadReport, error) {
	rep := &OverloadReport{
		GeneratedBy: "make bench-overload",
		Workload:    workload.Post,
		Accounts:    overloadOptions(opts, false).Accounts,
		Workers:     overloadWorkers,
		Queue:       overloadQueue,
		DeadlineMs:  float64(overloadDeadline) / float64(time.Millisecond),
		StepMs:      float64(overloadStepDuration) / float64(time.Millisecond),
		Multipliers: overloadMultipliers,
	}
	if w != nil {
		fmt.Fprintf(w, "Overload: open-loop Poisson %s sweep, %d execution slot(s), steps of %v\n",
			workload.Post, overloadWorkers, overloadStepDuration)
	}

	noShed, capacity, err := runOverloadSweep(opts, false, 0, w)
	if err != nil {
		return nil, fmt.Errorf("bench: overload no-shed: %w", err)
	}
	rep.CapacityOpsPerSec = capacity
	shed, _, err := runOverloadSweep(opts, true, capacity, w)
	if err != nil {
		return nil, fmt.Errorf("bench: overload shed: %w", err)
	}
	rep.Results = append(noShed, shed...)

	preKnee := func(points []OverloadPoint) (pre, max int64) {
		var bestPre float64
		for _, p := range points {
			if p.Multiplier < 1 && p.Multiplier > bestPre {
				bestPre, pre = p.Multiplier, p.P99Us
			}
			if p.Multiplier == overloadMultipliers[len(overloadMultipliers)-1] {
				max = p.P99Us
			}
		}
		return pre, max
	}
	rep.NoShedPreKneeP99Us, rep.NoShedMaxLoadP99Us = preKnee(noShed)
	rep.ShedPreKneeP99Us, rep.ShedMaxLoadP99Us = preKnee(shed)
	if rep.NoShedPreKneeP99Us > 0 {
		rep.NoShedBoundX = float64(rep.NoShedMaxLoadP99Us) / float64(rep.NoShedPreKneeP99Us)
	}
	if rep.ShedPreKneeP99Us > 0 {
		rep.ShedBoundX = float64(rep.ShedMaxLoadP99Us) / float64(rep.ShedPreKneeP99Us)
	}
	if w != nil {
		fmt.Fprintf(w, "  admitted-request p99 at %.1fx vs pre-knee: shed %.1fx, no-shed %.1fx\n",
			overloadMultipliers[len(overloadMultipliers)-1], rep.ShedBoundX, rep.NoShedBoundX)
	}

	if outPath != "" {
		if err := writeOverloadReport(rep, outPath); err != nil {
			return nil, err
		}
	}
	return rep, nil
}

// writeOverloadReport stores the report as indented JSON.
func writeOverloadReport(rep *OverloadReport, path string) error {
	if dir := filepath.Dir(path); dir != "." && dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return err
		}
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
