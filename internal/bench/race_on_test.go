//go:build race

package bench

// raceEnabled disables performance-shape assertions: under the race
// detector all timing is distorted and only functional checks remain
// meaningful.
const raceEnabled = true
