package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"
	"time"

	"lambdastore/internal/cluster"
	"lambdastore/internal/core"
	"lambdastore/internal/fault"
	"lambdastore/internal/rebalance"
	"lambdastore/internal/retwis"
	"lambdastore/internal/rpc"
	"lambdastore/internal/shard"
	"lambdastore/internal/store"
	"lambdastore/internal/workload"
)

// Rebalance bench: the many-group placement and live-migration story
// (DESIGN.md §13) measured end to end.
//
// Sweep 1 — throughput vs group count. One single-node replica group per
// shard, uniform Post workload. On one shared machine every group rides
// the same cores, so raw CPU would flatten the curve; instead each node's
// capacity is modeled with an injected per-frame receive delay (the fault
// plane's SiteRPCRecv rule sleeps in the server's per-connection read
// loop, and the bench client holds exactly one connection per node with
// write coalescing off, so a node admits at most 1/delay requests per
// second). More groups = more aggregate admission capacity, exactly the
// effect partitioned placement buys on real hardware.
//
// Sweep 2 — Zipf hot-spot convergence. Same capacity model at a fixed
// group count, but the per-op key choice is Zipf(1.1)-skewed with the
// hotspot stride equal to the group count, so under id-mod-groups
// placement every hot key hashes to the SAME group (the correlated
// collision worst case). Measured with the rebalancer off (the hot group
// is the whole cluster's throughput) and on (hot objects migrate out one
// by one until the hysteresis margin mutes the planner); the artifact
// records steady-state throughput for both and the cumulative move count
// over time — the plateau is the policy's anti-oscillation evidence.
var rebalanceGroupCounts = []int{1, 4, 16, 48}

const (
	// rebalancePerNodeDelay is each node's modeled admission interval:
	// one inbound frame per 500µs ≈ 2,000 requests/second/group.
	rebalancePerNodeDelay = 500 * time.Microsecond
	// rebalanceZipfS is the hot-spot skew for sweep 2.
	rebalanceZipfS = 1.1
	// rebalanceConvergenceGroups is sweep 2's group count.
	rebalanceConvergenceGroups = 16
)

// RebalanceGroupPoint is one group-count measurement of sweep 1.
type RebalanceGroupPoint struct {
	Groups        int     `json:"groups"`
	Ops           uint64  `json:"ops"`
	ThroughputOps float64 `json:"throughput_ops_sec"`
	P50Ms         float64 `json:"p50_ms"`
	P99Ms         float64 `json:"p99_ms"`
	Errors        uint64  `json:"errors"`
	// SpeedupVsOne normalizes against the 1-group point.
	SpeedupVsOne float64 `json:"speedup_vs_one_group"`
}

// RebalanceMovesSample is one point of the convergence timeline.
type RebalanceMovesSample struct {
	AtSeconds       float64 `json:"at_seconds"`
	CumulativeMoves uint64  `json:"cumulative_moves"`
}

// RebalanceConvergence is sweep 2's rebalancer-off vs -on comparison.
type RebalanceConvergence struct {
	Groups       int     `json:"groups"`
	HotspotZipfS float64 `json:"hotspot_zipf_s"`
	// Steady-state Post throughput with the planner off: the single hot
	// group is the whole cluster's admission capacity.
	OffThroughput float64 `json:"rebalancer_off_ops_sec"`
	OffP99Ms      float64 `json:"rebalancer_off_p99_ms"`
	OffErrors     uint64  `json:"rebalancer_off_errors"`
	// Steady-state throughput after the planner converged.
	OnThroughput float64 `json:"rebalancer_on_ops_sec"`
	OnP99Ms      float64 `json:"rebalancer_on_p99_ms"`
	OnErrors     uint64  `json:"rebalancer_on_errors"`
	// ConvergedAtSeconds is when the cumulative move count first reached
	// its final value (from the timeline; 0 when no moves fired).
	ConvergedAtSeconds float64 `json:"converged_at_seconds"`
	// OnOverOff is the headline ratio (the issue's bar is >=1.5x).
	OnOverOff float64 `json:"on_over_off"`
	// TotalMoves counts executed live migrations across the whole on-run.
	TotalMoves uint64 `json:"total_moves"`
	MoveErrors uint64 `json:"move_errors"`
	// MovesDuringMeasure is how many fired inside the steady-state
	// measurement window — the plateau check (hysteresis + cooldown must
	// mute the planner once balanced, not oscillate objects around).
	MovesDuringMeasure uint64                 `json:"moves_during_measure"`
	Plateaued          bool                   `json:"moves_plateaued"`
	Timeline           []RebalanceMovesSample `json:"moves_timeline"`
	// Overrides is the directory override-table size after convergence
	// (every migrated object away from its hash home costs one entry).
	Overrides int `json:"directory_overrides"`
}

// RebalanceReport is the results/BENCH_rebalance.json document.
type RebalanceReport struct {
	GeneratedBy    string                `json:"generated_by"`
	Accounts       int                   `json:"accounts"`
	Concurrency    int                   `json:"concurrency"`
	PerNodeDelayUs int64                 `json:"per_node_recv_delay_us"`
	GroupSweep     []RebalanceGroupPoint `json:"group_sweep"`
	Convergence    RebalanceConvergence  `json:"zipf_convergence"`
}

// rebalanceClientOpts builds the bench client's RPC options. Write
// coalescing is off so every operation is its own frame — the per-frame
// receive delay then models per-request admission, not per-batch.
func rebalanceClientOpts() *rpc.ClientOptions {
	return &rpc.ClientOptions{
		Timeout:                120 * time.Second,
		DisableWriteCoalescing: true,
	}
}

// rebalanceCluster is a G-group single-replica deployment sharing one
// static directory (nodes and client see cutovers the instant the move
// commits them).
type rebalanceCluster struct {
	dep   *Deployment
	dir   *shard.Directory
	nodes []*cluster.Node
}

// Close tears the deployment down and clears the fault plane's capacity
// rules (the plane is process-global; the bench owns it for the run).
func (c *rebalanceCluster) Close() {
	c.dep.Close()
	fault.Reset()
}

// startRebalanceCluster boots G single-node groups on a shared directory.
func startRebalanceCluster(opts Options, groups int) (*rebalanceCluster, error) {
	d := &Deployment{Name: fmt.Sprintf("rebalance-%dg", groups)}
	c := &rebalanceCluster{dep: d, dir: shard.NewDirectory(nil)}
	for g := 0; g < groups; g++ {
		dataDir, err := d.scratch(&opts, fmt.Sprintf("reb-g%d", g))
		if err != nil {
			d.Close()
			return nil, err
		}
		node, err := cluster.StartNode(cluster.NodeOptions{
			Addr:    "127.0.0.1:0",
			DataDir: dataDir,
			GroupID: uint64(g),
			Store:   &store.Options{},
			Runtime: core.Options{
				CacheEntries: opts.CacheEntries,
			},
			Directory:     c.dir,
			ClientOptions: rebalanceClientOpts(),
			// A second admission bound alongside the frame delay: at most
			// 8 invocations executing per node, like a real per-node
			// worker pool.
			MaxConcurrentInvokes: 8,
		})
		if err != nil {
			d.Close()
			return nil, err
		}
		d.closers = append(d.closers, func() { node.Close() })
		c.nodes = append(c.nodes, node)
		c.dir.SetGroup(shard.Group{ID: uint64(g), Primary: node.Addr()})
	}
	for _, n := range c.nodes {
		n.SetDirectory(c.dir)
	}

	client, err := cluster.NewClient(cluster.ClientConfig{
		Directory: c.dir,
		RPC:       rebalanceClientOpts(),
	})
	if err != nil {
		d.Close()
		return nil, err
	}
	d.closers = append(d.closers, client.Close)
	typ, err := retwis.NewType()
	if err != nil {
		d.Close()
		return nil, err
	}
	if err := client.RegisterType(typ); err != nil {
		d.Close()
		return nil, err
	}
	d.Invoker = workload.InvokerFunc(func(object uint64, method string, args [][]byte) ([]byte, error) {
		if readOnlyMethods[method] {
			return client.InvokeRead(core.ObjectID(object), method, args)
		}
		return client.Invoke(core.ObjectID(object), method, args)
	})
	d.Create = func(id uint64) error {
		return client.CreateObject(retwis.TypeName, core.ObjectID(id))
	}
	return c, nil
}

// populateFlat creates the accounts with NO follower edges: create_post
// then stays a single-object write (no store_post fan-out), so a group's
// observed load is exactly its keys' load and the capacity model is
// per-key. Runs before the capacity rules are installed.
func populateFlat(cfg workload.Config, c *rebalanceCluster) error {
	const parallel = 32
	jobs := make(chan int, parallel)
	errs := make(chan error, parallel)
	var wg sync.WaitGroup
	for w := 0; w < parallel; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				id := cfg.AccountID(i)
				if err := c.dep.Create(id); err != nil {
					errs <- fmt.Errorf("create %d: %w", id, err)
					return
				}
				name := fmt.Sprintf("user%06d", i)
				if _, err := c.dep.Invoker.Invoke(id, "create_account", [][]byte{[]byte(name)}); err != nil {
					errs <- fmt.Errorf("create_account %d: %w", id, err)
					return
				}
			}
		}()
	}
	var sendErr error
fill:
	for i := 0; i < cfg.Accounts; i++ {
		select {
		case sendErr = <-errs:
			break fill
		case jobs <- i:
		}
	}
	close(jobs)
	wg.Wait()
	if sendErr != nil {
		return sendErr
	}
	select {
	case err := <-errs:
		return err
	default:
		return nil
	}
}

// installCapacityRules arms the per-node admission delay.
func installCapacityRules(nodes []*cluster.Node) {
	for _, n := range nodes {
		fault.Add(fault.Rule{
			Site:   fault.SiteRPCRecv,
			Key:    n.Addr(),
			Action: fault.Delay,
			Delay:  rebalancePerNodeDelay,
		})
	}
}

// rebalanceOps scales per-point operation counts with capacity so each
// point runs about as long regardless of group count.
func rebalanceOps(opts Options, groups int) int {
	ops := opts.OpsPerWorkload * groups
	if max := opts.OpsPerWorkload * 12; ops > max {
		ops = max
	}
	return ops
}

// runRebalanceGroupPoint measures uniform Post throughput at one group count.
func runRebalanceGroupPoint(opts Options, groups int) (RebalanceGroupPoint, error) {
	out := RebalanceGroupPoint{Groups: groups}
	c, err := startRebalanceCluster(opts, groups)
	if err != nil {
		return out, err
	}
	defer c.Close()
	cfg := workload.DefaultConfig(opts.Accounts)
	if err := populateFlat(cfg, c); err != nil {
		return out, err
	}
	installCapacityRules(c.nodes)
	res, err := workload.RunClosedLoop(cfg, workload.Post, c.dep.Invoker, opts.Concurrency, rebalanceOps(opts, groups))
	if err != nil {
		return out, err
	}
	out.Ops = res.Ops
	out.ThroughputOps = res.Throughput
	out.P50Ms = float64(res.Latency.Median) / float64(time.Millisecond)
	out.P99Ms = float64(res.Latency.P99) / float64(time.Millisecond)
	out.Errors = res.Errors
	return out, nil
}

// runRebalanceConvergence measures the Zipf hot-spot workload with the
// planner off or on. With it on, a background loop drives Tick every
// 250ms (observe, plan, execute) and samples the cumulative move count
// once a second for the timeline.
func runRebalanceConvergence(opts Options, on bool, conv *RebalanceConvergence) error {
	groups := rebalanceConvergenceGroups
	c, err := startRebalanceCluster(opts, groups)
	if err != nil {
		return err
	}
	defer c.Close()
	cfg := workload.DefaultConfig(opts.Accounts)
	cfg.HotspotS = rebalanceZipfS
	// Stride = group count: every Zipf rank maps to a key that is
	// congruent mod the group count — all hot keys pile onto one group.
	cfg.HotspotStride = uint64(groups)
	if err := populateFlat(cfg, c); err != nil {
		return err
	}
	installCapacityRules(c.nodes)

	var (
		reb      *rebalance.Rebalancer
		stop     chan struct{}
		tickWG   sync.WaitGroup
		timeline []RebalanceMovesSample
	)
	if on {
		pool := rpc.NewPool(rebalanceClientOpts())
		defer pool.Close()
		reb = rebalance.New(rebalance.Options{
			Pool:     pool,
			Config:   func() (*shard.Directory, error) { return c.dir, nil },
			Interval: 250 * time.Millisecond,
			Policy: rebalance.PolicyConfig{
				// Short cooldown: the bench's whole run fits in a few
				// default cooldowns; the plateau must come from the
				// hysteresis margin, not from every object still cooling.
				Cooldown: 2 * time.Second,
			},
		})
		defer reb.Close()
		stop = make(chan struct{})
		start := time.Now()
		tickWG.Add(1)
		go func() {
			defer tickWG.Done()
			tick := time.NewTicker(250 * time.Millisecond)
			defer tick.Stop()
			n := 0
			for {
				select {
				case <-stop:
					return
				case <-tick.C:
				}
				reb.Tick()
				n++
				if n%4 == 0 {
					timeline = append(timeline, RebalanceMovesSample{
						AtSeconds:       time.Since(start).Seconds(),
						CumulativeMoves: reb.Moves(),
					})
				}
			}
		}()
	}

	warmOps := opts.OpsPerWorkload * 4
	measureOps := opts.OpsPerWorkload * 4
	// Warm phase: with the planner on this is the convergence window —
	// hot objects migrate out under full load.
	warm, err := workload.RunClosedLoop(cfg, workload.Post, c.dep.Invoker, opts.Concurrency, warmOps)
	if err != nil {
		return err
	}
	var movesAtMeasure uint64
	if reb != nil {
		movesAtMeasure = reb.Moves()
	}
	meas, err := workload.RunClosedLoop(cfg, workload.Post, c.dep.Invoker, opts.Concurrency, measureOps)
	if err != nil {
		return err
	}
	if stop != nil {
		close(stop)
		tickWG.Wait()
	}

	if on {
		st := reb.Status()
		conv.OnThroughput = meas.Throughput
		conv.OnP99Ms = float64(meas.Latency.P99) / float64(time.Millisecond)
		conv.OnErrors = warm.Errors + meas.Errors
		for _, s := range timeline {
			if s.CumulativeMoves == st.Moves {
				conv.ConvergedAtSeconds = s.AtSeconds
				break
			}
		}
		conv.TotalMoves = st.Moves
		conv.MoveErrors = st.MoveErrors
		conv.MovesDuringMeasure = st.Moves - movesAtMeasure
		// A converged planner fires at most a stray move or two once the
		// cooldowns from the convergence window expire.
		conv.Plateaued = conv.MovesDuringMeasure <= 2
		conv.Timeline = timeline
		conv.Overrides = c.dir.OverrideCount()
	} else {
		conv.OffThroughput = meas.Throughput
		conv.OffP99Ms = float64(meas.Latency.P99) / float64(time.Millisecond)
		conv.OffErrors = warm.Errors + meas.Errors
	}
	return nil
}

// RunRebalance runs both sweeps and writes results/BENCH_rebalance.json.
// An empty outPath skips the artifact.
func RunRebalance(opts Options, outPath string, w io.Writer) (*RebalanceReport, error) {
	rep := &RebalanceReport{
		GeneratedBy:    "make bench-rebalance",
		Accounts:       opts.Accounts,
		Concurrency:    opts.Concurrency,
		PerNodeDelayUs: rebalancePerNodeDelay.Microseconds(),
	}
	if w != nil {
		fmt.Fprintf(w, "Rebalance: many-group placement (uniform Post, %v/frame per-node admission)\n", rebalancePerNodeDelay)
	}
	for _, g := range rebalanceGroupCounts {
		p, err := runRebalanceGroupPoint(opts, g)
		if err != nil {
			return nil, fmt.Errorf("bench: rebalance groups=%d: %w", g, err)
		}
		if base := rep.GroupSweep; len(base) > 0 && base[0].ThroughputOps > 0 {
			p.SpeedupVsOne = p.ThroughputOps / base[0].ThroughputOps
		} else {
			p.SpeedupVsOne = 1
		}
		rep.GroupSweep = append(rep.GroupSweep, p)
		if w != nil {
			fmt.Fprintf(w, "  groups=%-3d thr=%9.1f ops/s  p50=%6.2fms p99=%6.2fms  x%.2f vs 1 group\n",
				p.Groups, p.ThroughputOps, p.P50Ms, p.P99Ms, p.SpeedupVsOne)
		}
	}

	conv := &rep.Convergence
	conv.Groups = rebalanceConvergenceGroups
	conv.HotspotZipfS = rebalanceZipfS
	if w != nil {
		fmt.Fprintf(w, "Rebalance: Zipf(%.1f) hot spot, stride=group count (all hot keys on one group), %d groups\n",
			rebalanceZipfS, rebalanceConvergenceGroups)
	}
	if err := runRebalanceConvergence(opts, false, conv); err != nil {
		return nil, fmt.Errorf("bench: rebalance zipf off: %w", err)
	}
	if err := runRebalanceConvergence(opts, true, conv); err != nil {
		return nil, fmt.Errorf("bench: rebalance zipf on: %w", err)
	}
	if conv.OffThroughput > 0 {
		conv.OnOverOff = conv.OnThroughput / conv.OffThroughput
	}
	if w != nil {
		fmt.Fprintf(w, "  rebalancer off: %9.1f ops/s p99=%6.2fms (errs %d)\n",
			conv.OffThroughput, conv.OffP99Ms, conv.OffErrors)
		fmt.Fprintf(w, "  rebalancer on:  %9.1f ops/s p99=%6.2fms (errs %d)  %.2fx, %d moves (converged %.1fs, %d during measure, plateaued=%v), %d overrides\n",
			conv.OnThroughput, conv.OnP99Ms, conv.OnErrors, conv.OnOverOff, conv.TotalMoves,
			conv.ConvergedAtSeconds, conv.MovesDuringMeasure, conv.Plateaued, conv.Overrides)
	}

	if outPath != "" {
		if err := writeRebalanceReport(rep, outPath); err != nil {
			return nil, err
		}
	}
	return rep, nil
}

// writeRebalanceReport stores the report as indented JSON.
func writeRebalanceReport(rep *RebalanceReport, path string) error {
	if dir := filepath.Dir(path); dir != "." && dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return err
		}
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
