//go:build !race

package bench

// raceEnabled disables performance-shape assertions when true.
const raceEnabled = false
