package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"time"

	"lambdastore/internal/vm"
)

// vmClients are the closed-loop client counts swept per tier in the
// end-to-end half of the VM-compile benchmark.
var vmClients = []int{1, 8, 64}

// vmMicroFuel is the per-call budget for the microbench kernels: generous
// enough that no call traps, metered (as production is) so both tiers pay
// the same per-block fuel accounting.
const vmMicroFuel = 64 << 20

// vmSpinSrc is the compute-heavy kernel: a counted loop of pure register
// arithmetic, the shape where dispatch overhead dominates and the
// threaded tier's fused register-form code shows its full advantage.
const vmSpinSrc = `
func spin params=1 locals=3 export
loop:
  local.get 1
  local.get 0
  ge_s
  jnz done
  local.get 2
  local.get 1
  mul
  push 7
  add
  local.get 1
  xor
  local.set 2
  local.get 1
  push 1
  add
  local.set 1
  jmp loop
done:
  local.get 2
  ret
end
`

// vmTouchSrc is the memory-touching kernel: each iteration stores and
// reloads one word of linear memory, so bounds checks and dirty-region
// tracking sit on the hot path alongside dispatch.
const vmTouchSrc = `
func touch params=1 locals=3 export
loop:
  local.get 1
  local.get 0
  ge_s
  jnz done
  local.get 1
  push 3
  shl
  local.get 1
  push 31
  mul
  store64
  local.get 1
  push 3
  shl
  load64
  local.get 2
  xor
  local.set 2
  local.get 1
  push 1
  add
  local.set 1
  jmp loop
done:
  local.get 2
  ret
end
`

// VMMicroPoint is one (kernel, tier) microbench measurement: direct
// Call/ResetFast loops against a single instance, no RPC or storage.
type VMMicroPoint struct {
	Kernel   string  `json:"kernel"`
	Tier     string  `json:"tier"`
	NsPerOp  float64 `json:"ns_per_op"`
	FuelUsed int64   `json:"fuel_used_per_op"`
}

// VMCompileReport is the results/BENCH_vm_compile.json document.
type VMCompileReport struct {
	GeneratedBy string `json:"generated_by"`
	Workload    string `json:"workload"`
	Accounts    int    `json:"accounts"`
	Ops         int    `json:"ops"`
	Replicas    int    `json:"replicas"`
	Clients     []int  `json:"clients"`
	// EndToEnd holds GetTimeline sweeps with the result cache disabled so
	// every read executes the VM warm; configs "interp" and "threaded".
	EndToEnd []ReadPathPoint `json:"end_to_end"`
	// Micro holds the direct kernel measurements per tier.
	Micro []VMMicroPoint `json:"micro"`
	// MicroSpeedup maps kernel name to interp-ns / threaded-ns.
	MicroSpeedup map[string]float64 `json:"micro_speedup"`
	// SpeedupAt64 is threaded over interp GetTimeline throughput at the
	// highest client count.
	SpeedupAt64 float64 `json:"speedup_at_64_clients"`
}

// runVMMicro measures one kernel under one tier: reps calls against a
// single warm instance, ResetFast between calls (the pool's warm path).
func runVMMicro(src, entry, kernel string, tierName string, tier vm.Tier, arg int64, reps int) (VMMicroPoint, error) {
	out := VMMicroPoint{Kernel: kernel, Tier: tierName}
	mod, err := vm.Assemble(src)
	if err != nil {
		return out, fmt.Errorf("bench: vm kernel %s: %w", kernel, err)
	}
	inst, err := vm.NewInstance(mod, nil, vmMicroFuel)
	if err != nil {
		return out, err
	}
	inst.SetTier(tier)
	if tier == vm.TierThreaded && inst.EffectiveTier() != vm.TierThreaded {
		return out, fmt.Errorf("bench: vm kernel %s fell back to the interpreter", kernel)
	}
	idx := mod.FuncIndex(entry)
	args := []int64{arg}
	// Warmup: grow the register file and fault in memory pages.
	if _, err := inst.CallIndex(idx, args...); err != nil {
		return out, err
	}
	out.FuelUsed = inst.FuelUsed()
	inst.ResetFast(vmMicroFuel)
	start := time.Now()
	for i := 0; i < reps; i++ {
		if _, err := inst.CallIndex(idx, args...); err != nil {
			return out, err
		}
		inst.ResetFast(vmMicroFuel)
	}
	out.NsPerOp = float64(time.Since(start).Nanoseconds()) / float64(reps)
	return out, nil
}

// vmMicroKernels defines the microbench suite: loop trip counts sized so
// one interpreted call costs tens of microseconds — long enough to swamp
// call overhead, short enough to finish thousands of reps quickly.
var vmMicroKernels = []struct {
	name  string
	src   string
	entry string
	arg   int64
	reps  int
}{
	{"spinsum", vmSpinSrc, "spin", 4000, 3000},
	{"memtouch", vmTouchSrc, "touch", 4000, 3000},
}

// RunVMCompile benchmarks the AOT token-threaded tier against the switch
// interpreter: direct kernel microbenches, then end-to-end GetTimeline
// with the result cache disabled (every read executes the VM warm). An
// empty outPath skips the JSON artifact.
func RunVMCompile(opts Options, outPath string, w io.Writer) (*VMCompileReport, error) {
	if opts.Accounts > 64 {
		opts.Accounts = 64
	}
	if opts.OpsPerWorkload < 3000 {
		opts.OpsPerWorkload = 3000
	}

	rep := &VMCompileReport{
		GeneratedBy:  "make bench-vm",
		Workload:     "get_timeline (result cache off) + vm kernels",
		Accounts:     opts.Accounts,
		Ops:          opts.OpsPerWorkload,
		Replicas:     opts.Replicas,
		Clients:      vmClients,
		MicroSpeedup: make(map[string]float64),
	}

	if w != nil {
		fmt.Fprintln(w, "VM compile: token-threaded tier vs switch interpreter")
	}
	for _, k := range vmMicroKernels {
		interp, err := runVMMicro(k.src, k.entry, k.name, "interp", vm.TierInterp, k.arg, k.reps)
		if err != nil {
			return nil, err
		}
		threaded, err := runVMMicro(k.src, k.entry, k.name, "threaded", vm.TierThreaded, k.arg, k.reps)
		if err != nil {
			return nil, err
		}
		if interp.FuelUsed != threaded.FuelUsed {
			return nil, fmt.Errorf("bench: vm kernel %s: fuel diverged (interp %d, threaded %d)",
				k.name, interp.FuelUsed, threaded.FuelUsed)
		}
		rep.Micro = append(rep.Micro, interp, threaded)
		speedup := interp.NsPerOp / threaded.NsPerOp
		rep.MicroSpeedup[k.name] = speedup
		if w != nil {
			fmt.Fprintf(w, "  micro %-9s interp=%9.0f ns/op  threaded=%9.0f ns/op  speedup=%.2fx  fuel=%d\n",
				k.name, interp.NsPerOp, threaded.NsPerOp, speedup, interp.FuelUsed)
		}
	}

	var interpAtMax, threadedAtMax float64
	for _, tier := range []struct {
		name   string
		interp bool
	}{{"interp", true}, {"threaded", false}} {
		o := opts
		o.CacheEntries = 0 // every read executes the VM
		o.VMInterp = tier.interp
		for _, clients := range vmClients {
			p, err := runReadPathPoint(o, tier.name, clients)
			if err != nil {
				return nil, fmt.Errorf("bench: vm-compile %s/%d: %w", tier.name, clients, err)
			}
			rep.EndToEnd = append(rep.EndToEnd, p)
			if clients == vmClients[len(vmClients)-1] {
				if tier.interp {
					interpAtMax = p.Throughput
				} else {
					threadedAtMax = p.Throughput
				}
			}
			if w != nil {
				fmt.Fprintf(w, "  e2e %-9s c=%-3d thr=%9.1f ops/s  p50=%6dus p99=%6dus  errs=%d\n",
					p.Config, p.Clients, p.Throughput, p.P50Micros, p.P99Micros, p.Errors)
			}
		}
	}
	if interpAtMax > 0 {
		rep.SpeedupAt64 = threadedAtMax / interpAtMax
	}
	if w != nil {
		fmt.Fprintf(w, "  e2e speedup at %d clients (threaded vs interp): %.2fx\n",
			vmClients[len(vmClients)-1], rep.SpeedupAt64)
	}

	if outPath != "" {
		if err := writeVMCompileReport(rep, outPath); err != nil {
			return nil, err
		}
	}
	return rep, nil
}

// writeVMCompileReport stores the report as indented JSON.
func writeVMCompileReport(rep *VMCompileReport, path string) error {
	if dir := filepath.Dir(path); dir != "." && dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return err
		}
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
