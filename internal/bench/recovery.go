package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"
	"time"

	"lambdastore/internal/chaos"
	"lambdastore/internal/cluster"
	"lambdastore/internal/core"
	"lambdastore/internal/recovery"
)

// Recovery bench sweep: two base store sizes crossed with two downtime
// divergence levels, each measured with the digest diff on (catch-up
// streams only divergent ranges) and off (full resync streams the whole
// store). The artifact's point: with digests, rejoin bytes track the
// writes the node missed, not how much data it stores.
var (
	recoveryStoreSizes  = []int{256, 1024}
	recoveryDivergences = []int{16, 128}
)

// RecoveryPoint is one measured rejoin.
type RecoveryPoint struct {
	// Mode is "digest" (range-digest diff) or "full" (full-resync ablation).
	Mode string `json:"mode"`
	// StoreObjects is the object count in the base store (pre-crash).
	StoreObjects int `json:"store_objects"`
	// DowntimeWrites is how many distinct objects were written while the
	// node was down — the real divergence.
	DowntimeWrites int `json:"downtime_writes"`
	// RejoinSeconds is restart-to-membership as the joiner's state
	// machine measured it (begin through epoch-fenced admission).
	RejoinSeconds float64 `json:"rejoin_seconds"`
	// BytesStreamed is the catch-up chunk payload volume.
	BytesStreamed uint64 `json:"bytes_streamed"`
	// RangesDiverged counts object/meta ranges the digest diff flagged
	// (in full mode: every range the donor holds).
	RangesDiverged uint64 `json:"ranges_diverged"`
	// ChunksApplied counts bounded chunk applications at the joiner.
	ChunksApplied uint64 `json:"chunks_applied"`
	// Attempts counts sync attempts (>1 means a retry was needed).
	Attempts uint64 `json:"attempts"`
}

// RecoveryReport is the results/BENCH_recovery.json document.
type RecoveryReport struct {
	GeneratedBy    string          `json:"generated_by"`
	Nodes          int             `json:"nodes"`
	StoreObjects   []int           `json:"store_objects"`
	DowntimeWrites []int           `json:"downtime_writes"`
	Results        []RecoveryPoint `json:"results"`
	// DigestStoreScalingBytes is digest-mode bytes at the large store over
	// the small store, same divergence: ~1.0 means catch-up cost is bound
	// by divergence, not store size.
	DigestStoreScalingBytes float64 `json:"digest_bytes_large_over_small_store"`
	// FullOverDigestBytes is full-resync bytes over digest-diff bytes at
	// the large store and small divergence — what the digest plane saves.
	FullOverDigestBytes float64 `json:"full_over_digest_bytes"`
}

// runRecoveryPoint boots a fresh 3-node chaos cluster, populates the base
// store, crashes a backup, writes the divergence during its downtime,
// restarts it and measures the rejoin.
func runRecoveryPoint(opts Options, fullResync bool, storeObjects, downtimeWrites int) (RecoveryPoint, error) {
	mode := "digest"
	if fullResync {
		mode = "full"
	}
	out := RecoveryPoint{Mode: mode, StoreObjects: storeObjects, DowntimeWrites: downtimeWrites}

	dir, err := opts.tempDir("recovery")
	if err != nil {
		return out, err
	}
	defer os.RemoveAll(dir)
	c, err := chaos.Start(chaos.Options{BaseDir: dir, RejoinFullResync: fullResync})
	if err != nil {
		return out, err
	}
	defer c.Close()
	client := c.Client()

	typ, err := chaos.LedgerType()
	if err != nil {
		return out, err
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		err = c.RefreshClientConfig()
		if err == nil && len(client.Directory().Groups()) > 0 {
			if err = client.RegisterType(typ); err == nil {
				break
			}
		}
		if time.Now().After(deadline) {
			return out, fmt.Errorf("cluster never became configurable: %v", err)
		}
		time.Sleep(25 * time.Millisecond)
	}

	// Base store: storeObjects ledgers, one entry each, written through
	// the replicated path (SyncWrites on — group commit amortizes).
	if err := populateLedgers(client, storeObjects); err != nil {
		return out, err
	}

	// Crash a backup and let the failure detector evict it.
	pi, err := c.PrimaryIndex()
	if err != nil {
		return out, err
	}
	bi := (pi + 1) % c.Nodes()
	if err := c.Kill(bi); err != nil {
		return out, err
	}
	if err := c.WaitEvicted(bi, 10*time.Second); err != nil {
		return out, err
	}

	// Downtime divergence: one append to each of the first downtimeWrites
	// objects. Retried because the surviving replicas' views settle
	// asynchronously after the eviction.
	for i := 0; i < downtimeWrites; i++ {
		id := core.ObjectID(i%storeObjects + 1)
		if err := appendRetry(client, id, int64(1_000_000+i)); err != nil {
			return out, fmt.Errorf("downtime write %d: %w", i, err)
		}
	}

	// Restart and measure the rejoin.
	if err := c.Restart(bi); err != nil {
		return out, err
	}
	if err := c.WaitBackup(bi, 60*time.Second); err != nil {
		return out, err
	}
	deadline = time.Now().Add(10 * time.Second)
	for c.Node(bi).RecoveryState() != recovery.StateMember {
		if time.Now().After(deadline) {
			return out, fmt.Errorf("node %d never reached member state", bi)
		}
		time.Sleep(10 * time.Millisecond)
	}
	st := c.Node(bi).RecoveryStatus()
	out.RejoinSeconds = st.LastRejoinSeconds
	out.BytesStreamed = st.BytesStreamed
	out.RangesDiverged = st.RangesDiverged
	out.ChunksApplied = st.ChunksApplied
	out.Attempts = st.Attempts
	return out, nil
}

// populateLedgers creates n ledgers and appends one entry to each, in
// parallel so WAL group commit amortizes the fsyncs.
func populateLedgers(client *cluster.Client, n int) error {
	const workers = 8
	jobs := make(chan int, workers)
	errs := make(chan error, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				id := core.ObjectID(i + 1)
				// Retried: routing views settle asynchronously right
				// after the cluster comes up.
				deadline := time.Now().Add(15 * time.Second)
				for {
					if err := client.CreateObject("Ledger", id); err == nil {
						break
					} else if time.Now().After(deadline) {
						errs <- fmt.Errorf("create %d: %w", id, err)
						return
					}
					time.Sleep(25 * time.Millisecond)
				}
				if err := appendRetry(client, id, int64(i)); err != nil {
					errs <- fmt.Errorf("append %d: %w", id, err)
					return
				}
			}
		}()
	}
	var sendErr error
	for i := 0; i < n; i++ {
		select {
		case sendErr = <-errs:
		case jobs <- i:
			continue
		}
		break
	}
	close(jobs)
	wg.Wait()
	if sendErr != nil {
		return sendErr
	}
	select {
	case err := <-errs:
		return err
	default:
		return nil
	}
}

// appendRetry retries one ledger append through the client until it is
// acknowledged (reconfiguration windows reject writes transiently).
func appendRetry(client *cluster.Client, id core.ObjectID, v int64) error {
	deadline := time.Now().Add(10 * time.Second)
	for {
		_, err := client.Invoke(id, "append", [][]byte{core.I64Bytes(v)})
		if err == nil {
			return nil
		}
		if time.Now().After(deadline) {
			return err
		}
		time.Sleep(25 * time.Millisecond)
	}
}

// RunRecovery sweeps rejoin cost over (store size × divergence × digest
// mode) and writes results/BENCH_recovery.json. An empty outPath skips
// the artifact.
func RunRecovery(opts Options, outPath string, w io.Writer) (*RecoveryReport, error) {
	rep := &RecoveryReport{
		GeneratedBy:    "make bench-recovery",
		Nodes:          3,
		StoreObjects:   recoveryStoreSizes,
		DowntimeWrites: recoveryDivergences,
	}
	if w != nil {
		fmt.Fprintln(w, "Recovery: backup crash, downtime writes, anti-entropy rejoin (digest diff vs full resync)")
	}
	// Indexed by (mode, store, divergence) for the headline ratios.
	bytesAt := make(map[string]uint64)
	for _, fullResync := range []bool{false, true} {
		for _, storeObjects := range recoveryStoreSizes {
			for _, div := range recoveryDivergences {
				p, err := runRecoveryPoint(opts, fullResync, storeObjects, div)
				if err != nil {
					return nil, fmt.Errorf("bench: recovery %s/%d/%d: %w", p.Mode, storeObjects, div, err)
				}
				rep.Results = append(rep.Results, p)
				bytesAt[fmt.Sprintf("%s/%d/%d", p.Mode, storeObjects, div)] = p.BytesStreamed
				if w != nil {
					fmt.Fprintf(w, "  %-6s store=%-5d diverged=%-4d rejoin=%7.3fs bytes=%-9d ranges=%-5d chunks=%-4d attempts=%d\n",
						p.Mode, p.StoreObjects, p.DowntimeWrites, p.RejoinSeconds,
						p.BytesStreamed, p.RangesDiverged, p.ChunksApplied, p.Attempts)
				}
			}
		}
	}

	small, large := recoveryStoreSizes[0], recoveryStoreSizes[len(recoveryStoreSizes)-1]
	minDiv := recoveryDivergences[0]
	if b := bytesAt[fmt.Sprintf("digest/%d/%d", small, minDiv)]; b > 0 {
		rep.DigestStoreScalingBytes = float64(bytesAt[fmt.Sprintf("digest/%d/%d", large, minDiv)]) / float64(b)
	}
	if b := bytesAt[fmt.Sprintf("digest/%d/%d", large, minDiv)]; b > 0 {
		rep.FullOverDigestBytes = float64(bytesAt[fmt.Sprintf("full/%d/%d", large, minDiv)]) / float64(b)
	}
	if w != nil {
		fmt.Fprintf(w, "  digest bytes, %dx store growth at fixed divergence: %.2fx (1.0 = divergence-bound)\n",
			large/small, rep.DigestStoreScalingBytes)
		fmt.Fprintf(w, "  full-resync over digest bytes (store=%d, diverged=%d): %.1fx\n",
			large, minDiv, rep.FullOverDigestBytes)
	}

	if outPath != "" {
		if err := writeRecoveryReport(rep, outPath); err != nil {
			return nil, err
		}
	}
	return rep, nil
}

// writeRecoveryReport stores the report as indented JSON.
func writeRecoveryReport(rep *RecoveryReport, path string) error {
	if dir := filepath.Dir(path); dir != "." && dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return err
		}
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
