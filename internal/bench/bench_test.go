package bench

import (
	"fmt"
	"os"
	"testing"
	"time"

	"lambdastore/internal/workload"
)

// smallOptions keeps harness tests quick.
func smallOptions(t *testing.T) Options {
	t.Helper()
	// Keep the client/account ratio near the paper's (100 clients on
	// 10,000 accounts = 1% collision chance): tiny populations put the
	// aggregated design's per-object serialization under far more
	// contention than the paper's setup ever sees.
	return Options{
		Accounts:       1200,
		Concurrency:    12,
		OpsPerWorkload: 400,
		Replicas:       3,
		CacheEntries:   8 << 10,
		DataRoot:       t.TempDir(),
	}
}

func TestComparisonShapeMatchesPaper(t *testing.T) {
	if testing.Short() {
		t.Skip("harness test is slow")
	}
	// The shape assertions compare wall-clock throughput of two back-to-back
	// runs while `go test ./...` executes other packages (including the
	// chaos suite's fsync-heavy failover schedules) on the same machine.
	// A load burst that lands on one run but not the other can violate the
	// shape without the shape being wrong, so one re-measurement is allowed
	// before failing; genuine regressions fail both rounds.
	var problems []string
	for round := 0; round < 2; round++ {
		opts := smallOptions(t)
		agg, dis, err := RunComparison(opts)
		if err != nil {
			t.Fatal(err)
		}
		PrintFigure1(os.Stderr, agg, dis)
		PrintFigure2(os.Stderr, agg, dis)
		problems = comparisonShapeProblems(t, agg, dis)
		if len(problems) == 0 {
			return
		}
		t.Logf("round %d: %d shape violations (re-measuring): %v", round, len(problems), problems)
	}
	for _, p := range problems {
		t.Error(p)
	}
}

// comparisonShapeProblems checks the paper-shape assertions and returns the
// violations; hard errors (failed ops) still fail the test immediately.
func comparisonShapeProblems(t *testing.T, agg, dis *RetwisResults) []string {
	t.Helper()
	var problems []string
	for _, wl := range workload.Workloads {
		a := agg.Results[wl]
		d := dis.Results[wl]
		if a.Errors > 0 || d.Errors > 0 {
			t.Fatalf("%s: errors agg=%d dis=%d", wl, a.Errors, d.Errors)
		}
		if a.Ops == 0 || d.Ops == 0 {
			t.Fatalf("%s: zero ops", wl)
		}
		if raceEnabled {
			continue // timing is meaningless under the race detector
		}
		// The paper's headline: aggregated wins on throughput and median
		// latency. Follow is the exception on this substrate: it is so
		// cheap that a loopback single-host run is CPU-bound, not
		// network-bound, leaving the two architectures at parity within
		// noise (the paper's 4.9x Follow gap is a network effect, isolated
		// by ablation A5). Assert strict wins for the data-heavy
		// workloads and a parity band for Follow.
		if wl == workload.Follow {
			if a.Throughput < 0.7*d.Throughput {
				problems = append(problems, fmt.Sprintf("Follow: aggregated throughput %.1f far below disaggregated %.1f",
					a.Throughput, d.Throughput))
			}
			continue
		}
		if a.Throughput <= d.Throughput {
			problems = append(problems, fmt.Sprintf("%s: aggregated throughput %.1f <= disaggregated %.1f (paper shape violated)",
				wl, a.Throughput, d.Throughput))
		}
		if a.Latency.Median >= d.Latency.Median {
			problems = append(problems, fmt.Sprintf("%s: aggregated median %v >= disaggregated %v",
				wl, a.Latency.Median, d.Latency.Median))
		}
	}
	if raceEnabled {
		return problems
	}
	// Post is the slowest workload on both systems (multi-call jobs).
	if agg.Results[workload.Post].Throughput >= agg.Results[workload.Follow].Throughput {
		problems = append(problems, "Post should be slower than Follow on aggregated")
	}
	return problems
}

func TestTable1Bands(t *testing.T) {
	if testing.Short() {
		t.Skip("harness test is slow")
	}
	opts := smallOptions(t)
	opts.OpsPerWorkload = 200
	rows, err := RunTable1(opts)
	if err != nil {
		t.Fatal(err)
	}
	PrintTable1(os.Stderr, rows)
	if len(rows) != 4 {
		t.Fatalf("expected 4 rows, got %d", len(rows))
	}
	// Ordering: custom < lambdaobjects < serverless warm < serverless cold.
	// (Skipped under the race detector, where timing is meaningless.)
	if !raceEnabled {
		for i := 1; i < len(rows); i++ {
			if rows[i].Median < rows[i-1].Median {
				t.Errorf("Table 1 ordering violated: %s (%v) < %s (%v)",
					rows[i].System, rows[i].Median, rows[i-1].System, rows[i-1].Median)
			}
		}
	}
	// Cold starts must be dominated by the provisioning penalty.
	if rows[3].Median < 100*time.Millisecond {
		t.Errorf("cold median %v below the provisioning penalty", rows[3].Median)
	}
}

func TestAblationCache(t *testing.T) {
	if testing.Short() {
		t.Skip("harness test is slow")
	}
	opts := smallOptions(t)
	res, err := RunAblationCache(opts)
	if err != nil {
		t.Fatal(err)
	}
	PrintAblation(os.Stderr, "A1: consistent result cache (GetTimeline)", res, nil)
	if len(res) != 2 {
		t.Fatalf("rows = %d", len(res))
	}
	// Caching must not hurt; with a read-heavy closed loop it should help.
	off, on := res[0].Result, res[1].Result
	if on.Throughput < off.Throughput*0.8 {
		t.Errorf("cache=on throughput %.1f far below cache=off %.1f", on.Throughput, off.Throughput)
	}
}

func TestAblationReplication(t *testing.T) {
	if testing.Short() {
		t.Skip("harness test is slow")
	}
	opts := smallOptions(t)
	res, err := RunAblationReplication(opts)
	if err != nil {
		t.Fatal(err)
	}
	PrintAblation(os.Stderr, "A2: replication factor (Follow)", res, nil)
	if len(res) != 3 {
		t.Fatalf("rows = %d", len(res))
	}
	// More replicas must not be faster than no replication.
	if res[2].Result.Throughput > res[0].Result.Throughput*1.3 {
		t.Errorf("3 replicas (%.1f) implausibly faster than 1 (%.1f)",
			res[2].Result.Throughput, res[0].Result.Throughput)
	}
}

func TestAblationSchedCorrectness(t *testing.T) {
	if testing.Short() {
		t.Skip("harness test is slow")
	}
	opts := smallOptions(t)
	opts.OpsPerWorkload = 200
	res, probes, err := RunAblationSched(opts)
	if err != nil {
		t.Fatal(err)
	}
	PrintAblation(os.Stderr, "A4: per-object scheduling (Follow)", res, ProbeNotes(probes))
	if len(res) != 2 || len(probes) != 2 {
		t.Fatalf("rows=%d probes=%d", len(res), len(probes))
	}
	// Assert the invariant, not an exact survivor count: individual probes
	// may fail under full-suite load (admission timeouts), and with the
	// scheduler off the number of lost updates depends on interleaving.
	for _, p := range probes {
		acked := int64(p.Issued - p.Failed)
		if p.Failed >= p.Issued {
			t.Errorf("%s: all %d probes failed", p.Config, p.Issued)
			continue
		}
		if p.Survived <= 0 {
			t.Errorf("%s: no updates survived (%d issued, %d failed)", p.Config, p.Issued, p.Failed)
		}
		if p.Config == "scheduler=on" && p.Survived < acked {
			t.Errorf("scheduler=on lost updates: %d survived < %d acknowledged", p.Survived, acked)
		}
		if p.Survived > int64(p.Issued) {
			t.Errorf("%s: %d survived exceeds %d issued", p.Config, p.Survived, p.Issued)
		}
	}
}

func TestFuelAblation(t *testing.T) {
	metered, unmetered, err := FuelAblation(2_000_000)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("A3: metered=%v unmetered=%v overhead=%.2fx", metered, unmetered,
		float64(metered)/float64(unmetered))
	if metered <= 0 || unmetered <= 0 {
		t.Fatal("bogus timings")
	}
}

func TestNetDelayAblation(t *testing.T) {
	if testing.Short() {
		t.Skip("harness test is slow")
	}
	opts := smallOptions(t)
	opts.Accounts = 100
	opts.OpsPerWorkload = 60
	opts.Concurrency = 8
	out, err := RunAblationNetDelay(opts, []time.Duration{0, 200 * time.Microsecond})
	if err != nil {
		t.Fatal(err)
	}
	for delay, pair := range out {
		t.Logf("A5 delay=%v: agg %v p50, dis %v p50", delay,
			pair[0].Latency.Median, pair[1].Latency.Median)
	}
	// With injected delay, the disaggregated design pays per storage op and
	// must be slower than aggregated by a larger absolute margin.
	zero := out[0]
	delayed := out[200*time.Microsecond]
	gapZero := zero[1].Latency.Median - zero[0].Latency.Median
	gapDelayed := delayed[1].Latency.Median - delayed[0].Latency.Median
	if gapDelayed <= gapZero {
		t.Errorf("network delay did not widen the gap: %v -> %v", gapZero, gapDelayed)
	}
}
