// The observability-overhead benchmark: the same GetTimeline workload the
// read-path sweep uses (all fast-path layers on), run under three telemetry
// configurations — everything off, metrics only, metrics plus per-request
// span recording. The claim under test is that the instrumentation added for
// cluster-wide tail-latency observability stays off the critical path: the
// fully-instrumented configuration must cost only a few percent of
// throughput versus a node with no telemetry at all, and the disabled paths
// must not allocate (guarded separately by TestDisabledTelemetryZeroAlloc).
package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"lambdastore/internal/workload"
)

// obsClients are the closed-loop client counts swept per mode.
var obsClients = []int{8, 64}

// obsRepeats is how many times each (mode, clients) point boots and runs;
// the best throughput is kept. Peak throughput is far less noisy than a
// single short run, and the overhead comparison needs the noise floor well
// under the 5% acceptance bar.
const obsRepeats = 3

// obsMode is one telemetry configuration of the sweep.
type obsMode struct {
	name  string
	apply func(*Options)
}

var obsModes = []obsMode{
	{"off", func(o *Options) { o.DisableMetrics = true; o.Tracing = false }},
	{"metrics", func(o *Options) { o.DisableMetrics = false; o.Tracing = false }},
	{"metrics+tracing", func(o *Options) { o.DisableMetrics = false; o.Tracing = true }},
}

// ObsReport is the results/BENCH_observability.json document. Results reuse
// ReadPathPoint (Config holds the mode name) so the two benchmarks stay
// directly comparable.
type ObsReport struct {
	GeneratedBy string          `json:"generated_by"`
	Workload    string          `json:"workload"`
	Accounts    int             `json:"accounts"`
	Ops         int             `json:"ops"`
	Replicas    int             `json:"replicas"`
	Clients     []int           `json:"clients"`
	Results     []ReadPathPoint `json:"results"`
	// Overhead of each enabled mode versus the telemetry-off baseline at
	// the highest client count, as a percent of baseline throughput
	// (positive = slower than baseline). The acceptance bar is
	// metrics+tracing under 5%.
	OverheadMetricsPct float64 `json:"overhead_metrics_pct"`
	OverheadTracingPct float64 `json:"overhead_metrics_tracing_pct"`
}

// RunObservability sweeps the telemetry modes over the hot GetTimeline
// workload. An empty outPath skips the JSON artifact.
func RunObservability(opts Options, outPath string, w io.Writer) (*ObsReport, error) {
	if opts.Accounts > 64 {
		opts.Accounts = 64
	}
	if opts.OpsPerWorkload < 3000 {
		opts.OpsPerWorkload = 3000
	}

	rep := &ObsReport{
		GeneratedBy: "make bench-obs",
		Workload:    workload.GetTimeline,
		Accounts:    opts.Accounts,
		Ops:         opts.OpsPerWorkload,
		Replicas:    opts.Replicas,
		Clients:     obsClients,
	}

	if w != nil {
		fmt.Fprintln(w, "Observability overhead: Retwis GetTimeline, hot account set (telemetry modes)")
	}
	maxClients := obsClients[len(obsClients)-1]
	thrAtMax := make(map[string]float64, len(obsModes))
	for _, mode := range obsModes {
		o := opts
		mode.apply(&o)
		for _, clients := range obsClients {
			var p ReadPathPoint
			for try := 0; try < obsRepeats; try++ {
				q, err := runReadPathPoint(o, mode.name, clients)
				if err != nil {
					return nil, fmt.Errorf("bench: observability %s/%d: %w", mode.name, clients, err)
				}
				if try == 0 || q.Throughput > p.Throughput {
					p = q
				}
			}
			rep.Results = append(rep.Results, p)
			if clients == maxClients {
				thrAtMax[mode.name] = p.Throughput
			}
			if w != nil {
				fmt.Fprintf(w, "  %-16s c=%-3d thr=%9.1f ops/s  p50=%6dus p99=%6dus  allocs/op=%.0f errs=%d\n",
					p.Config, p.Clients, p.Throughput, p.P50Micros, p.P99Micros, p.AllocsPerOp, p.Errors)
			}
		}
	}
	if base := thrAtMax["off"]; base > 0 {
		rep.OverheadMetricsPct = 100 * (base - thrAtMax["metrics"]) / base
		rep.OverheadTracingPct = 100 * (base - thrAtMax["metrics+tracing"]) / base
	}
	if w != nil {
		fmt.Fprintf(w, "  overhead at %d clients vs telemetry-off: metrics %.1f%%, metrics+tracing %.1f%%\n",
			maxClients, rep.OverheadMetricsPct, rep.OverheadTracingPct)
	}

	if outPath != "" {
		if err := writeObsReport(rep, outPath); err != nil {
			return nil, err
		}
	}
	return rep, nil
}

// writeObsReport stores the report as indented JSON.
func writeObsReport(rep *ObsReport, path string) error {
	if dir := filepath.Dir(path); dir != "." && dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return err
		}
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
