package telemetry

import (
	"reflect"
	"sync"
	"testing"
	"time"
)

// TestQuantileBucketBoundaries checks that quantiles land in the bucket the
// recorded value maps to: the reported value is the bucket's upper-bound
// representative, so it must be >= the true value and within one sub-bucket
// width (1/bucketsPerOct relative error) above it.
func TestQuantileBucketBoundaries(t *testing.T) {
	values := []uint64{1, 2, 15, 16, 17, 100, 1000, 4095, 4096, 4097, 1 << 20}
	for _, us := range values {
		var h Histogram
		for i := 0; i < 100; i++ {
			h.Record(time.Duration(us) * time.Microsecond)
		}
		d := h.Data()
		for _, q := range []float64{0, 0.5, 0.99, 0.999, 1} {
			got := uint64(d.Quantile(q).Microseconds())
			if got < us {
				t.Errorf("value %dus q=%v: quantile %dus below recorded value", us, q, got)
			}
			upper := float64(us) * (1 + 2.0/bucketsPerOct)
			if float64(got) > upper+1 {
				t.Errorf("value %dus q=%v: quantile %dus exceeds bucket bound %.1fus", us, q, got, upper)
			}
		}
		// The quantile from HistData must agree with the live histogram's.
		if d.Quantile(0.99) != h.Quantile(0.99) {
			t.Errorf("value %dus: HistData p99 %v != Histogram p99 %v", us, d.Quantile(0.99), h.Quantile(0.99))
		}
	}
}

// TestQuantileOrdering checks p50 <= p99 <= p999 on a skewed distribution
// and that each quantile separates the distribution where expected.
func TestQuantileOrdering(t *testing.T) {
	var h Histogram
	for i := 0; i < 990; i++ {
		h.Record(1 * time.Millisecond)
	}
	for i := 0; i < 10; i++ {
		h.Record(100 * time.Millisecond)
	}
	d := h.Data()
	if d.Count != 1000 {
		t.Fatalf("count = %d", d.Count)
	}
	p50, p99, p999 := d.Quantile(0.5), d.Quantile(0.99), d.Quantile(0.999)
	if p50 > p99 || p99 > p999 {
		t.Fatalf("quantiles not monotone: p50=%v p99=%v p999=%v", p50, p99, p999)
	}
	if p50 > 2*time.Millisecond {
		t.Errorf("p50 = %v, want ~1ms", p50)
	}
	if p999 < 100*time.Millisecond {
		t.Errorf("p999 = %v, want >= 100ms (the outlier bucket)", p999)
	}
}

func histWith(samples []time.Duration, traces []uint64) HistData {
	var h Histogram
	for i, s := range samples {
		var tr uint64
		if i < len(traces) {
			tr = traces[i]
		}
		h.RecordTraced(s, tr)
	}
	return h.Data()
}

// TestMergeCommutativeAssociative checks merge(a,b) == merge(b,a) and
// merge(merge(a,b),c) == merge(a,merge(b,c)) including the derived fields
// and exemplars.
func TestMergeCommutativeAssociative(t *testing.T) {
	a := histWith([]time.Duration{time.Millisecond, 2 * time.Millisecond, 50 * time.Millisecond}, []uint64{0xa1, 0, 0xa3})
	b := histWith([]time.Duration{time.Millisecond, 100 * time.Millisecond}, []uint64{0xb1, 0xb2})
	c := histWith([]time.Duration{500 * time.Microsecond, 50 * time.Millisecond}, []uint64{0, 0xc2})

	ab, ba := a.Merge(b), b.Merge(a)
	if !reflect.DeepEqual(ab, ba) {
		t.Fatalf("merge not commutative:\nab=%+v\nba=%+v", ab, ba)
	}
	left, right := a.Merge(b).Merge(c), a.Merge(b.Merge(c))
	if !reflect.DeepEqual(left, right) {
		t.Fatalf("merge not associative:\n(ab)c=%+v\na(bc)=%+v", left, right)
	}
	if ab.Count != a.Count+b.Count {
		t.Errorf("merged count %d != %d+%d", ab.Count, a.Count, b.Count)
	}
	if ab.SumUs != a.SumUs+b.SumUs {
		t.Errorf("merged sum %d != %d+%d", ab.SumUs, a.SumUs, b.SumUs)
	}
	if ab.MaxUs != b.MaxUs {
		t.Errorf("merged max %d, want %d", ab.MaxUs, b.MaxUs)
	}
	// Both a and c put a traced sample in the 50ms bucket; the merge must
	// pick the lexicographically larger exemplar regardless of order.
	acIdx := bucketIndex(uint64((50 * time.Millisecond).Microseconds()))
	ac, ca := a.Merge(c), c.Merge(a)
	if ac.Exemplars[acIdx] != ca.Exemplars[acIdx] {
		t.Errorf("exemplar conflict not commutative: %q vs %q", ac.Exemplars[acIdx], ca.Exemplars[acIdx])
	}
}

// TestSubWindowDelta checks that Sub recovers the samples recorded between
// two snapshots.
func TestSubWindowDelta(t *testing.T) {
	var h Histogram
	for i := 0; i < 100; i++ {
		h.Record(time.Millisecond)
	}
	prev := h.Data()
	for i := 0; i < 10; i++ {
		h.Record(20 * time.Millisecond)
	}
	win := h.Data().Sub(prev)
	if win.Count != 10 {
		t.Fatalf("window count = %d, want 10", win.Count)
	}
	if got := win.Quantile(0.5); got < 20*time.Millisecond {
		t.Errorf("window p50 = %v, want >= 20ms (old 1ms samples must not leak in)", got)
	}
	if win.SumUs != 10*20000 {
		t.Errorf("window sum = %dus, want 200000us", win.SumUs)
	}
}

// TestRecordWithIntendedBackfill checks the coordinated-omission correction
// with a fixed clock: a stall spanning k intended intervals must record the
// total plus k-1 decreasing synthetic samples.
func TestRecordWithIntendedBackfill(t *testing.T) {
	base := time.Unix(1000, 0)

	// No omission: intended == start records exactly one sample.
	var h1 Histogram
	h1.recordWithIntendedAt(base.Add(10*time.Millisecond), base, base)
	if n := h1.Count(); n != 1 {
		t.Fatalf("no-omission count = %d, want 1", n)
	}
	if got := h1.Quantile(1); got < 10*time.Millisecond || got > 11*time.Millisecond {
		t.Fatalf("no-omission sample = %v, want ~10ms", got)
	}

	// Intended after start (scheduler ran early): also a single sample.
	var h2 Histogram
	h2.recordWithIntendedAt(base.Add(10*time.Millisecond), base, base.Add(time.Millisecond))
	if n := h2.Count(); n != 1 {
		t.Fatalf("intended-after-start count = %d, want 1", n)
	}

	// 100ms of omission before a 10ms service time: record total=110ms,
	// then backfill 100, 90, ..., 10 — eleven samples in all.
	var h3 Histogram
	start := base.Add(100 * time.Millisecond)
	h3.recordWithIntendedAt(start.Add(10*time.Millisecond), start, base)
	if n := h3.Count(); n != 11 {
		t.Fatalf("backfill count = %d, want 11", n)
	}
	if got := h3.Max(); got < 110*time.Millisecond {
		t.Errorf("backfill max = %v, want >= 110ms (the total intended-to-finish time)", got)
	}
	if got := h3.Quantile(0); got > 11*time.Millisecond {
		t.Errorf("backfill min = %v, want ~10ms (the last synthetic sample)", got)
	}

	// Zero-duration service time must not spin: interval clamps to 1us and
	// the backfill loop is bounded by maxBackfill.
	var h4 Histogram
	h4.recordWithIntendedAt(base.Add(time.Second), base.Add(time.Second), base)
	if n := h4.Count(); n == 0 || n > maxBackfill+1 {
		t.Fatalf("zero-duration backfill count = %d, want in [1, %d]", n, maxBackfill+1)
	}
}

// TestExemplarRecorded checks that a traced observation leaves its trace ID
// on the bucket it landed in, and untraced observations do not.
func TestExemplarRecorded(t *testing.T) {
	var h Histogram
	h.Record(time.Millisecond)
	h.RecordTraced(50*time.Millisecond, 0xdeadbeef)
	h.RecordTraced(time.Millisecond, 0) // untraced: no exemplar
	d := h.Data()
	idx := bucketIndex(uint64((50 * time.Millisecond).Microseconds()))
	if d.Exemplars[idx] != "00000000deadbeef" {
		t.Fatalf("exemplar = %q, want 00000000deadbeef (exemplars: %v)", d.Exemplars[idx], d.Exemplars)
	}
	if len(d.Exemplars) != 1 {
		t.Fatalf("exemplars = %v, want only the traced bucket", d.Exemplars)
	}
}

// TestRegistrySnapshotWindows checks that Snapshot reports cumulative and
// windowed views and rotates the window once it has run long enough.
func TestRegistrySnapshotWindows(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("op")
	c := r.Counter("ops")
	for i := 0; i < 50; i++ {
		h.Record(time.Millisecond)
		c.Inc()
	}

	// Let the first window run past its 1ms length so s1 rotates it.
	time.Sleep(2 * time.Millisecond)
	s1 := r.Snapshot(time.Millisecond, map[string]uint64{"extern": 100})
	if s1.Histograms["op"].Cumulative.Count != 50 || s1.Histograms["op"].Window.Count != 50 {
		t.Fatalf("first snapshot: %+v", s1.Histograms["op"])
	}
	if s1.Counters["ops"].Total != 50 || s1.Counters["ops"].RatePerSec <= 0 {
		t.Fatalf("first counter snap: %+v", s1.Counters["ops"])
	}
	if s1.Counters["extern"].Total != 100 {
		t.Fatalf("extra counter not folded in: %+v", s1.Counters)
	}

	// The 1ms window above has elapsed, so s1 rotated it. New samples land
	// in the fresh window only.
	time.Sleep(2 * time.Millisecond)
	for i := 0; i < 7; i++ {
		h.Record(30 * time.Millisecond)
		c.Inc()
	}
	s2 := r.Snapshot(time.Millisecond, map[string]uint64{"extern": 104})
	hw := s2.Histograms["op"]
	if hw.Cumulative.Count != 57 {
		t.Fatalf("cumulative count = %d, want 57", hw.Cumulative.Count)
	}
	if hw.Window.Count != 7 {
		t.Fatalf("window count = %d, want 7 (window did not rotate)", hw.Window.Count)
	}
	if got := hw.Window.Quantile(0.5); got < 30*time.Millisecond {
		t.Errorf("window p50 = %v, want >= 30ms", got)
	}
	if s2.Counters["ops"].Total != 57 {
		t.Errorf("counter total = %d, want 57", s2.Counters["ops"].Total)
	}
	if s2.Counters["extern"].Total != 104 {
		t.Errorf("extern total = %d, want 104", s2.Counters["extern"].Total)
	}
	if s2.WindowSecs <= 0 {
		t.Errorf("window secs = %v", s2.WindowSecs)
	}
}

// TestMergeSnapshots checks cross-node snapshot aggregation: counters add,
// rates sum, gauges add, histograms merge, window is the minimum.
func TestMergeSnapshots(t *testing.T) {
	mk := func(n uint64, win float64) RegistrySnapshot {
		var h Histogram
		for i := uint64(0); i < n; i++ {
			h.Record(time.Millisecond)
		}
		d := h.Data()
		return RegistrySnapshot{
			WindowSecs: win,
			Histograms: map[string]HistWindow{"op": {Cumulative: d, Window: d}},
			Counters:   map[string]CounterSnap{"ops": {Total: n, RatePerSec: float64(n) / win}},
			Gauges:     map[string]int64{"inflight": int64(n)},
		}
	}
	m := MergeSnapshots([]RegistrySnapshot{mk(10, 10), mk(30, 5)})
	if m.Histograms["op"].Window.Count != 40 {
		t.Errorf("merged window count = %d, want 40", m.Histograms["op"].Window.Count)
	}
	if m.Counters["ops"].Total != 40 {
		t.Errorf("merged total = %d, want 40", m.Counters["ops"].Total)
	}
	if got := m.Counters["ops"].RatePerSec; got != 10.0/10+30.0/5 {
		t.Errorf("merged rate = %v, want 7", got)
	}
	if m.Gauges["inflight"] != 40 {
		t.Errorf("merged gauge = %d, want 40", m.Gauges["inflight"])
	}
	if m.WindowSecs != 5 {
		t.Errorf("merged window = %v, want 5 (minimum)", m.WindowSecs)
	}
}

// TestConcurrentRecordSnapshot hammers one registry with recorders while
// snapshotting; run under -race this is the data-race guard, and the final
// snapshot must balance exactly.
func TestConcurrentRecordSnapshot(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("op")
	c := r.Counter("ops")
	const workers = 4
	const perWorker = 5000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				h.RecordTraced(time.Duration(i%1000)*time.Microsecond, uint64(w*perWorker+i))
				c.Inc()
			}
		}(w)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 200; i++ {
			s := r.Snapshot(time.Millisecond, nil)
			hw := s.Histograms["op"]
			// Count is derived from the buckets, so it can never exceed
			// what has been recorded, and windows never go negative.
			if hw.Cumulative.Count > workers*perWorker {
				t.Errorf("cumulative count %d > recorded %d", hw.Cumulative.Count, workers*perWorker)
				return
			}
		}
	}()
	wg.Wait()
	<-done
	final := r.Snapshot(time.Millisecond, nil)
	if got := final.Histograms["op"].Cumulative.Count; got != workers*perWorker {
		t.Fatalf("final count = %d, want %d", got, workers*perWorker)
	}
	if got := final.Counters["ops"].Total; got != workers*perWorker {
		t.Fatalf("final counter = %d, want %d", got, workers*perWorker)
	}
}

// TestDisabledTelemetryZeroAlloc is the guard for the "telemetry off costs
// nothing" claim: a nil tracer's span lifecycle and the untraced RecordTraced
// path must not allocate.
func TestDisabledTelemetryZeroAlloc(t *testing.T) {
	var tr *Tracer // nil: permanently disabled
	ctx := SpanContext{}
	if n := testing.AllocsPerRun(1000, func() {
		sp := tr.StartSpan(ctx, "invoke")
		sp.Finish()
	}); n != 0 {
		t.Errorf("disabled tracer StartSpan/Finish allocates %.1f/op", n)
	}
	var h Histogram
	if n := testing.AllocsPerRun(1000, func() {
		h.RecordTraced(time.Millisecond, 0)
	}); n != 0 {
		t.Errorf("untraced RecordTraced allocates %.1f/op", n)
	}
	if n := testing.AllocsPerRun(1000, func() {
		h.Record(time.Millisecond)
	}); n != 0 {
		t.Errorf("Record allocates %.1f/op", n)
	}
}
