package telemetry

import (
	"sync"
	"testing"
	"time"
)

func TestHistogramBasics(t *testing.T) {
	h := &Histogram{}
	if h.Count() != 0 || h.Quantile(0.5) != 0 {
		t.Fatal("zero-value histogram not empty")
	}
	for i := 1; i <= 1000; i++ {
		h.Record(time.Duration(i) * time.Millisecond)
	}
	if h.Count() != 1000 {
		t.Fatalf("count = %d", h.Count())
	}
	// Median should be ~500ms within bucket resolution (~4.4%).
	med := h.Quantile(0.5)
	if med < 450*time.Millisecond || med > 560*time.Millisecond {
		t.Fatalf("median = %v", med)
	}
	p99 := h.Quantile(0.99)
	if p99 < 900*time.Millisecond || p99 > 1100*time.Millisecond {
		t.Fatalf("p99 = %v", p99)
	}
	if h.Max() < 999*time.Millisecond {
		t.Fatalf("max = %v", h.Max())
	}
	mean := h.Mean()
	if mean < 450*time.Millisecond || mean > 550*time.Millisecond {
		t.Fatalf("mean = %v", mean)
	}
}

func TestQuantileBounds(t *testing.T) {
	h := &Histogram{}
	h.Record(time.Millisecond)
	if h.Quantile(-1) == 0 || h.Quantile(2) == 0 {
		t.Fatal("clamped quantiles must return the sample")
	}
}

func TestHistogramConcurrentRecord(t *testing.T) {
	h := &Histogram{}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				h.Record(time.Duration(i%100+1) * time.Microsecond)
			}
		}()
	}
	wg.Wait()
	if h.Count() != 8000 {
		t.Fatalf("count = %d", h.Count())
	}
}

func TestSnapshotString(t *testing.T) {
	h := &Histogram{}
	h.Record(5 * time.Millisecond)
	s := h.Snapshot()
	if s.Count != 1 || s.String() == "" {
		t.Fatalf("snapshot %+v", s)
	}
}

func TestCounter(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(9)
	if c.Value() != 10 {
		t.Fatalf("counter = %d", c.Value())
	}
}

func TestRegistry(t *testing.T) {
	r := NewRegistry()
	h1 := r.Histogram("lat")
	h2 := r.Histogram("lat")
	if h1 != h2 {
		t.Fatal("histogram not memoized")
	}
	r.Histogram("other")
	r.Counter("ops").Inc()
	names := r.HistogramNames()
	if len(names) != 2 || names[0] != "lat" || names[1] != "other" {
		t.Fatalf("names = %v", names)
	}
	if cn := r.CounterNames(); len(cn) != 1 || cn[0] != "ops" {
		t.Fatalf("counters = %v", cn)
	}
}

func TestThroughput(t *testing.T) {
	tp := NewThroughput()
	for i := 0; i < 100; i++ {
		tp.Done()
	}
	if tp.Ops() != 100 {
		t.Fatalf("ops = %d", tp.Ops())
	}
	if tp.PerSecond() <= 0 {
		t.Fatal("rate must be positive")
	}
}

func TestBucketMonotonicity(t *testing.T) {
	// Larger latencies must never land in smaller buckets.
	prev := -1
	for us := uint64(1); us < 1e9; us *= 3 {
		idx := bucketIndex(us)
		if idx < prev {
			t.Fatalf("bucketIndex(%d) = %d < %d", us, idx, prev)
		}
		prev = idx
	}
}
