// Coordinated-omission-safe recording, mergeable histogram snapshots, and
// registry-level sliding windows.
//
// Three concerns live here because they share the bucket layout:
//
//   - RecordWithIntended backfills the samples a stalled closed-loop client
//     never issued (HdrHistogram's expected-interval correction), so windowed
//     p99/p999 reflect what an open-loop arrival process would have seen.
//   - HistData is the wire form of a histogram: a sparse copy of the bucket
//     array plus derived quantiles. Because every histogram in the system
//     shares one bucket layout, HistData merge is plain bucket addition —
//     commutative and associative by construction — which is what lets the
//     coordinator roll node snapshots up into group and cluster views.
//   - Registry.Snapshot reports each instrument twice, cumulative and over a
//     sliding window, so rates and windowed percentiles don't have to be
//     eyeballed from two scrapes.
package telemetry

import (
	"fmt"
	"sort"
	"time"
)

// maxBackfill bounds the synthetic samples one RecordWithIntended call may
// add, so a single multi-second stall cannot spin the recorder.
const maxBackfill = 4096

// RecordWithIntended records the latency of an operation that finished now,
// started at start, but was *intended* to start at intendedStart (the slot an
// open-loop arrival schedule assigned to it). The full intended-to-finish
// time is recorded, and the coordinator-omission gap is backfilled with
// synthetic samples at the actual service time interval, HdrHistogram-style:
// if one 100ms stall absorbed ten 10ms operations, ten degraded samples are
// recorded, not one.
func (h *Histogram) RecordWithIntended(start, intendedStart time.Time) {
	h.recordWithIntendedAt(time.Now(), start, intendedStart)
}

// recordWithIntendedAt is RecordWithIntended with an explicit clock for
// deterministic tests.
func (h *Histogram) recordWithIntendedAt(end, start, intended time.Time) {
	actual := end.Sub(start)
	if actual < 0 {
		actual = 0
	}
	if !intended.Before(start) {
		h.Record(actual)
		return
	}
	total := end.Sub(intended)
	h.Record(total)
	interval := actual
	if interval <= 0 {
		interval = time.Microsecond
	}
	for v, n := total-interval, 0; v >= interval && n < maxBackfill; v, n = v-interval, n+1 {
		h.Record(v)
	}
}

// HistData is a point-in-time, mergeable histogram snapshot: the sparse
// bucket counts plus derived summary fields. All histograms share one bucket
// layout, so Merge is exact (no re-sampling error) and associative.
type HistData struct {
	Count  uint64 `json:"count"`
	SumUs  uint64 `json:"sum_us"`
	MaxUs  uint64 `json:"max_us"`
	P50Us  uint64 `json:"p50_us"`
	P99Us  uint64 `json:"p99_us"`
	P999Us uint64 `json:"p999_us"`
	// Buckets maps bucket index -> count for non-empty buckets.
	Buckets map[int]uint64 `json:"buckets,omitempty"`
	// Exemplars maps bucket index -> hex trace ID of a recent request that
	// landed in that bucket, linking a quantile spike to an assembled trace.
	Exemplars map[int]string `json:"exemplars,omitempty"`
}

// Data snapshots the histogram, including exemplars.
func (h *Histogram) Data() HistData {
	d := HistData{SumUs: h.sumUs.Load(), MaxUs: h.maxUs.Load()}
	for i := 0; i < bucketCount; i++ {
		if n := h.buckets[i].Load(); n > 0 {
			if d.Buckets == nil {
				d.Buckets = make(map[int]uint64)
			}
			d.Buckets[i] = n
		}
		if ex := h.exemplars[i].Load(); ex != 0 {
			if d.Exemplars == nil {
				d.Exemplars = make(map[int]string)
			}
			d.Exemplars[i] = fmt.Sprintf("%016x", ex)
		}
	}
	d.finalize()
	return d
}

// finalize recomputes Count and the derived quantile fields from the bucket
// counts. Count comes from the buckets (not the count field) so concurrent
// recording can never make quantile targets disagree with bucket contents.
func (d *HistData) finalize() {
	var total uint64
	for _, n := range d.Buckets {
		total += n
	}
	d.Count = total
	d.P50Us = d.quantileUs(0.5)
	d.P99Us = d.quantileUs(0.99)
	d.P999Us = d.quantileUs(0.999)
}

// sortedBuckets returns the non-empty bucket indexes in ascending order.
func (d HistData) sortedBuckets() []int {
	idx := make([]int, 0, len(d.Buckets))
	for i := range d.Buckets {
		idx = append(idx, i)
	}
	sort.Ints(idx)
	return idx
}

func (d HistData) quantileUs(q float64) uint64 {
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	var total uint64
	for _, n := range d.Buckets {
		total += n
	}
	if total == 0 {
		return 0
	}
	target := uint64(q * float64(total))
	if target >= total {
		target = total - 1
	}
	var seen uint64
	for _, i := range d.sortedBuckets() {
		seen += d.Buckets[i]
		if seen > target {
			return uint64(bucketValueUs(i))
		}
	}
	return d.MaxUs
}

// Quantile returns the latency at quantile q in [0,1].
func (d HistData) Quantile(q float64) time.Duration {
	return time.Duration(d.quantileUs(q)) * time.Microsecond
}

// Mean returns the mean latency.
func (d HistData) Mean() time.Duration {
	if d.Count == 0 {
		return 0
	}
	return time.Duration(d.SumUs/d.Count) * time.Microsecond
}

// Merge returns the union of two snapshots: bucket-wise addition, summed
// totals, max of maxima. Exemplar conflicts resolve to the lexicographically
// larger trace ID so Merge stays commutative.
func (d HistData) Merge(o HistData) HistData {
	out := HistData{
		SumUs: d.SumUs + o.SumUs,
		MaxUs: d.MaxUs,
	}
	if o.MaxUs > out.MaxUs {
		out.MaxUs = o.MaxUs
	}
	for i, n := range d.Buckets {
		if out.Buckets == nil {
			out.Buckets = make(map[int]uint64)
		}
		out.Buckets[i] += n
	}
	for i, n := range o.Buckets {
		if out.Buckets == nil {
			out.Buckets = make(map[int]uint64)
		}
		out.Buckets[i] += n
	}
	for i, ex := range d.Exemplars {
		if out.Exemplars == nil {
			out.Exemplars = make(map[int]string)
		}
		out.Exemplars[i] = ex
	}
	for i, ex := range o.Exemplars {
		if out.Exemplars == nil {
			out.Exemplars = make(map[int]string)
		}
		if cur, ok := out.Exemplars[i]; !ok || ex > cur {
			out.Exemplars[i] = ex
		}
	}
	out.finalize()
	return out
}

// Sub returns the samples recorded since prev was taken from the same
// histogram: bucket-wise subtraction. The windowed max is approximated by the
// highest non-empty delta bucket (the true max of the window is not
// recoverable from cumulative state). Exemplars carry over from the current
// snapshot.
func (d HistData) Sub(prev HistData) HistData {
	out := HistData{}
	for i, n := range d.Buckets {
		p := prev.Buckets[i]
		if n <= p {
			continue
		}
		if out.Buckets == nil {
			out.Buckets = make(map[int]uint64)
		}
		out.Buckets[i] = n - p
	}
	if d.SumUs > prev.SumUs {
		out.SumUs = d.SumUs - prev.SumUs
	}
	if idx := out.sortedBuckets(); len(idx) > 0 {
		out.MaxUs = uint64(bucketValueUs(idx[len(idx)-1]))
	}
	out.Exemplars = d.Exemplars
	out.finalize()
	return out
}

// CounterSnap is one counter in a registry snapshot: the cumulative total and
// the rate over the reported window.
type CounterSnap struct {
	Total      uint64  `json:"total"`
	RatePerSec float64 `json:"rate_per_sec"`
}

// HistWindow pairs the cumulative view of a histogram with the view over the
// current sliding window.
type HistWindow struct {
	Cumulative HistData `json:"cumulative"`
	Window     HistData `json:"window"`
}

// RegistrySnapshot is the JSON form of a registry: every histogram
// (cumulative + windowed), every counter (total + windowed rate), and every
// gauge. It is what the debug server serves and the coordinator merges.
type RegistrySnapshot struct {
	UnixNano   int64                  `json:"unix_nano"`
	WindowSecs float64                `json:"window_seconds"`
	Histograms map[string]HistWindow  `json:"histograms,omitempty"`
	Counters   map[string]CounterSnap `json:"counters,omitempty"`
	Gauges     map[string]int64       `json:"gauges,omitempty"`
}

// DefaultWindow is the sliding-window length used when a snapshot caller
// passes zero.
const DefaultWindow = 10 * time.Second

// Snapshot reports every instrument cumulatively and over a sliding window.
// The window state is kept in the registry: the first call measures from
// registry creation, and whenever the open window has run at least `window`
// long it is rotated, so the reported window length varies between window and
// 2x window under steady scraping. extra folds externally-tracked cumulative
// counters (e.g. node-level gauges that are really monotonic counts) into the
// counter section so they get windowed rates too.
func (r *Registry) Snapshot(window time.Duration, extra map[string]uint64) RegistrySnapshot {
	if window <= 0 {
		window = DefaultWindow
	}
	now := time.Now()

	r.mu.Lock()
	hists := make(map[string]*Histogram, len(r.histograms))
	for n, h := range r.histograms {
		hists[n] = h
	}
	ctrs := make(map[string]*Counter, len(r.counters))
	for n, c := range r.counters {
		ctrs[n] = c
	}
	gauges := make(map[string]*Gauge, len(r.gauges))
	for n, g := range r.gauges {
		gauges[n] = g
	}
	r.mu.Unlock()

	curHist := make(map[string]HistData, len(hists))
	for n, h := range hists {
		curHist[n] = h.Data()
	}
	curCtr := make(map[string]uint64, len(ctrs)+len(extra))
	for n, c := range ctrs {
		curCtr[n] = c.Value()
	}
	for n, v := range extra {
		curCtr[n] = v
	}

	r.winMu.Lock()
	start := r.winStart
	if start.IsZero() {
		start = r.created
	}
	elapsed := now.Sub(start)
	if elapsed < time.Millisecond {
		elapsed = time.Millisecond
	}
	secs := elapsed.Seconds()

	snap := RegistrySnapshot{
		UnixNano:   now.UnixNano(),
		WindowSecs: secs,
		Histograms: make(map[string]HistWindow, len(curHist)),
		Counters:   make(map[string]CounterSnap, len(curCtr)),
		Gauges:     make(map[string]int64, len(gauges)),
	}
	for n, cur := range curHist {
		snap.Histograms[n] = HistWindow{Cumulative: cur, Window: cur.Sub(r.winHist[n])}
	}
	for n, cur := range curCtr {
		delta := cur - r.winCtr[n]
		if cur < r.winCtr[n] {
			delta = 0
		}
		snap.Counters[n] = CounterSnap{Total: cur, RatePerSec: float64(delta) / secs}
	}
	for n, g := range gauges {
		snap.Gauges[n] = g.Value()
	}

	if elapsed >= window {
		r.winStart = now
		r.winHist = curHist
		r.winCtr = curCtr
	}
	r.winMu.Unlock()
	return snap
}

// MergeSnapshots folds several registry snapshots (typically one per node)
// into one: histograms merge bucket-wise, counter totals add and rates sum,
// gauges add (levels across nodes accumulate). The reported window is the
// minimum of the inputs' windows — the span over which every input
// contributed.
func MergeSnapshots(snaps []RegistrySnapshot) RegistrySnapshot {
	out := RegistrySnapshot{
		Histograms: make(map[string]HistWindow),
		Counters:   make(map[string]CounterSnap),
		Gauges:     make(map[string]int64),
	}
	for _, s := range snaps {
		if s.UnixNano > out.UnixNano {
			out.UnixNano = s.UnixNano
		}
		if out.WindowSecs == 0 || (s.WindowSecs > 0 && s.WindowSecs < out.WindowSecs) {
			out.WindowSecs = s.WindowSecs
		}
		for n, hw := range s.Histograms {
			prev := out.Histograms[n]
			out.Histograms[n] = HistWindow{
				Cumulative: prev.Cumulative.Merge(hw.Cumulative),
				Window:     prev.Window.Merge(hw.Window),
			}
		}
		for n, c := range s.Counters {
			prev := out.Counters[n]
			out.Counters[n] = CounterSnap{
				Total:      prev.Total + c.Total,
				RatePerSec: prev.RatePerSec + c.RatePerSec,
			}
		}
		for n, v := range s.Gauges {
			out.Gauges[n] += v
		}
	}
	return out
}
