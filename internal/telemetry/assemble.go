// Cross-node trace assembly. Each node retains only its own spans; this file
// stitches the spans fetched from every node of a cluster back into one tree,
// walks the critical path, and attributes the root's wall time to pipeline
// stages (rpc-wire, wal-fsync, repl-ship, vm-exec, cache-hit, ...). The
// rendering is shared by `lambdactl trace` and the integration tests.
package telemetry

import (
	"fmt"
	"sort"
	"strings"
	"time"
)

// TraceNode is one span with its resolved children.
type TraceNode struct {
	Span     Span
	Children []*TraceNode
}

// end returns the span's finish time in unix nanoseconds.
func (n *TraceNode) end() int64 { return n.Span.Start + int64(n.Span.Dur) }

// AssembledTrace is the cluster-wide view of one trace.
type AssembledTrace struct {
	Trace uint64
	// Roots are the top-level spans (parent missing or zero), ordered by
	// start time. A client-rooted invocation has one root per hop the
	// client issued.
	Roots []*TraceNode
	// Stages attributes critical-path wall time to named stages. The sum
	// over stages equals Total exactly: every instant of each root's
	// duration is charged to exactly one stage.
	Stages map[string]time.Duration
	// Critical marks the span IDs on the critical path.
	Critical map[uint64]bool
	// Total is the summed duration of the root spans.
	Total time.Duration
	// Orphans counts spans whose parent was never found (promoted to
	// roots) — usually a sign a node's ring buffer rotated or a node was
	// not scraped.
	Orphans int
	// Nodes lists the distinct node labels that contributed spans.
	Nodes []string
}

// stageOf maps a span name to the pipeline stage its self-time is charged
// to. Self-time of an "rpc" span is wire + queueing (the remote work nests
// under it as a child), hence rpc-wire.
func stageOf(name string) string {
	switch name {
	case "rpc":
		return "rpc-wire"
	case "wal-sync":
		return "wal-fsync"
	case "replicate", "repl.apply", "repl.applyBatch":
		return "repl-ship"
	case "vm-exec", "tx":
		return "vm-exec"
	case "cache-hit":
		return "cache-hit"
	case "invoke":
		return "dispatch"
	default:
		return name
	}
}

// AssembleTrace stitches spans (from any number of nodes, in any order) into
// trees and computes critical-path stage attribution. Spans not matching
// trace are ignored; trace 0 assembles whatever single trace the spans
// belong to (first one seen).
func AssembleTrace(trace uint64, spans []Span) *AssembledTrace {
	a := &AssembledTrace{
		Trace:    trace,
		Stages:   make(map[string]time.Duration),
		Critical: make(map[uint64]bool),
	}
	nodes := make(map[uint64]*TraceNode)
	nodeLabels := make(map[string]bool)
	for _, s := range spans {
		if a.Trace == 0 {
			a.Trace = s.Trace
		}
		if s.Trace != a.Trace || s.ID == 0 {
			continue
		}
		if _, dup := nodes[s.ID]; dup {
			continue
		}
		nodes[s.ID] = &TraceNode{Span: s}
		if s.Node != "" {
			nodeLabels[s.Node] = true
		}
	}
	for _, n := range nodes {
		if p, ok := nodes[n.Span.Parent]; ok && n.Span.Parent != n.Span.ID {
			p.Children = append(p.Children, n)
			continue
		}
		if n.Span.Parent != 0 {
			a.Orphans++
		}
		a.Roots = append(a.Roots, n)
	}
	sortByStart := func(ns []*TraceNode) {
		sort.Slice(ns, func(i, j int) bool {
			if ns[i].Span.Start != ns[j].Span.Start {
				return ns[i].Span.Start < ns[j].Span.Start
			}
			return ns[i].Span.ID < ns[j].Span.ID
		})
	}
	sortByStart(a.Roots)
	for _, n := range nodes {
		sortByStart(n.Children)
	}
	for _, r := range a.Roots {
		a.Total += r.Span.Dur
		a.attribute(r, r.Span.Start, r.end(), nil)
	}
	for l := range nodeLabels {
		a.Nodes = append(a.Nodes, l)
	}
	sort.Strings(a.Nodes)
	return a
}

// attribute charges n's share of the uncovered interval [lo, hi] to stages:
// every instant is charged to the most specific span covering it, walking
// back from the interval's end and preferring the latest-ending candidate at
// each cursor position (the critical path through serial execution). extra
// carries sibling spans whose intervals fall inside a candidate's claim —
// e.g. an rpc hop issued from inside vm-exec is recorded as the invoke's
// child but runs during vm-exec, so it is handed down to compete for
// vm-exec's time rather than being shadowed. A span left entirely inside
// time claimed by another candidate at every level ran in parallel off the
// critical path — speeding it up would not shorten the trace — so it is
// neither charged nor marked critical. All intervals are clamped, which
// makes the stage totals sum exactly to the root durations.
func (a *AssembledTrace) attribute(n *TraceNode, lo, hi int64, extra []*TraceNode) {
	if lo < n.Span.Start {
		lo = n.Span.Start
	}
	if hi > n.end() {
		hi = n.end()
	}
	if lo >= hi {
		return
	}
	a.Critical[n.Span.ID] = true
	kids := make([]*TraceNode, 0, len(n.Children)+len(extra))
	kids = append(kids, n.Children...)
	kids = append(kids, extra...)
	sort.Slice(kids, func(i, j int) bool { return kids[i].end() > kids[j].end() })
	cursor := hi
	var covered time.Duration
	for i, c := range kids {
		cEnd := c.end()
		cStart := c.Span.Start
		if cEnd > cursor {
			cEnd = cursor
		}
		if cStart < lo {
			cStart = lo
		}
		if cStart >= cEnd {
			continue
		}
		// Later candidates contained in this claim compete inside it.
		var handDown []*TraceNode
		for _, o := range kids[i+1:] {
			if o.Span.Start < cEnd && o.end() > cStart {
				handDown = append(handDown, o)
			}
		}
		a.attribute(c, cStart, cEnd, handDown)
		covered += time.Duration(cEnd - cStart)
		cursor = cStart
	}
	self := time.Duration(hi-lo) - covered
	if self < 0 {
		self = 0
	}
	a.Stages[stageOf(n.Span.Name)] += self
}

// StageRows returns the stage attribution sorted by descending time.
func (a *AssembledTrace) StageRows() []StageRow {
	rows := make([]StageRow, 0, len(a.Stages))
	for name, d := range a.Stages {
		rows = append(rows, StageRow{Stage: name, Time: d})
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].Time != rows[j].Time {
			return rows[i].Time > rows[j].Time
		}
		return rows[i].Stage < rows[j].Stage
	})
	return rows
}

// StageRow is one line of the critical-path attribution table.
type StageRow struct {
	Stage string
	Time  time.Duration
}

// Render formats the assembled trace: the span tree (critical-path spans
// marked with *) followed by the per-stage attribution table.
func (a *AssembledTrace) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "trace %016x  spans=%d nodes=%s total=%v\n",
		a.Trace, a.spanCount(), strings.Join(a.Nodes, ","), a.Total)
	if a.Orphans > 0 {
		fmt.Fprintf(&b, "  (%d orphan span(s): parent missing — ring rotated or a node was not scraped)\n", a.Orphans)
	}
	var walk func(n *TraceNode, depth int)
	walk = func(n *TraceNode, depth int) {
		mark := " "
		if a.Critical[n.Span.ID] {
			mark = "*"
		}
		errStr := ""
		if n.Span.Err != "" {
			errStr = " err=" + n.Span.Err
		}
		fmt.Fprintf(&b, "%s %s%-*s %-14s %v%s\n",
			mark, strings.Repeat("  ", depth), 24-2*depth, n.Span.Name, n.Span.Node, n.Span.Dur, errStr)
		for _, c := range n.Children {
			walk(c, depth+1)
		}
	}
	for _, r := range a.Roots {
		walk(r, 0)
	}
	if len(a.Stages) > 0 {
		b.WriteString("critical path:\n")
		total := a.Total
		for _, row := range a.StageRows() {
			pct := 0.0
			if total > 0 {
				pct = 100 * float64(row.Time) / float64(total)
			}
			fmt.Fprintf(&b, "  %-12s %10v  %5.1f%%\n", row.Stage, row.Time, pct)
		}
	}
	return b.String()
}

func (a *AssembledTrace) spanCount() int {
	var count func(n *TraceNode) int
	count = func(n *TraceNode) int {
		c := 1
		for _, ch := range n.Children {
			c += count(ch)
		}
		return c
	}
	total := 0
	for _, r := range a.Roots {
		total += count(r)
	}
	return total
}
