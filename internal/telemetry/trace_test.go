package telemetry

import (
	"testing"
	"time"
)

// TestBucketIndexEdges pins the integer bucket math at the boundaries where
// the old floating-point log2 could round either way.
func TestBucketIndexEdges(t *testing.T) {
	cases := []struct {
		us   uint64
		want int
	}{
		{0, 0}, // clamped to minTrackableUs
		{1, 0},
		{2, 16}, // exact powers of two start a fresh octave
		{3, 24},
		{4, 32},
		{15, 62}, // sub-16µs octaves stride their sub-buckets
		{16, 64},
		{17, 65},
		{1 << 20, 20 * bucketsPerOct},
		{1<<20 - 1, 20*bucketsPerOct - 1},
		{1<<20 + 1, 20 * bucketsPerOct}, // sub-bucket resolution swallows +1
		{1 << 62, bucketCount - 1},      // overflow clamps to the last bucket
		{^uint64(0), bucketCount - 1},
	}
	for _, c := range cases {
		if got := bucketIndex(c.us); got != c.want {
			t.Errorf("bucketIndex(%d) = %d, want %d", c.us, got, c.want)
		}
	}
	// Exact powers of two must land exactly at k*16 for every in-range k.
	for k := uint(0); k < 31; k++ {
		if got := bucketIndex(1 << k); got != int(k)*bucketsPerOct {
			t.Errorf("bucketIndex(2^%d) = %d, want %d", k, got, int(k)*bucketsPerOct)
		}
	}
	// Strict monotonicity over every boundary in the first few octaves.
	prev := -1
	for us := uint64(1); us < 4096; us++ {
		idx := bucketIndex(us)
		if idx < prev {
			t.Fatalf("bucketIndex(%d) = %d < bucketIndex(%d) = %d", us, idx, us-1, prev)
		}
		prev = idx
	}
}

func TestTracerDisabledAndNil(t *testing.T) {
	var nilTracer *Tracer
	sp := nilTracer.StartSpan(SpanContext{}, "x")
	if sp.Recording() || sp.Context().Valid() {
		t.Fatal("nil tracer must yield a no-op span")
	}
	sp.Finish()
	sp.FinishErr(nil)
	nilTracer.SetEnabled(true)
	nilTracer.SetSlowThreshold(time.Second)
	nilTracer.SetNode("n")
	if nilTracer.Enabled() || nilTracer.Total() != 0 || nilTracer.Spans() != nil {
		t.Fatal("nil tracer must stay inert")
	}

	tr := NewTracer("node-a", 8)
	if tr.Enabled() {
		t.Fatal("tracer must start disabled")
	}
	sp = tr.StartSpan(NewRootContext(), "x")
	if sp.Recording() {
		t.Fatal("disabled tracer must not record")
	}
	sp.Finish()
	if tr.Total() != 0 {
		t.Fatalf("disabled tracer recorded %d spans", tr.Total())
	}
}

func TestTracerParentChildLinkage(t *testing.T) {
	tr := NewTracer("node-a", 16)
	tr.SetEnabled(true)

	root := tr.StartSpan(SpanContext{}, "invoke")
	if !root.Recording() || !root.Context().Valid() {
		t.Fatal("enabled tracer must record")
	}
	child := tr.StartSpan(root.Context(), "vm-exec")
	if child.Context().Trace != root.Context().Trace {
		t.Fatal("child must inherit the trace ID")
	}
	child.Finish()
	root.Finish()

	spans := tr.Spans()
	if len(spans) != 2 {
		t.Fatalf("spans = %d, want 2", len(spans))
	}
	// Ring order is completion order: child finished first.
	if spans[0].Name != "vm-exec" || spans[1].Name != "invoke" {
		t.Fatalf("span order = %q, %q", spans[0].Name, spans[1].Name)
	}
	if spans[0].Parent != spans[1].ID {
		t.Fatalf("child parent %016x != root id %016x", spans[0].Parent, spans[1].ID)
	}
	if spans[1].Parent != 0 {
		t.Fatalf("root must have no parent, got %016x", spans[1].Parent)
	}
	for _, s := range spans {
		if s.Node != "node-a" {
			t.Fatalf("span node = %q", s.Node)
		}
		if s.Dur < 0 || s.Start == 0 {
			t.Fatalf("bad span timing: %+v", s)
		}
	}
}

func TestTracerStartSpanMintsTrace(t *testing.T) {
	tr := NewTracer("n", 4)
	tr.SetEnabled(true)
	sp := tr.StartSpan(SpanContext{}, "invoke")
	if sp.Context().Trace == 0 {
		t.Fatal("span under an untraced parent must mint a trace ID")
	}
	// Explicit parent context is honored verbatim.
	parent := SpanContext{Trace: 42, Span: 7}
	sp2 := tr.StartSpan(parent, "child")
	sp2.Finish()
	got := tr.Spans()
	last := got[len(got)-1]
	if last.Trace != 42 || last.Parent != 7 {
		t.Fatalf("span = %+v, want trace=42 parent=7", last)
	}
}

func TestTracerRingWrap(t *testing.T) {
	tr := NewTracer("n", 4)
	tr.SetEnabled(true)
	for i := 0; i < 10; i++ {
		tr.StartSpan(SpanContext{Trace: uint64(i + 1)}, "s").Finish()
	}
	if tr.Total() != 10 {
		t.Fatalf("total = %d", tr.Total())
	}
	spans := tr.Spans()
	if len(spans) != 4 {
		t.Fatalf("retained = %d, want ring size 4", len(spans))
	}
	// Oldest-first: traces 7, 8, 9, 10 survive.
	for i, s := range spans {
		if s.Trace != uint64(7+i) {
			t.Fatalf("spans[%d].Trace = %d, want %d", i, s.Trace, 7+i)
		}
	}
}

func TestTracerTraceSpansFilter(t *testing.T) {
	tr := NewTracer("n", 32)
	tr.SetEnabled(true)
	keep := NewTraceID()
	for i := 0; i < 3; i++ {
		tr.StartSpan(SpanContext{Trace: keep}, "mine").Finish()
		tr.StartSpan(NewRootContext(), "other").Finish()
	}
	got := tr.TraceSpans(keep)
	if len(got) != 3 {
		t.Fatalf("filtered spans = %d, want 3", len(got))
	}
	for i, s := range got {
		if s.Trace != keep || s.Name != "mine" {
			t.Fatalf("span %d = %+v", i, s)
		}
		if i > 0 && s.Start < got[i-1].Start {
			t.Fatal("TraceSpans must be ordered by start time")
		}
	}
}

func TestTracerFinishErr(t *testing.T) {
	tr := NewTracer("n", 4)
	tr.SetEnabled(true)
	tr.StartSpan(SpanContext{}, "fail").FinishErr(errBoom{})
	spans := tr.Spans()
	if len(spans) != 1 || spans[0].Err != "boom" {
		t.Fatalf("spans = %+v", spans)
	}
}

type errBoom struct{}

func (errBoom) Error() string { return "boom" }

func TestNewTraceIDUnique(t *testing.T) {
	seen := make(map[uint64]bool, 1000)
	for i := 0; i < 1000; i++ {
		id := NewTraceID()
		if id == 0 || seen[id] {
			t.Fatalf("duplicate or zero trace ID %016x", id)
		}
		seen[id] = true
	}
}

func TestGauge(t *testing.T) {
	r := NewRegistry()
	g := r.Gauge("inflight")
	g.Inc()
	g.Inc()
	g.Dec()
	if g.Value() != 1 {
		t.Fatalf("gauge = %d", g.Value())
	}
	g.Set(7)
	g.Add(-2)
	if g.Value() != 5 {
		t.Fatalf("gauge = %d", g.Value())
	}
	if g2 := r.Gauge("inflight"); g2 != g {
		t.Fatal("gauge not memoized")
	}
	if names := r.GaugeNames(); len(names) != 1 || names[0] != "inflight" {
		t.Fatalf("gauge names = %v", names)
	}
}

// BenchmarkTelemetryHistogramRecord must run at 0 allocs/op: Record is on
// every invocation's hot path.
func BenchmarkTelemetryHistogramRecord(b *testing.B) {
	h := &Histogram{}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Record(time.Duration(i%1000) * time.Microsecond)
	}
}

// BenchmarkTelemetryDisabledTracerSpan must run at 0 allocs/op and a few ns:
// a node with tracing off pays only a predicted branch per span site.
func BenchmarkTelemetryDisabledTracerSpan(b *testing.B) {
	tr := NewTracer("n", 64)
	ctx := SpanContext{Trace: 1, Span: 2}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sp := tr.StartSpan(ctx, "invoke")
		sp.Finish()
	}
}

// BenchmarkTelemetryEnabledTracerSpan documents the cost when tracing is on
// (not part of the 0-alloc requirement, but the ring write itself must not
// allocate either).
func BenchmarkTelemetryEnabledTracerSpan(b *testing.B) {
	tr := NewTracer("n", 4096)
	tr.SetEnabled(true)
	ctx := SpanContext{Trace: 1, Span: 2}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sp := tr.StartSpan(ctx, "invoke")
		sp.Finish()
	}
}
