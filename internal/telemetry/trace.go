// Request-scoped distributed tracing. A trace ID is minted per client
// invocation and propagated through every RPC hop (the rpc package carries
// the context in its frame header); each node records named spans — invoke,
// lock-wait, vm-exec, commit, wal-sync, replicate, rpc — into a fixed-size
// ring buffer that the debug HTTP server exposes as /traces.
//
// The design goals mirror the Histogram discipline: recording a span is
// allocation-free (spans are value types written into a preallocated ring),
// and a disabled tracer costs a single predicted branch — benchmarks that
// run without tracing are unaffected.
package telemetry

import (
	"log"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// SpanContext is the wire-propagated trace position: which trace the caller
// belongs to and which span is the parent of whatever the callee records.
// The zero value means "untraced".
type SpanContext struct {
	Trace uint64
	Span  uint64
}

// Valid reports whether the context carries a trace.
func (c SpanContext) Valid() bool { return c.Trace != 0 }

// idState seeds and sequences process-global ID minting. splitmix64 over an
// atomic counter gives unique, well-mixed, non-zero IDs without locks or
// allocation.
var idState atomic.Uint64

func init() { idState.Store(uint64(time.Now().UnixNano()) | 1) }

func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// NewTraceID mints a fresh trace identifier (never zero).
func NewTraceID() uint64 {
	for {
		if id := splitmix64(idState.Add(1)); id != 0 {
			return id
		}
	}
}

// NewRootContext mints the context a client attaches to an invocation: a
// fresh trace with no parent span.
func NewRootContext() SpanContext { return SpanContext{Trace: NewTraceID()} }

// Span is one completed, named stage of a traced request.
type Span struct {
	Trace  uint64        `json:"trace"`
	ID     uint64        `json:"id"`
	Parent uint64        `json:"parent,omitempty"`
	Name   string        `json:"name"`
	Node   string        `json:"node,omitempty"`
	Start  int64         `json:"start_unix_ns"`
	Dur    time.Duration `json:"dur_ns"`
	Err    string        `json:"err,omitempty"`
}

// Tracer records spans for one node into a bounded ring. Safe for
// concurrent use. A nil *Tracer is valid and permanently disabled.
type Tracer struct {
	node    string
	enabled atomic.Bool
	slowNs  atomic.Int64

	mu    sync.Mutex
	ring  []Span
	next  uint64 // ring cursor; total spans recorded
	total uint64
}

// DefaultTraceBuffer is the span ring capacity when none is given.
const DefaultTraceBuffer = 4096

// NewTracer returns a tracer labelled with the node's identity (usually its
// RPC address). size <= 0 selects DefaultTraceBuffer. The tracer starts
// disabled; SetEnabled turns recording on.
func NewTracer(node string, size int) *Tracer {
	if size <= 0 {
		size = DefaultTraceBuffer
	}
	return &Tracer{node: node, ring: make([]Span, size)}
}

// SetEnabled turns span recording on or off.
func (t *Tracer) SetEnabled(on bool) {
	if t != nil {
		t.enabled.Store(on)
	}
}

// Enabled reports whether spans are being recorded.
func (t *Tracer) Enabled() bool { return t != nil && t.enabled.Load() }

// SetSlowThreshold logs any root span (no parent) slower than d; zero
// disables the slow log.
func (t *Tracer) SetSlowThreshold(d time.Duration) {
	if t != nil {
		t.slowNs.Store(int64(d))
	}
}

// SetNode relabels the tracer (nodes learn their bound address after the
// tracer is built).
func (t *Tracer) SetNode(node string) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.node = node
	t.mu.Unlock()
}

// ActiveSpan is an in-progress span. It is a value type: starting and
// finishing a span allocates nothing, and the zero ActiveSpan (from a
// disabled or nil tracer) is a no-op.
type ActiveSpan struct {
	t      *Tracer
	span   SpanContext
	parent uint64
	name   string
	start  time.Time
}

// StartSpan opens a span under parent. With the tracer nil or disabled it
// returns the zero ActiveSpan without reading the clock.
func (t *Tracer) StartSpan(parent SpanContext, name string) ActiveSpan {
	if t == nil || !t.enabled.Load() {
		return ActiveSpan{}
	}
	trace := parent.Trace
	if trace == 0 {
		trace = NewTraceID()
	}
	return ActiveSpan{
		t:      t,
		span:   SpanContext{Trace: trace, Span: NewTraceID()},
		parent: parent.Span,
		name:   name,
		start:  time.Now(),
	}
}

// Context returns the propagation context for work nested under this span.
// For a no-op span it returns the zero context, so children of an untraced
// request stay untraced.
func (s ActiveSpan) Context() SpanContext {
	if s.t == nil {
		return SpanContext{}
	}
	return s.span
}

// Recording reports whether the span will be recorded on Finish.
func (s ActiveSpan) Recording() bool { return s.t != nil }

// Finish records the span.
func (s ActiveSpan) Finish() { s.finish("") }

// FinishErr records the span, stamping the error if non-nil.
func (s ActiveSpan) FinishErr(err error) {
	if err != nil && s.t != nil {
		s.finish(err.Error())
		return
	}
	s.finish("")
}

func (s ActiveSpan) finish(errStr string) {
	t := s.t
	if t == nil {
		return
	}
	dur := time.Since(s.start)
	sp := Span{
		Trace:  s.span.Trace,
		ID:     s.span.Span,
		Parent: s.parent,
		Name:   s.name,
		Start:  s.start.UnixNano(),
		Dur:    dur,
		Err:    errStr,
	}
	t.mu.Lock()
	sp.Node = t.node
	t.ring[t.next%uint64(len(t.ring))] = sp
	t.next++
	t.total++
	t.mu.Unlock()
	if slow := t.slowNs.Load(); slow > 0 && s.parent == 0 && dur >= time.Duration(slow) {
		log.Printf("telemetry: slow invocation: trace=%016x span=%s node=%s dur=%v err=%q",
			sp.Trace, sp.Name, sp.Node, dur, errStr)
	}
}

// Total returns how many spans have ever been recorded (including those
// that have rotated out of the ring).
func (t *Tracer) Total() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.total
}

// Spans returns the retained spans, oldest first.
func (t *Tracer) Spans() []Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	n := t.next
	size := uint64(len(t.ring))
	var out []Span
	if n <= size {
		out = append(out, t.ring[:n]...)
	} else {
		out = append(out, t.ring[n%size:]...)
		out = append(out, t.ring[:n%size]...)
	}
	return out
}

// TraceSpans returns the retained spans of one trace, ordered by start time.
func (t *Tracer) TraceSpans(trace uint64) []Span {
	all := t.Spans()
	out := all[:0]
	for _, s := range all {
		if s.Trace == trace {
			out = append(out, s)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Start < out[j].Start })
	return out
}
