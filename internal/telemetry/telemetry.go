// Package telemetry provides the latency and throughput instrumentation used
// by the benchmark harness: log-scaled latency histograms with percentile
// queries, and monotonic throughput counters.
//
// Recorders are safe for concurrent use; the histogram buckets are updated
// with atomic increments so recording on the hot path costs a few
// nanoseconds and never blocks.
package telemetry

import (
	"fmt"
	"math/bits"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// bucketCount covers 1us .. ~4295s with at worst ~6% resolution: each
// power-of-two octave is split into bucketsPerOct linear sub-buckets
// (HdrHistogram's log-linear layout), which keeps bucketIndex pure integer
// arithmetic on the record hot path.
const (
	bucketCount    = 512
	bucketsPerOct  = 16
	minTrackableUs = 1
)

// Histogram is a log-scaled latency histogram. The zero value is ready to
// use.
type Histogram struct {
	buckets [bucketCount]atomic.Uint64
	count   atomic.Uint64
	sumUs   atomic.Uint64
	maxUs   atomic.Uint64
	// exemplars[i] holds the trace ID of a recent traced observation that
	// landed in bucket i, so a latency spike in /metrics links directly to
	// an assembled trace.
	exemplars [bucketCount]atomic.Uint64
}

// bucketIndex maps a latency in microseconds to its bucket: the exponent
// selects the octave, the top four mantissa bits select the linear
// sub-bucket within it. Integer-only (bits.Len64), so there is no float
// rounding at bucket edges: 2^k always lands exactly at index k*16.
func bucketIndex(us uint64) int {
	if us < minTrackableUs {
		us = minTrackableUs
	}
	e := uint(bits.Len64(us)) - 1 // floor(log2(us))
	var sub uint64
	if e >= 4 {
		sub = (us - 1<<e) >> (e - 4)
	} else {
		sub = (us - 1<<e) << (4 - e)
	}
	idx := int(e)*bucketsPerOct + int(sub)
	if idx >= bucketCount {
		idx = bucketCount - 1
	}
	return idx
}

// bucketValueUs returns the representative latency (upper bound) of bucket i
// in microseconds.
func bucketValueUs(i int) float64 {
	e := i / bucketsPerOct
	sub := i % bucketsPerOct
	return float64(uint64(1)<<uint(e)) * (1 + float64(sub+1)/bucketsPerOct)
}

// Record adds one observation.
func (h *Histogram) Record(d time.Duration) {
	h.add(uint64(d.Microseconds()))
}

// RecordTraced adds one observation and, when trace is non-zero, retains the
// trace ID as the exemplar for the bucket the observation landed in.
func (h *Histogram) RecordTraced(d time.Duration, trace uint64) {
	idx := h.add(uint64(d.Microseconds()))
	if trace != 0 {
		h.exemplars[idx].Store(trace)
	}
}

func (h *Histogram) add(us uint64) int {
	idx := bucketIndex(us)
	h.buckets[idx].Add(1)
	h.count.Add(1)
	h.sumUs.Add(us)
	for {
		cur := h.maxUs.Load()
		if us <= cur || h.maxUs.CompareAndSwap(cur, us) {
			return idx
		}
	}
}

// Count returns the number of recorded observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Mean returns the mean latency.
func (h *Histogram) Mean() time.Duration {
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	return time.Duration(h.sumUs.Load()/n) * time.Microsecond
}

// Max returns the largest recorded latency.
func (h *Histogram) Max() time.Duration {
	return time.Duration(h.maxUs.Load()) * time.Microsecond
}

// Quantile returns the latency at quantile q in [0,1], e.g. 0.5 for the
// median and 0.99 for the 99th percentile.
func (h *Histogram) Quantile(q float64) time.Duration {
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	target := uint64(q * float64(total))
	if target >= total {
		target = total - 1
	}
	var seen uint64
	for i := 0; i < bucketCount; i++ {
		seen += h.buckets[i].Load()
		if seen > target {
			return time.Duration(bucketValueUs(i)) * time.Microsecond
		}
	}
	return h.Max()
}

// Snapshot summarizes the histogram.
type Snapshot struct {
	Count  uint64
	Mean   time.Duration
	Median time.Duration
	P99    time.Duration
	Max    time.Duration
}

// Snapshot returns a point-in-time summary.
func (h *Histogram) Snapshot() Snapshot {
	return Snapshot{
		Count:  h.Count(),
		Mean:   h.Mean(),
		Median: h.Quantile(0.5),
		P99:    h.Quantile(0.99),
		Max:    h.Max(),
	}
}

// String renders the snapshot for harness output.
func (s Snapshot) String() string {
	return fmt.Sprintf("n=%d mean=%v p50=%v p99=%v max=%v",
		s.Count, s.Mean, s.Median, s.P99, s.Max)
}

// Counter is a monotonically increasing event counter.
type Counter struct{ n atomic.Uint64 }

// Add increments the counter by delta.
func (c *Counter) Add(delta uint64) { c.n.Add(delta) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.n.Add(1) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.n.Load() }

// Gauge is an instantaneous level (in-flight requests, queue depths). It may
// go up and down, unlike a Counter.
type Gauge struct{ n atomic.Int64 }

// Inc raises the gauge by one.
func (g *Gauge) Inc() { g.n.Add(1) }

// Dec lowers the gauge by one.
func (g *Gauge) Dec() { g.n.Add(-1) }

// Add moves the gauge by delta.
func (g *Gauge) Add(delta int64) { g.n.Add(delta) }

// Set pins the gauge to v.
func (g *Gauge) Set(v int64) { g.n.Store(v) }

// Value returns the current level.
func (g *Gauge) Value() int64 { return g.n.Load() }

// Registry names and aggregates histograms, counters and gauges for one
// node or experiment run. Lookups take a mutex, so hot paths should resolve
// their instruments once and hold the pointer; recording on the returned
// instrument is atomic and allocation-free.
type Registry struct {
	mu         sync.Mutex
	histograms map[string]*Histogram
	counters   map[string]*Counter
	gauges     map[string]*Gauge

	// Sliding-window state for Snapshot: the cumulative values captured at
	// the last window rotation. Guarded separately from mu so snapshotting
	// never blocks instrument creation.
	created  time.Time
	winMu    sync.Mutex
	winStart time.Time
	winHist  map[string]HistData
	winCtr   map[string]uint64
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		histograms: make(map[string]*Histogram),
		counters:   make(map[string]*Counter),
		gauges:     make(map[string]*Gauge),
		created:    time.Now(),
	}
}

// Histogram returns the named histogram, creating it on first use.
func (r *Registry) Histogram(name string) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.histograms[name]
	if !ok {
		h = &Histogram{}
		r.histograms[name] = h
	}
	return h
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// HistogramNames returns the sorted names of all histograms.
func (r *Registry) HistogramNames() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	names := make([]string, 0, len(r.histograms))
	for n := range r.histograms {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// CounterNames returns the sorted names of all counters.
func (r *Registry) CounterNames() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	names := make([]string, 0, len(r.counters))
	for n := range r.counters {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// GaugeNames returns the sorted names of all gauges.
func (r *Registry) GaugeNames() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	names := make([]string, 0, len(r.gauges))
	for n := range r.gauges {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Throughput measures completed operations over a wall-clock window.
type Throughput struct {
	ops   Counter
	start time.Time
}

// NewThroughput starts a throughput window now.
func NewThroughput() *Throughput {
	return &Throughput{start: time.Now()}
}

// Done records one completed operation.
func (t *Throughput) Done() { t.ops.Inc() }

// Ops returns the number of completed operations.
func (t *Throughput) Ops() uint64 { return t.ops.Value() }

// PerSecond returns the observed operations per second so far.
func (t *Throughput) PerSecond() float64 {
	elapsed := time.Since(t.start).Seconds()
	if elapsed <= 0 {
		return 0
	}
	return float64(t.ops.Value()) / elapsed
}
