// Package telemetry provides the latency and throughput instrumentation used
// by the benchmark harness: log-scaled latency histograms with percentile
// queries, and monotonic throughput counters.
//
// Recorders are safe for concurrent use; the histogram buckets are updated
// with atomic increments so recording on the hot path costs a few
// nanoseconds and never blocks.
package telemetry

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// bucketCount covers 1us .. ~1000s with ~4.4% resolution (log base 2^(1/16)).
const (
	bucketCount    = 512
	bucketsPerOct  = 16
	minTrackableUs = 1
)

// Histogram is a log-scaled latency histogram. The zero value is ready to
// use.
type Histogram struct {
	buckets [bucketCount]atomic.Uint64
	count   atomic.Uint64
	sumUs   atomic.Uint64
	maxUs   atomic.Uint64
}

// bucketIndex maps a latency in microseconds to its bucket.
func bucketIndex(us uint64) int {
	if us < minTrackableUs {
		us = minTrackableUs
	}
	idx := int(math.Log2(float64(us)) * bucketsPerOct)
	if idx >= bucketCount {
		idx = bucketCount - 1
	}
	if idx < 0 {
		idx = 0
	}
	return idx
}

// bucketValueUs returns the representative latency (upper bound) of bucket i
// in microseconds.
func bucketValueUs(i int) float64 {
	return math.Exp2(float64(i+1) / bucketsPerOct)
}

// Record adds one observation.
func (h *Histogram) Record(d time.Duration) {
	us := uint64(d.Microseconds())
	h.buckets[bucketIndex(us)].Add(1)
	h.count.Add(1)
	h.sumUs.Add(us)
	for {
		cur := h.maxUs.Load()
		if us <= cur || h.maxUs.CompareAndSwap(cur, us) {
			return
		}
	}
}

// Count returns the number of recorded observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Mean returns the mean latency.
func (h *Histogram) Mean() time.Duration {
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	return time.Duration(h.sumUs.Load()/n) * time.Microsecond
}

// Max returns the largest recorded latency.
func (h *Histogram) Max() time.Duration {
	return time.Duration(h.maxUs.Load()) * time.Microsecond
}

// Quantile returns the latency at quantile q in [0,1], e.g. 0.5 for the
// median and 0.99 for the 99th percentile.
func (h *Histogram) Quantile(q float64) time.Duration {
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	target := uint64(q * float64(total))
	if target >= total {
		target = total - 1
	}
	var seen uint64
	for i := 0; i < bucketCount; i++ {
		seen += h.buckets[i].Load()
		if seen > target {
			return time.Duration(bucketValueUs(i)) * time.Microsecond
		}
	}
	return h.Max()
}

// Snapshot summarizes the histogram.
type Snapshot struct {
	Count  uint64
	Mean   time.Duration
	Median time.Duration
	P99    time.Duration
	Max    time.Duration
}

// Snapshot returns a point-in-time summary.
func (h *Histogram) Snapshot() Snapshot {
	return Snapshot{
		Count:  h.Count(),
		Mean:   h.Mean(),
		Median: h.Quantile(0.5),
		P99:    h.Quantile(0.99),
		Max:    h.Max(),
	}
}

// String renders the snapshot for harness output.
func (s Snapshot) String() string {
	return fmt.Sprintf("n=%d mean=%v p50=%v p99=%v max=%v",
		s.Count, s.Mean, s.Median, s.P99, s.Max)
}

// Counter is a monotonically increasing event counter.
type Counter struct{ n atomic.Uint64 }

// Add increments the counter by delta.
func (c *Counter) Add(delta uint64) { c.n.Add(delta) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.n.Add(1) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.n.Load() }

// Registry names and aggregates histograms and counters for one experiment
// run.
type Registry struct {
	mu         sync.Mutex
	histograms map[string]*Histogram
	counters   map[string]*Counter
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		histograms: make(map[string]*Histogram),
		counters:   make(map[string]*Counter),
	}
}

// Histogram returns the named histogram, creating it on first use.
func (r *Registry) Histogram(name string) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.histograms[name]
	if !ok {
		h = &Histogram{}
		r.histograms[name] = h
	}
	return h
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// HistogramNames returns the sorted names of all histograms.
func (r *Registry) HistogramNames() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	names := make([]string, 0, len(r.histograms))
	for n := range r.histograms {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// CounterNames returns the sorted names of all counters.
func (r *Registry) CounterNames() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	names := make([]string, 0, len(r.counters))
	for n := range r.counters {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Throughput measures completed operations over a wall-clock window.
type Throughput struct {
	ops   Counter
	start time.Time
}

// NewThroughput starts a throughput window now.
func NewThroughput() *Throughput {
	return &Throughput{start: time.Now()}
}

// Done records one completed operation.
func (t *Throughput) Done() { t.ops.Inc() }

// Ops returns the number of completed operations.
func (t *Throughput) Ops() uint64 { return t.ops.Value() }

// PerSecond returns the observed operations per second so far.
func (t *Throughput) PerSecond() float64 {
	elapsed := time.Since(t.start).Seconds()
	if elapsed <= 0 {
		return 0
	}
	return float64(t.ops.Value()) / elapsed
}
