package telemetry

import (
	"strings"
	"testing"
	"time"
)

// mkSpan builds a span with millisecond-offset start and duration for
// readable test fixtures.
func mkSpan(trace, id, parent uint64, name, node string, startMs, durMs int64) Span {
	return Span{
		Trace:  trace,
		ID:     id,
		Parent: parent,
		Name:   name,
		Node:   node,
		Start:  startMs * int64(time.Millisecond),
		Dur:    time.Duration(durMs) * time.Millisecond,
	}
}

// TestAssembleCrossNodeAttribution stitches a hand-built three-node trace
// (root invoke -> rpc to a remote invoke, plus wal/vm work) and checks the
// tree shape, node list, and exact per-stage attribution.
func TestAssembleCrossNodeAttribution(t *testing.T) {
	const tr = 0x42
	spans := []Span{
		// n0: root invoke 0..100ms, rpc hop 10..90ms nested inside it.
		mkSpan(tr, 1, 0, "invoke", "n0", 0, 100),
		mkSpan(tr, 2, 1, "rpc", "n0", 10, 80),
		// n1: the forwarded invoke 20..80ms, with fsync and vm work inside.
		mkSpan(tr, 3, 2, "invoke", "n1", 20, 60),
		mkSpan(tr, 4, 3, "wal-sync", "n1", 30, 20),
		mkSpan(tr, 5, 3, "vm-exec", "n1", 50, 20),
	}
	// Shuffle across "scrapes": assembly must not depend on input order.
	spans = []Span{spans[4], spans[1], spans[0], spans[3], spans[2]}

	a := AssembleTrace(tr, spans)
	if len(a.Roots) != 1 || a.Roots[0].Span.ID != 1 {
		t.Fatalf("roots = %+v, want the single root invoke", a.Roots)
	}
	if a.Orphans != 0 {
		t.Fatalf("orphans = %d", a.Orphans)
	}
	if got := strings.Join(a.Nodes, ","); got != "n0,n1" {
		t.Fatalf("nodes = %q", got)
	}
	if a.Total != 100*time.Millisecond {
		t.Fatalf("total = %v", a.Total)
	}
	for id := uint64(1); id <= 5; id++ {
		if !a.Critical[id] {
			t.Errorf("span %d not on critical path", id)
		}
	}

	// Attribution: root self = 100-80 = 20ms (dispatch), rpc self =
	// 80-60 = 20ms (rpc-wire), remote invoke self = 60-40 = 20ms
	// (dispatch again), wal-sync 20ms, vm-exec 20ms.
	want := map[string]time.Duration{
		"dispatch":  40 * time.Millisecond,
		"rpc-wire":  20 * time.Millisecond,
		"wal-fsync": 20 * time.Millisecond,
		"vm-exec":   20 * time.Millisecond,
	}
	for stage, d := range want {
		if a.Stages[stage] != d {
			t.Errorf("stage %s = %v, want %v (all: %v)", stage, a.Stages[stage], d, a.Stages)
		}
	}
	var sum time.Duration
	for _, d := range a.Stages {
		sum += d
	}
	if sum != a.Total {
		t.Errorf("stage sum %v != total %v", sum, a.Total)
	}

	out := a.Render()
	for _, frag := range []string{"trace 0000000000000042", "invoke", "wal-sync", "critical path:", "rpc-wire", "n1"} {
		if !strings.Contains(out, frag) {
			t.Errorf("render missing %q:\n%s", frag, out)
		}
	}
}

// TestAssembleContainedSiblings checks that a sibling whose interval falls
// inside another child's span is handed down and charged as nested work —
// replicate issued from inside vm-exec carves its time out of vm-exec's —
// and that wall time is never double-counted.
func TestAssembleContainedSiblings(t *testing.T) {
	const tr = 7
	spans := []Span{
		mkSpan(tr, 1, 0, "invoke", "n0", 0, 100),
		mkSpan(tr, 2, 1, "vm-exec", "n0", 0, 100),   // covers everything
		mkSpan(tr, 3, 1, "replicate", "n0", 20, 60), // inside vm-exec's time
		mkSpan(tr, 4, 3, "repl.applyBatch", "n2", 30, 20),
	}
	a := AssembleTrace(tr, spans)
	var sum time.Duration
	for _, d := range a.Stages {
		sum += d
	}
	// Wall time never double-counts: the total attributed equals the root
	// duration even though 180ms of child spans overlap inside it.
	if sum != 100*time.Millisecond {
		t.Fatalf("stage sum = %v, want 100ms (stages: %v)", sum, a.Stages)
	}
	// The most specific span covering each instant wins: replicate claims
	// [20,90] minus nothing of its own child's backup apply — together the
	// replicate subtree gets its full 60ms charged as repl-ship, and
	// vm-exec keeps only the time it actually spent executing.
	if a.Stages["repl-ship"] != 60*time.Millisecond {
		t.Errorf("repl-ship = %v, want 60ms (stages: %v)", a.Stages["repl-ship"], a.Stages)
	}
	if a.Stages["vm-exec"] != 40*time.Millisecond {
		t.Errorf("vm-exec = %v, want 40ms (stages: %v)", a.Stages["vm-exec"], a.Stages)
	}
	for id := uint64(1); id <= 4; id++ {
		if !a.Critical[id] {
			t.Errorf("span %d not on critical path", id)
		}
	}
	if out := a.Render(); !strings.Contains(out, "replicate") || !strings.Contains(out, "repl.applyBatch") {
		t.Errorf("replicate subtree missing from render:\n%s", out)
	}
}

// TestAssembleOrphansAndFilter checks orphan promotion and that spans from
// other traces are excluded.
func TestAssembleOrphansAndFilter(t *testing.T) {
	spans := []Span{
		mkSpan(5, 1, 0, "invoke", "n0", 0, 10),
		mkSpan(5, 2, 99, "repl.apply", "n2", 2, 3), // parent never scraped
		mkSpan(6, 3, 0, "invoke", "n1", 0, 10),     // different trace
	}
	a := AssembleTrace(5, spans)
	if len(a.Roots) != 2 {
		t.Fatalf("roots = %d, want 2 (orphan promoted)", len(a.Roots))
	}
	if a.Orphans != 1 {
		t.Fatalf("orphans = %d, want 1", a.Orphans)
	}
	if a.spanCount() != 2 {
		t.Fatalf("span count = %d, want 2 (trace 6 must be filtered)", a.spanCount())
	}
	if !strings.Contains(a.Render(), "orphan") {
		t.Error("render does not flag the orphan")
	}
}
