package chaos

import (
	"testing"

	"lambdastore/internal/fault"
)

// newChaosCluster boots a 3-node group plus a 3-replica coordinator
// ensemble. The fault plane is process-global, so chaos tests must not
// run in parallel (they don't: no t.Parallel here by design).
func newChaosCluster(t *testing.T) *Cluster {
	t.Helper()
	c, err := Start(Options{BaseDir: t.TempDir()})
	if err != nil {
		t.Fatalf("chaos start: %v", err)
	}
	t.Cleanup(func() {
		c.Close()
		fault.Reset()
	})
	return c
}

// TestChaosSmoke is the fast tier-1 variant: one crash-promote-recover
// cycle with a small workload.
func TestChaosSmoke(t *testing.T) {
	c := newChaosCluster(t)
	rep, err := Run(c, RunOptions{
		Seed:      1,
		Scenarios: []Scenario{ScenarioCrashPrimary},
		BurstOps:  8,
		Objects:   2,
		Log:       t.Logf,
	})
	if err != nil {
		t.Fatalf("chaos run: %v", err)
	}
	if rep.ExpectedPromotions != 1 {
		t.Fatalf("expected 1 promotion, schedule produced %d", rep.ExpectedPromotions)
	}
	if rep.AckedTotal == 0 {
		t.Fatal("no writes acknowledged")
	}
	t.Logf("smoke: %d acked, %d failed, recovery attempts %v",
		rep.AckedTotal, rep.FailedOps, rep.RecoveryAttempts)
}

// TestChaos runs the full shuffled scenario set — primary crash, link
// partition, WAL fsync failure, gray heartbeat loss, frame dup/delay —
// for three distinct seeds. Each seed gets a fresh cluster; the seed
// fixes the scenario order, the workload's object choices and the fault
// plane's rule streams.
func TestChaos(t *testing.T) {
	for _, seed := range []uint64{1, 0x5eed2, 0xc0ffee} {
		seed := seed
		t.Run(fmt_seed(seed), func(t *testing.T) {
			c := newChaosCluster(t)
			rep, err := Run(c, RunOptions{Seed: seed, Log: t.Logf})
			if err != nil {
				t.Fatalf("chaos run (seed %#x): %v", seed, err)
			}
			t.Logf("seed %#x: scenarios %v, %d acked, %d failed, %d promotions, recovery %v",
				seed, rep.Scenarios, rep.AckedTotal, rep.FailedOps,
				rep.ExpectedPromotions, rep.RecoveryAttempts)
		})
	}
}

func fmt_seed(s uint64) string {
	const hex = "0123456789abcdef"
	buf := []byte("seed-0x")
	started := false
	for shift := 60; shift >= 0; shift -= 4 {
		d := (s >> uint(shift)) & 0xf
		if d == 0 && !started && shift > 0 {
			continue
		}
		started = true
		buf = append(buf, hex[d])
	}
	return string(buf)
}

// TestChaosPromotionUnderHeartbeatLoss covers coordinator promotion
// under heartbeat loss: a gray failure (heartbeats dropped, node still
// serving) followed by a full partition of the then-current primary.
// Each failure must yield exactly one promotion on a coordinator
// majority and never more than one on any replica, and every write
// acknowledged before the partition must be readable after it.
func TestChaosPromotionUnderHeartbeatLoss(t *testing.T) {
	c := newChaosCluster(t)
	rep, err := Run(c, RunOptions{
		Seed:      0x4b1d,
		Scenarios: []Scenario{ScenarioHeartbeatLoss, ScenarioPartitionPrimary},
		BurstOps:  15,
		Log:       t.Logf,
	})
	if err != nil {
		t.Fatalf("chaos run: %v", err)
	}
	if rep.ExpectedPromotions != 2 {
		t.Fatalf("expected 2 promotions, schedule produced %d", rep.ExpectedPromotions)
	}
	// Safety: no replica ever applies more promotions than failures.
	// Liveness: a majority applied exactly that many.
	exact := 0
	coords := c.Coordinators()
	for i, svc := range coords {
		got := svc.PromoteCounts()[0]
		if got > rep.ExpectedPromotions {
			t.Errorf("coordinator %d applied %d promotions, want at most %d (single-primary violation)",
				i, got, rep.ExpectedPromotions)
		}
		if got == rep.ExpectedPromotions {
			exact++
		}
	}
	if exact <= len(coords)/2 {
		t.Errorf("only %d/%d coordinator replicas applied %d promotions",
			exact, len(coords), rep.ExpectedPromotions)
	}
}
