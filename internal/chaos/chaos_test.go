package chaos

import (
	"testing"
	"time"

	"lambdastore/internal/fault"
)

// newChaosCluster boots a 3-node group plus a 3-replica coordinator
// ensemble. The fault plane is process-global, so chaos tests must not
// run in parallel (they don't: no t.Parallel here by design).
func newChaosCluster(t *testing.T) *Cluster {
	t.Helper()
	c, err := Start(Options{BaseDir: t.TempDir()})
	if err != nil {
		t.Fatalf("chaos start: %v", err)
	}
	t.Cleanup(func() {
		c.Close()
		fault.Reset()
	})
	return c
}

// TestChaosSmoke is the fast tier-1 variant: one crash-promote-recover
// cycle with a small workload.
func TestChaosSmoke(t *testing.T) {
	c := newChaosCluster(t)
	rep, err := Run(c, RunOptions{
		Seed:      1,
		Scenarios: []Scenario{ScenarioCrashPrimary},
		BurstOps:  8,
		Objects:   2,
		Log:       t.Logf,
	})
	if err != nil {
		t.Fatalf("chaos run: %v", err)
	}
	if rep.ExpectedPromotions != 1 {
		t.Fatalf("expected 1 promotion, schedule produced %d", rep.ExpectedPromotions)
	}
	if rep.AckedTotal == 0 {
		t.Fatal("no writes acknowledged")
	}
	t.Logf("smoke: %d acked, %d failed, recovery attempts %v",
		rep.AckedTotal, rep.FailedOps, rep.RecoveryAttempts)
}

// TestChaos runs the full shuffled scenario set — primary crash, link
// partition, WAL fsync failure, gray heartbeat loss, frame dup/delay —
// for three distinct seeds. Each seed gets a fresh cluster; the seed
// fixes the scenario order, the workload's object choices and the fault
// plane's rule streams.
func TestChaos(t *testing.T) {
	for _, seed := range []uint64{1, 0x5eed2, 0xc0ffee} {
		seed := seed
		t.Run(fmt_seed(seed), func(t *testing.T) {
			c := newChaosCluster(t)
			rep, err := Run(c, RunOptions{Seed: seed, Log: t.Logf})
			if err != nil {
				t.Fatalf("chaos run (seed %#x): %v", seed, err)
			}
			t.Logf("seed %#x: scenarios %v, %d acked, %d failed, %d promotions, recovery %v",
				seed, rep.Scenarios, rep.AckedTotal, rep.FailedOps,
				rep.ExpectedPromotions, rep.RecoveryAttempts)
		})
	}
}

// TestChaosRestartRejoin drives the anti-entropy scenario on its own:
// a backup dies, writes land during its downtime, the restarted node
// catches up via range digests and is re-admitted, and the schedule
// then fails the group over ONTO it — the only place the downtime
// writes can be served from is state it recovered through streaming.
func TestChaosRestartRejoin(t *testing.T) {
	c := newChaosCluster(t)
	rep, err := Run(c, RunOptions{
		Seed:      0x8e70,
		Scenarios: []Scenario{ScenarioRestartRejoin},
		BurstOps:  15,
		Log:       t.Logf,
	})
	if err != nil {
		t.Fatalf("chaos run: %v", err)
	}
	if rep.ExpectedPromotions != 1 {
		t.Fatalf("expected 1 promotion (onto the rejoined node), schedule produced %d", rep.ExpectedPromotions)
	}
	if rep.AckedTotal == 0 {
		t.Fatal("no writes acknowledged")
	}
	// The scenario ends with every node rejoined; all three replicas
	// must hold every acknowledged write (verify checked this), and each
	// node's own state machine must settle on member (its local view can
	// lag the coordinator majority by a poll interval).
	for i := 0; i < c.Nodes(); i++ {
		deadline := time.Now().Add(5 * time.Second)
		for {
			st := c.Node(i).RecoveryStatus()
			if st.State == "member" || st.State == "idle" {
				break
			}
			if time.Now().After(deadline) {
				t.Errorf("node %d recovery state %q after schedule", i, st.State)
				break
			}
			time.Sleep(25 * time.Millisecond)
		}
	}
	t.Logf("restart-rejoin: %d acked, %d failed, recovery attempts %v",
		rep.AckedTotal, rep.FailedOps, rep.RecoveryAttempts)
}

// TestChaosMigrateUnderChaos drives a live object migration into a
// source-primary crash: the transfer is slowed so the kill lands inside
// it, and the move must either abort cleanly (object stays with the
// promoted group 0 backup, the target's janitor reclaims the partial
// copy) or commit cleanly (the target group serves it) — with every
// acknowledged write intact either way.
func TestChaosMigrateUnderChaos(t *testing.T) {
	c, err := Start(Options{
		BaseDir:         t.TempDir(),
		ExtraGroupNodes: 1,
		// Tight janitor so an aborted move's partial copy is reclaimed
		// within the test's patience.
		MoveSessionTimeout: 2 * time.Second,
	})
	if err != nil {
		t.Fatalf("chaos start: %v", err)
	}
	t.Cleanup(func() {
		c.Close()
		fault.Reset()
	})
	rep, err := Run(c, RunOptions{
		Seed:      0x317a,
		Scenarios: []Scenario{ScenarioMigrateUnderChaos},
		BurstOps:  15,
		Log:       t.Logf,
	})
	if err != nil {
		t.Fatalf("chaos run: %v", err)
	}
	if rep.ExpectedPromotions != 1 {
		t.Fatalf("expected 1 promotion, schedule produced %d", rep.ExpectedPromotions)
	}
	if rep.AckedTotal == 0 {
		t.Fatal("no writes acknowledged")
	}
	t.Logf("migrate-under-chaos: %d acked, %d failed, recovery attempts %v",
		rep.AckedTotal, rep.FailedOps, rep.RecoveryAttempts)
}

// TestChaosOverloadRestartRejoin arms a deliberately tiny admission
// plane (2 execution slots, queue of 8, 5ms deadline) and drives the
// restart-rejoin scenario, whose schedule slams the group with a 16-way
// overload burst while the restarted backup is still catching up. The
// plane must actually shed under that pressure, every refusal must be a
// clean pre-execution ErrOverload, and — the invariant the scenario
// exists for — every write acknowledged through the overload must
// survive the subsequent failover onto the rejoined node (Run's
// end-of-run verifier checks the ledgers).
func TestChaosOverloadRestartRejoin(t *testing.T) {
	c, err := Start(Options{
		BaseDir:           t.TempDir(),
		AdmissionQueue:    8,
		AdmissionDeadline: 5 * time.Millisecond,
		AdmissionWorkers:  2,
	})
	if err != nil {
		t.Fatalf("chaos start: %v", err)
	}
	t.Cleanup(func() {
		c.Close()
		fault.Reset()
	})
	rep, err := Run(c, RunOptions{
		Seed:      0x0ad1,
		Scenarios: []Scenario{ScenarioRestartRejoin},
		BurstOps:  15,
		Log:       t.Logf,
	})
	if err != nil {
		t.Fatalf("chaos run: %v", err)
	}
	if rep.OverloadShed == 0 {
		t.Error("overload burst shed nothing — admission plane never engaged")
	}
	if rep.OverloadAcked == 0 {
		t.Error("overload burst acknowledged nothing — total refusal, not overload control")
	}
	if rep.ExpectedPromotions != 1 {
		t.Fatalf("expected 1 promotion (onto the rejoined node), schedule produced %d", rep.ExpectedPromotions)
	}
	t.Logf("overload restart-rejoin: %d acked (%d under overload), %d shed, %d failed, recovery %v",
		rep.AckedTotal, rep.OverloadAcked, rep.OverloadShed, rep.FailedOps, rep.RecoveryAttempts)
}

func fmt_seed(s uint64) string {
	const hex = "0123456789abcdef"
	buf := []byte("seed-0x")
	started := false
	for shift := 60; shift >= 0; shift -= 4 {
		d := (s >> uint(shift)) & 0xf
		if d == 0 && !started && shift > 0 {
			continue
		}
		started = true
		buf = append(buf, hex[d])
	}
	return string(buf)
}

// TestChaosPromotionUnderHeartbeatLoss covers coordinator promotion
// under heartbeat loss: a gray failure (heartbeats dropped, node still
// serving) followed by a full partition of the then-current primary.
// Each failure must yield exactly one promotion on a coordinator
// majority and never more than one on any replica, and every write
// acknowledged before the partition must be readable after it.
func TestChaosPromotionUnderHeartbeatLoss(t *testing.T) {
	c := newChaosCluster(t)
	rep, err := Run(c, RunOptions{
		Seed:      0x4b1d,
		Scenarios: []Scenario{ScenarioHeartbeatLoss, ScenarioPartitionPrimary},
		BurstOps:  15,
		Log:       t.Logf,
	})
	if err != nil {
		t.Fatalf("chaos run: %v", err)
	}
	if rep.ExpectedPromotions != 2 {
		t.Fatalf("expected 2 promotions, schedule produced %d", rep.ExpectedPromotions)
	}
	// Safety: no replica ever applies more promotions than failures.
	// Liveness: a majority applied exactly that many.
	exact := 0
	coords := c.Coordinators()
	for i, svc := range coords {
		got := svc.PromoteCounts()[0]
		if got > rep.ExpectedPromotions {
			t.Errorf("coordinator %d applied %d promotions, want at most %d (single-primary violation)",
				i, got, rep.ExpectedPromotions)
		}
		if got == rep.ExpectedPromotions {
			exact++
		}
	}
	if exact <= len(coords)/2 {
		t.Errorf("only %d/%d coordinator replicas applied %d promotions",
			exact, len(coords), rep.ExpectedPromotions)
	}
}
