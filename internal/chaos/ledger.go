// Package chaos drives a multi-node in-process LambdaStore cluster
// through seeded fault schedules and checks the failover safety
// invariants the paper's re-aggregated design promises (§4.2):
//
//  1. No acknowledged write is ever lost: every append the client saw
//     succeed is present in the surviving ledger after any sequence of
//     primary crashes, link partitions, fsync failures and gray
//     failures. At-least-once semantics make duplicates and
//     unacknowledged-but-applied writes legal; losing an ack is not.
//  2. At most one primary per group per configuration epoch: every
//     coordinator replica applies exactly one effective promotion per
//     primary failure (the Paxos-serialized promote guard is the
//     mechanism; Service.PromoteCounts is the probe).
//  3. Bounded recovery: after a fault heals (or a backup is promoted),
//     the client regains write availability within a bounded number of
//     retries.
//
// The harness builds on the process-global internal/fault plane, so it
// runs the whole cluster — three coordinator replicas and N storage
// nodes — inside one test process and stays -race clean.
package chaos

import (
	"encoding/binary"
	"fmt"

	"lambdastore/internal/core"
	"lambdastore/internal/vm"
)

// ledgerSrc is the guest program for the Ledger object type: an
// append-only log of 8-byte ids in a single value field. A ledger makes
// the no-lost-ack invariant checkable under at-least-once delivery: a
// counter cannot distinguish "lost one, duplicated one", but a ledger
// read returns the exact multiset of applied ids, so the harness can
// assert set-inclusion of every acknowledged id while tolerating
// duplicates from retries and injected frame duplication.
const ledgerSrc = `
;; memcpy(dst, src, n): byte copy within guest memory.
func memcpy params=3
loop:
  local.get 2
  push 0
  le_s
  jnz done
  local.get 0
  local.get 1
  load8_u
  store8
  local.get 0
  push 1
  add
  local.set 0
  local.get 1
  push 1
  add
  local.set 1
  local.get 2
  push 1
  sub
  local.set 2
  jmp loop
done:
  ret
end

;; result_i64(v): set an 8-byte little-endian result.
func result_i64 params=1 locals=1
  push 8
  hostcall alloc
  local.set 1
  local.get 1
  local.get 0
  store64
  local.get 1
  push 8
  hostcall set_result
  ret
end

;; append(id): log = log | id8; returns the id it appended.
func append params=0 locals=4 export
  ;; locals: 0=old_ptr 1=old_len 2=new_ptr 3=id
  str "log"
  hostcall val_get
  dup
  push -1
  eq
  jnz fresh
  dup
  unpack.ptr
  local.set 0
  unpack.len
  local.set 1
  jmp have
fresh:
  pop
  push 0
  local.set 0
  push 0
  local.set 1
have:
  local.get 1
  push 8
  add
  hostcall alloc
  local.set 2
  local.get 2
  local.get 0
  local.get 1
  call memcpy
  push 0
  hostcall arg
  unpack.ptr
  load64
  local.set 3
  local.get 2
  local.get 1
  add
  local.get 3
  store64
  str "log"
  local.get 2
  local.get 1
  push 8
  add
  hostcall val_set
  local.get 3
  call result_i64
  ret
end

;; list(): returns the raw log blob (8 bytes per appended id).
func list params=0 export
  str "log"
  hostcall val_get
  dup
  push -1
  eq
  jnz empty
  dup
  unpack.ptr
  swap
  unpack.len
  hostcall set_result
  ret
empty:
  pop
  ret
end
`

// LedgerType assembles the Ledger object type.
func LedgerType() (*core.ObjectType, error) {
	mod, err := vm.Assemble(ledgerSrc)
	if err != nil {
		return nil, fmt.Errorf("chaos: assemble ledger: %w", err)
	}
	return core.NewObjectType("Ledger",
		[]core.FieldDef{{Name: "log", Kind: core.FieldValue}},
		[]core.MethodInfo{
			{Name: "append"},
			{Name: "list", ReadOnly: true, Deterministic: true},
		}, mod)
}

// DecodeLog parses a list() result into the applied id sequence.
func DecodeLog(b []byte) []uint64 {
	ids := make([]uint64, 0, len(b)/8)
	for len(b) >= 8 {
		ids = append(ids, binary.LittleEndian.Uint64(b[:8]))
		b = b[8:]
	}
	return ids
}
