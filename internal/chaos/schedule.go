package chaos

import (
	"fmt"
	"time"

	"lambdastore/internal/cluster"
	"lambdastore/internal/core"
	"lambdastore/internal/fault"
)

// Scenario is one fault class the schedule can inject against the
// current primary.
type Scenario int

const (
	// ScenarioCrashPrimary kills the primary process and later restarts
	// it on the same address and data directory (WAL recovery).
	ScenarioCrashPrimary Scenario = iota
	// ScenarioPartitionPrimary isolates the primary from every other
	// endpoint (coordinators, backups, clients) via the partition
	// matrix; heartbeats stop, so a backup is promoted.
	ScenarioPartitionPrimary
	// ScenarioWALSyncFail makes every fsync on the primary's database
	// fail: commits error, no write is acknowledged, no promotion
	// happens (the node stays live).
	ScenarioWALSyncFail
	// ScenarioHeartbeatLoss is a gray failure: the primary keeps
	// serving but its liveness reports are dropped, so the coordinator
	// promotes a backup out from under it.
	ScenarioHeartbeatLoss
	// ScenarioDupDelay duplicates and delays frames to the primary —
	// at-least-once probing; the ledger may grow duplicate entries but
	// must lose nothing.
	ScenarioDupDelay
	// ScenarioRestartRejoin kills a backup, writes through its downtime,
	// restarts it and waits for anti-entropy rejoin, then kills its way
	// down to the rejoined node as sole survivor: the final promotion
	// fails over ONTO the rejoined replica, so every acknowledged write —
	// including the downtime ones it caught up on — must be served by it.
	ScenarioRestartRejoin

	numScenarios
)

// AllScenarios lists every scenario in declaration order.
var AllScenarios = []Scenario{
	ScenarioCrashPrimary,
	ScenarioPartitionPrimary,
	ScenarioWALSyncFail,
	ScenarioHeartbeatLoss,
	ScenarioDupDelay,
	ScenarioRestartRejoin,
}

func (s Scenario) String() string {
	switch s {
	case ScenarioCrashPrimary:
		return "crash-primary"
	case ScenarioPartitionPrimary:
		return "partition-primary"
	case ScenarioWALSyncFail:
		return "wal-sync-fail"
	case ScenarioHeartbeatLoss:
		return "heartbeat-loss"
	case ScenarioDupDelay:
		return "dup-delay"
	case ScenarioRestartRejoin:
		return "restart-rejoin"
	}
	return fmt.Sprintf("scenario(%d)", int(s))
}

// RunOptions parameterizes one chaos run.
type RunOptions struct {
	// Seed drives the whole schedule: scenario order, object choice and
	// the fault plane's rule streams. Same seed, same schedule.
	Seed uint64
	// Scenarios is the injection sequence. Nil means a seed-derived
	// shuffle of AllScenarios, so every run covers every fault class.
	Scenarios []Scenario
	// BurstOps is the number of appends per workload burst (default 25).
	BurstOps int
	// Objects is the ledger object count (default 4).
	Objects int
	// MaxRecoveryAttempts bounds the post-heal availability probe — the
	// harness's third invariant (default 400 attempts at 25ms spacing).
	MaxRecoveryAttempts int
	// PromoteTimeout bounds the wait for an expected promotion to land
	// on a coordinator majority (default 10s).
	PromoteTimeout time.Duration
	// RejoinTimeout bounds the wait for a restarted replica's
	// anti-entropy catch-up to end in re-admission (default 30s).
	RejoinTimeout time.Duration
	// Log, if set, receives progress lines (t.Logf fits).
	Log func(format string, args ...any)
}

func (o *RunOptions) defaults() {
	if o.BurstOps <= 0 {
		o.BurstOps = 25
	}
	if o.Objects <= 0 {
		o.Objects = 4
	}
	if o.MaxRecoveryAttempts <= 0 {
		o.MaxRecoveryAttempts = 400
	}
	if o.PromoteTimeout <= 0 {
		o.PromoteTimeout = 10 * time.Second
	}
	if o.RejoinTimeout <= 0 {
		o.RejoinTimeout = 30 * time.Second
	}
	if o.Log == nil {
		o.Log = func(string, ...any) {}
	}
}

// Report is the outcome of a chaos run. A nil error from Run means all
// three invariants held for this schedule.
type Report struct {
	Scenarios []Scenario
	// Acked records every write id the client saw acknowledged, per
	// object — the ground truth for the no-lost-ack invariant.
	Acked map[core.ObjectID][]uint64
	// AckedTotal and FailedOps summarize the workload.
	AckedTotal int
	FailedOps  int
	// ExpectedPromotions is how many primary failures should each have
	// produced exactly one promotion.
	ExpectedPromotions uint64
	// RecoveryAttempts[i] is how many write attempts scenario i's heal
	// needed before the cluster acknowledged again.
	RecoveryAttempts []int
}

// rng is a splitmix64 stream for schedule decisions (object choice,
// scenario shuffle) — independent of the fault plane's rule streams.
type rng struct{ s uint64 }

func (r *rng) next() uint64 {
	r.s += 0x9e3779b97f4a7c15
	z := r.s
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

func (r *rng) intn(n int) int { return int(r.next() % uint64(n)) }

// shuffledScenarios returns AllScenarios in a seed-dependent order.
func shuffledScenarios(r *rng) []Scenario {
	out := append([]Scenario(nil), AllScenarios...)
	for i := len(out) - 1; i > 0; i-- {
		j := r.intn(i + 1)
		out[i], out[j] = out[j], out[i]
	}
	return out
}

// runner threads one chaos run's state.
type runner struct {
	c       *Cluster
	client  *cluster.Client
	opts    RunOptions
	rng     rng
	objects []core.ObjectID
	report  *Report
	nextID  uint64
}

// Run executes a seeded fault schedule against the cluster and checks
// the invariants. The fault plane is reset before and after: a Run owns
// the process-global plane for its duration, so runs must not overlap.
func Run(c *Cluster, opts RunOptions) (*Report, error) {
	opts.defaults()
	fault.Reset()
	fault.SetSeed(opts.Seed)
	defer fault.Reset()

	r := &runner{
		c:      c,
		client: c.Client(),
		opts:   opts,
		rng:    rng{s: opts.Seed ^ 0x5851f42d4c957f2d},
		report: &Report{Acked: make(map[core.ObjectID][]uint64)},
		nextID: 1,
	}
	r.report.Scenarios = opts.Scenarios
	if r.report.Scenarios == nil {
		r.report.Scenarios = shuffledScenarios(&r.rng)
	}

	if err := r.setup(); err != nil {
		return r.report, err
	}
	for i, s := range r.report.Scenarios {
		opts.Log("chaos: scenario %d/%d: %s", i+1, len(r.report.Scenarios), s)
		if err := r.runScenario(s); err != nil {
			return r.report, fmt.Errorf("chaos: scenario %s: %w", s, err)
		}
	}
	if err := r.verify(); err != nil {
		return r.report, err
	}
	if r.report.AckedTotal == 0 {
		return r.report, fmt.Errorf("chaos: workload acknowledged nothing — schedule proved nothing")
	}
	return r.report, nil
}

// setup installs the Ledger type and creates the workload objects,
// waiting out the initial configuration propagation.
func (r *runner) setup() error {
	typ, err := LedgerType()
	if err != nil {
		return err
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		err := r.c.RefreshClientConfig()
		if err == nil && len(r.client.Directory().Groups()) > 0 {
			if err = r.client.RegisterType(typ); err == nil {
				break
			}
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("chaos: cluster never became configurable: %v", err)
		}
		time.Sleep(25 * time.Millisecond)
	}
	for i := 0; i < r.opts.Objects; i++ {
		id := core.ObjectID(i + 1)
		var lastErr error
		for {
			if lastErr = r.client.CreateObject("Ledger", id); lastErr == nil {
				break
			}
			if time.Now().After(deadline) {
				return fmt.Errorf("chaos: create object %d: %w", id, lastErr)
			}
			time.Sleep(25 * time.Millisecond)
		}
		r.objects = append(r.objects, id)
	}
	return nil
}

// burst appends n unique ids across the workload objects, recording
// which the cluster acknowledged. Failures are expected under active
// faults; an id whose append errored MAY still be applied (at-least-
// once), which the verifier tolerates.
func (r *runner) burst(n int) {
	for i := 0; i < n; i++ {
		obj := r.objects[r.rng.intn(len(r.objects))]
		id := r.nextID
		r.nextID++
		_, err := r.client.Invoke(obj, "append", [][]byte{core.I64Bytes(int64(id))})
		if err == nil {
			r.report.Acked[obj] = append(r.report.Acked[obj], id)
			r.report.AckedTotal++
		} else {
			r.report.FailedOps++
		}
	}
}

// runScenario performs one inject → fault burst → (await promotion) →
// heal → bounded-recovery cycle.
func (r *runner) runScenario(s Scenario) error {
	if s == ScenarioRestartRejoin {
		return r.runRestartRejoin()
	}
	r.burst(r.opts.BurstOps)

	pi, err := r.c.PrimaryIndex()
	if err != nil {
		return fmt.Errorf("resolve primary: %w", err)
	}
	g, err := r.c.Group()
	if err != nil {
		return err
	}
	addr, dataDir := r.c.NodeAddr(pi), r.c.NodeDataDir(pi)

	expectPromote := false
	var heal func() error
	switch s {
	case ScenarioCrashPrimary:
		expectPromote = len(g.Backups) > 0
		if err := r.c.Kill(pi); err != nil {
			return err
		}
		heal = func() error { return r.c.Restart(pi) }
	case ScenarioPartitionPrimary:
		expectPromote = len(g.Backups) > 0
		fault.Partition(addr, fault.Wildcard)
		heal = func() error { fault.Heal(addr, fault.Wildcard); return nil }
	case ScenarioWALSyncFail:
		fault.Add(fault.Rule{Site: fault.SiteWALSync, Key: dataDir, Action: fault.Error, Err: "injected fsync failure"})
		heal = func() error { fault.Remove(fault.SiteWALSync, dataDir); return nil }
	case ScenarioHeartbeatLoss:
		expectPromote = len(g.Backups) > 0
		fault.Add(fault.Rule{Site: fault.SiteCoordHeartbeat, Key: addr, Action: fault.Drop})
		heal = func() error { fault.Remove(fault.SiteCoordHeartbeat, addr); return nil }
	case ScenarioDupDelay:
		fault.Add(fault.Rule{Site: fault.SiteRPCSend, Key: addr, Action: fault.Duplicate, P: 0.4})
		fault.Add(fault.Rule{Site: fault.SiteRPCRecv, Key: addr, Action: fault.Delay, Delay: 2 * time.Millisecond, P: 0.4})
		heal = func() error {
			fault.Remove(fault.SiteRPCSend, addr)
			fault.Remove(fault.SiteRPCRecv, addr)
			return nil
		}
	default:
		return fmt.Errorf("unknown scenario %d", int(s))
	}
	if expectPromote {
		r.report.ExpectedPromotions++
	}

	r.burst(r.opts.BurstOps)

	// An expected promotion must land on a coordinator majority BEFORE
	// healing: healing first would let heartbeats resume and the
	// detector would (correctly) never fire.
	if expectPromote {
		if err := r.awaitPromotions(r.report.ExpectedPromotions); err != nil {
			return err
		}
	}
	if err := heal(); err != nil {
		return err
	}

	// Invariant 3: bounded recovery. Fresh id per attempt — a failed
	// attempt may still have been applied, and set-inclusion only binds
	// acknowledged ids.
	attempts, err := r.awaitWrite()
	r.report.RecoveryAttempts = append(r.report.RecoveryAttempts, attempts)
	if err != nil {
		return fmt.Errorf("availability not restored after %d attempts: %w", attempts, err)
	}
	r.opts.Log("chaos: %s healed; recovered after %d write attempts", s, attempts)
	return nil
}

// runRestartRejoin drives the anti-entropy rejoin scenario: kill a
// backup, write through its downtime, restart it and wait for digest
// catch-up to end in re-admission, then remove every other member so
// the final promotion has no choice but the rejoined replica. Writes
// acknowledged afterwards are served by a node whose only copy of the
// downtime history came through recovery streaming — the schedule's
// end-of-run verifier then proves none were lost.
func (r *runner) runRestartRejoin() error {
	// Earlier scenarios heal by restarting nodes whose rejoin may still
	// be in flight; deterministic roles need full membership first.
	if err := r.waitFullMembership(); err != nil {
		return err
	}
	r.burst(r.opts.BurstOps)

	pi, err := r.c.PrimaryIndex()
	if err != nil {
		return fmt.Errorf("resolve primary: %w", err)
	}
	g, err := r.c.Group()
	if err != nil {
		return err
	}
	backups := make([]int, 0, len(g.Backups))
	for i := 0; i < r.c.Nodes(); i++ {
		for _, b := range g.Backups {
			if r.c.NodeAddr(i) == b {
				backups = append(backups, i)
			}
		}
	}
	if len(backups) == 0 {
		return fmt.Errorf("no backup to restart")
	}
	bi := backups[r.rng.intn(len(backups))]

	// Kill the chosen backup and wait for its eviction: only then do
	// writes acknowledge again, and those acks are the downtime history
	// the restarted node must recover without having seen.
	if err := r.c.Kill(bi); err != nil {
		return err
	}
	if err := r.c.WaitEvicted(bi, r.opts.PromoteTimeout); err != nil {
		return err
	}
	r.burst(r.opts.BurstOps)

	r.opts.Log("chaos: restarting node %d, awaiting anti-entropy rejoin", bi)
	if err := r.c.Restart(bi); err != nil {
		return err
	}
	if err := r.c.WaitBackup(bi, r.opts.RejoinTimeout); err != nil {
		return err
	}
	r.burst(r.opts.BurstOps)

	// Strip the group down to the rejoined node: every other backup
	// first (evictions, no promotion)...
	killed := []int{}
	for _, oi := range backups {
		if oi == bi {
			continue
		}
		if err := r.c.Kill(oi); err != nil {
			return err
		}
		if err := r.c.WaitEvicted(oi, r.opts.PromoteTimeout); err != nil {
			return err
		}
		killed = append(killed, oi)
	}
	r.burst(r.opts.BurstOps)

	// ...then the primary: the only promotion candidate left is the
	// rejoined replica.
	if err := r.c.Kill(pi); err != nil {
		return err
	}
	killed = append(killed, pi)
	r.report.ExpectedPromotions++
	if err := r.awaitPromotions(r.report.ExpectedPromotions); err != nil {
		return err
	}
	if g, err = r.c.Group(); err != nil {
		return err
	}
	if g.Primary != r.c.NodeAddr(bi) {
		return fmt.Errorf("failover went to %s, not the rejoined node %s", g.Primary, r.c.NodeAddr(bi))
	}
	r.opts.Log("chaos: rejoined node %d promoted to primary", bi)

	// Heal: restart the dead nodes (their managers re-admit them) and
	// require bounded recovery like every other scenario.
	for _, i := range killed {
		if err := r.c.Restart(i); err != nil {
			return err
		}
	}
	attempts, err := r.awaitWrite()
	r.report.RecoveryAttempts = append(r.report.RecoveryAttempts, attempts)
	if err != nil {
		return fmt.Errorf("availability not restored after %d attempts: %w", attempts, err)
	}
	for _, i := range killed {
		if err := r.c.WaitBackup(i, r.opts.RejoinTimeout); err != nil {
			return err
		}
	}
	r.opts.Log("chaos: restart-rejoin healed; recovered after %d write attempts", attempts)
	return nil
}

// waitFullMembership blocks until every harness node is alive and a
// member of group 0 (pending heal-time rejoins have completed).
func (r *runner) waitFullMembership() error {
	for i := 0; i < r.c.Nodes(); i++ {
		if !r.c.Alive(i) {
			return fmt.Errorf("node %d is down at scenario start", i)
		}
	}
	deadline := time.Now().Add(r.opts.RejoinTimeout)
	for {
		g, err := r.c.Group()
		if err == nil && g.Primary != "" && len(g.Backups) == r.c.Nodes()-1 {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("full membership never restored (group %+v, err %v)", g, err)
		}
		time.Sleep(25 * time.Millisecond)
	}
}

// awaitPromotions waits until a majority of coordinator replicas have
// applied exactly want effective promotions for group 0, failing fast
// if any replica ever exceeds it (two primaries in one epoch).
func (r *runner) awaitPromotions(want uint64) error {
	coords := r.c.Coordinators()
	deadline := time.Now().Add(r.opts.PromoteTimeout)
	for {
		reached := 0
		for _, svc := range coords {
			got := svc.PromoteCounts()[0]
			if got > want {
				return fmt.Errorf("coordinator applied %d promotions for group 0, want %d (single-primary violation)", got, want)
			}
			if got == want {
				reached++
			}
		}
		if reached > len(coords)/2 {
			return nil
		}
		if time.Now().After(deadline) {
			detail := ""
			for i, svc := range coords {
				var prim string
				for _, g := range svc.Directory().Groups() {
					if g.ID == 0 {
						prim = fmt.Sprintf("%s+%v", g.Primary, g.Backups)
					}
				}
				detail += fmt.Sprintf(" coord%d{promotes=%v group=%s}", i, svc.PromoteCounts(), prim)
			}
			return fmt.Errorf("promotion %d never reached a coordinator majority:%s", want, detail)
		}
		time.Sleep(25 * time.Millisecond)
	}
}

// awaitWrite retries appends until one is acknowledged, bounding the
// attempt count.
func (r *runner) awaitWrite() (int, error) {
	var lastErr error
	for attempt := 1; attempt <= r.opts.MaxRecoveryAttempts; attempt++ {
		obj := r.objects[r.rng.intn(len(r.objects))]
		id := r.nextID
		r.nextID++
		if _, lastErr = r.client.Invoke(obj, "append", [][]byte{core.I64Bytes(int64(id))}); lastErr == nil {
			r.report.Acked[obj] = append(r.report.Acked[obj], id)
			r.report.AckedTotal++
			return attempt, nil
		}
		time.Sleep(25 * time.Millisecond)
	}
	return r.opts.MaxRecoveryAttempts, lastErr
}

// verify checks invariants 1 and 2 after the schedule completes: every
// acknowledged id is present in the surviving ledgers (read through the
// current primary AND directly from every live group replica's store),
// and every coordinator replica converges to exactly the expected
// number of promotions.
func (r *runner) verify() error {
	if err := r.awaitPromotions(r.report.ExpectedPromotions); err != nil {
		return err
	}
	// Convergence: give stragglers a moment, then insist on exactness.
	deadline := time.Now().Add(r.opts.PromoteTimeout)
	for {
		exact := true
		for _, svc := range r.c.Coordinators() {
			if got := svc.PromoteCounts()[0]; got != r.report.ExpectedPromotions {
				if got > r.report.ExpectedPromotions {
					return fmt.Errorf("coordinator applied %d promotions, want %d (single-primary violation)",
						got, r.report.ExpectedPromotions)
				}
				exact = false
			}
		}
		if exact || time.Now().After(deadline) {
			break // a lagging minority replica is a liveness gap, not a safety violation
		}
		time.Sleep(25 * time.Millisecond)
	}

	g, err := r.c.Group()
	if err != nil {
		return err
	}
	for _, obj := range r.objects {
		acked := r.report.Acked[obj]
		if len(acked) == 0 {
			continue
		}
		// Through the client (routed to the current primary).
		var raw []byte
		var lastErr error
		for attempt := 0; attempt < 40; attempt++ {
			if raw, lastErr = r.client.Invoke(obj, "list", nil); lastErr == nil {
				break
			}
			time.Sleep(25 * time.Millisecond)
		}
		if lastErr != nil {
			return fmt.Errorf("read back object %d: %w", obj, lastErr)
		}
		if err := requireAll(acked, DecodeLog(raw), fmt.Sprintf("object %d via primary", obj)); err != nil {
			return err
		}
		// Directly from every live replica's store: strict replication
		// means an acknowledged write is on every group member.
		replicas := map[string]bool{g.Primary: true}
		for _, b := range g.Backups {
			replicas[b] = true
		}
		for i := 0; i < r.c.Nodes(); i++ {
			if !r.c.Alive(i) || !replicas[r.c.NodeAddr(i)] {
				continue
			}
			// Bounded retry: on a loaded single-core box the backup's
			// apply goroutine can lag the primary's acknowledgement by a
			// scheduling quantum; the write must still land within the
			// window or it is genuinely lost.
			where := fmt.Sprintf("object %d at replica %s (group primary=%s backups=%v)", obj, r.c.NodeAddr(i), g.Primary, g.Backups)
			var checkErr error
			for attempt := 0; attempt < 40; attempt++ {
				if attempt > 0 {
					time.Sleep(25 * time.Millisecond)
				}
				v, err := r.c.slots[i].node.Runtime().GetValueField(obj, "log")
				if err != nil {
					checkErr = fmt.Errorf("object %d missing at replica %s: %w", obj, r.c.NodeAddr(i), err)
					continue
				}
				checkErr = requireAll(acked, DecodeLog(v), where)
				if checkErr == nil {
					break
				}
			}
			if checkErr != nil {
				return checkErr
			}
		}
	}
	return nil
}

// requireAll asserts every acknowledged id appears in the ledger
// (duplicates and extra unacknowledged ids are legal).
func requireAll(acked, ledger []uint64, where string) error {
	present := make(map[uint64]bool, len(ledger))
	for _, id := range ledger {
		present[id] = true
	}
	for _, id := range acked {
		if !present[id] {
			return fmt.Errorf("chaos: %s: acknowledged write %d lost (%d acked, %d in ledger)",
				where, id, len(acked), len(ledger))
		}
	}
	return nil
}
