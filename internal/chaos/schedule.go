package chaos

import (
	"fmt"
	"sync"
	"time"

	"lambdastore/internal/admission"
	"lambdastore/internal/cluster"
	"lambdastore/internal/core"
	"lambdastore/internal/fault"
)

// Scenario is one fault class the schedule can inject against the
// current primary.
type Scenario int

const (
	// ScenarioCrashPrimary kills the primary process and later restarts
	// it on the same address and data directory (WAL recovery).
	ScenarioCrashPrimary Scenario = iota
	// ScenarioPartitionPrimary isolates the primary from every other
	// endpoint (coordinators, backups, clients) via the partition
	// matrix; heartbeats stop, so a backup is promoted.
	ScenarioPartitionPrimary
	// ScenarioWALSyncFail makes every fsync on the primary's database
	// fail: commits error, no write is acknowledged, no promotion
	// happens (the node stays live).
	ScenarioWALSyncFail
	// ScenarioHeartbeatLoss is a gray failure: the primary keeps
	// serving but its liveness reports are dropped, so the coordinator
	// promotes a backup out from under it.
	ScenarioHeartbeatLoss
	// ScenarioDupDelay duplicates and delays frames to the primary —
	// at-least-once probing; the ledger may grow duplicate entries but
	// must lose nothing.
	ScenarioDupDelay
	// ScenarioRestartRejoin kills a backup, writes through its downtime,
	// restarts it and waits for anti-entropy rejoin, then kills its way
	// down to the rejoined node as sole survivor: the final promotion
	// fails over ONTO the rejoined replica, so every acknowledged write —
	// including the downtime ones it caught up on — must be served by it.
	ScenarioRestartRejoin

	numScenarios

	// ScenarioMigrateUnderChaos kills the source primary in the middle
	// of a live object migration: the move must either abort cleanly
	// (the target's janitor reclaims the partial copy) or commit cleanly
	// (the object is served by the target group), never both or neither.
	// It needs a second replica group (Options.ExtraGroupNodes) so it is
	// NOT part of AllScenarios — default schedules and their seeds are
	// unchanged; run it explicitly via RunOptions.Scenarios.
	ScenarioMigrateUnderChaos Scenario = numScenarios
)

// AllScenarios lists every scenario in declaration order.
var AllScenarios = []Scenario{
	ScenarioCrashPrimary,
	ScenarioPartitionPrimary,
	ScenarioWALSyncFail,
	ScenarioHeartbeatLoss,
	ScenarioDupDelay,
	ScenarioRestartRejoin,
}

func (s Scenario) String() string {
	switch s {
	case ScenarioCrashPrimary:
		return "crash-primary"
	case ScenarioPartitionPrimary:
		return "partition-primary"
	case ScenarioWALSyncFail:
		return "wal-sync-fail"
	case ScenarioHeartbeatLoss:
		return "heartbeat-loss"
	case ScenarioDupDelay:
		return "dup-delay"
	case ScenarioRestartRejoin:
		return "restart-rejoin"
	case ScenarioMigrateUnderChaos:
		return "migrate-under-chaos"
	}
	return fmt.Sprintf("scenario(%d)", int(s))
}

// RunOptions parameterizes one chaos run.
type RunOptions struct {
	// Seed drives the whole schedule: scenario order, object choice and
	// the fault plane's rule streams. Same seed, same schedule.
	Seed uint64
	// Scenarios is the injection sequence. Nil means a seed-derived
	// shuffle of AllScenarios, so every run covers every fault class.
	Scenarios []Scenario
	// BurstOps is the number of appends per workload burst (default 25).
	BurstOps int
	// Objects is the ledger object count (default 4).
	Objects int
	// MaxRecoveryAttempts bounds the post-heal availability probe — the
	// harness's third invariant (default 400 attempts at 25ms spacing).
	MaxRecoveryAttempts int
	// PromoteTimeout bounds the wait for an expected promotion to land
	// on a coordinator majority (default 10s).
	PromoteTimeout time.Duration
	// RejoinTimeout bounds the wait for a restarted replica's
	// anti-entropy catch-up to end in re-admission (default 30s).
	RejoinTimeout time.Duration
	// Log, if set, receives progress lines (t.Logf fits).
	Log func(format string, args ...any)
}

func (o *RunOptions) defaults() {
	if o.BurstOps <= 0 {
		o.BurstOps = 25
	}
	if o.Objects <= 0 {
		o.Objects = 4
	}
	if o.MaxRecoveryAttempts <= 0 {
		o.MaxRecoveryAttempts = 400
	}
	if o.PromoteTimeout <= 0 {
		o.PromoteTimeout = 10 * time.Second
	}
	if o.RejoinTimeout <= 0 {
		o.RejoinTimeout = 30 * time.Second
	}
	if o.Log == nil {
		o.Log = func(string, ...any) {}
	}
}

// Report is the outcome of a chaos run. A nil error from Run means all
// three invariants held for this schedule.
type Report struct {
	Scenarios []Scenario
	// Acked records every write id the client saw acknowledged, per
	// object — the ground truth for the no-lost-ack invariant.
	Acked map[core.ObjectID][]uint64
	// AckedTotal and FailedOps summarize the workload.
	AckedTotal int
	FailedOps  int
	// ExpectedPromotions is how many primary failures should each have
	// produced exactly one promotion.
	ExpectedPromotions uint64
	// RecoveryAttempts[i] is how many write attempts scenario i's heal
	// needed before the cluster acknowledged again.
	RecoveryAttempts []int
	// OverloadAcked and OverloadShed summarize the restart-rejoin
	// scenario's overload burst: writes the cluster acknowledged under
	// pressure (these join Acked, so the verifier holds them to the
	// no-lost-ack invariant) and arrivals the admission plane refused.
	// A refusal is a clean ErrOverload BEFORE execution — a shed write is
	// never acknowledged, so the two invariants cannot both claim one id.
	OverloadAcked int
	OverloadShed  int
}

// rng is a splitmix64 stream for schedule decisions (object choice,
// scenario shuffle) — independent of the fault plane's rule streams.
type rng struct{ s uint64 }

func (r *rng) next() uint64 {
	r.s += 0x9e3779b97f4a7c15
	z := r.s
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

func (r *rng) intn(n int) int { return int(r.next() % uint64(n)) }

// shuffledScenarios returns AllScenarios in a seed-dependent order.
func shuffledScenarios(r *rng) []Scenario {
	out := append([]Scenario(nil), AllScenarios...)
	for i := len(out) - 1; i > 0; i-- {
		j := r.intn(i + 1)
		out[i], out[j] = out[j], out[i]
	}
	return out
}

// runner threads one chaos run's state.
type runner struct {
	c       *Cluster
	client  *cluster.Client
	opts    RunOptions
	rng     rng
	objects []core.ObjectID
	report  *Report
	nextID  uint64
	// probeBase carves id ranges for lease probes, far above nextID so
	// probe appends never collide with the main workload's ids.
	probeBase uint64
}

// Run executes a seeded fault schedule against the cluster and checks
// the invariants. The fault plane is reset before and after: a Run owns
// the process-global plane for its duration, so runs must not overlap.
func Run(c *Cluster, opts RunOptions) (*Report, error) {
	opts.defaults()
	fault.Reset()
	fault.SetSeed(opts.Seed)
	defer fault.Reset()

	r := &runner{
		c:         c,
		client:    c.Client(),
		opts:      opts,
		rng:       rng{s: opts.Seed ^ 0x5851f42d4c957f2d},
		report:    &Report{Acked: make(map[core.ObjectID][]uint64)},
		nextID:    1,
		probeBase: 1 << 40,
	}
	r.report.Scenarios = opts.Scenarios
	if r.report.Scenarios == nil {
		r.report.Scenarios = shuffledScenarios(&r.rng)
	}

	if err := r.setup(); err != nil {
		return r.report, err
	}
	for i, s := range r.report.Scenarios {
		opts.Log("chaos: scenario %d/%d: %s", i+1, len(r.report.Scenarios), s)
		if err := r.runScenario(s); err != nil {
			return r.report, fmt.Errorf("chaos: scenario %s: %w", s, err)
		}
	}
	if err := r.verify(); err != nil {
		return r.report, err
	}
	if r.report.AckedTotal == 0 {
		return r.report, fmt.Errorf("chaos: workload acknowledged nothing — schedule proved nothing")
	}
	return r.report, nil
}

// setup installs the Ledger type and creates the workload objects,
// waiting out the initial configuration propagation.
func (r *runner) setup() error {
	typ, err := LedgerType()
	if err != nil {
		return err
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		err := r.c.RefreshClientConfig()
		if err == nil && len(r.client.Directory().Groups()) > 0 {
			if err = r.client.RegisterType(typ); err == nil {
				break
			}
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("chaos: cluster never became configurable: %v", err)
		}
		time.Sleep(25 * time.Millisecond)
	}
	for i := 0; i < r.opts.Objects; i++ {
		id := core.ObjectID(i + 1)
		var lastErr error
		for {
			if lastErr = r.client.CreateObject("Ledger", id); lastErr == nil {
				break
			}
			if time.Now().After(deadline) {
				return fmt.Errorf("chaos: create object %d: %w", id, lastErr)
			}
			time.Sleep(25 * time.Millisecond)
		}
		r.objects = append(r.objects, id)
	}
	return nil
}

// burst appends n unique ids across the workload objects, recording
// which the cluster acknowledged. Failures are expected under active
// faults; an id whose append errored MAY still be applied (at-least-
// once), which the verifier tolerates.
func (r *runner) burst(n int) {
	for i := 0; i < n; i++ {
		obj := r.objects[r.rng.intn(len(r.objects))]
		id := r.nextID
		r.nextID++
		_, err := r.client.Invoke(obj, "append", [][]byte{core.I64Bytes(int64(id))})
		if err == nil {
			r.report.Acked[obj] = append(r.report.Acked[obj], id)
			r.report.AckedTotal++
		} else {
			r.report.FailedOps++
		}
	}
}

// runScenario performs one inject → fault burst → (await promotion) →
// heal → bounded-recovery cycle.
func (r *runner) runScenario(s Scenario) error {
	if s == ScenarioRestartRejoin {
		return r.runRestartRejoin()
	}
	if s == ScenarioMigrateUnderChaos {
		return r.runMigrateUnderChaos()
	}
	r.burst(r.opts.BurstOps)

	pi, err := r.c.PrimaryIndex()
	if err != nil {
		return fmt.Errorf("resolve primary: %w", err)
	}
	g, err := r.c.Group()
	if err != nil {
		return err
	}
	addr, dataDir := r.c.NodeAddr(pi), r.c.NodeDataDir(pi)

	expectPromote := false
	var heal func() error
	switch s {
	case ScenarioCrashPrimary:
		expectPromote = len(g.Backups) > 0
		if err := r.c.Kill(pi); err != nil {
			return err
		}
		heal = func() error { return r.c.Restart(pi) }
	case ScenarioPartitionPrimary:
		expectPromote = len(g.Backups) > 0
		fault.Partition(addr, fault.Wildcard)
		heal = func() error { fault.Heal(addr, fault.Wildcard); return nil }
	case ScenarioWALSyncFail:
		fault.Add(fault.Rule{Site: fault.SiteWALSync, Key: dataDir, Action: fault.Error, Err: "injected fsync failure"})
		heal = func() error { fault.Remove(fault.SiteWALSync, dataDir); return nil }
	case ScenarioHeartbeatLoss:
		expectPromote = len(g.Backups) > 0
		fault.Add(fault.Rule{Site: fault.SiteCoordHeartbeat, Key: addr, Action: fault.Drop})
		heal = func() error { fault.Remove(fault.SiteCoordHeartbeat, addr); return nil }
	case ScenarioDupDelay:
		fault.Add(fault.Rule{Site: fault.SiteRPCSend, Key: addr, Action: fault.Duplicate, P: 0.4})
		fault.Add(fault.Rule{Site: fault.SiteRPCRecv, Key: addr, Action: fault.Delay, Delay: 2 * time.Millisecond, P: 0.4})
		heal = func() error {
			fault.Remove(fault.SiteRPCSend, addr)
			fault.Remove(fault.SiteRPCRecv, addr)
			return nil
		}
	default:
		return fmt.Errorf("unknown scenario %d", int(s))
	}
	if expectPromote {
		r.report.ExpectedPromotions++
	}

	r.burst(r.opts.BurstOps)

	// An expected promotion must land on a coordinator majority BEFORE
	// healing: healing first would let heartbeats resume and the
	// detector would (correctly) never fire.
	if expectPromote {
		if err := r.awaitPromotions(r.report.ExpectedPromotions); err != nil {
			return err
		}
	}
	if err := heal(); err != nil {
		return err
	}

	// Invariant 3: bounded recovery. Fresh id per attempt — a failed
	// attempt may still have been applied, and set-inclusion only binds
	// acknowledged ids.
	attempts, err := r.awaitWrite()
	r.report.RecoveryAttempts = append(r.report.RecoveryAttempts, attempts)
	if err != nil {
		return fmt.Errorf("availability not restored after %d attempts: %w", attempts, err)
	}
	r.opts.Log("chaos: %s healed; recovered after %d write attempts", s, attempts)
	return nil
}

// startLeaseProbe launches a concurrent reader that hammers one object
// with read-your-acks checks while the schedule reconfigures the
// cluster underneath it. Each iteration appends a unique id through the
// primary, then issues a replica-routed read (round-robin over leased
// backups); a successful read that is missing ANY id acknowledged
// before it was issued is a stale read — exactly what leases must make
// impossible across failover and migration-cutover epochs. Reads that
// error are fine (bounced by an unleased backup, node down); only
// success with stale data is a violation. The returned stop func joins
// the probe and reports the first violation, if any.
func (r *runner) startLeaseProbe(obj core.ObjectID) (stop func() error) {
	// A dedicated client with a short retry budget keeps the probe
	// sampling during unavailability windows instead of blocking inside
	// one call's 10s retry loop.
	pc, err := cluster.NewClient(cluster.ClientConfig{
		Coordinators: r.c.CoordAddrs(),
		MaxRetries:   2,
		RetryBudget:  300 * time.Millisecond,
	})
	if err != nil {
		return func() error { return fmt.Errorf("lease probe client: %w", err) }
	}
	stopCh := make(chan struct{})
	done := make(chan struct{})
	var probeErr error
	var reads, ackedN int
	base := r.probeBase
	r.probeBase += 1 << 20
	go func() {
		defer close(done)
		defer pc.Close()
		var acked []uint64
		defer func() { ackedN = len(acked) }()
		next := base
		for {
			select {
			case <-stopCh:
				return
			default:
			}
			id := next
			next++
			if _, err := pc.Invoke(obj, "append", [][]byte{core.I64Bytes(int64(id))}); err == nil {
				acked = append(acked, id)
			}
			raw, err := pc.InvokeRead(obj, "list", nil)
			if err != nil {
				continue // bounced or unavailable — not a staleness violation
			}
			reads++
			if err := requireAll(acked, DecodeLog(raw), fmt.Sprintf("lease probe on object %d", obj)); err != nil {
				probeErr = err
				return
			}
		}
	}()
	return func() error {
		close(stopCh)
		<-done
		r.opts.Log("chaos: lease probe on object %d: %d replica reads consistent with %d acked writes", obj, reads, ackedN)
		if probeErr != nil {
			return probeErr
		}
		if reads == 0 {
			return fmt.Errorf("chaos: lease probe on object %d never completed a replica read — assertion proved nothing", obj)
		}
		return nil
	}
}

// overloadBurst fires `clients` concurrent writers, each appending
// `perClient` unique ids, at the workload objects — deliberately far
// past the admission plane's capacity when one is configured (see the
// harness's AdmissionQueue/AdmissionWorkers knobs). The point is the
// interaction invariant: shedding must stay a pre-execution refusal
// even while the group is mid-rejoin, so an id is either acknowledged
// (and then owed forever — it joins report.Acked and the end-of-run
// verifier) or refused cleanly, never both. Ids come from the probe
// range so they cannot collide with the main workload's.
func (r *runner) overloadBurst(clients, perClient int) error {
	// A dedicated client with one quick retry: a shed that survives the
	// retry is observed as a shed instead of being hidden by the main
	// client's patient backoff loop.
	bc, err := cluster.NewClient(cluster.ClientConfig{
		Coordinators:   r.c.CoordAddrs(),
		MaxRetries:     2,
		RetryBaseDelay: time.Millisecond,
		RetryMaxDelay:  5 * time.Millisecond,
		RetryBudget:    250 * time.Millisecond,
	})
	if err != nil {
		return fmt.Errorf("overload burst client: %w", err)
	}
	defer bc.Close()
	base := r.probeBase
	r.probeBase += 1 << 20

	var mu sync.Mutex
	var wg sync.WaitGroup
	var acked, shed, failed int
	for g := 0; g < clients; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perClient; i++ {
				id := base + uint64(g*perClient+i)
				obj := r.objects[int(id)%len(r.objects)]
				_, err := bc.Invoke(obj, "append", [][]byte{core.I64Bytes(int64(id))})
				mu.Lock()
				switch {
				case err == nil:
					r.report.Acked[obj] = append(r.report.Acked[obj], id)
					r.report.AckedTotal++
					acked++
				case admission.IsOverload(err):
					shed++
				default:
					failed++
				}
				mu.Unlock()
			}
		}(g)
	}
	wg.Wait()
	r.report.OverloadAcked += acked
	r.report.OverloadShed += shed
	r.report.FailedOps += failed
	r.opts.Log("chaos: overload burst: %d acked, %d shed, %d failed (%d clients x %d ops, retries=%d)",
		acked, shed, failed, clients, perClient, bc.OverloadRetries())
	if acked == 0 {
		return fmt.Errorf("chaos: overload burst acknowledged nothing — total refusal, not overload control")
	}
	return nil
}

// runRestartRejoin drives the anti-entropy rejoin scenario: kill a
// backup, write through its downtime, restart it and wait for digest
// catch-up to end in re-admission, then remove every other member so
// the final promotion has no choice but the rejoined replica. Writes
// acknowledged afterwards are served by a node whose only copy of the
// downtime history came through recovery streaming — the schedule's
// end-of-run verifier then proves none were lost.
func (r *runner) runRestartRejoin() error {
	// Earlier scenarios heal by restarting nodes whose rejoin may still
	// be in flight; deterministic roles need full membership first.
	if err := r.waitFullMembership(); err != nil {
		return err
	}
	r.burst(r.opts.BurstOps)

	pi, err := r.c.PrimaryIndex()
	if err != nil {
		return fmt.Errorf("resolve primary: %w", err)
	}
	g, err := r.c.Group()
	if err != nil {
		return err
	}
	backups := make([]int, 0, len(g.Backups))
	for i := 0; i < r.c.Nodes(); i++ {
		for _, b := range g.Backups {
			if r.c.NodeAddr(i) == b {
				backups = append(backups, i)
			}
		}
	}
	if len(backups) == 0 {
		return fmt.Errorf("no backup to restart")
	}
	bi := backups[r.rng.intn(len(backups))]

	// Kill the chosen backup and wait for its eviction: only then do
	// writes acknowledge again, and those acks are the downtime history
	// the restarted node must recover without having seen.
	if err := r.c.Kill(bi); err != nil {
		return err
	}
	if err := r.c.WaitEvicted(bi, r.opts.PromoteTimeout); err != nil {
		return err
	}
	r.burst(r.opts.BurstOps)

	r.opts.Log("chaos: restarting node %d, awaiting anti-entropy rejoin", bi)
	if err := r.c.Restart(bi); err != nil {
		return err
	}
	// Overload while the rejoin is in flight: a burst of concurrent
	// writers slams the (possibly admission-gated) group mid-recovery.
	// Every acknowledged id is owed by the eventual sole survivor; every
	// refusal must have been a clean pre-execution shed.
	if err := r.overloadBurst(16, 8); err != nil {
		return err
	}
	if err := r.c.WaitBackup(bi, r.opts.RejoinTimeout); err != nil {
		return err
	}
	r.burst(r.opts.BurstOps)

	// Lease revocation under failover: from here through the primary
	// kill, promotion of the rejoined backup, and recovery, a concurrent
	// reader must never observe a replica read missing an acked write.
	probeStop := r.startLeaseProbe(r.objects[r.rng.intn(len(r.objects))])

	// Strip the group down to the rejoined node: every other backup
	// first (evictions, no promotion)...
	killed := []int{}
	for _, oi := range backups {
		if oi == bi {
			continue
		}
		if err := r.c.Kill(oi); err != nil {
			return err
		}
		if err := r.c.WaitEvicted(oi, r.opts.PromoteTimeout); err != nil {
			return err
		}
		killed = append(killed, oi)
	}
	r.burst(r.opts.BurstOps)

	// ...then the primary: the only promotion candidate left is the
	// rejoined replica.
	if err := r.c.Kill(pi); err != nil {
		return err
	}
	killed = append(killed, pi)
	r.report.ExpectedPromotions++
	if err := r.awaitPromotions(r.report.ExpectedPromotions); err != nil {
		return err
	}
	if g, err = r.c.Group(); err != nil {
		return err
	}
	if g.Primary != r.c.NodeAddr(bi) {
		return fmt.Errorf("failover went to %s, not the rejoined node %s", g.Primary, r.c.NodeAddr(bi))
	}
	r.opts.Log("chaos: rejoined node %d promoted to primary", bi)

	// Heal: restart the dead nodes (their managers re-admit them) and
	// require bounded recovery like every other scenario.
	for _, i := range killed {
		if err := r.c.Restart(i); err != nil {
			return err
		}
	}
	attempts, err := r.awaitWrite()
	r.report.RecoveryAttempts = append(r.report.RecoveryAttempts, attempts)
	if err != nil {
		return fmt.Errorf("availability not restored after %d attempts: %w", attempts, err)
	}
	if err := probeStop(); err != nil {
		return err
	}
	for _, i := range killed {
		if err := r.c.WaitBackup(i, r.opts.RejoinTimeout); err != nil {
			return err
		}
	}
	r.opts.Log("chaos: restart-rejoin healed; recovered after %d write attempts", attempts)
	return nil
}

// runMigrateUnderChaos live-migrates a workload object from group 0 to
// group 1 and kills the source primary with the transfer in flight
// (frames into the target are delayed so the kill reliably lands inside
// the move). The move must resolve to exactly one owner: either the
// cutover never committed — the object stays with group 0's promoted
// backup and the target's janitor reclaims the partial copy — or it
// committed and the target group serves the object. Either way every
// acknowledged write must survive, which the end-of-run verifier checks
// against whichever group the directory settles on.
func (r *runner) runMigrateUnderChaos() error {
	if r.c.GroupNodes(1) == 0 {
		return fmt.Errorf("migrate-under-chaos needs a second group (Options.ExtraGroupNodes)")
	}
	r.burst(r.opts.BurstOps)

	// Pick a workload object currently served by group 0.
	var obj core.ObjectID
	for _, o := range r.objects {
		g, err := r.c.GroupFor(uint64(o))
		if err != nil {
			return err
		}
		if g.ID == 0 {
			obj = o
			break
		}
	}
	if obj == 0 {
		return fmt.Errorf("no workload object served by group 0")
	}
	pi, err := r.c.PrimaryIndex()
	if err != nil {
		return fmt.Errorf("resolve primary: %w", err)
	}
	g1, err := r.c.GroupByID(1)
	if err != nil {
		return err
	}
	ti := -1
	for i := 0; i < r.c.Nodes(); i++ {
		if r.c.NodeAddr(i) == g1.Primary {
			ti = i
		}
	}
	if ti < 0 {
		return fmt.Errorf("target primary %s is not a harness node", g1.Primary)
	}

	// Phase A — abort mid-transfer. Frames into the target crawl (25ms
	// each), so the transfer is provably in flight 30ms in; hard-failing
	// the target's inbound RPCs then kills the next chunk or seal. The
	// source's abort RPC fails with them, leaving a dangling inbound
	// session the target's janitor must reclaim.
	fault.Add(fault.Rule{Site: fault.SiteRPCRecv, Key: g1.Primary, Action: fault.Delay, Delay: 25 * time.Millisecond, P: 1})
	moveDone := make(chan error, 1)
	go func() { moveDone <- r.client.Migrate(obj, 1) }()
	time.Sleep(30 * time.Millisecond)
	fault.Add(fault.Rule{Site: fault.SiteRPCRecv, Key: g1.Primary, Action: fault.Error, Err: "injected target failure"})
	moveErr := <-moveDone
	fault.Remove(fault.SiteRPCRecv, g1.Primary)
	r.opts.Log("chaos: migrate of object %d into a failing target returned: %v", obj, moveErr)
	if moveErr == nil {
		// The move outran the injection (should not happen under the
		// frame delay); park the object back so phase B starts at group 0.
		if err := r.client.Migrate(obj, 0); err != nil {
			return fmt.Errorf("move unexpectedly committed and could not be undone: %w", err)
		}
	} else {
		owner, err := r.c.GroupFor(uint64(obj))
		if err != nil {
			return err
		}
		if owner.ID != 0 {
			return fmt.Errorf("aborted move left object %d on group %d", obj, owner.ID)
		}
		// Janitor reclaim: the dangling session (and any partial copy)
		// must be gone within the session timeout.
		deadline := time.Now().Add(r.opts.RejoinTimeout)
		for r.c.Node(ti).MoveSessions() != 0 {
			if time.Now().After(deadline) {
				return fmt.Errorf("target janitor never reclaimed the dangling move session")
			}
			time.Sleep(25 * time.Millisecond)
		}
		if err := r.awaitObjectAbsent(obj, 1); err != nil {
			return err
		}
		// The aborted move must have left the object fully serviceable.
		if err := r.awaitWriteObject(obj); err != nil {
			return err
		}
	}

	// Phase B — crash the source primary with the transfer in flight.
	// The harness kill drains in-flight handlers (a graceful close), so
	// the move races node teardown; whichever way it resolves, the
	// directory must name exactly one owner.
	//
	// Lease revocation under cutover: while the move commits (or aborts
	// into a failover), a concurrent reader of the migrating object must
	// never see a replica read missing an acked write — source-group
	// leases die on the override install, target-group leases only cover
	// state shipped after the cutover.
	probeStop := r.startLeaseProbe(obj)
	fault.Add(fault.Rule{Site: fault.SiteRPCRecv, Key: g1.Primary, Action: fault.Delay, Delay: 25 * time.Millisecond, P: 1})
	moveDone = make(chan error, 1)
	go func() { moveDone <- r.client.Migrate(obj, 1) }()
	time.Sleep(30 * time.Millisecond)

	r.report.ExpectedPromotions++
	if err := r.c.Kill(pi); err != nil {
		return err
	}
	moveErr = <-moveDone
	fault.Remove(fault.SiteRPCRecv, g1.Primary)
	r.opts.Log("chaos: migrate of object %d against a primary crash returned: %v", obj, moveErr)

	r.burst(r.opts.BurstOps)
	if err := r.awaitPromotions(r.report.ExpectedPromotions); err != nil {
		return err
	}
	if err := r.c.Restart(pi); err != nil {
		return err
	}
	attempts, err := r.awaitWrite()
	r.report.RecoveryAttempts = append(r.report.RecoveryAttempts, attempts)
	if err != nil {
		return fmt.Errorf("availability not restored after %d attempts: %w", attempts, err)
	}
	if err := probeStop(); err != nil {
		return err
	}

	// Exactly one owner. The losing side must shed its copy: on an abort
	// the target's janitor reclaims the partial range; on an acknowledged
	// commit the source deleted the range (and shipped the delete to its
	// backups) before the move reported success.
	owner, err := r.c.GroupFor(uint64(obj))
	if err != nil {
		return err
	}
	r.opts.Log("chaos: object %d settled on group %d", obj, owner.ID)
	if owner.ID == 0 {
		if err := r.awaitObjectAbsent(obj, 1); err != nil {
			return err
		}
	} else if moveErr == nil {
		if err := r.awaitObjectAbsent(obj, 0); err != nil {
			return err
		}
	}
	// The migrated object itself accepts writes wherever it settled.
	if err := r.awaitWriteObject(obj); err != nil {
		return err
	}
	r.opts.Log("chaos: migrate-under-chaos settled after %d recovery attempts", attempts)
	return nil
}

// awaitObjectAbsent polls the live members of one group until none of
// them holds the object's state.
func (r *runner) awaitObjectAbsent(obj core.ObjectID, group uint64) error {
	deadline := time.Now().Add(r.opts.RejoinTimeout)
	for {
		stray := ""
		for i := 0; i < r.c.Nodes(); i++ {
			if r.c.NodeGroup(i) != group || !r.c.Alive(i) {
				continue
			}
			if _, err := r.c.Node(i).Runtime().GetValueField(obj, "log"); err == nil {
				stray = r.c.NodeAddr(i)
				break
			}
		}
		if stray == "" {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("object %d still held by non-owner %s (group %d)", obj, stray, group)
		}
		time.Sleep(25 * time.Millisecond)
	}
}

// awaitWriteObject retries appends against one specific object until
// one is acknowledged.
func (r *runner) awaitWriteObject(obj core.ObjectID) error {
	var lastErr error
	for attempt := 1; attempt <= r.opts.MaxRecoveryAttempts; attempt++ {
		id := r.nextID
		r.nextID++
		if _, lastErr = r.client.Invoke(obj, "append", [][]byte{core.I64Bytes(int64(id))}); lastErr == nil {
			r.report.Acked[obj] = append(r.report.Acked[obj], id)
			r.report.AckedTotal++
			return nil
		}
		time.Sleep(25 * time.Millisecond)
	}
	return fmt.Errorf("object %d never accepted writes again: %w", obj, lastErr)
}

// waitFullMembership blocks until every harness node is alive and a
// member of group 0 (pending heal-time rejoins have completed).
func (r *runner) waitFullMembership() error {
	for i := 0; i < r.c.Nodes(); i++ {
		if !r.c.Alive(i) {
			return fmt.Errorf("node %d is down at scenario start", i)
		}
	}
	deadline := time.Now().Add(r.opts.RejoinTimeout)
	for {
		g, err := r.c.Group()
		if err == nil && g.Primary != "" && len(g.Backups) == r.c.GroupNodes(0)-1 {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("full membership never restored (group %+v, err %v)", g, err)
		}
		time.Sleep(25 * time.Millisecond)
	}
}

// awaitPromotions waits until a majority of coordinator replicas have
// applied exactly want effective promotions for group 0, failing fast
// if any replica ever exceeds it (two primaries in one epoch).
func (r *runner) awaitPromotions(want uint64) error {
	coords := r.c.Coordinators()
	deadline := time.Now().Add(r.opts.PromoteTimeout)
	for {
		reached := 0
		for _, svc := range coords {
			got := svc.PromoteCounts()[0]
			if got > want {
				return fmt.Errorf("coordinator applied %d promotions for group 0, want %d (single-primary violation)", got, want)
			}
			if got == want {
				reached++
			}
		}
		if reached > len(coords)/2 {
			return nil
		}
		if time.Now().After(deadline) {
			detail := ""
			for i, svc := range coords {
				var prim string
				for _, g := range svc.Directory().Groups() {
					if g.ID == 0 {
						prim = fmt.Sprintf("%s+%v", g.Primary, g.Backups)
					}
				}
				detail += fmt.Sprintf(" coord%d{promotes=%v group=%s}", i, svc.PromoteCounts(), prim)
			}
			return fmt.Errorf("promotion %d never reached a coordinator majority:%s", want, detail)
		}
		time.Sleep(25 * time.Millisecond)
	}
}

// awaitWrite retries appends until one is acknowledged, bounding the
// attempt count.
func (r *runner) awaitWrite() (int, error) {
	var lastErr error
	for attempt := 1; attempt <= r.opts.MaxRecoveryAttempts; attempt++ {
		obj := r.objects[r.rng.intn(len(r.objects))]
		id := r.nextID
		r.nextID++
		if _, lastErr = r.client.Invoke(obj, "append", [][]byte{core.I64Bytes(int64(id))}); lastErr == nil {
			r.report.Acked[obj] = append(r.report.Acked[obj], id)
			r.report.AckedTotal++
			return attempt, nil
		}
		time.Sleep(25 * time.Millisecond)
	}
	return r.opts.MaxRecoveryAttempts, lastErr
}

// verify checks invariants 1 and 2 after the schedule completes: every
// acknowledged id is present in the surviving ledgers (read through the
// current primary AND directly from every live group replica's store),
// and every coordinator replica converges to exactly the expected
// number of promotions.
func (r *runner) verify() error {
	if err := r.awaitPromotions(r.report.ExpectedPromotions); err != nil {
		return err
	}
	// Convergence: give stragglers a moment, then insist on exactness.
	deadline := time.Now().Add(r.opts.PromoteTimeout)
	for {
		exact := true
		for _, svc := range r.c.Coordinators() {
			if got := svc.PromoteCounts()[0]; got != r.report.ExpectedPromotions {
				if got > r.report.ExpectedPromotions {
					return fmt.Errorf("coordinator applied %d promotions, want %d (single-primary violation)",
						got, r.report.ExpectedPromotions)
				}
				exact = false
			}
		}
		if exact || time.Now().After(deadline) {
			break // a lagging minority replica is a liveness gap, not a safety violation
		}
		time.Sleep(25 * time.Millisecond)
	}

	for _, obj := range r.objects {
		acked := r.report.Acked[obj]
		if len(acked) == 0 {
			continue
		}
		// Resolve the object's owning group — a migration scenario may
		// have moved it off group 0.
		g, err := r.c.GroupFor(uint64(obj))
		if err != nil {
			return err
		}
		// Through the client (routed to the current primary).
		var raw []byte
		var lastErr error
		for attempt := 0; attempt < 40; attempt++ {
			if raw, lastErr = r.client.Invoke(obj, "list", nil); lastErr == nil {
				break
			}
			time.Sleep(25 * time.Millisecond)
		}
		if lastErr != nil {
			return fmt.Errorf("read back object %d: %w", obj, lastErr)
		}
		if err := requireAll(acked, DecodeLog(raw), fmt.Sprintf("object %d via primary", obj)); err != nil {
			return err
		}
		// Directly from every live replica's store: strict replication
		// means an acknowledged write is on every group member.
		replicas := map[string]bool{g.Primary: true}
		for _, b := range g.Backups {
			replicas[b] = true
		}
		for i := 0; i < r.c.Nodes(); i++ {
			if !r.c.Alive(i) || !replicas[r.c.NodeAddr(i)] {
				continue
			}
			// Bounded retry: on a loaded single-core box the backup's
			// apply goroutine can lag the primary's acknowledgement by a
			// scheduling quantum; the write must still land within the
			// window or it is genuinely lost.
			where := fmt.Sprintf("object %d at replica %s (group primary=%s backups=%v)", obj, r.c.NodeAddr(i), g.Primary, g.Backups)
			var checkErr error
			for attempt := 0; attempt < 40; attempt++ {
				if attempt > 0 {
					time.Sleep(25 * time.Millisecond)
				}
				v, err := r.c.slots[i].node.Runtime().GetValueField(obj, "log")
				if err != nil {
					checkErr = fmt.Errorf("object %d missing at replica %s: %w", obj, r.c.NodeAddr(i), err)
					continue
				}
				checkErr = requireAll(acked, DecodeLog(v), where)
				if checkErr == nil {
					break
				}
			}
			if checkErr != nil {
				return checkErr
			}
		}
	}
	return nil
}

// requireAll asserts every acknowledged id appears in the ledger
// (duplicates and extra unacknowledged ids are legal).
func requireAll(acked, ledger []uint64, where string) error {
	present := make(map[uint64]bool, len(ledger))
	for _, id := range ledger {
		present[id] = true
	}
	for _, id := range acked {
		if !present[id] {
			return fmt.Errorf("chaos: %s: acknowledged write %d lost (%d acked, %d in ledger)",
				where, id, len(acked), len(ledger))
		}
	}
	return nil
}
