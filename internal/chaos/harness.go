package chaos

import (
	"fmt"
	"os"
	"path/filepath"
	"time"

	"lambdastore/internal/cluster"
	"lambdastore/internal/coordinator"
	"lambdastore/internal/paxos"
	"lambdastore/internal/rpc"
	"lambdastore/internal/shard"
	"lambdastore/internal/store"
)

// Options configures a chaos cluster.
type Options struct {
	// Nodes is the storage node count; all join group 0, first node is
	// the initial primary (default 3).
	Nodes int
	// Coordinators is the coordinator replica count (default 3).
	Coordinators int
	// BaseDir holds one data directory per storage node (required; the
	// harness creates node<i> subdirectories). Restarts reuse them.
	BaseDir string
	// HeartbeatInterval is the storage nodes' liveness report period
	// (default 50ms).
	HeartbeatInterval time.Duration
	// HeartbeatTimeout is how long a silent node stays "alive" at the
	// coordinator (default 300ms).
	HeartbeatTimeout time.Duration
	// CheckInterval is the failure-detector sweep period (default 50ms).
	CheckInterval time.Duration
	// ClientRetries bounds the cluster client's per-invoke retry loop
	// (default 4; recovery loops retry whole invokes on top).
	ClientRetries int
	// RejoinFullResync ablates the nodes' anti-entropy digest diff:
	// catch-up streams the donor's whole store regardless of divergence
	// (the recovery bench's baseline mode).
	RejoinFullResync bool
	// RejoinMaxBytesPerSec rate-limits recovery chunk streaming on every
	// node (0 = unlimited).
	RejoinMaxBytesPerSec int
	// ExtraGroupNodes, when > 0, adds a second replica group (ID 1) of
	// that many nodes — the target side of live-migration scenarios.
	// Zero keeps the classic single-group topology.
	ExtraGroupNodes int
	// MoveSessionTimeout tunes the nodes' inbound-move janitor (how long
	// an abandoned migration session may sit before its partial copy is
	// reclaimed). Zero keeps the node default.
	MoveSessionTimeout time.Duration
	// AdmissionQueue, when > 0, arms every node's admission plane (bounded
	// wait queue + deadline shedding) — the overload scenarios' subject.
	AdmissionQueue int
	// AdmissionDeadline bounds queue wait before a shed (0 = plane default).
	AdmissionDeadline time.Duration
	// AdmissionWorkers sizes each node's execution slots (0 = NumCPU).
	AdmissionWorkers int
}

func (o *Options) defaults() {
	if o.Nodes <= 0 {
		o.Nodes = 3
	}
	if o.Coordinators <= 0 {
		o.Coordinators = 3
	}
	if o.HeartbeatInterval <= 0 {
		o.HeartbeatInterval = 50 * time.Millisecond
	}
	if o.HeartbeatTimeout <= 0 {
		o.HeartbeatTimeout = 300 * time.Millisecond
	}
	if o.CheckInterval <= 0 {
		o.CheckInterval = 50 * time.Millisecond
	}
}

// nodeSlot tracks one storage node across kill/restart cycles: the
// concrete address and data directory survive the process-local "death"
// so a restart is a faithful crash-recovery (WAL replay, same identity).
type nodeSlot struct {
	addr    string
	dataDir string
	group   uint64
	node    *cluster.Node // nil while down
}

// Cluster is an in-process LambdaStore deployment under chaos: a
// Paxos-replicated coordinator ensemble plus one replica group of
// storage nodes with durable (fsync) write-ahead logging, fronted by a
// failover-aware client.
type Cluster struct {
	opts Options

	pool       *rpc.Pool
	coordSrvs  []*rpc.Server
	coordSvcs  []*coordinator.Service
	coordAddrs []string

	slots  []*nodeSlot
	client *cluster.Client
}

// Start boots coordinators and storage nodes and installs the group
// configuration. It returns once the initial primary is serving writes.
func Start(opts Options) (*Cluster, error) {
	opts.defaults()
	if opts.BaseDir == "" {
		return nil, fmt.Errorf("chaos: Options.BaseDir is required")
	}
	c := &Cluster{opts: opts, pool: rpc.NewPool(nil)}

	// Coordinator ensemble.
	ids := make([]uint64, opts.Coordinators)
	addrByID := make(map[uint64]string, opts.Coordinators)
	for i := range ids {
		ids[i] = uint64(i + 1)
	}
	for _, id := range ids {
		svc := coordinator.New(id, ids, nil, coordinator.Options{
			HeartbeatTimeout: opts.HeartbeatTimeout,
			CheckInterval:    opts.CheckInterval,
		})
		srv := rpc.NewServer()
		coordinator.RegisterServer(srv, svc)
		addr, err := srv.Serve("127.0.0.1:0")
		if err != nil {
			c.Close()
			return nil, fmt.Errorf("chaos: coordinator serve: %w", err)
		}
		c.coordSvcs = append(c.coordSvcs, svc)
		c.coordSrvs = append(c.coordSrvs, srv)
		c.coordAddrs = append(c.coordAddrs, addr)
		addrByID[id] = addr
	}
	for _, svc := range c.coordSvcs {
		svc.SetTransport(paxos.NewRPCTransport(svc.Node(), c.pool, addrByID))
		svc.Start()
	}

	// Storage nodes: durable WAL so a restart is a real crash recovery.
	// Group 0 gets opts.Nodes members; an optional second group (ID 1)
	// gets opts.ExtraGroupNodes members for migration scenarios.
	total := opts.Nodes + opts.ExtraGroupNodes
	for i := 0; i < total; i++ {
		gid := uint64(0)
		if i >= opts.Nodes {
			gid = 1
		}
		dataDir := filepath.Join(opts.BaseDir, fmt.Sprintf("node%d", i))
		if err := os.MkdirAll(dataDir, 0o755); err != nil {
			c.Close()
			return nil, err
		}
		slot := &nodeSlot{dataDir: dataDir, group: gid}
		node, err := cluster.StartNode(c.nodeOptions("127.0.0.1:0", dataDir, gid))
		if err != nil {
			c.Close()
			return nil, fmt.Errorf("chaos: start node %d: %w", i, err)
		}
		slot.addr = node.Addr()
		slot.node = node
		c.slots = append(c.slots, slot)
	}

	// Group configuration through the coordinator (first node of each
	// group primary).
	cc := coordinator.NewClient(c.pool, c.coordAddrs)
	g := shard.Group{ID: 0, Primary: c.slots[0].addr}
	for _, s := range c.slots[1:opts.Nodes] {
		g.Backups = append(g.Backups, s.addr)
	}
	if err := cc.SetGroup(g); err != nil {
		c.Close()
		return nil, fmt.Errorf("chaos: set group: %w", err)
	}
	if opts.ExtraGroupNodes > 0 {
		g1 := shard.Group{ID: 1, Primary: c.slots[opts.Nodes].addr}
		for _, s := range c.slots[opts.Nodes+1:] {
			g1.Backups = append(g1.Backups, s.addr)
		}
		if err := cc.SetGroup(g1); err != nil {
			c.Close()
			return nil, fmt.Errorf("chaos: set group 1: %w", err)
		}
	}

	client, err := cluster.NewClient(cluster.ClientConfig{
		Coordinators: c.coordAddrs,
		MaxRetries:   opts.ClientRetries,
		// Tight backoff pacing: the harness's failure-detector timeouts are
		// hundreds of milliseconds, so production retry delays would only
		// slow the schedule down without exercising anything extra.
		RetryBaseDelay: 2 * time.Millisecond,
		RetryMaxDelay:  25 * time.Millisecond,
	})
	if err != nil {
		c.Close()
		return nil, err
	}
	c.client = client

	// Wait until a coordinator majority has liveness entries for every
	// node, so the failure detector is actually watching before any
	// schedule starts killing things.
	deadline := time.Now().Add(10 * time.Second)
	for {
		covered := 0
		for _, svc := range c.coordSvcs {
			seen := svc.LastSeen()
			all := true
			for _, s := range c.slots {
				if age, ok := seen[s.addr]; !ok || age > opts.HeartbeatTimeout {
					all = false
					break
				}
			}
			if all {
				covered++
			}
		}
		if covered > len(c.coordSvcs)/2 {
			return c, nil
		}
		if time.Now().After(deadline) {
			c.Close()
			return nil, fmt.Errorf("chaos: storage nodes never registered with the failure detector")
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// Client returns the failover-aware cluster client.
func (c *Cluster) Client() *cluster.Client { return c.client }

// CoordAddrs returns the coordinator replica addresses.
func (c *Cluster) CoordAddrs() []string { return c.coordAddrs }

// Coordinators returns the coordinator replica services (for invariant
// probes such as PromoteCounts).
func (c *Cluster) Coordinators() []*coordinator.Service { return c.coordSvcs }

// NodeAddr returns node i's stable address (valid across restarts).
func (c *Cluster) NodeAddr(i int) string { return c.slots[i].addr }

// NodeDataDir returns node i's data directory — the wal.sync fault key.
func (c *Cluster) NodeDataDir(i int) string { return c.slots[i].dataDir }

// Alive reports whether node i is currently running.
func (c *Cluster) Alive(i int) bool { return c.slots[i].node != nil }

// Nodes returns the storage node count.
func (c *Cluster) Nodes() int { return len(c.slots) }

// Kill crashes node i: the process-local equivalent of pulling the
// plug — connections drop, heartbeats stop, no graceful handoff beyond
// what Close's shutdown already does.
func (c *Cluster) Kill(i int) error {
	s := c.slots[i]
	if s.node == nil {
		return fmt.Errorf("chaos: node %d already down", i)
	}
	err := s.node.Close()
	s.node = nil
	return err
}

// nodeOptions builds the one NodeOptions every harness node (initial
// start and restart) uses: durable WAL, coordinator-managed, and the
// anti-entropy rejoin manager armed so any node that finds itself
// outside its group catches up from the primary and re-admits itself.
func (c *Cluster) nodeOptions(addr, dataDir string, group uint64) cluster.NodeOptions {
	return cluster.NodeOptions{
		Addr:                   addr,
		DataDir:                dataDir,
		Store:                  &store.Options{SyncWrites: true},
		GroupID:                group,
		Coordinators:           c.coordAddrs,
		HeartbeatInterval:      c.opts.HeartbeatInterval,
		Rejoin:                 true,
		RecoveryFullResync:     c.opts.RejoinFullResync,
		RecoveryMaxBytesPerSec: c.opts.RejoinMaxBytesPerSec,
		MoveSessionTimeout:     c.opts.MoveSessionTimeout,
		MaxConcurrentInvokes:   c.opts.AdmissionWorkers,
		AdmissionQueue:         c.opts.AdmissionQueue,
		AdmissionDeadline:      c.opts.AdmissionDeadline,
		// Leases shorter than the failure-detector timeout: a deposed
		// primary's barrier (one lease TTL) always ends before the
		// coordinator can have promoted a successor, so a leased backup
		// can never serve state older than an acked write.
		LeaseTTL: 150 * time.Millisecond,
	}
}

// Restart brings a killed node back on its original address and data
// directory: state recovers from the WAL and SSTs, heartbeats resume.
// The node comes up as a spare, then its recovery manager notices it is
// not a member, catches up from the group's primary (range digests +
// chunk streaming) and re-admits it as a backup through the
// coordinator; WaitBackup observes the re-admission.
func (c *Cluster) Restart(i int) error {
	s := c.slots[i]
	if s.node != nil {
		return fmt.Errorf("chaos: node %d already up", i)
	}
	node, err := cluster.StartNode(c.nodeOptions(s.addr, s.dataDir, s.group))
	if err != nil {
		return fmt.Errorf("chaos: restart node %d: %w", i, err)
	}
	s.node = node
	return nil
}

// Node returns node i's live handle (nil while down) — recovery status
// and store probes for tests and the recovery bench.
func (c *Cluster) Node(i int) *cluster.Node { return c.slots[i].node }

// WaitBackup blocks until node i is a backup of group 0 on the
// coordinator majority's view (a completed rejoin).
func (c *Cluster) WaitBackup(i int, timeout time.Duration) error {
	return c.waitGroup(timeout, fmt.Sprintf("node %d to rejoin as backup", i), func(g shard.Group) bool {
		for _, b := range g.Backups {
			if b == c.slots[i].addr {
				return true
			}
		}
		return false
	})
}

// WaitEvicted blocks until node i is neither primary nor backup of
// group 0 (the failure detector noticed its death).
func (c *Cluster) WaitEvicted(i int, timeout time.Duration) error {
	return c.waitGroup(timeout, fmt.Sprintf("node %d to be evicted", i), func(g shard.Group) bool {
		if g.Primary == c.slots[i].addr {
			return false
		}
		for _, b := range g.Backups {
			if b == c.slots[i].addr {
				return false
			}
		}
		return true
	})
}

// waitGroup polls the coordinator majority's group 0 view until cond.
func (c *Cluster) waitGroup(timeout time.Duration, what string, cond func(shard.Group) bool) error {
	deadline := time.Now().Add(timeout)
	for {
		g, err := c.Group()
		if err == nil && cond(g) {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("chaos: waiting for %s: timed out (group %+v, err %v)", what, g, err)
		}
		time.Sleep(25 * time.Millisecond)
	}
}

// Group returns the current group 0 configuration as the coordinator
// majority sees it.
func (c *Cluster) Group() (shard.Group, error) {
	return c.GroupByID(0)
}

// GroupByID returns one group's current configuration as the
// coordinator majority sees it.
func (c *Cluster) GroupByID(id uint64) (shard.Group, error) {
	cc := coordinator.NewClient(c.pool, c.coordAddrs)
	d, err := cc.GetConfig()
	if err != nil {
		return shard.Group{}, err
	}
	for _, g := range d.Groups() {
		if g.ID == id {
			return g, nil
		}
	}
	return shard.Group{}, fmt.Errorf("chaos: group %d not configured", id)
}

// GroupFor resolves the group currently serving an object (overrides
// included) on the coordinator majority's view.
func (c *Cluster) GroupFor(object uint64) (shard.Group, error) {
	cc := coordinator.NewClient(c.pool, c.coordAddrs)
	d, err := cc.GetConfig()
	if err != nil {
		return shard.Group{}, err
	}
	return d.Lookup(object)
}

// GroupNodes counts the harness slots configured into one group.
func (c *Cluster) GroupNodes(id uint64) int {
	n := 0
	for _, s := range c.slots {
		if s.group == id {
			n++
		}
	}
	return n
}

// NodeGroup returns the group node i was configured into.
func (c *Cluster) NodeGroup(i int) uint64 { return c.slots[i].group }

// RefreshClientConfig force-feeds the client the coordinator majority's
// current configuration (the client otherwise refreshes lazily on
// failures).
func (c *Cluster) RefreshClientConfig() error {
	cc := coordinator.NewClient(c.pool, c.coordAddrs)
	d, err := cc.GetConfig()
	if err != nil {
		return err
	}
	c.client.SetDirectory(d)
	return nil
}

// PrimaryIndex resolves the current primary to a node slot index.
func (c *Cluster) PrimaryIndex() (int, error) {
	g, err := c.Group()
	if err != nil {
		return -1, err
	}
	for i, s := range c.slots {
		if s.addr == g.Primary {
			return i, nil
		}
	}
	return -1, fmt.Errorf("chaos: primary %s is not a harness node", g.Primary)
}

// Close tears the whole cluster down (idempotent).
func (c *Cluster) Close() {
	if c.client != nil {
		c.client.Close()
		c.client = nil
	}
	for _, s := range c.slots {
		if s.node != nil {
			s.node.Close()
			s.node = nil
		}
	}
	for _, svc := range c.coordSvcs {
		svc.Close()
	}
	c.coordSvcs = nil
	for _, srv := range c.coordSrvs {
		srv.Close()
	}
	c.coordSrvs = nil
	if c.pool != nil {
		c.pool.Close()
		c.pool = nil
	}
}
