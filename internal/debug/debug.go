// Package debug serves a node's observability surface over HTTP: /metrics
// (plain-text counters, gauges and histogram summaries), /traces (recorded
// spans as JSON, filterable by trace ID and minimum duration), /healthz,
// the standard net/http/pprof profiling endpoints, and — when enabled —
// /faults, the runtime control surface for the deterministic
// fault-injection plane (internal/fault).
//
// The server is strictly opt-in (NodeOptions.DebugAddr / the -debug flag).
// Every endpoint except /faults is read-only: it exposes state, never
// mutates it. /faults POST arms and disarms injection rules, which is why
// it additionally requires Options.Faults. The server binds its own mux,
// so nothing leaks onto http.DefaultServeMux.
package debug

import (
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"sort"
	"strconv"
	"strings"
	"time"

	"lambdastore/internal/fault"
	"lambdastore/internal/telemetry"
)

// Options selects what the debug server exposes. All fields are optional.
type Options struct {
	// Registry supplies /metrics counters, gauges and histograms.
	Registry *telemetry.Registry
	// Tracer supplies /traces spans.
	Tracer *telemetry.Tracer
	// Gauges, if set, contributes extra point-in-time values to /metrics
	// (e.g. block-cache hit counts read from the store on demand).
	Gauges func() map[string]uint64
	// Health, if set, backs /healthz; a non-nil error reports 503.
	Health func() error
	// Faults exposes the process fault-injection plane at /faults: GET
	// renders the armed rules as a command script (re-POSTable as-is),
	// POST applies a script in the internal/fault grammar. The plane is
	// process-global, so on a node with Faults enabled this endpoint is
	// the live-cluster counterpart of the chaos harness.
	Faults bool
	// Recovery, if set, backs /recovery: the node's anti-entropy rejoin
	// state machine and active donor sessions, as JSON.
	Recovery func() any
	// Cluster, if set, backs /cluster/metrics: the coordinator's merged
	// per-group and cluster-wide metric rollups, as JSON.
	Cluster func() any
	// Rebalance, if set, backs /rebalance: the load-aware rebalancer's
	// status (last observation window, recent decisions, move counters),
	// as JSON.
	Rebalance func() any
	// Admission, if set, backs /admission: the node's admission-plane
	// status (queue depth, shed counters, per-tenant quota state), as
	// JSON.
	Admission func() any
	// Window is the sliding-window length for /metrics.json windowed
	// values; zero selects telemetry.DefaultWindow.
	Window time.Duration
}

// Server is a running debug HTTP endpoint.
type Server struct {
	ln   net.Listener
	http *http.Server
}

// Start listens on addr ("host:port", empty port for ephemeral) and serves
// the debug endpoints until Close.
func Start(addr string, o Options) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("debug: listen: %w", err)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Query().Get("format") == "json" {
			serveMetricsJSON(w, o)
			return
		}
		serveMetrics(w, o)
	})
	mux.HandleFunc("/metrics.json", func(w http.ResponseWriter, r *http.Request) { serveMetricsJSON(w, o) })
	mux.HandleFunc("/traces", func(w http.ResponseWriter, r *http.Request) { serveTraces(w, r, o.Tracer) })
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		if o.Health != nil {
			if err := o.Health(); err != nil {
				http.Error(w, err.Error(), http.StatusServiceUnavailable)
				return
			}
		}
		fmt.Fprintln(w, "ok")
	})
	if o.Faults {
		mux.HandleFunc("/faults", serveFaults)
	}
	if o.Recovery != nil {
		mux.HandleFunc("/recovery", func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set("Content-Type", "application/json")
			json.NewEncoder(w).Encode(o.Recovery())
		})
	}
	if o.Cluster != nil {
		mux.HandleFunc("/cluster/metrics", func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set("Content-Type", "application/json")
			json.NewEncoder(w).Encode(o.Cluster())
		})
	}
	if o.Rebalance != nil {
		mux.HandleFunc("/rebalance", func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set("Content-Type", "application/json")
			json.NewEncoder(w).Encode(o.Rebalance())
		})
	}
	if o.Admission != nil {
		mux.HandleFunc("/admission", func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set("Content-Type", "application/json")
			json.NewEncoder(w).Encode(o.Admission())
		})
	}
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)

	s := &Server{ln: ln, http: &http.Server{Handler: mux}}
	go s.http.Serve(ln)
	return s, nil
}

// Addr returns the bound address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close stops the server.
func (s *Server) Close() error { return s.http.Close() }

// serveMetrics renders every instrument as "name value" lines; histograms
// expand into _count/_mean_us/_p50_us/_p99_us/_max_us summaries.
func serveMetrics(w http.ResponseWriter, o Options) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	var b strings.Builder
	if reg := o.Registry; reg != nil {
		for _, name := range reg.CounterNames() {
			fmt.Fprintf(&b, "%s %d\n", name, reg.Counter(name).Value())
		}
		for _, name := range reg.GaugeNames() {
			fmt.Fprintf(&b, "%s %d\n", name, reg.Gauge(name).Value())
		}
		for _, name := range reg.HistogramNames() {
			s := reg.Histogram(name).Snapshot()
			fmt.Fprintf(&b, "%s_count %d\n", name, s.Count)
			fmt.Fprintf(&b, "%s_mean_us %d\n", name, s.Mean.Microseconds())
			fmt.Fprintf(&b, "%s_p50_us %d\n", name, s.Median.Microseconds())
			fmt.Fprintf(&b, "%s_p99_us %d\n", name, s.P99.Microseconds())
			fmt.Fprintf(&b, "%s_max_us %d\n", name, s.Max.Microseconds())
		}
	}
	if o.Gauges != nil {
		extra := o.Gauges()
		names := make([]string, 0, len(extra))
		for n := range extra {
			names = append(names, n)
		}
		sort.Strings(names)
		for _, n := range names {
			fmt.Fprintf(&b, "%s %d\n", n, extra[n])
		}
	}
	w.Write([]byte(b.String()))
}

// serveMetricsJSON renders the registry as a telemetry.RegistrySnapshot:
// every histogram cumulative and windowed (with quantiles, sparse buckets
// and trace exemplars), every counter with its windowed rate, every gauge.
// Extra gauges from Options.Gauges are folded into the counter section so
// they get windowed rates too. This is the form the coordinator scrapes and
// merges.
func serveMetricsJSON(w http.ResponseWriter, o Options) {
	w.Header().Set("Content-Type", "application/json")
	if o.Registry == nil {
		json.NewEncoder(w).Encode(telemetry.RegistrySnapshot{})
		return
	}
	var extra map[string]uint64
	if o.Gauges != nil {
		extra = o.Gauges()
	}
	json.NewEncoder(w).Encode(o.Registry.Snapshot(o.Window, extra))
}

// serveFaults is the fault plane's HTTP surface: GET describes, POST
// applies. Errors echo the offending grammar line so a mistyped rule in a
// curl one-liner is diagnosable from the 400 body alone.
func serveFaults(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodGet, "":
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		io.WriteString(w, fault.Describe())
	case http.MethodPost:
		body, err := io.ReadAll(io.LimitReader(r.Body, 1<<20))
		if err != nil {
			http.Error(w, "read body: "+err.Error(), http.StatusBadRequest)
			return
		}
		if err := fault.ApplyAll(string(body)); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		fmt.Fprintln(w, "ok")
	default:
		http.Error(w, "GET or POST", http.StatusMethodNotAllowed)
	}
}

// tracesResponse is the /traces JSON envelope.
type tracesResponse struct {
	Node  string           `json:"node,omitempty"`
	Total uint64           `json:"total_recorded"`
	Spans []telemetry.Span `json:"spans"`
}

// ParseTraceID parses a trace ID as given on the command line or in a
// query string: hexadecimal (the form trace IDs are logged in, with or
// without a 0x prefix), falling back to decimal.
func ParseTraceID(s string) (uint64, error) {
	s = strings.TrimPrefix(strings.TrimSpace(s), "0x")
	if id, err := strconv.ParseUint(s, 16, 64); err == nil {
		return id, nil
	}
	return strconv.ParseUint(s, 10, 64)
}

// serveTraces renders retained spans as JSON. Query parameters: trace
// (hex or decimal trace ID) keeps one trace; min (a time.Duration such as
// 10ms) drops spans shorter than it.
func serveTraces(w http.ResponseWriter, r *http.Request, tracer *telemetry.Tracer) {
	w.Header().Set("Content-Type", "application/json")
	resp := tracesResponse{Spans: []telemetry.Span{}}
	if tracer == nil {
		json.NewEncoder(w).Encode(resp)
		return
	}
	resp.Total = tracer.Total()
	var spans []telemetry.Span
	if tq := r.URL.Query().Get("trace"); tq != "" {
		id, err := ParseTraceID(tq)
		if err != nil {
			http.Error(w, "bad trace id: "+err.Error(), http.StatusBadRequest)
			return
		}
		spans = tracer.TraceSpans(id)
	} else {
		spans = tracer.Spans()
	}
	if mq := r.URL.Query().Get("min"); mq != "" {
		min, err := time.ParseDuration(mq)
		if err != nil {
			http.Error(w, "bad min duration: "+err.Error(), http.StatusBadRequest)
			return
		}
		kept := spans[:0]
		for _, s := range spans {
			if s.Dur >= min {
				kept = append(kept, s)
			}
		}
		spans = kept
	}
	if len(spans) > 0 {
		resp.Node = spans[len(spans)-1].Node
		resp.Spans = spans
	}
	json.NewEncoder(w).Encode(resp)
}
