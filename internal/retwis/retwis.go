// Package retwis implements the paper's running example and evaluation
// workload (§2, §3.2, §5): a Retwis-style microblogging service. Each User
// is one LambdaObject holding the user's name, their posts, the accounts
// they follow / are followed by, a blocked set, and a timeline containing
// the posts of everyone they follow. Methods follow Listing 1:
//
//	create_post(msg)    — store the post locally, then fan store_post out
//	                      to every follower's timeline in parallel
//	store_post(a,t,m)   — append one post to this user's timeline (skipped
//	                      if the author is blocked — the §2 causality
//	                      example)
//	get_timeline(limit) — read the newest posts (read-only, cacheable)
//	follow(target)      — record the edge on both sides (cross-object)
//
// The methods are written in the guest assembly and run under the metered
// isolation runtime on BOTH architectures of the evaluation.
package retwis

import (
	"encoding/binary"
	"fmt"

	"lambdastore/internal/core"
	"lambdastore/internal/vm"
)

// TypeName is the registered object type.
const TypeName = "User"

// Source is the guest implementation of the User object.
const Source = `
;; memcpy(dst, src, n): byte copy within guest memory.
func memcpy params=3
loop:
  local.get 2
  push 0
  le_s
  jnz done
  local.get 0
  local.get 1
  load8_u
  store8
  local.get 0
  push 1
  add
  local.set 0
  local.get 1
  push 1
  add
  local.set 1
  local.get 2
  push 1
  sub
  local.set 2
  jmp loop
done:
  ret
end

;; result_i64(v): set an 8-byte little-endian result.
func result_i64 params=1 locals=1
  push 8
  hostcall alloc
  local.set 1
  local.get 1
  local.get 0
  store64
  local.get 1
  push 8
  hostcall set_result
  ret
end

;; create_account(name): initialize the profile.
func create_account params=0 export
  str "name"
  push 0
  hostcall arg
  dup
  unpack.ptr
  swap
  unpack.len
  hostcall val_set
  ret
end

;; get_name() -> bytes
func get_name params=0 export
  str "name"
  hostcall val_get
  dup
  push -1
  eq
  jnz missing
  dup
  unpack.ptr
  swap
  unpack.len
  hostcall set_result
  ret
missing:
  pop
  ret
end

;; add_follower(uid): append raw 8-byte id to "followers".
func add_follower params=0 export
  str "followers"
  push 0
  hostcall arg
  dup
  unpack.ptr
  swap
  unpack.len
  hostcall list_push
  ret
end

;; follow(target): record edge on both sides (cross-object invocation).
func follow params=0 locals=1 export
  str "following"
  push 0
  hostcall arg
  dup
  unpack.ptr
  swap
  unpack.len
  hostcall list_push
  ;; stage self id, then invoke target.add_follower
  push 8
  hostcall alloc
  local.set 0
  local.get 0
  hostcall self_id
  store64
  local.get 0
  push 8
  hostcall call_arg
  push 0
  hostcall arg
  unpack.ptr
  load64
  str "add_follower"
  hostcall invoke
  pop
  ret
end

;; block(uid): authors in "blocked" never reach this timeline again.
func block params=0 export
  str "blocked"
  push 0
  hostcall arg
  dup
  unpack.ptr
  swap
  unpack.len
  str "1"
  hostcall map_set
  ret
end

;; follower_count() -> i64
func follower_count params=0 export
  str "followers"
  hostcall list_len
  call result_i64
  ret
end

;; timeline_len() -> i64
func timeline_len params=0 export
  str "timeline"
  hostcall list_len
  call result_i64
  ret
end

;; store_post(author8, time8, msg): append to the timeline unless the
;; author is blocked.
func store_post params=0 locals=6 export
  ;; locals: 0=author 1=time 2=msgptr 3=msglen 4=entry 5=entrylen
  ;; blocked check first (reads only)
  str "blocked"
  push 0
  hostcall arg
  dup
  unpack.ptr
  swap
  unpack.len
  hostcall map_get
  push -1
  ne
  jnz blocked
  push 0
  hostcall arg
  unpack.ptr
  load64
  local.set 0
  push 1
  hostcall arg
  unpack.ptr
  load64
  local.set 1
  push 2
  hostcall arg
  dup
  unpack.ptr
  local.set 2
  unpack.len
  local.set 3
  ;; entry = author8 | time8 | msg
  local.get 3
  push 16
  add
  local.set 5
  local.get 5
  hostcall alloc
  local.set 4
  local.get 4
  local.get 0
  store64
  local.get 4
  push 8
  add
  local.get 1
  store64
  local.get 4
  push 16
  add
  local.get 2
  local.get 3
  call memcpy
  str "timeline"
  local.get 4
  local.get 5
  hostcall list_push
blocked:
  ret
end

;; create_post(msg): store locally, then fan out to followers in parallel
;; (Listing 1). Returns the number of follower deliveries.
func create_post params=0 locals=10 export
  ;; locals: 0=msgptr 1=msglen 2=author 3=time 4=entry 5=entrylen
  ;;         6=nfollowers 7=i 8=buf 9=fid
  push 0
  hostcall arg
  dup
  unpack.ptr
  local.set 0
  unpack.len
  local.set 1
  hostcall self_id
  local.set 2
  hostcall time
  local.set 3
  ;; entry = author8 | time8 | msg
  local.get 1
  push 16
  add
  local.set 5
  local.get 5
  hostcall alloc
  local.set 4
  local.get 4
  local.get 2
  store64
  local.get 4
  push 8
  add
  local.get 3
  store64
  local.get 4
  push 16
  add
  local.get 0
  local.get 1
  call memcpy
  str "posts"
  local.get 4
  local.get 5
  hostcall list_push
  str "timeline"
  local.get 4
  local.get 5
  hostcall list_push
  ;; fan out store_post to each follower in parallel
  str "followers"
  hostcall list_len
  local.set 6
  push 0
  local.set 7
fan:
  local.get 7
  local.get 6
  ge_s
  jnz wait_init
  str "followers"
  local.get 7
  hostcall list_get
  unpack.ptr
  load64
  local.set 9
  ;; stage (author, time, msg)
  push 8
  hostcall alloc
  local.set 8
  local.get 8
  local.get 2
  store64
  local.get 8
  push 8
  hostcall call_arg
  push 8
  hostcall alloc
  local.set 8
  local.get 8
  local.get 3
  store64
  local.get 8
  push 8
  hostcall call_arg
  local.get 0
  local.get 1
  hostcall call_arg
  local.get 9
  str "store_post"
  hostcall invoke_start
  pop
  local.get 7
  push 1
  add
  local.set 7
  jmp fan
wait_init:
  push 0
  local.set 7
wait:
  local.get 7
  local.get 6
  ge_s
  jnz done
  local.get 7
  hostcall invoke_wait
  pop
  local.get 7
  push 1
  add
  local.set 7
  jmp wait
done:
  local.get 6
  call result_i64
  ret
end

;; get_timeline(limit): newest "limit" posts, serialized as
;; [len8 | entry]* (oldest of the window first).
func get_timeline params=0 locals=9 export
  ;; locals: 0=limit 1=n 2=start 3=i 4=total 5=out 6=w 7=entryptr 8=entrylen
  push 0
  hostcall arg
  unpack.ptr
  load64
  local.set 0
  str "timeline"
  hostcall list_len
  local.set 1
  local.get 1
  local.get 0
  sub
  local.set 2
  local.get 2
  push 0
  ge_s
  jnz have_start
  push 0
  local.set 2
have_start:
  ;; pass 1: total size
  local.get 2
  local.set 3
  push 0
  local.set 4
size_loop:
  local.get 3
  local.get 1
  ge_s
  jnz alloc_out
  str "timeline"
  local.get 3
  hostcall list_get
  unpack.len
  push 8
  add
  local.get 4
  add
  local.set 4
  local.get 3
  push 1
  add
  local.set 3
  jmp size_loop
alloc_out:
  local.get 4
  hostcall alloc
  local.set 5
  local.get 5
  local.set 6
  ;; pass 2: copy entries
  local.get 2
  local.set 3
copy_loop:
  local.get 3
  local.get 1
  ge_s
  jnz finish
  str "timeline"
  local.get 3
  hostcall list_get
  dup
  unpack.ptr
  local.set 7
  unpack.len
  local.set 8
  local.get 6
  local.get 8
  store64
  local.get 6
  push 8
  add
  local.get 7
  local.get 8
  call memcpy
  local.get 6
  push 8
  add
  local.get 8
  add
  local.set 6
  local.get 3
  push 1
  add
  local.set 3
  jmp copy_loop
finish:
  local.get 5
  local.get 4
  hostcall set_result
  ret
end
`

// Methods declares the public surface with its consistency/caching
// attributes.
var Methods = []core.MethodInfo{
	{Name: "create_account"},
	{Name: "get_name", ReadOnly: true, Deterministic: true},
	{Name: "add_follower"},
	{Name: "follow"},
	{Name: "block"},
	{Name: "follower_count", ReadOnly: true, Deterministic: true},
	{Name: "timeline_len", ReadOnly: true, Deterministic: true},
	{Name: "store_post"},
	{Name: "create_post"},
	{Name: "get_timeline", ReadOnly: true, Deterministic: true},
}

// Fields declares the User object's state.
var Fields = []core.FieldDef{
	{Name: "name", Kind: core.FieldValue},
	{Name: "followers", Kind: core.FieldList},
	{Name: "following", Kind: core.FieldList},
	{Name: "posts", Kind: core.FieldList},
	{Name: "timeline", Kind: core.FieldList},
	{Name: "blocked", Kind: core.FieldMap},
}

// NewType compiles the User object type.
func NewType() (*core.ObjectType, error) {
	mod, err := vm.Assemble(Source)
	if err != nil {
		return nil, fmt.Errorf("retwis: assemble: %w", err)
	}
	return core.NewObjectType(TypeName, Fields, Methods, mod)
}

// MustType panics on assembly errors (static source).
func MustType() *core.ObjectType {
	t, err := NewType()
	if err != nil {
		panic(err)
	}
	return t
}

// Post is one decoded timeline entry.
type Post struct {
	Author core.ObjectID
	Time   int64
	Msg    string
}

// DecodeTimeline parses get_timeline's result.
func DecodeTimeline(data []byte) ([]Post, error) {
	var posts []Post
	for len(data) > 0 {
		if len(data) < 8 {
			return nil, fmt.Errorf("retwis: truncated timeline length")
		}
		n := binary.LittleEndian.Uint64(data)
		data = data[8:]
		if uint64(len(data)) < n || n < 16 {
			return nil, fmt.Errorf("retwis: truncated timeline entry (%d of %d)", len(data), n)
		}
		entry := data[:n]
		data = data[n:]
		posts = append(posts, Post{
			Author: core.ObjectID(binary.LittleEndian.Uint64(entry)),
			Time:   int64(binary.LittleEndian.Uint64(entry[8:])),
			Msg:    string(entry[16:]),
		})
	}
	return posts, nil
}
