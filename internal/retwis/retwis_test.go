package retwis

import (
	"fmt"
	"testing"
	"testing/quick"

	"lambdastore/internal/core"
	"lambdastore/internal/store"
)

func newRuntime(t *testing.T) *core.Runtime {
	t.Helper()
	db, err := store.Open(t.TempDir(), nil)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	rt, err := core.NewRuntime(db, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	typ, err := NewType()
	if err != nil {
		t.Fatal(err)
	}
	if err := rt.RegisterType(typ); err != nil {
		t.Fatal(err)
	}
	return rt
}

func mkUser(t *testing.T, rt *core.Runtime, id core.ObjectID, name string) {
	t.Helper()
	if err := rt.CreateObject(TypeName, id); err != nil {
		t.Fatal(err)
	}
	if _, err := rt.Invoke(id, "create_account", [][]byte{[]byte(name)}); err != nil {
		t.Fatal(err)
	}
}

func call(t *testing.T, rt *core.Runtime, id core.ObjectID, method string, args ...[]byte) []byte {
	t.Helper()
	res, err := rt.Invoke(id, method, args)
	if err != nil {
		t.Fatalf("%s.%s: %v", id, method, err)
	}
	return res
}

func TestAccountAndName(t *testing.T) {
	rt := newRuntime(t)
	mkUser(t, rt, 1, "alice")
	if got := call(t, rt, 1, "get_name"); string(got) != "alice" {
		t.Fatalf("get_name = %q", got)
	}
}

func TestFollowRecordsBothSides(t *testing.T) {
	rt := newRuntime(t)
	mkUser(t, rt, 1, "alice")
	mkUser(t, rt, 2, "bob")
	// bob follows alice: alice gains a follower.
	call(t, rt, 2, "follow", core.I64Bytes(1))
	if got := core.BytesI64(call(t, rt, 1, "follower_count")); got != 1 {
		t.Fatalf("alice follower_count = %d", got)
	}
	if got := core.BytesI64(call(t, rt, 2, "follower_count")); got != 0 {
		t.Fatalf("bob follower_count = %d", got)
	}
}

func TestCreatePostFansOutToFollowers(t *testing.T) {
	rt := newRuntime(t)
	mkUser(t, rt, 1, "alice")
	for id := core.ObjectID(2); id <= 6; id++ {
		mkUser(t, rt, id, fmt.Sprintf("user%d", id))
		call(t, rt, id, "follow", core.I64Bytes(1))
	}
	res := call(t, rt, 1, "create_post", []byte("hello world"))
	if core.BytesI64(res) != 5 {
		t.Fatalf("create_post deliveries = %d", core.BytesI64(res))
	}
	// Alice's own timeline has the post.
	if got := core.BytesI64(call(t, rt, 1, "timeline_len")); got != 1 {
		t.Fatalf("alice timeline_len = %d", got)
	}
	// Every follower's timeline received it.
	for id := core.ObjectID(2); id <= 6; id++ {
		raw := call(t, rt, id, "get_timeline", core.I64Bytes(10))
		posts, err := DecodeTimeline(raw)
		if err != nil {
			t.Fatal(err)
		}
		if len(posts) != 1 || posts[0].Author != 1 || posts[0].Msg != "hello world" {
			t.Fatalf("user %d timeline = %+v", id, posts)
		}
		if posts[0].Time == 0 {
			t.Fatalf("post timestamp missing")
		}
	}
}

func TestGetTimelineLimitAndOrder(t *testing.T) {
	rt := newRuntime(t)
	mkUser(t, rt, 1, "alice")
	for i := 0; i < 15; i++ {
		call(t, rt, 1, "create_post", []byte(fmt.Sprintf("post-%02d", i)))
	}
	raw := call(t, rt, 1, "get_timeline", core.I64Bytes(10))
	posts, err := DecodeTimeline(raw)
	if err != nil {
		t.Fatal(err)
	}
	if len(posts) != 10 {
		t.Fatalf("timeline window = %d posts", len(posts))
	}
	// Window is the newest 10, oldest-first: post-05 .. post-14.
	for i, p := range posts {
		if want := fmt.Sprintf("post-%02d", i+5); p.Msg != want {
			t.Fatalf("posts[%d] = %q, want %q", i, p.Msg, want)
		}
	}
	// Limit beyond length returns everything.
	raw = call(t, rt, 1, "get_timeline", core.I64Bytes(100))
	posts, _ = DecodeTimeline(raw)
	if len(posts) != 15 {
		t.Fatalf("full timeline = %d posts", len(posts))
	}
}

func TestBlockSuppressesFuturePosts(t *testing.T) {
	// The paper's §2 motivating scenario: after a block, new posts from the
	// blocked author must not reach the timeline — and with invocation
	// linearizability, a block that returns before create_post is issued is
	// guaranteed to be respected.
	rt := newRuntime(t)
	mkUser(t, rt, 1, "author")
	mkUser(t, rt, 2, "reader")
	call(t, rt, 2, "follow", core.I64Bytes(1))

	call(t, rt, 1, "create_post", []byte("pre-block"))
	if got := core.BytesI64(call(t, rt, 2, "timeline_len")); got != 1 {
		t.Fatalf("timeline before block = %d", got)
	}

	// reader blocks author; the block committed before the next post.
	call(t, rt, 2, "block", core.I64Bytes(1))
	call(t, rt, 1, "create_post", []byte("post-block"))

	posts, err := DecodeTimeline(call(t, rt, 2, "get_timeline", core.I64Bytes(10)))
	if err != nil {
		t.Fatal(err)
	}
	if len(posts) != 1 || posts[0].Msg != "pre-block" {
		t.Fatalf("timeline after block = %+v", posts)
	}
}

func TestTimelineCaching(t *testing.T) {
	db, err := store.Open(t.TempDir(), nil)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	rt, err := core.NewRuntime(db, core.Options{CacheEntries: 1024})
	if err != nil {
		t.Fatal(err)
	}
	if err := rt.RegisterType(MustType()); err != nil {
		t.Fatal(err)
	}
	mkUser(t, rt, 1, "alice")
	call(t, rt, 1, "create_post", []byte("p1"))

	first := call(t, rt, 1, "get_timeline", core.I64Bytes(10))
	second := call(t, rt, 1, "get_timeline", core.I64Bytes(10))
	if string(first) != string(second) {
		t.Fatal("cached timeline differs")
	}
	if rt.Cache().Stats().Hits == 0 {
		t.Fatal("expected a cache hit for get_timeline")
	}
	// A new post invalidates.
	call(t, rt, 1, "create_post", []byte("p2"))
	posts, _ := DecodeTimeline(call(t, rt, 1, "get_timeline", core.I64Bytes(10)))
	if len(posts) != 2 {
		t.Fatalf("timeline after invalidation = %d posts (stale cache)", len(posts))
	}
}

func TestDecodeTimelineErrors(t *testing.T) {
	if _, err := DecodeTimeline([]byte{1, 2, 3}); err == nil {
		t.Fatal("truncated length decoded")
	}
	bad := append(core.I64Bytes(100), []byte("short")...)
	if _, err := DecodeTimeline(bad); err == nil {
		t.Fatal("truncated entry decoded")
	}
	if posts, err := DecodeTimeline(nil); err != nil || len(posts) != 0 {
		t.Fatalf("empty timeline: %v %v", posts, err)
	}
}

func TestDecodeTimelineNeverPanics(t *testing.T) {
	f := func(garbage []byte) bool {
		_, _ = DecodeTimeline(garbage) // error is fine; panic is not
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}
