package admission

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"lambdastore/internal/telemetry"
)

// waitFor polls cond for up to two seconds.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(500 * time.Microsecond)
	}
}

// fakeClock is a mutex-guarded manual clock for deterministic shed tests.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func (c *fakeClock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

func TestOverloadErrorRoundTrip(t *testing.T) {
	err := Overloaded("queue full")
	if !errors.Is(err, ErrOverload) {
		t.Fatalf("typed overload error should match ErrOverload")
	}
	if !IsOverload(err) {
		t.Fatalf("IsOverload(local) = false")
	}
	// Across RPC the error arrives as a flattened string, possibly wrapped
	// again by a retry loop; the prefix must still identify it.
	remote := fmt.Errorf("cluster: invoke 7.create_post failed after retries: %w",
		errors.New("rpc: remote: "+err.Error()))
	if !IsOverload(remote) {
		t.Fatalf("IsOverload(remote string form) = false")
	}
	if IsOverload(errors.New("not-responsible:127.0.0.1:7000")) {
		t.Fatalf("routing rejection misclassified as overload")
	}
	if IsOverload(nil) {
		t.Fatalf("IsOverload(nil) = true")
	}
}

func TestAdmitGrantAndHandoff(t *testing.T) {
	p := New(Options{Workers: 1, QueueLimit: 8, Deadline: time.Second})
	rel, err := p.Admit("a")
	if err != nil {
		t.Fatalf("first admit: %v", err)
	}
	granted := make(chan error, 1)
	go func() {
		rel2, err := p.Admit("b")
		if err == nil {
			rel2()
		}
		granted <- err
	}()
	waitFor(t, "waiter to queue", func() bool { return p.Status().QueueDepth == 1 })
	rel()
	if err := <-granted; err != nil {
		t.Fatalf("queued admit after release: %v", err)
	}
	st := p.Status()
	if st.Admitted != 2 || st.Queued != 1 {
		t.Fatalf("admitted=%d queued=%d, want 2 and 1", st.Admitted, st.Queued)
	}
	// Both slots released; a fresh admit goes straight through.
	rel3, err := p.Admit("c")
	if err != nil {
		t.Fatalf("admit after drain: %v", err)
	}
	rel3()
}

func TestDeadlineShedWhileWaiting(t *testing.T) {
	p := New(Options{Workers: 1, QueueLimit: 8, Deadline: 5 * time.Millisecond})
	rel, err := p.Admit("")
	if err != nil {
		t.Fatalf("admit: %v", err)
	}
	defer rel()
	_, err = p.Admit("") // queues behind the held slot, times out
	if err == nil {
		t.Fatalf("expected deadline shed")
	}
	if !IsOverload(err) {
		t.Fatalf("shed error not an overload: %v", err)
	}
	if st := p.Status(); st.ShedDeadline != 1 {
		t.Fatalf("shed_deadline=%d, want 1", st.ShedDeadline)
	}
	if st := p.Status(); st.QueueDepth != 0 {
		t.Fatalf("queue depth %d after shed, want 0", st.QueueDepth)
	}
}

func TestDrainShedsExpiredWaiters(t *testing.T) {
	// The waiter's own timer is held far away (1h); only the drain path,
	// driven by a manual clock, decides. A waiter whose wait already
	// exceeds the deadline must be shed at drain time, not granted.
	clk := &fakeClock{t: time.Unix(1000, 0)}
	p := New(Options{Workers: 1, QueueLimit: 8, Deadline: time.Hour, Now: clk.now})
	rel, err := p.Admit("")
	if err != nil {
		t.Fatalf("admit: %v", err)
	}
	res := make(chan error, 1)
	go func() {
		rel2, err := p.Admit("")
		if err == nil {
			rel2()
		}
		res <- err
	}()
	waitFor(t, "waiter to queue", func() bool { return p.Status().QueueDepth == 1 })
	clk.advance(2 * time.Hour) // the queued request is now long past its deadline
	rel()
	err = <-res
	if err == nil || !IsOverload(err) {
		t.Fatalf("expired waiter granted a slot (err=%v)", err)
	}
	if st := p.Status(); st.ShedDeadline != 1 {
		t.Fatalf("shed_deadline=%d, want 1", st.ShedDeadline)
	}
	// The slot was freed, not leaked: an immediate admit succeeds.
	rel3, err := p.Admit("")
	if err != nil {
		t.Fatalf("admit after drain shed: %v", err)
	}
	rel3()
}

func TestQueueFullShedsImmediately(t *testing.T) {
	p := New(Options{Workers: 1, QueueLimit: 1, Deadline: time.Second})
	rel, err := p.Admit("")
	if err != nil {
		t.Fatalf("admit: %v", err)
	}
	defer rel()
	go p.Admit("") //nolint:errcheck // occupies the single queue slot
	waitFor(t, "queue to fill", func() bool { return p.Status().QueueDepth == 1 })
	if _, err := p.Admit(""); err == nil || !IsOverload(err) {
		t.Fatalf("expected queue-full shed, got %v", err)
	}
	if st := p.Status(); st.ShedFull != 1 {
		t.Fatalf("shed_full=%d, want 1", st.ShedFull)
	}
}

func TestLIFODrainsNewestFirst(t *testing.T) {
	p := New(Options{Workers: 1, QueueLimit: 8, Deadline: 5 * time.Second, LIFO: true})
	rel, err := p.Admit("")
	if err != nil {
		t.Fatalf("admit: %v", err)
	}
	order := make(chan string, 2)
	enqueue := func(name string) chan func() {
		got := make(chan func(), 1)
		go func() {
			r, err := p.Admit("")
			if err != nil {
				t.Errorf("admit %s: %v", name, err)
				got <- func() {}
				return
			}
			order <- name
			got <- r
		}()
		return got
	}
	ra := enqueue("A")
	waitFor(t, "A queued", func() bool { return p.Status().QueueDepth == 1 })
	rb := enqueue("B")
	waitFor(t, "B queued", func() bool { return p.Status().QueueDepth == 2 })
	rel()
	if first := <-order; first != "B" {
		t.Fatalf("LIFO drained %q first, want B", first)
	}
	(<-rb)()
	if second := <-order; second != "A" {
		t.Fatalf("second grant %q, want A", second)
	}
	(<-ra)()
}

func TestTokenBucketRefill(t *testing.T) {
	clk := &fakeClock{t: time.Unix(1000, 0)}
	p := New(Options{Workers: 64, QueueLimit: 8, Deadline: time.Second,
		TenantQPS: 10, Now: clk.now}) // burst defaults to 10 tokens
	for i := 0; i < 10; i++ {
		rel, err := p.Admit("tenant-a")
		if err != nil {
			t.Fatalf("admit %d within burst: %v", i, err)
		}
		rel()
	}
	if _, err := p.Admit("tenant-a"); err == nil || !IsOverload(err) {
		t.Fatalf("11th admit should be over quota, got %v", err)
	}
	if st := p.Status(); st.ShedQuota != 1 {
		t.Fatalf("shed_quota=%d, want 1", st.ShedQuota)
	}
	// Another tenant has its own bucket.
	if rel, err := p.Admit("tenant-b"); err != nil {
		t.Fatalf("tenant-b admit: %v", err)
	} else {
		rel()
	}
	// 100ms at 10 QPS refills exactly one token.
	clk.advance(100 * time.Millisecond)
	rel, err := p.Admit("tenant-a")
	if err != nil {
		t.Fatalf("admit after refill: %v", err)
	}
	rel()
	if _, err := p.Admit("tenant-a"); err == nil {
		t.Fatalf("bucket should be empty again")
	}
	// An untagged request is never quota-limited.
	if rel, err := p.Admit(""); err != nil {
		t.Fatalf("untagged admit: %v", err)
	} else {
		rel()
	}
}

func TestEWMAObserve(t *testing.T) {
	p := New(Options{Workers: 1})
	p.Observe(1 * time.Millisecond)
	if got := p.EWMALatency(); got != 1*time.Millisecond {
		t.Fatalf("first observation should seed the EWMA, got %v", got)
	}
	for i := 0; i < 100; i++ {
		p.Observe(3 * time.Millisecond)
	}
	got := p.EWMALatency()
	if got < 2500*time.Microsecond || got > 3100*time.Microsecond {
		t.Fatalf("EWMA %v did not converge toward 3ms", got)
	}
}

func TestCloseShedsWaiters(t *testing.T) {
	p := New(Options{Workers: 1, QueueLimit: 8, Deadline: time.Minute})
	rel, err := p.Admit("")
	if err != nil {
		t.Fatalf("admit: %v", err)
	}
	res := make(chan error, 1)
	go func() {
		_, err := p.Admit("")
		res <- err
	}()
	waitFor(t, "waiter to queue", func() bool { return p.Status().QueueDepth == 1 })
	p.Close()
	if err := <-res; err == nil || !IsOverload(err) {
		t.Fatalf("close should shed the waiter with an overload error, got %v", err)
	}
	if _, err := p.Admit(""); err == nil {
		t.Fatalf("admit after close should be rejected")
	}
	rel()
}

// TestConcurrentEnqueueShedDrain is the -race workout: admits, deadline
// sheds, drain handoffs and status reads all interleave. The invariants —
// every grant released, accounting consistent, no deadlock — are what the
// race detector and the final counters check.
func TestConcurrentEnqueueShedDrain(t *testing.T) {
	reg := telemetry.NewRegistry()
	p := New(Options{Workers: 4, QueueLimit: 32, Deadline: 2 * time.Millisecond,
		TenantQPS: 1e6, Metrics: reg})
	const goroutines = 16
	const perG = 200
	var admitted, shed atomic.Uint64
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			tenant := fmt.Sprintf("t%d", g%4)
			for i := 0; i < perG; i++ {
				rel, err := p.Admit(tenant)
				if err != nil {
					if !IsOverload(err) {
						t.Errorf("non-overload rejection: %v", err)
						return
					}
					shed.Add(1)
					continue
				}
				admitted.Add(1)
				if i%8 == 0 {
					time.Sleep(100 * time.Microsecond) // hold the slot: force queueing
				}
				p.Observe(time.Duration(i%50) * time.Microsecond)
				rel()
			}
		}(g)
	}
	done := make(chan struct{})
	go func() {
		for {
			select {
			case <-done:
				return
			default:
				p.Status()
				time.Sleep(time.Millisecond)
			}
		}
	}()
	wg.Wait()
	close(done)

	if admitted.Load()+shed.Load() != goroutines*perG {
		t.Fatalf("admitted %d + shed %d != %d issued",
			admitted.Load(), shed.Load(), goroutines*perG)
	}
	st := p.Status()
	if st.Admitted != admitted.Load() {
		t.Fatalf("plane admitted=%d, callers saw %d", st.Admitted, admitted.Load())
	}
	if st.ShedDeadline+st.ShedQuota+st.ShedFull != shed.Load() {
		t.Fatalf("plane sheds=%d+%d+%d, callers saw %d",
			st.ShedDeadline, st.ShedQuota, st.ShedFull, shed.Load())
	}
	if st.Active != 0 || st.QueueDepth != 0 {
		t.Fatalf("leaked state after drain: active=%d depth=%d", st.Active, st.QueueDepth)
	}
	// All slots free again: a burst of Workers admits succeeds instantly.
	for i := 0; i < 4; i++ {
		rel, err := p.Admit("")
		if err != nil {
			t.Fatalf("post-drain admit %d: %v", i, err)
		}
		defer rel()
	}
}
