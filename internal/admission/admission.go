// Package admission is the per-node admission plane: it sits between RPC
// dispatch and execution and decides what the node *refuses* to do under
// overload, instead of letting an unbounded backlog destroy every
// in-flight request's latency.
//
// Three mechanisms compose:
//
//   - A bounded wait queue in front of a fixed pool of execution slots.
//     Arrivals beyond the queue limit are shed immediately (queue-full).
//   - Deadline shedding: a request whose queue wait exceeds its deadline
//     is rejected — both by its own timer while waiting and by the drain
//     path before a worker is wasted on a request the client has likely
//     already given up on. The queue drains FIFO (fairness) or LIFO
//     (fresh-first: under a burst the newest requests still meet their
//     deadline while the oldest, already doomed, are shed).
//   - Per-tenant token buckets keyed off the RPC frame identity, so one
//     greedy client cannot starve the rest of the node's capacity.
//
// Rejections carry the "overloaded:" wire prefix so they survive the RPC
// error round trip as strings; clients test with IsOverload and retry
// with capped backoff. Shedding happens strictly before execution — an
// acknowledged write can never be shed, because shed requests never
// reach the runtime's commit path.
package admission

import (
	"errors"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"lambdastore/internal/telemetry"
)

// ErrOverload is the sentinel every shed rejection matches via errors.Is.
var ErrOverload = errors.New("admission: overloaded")

// overloadPrefix marks shed rejections on the wire. Like the cluster
// package's "not-responsible:" routing prefix, it is the part of the error
// that survives the trip through rpc.RemoteError's string flattening.
const overloadPrefix = "overloaded:"

// overloadError is a shed rejection: typed locally, prefixed for the wire.
type overloadError struct{ reason string }

func (e *overloadError) Error() string { return overloadPrefix + " " + e.reason }

// Is makes errors.Is(err, ErrOverload) true for local rejections.
func (e *overloadError) Is(target error) bool { return target == ErrOverload }

// Overloaded builds a shed rejection carrying reason.
func Overloaded(reason string) error { return &overloadError{reason: reason} }

// IsOverload reports whether err is a shed rejection — either a typed
// local error or one round-tripped through RPC as a RemoteError string
// (possibly wrapped by retry-loop formatting on the way).
func IsOverload(err error) bool {
	if err == nil {
		return false
	}
	if errors.Is(err, ErrOverload) {
		return true
	}
	return strings.Contains(err.Error(), overloadPrefix)
}

// Defaults for zero-valued Options fields.
const (
	DefaultQueueLimit = 1024
	DefaultDeadline   = 100 * time.Millisecond
)

// Options configures a Plane.
type Options struct {
	// Workers bounds how many admitted requests execute concurrently
	// (default runtime.NumCPU()).
	Workers int
	// QueueLimit bounds how many requests may wait for a slot; arrivals
	// beyond it are shed immediately (default DefaultQueueLimit).
	QueueLimit int
	// Deadline bounds queue wait before a request is shed (default
	// DefaultDeadline).
	Deadline time.Duration
	// LIFO drains the queue newest-first instead of oldest-first.
	LIFO bool
	// TenantQPS, when positive, enforces a per-tenant token-bucket rate
	// limit ahead of the queue. Zero disables quotas.
	TenantQPS float64
	// TenantBurst is the bucket capacity in tokens (default
	// max(1, TenantQPS): one second of quota).
	TenantBurst float64
	// Metrics receives the plane's instruments; nil keeps private ones.
	Metrics *telemetry.Registry
	// Now overrides the clock (deterministic tests).
	Now func() time.Time
}

// waiter is one queued request. granted and reason are written by the
// resolver under Plane.mu before ready is closed; the channel close is the
// happens-before edge that lets the waiter read them without the lock.
type waiter struct {
	ready   chan struct{}
	enq     time.Time
	granted bool
	reason  string
}

// bucket is one tenant's token state.
type bucket struct {
	tokens float64
	last   time.Time
}

// maxTenants bounds the bucket map; when full, buckets that have refilled
// to capacity (idle tenants) are pruned before a new one is added.
const maxTenants = 4096

// Plane is one node's admission control state. All methods are safe for
// concurrent use.
type Plane struct {
	opts Options
	now  func() time.Time

	mu     sync.Mutex
	active int
	queue  []*waiter
	closed bool

	bktMu   sync.Mutex
	buckets map[string]*bucket

	queued       *telemetry.Counter
	admitted     *telemetry.Counter
	shedDeadline *telemetry.Counter
	shedQuota    *telemetry.Counter
	shedFull     *telemetry.Counter
	depth        *telemetry.Gauge
	ewmaGauge    *telemetry.Gauge
	waitHist     *telemetry.Histogram

	ewmaUs atomic.Uint64
}

// New builds a Plane.
func New(opts Options) *Plane {
	if opts.Workers <= 0 {
		opts.Workers = runtime.NumCPU()
	}
	if opts.QueueLimit <= 0 {
		opts.QueueLimit = DefaultQueueLimit
	}
	if opts.Deadline <= 0 {
		opts.Deadline = DefaultDeadline
	}
	if opts.TenantBurst <= 0 {
		opts.TenantBurst = opts.TenantQPS
		if opts.TenantBurst < 1 {
			opts.TenantBurst = 1
		}
	}
	p := &Plane{opts: opts, now: opts.Now, buckets: make(map[string]*bucket)}
	if p.now == nil {
		p.now = time.Now
	}
	reg := opts.Metrics
	if reg == nil {
		reg = telemetry.NewRegistry()
	}
	p.queued = reg.Counter("admission.queued")
	p.admitted = reg.Counter("admission.admitted")
	p.shedDeadline = reg.Counter("admission.shed_deadline")
	p.shedQuota = reg.Counter("admission.shed_quota")
	p.shedFull = reg.Counter("admission.shed_full")
	p.depth = reg.Gauge("admission.queue_depth")
	p.ewmaGauge = reg.Gauge("admission.ewma_latency_us")
	p.waitHist = reg.Histogram("admission.queue_wait")
	return p
}

// Admit requests an execution slot on behalf of tenant ("" = unmetered by
// quota). On success the returned release must be called exactly once when
// the request finishes executing; on failure the request was shed, the
// error matches ErrOverload, and nothing needs releasing.
func (p *Plane) Admit(tenant string) (release func(), err error) {
	now := p.now()
	if p.opts.TenantQPS > 0 && tenant != "" && !p.takeToken(tenant, now) {
		p.shedQuota.Inc()
		return nil, Overloaded("tenant " + tenant + " over quota")
	}

	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		p.shedFull.Inc()
		return nil, Overloaded("admission plane closed")
	}
	if p.active < p.opts.Workers && len(p.queue) == 0 {
		p.active++
		p.mu.Unlock()
		p.admitted.Inc()
		return p.release, nil
	}
	if len(p.queue) >= p.opts.QueueLimit {
		p.mu.Unlock()
		p.shedFull.Inc()
		return nil, Overloaded("admission queue full")
	}
	w := &waiter{ready: make(chan struct{}), enq: now}
	p.queue = append(p.queue, w)
	p.depth.Set(int64(len(p.queue)))
	p.mu.Unlock()
	p.queued.Inc()

	timer := time.NewTimer(p.opts.Deadline)
	defer timer.Stop()
	select {
	case <-w.ready:
	case <-timer.C:
		p.mu.Lock()
		if p.removeLocked(w) {
			p.depth.Set(int64(len(p.queue)))
			p.mu.Unlock()
			p.shedDeadline.Inc()
			return nil, Overloaded("queue wait exceeded deadline")
		}
		// The drain resolved this waiter between the timer firing and the
		// lock being taken; the closed channel says how it went.
		p.mu.Unlock()
		<-w.ready
	}
	if !w.granted {
		// Shed by the drain path or Close; already counted there.
		return nil, Overloaded(w.reason)
	}
	p.waitHist.Record(p.now().Sub(w.enq))
	p.admitted.Inc()
	return p.release, nil
}

// release frees one execution slot, handing it to the next admissible
// waiter. Waiters whose queue wait already exceeds the deadline are shed
// here instead of being granted a slot their client has given up on.
func (p *Plane) release() {
	now := p.now()
	p.mu.Lock()
	for len(p.queue) > 0 {
		var w *waiter
		if p.opts.LIFO {
			w = p.queue[len(p.queue)-1]
			p.queue[len(p.queue)-1] = nil
			p.queue = p.queue[:len(p.queue)-1]
		} else {
			w = p.queue[0]
			p.queue[0] = nil
			p.queue = p.queue[1:]
		}
		if now.Sub(w.enq) > p.opts.Deadline {
			w.granted = false
			w.reason = "queue wait exceeded deadline"
			close(w.ready)
			p.shedDeadline.Inc()
			continue
		}
		// Slot transferred: active stays constant.
		w.granted = true
		close(w.ready)
		p.depth.Set(int64(len(p.queue)))
		p.mu.Unlock()
		return
	}
	p.active--
	p.depth.Set(0)
	p.mu.Unlock()
}

// removeLocked drops w from the queue if still present.
func (p *Plane) removeLocked(w *waiter) bool {
	for i, q := range p.queue {
		if q == w {
			copy(p.queue[i:], p.queue[i+1:])
			p.queue[len(p.queue)-1] = nil
			p.queue = p.queue[:len(p.queue)-1]
			return true
		}
	}
	return false
}

// takeToken refills tenant's bucket for elapsed time and consumes one
// token if available.
func (p *Plane) takeToken(tenant string, now time.Time) bool {
	p.bktMu.Lock()
	defer p.bktMu.Unlock()
	b, ok := p.buckets[tenant]
	if !ok {
		if len(p.buckets) >= maxTenants {
			p.pruneLocked(now)
		}
		b = &bucket{tokens: p.opts.TenantBurst, last: now}
		p.buckets[tenant] = b
	}
	b.tokens += now.Sub(b.last).Seconds() * p.opts.TenantQPS
	if b.tokens > p.opts.TenantBurst {
		b.tokens = p.opts.TenantBurst
	}
	b.last = now
	if b.tokens < 1 {
		return false
	}
	b.tokens--
	return true
}

// pruneLocked evicts buckets that have refilled to capacity — tenants idle
// long enough that forgetting them loses nothing.
func (p *Plane) pruneLocked(now time.Time) {
	for t, b := range p.buckets {
		if b.tokens+now.Sub(b.last).Seconds()*p.opts.TenantQPS >= p.opts.TenantBurst {
			delete(p.buckets, t)
		}
	}
}

// ewmaAlpha weights a new observation 1/8: smooth enough to ride out one
// slow request, fresh enough to track a load shift within tens of them.
const ewmaAlpha = 0.125

// Observe feeds one completed request's service latency into the plane's
// EWMA, exported as the admission.ewma_latency_us gauge so the coordinator
// aggregator sees each node's service-time trend next to its shed rate.
func (p *Plane) Observe(d time.Duration) {
	us := uint64(d.Microseconds())
	for {
		cur := p.ewmaUs.Load()
		next := us
		if cur != 0 {
			next = uint64(float64(cur)*(1-ewmaAlpha) + float64(us)*ewmaAlpha)
		}
		if p.ewmaUs.CompareAndSwap(cur, next) {
			p.ewmaGauge.Set(int64(next))
			return
		}
	}
}

// EWMALatency returns the current service-latency EWMA.
func (p *Plane) EWMALatency() time.Duration {
	return time.Duration(p.ewmaUs.Load()) * time.Microsecond
}

// Close sheds every queued waiter and refuses future admissions. Requests
// already executing finish normally; their release calls still run.
func (p *Plane) Close() {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return
	}
	p.closed = true
	for _, w := range p.queue {
		w.granted = false
		w.reason = "admission plane closed"
		close(w.ready)
		p.shedFull.Inc()
	}
	p.queue = nil
	p.depth.Set(0)
	p.mu.Unlock()
}

// Status is the /admission debug endpoint's JSON shape.
type Status struct {
	Enabled       bool    `json:"enabled"`
	Workers       int     `json:"workers"`
	Active        int     `json:"active"`
	QueueDepth    int     `json:"queue_depth"`
	QueueLimit    int     `json:"queue_limit"`
	LIFO          bool    `json:"lifo"`
	DeadlineMs    float64 `json:"deadline_ms"`
	TenantQPS     float64 `json:"tenant_qps"`
	Tenants       int     `json:"tenants"`
	Queued        uint64  `json:"queued"`
	Admitted      uint64  `json:"admitted"`
	ShedDeadline  uint64  `json:"shed_deadline"`
	ShedQuota     uint64  `json:"shed_quota"`
	ShedFull      uint64  `json:"shed_full"`
	EWMALatencyUs uint64  `json:"ewma_latency_us"`
}

// Status snapshots the plane.
func (p *Plane) Status() Status {
	p.mu.Lock()
	active, depth := p.active, len(p.queue)
	p.mu.Unlock()
	p.bktMu.Lock()
	tenants := len(p.buckets)
	p.bktMu.Unlock()
	return Status{
		Enabled:       true,
		Workers:       p.opts.Workers,
		Active:        active,
		QueueDepth:    depth,
		QueueLimit:    p.opts.QueueLimit,
		LIFO:          p.opts.LIFO,
		DeadlineMs:    float64(p.opts.Deadline) / float64(time.Millisecond),
		TenantQPS:     p.opts.TenantQPS,
		Tenants:       tenants,
		Queued:        p.queued.Value(),
		Admitted:      p.admitted.Value(),
		ShedDeadline:  p.shedDeadline.Value(),
		ShedQuota:     p.shedQuota.Value(),
		ShedFull:      p.shedFull.Value(),
		EWMALatencyUs: p.ewmaUs.Load(),
	}
}
