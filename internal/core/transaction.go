package core

import (
	"fmt"
	"sort"

	"lambdastore/internal/sched"
)

// The paper leaves "serializable transactions spanning multiple function
// calls" as future work (§3.1, §7), noting that "embedding execution into
// the database itself allows using proven transaction processing protocols
// from existing database management systems". This file implements exactly
// that: a transaction is a declared list of method calls whose objects are
// locked up front in ID order (deadlock-free strict two-phase locking);
// all calls execute against one shared write buffer over one snapshot, and
// the combined write-set commits atomically. Because methods can only
// access their own object's fields, the declared object set is the exact
// lock footprint — the property that makes 2PL trivially safe here.

// TxCall is one method invocation inside a transaction.
type TxCall struct {
	Object ObjectID
	Method string
	Args   [][]byte
}

// ErrTxRestricted is returned when a transactional method performs an
// operation transactions do not support (cross-object invocation — the
// transaction's call list is the whole graph).
var ErrTxRestricted = fmt.Errorf("core: operation not allowed inside a transaction")

// InvokeTransaction executes calls as one serializable unit: either every
// call's writes commit atomically, or (on any trap or error) none do.
// Locks on all involved objects are held from start to commit, so the
// transaction is serializable with respect to all other invocations and
// transactions.
func (rt *Runtime) InvokeTransaction(calls []TxCall) ([][]byte, error) {
	return rt.InvokeTransactionCtx(calls, CallCtx{})
}

// InvokeTransactionCtx is InvokeTransaction with an explicit call context:
// the transaction records a "tx" span (parented to the caller when traced)
// and its member invocations nest their stage spans beneath it.
func (rt *Runtime) InvokeTransactionCtx(calls []TxCall, cc CallCtx) ([][]byte, error) {
	span := rt.tracer.StartSpan(cc.Trace, "tx")
	if span.Recording() {
		cc.Trace = span.Context()
	}
	results, err := rt.invokeTransactionCtx(calls, cc)
	span.FinishErr(err)
	return results, err
}

func (rt *Runtime) invokeTransactionCtx(calls []TxCall, cc CallCtx) ([][]byte, error) {
	if len(calls) == 0 {
		return nil, nil
	}

	// Resolve and validate every call before taking any locks.
	type resolved struct {
		typ *ObjectType
		mi  *MethodInfo
	}
	rcalls := make([]resolved, len(calls))
	for i, c := range calls {
		typ, err := rt.typeOf(c.Object)
		if err != nil {
			return nil, err
		}
		mi, ok := typ.Method(c.Method)
		if !ok {
			return nil, fmt.Errorf("%w: %s.%s", ErrNoSuchMethod, typ.Name, c.Method)
		}
		rcalls[i] = resolved{typ: typ, mi: mi}
	}

	// Lock the object set in ascending ID order: no lock cycles possible.
	objSet := make(map[ObjectID]struct{}, len(calls))
	for _, c := range calls {
		objSet[c.Object] = struct{}{}
	}
	objs := make([]ObjectID, 0, len(objSet))
	for o := range objSet {
		objs = append(objs, o)
	}
	sort.Slice(objs, func(i, j int) bool { return objs[i] < objs[j] })

	var releases []func()
	defer func() {
		for i := len(releases) - 1; i >= 0; i-- {
			releases[i]()
		}
	}()
	if !rt.opts.DisableScheduler {
		for _, o := range objs {
			release, err := rt.locks.Acquire(uint64(o), sched.Write)
			if err != nil {
				return nil, err
			}
			releases = append(releases, release)
		}
	}

	// One shared buffer over one snapshot: calls see each other's writes,
	// nothing outside sees any of them until commit.
	shared := newTxn(rt.db, false)
	defer shared.close()

	results := make([][]byte, len(calls))
	wrote := false
	for i, c := range calls {
		iv := &invocation{
			rt:       rt,
			obj:      c.Object,
			typ:      rcalls[i].typ,
			method:   rcalls[i].mi,
			args:     c.Args,
			txn:      shared,
			trace:    cc.Trace,
			mode:     sched.Write,
			locked:   true, // the transaction holds the admissions
			external: true, // commit and unlock are managed here
		}
		res, err := iv.run()
		if err != nil {
			return nil, fmt.Errorf("core: transaction call %d (%s.%s): %w",
				i, rcalls[i].typ.Name, c.Method, err)
		}
		if !rcalls[i].mi.ReadOnly {
			wrote = true
		}
		results[i] = res
	}

	if shared.dirty() {
		if !wrote {
			return nil, ErrReadOnly
		}
		// Bump every written object's version inside the same batch.
		touched := make(map[ObjectID]struct{})
		for k := range shared.writes {
			if id, err := parseObjectID([]byte(k)); err == nil {
				touched[id] = struct{}{}
			}
		}
		for id := range touched {
			if _, present, err := shared.get(headerKey(id)); err != nil {
				return nil, err
			} else if !present {
				return nil, fmt.Errorf("%w: %s (deleted during transaction)", ErrNoSuchObject, id)
			}
			cur, _, err := shared.get(versionKey(id))
			if err != nil {
				return nil, err
			}
			shared.put(versionKey(id), encodeU64(decodeU64(cur)+1))
		}
		b := shared.batch()
		wsp := rt.tracer.StartSpan(cc.Trace, "wal-sync")
		err := rt.db.Write(b)
		wsp.FinishErr(err)
		if err != nil {
			return nil, err
		}
		// One commit notification per touched object: caches invalidate
		// everywhere; the replication hook ships the full batch once (the
		// batch is idempotent, and backups apply it atomically).
		first := true
		for id := range touched {
			rt.statsMu.Lock()
			rt.commits++
			rt.statsMu.Unlock()
			if rt.metrics != nil {
				rt.metrics.commits.Inc()
			}
			if rt.cache != nil {
				rt.cache.InvalidateObject(uint64(id))
			}
			if first && rt.opts.OnCommit != nil {
				// A replication failure withholds the transaction's ack the
				// same way it withholds a single invocation's.
				if err := rt.opts.OnCommit(cc.Trace, id, b.Seq(), b); err != nil {
					return nil, err
				}
			}
			first = false
		}
	}
	return results, nil
}
