package core

import (
	"encoding/binary"
	"fmt"
	"log"
	"math/rand"
	"sync"

	"lambdastore/internal/vm"
	"lambdastore/internal/wire"
)

// The host API is the paper's "key-value API and some utility functions"
// (§3) — the only window an object method has onto the world. Byte strings
// cross the boundary as (ptr, len) pairs into guest linear memory; host
// functions returning bytes allocate in the guest and return a packed
// (ptr<<32 | len) handle, or -1 for absent values.
//
//	self_id() -> id                     arg_count() -> n
//	arg(i) -> packed                    set_result(ptr, len)
//	time() -> unix nanos                rand() -> i64
//	log(ptr, len)                       alloc(n) -> ptr
//
//	val_get(f, flen) -> packed|-1       val_set(f, flen, v, vlen)
//	val_del(f, flen)
//	map_get(f, flen, k, klen) -> packed|-1
//	map_set(f, flen, k, klen, v, vlen)  map_del(f, flen, k, klen)
//	map_count(f, flen) -> n
//	list_len(f, flen) -> n              list_get(f, flen, i) -> packed|-1
//	list_push(f, flen, v, vlen)
//
//	call_arg(ptr, len)                  stage an argument
//	invoke(oid, m, mlen) -> packed      sync cross-object invocation
//	invoke_start(oid, m, mlen) -> h     parallel cross-object invocation
//	invoke_wait(h) -> packed

// packed return-value helpers.
const packedNone = int64(-1)

func packPtrLen(ptr, n int64) int64 { return ptr<<32 | (n & 0xffffffff) }

// UnpackPtrLen splits a packed (ptr, len) handle (exported for tests and
// documentation).
func UnpackPtrLen(p int64) (ptr, n int64) { return p >> 32, p & 0xffffffff }

// allocBytes copies data into guest memory and returns the packed handle.
func allocBytes(inst *vm.Instance, data []byte) (int64, error) {
	ptr, err := inst.Alloc(int64(len(data)))
	if err != nil {
		return 0, err
	}
	if err := inst.MemWrite(ptr, data); err != nil {
		return 0, err
	}
	return packPtrLen(ptr, int64(len(data))), nil
}

// ctxOf extracts the invocation bound to the instance.
func ctxOf(inst *vm.Instance) (*invocation, error) {
	iv, ok := inst.Ctx.(*invocation)
	if !ok || iv == nil {
		return nil, fmt.Errorf("core: host call outside an invocation")
	}
	return iv, nil
}

// EncodeArgs serializes an argument vector for cross-node invocation
// requests (shared with the cluster wire format).
func EncodeArgs(args [][]byte) []byte { return wire.AppendBytesSlice(nil, args) }

// DecodeArgs parses an argument vector.
func DecodeArgs(b []byte) ([][]byte, error) {
	items, _, err := wire.BytesSlice(b)
	if err != nil {
		return nil, err
	}
	out := make([][]byte, len(items))
	for i, it := range items {
		out[i] = append([]byte(nil), it...)
	}
	return out, nil
}

var hostRandMu sync.Mutex
var hostRand = rand.New(rand.NewSource(0x1a3b5c7d))

// newHostTable builds the complete host API. The table is immutable and
// shared by every instance of every type.
func newHostTable() *vm.HostTable {
	t := vm.NewHostTable()

	reg := func(name string, nargs int, hasRet bool, cost int64,
		fn func(iv *invocation, inst *vm.Instance, a []int64) (int64, error)) {
		t.Register(vm.HostFunc{
			Name: name, NArgs: nargs, HasRet: hasRet, Cost: cost,
			Fn: func(inst *vm.Instance, a []int64) (int64, error) {
				iv, err := ctxOf(inst)
				if err != nil {
					return 0, err
				}
				return fn(iv, inst, a)
			},
		})
	}

	// --- identity, arguments, result ---

	reg("self_id", 0, true, 4, func(iv *invocation, inst *vm.Instance, a []int64) (int64, error) {
		return int64(iv.obj), nil
	})

	reg("arg_count", 0, true, 4, func(iv *invocation, inst *vm.Instance, a []int64) (int64, error) {
		return int64(len(iv.args)), nil
	})

	reg("arg", 1, true, 16, func(iv *invocation, inst *vm.Instance, a []int64) (int64, error) {
		i := a[0]
		if i < 0 || i >= int64(len(iv.args)) {
			return 0, fmt.Errorf("core: argument index %d out of range (have %d)", i, len(iv.args))
		}
		return allocBytes(inst, iv.args[i])
	})

	reg("set_result", 2, false, 16, func(iv *invocation, inst *vm.Instance, a []int64) (int64, error) {
		data, err := inst.MemRead(a[0], a[1])
		if err != nil {
			return 0, err
		}
		iv.result = data
		return 0, nil
	})

	// --- utilities ---

	reg("time", 0, true, 8, func(iv *invocation, inst *vm.Instance, a []int64) (int64, error) {
		iv.nocache = true
		return iv.rt.opts.Clock(), nil
	})

	reg("rand", 0, true, 8, func(iv *invocation, inst *vm.Instance, a []int64) (int64, error) {
		iv.nocache = true
		hostRandMu.Lock()
		defer hostRandMu.Unlock()
		return hostRand.Int63(), nil
	})

	reg("log", 2, false, 32, func(iv *invocation, inst *vm.Instance, a []int64) (int64, error) {
		msg, err := inst.MemRead(a[0], a[1])
		if err != nil {
			return 0, err
		}
		log.Printf("[%s %s.%s] %s", iv.obj, iv.typ.Name, iv.method.Name, msg)
		return 0, nil
	})

	t.Register(vm.HostFunc{
		Name: "alloc", NArgs: 1, HasRet: true, Cost: 8,
		Fn: func(inst *vm.Instance, a []int64) (int64, error) {
			return inst.Alloc(a[0])
		},
	})

	// --- value fields ---

	reg("val_get", 2, true, 32, func(iv *invocation, inst *vm.Instance, a []int64) (int64, error) {
		name, err := inst.MemRead(a[0], a[1])
		if err != nil {
			return 0, err
		}
		f, err := iv.fieldOf(name, FieldValue)
		if err != nil {
			return 0, err
		}
		v, present, err := iv.tGet(valueKey(iv.obj, f.Name))
		if err != nil {
			return 0, err
		}
		if !present {
			return packedNone, nil
		}
		return allocBytes(inst, v)
	})

	reg("val_set", 4, false, 48, func(iv *invocation, inst *vm.Instance, a []int64) (int64, error) {
		if err := iv.requireMutable(); err != nil {
			return 0, err
		}
		name, err := inst.MemRead(a[0], a[1])
		if err != nil {
			return 0, err
		}
		f, err := iv.fieldOf(name, FieldValue)
		if err != nil {
			return 0, err
		}
		v, err := inst.MemRead(a[2], a[3])
		if err != nil {
			return 0, err
		}
		return 0, iv.tPut(valueKey(iv.obj, f.Name), v)
	})

	reg("val_del", 2, false, 32, func(iv *invocation, inst *vm.Instance, a []int64) (int64, error) {
		if err := iv.requireMutable(); err != nil {
			return 0, err
		}
		name, err := inst.MemRead(a[0], a[1])
		if err != nil {
			return 0, err
		}
		f, err := iv.fieldOf(name, FieldValue)
		if err != nil {
			return 0, err
		}
		return 0, iv.tDel(valueKey(iv.obj, f.Name))
	})

	// --- map fields ---

	reg("map_get", 4, true, 32, func(iv *invocation, inst *vm.Instance, a []int64) (int64, error) {
		name, err := inst.MemRead(a[0], a[1])
		if err != nil {
			return 0, err
		}
		f, err := iv.fieldOf(name, FieldMap)
		if err != nil {
			return 0, err
		}
		key, err := inst.MemRead(a[2], a[3])
		if err != nil {
			return 0, err
		}
		v, present, err := iv.tGet(mapKey(iv.obj, f.Name, key))
		if err != nil {
			return 0, err
		}
		if !present {
			return packedNone, nil
		}
		return allocBytes(inst, v)
	})

	reg("map_set", 6, false, 48, func(iv *invocation, inst *vm.Instance, a []int64) (int64, error) {
		if err := iv.requireMutable(); err != nil {
			return 0, err
		}
		name, err := inst.MemRead(a[0], a[1])
		if err != nil {
			return 0, err
		}
		f, err := iv.fieldOf(name, FieldMap)
		if err != nil {
			return 0, err
		}
		key, err := inst.MemRead(a[2], a[3])
		if err != nil {
			return 0, err
		}
		v, err := inst.MemRead(a[4], a[5])
		if err != nil {
			return 0, err
		}
		return 0, iv.tPut(mapKey(iv.obj, f.Name, key), v)
	})

	reg("map_del", 4, false, 32, func(iv *invocation, inst *vm.Instance, a []int64) (int64, error) {
		if err := iv.requireMutable(); err != nil {
			return 0, err
		}
		name, err := inst.MemRead(a[0], a[1])
		if err != nil {
			return 0, err
		}
		f, err := iv.fieldOf(name, FieldMap)
		if err != nil {
			return 0, err
		}
		key, err := inst.MemRead(a[2], a[3])
		if err != nil {
			return 0, err
		}
		return 0, iv.tDel(mapKey(iv.obj, f.Name, key))
	})

	reg("map_count", 2, true, 128, func(iv *invocation, inst *vm.Instance, a []int64) (int64, error) {
		name, err := inst.MemRead(a[0], a[1])
		if err != nil {
			return 0, err
		}
		f, err := iv.fieldOf(name, FieldMap)
		if err != nil {
			return 0, err
		}
		// Range reads are not captured by the point read-set; exclude from
		// the result cache.
		iv.nocache = true
		var n int64
		err = iv.tScan(mapPrefix(iv.obj, f.Name), func(k, v []byte) bool {
			n++
			return true
		})
		return n, err
	})

	// --- list fields ---

	reg("list_len", 2, true, 32, func(iv *invocation, inst *vm.Instance, a []int64) (int64, error) {
		name, err := inst.MemRead(a[0], a[1])
		if err != nil {
			return 0, err
		}
		f, err := iv.fieldOf(name, FieldList)
		if err != nil {
			return 0, err
		}
		v, _, err := iv.tGet(listLenKey(iv.obj, f.Name))
		if err != nil {
			return 0, err
		}
		return int64(decodeU64(v)), nil
	})

	reg("list_get", 3, true, 32, func(iv *invocation, inst *vm.Instance, a []int64) (int64, error) {
		name, err := inst.MemRead(a[0], a[1])
		if err != nil {
			return 0, err
		}
		f, err := iv.fieldOf(name, FieldList)
		if err != nil {
			return 0, err
		}
		idx := a[2]
		if idx < 0 {
			return packedNone, nil
		}
		v, present, err := iv.tGet(listEntryKey(iv.obj, f.Name, uint64(idx)))
		if err != nil {
			return 0, err
		}
		if !present {
			return packedNone, nil
		}
		return allocBytes(inst, v)
	})

	reg("list_push", 4, false, 48, func(iv *invocation, inst *vm.Instance, a []int64) (int64, error) {
		if err := iv.requireMutable(); err != nil {
			return 0, err
		}
		name, err := inst.MemRead(a[0], a[1])
		if err != nil {
			return 0, err
		}
		f, err := iv.fieldOf(name, FieldList)
		if err != nil {
			return 0, err
		}
		v, err := inst.MemRead(a[2], a[3])
		if err != nil {
			return 0, err
		}
		lenKey := listLenKey(iv.obj, f.Name)
		cur, _, err := iv.tGet(lenKey)
		if err != nil {
			return 0, err
		}
		n := decodeU64(cur)
		if err := iv.tPut(listEntryKey(iv.obj, f.Name, n), v); err != nil {
			return 0, err
		}
		return 0, iv.tPut(lenKey, encodeU64(n+1))
	})

	// --- cross-object invocation ---

	reg("call_arg", 2, false, 16, func(iv *invocation, inst *vm.Instance, a []int64) (int64, error) {
		data, err := inst.MemRead(a[0], a[1])
		if err != nil {
			return 0, err
		}
		iv.pendingArgs = append(iv.pendingArgs, data)
		return 0, nil
	})

	reg("invoke", 3, true, 256, func(iv *invocation, inst *vm.Instance, a []int64) (int64, error) {
		method, err := inst.MemRead(a[1], a[2])
		if err != nil {
			return 0, err
		}
		args := iv.pendingArgs
		iv.pendingArgs = nil
		result, err := iv.crossInvoke(ObjectID(a[0]), string(method), args)
		if err != nil {
			return 0, err
		}
		return allocBytes(inst, result)
	})

	reg("invoke_start", 3, true, 256, func(iv *invocation, inst *vm.Instance, a []int64) (int64, error) {
		method, err := inst.MemRead(a[1], a[2])
		if err != nil {
			return 0, err
		}
		args := iv.pendingArgs
		iv.pendingArgs = nil
		return iv.startAsync(ObjectID(a[0]), string(method), args)
	})

	reg("invoke_wait", 1, true, 64, func(iv *invocation, inst *vm.Instance, a []int64) (int64, error) {
		result, err := iv.waitAsync(a[0])
		if err != nil {
			return 0, err
		}
		return allocBytes(inst, result)
	})

	return t
}

// I64Bytes renders an int64 as its 8-byte little-endian representation —
// the conventional encoding for numeric arguments and results crossing the
// invocation boundary.
func I64Bytes(v int64) []byte {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], uint64(v))
	return b[:]
}

// BytesI64 parses an 8-byte little-endian int64 (shorter inputs read as
// zero-extended).
func BytesI64(b []byte) int64 {
	var tmp [8]byte
	copy(tmp[:], b)
	return int64(binary.LittleEndian.Uint64(tmp[:]))
}
