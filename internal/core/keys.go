package core

import (
	"encoding/binary"
	"fmt"
)

// Key-space layout inside the storage engine. Every key of an object is
// prefixed by 'o' + its 8-byte big-endian ID, so an object occupies one
// contiguous key range — this is what makes objects microshards (paper
// §4.2): a single range scan captures all of an object's state for
// migration, and range deletes remove it.
//
//	'T' <typeName>                          object type record
//	'o' <id8> 0x00                          object header (type name)
//	'o' <id8> 0x01 <field>                  value field
//	'o' <id8> 0x02 <field> 0x00 <key>       map entry
//	'o' <id8> 0x03 <field> 0x00 <idx8>      list element
//	'o' <id8> 0x04 <field>                  list length (u64 LE)
//	'o' <id8> 0x05                          object version counter (u64 LE)
//
// Field names may not contain NUL (enforced at type registration), so the
// 0x00 separator is unambiguous.
const (
	keyPrefixType   = 'T'
	keyPrefixObject = 'o'

	subHeader  = 0x00
	subValue   = 0x01
	subMapEnt  = 0x02
	subListEnt = 0x03
	subListLen = 0x04
	subVersion = 0x05
)

// typeKey returns the key of a type record.
func typeKey(name string) []byte {
	return append([]byte{keyPrefixType}, name...)
}

// objectPrefix returns the prefix covering all keys of an object.
func objectPrefix(id ObjectID) []byte {
	b := make([]byte, 9, 24)
	b[0] = keyPrefixObject
	binary.BigEndian.PutUint64(b[1:], uint64(id))
	return b
}

// headerKey returns the object existence/type record key.
func headerKey(id ObjectID) []byte {
	return append(objectPrefix(id), subHeader)
}

// versionKey returns the object's commit-version counter key.
func versionKey(id ObjectID) []byte {
	return append(objectPrefix(id), subVersion)
}

// valueKey returns the key of a value field.
func valueKey(id ObjectID, field string) []byte {
	b := append(objectPrefix(id), subValue)
	return append(b, field...)
}

// mapKey returns the key of one map entry.
func mapKey(id ObjectID, field string, key []byte) []byte {
	b := append(objectPrefix(id), subMapEnt)
	b = append(b, field...)
	b = append(b, 0)
	return append(b, key...)
}

// mapPrefix returns the prefix of all entries of a map field.
func mapPrefix(id ObjectID, field string) []byte {
	b := append(objectPrefix(id), subMapEnt)
	b = append(b, field...)
	return append(b, 0)
}

// listEntryKey returns the key of list element idx.
func listEntryKey(id ObjectID, field string, idx uint64) []byte {
	b := append(objectPrefix(id), subListEnt)
	b = append(b, field...)
	b = append(b, 0)
	var ib [8]byte
	binary.BigEndian.PutUint64(ib[:], idx)
	return append(b, ib[:]...)
}

// listLenKey returns the key of a list field's length counter.
func listLenKey(id ObjectID, field string) []byte {
	b := append(objectPrefix(id), subListLen)
	return append(b, field...)
}

// encodeU64 renders a counter value.
func encodeU64(v uint64) []byte {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	return b[:]
}

// decodeU64 parses a counter value; missing/short values read as 0.
func decodeU64(b []byte) uint64 {
	if len(b) < 8 {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

// prefixEnd returns the smallest key greater than every key with the given
// prefix, or nil if the prefix is all 0xff.
func prefixEnd(prefix []byte) []byte {
	end := append([]byte(nil), prefix...)
	for i := len(end) - 1; i >= 0; i-- {
		if end[i] != 0xff {
			end[i]++
			return end[:i+1]
		}
	}
	return nil
}

// Exported key builders: the disaggregated baseline's storage layer shares
// the aggregated design's on-disk layout (the paper's baseline "uses our
// prototype as its storage layer"), so both read and write identical keys.

// TypeRecordKey returns the key persisting an object type definition.
func TypeRecordKey(name string) []byte { return typeKey(name) }

// HeaderKey returns an object's existence/type record key.
func HeaderKey(id ObjectID) []byte { return headerKey(id) }

// VersionKey returns an object's commit-version counter key.
func VersionKey(id ObjectID) []byte { return versionKey(id) }

// ValueFieldKey returns the key of a value field.
func ValueFieldKey(id ObjectID, field string) []byte { return valueKey(id, field) }

// MapEntryKey returns the key of one map entry.
func MapEntryKey(id ObjectID, field string, key []byte) []byte { return mapKey(id, field, key) }

// MapFieldPrefix returns the prefix of all entries of a map field.
func MapFieldPrefix(id ObjectID, field string) []byte { return mapPrefix(id, field) }

// ListEntryKey returns the key of list element idx.
func ListEntryKey(id ObjectID, field string, idx uint64) []byte { return listEntryKey(id, field, idx) }

// ListLenKey returns the key of a list field's length counter.
func ListLenKey(id ObjectID, field string) []byte { return listLenKey(id, field) }

// EncodeU64 renders a list-length counter value.
func EncodeU64(v uint64) []byte { return encodeU64(v) }

// DecodeU64 parses a list-length counter value.
func DecodeU64(b []byte) uint64 { return decodeU64(b) }

// ObjectPrefix returns the key prefix covering all of an object's state —
// the microshard boundary used by migration and deletion.
func ObjectPrefix(id ObjectID) []byte { return objectPrefix(id) }

// ObjectRangeEnd returns the exclusive upper bound of an object's key range.
func ObjectRangeEnd(id ObjectID) []byte { return prefixEnd(objectPrefix(id)) }

// parseObjectID extracts the object ID from any object key.
func parseObjectID(key []byte) (ObjectID, error) {
	if len(key) < 9 || key[0] != keyPrefixObject {
		return 0, fmt.Errorf("core: not an object key: %q", key)
	}
	return ObjectID(binary.BigEndian.Uint64(key[1:9])), nil
}
