package core

import (
	"testing"

	"lambdastore/internal/store"
	"lambdastore/internal/vm"
)

// Guest programs used across the core tests. They are deliberately written
// in the real assembly so the tests exercise the full guest/host boundary.

// counterSrc: a Counter object with one value field "count".
//
//	add(delta i64) -> new total    (mutating)
//	get() -> total                 (read-only, deterministic)
//	add_then_trap(delta)           (mutating, traps after writing)
//	spin()                         (infinite loop; fuel test)
const counterSrc = `
;; Counter: value field "count" holding an i64.

;; read_count() -> i64: helper, current count or 0.
func read_count params=0 locals=0
  str "count"
  hostcall val_get
  dup
  push -1
  eq
  jnz absent
  unpack.ptr
  load64
  ret
absent:
  pop
  push 0
  ret
end

;; write_count(v): helper, stores v and sets it as the result.
func write_count params=1 locals=1
  push 8
  hostcall alloc
  local.set 1
  local.get 1
  local.get 0
  store64
  str "count"
  local.get 1
  push 8
  hostcall val_set
  local.get 1
  push 8
  hostcall set_result
  ret
end

func add params=0 locals=1 export
  call read_count
  push 0
  hostcall arg
  unpack.ptr
  load64
  add
  call write_count
  ret
end

func get params=0 locals=1 export
  push 8
  hostcall alloc
  local.set 0
  local.get 0
  call read_count
  store64
  local.get 0
  push 8
  hostcall set_result
  ret
end

func add_then_trap params=0 export
  call read_count
  push 0
  hostcall arg
  unpack.ptr
  load64
  add
  call write_count
  unreachable
end

func spin params=0 export
loop:
  jmp loop
end

func get_time params=0 locals=1 export
  push 8
  hostcall alloc
  local.set 0
  local.get 0
  hostcall time
  store64
  local.get 0
  push 8
  hostcall set_result
  ret
end

;; bad_write: declared read-only in the type but tries to write.
func bad_write params=0 export
  str "count"
  str "x"
  hostcall val_set
  ret
end

;; double(): self-invocation — calls add() on itself with the current count.
func double params=0 locals=2 export
  call read_count
  local.set 0
  ;; stage arg = count
  push 8
  hostcall alloc
  local.set 1
  local.get 1
  local.get 0
  store64
  local.get 1
  push 8
  hostcall call_arg
  ;; invoke(self, "add")
  hostcall self_id
  str "add"
  hostcall invoke
  unpack.ptr
  load64
  call write_result
  ret
end

func write_result params=1 locals=1
  push 8
  hostcall alloc
  local.set 1
  local.get 1
  local.get 0
  store64
  local.get 1
  push 8
  hostcall set_result
  ret
end
`

// accountSrc: an Account with a value field "balance" and cross-object
// transfer.
const accountSrc = `
func read_balance params=0
  str "balance"
  hostcall val_get
  dup
  push -1
  eq
  jnz absent
  unpack.ptr
  load64
  ret
absent:
  pop
  push 0
  ret
end

func store_balance params=1 locals=1
  push 8
  hostcall alloc
  local.set 1
  local.get 1
  local.get 0
  store64
  str "balance"
  local.get 1
  push 8
  hostcall val_set
  ret
end

func result_i64 params=1 locals=1
  push 8
  hostcall alloc
  local.set 1
  local.get 1
  local.get 0
  store64
  local.get 1
  push 8
  hostcall set_result
  ret
end

func deposit params=0 export
  call read_balance
  push 0
  hostcall arg
  unpack.ptr
  load64
  add
  dup
  call store_balance
  call result_i64
  ret
end

func balance params=0 export
  call read_balance
  call result_i64
  ret
end

;; transfer(to_id, amount): withdraw locally, then deposit at target.
func transfer params=0 locals=3 export
  ;; locals: 0=to, 1=amount, 2=scratch ptr
  push 0
  hostcall arg
  unpack.ptr
  load64
  local.set 0
  push 1
  hostcall arg
  unpack.ptr
  load64
  local.set 1
  ;; balance -= amount (traps if insufficient)
  call read_balance
  local.get 1
  sub
  dup
  push 0
  lt_s
  jz ok
  unreachable        ;; insufficient funds: abort (nothing commits)
ok:
  call store_balance
  ;; stage amount, invoke deposit at target
  push 8
  hostcall alloc
  local.set 2
  local.get 2
  local.get 1
  store64
  local.get 2
  push 8
  hostcall call_arg
  local.get 0
  str "deposit"
  hostcall invoke
  pop
  ret
end

;; transfer_then_trap(to, amount): like transfer but traps after the nested
;; call returns — §3.1: the withdraw (committed before the nested call) and
;; the deposit both survive.
func transfer_then_trap params=0 locals=3 export
  push 0
  hostcall arg
  unpack.ptr
  load64
  local.set 0
  push 1
  hostcall arg
  unpack.ptr
  load64
  local.set 1
  call read_balance
  local.get 1
  sub
  call store_balance
  push 8
  hostcall alloc
  local.set 2
  local.get 2
  local.get 1
  store64
  local.get 2
  push 8
  hostcall call_arg
  local.get 0
  str "deposit"
  hostcall invoke
  pop
  unreachable
end

;; fanout_deposit(n, base, amount): parallel deposits to objects
;; base..base+n-1, then waits for all.
func fanout_deposit params=0 locals=5 export
  ;; locals: 0=n, 1=base, 2=amount, 3=i, 4=scratch
  push 0
  hostcall arg
  unpack.ptr
  load64
  local.set 0
  push 1
  hostcall arg
  unpack.ptr
  load64
  local.set 1
  push 2
  hostcall arg
  unpack.ptr
  load64
  local.set 2
  push 0
  local.set 3
start_loop:
  local.get 3
  local.get 0
  ge_s
  jnz wait_loop_init
  ;; stage amount
  push 8
  hostcall alloc
  local.set 4
  local.get 4
  local.get 2
  store64
  local.get 4
  push 8
  hostcall call_arg
  ;; invoke_start(base+i, "deposit")
  local.get 1
  local.get 3
  add
  str "deposit"
  hostcall invoke_start
  pop
  local.get 3
  push 1
  add
  local.set 3
  jmp start_loop
wait_loop_init:
  push 0
  local.set 3
wait_loop:
  local.get 3
  local.get 0
  ge_s
  jnz done
  local.get 3
  hostcall invoke_wait
  pop
  local.get 3
  push 1
  add
  local.set 3
  jmp wait_loop
done:
  ret
end
`

// notebookSrc exercises list and map fields.
const notebookSrc = `
;; Notebook: list field "entries", map field "tags".

func append_entry params=0 locals=1 export
  str "entries"
  push 0
  hostcall arg
  unpack.len
  local.set 0
  push 0
  hostcall arg
  unpack.ptr
  local.get 0
  hostcall list_push
  ret
end

func entry_count params=0 locals=1 export
  push 8
  hostcall alloc
  local.set 0
  local.get 0
  str "entries"
  hostcall list_len
  store64
  local.get 0
  push 8
  hostcall set_result
  ret
end

;; entry_at(i) -> bytes
func entry_at params=0 locals=2 export
  str "entries"
  push 0
  hostcall arg
  unpack.ptr
  load64
  hostcall list_get
  dup
  push -1
  eq
  jnz missing
  dup
  unpack.ptr
  swap
  unpack.len
  hostcall set_result
  ret
missing:
  unreachable
end

;; tag_set(key, value)
func tag_set params=0 locals=4 export
  ;; locals: 0=kptr 1=klen 2=vptr 3=vlen
  push 0
  hostcall arg
  dup
  unpack.ptr
  local.set 0
  unpack.len
  local.set 1
  push 1
  hostcall arg
  dup
  unpack.ptr
  local.set 2
  unpack.len
  local.set 3
  str "tags"
  local.get 0
  local.get 1
  local.get 2
  local.get 3
  hostcall map_set
  ret
end

;; tag_get(key) -> value (empty result if missing)
func tag_get params=0 locals=2 export
  push 0
  hostcall arg
  dup
  unpack.ptr
  local.set 0
  unpack.len
  local.set 1
  str "tags"
  local.get 0
  local.get 1
  hostcall map_get
  dup
  push -1
  eq
  jnz missing
  dup
  unpack.ptr
  swap
  unpack.len
  hostcall set_result
  ret
missing:
  pop
  ret
end

;; tag_del(key)
func tag_del params=0 locals=2 export
  push 0
  hostcall arg
  dup
  unpack.ptr
  local.set 0
  unpack.len
  local.set 1
  str "tags"
  local.get 0
  local.get 1
  hostcall map_del
  ret
end

;; tag_count() -> i64
func tag_count params=0 locals=1 export
  push 8
  hostcall alloc
  local.set 0
  local.get 0
  str "tags"
  hostcall map_count
  store64
  local.get 0
  push 8
  hostcall set_result
  ret
end
`

// newCounterType compiles the Counter test type.
func newCounterType(t *testing.T) *ObjectType {
	t.Helper()
	mod, err := vm.Assemble(counterSrc)
	if err != nil {
		t.Fatalf("assemble counter: %v", err)
	}
	typ, err := NewObjectType("Counter",
		[]FieldDef{{Name: "count", Kind: FieldValue}},
		[]MethodInfo{
			{Name: "add"},
			{Name: "get", ReadOnly: true, Deterministic: true},
			{Name: "add_then_trap"},
			{Name: "spin"},
			{Name: "get_time", ReadOnly: true, Deterministic: true},
			{Name: "bad_write", ReadOnly: true},
			{Name: "double"},
		}, mod)
	if err != nil {
		t.Fatalf("counter type: %v", err)
	}
	return typ
}

// newAccountType compiles the Account test type.
func newAccountType(t *testing.T) *ObjectType {
	t.Helper()
	mod, err := vm.Assemble(accountSrc)
	if err != nil {
		t.Fatalf("assemble account: %v", err)
	}
	typ, err := NewObjectType("Account",
		[]FieldDef{{Name: "balance", Kind: FieldValue}},
		[]MethodInfo{
			{Name: "deposit"},
			{Name: "balance", ReadOnly: true, Deterministic: true},
			{Name: "transfer"},
			{Name: "transfer_then_trap"},
			{Name: "fanout_deposit"},
		}, mod)
	if err != nil {
		t.Fatalf("account type: %v", err)
	}
	return typ
}

// newNotebookType compiles the Notebook test type.
func newNotebookType(t *testing.T) *ObjectType {
	t.Helper()
	mod, err := vm.Assemble(notebookSrc)
	if err != nil {
		t.Fatalf("assemble notebook: %v", err)
	}
	typ, err := NewObjectType("Notebook",
		[]FieldDef{
			{Name: "entries", Kind: FieldList},
			{Name: "tags", Kind: FieldMap},
		},
		[]MethodInfo{
			{Name: "append_entry"},
			{Name: "entry_count", ReadOnly: true, Deterministic: true},
			{Name: "entry_at", ReadOnly: true, Deterministic: true},
			{Name: "tag_set"},
			{Name: "tag_get", ReadOnly: true, Deterministic: true},
			{Name: "tag_del"},
			{Name: "tag_count", ReadOnly: true, Deterministic: true},
		}, mod)
	if err != nil {
		t.Fatalf("notebook type: %v", err)
	}
	return typ
}

// newTestRuntime opens a runtime over a fresh temp store.
func newTestRuntime(t *testing.T, opts Options) (*Runtime, *store.DB) {
	t.Helper()
	dir := t.TempDir()
	db, err := store.Open(dir, nil)
	if err != nil {
		t.Fatalf("store.Open: %v", err)
	}
	t.Cleanup(func() { db.Close() })
	rt, err := NewRuntime(db, opts)
	if err != nil {
		t.Fatalf("NewRuntime: %v", err)
	}
	return rt, db
}
