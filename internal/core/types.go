// Package core implements the LambdaObjects programming model — the
// paper's primary contribution. Data is encapsulated into objects
// instantiated from object types; each type carries a set of fields
// (opaque values, keyed collections, or lists) and a set of methods
// compiled to untrusted bytecode (see internal/vm). Methods may only
// access their own object's fields through a minimal key-value host API,
// but may invoke methods of other objects, composing application logic as
// a graph of function calls.
//
// The Runtime in this package executes invocations with *invocation
// linearizability* (paper §3.1): each invocation's writes are buffered and
// committed atomically at the end (atomicity), mutating invocations of an
// object are serialized by the scheduler while its partial writes stay
// invisible (isolation), and a successful invocation's writes are visible
// to every subsequently issued invocation (real-time). Guarantees
// deliberately do not span nested calls: invoking another function first
// commits the caller's writes so far.
package core

import (
	"errors"
	"fmt"
	"strings"

	"lambdastore/internal/vm"
	"lambdastore/internal/wire"
)

// ObjectID identifies an object. IDs also define microshard boundaries: an
// object's entire state is one contiguous key range (see keys.go), so it
// can be migrated on its own.
type ObjectID uint64

func (id ObjectID) String() string { return fmt.Sprintf("obj-%d", uint64(id)) }

// FieldKind enumerates the storage shapes a field can take (paper §3:
// "fields, which are either a single opaque piece of data or a collection
// of data entries indexed by a key").
type FieldKind uint8

const (
	// FieldValue is a single opaque byte string.
	FieldValue FieldKind = iota
	// FieldMap is a collection of byte strings indexed by a byte-string key.
	FieldMap
	// FieldList is an append-ordered collection indexed by position.
	FieldList
)

func (k FieldKind) String() string {
	switch k {
	case FieldValue:
		return "value"
	case FieldMap:
		return "map"
	case FieldList:
		return "list"
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// FieldDef declares one field of an object type.
type FieldDef struct {
	Name string
	Kind FieldKind
}

// MethodInfo declares one public method of an object type.
type MethodInfo struct {
	Name string
	// ReadOnly methods never mutate the object; they take a shared
	// scheduler admission and may execute at backup replicas.
	ReadOnly bool
	// Deterministic read-only methods are eligible for consistent result
	// caching (§4.2.2). Methods that consult the clock, randomness, or
	// other objects are automatically excluded at run time regardless of
	// this flag.
	Deterministic bool

	// inferredReadOnly is computed at validation time (never serialized;
	// init recomputes it on decode): the method's reachable call graph
	// contains no mutating host import and no cross-object invocation,
	// so it provably never touches the write buffer even though its
	// author did not declare it ReadOnly. Such methods are routable to
	// leased backup replicas exactly like declared read-only ones.
	inferredReadOnly bool
}

// RoutableReadOnly reports whether the method may execute at a backup
// replica: declared read-only, or proven read-only by module analysis.
func (m *MethodInfo) RoutableReadOnly() bool { return m.ReadOnly || m.inferredReadOnly }

// mutatingImports are the host functions that touch the write buffer.
// invoke/invoke_start are excluded from read-only inference too: a
// cross-object call may mutate the callee and must run where forwarding
// is safe (the scheduler also commits the caller before nested calls).
var mutatingImports = map[string]bool{
	"val_set":      true,
	"val_del":      true,
	"map_set":      true,
	"map_del":      true,
	"list_push":    true,
	"invoke":       true,
	"invoke_start": true,
	"invoke_wait":  true,
	"call_arg":     true,
}

// Errors of the object model.
var (
	ErrNoSuchType     = errors.New("core: no such object type")
	ErrNoSuchObject   = errors.New("core: no such object")
	ErrNoSuchMethod   = errors.New("core: no such method")
	ErrNoSuchField    = errors.New("core: no such field")
	ErrWrongKind      = errors.New("core: field kind mismatch")
	ErrExists         = errors.New("core: already exists")
	ErrReadOnly       = errors.New("core: mutation from read-only method")
	ErrBadType        = errors.New("core: invalid object type")
	ErrNotFound       = errors.New("core: not found")
	ErrInvalidUpgrade = errors.New("core: self-invocation cannot upgrade read-only to mutating")
)

// ObjectType bundles fields and methods; objects are instantiated from it
// (paper §3: "object types"). The zero value is not usable; construct with
// NewObjectType or DecodeObjectType.
type ObjectType struct {
	Name    string
	Fields  []FieldDef
	Methods []MethodInfo
	Module  *vm.Module

	fieldIdx  map[string]*FieldDef
	methodIdx map[string]*MethodInfo
}

// NewObjectType validates and indexes a type definition. Every declared
// method must be an exported function of the module.
func NewObjectType(name string, fields []FieldDef, methods []MethodInfo, module *vm.Module) (*ObjectType, error) {
	t := &ObjectType{Name: name, Fields: fields, Methods: methods, Module: module}
	if err := t.init(); err != nil {
		return nil, err
	}
	return t, nil
}

// init builds the lookup indexes and validates invariants.
func (t *ObjectType) init() error {
	if t.Name == "" {
		return fmt.Errorf("%w: empty type name", ErrBadType)
	}
	if strings.ContainsRune(t.Name, 0) {
		return fmt.Errorf("%w: type name contains NUL", ErrBadType)
	}
	if t.Module == nil {
		return fmt.Errorf("%w: type %q has no module", ErrBadType, t.Name)
	}
	t.fieldIdx = make(map[string]*FieldDef, len(t.Fields))
	for i := range t.Fields {
		f := &t.Fields[i]
		if f.Name == "" || strings.ContainsRune(f.Name, 0) {
			return fmt.Errorf("%w: bad field name %q", ErrBadType, f.Name)
		}
		if _, dup := t.fieldIdx[f.Name]; dup {
			return fmt.Errorf("%w: duplicate field %q", ErrBadType, f.Name)
		}
		t.fieldIdx[f.Name] = f
	}
	t.methodIdx = make(map[string]*MethodInfo, len(t.Methods))
	for i := range t.Methods {
		m := &t.Methods[i]
		if _, dup := t.methodIdx[m.Name]; dup {
			return fmt.Errorf("%w: duplicate method %q", ErrBadType, m.Name)
		}
		if !t.Module.HasExport(m.Name) {
			return fmt.Errorf("%w: method %q is not an exported module function", ErrBadType, m.Name)
		}
		// Classify once at validation time: a method none of whose
		// reachable host calls can mutate is read-only in fact, whatever
		// its declaration says. The flag is advisory for routing only —
		// execution still enforces ReadOnly via the write-buffer guard.
		if !m.ReadOnly {
			if imports, ok := t.Module.ReachableImports(m.Name); ok {
				mutates := false
				for imp := range imports {
					if mutatingImports[imp] {
						mutates = true
						break
					}
				}
				m.inferredReadOnly = !mutates
			}
		}
		t.methodIdx[m.Name] = m
	}
	return nil
}

// Field returns the named field definition.
func (t *ObjectType) Field(name string) (*FieldDef, bool) {
	f, ok := t.fieldIdx[name]
	return f, ok
}

// Method returns the named method declaration.
func (t *ObjectType) Method(name string) (*MethodInfo, bool) {
	m, ok := t.methodIdx[name]
	return m, ok
}

// Encode serializes the type (the representation persisted in the store
// and shipped between nodes).
func (t *ObjectType) Encode() []byte {
	var b []byte
	b = wire.AppendString(b, t.Name)
	b = wire.AppendUvarint(b, uint64(len(t.Fields)))
	for _, f := range t.Fields {
		b = wire.AppendString(b, f.Name)
		b = append(b, byte(f.Kind))
	}
	b = wire.AppendUvarint(b, uint64(len(t.Methods)))
	for _, m := range t.Methods {
		b = wire.AppendString(b, m.Name)
		var flags byte
		if m.ReadOnly {
			flags |= 1
		}
		if m.Deterministic {
			flags |= 2
		}
		b = append(b, flags)
	}
	b = wire.AppendBytes(b, t.Module.Encode())
	return b
}

// DecodeObjectType parses and validates a serialized type.
func DecodeObjectType(data []byte) (*ObjectType, error) {
	t := &ObjectType{}
	var err error
	var rest []byte
	if t.Name, rest, err = wire.String(data); err != nil {
		return nil, fmt.Errorf("%w: name: %v", ErrBadType, err)
	}
	var n uint64
	if n, rest, err = wire.Uvarint(rest); err != nil {
		return nil, fmt.Errorf("%w: field count: %v", ErrBadType, err)
	}
	for i := uint64(0); i < n; i++ {
		var f FieldDef
		if f.Name, rest, err = wire.String(rest); err != nil {
			return nil, fmt.Errorf("%w: field name: %v", ErrBadType, err)
		}
		if len(rest) == 0 {
			return nil, fmt.Errorf("%w: truncated field kind", ErrBadType)
		}
		f.Kind = FieldKind(rest[0])
		rest = rest[1:]
		if f.Kind > FieldList {
			return nil, fmt.Errorf("%w: unknown field kind %d", ErrBadType, f.Kind)
		}
		t.Fields = append(t.Fields, f)
	}
	if n, rest, err = wire.Uvarint(rest); err != nil {
		return nil, fmt.Errorf("%w: method count: %v", ErrBadType, err)
	}
	for i := uint64(0); i < n; i++ {
		var m MethodInfo
		if m.Name, rest, err = wire.String(rest); err != nil {
			return nil, fmt.Errorf("%w: method name: %v", ErrBadType, err)
		}
		if len(rest) == 0 {
			return nil, fmt.Errorf("%w: truncated method flags", ErrBadType)
		}
		m.ReadOnly = rest[0]&1 != 0
		m.Deterministic = rest[0]&2 != 0
		rest = rest[1:]
		t.Methods = append(t.Methods, m)
	}
	var modBytes []byte
	if modBytes, _, err = wire.Bytes(rest); err != nil {
		return nil, fmt.Errorf("%w: module: %v", ErrBadType, err)
	}
	if t.Module, err = vm.Decode(modBytes); err != nil {
		return nil, err
	}
	if err := t.init(); err != nil {
		return nil, err
	}
	return t, nil
}
