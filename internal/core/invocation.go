package core

import (
	"fmt"
	"time"

	"lambdastore/internal/sched"
	"lambdastore/internal/telemetry"
)

// maxInvocationDepth bounds synchronous nested-invocation chains that stay
// on this node (each level nests the interpreter on the Go stack).
const maxInvocationDepth = 32

// invocation is the per-call execution context: the object under
// invocation, its private transaction, the staged cross-call state, and the
// result buffer. Host functions reach it through vm.Instance.Ctx.
//
// Scheduler interaction implements the paper's §3.1 segmentation: the
// invocation holds its object's admission while it accesses state, but a
// cross-object call first commits the buffered writes and RELEASES the
// admission — the remainder of the method is a separate invocation context
// that re-acquires on its next access. Because no admission is ever held
// across a nested call, mutually invoking objects (create_post fan-outs in
// both directions) cannot deadlock, which is how "invocation
// linearizability prevents aborts due to concurrency".
type invocation struct {
	rt     *Runtime
	obj    ObjectID
	typ    *ObjectType
	method *MethodInfo
	args   [][]byte
	txn    *txn
	depth  int
	// trace is the invocation's own span context (zero when untraced);
	// stage spans and nested calls parent under it.
	trace telemetry.SpanContext

	mode    sched.Mode
	locked  bool
	release func()
	// external marks an invocation whose admissions and commit are managed
	// by an enclosing transaction (see transaction.go): run leaves the
	// shared buffer uncommitted and never releases locks it does not own.
	external bool

	result []byte
	// nocache poisons result caching when the method did something the
	// read-set cannot capture (clock, randomness, scans, cross-object
	// calls).
	nocache bool

	// pendingArgs accumulate via the call_arg host function and are
	// consumed by the next invoke/invoke_start.
	pendingArgs [][]byte
	asyncs      []*asyncCall
}

// asyncCall is one in-flight parallel cross-object invocation (the paper's
// create_post fans store_post calls out "in parallel").
type asyncCall struct {
	done   chan struct{}
	result []byte
	err    error
}

// ensureLocked (re-)admits the invocation on its object before a state
// access or commit.
func (iv *invocation) ensureLocked() error {
	if iv.locked || iv.external || iv.rt.opts.DisableScheduler {
		return nil
	}
	sp := iv.rt.tracer.StartSpan(iv.trace, "lock-wait")
	m := iv.rt.metrics
	var start time.Time
	if m != nil {
		start = time.Now()
	}
	release, err := iv.rt.locks.Acquire(uint64(iv.obj), iv.mode)
	if m != nil {
		m.lockWaitUs.Record(time.Since(start))
	}
	sp.FinishErr(err)
	if err != nil {
		return err
	}
	iv.locked = true
	iv.release = release
	return nil
}

// unlock drops the admission (end of a consistency segment).
func (iv *invocation) unlock() {
	if iv.external {
		return
	}
	if iv.locked && iv.release != nil {
		iv.release()
		iv.locked = false
		iv.release = nil
	}
}

// Transactional accessors: every state access is bracketed by admission.

func (iv *invocation) tGet(key []byte) ([]byte, bool, error) {
	if err := iv.ensureLocked(); err != nil {
		return nil, false, err
	}
	return iv.txn.get(key)
}

func (iv *invocation) tPut(key, value []byte) error {
	if err := iv.ensureLocked(); err != nil {
		return err
	}
	iv.txn.put(key, value)
	return nil
}

func (iv *invocation) tDel(key []byte) error {
	if err := iv.ensureLocked(); err != nil {
		return err
	}
	iv.txn.del(key)
	return nil
}

func (iv *invocation) tScan(prefix []byte, fn func(key, value []byte) bool) error {
	if err := iv.ensureLocked(); err != nil {
		return err
	}
	return iv.txn.scan(prefix, fn)
}

// run executes the method body in a pooled VM instance and commits on
// success.
func (iv *invocation) run() ([]byte, error) {
	iv.rt.statsMu.Lock()
	iv.rt.invocations++
	iv.rt.hot.touch(iv.obj)
	iv.rt.statsMu.Unlock()
	defer iv.unlock()

	inst, err := iv.rt.pool.get(iv.typ.Module, iv.method.Name)
	if err != nil {
		return nil, err
	}
	inst.Ctx = iv
	sp := iv.rt.tracer.StartSpan(iv.trace, "vm-exec")
	m := iv.rt.metrics
	var start time.Time
	if m != nil {
		start = time.Now()
	}
	fuelBefore := inst.FuelUsed()
	_, callErr := inst.Call(iv.method.Name)
	if m != nil {
		m.vmExecUs.Record(time.Since(start))
		if d := inst.FuelUsed() - fuelBefore; d > 0 {
			m.fuelUsed.Add(uint64(d))
		}
	}
	sp.FinishErr(callErr)
	iv.rt.pool.put(iv.typ.Module, iv.method.Name, inst)

	// Join any stragglers so goroutines never outlive the invocation.
	iv.waitAsyncs()

	if callErr != nil {
		return nil, fmt.Errorf("core: %s.%s on %s: %w", iv.typ.Name, iv.method.Name, iv.obj, callErr)
	}
	if iv.asyncErr() != nil {
		return nil, fmt.Errorf("core: %s.%s on %s: parallel call: %w", iv.typ.Name, iv.method.Name, iv.obj, iv.asyncErr())
	}

	if iv.external {
		// The enclosing transaction owns commit; a read-only member that
		// buffered writes is still an error.
		if iv.txn.dirty() && iv.method.ReadOnly && iv.ownWrites() {
			return nil, ErrReadOnly
		}
		return iv.result, nil
	}
	if iv.txn.dirty() {
		if iv.method.ReadOnly {
			return nil, ErrReadOnly
		}
		if err := iv.commit(); err != nil {
			return nil, err
		}
	}
	return iv.result, nil
}

// ownWrites reports whether this invocation's object has buffered writes
// (a heuristic used only for read-only enforcement inside transactions,
// where the buffer is shared).
func (iv *invocation) ownWrites() bool {
	prefix := string(objectPrefix(iv.obj))
	for k := range iv.txn.writes {
		if len(k) >= len(prefix) && k[:len(prefix)] == prefix {
			return true
		}
	}
	return false
}

// commit atomically publishes the buffered write-set, bumping the object's
// version counter in the same batch (real-time visibility: the batch is
// durable and replicated before the reply).
func (iv *invocation) commit() error {
	sp := iv.rt.tracer.StartSpan(iv.trace, "commit")
	err := iv.commitUnder(sp.Context())
	sp.FinishErr(err)
	return err
}

// commitUnder is commit's body; ctx is the enclosing commit span (zero when
// untraced) under which the wal-sync span nests.
func (iv *invocation) commitUnder(ctx telemetry.SpanContext) error {
	if err := iv.ensureLocked(); err != nil {
		return err
	}
	// Re-verify existence under the admission: the object may have been
	// deleted or migrated away while this invocation waited for the lock
	// (the type binding alone is a cache and cannot be trusted here).
	if _, present, err := iv.txn.get(headerKey(iv.obj)); err != nil {
		return err
	} else if !present {
		return fmt.Errorf("%w: %s (deleted or migrated during invocation)", ErrNoSuchObject, iv.obj)
	}
	cur, _, err := iv.txn.get(versionKey(iv.obj))
	if err != nil {
		return err
	}
	iv.txn.put(versionKey(iv.obj), encodeU64(decodeU64(cur)+1))
	b := iv.txn.batch()
	wsp := iv.rt.tracer.StartSpan(ctx, "wal-sync")
	err = iv.rt.db.Write(b)
	wsp.FinishErr(err)
	if err != nil {
		return err
	}
	return iv.rt.notifyCommit(iv.trace, iv.obj, b)
}

// commitIntermediate realizes the paper's nested-call rule (§3.1): before a
// cross-object invocation, the caller's writes so far commit and the
// admission is released; the remainder of the caller proceeds as a fresh
// invocation context.
func (iv *invocation) commitIntermediate() error {
	if iv.txn.dirty() {
		if iv.method.ReadOnly {
			return ErrReadOnly
		}
		if err := iv.commit(); err != nil {
			return err
		}
	}
	iv.txn.reset()
	iv.unlock()
	return nil
}

// crossInvoke performs a synchronous nested invocation. The admission was
// released by commitIntermediate, so invoking any object — including this
// one — takes a fresh admission and cannot deadlock against the caller.
func (iv *invocation) crossInvoke(target ObjectID, method string, args [][]byte) ([]byte, error) {
	if iv.external {
		return nil, fmt.Errorf("%w: cross-object invoke (declare the call in the transaction instead)", ErrTxRestricted)
	}
	iv.nocache = true
	if iv.depth+1 >= maxInvocationDepth {
		return nil, fmt.Errorf("core: invocation depth limit at %s", iv.obj)
	}
	if err := iv.commitIntermediate(); err != nil {
		return nil, err
	}
	return iv.rt.dispatch(target, method, args, CallCtx{Depth: iv.depth + 1, Trace: iv.trace})
}

// startAsync launches a parallel cross-object invocation and returns its
// handle index.
func (iv *invocation) startAsync(target ObjectID, method string, args [][]byte) (int64, error) {
	if iv.external {
		return 0, fmt.Errorf("%w: cross-object invoke (declare the call in the transaction instead)", ErrTxRestricted)
	}
	iv.nocache = true
	if iv.depth+1 >= maxInvocationDepth {
		return 0, fmt.Errorf("core: invocation depth limit at %s", iv.obj)
	}
	if err := iv.commitIntermediate(); err != nil {
		return 0, err
	}
	ac := &asyncCall{done: make(chan struct{})}
	iv.asyncs = append(iv.asyncs, ac)
	handle := int64(len(iv.asyncs) - 1)
	cc := CallCtx{Depth: iv.depth + 1, Trace: iv.trace}
	go func() {
		defer close(ac.done)
		ac.result, ac.err = iv.rt.dispatch(target, method, args, cc)
	}()
	return handle, nil
}

// waitAsync joins one parallel call.
func (iv *invocation) waitAsync(handle int64) ([]byte, error) {
	if handle < 0 || handle >= int64(len(iv.asyncs)) {
		return nil, fmt.Errorf("core: bad async handle %d", handle)
	}
	ac := iv.asyncs[handle]
	<-ac.done
	return ac.result, ac.err
}

// waitAsyncs joins every outstanding parallel call.
func (iv *invocation) waitAsyncs() {
	for _, ac := range iv.asyncs {
		<-ac.done
	}
}

// asyncErr returns the first error among completed parallel calls.
func (iv *invocation) asyncErr() error {
	for _, ac := range iv.asyncs {
		if ac.err != nil {
			return ac.err
		}
	}
	return nil
}

// fieldOf resolves a field by name and checks its kind.
func (iv *invocation) fieldOf(name []byte, kind FieldKind) (*FieldDef, error) {
	f, ok := iv.typ.Field(string(name))
	if !ok {
		return nil, fmt.Errorf("%w: %s.%s", ErrNoSuchField, iv.typ.Name, name)
	}
	if f.Kind != kind {
		return nil, fmt.Errorf("%w: field %s is %v, not %v", ErrWrongKind, f.Name, f.Kind, kind)
	}
	return f, nil
}

// requireMutable rejects writes from read-only methods.
func (iv *invocation) requireMutable() error {
	if iv.method.ReadOnly {
		return fmt.Errorf("%w: %s.%s", ErrReadOnly, iv.typ.Name, iv.method.Name)
	}
	return nil
}
