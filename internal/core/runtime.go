package core

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"lambdastore/internal/cache"
	"lambdastore/internal/sched"
	"lambdastore/internal/store"
	"lambdastore/internal/telemetry"
	"lambdastore/internal/vm"
)

// Invoker routes a cross-object invocation. The Runtime itself is the
// single-node Invoker; cluster deployments install a router that forwards
// to the shard's primary over RPC.
type Invoker interface {
	Invoke(id ObjectID, method string, args [][]byte) ([]byte, error)
}

// CommitHook observes every committed mutating invocation: the trace
// context of the committing request (zero when untraced), the object, the
// store sequence assigned to the first record of the write-set, and the
// write-set itself. Primary-backup replication ships these to backups in
// sequence order, propagating the trace so backup apply spans join the
// caller's trace.
//
// A non-nil error fails the invocation's acknowledgement: the write-set is
// already durable locally, but the reply is withheld (paper §4.2.1 — the
// write-set reaches every backup "before the invocation reply is
// released", so a failover never loses an acknowledged write). Callers see
// the error and retry; the state machine tolerates the resulting
// at-least-once re-execution.
type CommitHook func(ctx telemetry.SpanContext, obj ObjectID, seq uint64, writeSet *store.Batch) error

// Options configures a Runtime.
type Options struct {
	// Fuel is the execution budget per method invocation; <=0 means
	// unmetered.
	Fuel int64
	// Cache enables the consistent result cache with the given capacity;
	// 0 disables caching.
	CacheEntries int
	// CacheShards overrides the result cache's shard count (0 = default;
	// 1 degenerates to a single global lock — the read-path ablation).
	CacheShards int
	// DisableReadFastPath forces read-only deterministic invocations
	// through the full transactional machinery (write buffer, dirty-set
	// commit checks) instead of the allocation-light read path. Ablation
	// knob; production keeps the fast path on.
	DisableReadFastPath bool
	// FullVMReset makes warm instance reuse re-image the entire linear
	// memory instead of zeroing only the dirtied region. Ablation knob;
	// production uses the cheap reset.
	FullVMReset bool
	// VMTier selects the bytecode execution tier: "" or "threaded" for
	// the AOT token-threaded compiler (default), "interp" to force the
	// switch interpreter. Ablation knob for the vm-compile benchmark.
	VMTier string
	// Clock supplies the time host call; nil means time.Now-based.
	Clock func() int64
	// Invoker routes cross-object invocations; nil routes everything to
	// this runtime (single-node).
	Invoker Invoker
	// OnCommit, if set, observes committed write-sets (for replication).
	OnCommit CommitHook
	// LockTimeout bounds scheduler admission (default 10s).
	LockTimeout time.Duration
	// DisableScheduler removes per-object admission control (ablation A4
	// uses this to show why the combined scheduler/concurrency-control
	// matters; with it disabled, invocation isolation is lost).
	DisableScheduler bool
	// Metrics, if set, receives hot-path counters and histograms
	// (invocations by method, fuel, cache and lock-wait behaviour).
	Metrics *telemetry.Registry
	// Tracer, if set, records per-stage spans (invoke, lock-wait, vm-exec,
	// commit, wal-sync) for traced invocations. A nil or disabled tracer
	// costs one predicted branch per stage.
	Tracer *telemetry.Tracer
	// HotTrackerEntries bounds the per-object load tracker the
	// rebalancer samples (0 = default 1024). Memory stays fixed no
	// matter how many distinct objects the node serves.
	HotTrackerEntries int
}

// DefaultFuel is the per-invocation budget used by servers: generous for
// real methods, tight enough to stop runaway loops quickly.
const DefaultFuel = 16 << 20

// Runtime executes LambdaObject method invocations against a storage
// engine. It is safe for concurrent use.
type Runtime struct {
	db    *store.DB
	opts  Options
	hosts *vm.HostTable
	pool  *instancePool
	locks *sched.Table
	cache *cache.Cache

	mu    sync.RWMutex
	types map[string]*ObjectType
	// objTypes caches object -> type bindings (immutable once created).
	objTypes sync.Map // ObjectID -> *ObjectType

	invocations uint64
	commits     uint64
	statsMu     sync.Mutex
	// hot tracks per-object invocation counts in bounded memory — the
	// load signal behind hot-microshard rebalancing (the paper's
	// elasticity future work, now the rebalancer's sampling source).
	hot *hotTracker

	// metrics holds pre-resolved instruments (nil when Options.Metrics is
	// unset) so hot paths never touch the registry mutex.
	metrics *rtMetrics
	tracer  *telemetry.Tracer
}

// rtMetrics caches the runtime's instruments; resolved once at startup.
type rtMetrics struct {
	reg         *telemetry.Registry
	invokeUs    *telemetry.Histogram
	lockWaitUs  *telemetry.Histogram
	vmExecUs    *telemetry.Histogram
	fuelUsed    *telemetry.Counter
	cacheHits   *telemetry.Counter
	cacheMisses *telemetry.Counter
	commits     *telemetry.Counter
	// methods maps method name -> per-method invocation counter
	// ("core.invoke.<method>"), cached so the hot path skips the registry.
	methods sync.Map
}

func newRTMetrics(reg *telemetry.Registry) *rtMetrics {
	return &rtMetrics{
		reg:         reg,
		invokeUs:    reg.Histogram("core.invoke"),
		lockWaitUs:  reg.Histogram("sched.lock_wait"),
		vmExecUs:    reg.Histogram("core.vm_exec"),
		fuelUsed:    reg.Counter("core.fuel_used"),
		cacheHits:   reg.Counter("core.cache_hits"),
		cacheMisses: reg.Counter("core.cache_misses"),
		commits:     reg.Counter("core.commits"),
	}
}

// methodCounter returns the invocation counter for method, resolving it at
// most once per method name.
func (m *rtMetrics) methodCounter(method string) *telemetry.Counter {
	if c, ok := m.methods.Load(method); ok {
		return c.(*telemetry.Counter)
	}
	c := m.reg.Counter("core.invoke." + method)
	m.methods.Store(method, c)
	return c
}

// NewRuntime builds a runtime on db, loading persisted types.
func NewRuntime(db *store.DB, opts Options) (*Runtime, error) {
	rt := &Runtime{
		db:    db,
		opts:  opts,
		types: make(map[string]*ObjectType),
		hot:   newHotTracker(opts.HotTrackerEntries),
	}
	if opts.Fuel == 0 {
		rt.opts.Fuel = DefaultFuel
	}
	tier, err := vm.ParseTier(opts.VMTier)
	if err != nil {
		return nil, err
	}
	rt.hosts = newHostTable()
	rt.pool = newInstancePool(rt.hosts, rt.opts.Fuel, opts.FullVMReset, tier)
	rt.locks = sched.NewTable()
	if opts.LockTimeout > 0 {
		rt.locks.Timeout = opts.LockTimeout
	}
	if opts.CacheEntries > 0 {
		rt.cache = cache.NewSharded(opts.CacheEntries, opts.CacheShards)
	}
	if rt.opts.Clock == nil {
		rt.opts.Clock = func() int64 { return time.Now().UnixNano() }
	}
	if rt.opts.Invoker == nil {
		rt.opts.Invoker = rt
	}
	if opts.Metrics != nil {
		rt.metrics = newRTMetrics(opts.Metrics)
	}
	rt.tracer = opts.Tracer
	if err := rt.loadTypes(); err != nil {
		return nil, err
	}
	return rt, nil
}

// DB exposes the underlying store (replication and migration need raw
// access).
func (rt *Runtime) DB() *store.DB { return rt.db }

// Cache returns the result cache, or nil if disabled.
func (rt *Runtime) Cache() *cache.Cache { return rt.cache }

// PoolStats returns (warm, cold) instance-start counts.
func (rt *Runtime) PoolStats() (warm, cold uint64) { return rt.pool.stats() }

// loadTypes reads all persisted type records.
func (rt *Runtime) loadTypes() error {
	it, err := rt.db.NewIterator()
	if err != nil {
		return err
	}
	defer it.Close()
	prefix := []byte{keyPrefixType}
	for it.Seek(prefix); it.Valid(); it.Next() {
		k := it.Key()
		if len(k) == 0 || k[0] != keyPrefixType {
			break
		}
		t, err := DecodeObjectType(it.Value())
		if err != nil {
			return fmt.Errorf("core: corrupt type record %q: %w", k, err)
		}
		rt.types[t.Name] = t
	}
	return it.Error()
}

// ReloadTypes re-reads the persisted type records and replaces the
// installed set. Anti-entropy recovery calls it after syncing the meta
// range from a donor, making types that were deployed during the
// node's downtime dispatchable without a restart.
func (rt *Runtime) ReloadTypes() error {
	fresh := make(map[string]*ObjectType)
	it, err := rt.db.NewIterator()
	if err != nil {
		return err
	}
	defer it.Close()
	prefix := []byte{keyPrefixType}
	for it.Seek(prefix); it.Valid(); it.Next() {
		k := it.Key()
		if len(k) == 0 || k[0] != keyPrefixType {
			break
		}
		t, err := DecodeObjectType(it.Value())
		if err != nil {
			return fmt.Errorf("core: corrupt type record %q: %w", k, err)
		}
		fresh[t.Name] = t
	}
	if err := it.Error(); err != nil {
		return err
	}
	rt.mu.Lock()
	for name, old := range rt.types {
		if nw, ok := fresh[name]; !ok || nw.Module != old.Module {
			rt.pool.drop(old.Module)
		}
	}
	rt.types = fresh
	rt.mu.Unlock()
	// Bindings may point at replaced *ObjectType values; re-resolve lazily.
	rt.objTypes.Range(func(k, v any) bool {
		rt.objTypes.Delete(k)
		return true
	})
	return nil
}

// RegisterType persists and installs an object type. Re-registering a name
// replaces the previous definition (a deployment of new code).
func (rt *Runtime) RegisterType(t *ObjectType) error {
	if err := t.init(); err != nil {
		return err
	}
	if err := rt.db.Put(typeKey(t.Name), t.Encode()); err != nil {
		return err
	}
	rt.mu.Lock()
	if old, ok := rt.types[t.Name]; ok && old.Module != t.Module {
		rt.pool.drop(old.Module)
	}
	rt.types[t.Name] = t
	rt.mu.Unlock()
	// Invalidate the object->type bindings; they are re-resolved lazily.
	rt.objTypes.Range(func(k, v any) bool {
		if v.(*ObjectType).Name == t.Name {
			rt.objTypes.Delete(k)
		}
		return true
	})
	return nil
}

// Type returns the installed type by name.
func (rt *Runtime) Type(name string) (*ObjectType, bool) {
	rt.mu.RLock()
	defer rt.mu.RUnlock()
	t, ok := rt.types[name]
	return t, ok
}

// TypeNames lists installed types.
func (rt *Runtime) TypeNames() []string {
	rt.mu.RLock()
	defer rt.mu.RUnlock()
	names := make([]string, 0, len(rt.types))
	for n := range rt.types {
		names = append(names, n)
	}
	return names
}

// CreateObject instantiates an object of the named type.
func (rt *Runtime) CreateObject(typeName string, id ObjectID) error {
	rt.mu.RLock()
	_, ok := rt.types[typeName]
	rt.mu.RUnlock()
	if !ok {
		return fmt.Errorf("%w: %q", ErrNoSuchType, typeName)
	}
	release, err := rt.locks.Acquire(uint64(id), sched.Write)
	if err != nil {
		return err
	}
	defer release()
	if _, err := rt.db.Get(headerKey(id)); err == nil {
		return fmt.Errorf("%w: %s", ErrExists, id)
	} else if !errors.Is(err, store.ErrNotFound) {
		return err
	}
	b := store.NewBatch()
	b.Put(headerKey(id), []byte(typeName))
	b.Put(versionKey(id), encodeU64(0))
	if err := rt.db.Write(b); err != nil {
		return err
	}
	return rt.notifyCommit(telemetry.SpanContext{}, id, b)
}

// DeleteObject removes an object and all its state.
func (rt *Runtime) DeleteObject(id ObjectID) error {
	release, err := rt.locks.Acquire(uint64(id), sched.Write)
	if err != nil {
		return err
	}
	defer release()
	b := store.NewBatch()
	if err := rt.forEachObjectKey(id, func(key []byte) {
		b.Delete(append([]byte(nil), key...))
	}); err != nil {
		return err
	}
	if b.Empty() {
		return fmt.Errorf("%w: %s", ErrNoSuchObject, id)
	}
	if err := rt.db.Write(b); err != nil {
		return err
	}
	rt.objTypes.Delete(id)
	if rt.cache != nil {
		rt.cache.InvalidateObject(uint64(id))
	}
	return rt.notifyCommit(telemetry.SpanContext{}, id, b)
}

// forEachObjectKey visits every live key of an object.
func (rt *Runtime) forEachObjectKey(id ObjectID, fn func(key []byte)) error {
	it, err := rt.db.NewIterator()
	if err != nil {
		return err
	}
	defer it.Close()
	prefix := objectPrefix(id)
	for it.Seek(prefix); it.Valid(); it.Next() {
		k := it.Key()
		if len(k) < len(prefix) || string(k[:len(prefix)]) != string(prefix) {
			break
		}
		fn(k)
	}
	return it.Error()
}

// ObjectExists reports whether id exists.
func (rt *Runtime) ObjectExists(id ObjectID) (bool, error) {
	_, err := rt.db.Get(headerKey(id))
	if err == nil {
		return true, nil
	}
	if errors.Is(err, store.ErrNotFound) {
		return false, nil
	}
	return false, err
}

// typeOf resolves an object's type, caching the binding.
func (rt *Runtime) typeOf(id ObjectID) (*ObjectType, error) {
	if v, ok := rt.objTypes.Load(id); ok {
		return v.(*ObjectType), nil
	}
	name, err := rt.db.Get(headerKey(id))
	if err != nil {
		if errors.Is(err, store.ErrNotFound) {
			return nil, fmt.Errorf("%w: %s", ErrNoSuchObject, id)
		}
		return nil, err
	}
	rt.mu.RLock()
	t, ok := rt.types[string(name)]
	rt.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("%w: %q (referenced by %s)", ErrNoSuchType, name, id)
	}
	rt.objTypes.Store(id, t)
	return t, nil
}

// TypeOf returns the name of an object's type.
func (rt *Runtime) TypeOf(id ObjectID) (string, error) {
	t, err := rt.typeOf(id)
	if err != nil {
		return "", err
	}
	return t.Name, nil
}

// ObjectVersion returns the object's committed version counter (number of
// committed mutating invocations).
func (rt *Runtime) ObjectVersion(id ObjectID) (uint64, error) {
	v, err := rt.db.Get(versionKey(id))
	if err != nil {
		if errors.Is(err, store.ErrNotFound) {
			return 0, fmt.Errorf("%w: %s", ErrNoSuchObject, id)
		}
		return 0, err
	}
	return decodeU64(v), nil
}

// LockObject takes an exclusive admission on an object, pausing its
// invocations; migration uses it to quiesce a microshard while copying it.
func (rt *Runtime) LockObject(id ObjectID) (release func(), err error) {
	return rt.locks.Acquire(uint64(id), sched.Write)
}

// DepthInvoker is implemented by invokers that can carry the nested-call
// depth across local hops, bounding synchronous recursion. Remote hops
// reset the depth (the RPC boundary bounds them with timeouts instead).
type DepthInvoker interface {
	InvokeDepth(id ObjectID, method string, args [][]byte, depth int) ([]byte, error)
}

// CallCtx carries per-call metadata across invocation hops: the nested-call
// depth and the caller's trace context (zero when untraced).
type CallCtx struct {
	Depth int
	Trace telemetry.SpanContext
}

// CtxInvoker is implemented by invokers that propagate the full CallCtx —
// depth and trace — across hops. The cluster router implements it so traces
// span forwarded and cross-object calls.
type CtxInvoker interface {
	InvokeCtx(id ObjectID, method string, args [][]byte, cc CallCtx) ([]byte, error)
}

// Invoke runs a method on an object with invocation linearizability. It is
// the entry point for client jobs and for cross-object calls routed here.
func (rt *Runtime) Invoke(id ObjectID, method string, args [][]byte) ([]byte, error) {
	return rt.InvokeCtx(id, method, args, CallCtx{})
}

// InvokeDepth is Invoke with an explicit nested-call depth.
func (rt *Runtime) InvokeDepth(id ObjectID, method string, args [][]byte, depth int) ([]byte, error) {
	return rt.InvokeCtx(id, method, args, CallCtx{Depth: depth})
}

// InvokeCtx is Invoke with an explicit call context. It records the
// per-node "invoke" span (parented to the caller's span when the request is
// traced) and the per-method invocation metrics, then nests every stage
// span under it.
func (rt *Runtime) InvokeCtx(id ObjectID, method string, args [][]byte, cc CallCtx) ([]byte, error) {
	span := rt.tracer.StartSpan(cc.Trace, "invoke")
	if span.Recording() {
		cc.Trace = span.Context()
	}
	m := rt.metrics
	var start time.Time
	if m != nil {
		start = time.Now()
	}
	result, err := rt.invokeCtx(id, method, args, cc)
	if m != nil {
		m.invokeUs.RecordTraced(time.Since(start), cc.Trace.Trace)
		m.methodCounter(method).Inc()
	}
	span.FinishErr(err)
	return result, err
}

func (rt *Runtime) invokeCtx(id ObjectID, method string, args [][]byte, cc CallCtx) ([]byte, error) {
	typ, err := rt.typeOf(id)
	if err != nil {
		return nil, err
	}
	mi, ok := typ.Method(method)
	if !ok {
		return nil, fmt.Errorf("%w: %s.%s", ErrNoSuchMethod, typ.Name, method)
	}

	// Inferred read-only methods (module analysis proved no reachable
	// mutating host call) take the same shared admission and commit-free
	// path as declared ones: the proof is static, so the write buffer is
	// never touched. Result caching stays declared-only — Deterministic
	// is a promise only the author can make.
	mode := sched.Write
	if mi.RoutableReadOnly() {
		mode = sched.Read
	}
	iv := &invocation{
		rt:     rt,
		obj:    id,
		typ:    typ,
		method: mi,
		args:   args,
		depth:  cc.Depth,
		trace:  cc.Trace,
		mode:   mode,
	}
	// Admit before the cache lookup so validation reads cannot interleave
	// with a writer on this object.
	if err := iv.ensureLocked(); err != nil {
		return nil, err
	}

	// Consistent result cache: hit only if every recorded read dependency
	// still matches the committed state (§4.2.2).
	cacheable := mi.ReadOnly && mi.Deterministic && rt.cache != nil
	var argsHash uint64
	if cacheable {
		argsHash = cache.HashArgs(method, args)
		if result, ok := rt.cache.Lookup(uint64(id), method, argsHash, rt.committedHash); ok {
			iv.unlock()
			if rt.metrics != nil {
				rt.metrics.cacheHits.Inc()
			}
			// A traced hit records a zero-width-ish "cache-hit" span so
			// the assembled critical path shows the invoke was served
			// from the consistent result cache rather than the VM.
			rt.tracer.StartSpan(cc.Trace, "cache-hit").Finish()
			return result, nil
		}
		if rt.metrics != nil {
			rt.metrics.cacheMisses.Inc()
		}
	} else if rt.cache != nil {
		rt.cache.NoteBypass()
	}

	// Read-only invocations never commit, so they can skip the whole
	// write-transaction apparatus: a pooled txn with no write buffer reads
	// straight off the snapshot, and run() sees an always-clean dirty set.
	if mi.RoutableReadOnly() && !rt.opts.DisableReadFastPath {
		iv.txn = newReadTxn(rt.db, cacheable)
	} else {
		iv.txn = newTxn(rt.db, cacheable)
	}
	defer iv.txn.close()

	result, err := iv.run()
	if err != nil {
		return nil, err
	}

	if cacheable && !iv.nocache {
		rt.cache.Store(uint64(id), method, argsHash, result, iv.txn.readSet)
	} else if cacheable && rt.cache != nil {
		// Eligible by signature but poisoned at runtime (clock, randomness,
		// scans, cross-calls): a bypass, not a miss.
		rt.cache.NoteBypass()
	}
	return result, nil
}

// MethodRoutableReadOnly reports whether the named method of the object's
// type may execute at a backup replica: declared read-only, or proven
// read-only by module analysis at validation time. Unknown objects,
// types, or methods report false (the router then applies its normal
// primary-only rule and the primary surfaces the real error).
func (rt *Runtime) MethodRoutableReadOnly(id ObjectID, method string) bool {
	typ, err := rt.typeOf(id)
	if err != nil {
		return false
	}
	mi, ok := typ.Method(method)
	return ok && mi.RoutableReadOnly()
}

// dispatch routes a nested invocation through the configured Invoker,
// preserving call context (depth and trace) where the invoker supports it.
func (rt *Runtime) dispatch(id ObjectID, method string, args [][]byte, cc CallCtx) ([]byte, error) {
	if ci, ok := rt.opts.Invoker.(CtxInvoker); ok {
		return ci.InvokeCtx(id, method, args, cc)
	}
	if di, ok := rt.opts.Invoker.(DepthInvoker); ok {
		return di.InvokeDepth(id, method, args, cc.Depth)
	}
	return rt.opts.Invoker.Invoke(id, method, args)
}

// committedHash fingerprints the current committed value of key (cache
// validation).
func (rt *Runtime) committedHash(key []byte) uint64 {
	h := cache.HashValue(nil, false)
	// VisitLatest hashes the committed value in place — validation never
	// needs a copy of it.
	_ = rt.db.VisitLatest(key, func(v []byte, present bool) {
		if present {
			h = cache.HashValue(v, true)
		}
	})
	return h
}

// notifyCommit invalidates caches and fires the replication hook, passing
// along the committing request's trace context. A hook error (backup did
// not acknowledge) propagates so the client ack is withheld; the local
// commit stands.
func (rt *Runtime) notifyCommit(ctx telemetry.SpanContext, id ObjectID, b *store.Batch) error {
	rt.statsMu.Lock()
	rt.commits++
	rt.statsMu.Unlock()
	if rt.metrics != nil {
		rt.metrics.commits.Inc()
	}
	if rt.cache != nil {
		rt.cache.InvalidateObject(uint64(id))
	}
	if rt.opts.OnCommit != nil {
		return rt.opts.OnCommit(ctx, id, b.Seq(), b)
	}
	return nil
}

// Stats returns cumulative invocation and commit counts.
func (rt *Runtime) Stats() (invocations, commits uint64) {
	rt.statsMu.Lock()
	defer rt.statsMu.Unlock()
	return rt.invocations, rt.commits
}

// HotObject is one entry of the per-object load ranking.
type HotObject struct {
	ID    ObjectID
	Count uint64
}

// HotObjects returns the n most-invoked objects since the last reset —
// the signal elasticity decisions are made from: because objects are
// microshards, the hottest ones can be migrated individually. Counts
// come from a bounded Space-Saving tracker, so they are exact for the
// heavy hitters and slight over-estimates for objects that churned
// through the tracker's tail.
func (rt *Runtime) HotObjects(n int) []HotObject {
	rt.statsMu.Lock()
	out := rt.hot.top(n)
	rt.statsMu.Unlock()
	return out
}

// HotWindow returns the top-n ranking and atomically starts a new
// observation window — the rebalancer's sample-and-reset primitive, so
// counts between samples are per-window rates rather than lifetime
// totals. Single-sampler contract: concurrent samplers would steal each
// other's windows.
func (rt *Runtime) HotWindow(n int) []HotObject {
	rt.statsMu.Lock()
	out := rt.hot.top(n)
	rt.hot.reset()
	rt.statsMu.Unlock()
	return out
}

// sortHot orders a ranking hottest first with a deterministic tie-break.
func sortHot(out []HotObject) {
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return out[i].ID < out[j].ID
	})
}

// ResetHotStats clears the per-object load counters (start of a new
// observation window).
func (rt *Runtime) ResetHotStats() {
	rt.statsMu.Lock()
	rt.hot.reset()
	rt.statsMu.Unlock()
}

// ApplyReplicated applies a write-set received from a primary, bypassing
// method execution (the backup path of §4.2.1: "the results of the
// computation are replicated").
func (rt *Runtime) ApplyReplicated(id ObjectID, b *store.Batch) error {
	if err := rt.db.Write(b); err != nil {
		return err
	}
	if rt.cache != nil {
		rt.cache.InvalidateObject(uint64(id))
	}
	// The write-set may have created or deleted the object; drop bindings.
	rt.objTypes.Delete(id)
	return nil
}

// ApplyReplicatedBulk applies several replicated write-sets — the members
// of one coalesced replication frame, all for distinct objects — in a
// single storage commit: one WAL append, and with SyncWrites one fsync,
// for the whole frame. Per-object invalidation matches ApplyReplicated.
func (rt *Runtime) ApplyReplicatedBulk(objects []uint64, batches []*store.Batch) error {
	merged := store.NewBatch()
	for _, b := range batches {
		merged.Append(b)
	}
	if err := rt.db.Write(merged); err != nil {
		return err
	}
	for _, object := range objects {
		if rt.cache != nil {
			rt.cache.InvalidateObject(object)
		}
		rt.objTypes.Delete(ObjectID(object))
	}
	return nil
}

// --- direct state accessors (tools, tests, migration) ---

// GetValueField reads a value field's committed state.
func (rt *Runtime) GetValueField(id ObjectID, field string) ([]byte, error) {
	v, err := rt.db.Get(valueKey(id, field))
	if errors.Is(err, store.ErrNotFound) {
		return nil, ErrNotFound
	}
	return v, err
}

// GetMapEntry reads one map entry's committed state.
func (rt *Runtime) GetMapEntry(id ObjectID, field string, key []byte) ([]byte, error) {
	v, err := rt.db.Get(mapKey(id, field, key))
	if errors.Is(err, store.ErrNotFound) {
		return nil, ErrNotFound
	}
	return v, err
}

// ListLen reads a list field's committed length.
func (rt *Runtime) ListLen(id ObjectID, field string) (uint64, error) {
	v, err := rt.db.Get(listLenKey(id, field))
	if errors.Is(err, store.ErrNotFound) {
		return 0, nil
	}
	if err != nil {
		return 0, err
	}
	return decodeU64(v), nil
}

// ListGet reads one committed list element.
func (rt *Runtime) ListGet(id ObjectID, field string, idx uint64) ([]byte, error) {
	v, err := rt.db.Get(listEntryKey(id, field, idx))
	if errors.Is(err, store.ErrNotFound) {
		return nil, ErrNotFound
	}
	return v, err
}
