package core

import (
	"sync"

	"lambdastore/internal/vm"
)

// instancePool recycles VM instances per module. A warm invocation pops a
// pooled instance and Resets it (cheap: re-image memory); a cold one pays
// full instantiation. The distinction mirrors serverless warm vs cold
// starts (§2.1), and the pool exports counters so the Table-1 benchmark can
// report both paths.
type instancePool struct {
	mu    sync.Mutex
	idle  map[*vm.Module][]*vm.Instance
	hosts *vm.HostTable
	fuel  int64

	warm uint64
	cold uint64
}

func newInstancePool(hosts *vm.HostTable, fuel int64) *instancePool {
	return &instancePool{
		idle:  make(map[*vm.Module][]*vm.Instance),
		hosts: hosts,
		fuel:  fuel,
	}
}

// get returns a ready instance for module.
func (p *instancePool) get(module *vm.Module) (*vm.Instance, error) {
	p.mu.Lock()
	list := p.idle[module]
	if n := len(list); n > 0 {
		inst := list[n-1]
		p.idle[module] = list[:n-1]
		p.warm++
		p.mu.Unlock()
		inst.Reset(p.fuel)
		return inst, nil
	}
	p.cold++
	p.mu.Unlock()
	return vm.NewInstance(module, p.hosts, p.fuel)
}

// put returns an instance for reuse.
func (p *instancePool) put(module *vm.Module, inst *vm.Instance) {
	inst.Ctx = nil
	p.mu.Lock()
	defer p.mu.Unlock()
	const maxIdlePerModule = 64
	if len(p.idle[module]) < maxIdlePerModule {
		p.idle[module] = append(p.idle[module], inst)
	}
}

// stats returns (warm, cold) start counts.
func (p *instancePool) stats() (warm, cold uint64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.warm, p.cold
}

// drop empties the pool (used when a type is replaced).
func (p *instancePool) drop(module *vm.Module) {
	p.mu.Lock()
	defer p.mu.Unlock()
	delete(p.idle, module)
}
