package core

import (
	"sync"

	"lambdastore/internal/vm"
)

// poolKey identifies one warm-instance lane: instances are pooled per
// (module, method) rather than per module, so a method's working set —
// allocation high-water mark, grown memory — is recycled by invocations
// with the same footprint and the cheap reset zeroes exactly what that
// method dirties.
type poolKey struct {
	module *vm.Module
	method string
}

// instancePool recycles VM instances per (module, method). A warm
// invocation pops a pooled instance and resets it — by default the cheap
// dirty-region reset (vm.ResetFast), or the full memory re-image when
// fullReset is set (the vmpool ablation) — while a cold one pays full
// instantiation. The distinction mirrors serverless warm vs cold starts
// (§2.1), and the pool exports counters so the Table-1 benchmark can
// report both paths.
type instancePool struct {
	mu        sync.Mutex
	idle      map[poolKey][]*vm.Instance
	hosts     *vm.HostTable
	fuel      int64
	fullReset bool
	tier      vm.Tier

	warm uint64
	cold uint64
}

func newInstancePool(hosts *vm.HostTable, fuel int64, fullReset bool, tier vm.Tier) *instancePool {
	return &instancePool{
		idle:      make(map[poolKey][]*vm.Instance),
		hosts:     hosts,
		fuel:      fuel,
		fullReset: fullReset,
		tier:      tier,
	}
}

// get returns a ready instance for (module, method).
func (p *instancePool) get(module *vm.Module, method string) (*vm.Instance, error) {
	k := poolKey{module: module, method: method}
	p.mu.Lock()
	list := p.idle[k]
	if n := len(list); n > 0 {
		inst := list[n-1]
		p.idle[k] = list[:n-1]
		p.warm++
		p.mu.Unlock()
		if p.fullReset {
			inst.Reset(p.fuel)
		} else {
			inst.ResetFast(p.fuel)
		}
		return inst, nil
	}
	p.cold++
	p.mu.Unlock()
	inst, err := vm.NewInstance(module, p.hosts, p.fuel)
	if err != nil {
		return nil, err
	}
	inst.SetTier(p.tier)
	return inst, nil
}

// put returns an instance for reuse.
func (p *instancePool) put(module *vm.Module, method string, inst *vm.Instance) {
	inst.Ctx = nil
	k := poolKey{module: module, method: method}
	p.mu.Lock()
	defer p.mu.Unlock()
	const maxIdlePerMethod = 64
	if len(p.idle[k]) < maxIdlePerMethod {
		p.idle[k] = append(p.idle[k], inst)
	}
}

// stats returns (warm, cold) start counts.
func (p *instancePool) stats() (warm, cold uint64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.warm, p.cold
}

// drop empties every method lane of module (used when a type is replaced).
func (p *instancePool) drop(module *vm.Module) {
	p.mu.Lock()
	defer p.mu.Unlock()
	for k := range p.idle {
		if k.module == module {
			delete(p.idle, k)
		}
	}
}
