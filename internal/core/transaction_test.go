package core

import (
	"errors"
	"strings"
	"sync"
	"testing"
)

// txTestRuntime returns a runtime with the Account test type and n funded
// accounts.
func txTestRuntime(t *testing.T, n int, balance int64) *Runtime {
	t.Helper()
	rt, _ := newTestRuntime(t, Options{})
	if err := rt.RegisterType(newAccountType(t)); err != nil {
		t.Fatal(err)
	}
	for id := ObjectID(1); id <= ObjectID(n); id++ {
		if err := rt.CreateObject("Account", id); err != nil {
			t.Fatal(err)
		}
		if balance > 0 {
			mustInvoke(t, rt, id, "deposit", I64Bytes(balance))
		}
	}
	return rt
}

func balanceOf(t *testing.T, rt *Runtime, id ObjectID) int64 {
	t.Helper()
	return BytesI64(mustInvoke(t, rt, id, "balance"))
}

func TestTransactionAtomicAcrossObjects(t *testing.T) {
	rt := txTestRuntime(t, 2, 100)
	// A transactional transfer: withdraw via deposit(-30) on account 1,
	// deposit(+30) on account 2 — both or neither.
	res, err := rt.InvokeTransaction([]TxCall{
		{Object: 1, Method: "deposit", Args: [][]byte{I64Bytes(-30)}},
		{Object: 2, Method: "deposit", Args: [][]byte{I64Bytes(30)}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 2 || BytesI64(res[0]) != 70 || BytesI64(res[1]) != 130 {
		t.Fatalf("results = %v, %v", BytesI64(res[0]), BytesI64(res[1]))
	}
	if balanceOf(t, rt, 1) != 70 || balanceOf(t, rt, 2) != 130 {
		t.Fatal("post-transaction balances wrong")
	}
	// Versions of both objects bumped exactly once by the transaction.
	v1, _ := rt.ObjectVersion(1)
	v2, _ := rt.ObjectVersion(2)
	if v1 != 2 || v2 != 2 { // 1 deposit at setup + 1 tx
		t.Fatalf("versions = %d, %d", v1, v2)
	}
}

func TestTransactionAbortsAtomically(t *testing.T) {
	rt := txTestRuntime(t, 2, 100)
	// Second call traps (transfer with insufficient funds at object 2):
	// the first call's write must be discarded too.
	_, err := rt.InvokeTransaction([]TxCall{
		{Object: 1, Method: "deposit", Args: [][]byte{I64Bytes(500)}},
		{Object: 2, Method: "transfer", Args: [][]byte{I64Bytes(1), I64Bytes(1_000_000)}},
	})
	if err == nil {
		t.Fatal("transaction with trapping member succeeded")
	}
	if balanceOf(t, rt, 1) != 100 || balanceOf(t, rt, 2) != 100 {
		t.Fatalf("aborted transaction leaked writes: %d, %d",
			balanceOf(t, rt, 1), balanceOf(t, rt, 2))
	}
}

func TestTransactionMembersSeeEachOthersWrites(t *testing.T) {
	rt := txTestRuntime(t, 1, 0)
	// Two deposits on the same object within one transaction compose.
	res, err := rt.InvokeTransaction([]TxCall{
		{Object: 1, Method: "deposit", Args: [][]byte{I64Bytes(10)}},
		{Object: 1, Method: "deposit", Args: [][]byte{I64Bytes(5)}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if BytesI64(res[1]) != 15 {
		t.Fatalf("second call saw %d, want 15", BytesI64(res[1]))
	}
	if balanceOf(t, rt, 1) != 15 {
		t.Fatalf("final balance %d", balanceOf(t, rt, 1))
	}
	// One version bump for the whole transaction.
	if v, _ := rt.ObjectVersion(1); v != 1 {
		t.Fatalf("version = %d", v)
	}
}

func TestTransactionForbidsCrossInvoke(t *testing.T) {
	rt := txTestRuntime(t, 2, 100)
	// transfer() itself performs a cross-object invoke: inside a
	// transaction that is rejected.
	_, err := rt.InvokeTransaction([]TxCall{
		{Object: 1, Method: "transfer", Args: [][]byte{I64Bytes(2), I64Bytes(10)}},
	})
	if err == nil || !strings.Contains(err.Error(), "not allowed inside a transaction") {
		t.Fatalf("err = %v", err)
	}
	if balanceOf(t, rt, 1) != 100 {
		t.Fatal("rejected transaction leaked writes")
	}
}

func TestConcurrentTransactionsSerializable(t *testing.T) {
	// Many concurrent transfers over a small account set via transactions:
	// total money must be conserved and no balance may go negative
	// (each transaction checks implicitly by reading its own consistent
	// snapshot under locks).
	const accounts = 4
	rt := txTestRuntime(t, accounts, 1000)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 30; i++ {
				from := ObjectID((w+i)%accounts) + 1
				to := ObjectID((w+i+1)%accounts) + 1
				_, err := rt.InvokeTransaction([]TxCall{
					{Object: from, Method: "deposit", Args: [][]byte{I64Bytes(-7)}},
					{Object: to, Method: "deposit", Args: [][]byte{I64Bytes(7)}},
				})
				if err != nil {
					t.Errorf("tx: %v", err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	var total int64
	for id := ObjectID(1); id <= accounts; id++ {
		total += balanceOf(t, rt, id)
	}
	if total != accounts*1000 {
		t.Fatalf("money not conserved: %d", total)
	}
}

func TestTransactionNoDeadlockOppositeOrders(t *testing.T) {
	// Transactions declaring {1,2} and {2,1} concurrently: ordered lock
	// acquisition means no deadlock regardless of declaration order.
	rt := txTestRuntime(t, 2, 1000)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			a, b := ObjectID(1), ObjectID(2)
			if w%2 == 1 {
				a, b = b, a
			}
			for i := 0; i < 50; i++ {
				_, err := rt.InvokeTransaction([]TxCall{
					{Object: a, Method: "deposit", Args: [][]byte{I64Bytes(1)}},
					{Object: b, Method: "deposit", Args: [][]byte{I64Bytes(-1)}},
				})
				if err != nil {
					t.Errorf("tx: %v", err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if got := balanceOf(t, rt, 1) + balanceOf(t, rt, 2); got != 2000 {
		t.Fatalf("sum = %d", got)
	}
}

func TestTransactionIsolatedFromPlainInvocations(t *testing.T) {
	rt := txTestRuntime(t, 2, 100)
	var wg sync.WaitGroup
	// Plain deposits race with transactions touching the same objects.
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				if _, err := rt.Invoke(1, "deposit", [][]byte{I64Bytes(1)}); err != nil {
					t.Errorf("invoke: %v", err)
					return
				}
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 50; i++ {
			if _, err := rt.InvokeTransaction([]TxCall{
				{Object: 1, Method: "deposit", Args: [][]byte{I64Bytes(2)}},
				{Object: 2, Method: "deposit", Args: [][]byte{I64Bytes(3)}},
			}); err != nil {
				t.Errorf("tx: %v", err)
				return
			}
		}
	}()
	wg.Wait()
	if got := balanceOf(t, rt, 1); got != 100+4*50+2*50 {
		t.Fatalf("account 1 = %d (lost updates between txns and invocations)", got)
	}
	if got := balanceOf(t, rt, 2); got != 100+3*50 {
		t.Fatalf("account 2 = %d", got)
	}
}

func TestTransactionEmptyAndErrors(t *testing.T) {
	rt := txTestRuntime(t, 1, 0)
	if res, err := rt.InvokeTransaction(nil); err != nil || res != nil {
		t.Fatalf("empty tx: %v %v", res, err)
	}
	if _, err := rt.InvokeTransaction([]TxCall{{Object: 99, Method: "deposit"}}); !errors.Is(err, ErrNoSuchObject) {
		t.Fatalf("missing object err = %v", err)
	}
	if _, err := rt.InvokeTransaction([]TxCall{{Object: 1, Method: "nope"}}); !errors.Is(err, ErrNoSuchMethod) {
		t.Fatalf("missing method err = %v", err)
	}
}

func TestTransactionReadOnlyMembers(t *testing.T) {
	rt := txTestRuntime(t, 2, 50)
	res, err := rt.InvokeTransaction([]TxCall{
		{Object: 1, Method: "balance"},
		{Object: 2, Method: "deposit", Args: [][]byte{I64Bytes(1)}},
		{Object: 1, Method: "balance"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if BytesI64(res[0]) != 50 || BytesI64(res[2]) != 50 {
		t.Fatalf("read members: %d, %d", BytesI64(res[0]), BytesI64(res[2]))
	}
}
