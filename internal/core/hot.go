package core

// hotTracker is a bounded Space-Saving (Metwally et al.) top-k counter
// over per-object invocation counts — the load signal behind hot-object
// rebalancing. Unlike the unbounded map it replaces, memory is fixed at
// capacity entries no matter how many distinct objects a node serves:
// when a new object arrives at a full tracker it inherits the smallest
// tracked count plus one (the classic over-estimate bound), evicting
// that entry. Objects hot enough to matter for placement are never the
// minimum for long, so the ranking the rebalancer samples is exact for
// the heavy hitters it acts on.
//
// The tracker is a binary min-heap on count with a map from object to
// heap slot, so touch is O(log capacity) worst case and O(1) for the
// common already-tracked increment that stays in place. Callers
// serialize access (the runtime's statsMu).
type hotTracker struct {
	capacity int
	entries  []hotEntry
	index    map[ObjectID]int // object -> slot in entries
}

type hotEntry struct {
	id    ObjectID
	count uint64
}

// defaultHotTrackerEntries bounds the per-node hot-object table. 1024
// tracked objects is far beyond what any rebalancing policy inspects
// (it samples the top few dozen) while costing ~32KiB per node.
const defaultHotTrackerEntries = 1024

func newHotTracker(capacity int) *hotTracker {
	if capacity <= 0 {
		capacity = defaultHotTrackerEntries
	}
	return &hotTracker{
		capacity: capacity,
		entries:  make([]hotEntry, 0, capacity),
		index:    make(map[ObjectID]int, capacity),
	}
}

// touch counts one invocation of id.
func (t *hotTracker) touch(id ObjectID) {
	if i, ok := t.index[id]; ok {
		t.entries[i].count++
		t.siftDown(i)
		return
	}
	if len(t.entries) < t.capacity {
		t.entries = append(t.entries, hotEntry{id: id, count: 1})
		i := len(t.entries) - 1
		t.index[id] = i
		t.siftUp(i)
		return
	}
	// Full: replace the minimum, inheriting its count (Space-Saving's
	// over-estimate keeps genuinely hot keys from being starved out by
	// a long tail of one-hit objects).
	min := &t.entries[0]
	delete(t.index, min.id)
	min.id = id
	min.count++
	t.index[id] = 0
	t.siftDown(0)
}

// top returns up to n entries ordered hottest first.
func (t *hotTracker) top(n int) []HotObject {
	out := make([]HotObject, len(t.entries))
	for i, e := range t.entries {
		out[i] = HotObject{ID: e.id, Count: e.count}
	}
	sortHot(out)
	if n > 0 && len(out) > n {
		out = out[:n]
	}
	return out
}

// reset clears all counts (start of a new observation window).
func (t *hotTracker) reset() {
	t.entries = t.entries[:0]
	for k := range t.index {
		delete(t.index, k)
	}
}

func (t *hotTracker) less(i, j int) bool {
	if t.entries[i].count != t.entries[j].count {
		return t.entries[i].count < t.entries[j].count
	}
	// Deterministic tie-break so evictions replay identically.
	return t.entries[i].id > t.entries[j].id
}

func (t *hotTracker) swap(i, j int) {
	t.entries[i], t.entries[j] = t.entries[j], t.entries[i]
	t.index[t.entries[i].id] = i
	t.index[t.entries[j].id] = j
}

func (t *hotTracker) siftUp(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !t.less(i, parent) {
			return
		}
		t.swap(i, parent)
		i = parent
	}
}

func (t *hotTracker) siftDown(i int) {
	n := len(t.entries)
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < n && t.less(l, small) {
			small = l
		}
		if r < n && t.less(r, small) {
			small = r
		}
		if small == i {
			return
		}
		t.swap(i, small)
		i = small
	}
}
